// Command dictgen runs the community-dictionary mining pipeline of
// Section 3.2 over a generated world's documentation corpus and prints the
// dictionary with its statistics — the artifact the paper recomputes every
// two weeks.
//
// Usage:
//
//	dictgen -seed 1 [-entries]
package main

import (
	"flag"
	"fmt"
	"os"

	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/pipeline"
	"kepler/internal/topology"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "world generation seed")
		entries = flag.Bool("entries", false, "print every dictionary entry")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Seed = *seed
	w, err := topology.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dictgen:", err)
		os.Exit(1)
	}
	stack := pipeline.Build(w, 77)

	stats := stack.Dict.ComputeStats(stack.Map, stack.Geo)
	fmt.Printf("communities:   %d\n", stats.Communities)
	fmt.Printf("operators:     %d\n", stats.ASNs)
	fmt.Printf("route servers: %d\n", stats.RouteServers)
	fmt.Printf("cities:        %d in %d countries\n", stats.Cities, stats.Countries)
	fmt.Printf("ixps:          %d\n", stats.IXPs)
	fmt.Printf("facilities:    %d\n", stats.Facilities)
	fmt.Printf("granularity:   city=%d ixp=%d facility=%d\n",
		stats.ByGranularity[colo.PoPCity], stats.ByGranularity[colo.PoPIXP],
		stats.ByGranularity[colo.PoPFacility])
	for _, c := range geo.Continents {
		if n := stats.ByContinent[c]; n > 0 {
			fmt.Printf("  %-14s %d entries\n", c, n)
		}
	}

	if *entries {
		fmt.Println()
		for _, e := range stack.Dict.Entries() {
			fmt.Printf("%-14s %-12s %-10s %q\n", e.Community, e.PoP, e.Source, e.Label)
		}
	}
}
