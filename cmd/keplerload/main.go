// Command keplerload soaks a running keplerd's serving path and reports
// what clients actually experienced.
//
// It drives two kinds of load concurrently for a fixed duration:
//
//   - N pollers cycling through the read API (/v1/outages, /v1/outages/open,
//     /v1/incidents, /v1/stats, /v1/health/feeds, /healthz, /metrics),
//     recording client-observed latency and status classes per endpoint
//     into the same histogram type the server uses, so the two sides of
//     the connection are directly comparable.
//   - M SSE clients consuming /v1/events. The first -slow-sse of them
//     sleep between frame reads to exert TCP backpressure, which is the
//     documented way to make the server's per-subscriber queues fill and
//     drop — the report shows those drops from the server's side.
//
// Pollers revalidate: each remembers the last ETag it saw per endpoint and
// sends If-None-Match, so a healthy daemon answers most of the cycle with
// body-less 304s — the report counts them per endpoint (-cond-get=false
// forces full responses).
//
// Around the soak it snapshots /v1/stats and reports the server-side
// deltas: bus publishes and drops, per-endpoint request counts, and the
// SSE delivery-lag histogram. The JSON report goes to -out (default
// stdout).
//
// With -sse-sweep the single soak is replaced by a client-count sweep:
// one phase per count (e.g. -sse-sweep 10,100,1000), each holding that
// many SSE clients open for -duration and differencing /v1/stats across
// the phase. Every phase reports delivery-lag quantiles (computed from the
// server's per-bucket histogram deltas, so they cover exactly that phase),
// drop and shed rates, and which serving tier handled the fan-out — relay
// when the daemon runs with -relay (the default), direct otherwise. Tag
// runs with -label to tell tiers apart when archiving reports side by side.
//
// Example against a synthetic soak daemon:
//
//	keplerd -seed 1 -synthetic -listen :8080 &
//	keplerload -addr http://127.0.0.1:8080 -duration 30s -out BENCH_pr9_serving.json
//	keplerload -addr http://127.0.0.1:8080 -duration 20s -sse-sweep 10,100,1000 -label relay
//
// keplerload exits nonzero if the target is unreachable, if no poll ever
// succeeded, or if fewer than -min-sse-events SSE events were delivered
// (the CI smoke uses that to assert the event path is alive; in sweep mode
// the floor applies to every phase).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kepler/internal/events"
	"kepler/internal/metrics"
	"kepler/internal/server"
)

// pollPaths is the read-API cycle every poller walks. /v1/events is
// deliberately absent: streaming is the SSE clients' job.
var pollPaths = []string{
	"/v1/outages",
	"/v1/outages/open",
	"/v1/incidents",
	"/v1/stats",
	"/v1/health/feeds",
	"/healthz",
	"/metrics",
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the keplerd under load")
		pollers  = flag.Int("pollers", 4, "concurrent API pollers")
		sse      = flag.Int("sse", 3, "concurrent SSE clients on /v1/events")
		slowSSE  = flag.Int("slow-sse", 1, "of the SSE clients, how many read deliberately slowly (must be <= -sse)")
		slowGap  = flag.Duration("slow-gap", 250*time.Millisecond, "pause a slow SSE client takes between frame reads")
		interval = flag.Duration("poll-interval", 50*time.Millisecond, "pause between requests within one poller")
		duration = flag.Duration("duration", 30*time.Second, "soak length")
		minSSE   = flag.Int64("min-sse-events", 0, "exit nonzero unless at least this many SSE events were delivered across all clients (per phase in sweep mode)")
		out      = flag.String("out", "-", "report destination: a file path, or - for stdout")
		condGet  = flag.Bool("cond-get", true, "pollers revalidate with If-None-Match, counting 304s; false forces full responses")
		sweep    = flag.String("sse-sweep", "", "comma-separated SSE client counts (e.g. 10,100,1000): replace the soak with one phase per count, -duration each")
		label    = flag.String("label", "", "free-form tag recorded in the report, e.g. the serving tier under test")
	)
	flag.Parse()

	if *pollers < 0 || *sse < 0 || *slowSSE < 0 || *slowSSE > *sse {
		fatal(fmt.Errorf("need 0 <= -slow-sse <= -sse and -pollers >= 0"))
	}
	if *duration <= 0 {
		fatal(fmt.Errorf("-duration must be positive, got %v", *duration))
	}
	var sweepCounts []int
	if *sweep != "" {
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("-sse-sweep must be comma-separated positive client counts, got %q", *sweep))
			}
			sweepCounts = append(sweepCounts, n)
		}
	}

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	before, err := fetchStats(client, base)
	if err != nil {
		fatal(fmt.Errorf("target not reachable: %w", err))
	}

	if len(sweepCounts) > 0 {
		runSweep(client, base, sweepCounts, *duration, *label, *out, *minSSE)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	// Client-side telemetry reuses the server's own histogram machinery so
	// the report's client and server sections have identical bucket edges.
	hs := metrics.NewHTTPStats()
	var requests, errors, notModified atomic.Int64
	errorsByEndpoint := sync.Map{} // path -> *atomic.Int64
	nmByEndpoint := sync.Map{}     // path -> *atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < *pollers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each poller revalidates like a well-behaved HTTP cache: it
			// remembers the newest ETag per endpoint and sends If-None-Match,
			// paying for a full body only when the snapshot changed.
			etags := map[string]string{}
			// Stagger the starting endpoint so pollers don't convoy.
			for n := id; ; n++ {
				path := pollPaths[n%len(pollPaths)]
				inm := ""
				if *condGet {
					inm = etags[path]
				}
				status, etag, d, err := timedGet(ctx, client, base+path, inm)
				requests.Add(1)
				hs.Observe(path, status, d)
				switch {
				case err != nil:
					errors.Add(1)
					c, _ := errorsByEndpoint.LoadOrStore(path, new(atomic.Int64))
					c.(*atomic.Int64).Add(1)
				case status == http.StatusNotModified:
					notModified.Add(1)
					c, _ := nmByEndpoint.LoadOrStore(path, new(atomic.Int64))
					c.(*atomic.Int64).Add(1)
				case etag != "":
					etags[path] = etag
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(*interval):
				}
			}
		}(i)
	}

	sseReports := make([]SSEClientReport, *sse)
	for i := 0; i < *sse; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			slow := id < *slowSSE
			gap := time.Duration(0)
			if slow {
				gap = *slowGap
			}
			ev, bytes, err := consumeSSE(ctx, base+"/v1/events", gap)
			sseReports[id] = SSEClientReport{
				ID:     id,
				Slow:   slow,
				Events: ev,
				Bytes:  bytes,
				Error:  errString(err),
			}
		}(i)
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	after, aerr := fetchStats(client, base)

	rep := Report{
		Target:          base,
		Label:           *label,
		StartedAt:       start.UTC(),
		DurationSeconds: elapsed.Seconds(),
		Pollers:         *pollers,
		SSEClients:      *sse,
		SlowSSEClients:  *slowSSE,
		PollIntervalMS:  float64(*interval) / float64(time.Millisecond),
		SlowGapMS:       float64(*slowGap) / float64(time.Millisecond),
		Client: ClientReport{
			Requests:    requests.Load(),
			Errors:      errors.Load(),
			NotModified: notModified.Load(),
			SSE:         sseReports,
		},
	}
	for _, r := range sseReports {
		rep.Client.SSEEventsTotal += r.Events
	}
	snap := hs.Snapshot()
	for _, e := range snap.Endpoints {
		var errs, nm int64
		if c, ok := errorsByEndpoint.Load(e.Endpoint); ok {
			errs = c.(*atomic.Int64).Load()
		}
		if c, ok := nmByEndpoint.Load(e.Endpoint); ok {
			nm = c.(*atomic.Int64).Load()
		}
		rep.Client.Endpoints = append(rep.Client.Endpoints, EndpointReport{
			Endpoint:    e.Endpoint,
			Requests:    e.Latency.Count,
			Errors:      errs,
			NotModified: nm,
			Statuses:    e.Statuses,
			Latency:     latencyReport(e.Latency),
		})
	}
	if aerr != nil {
		rep.ServerError = aerr.Error()
	} else {
		rep.Server = serverDelta(before, after)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}

	if requests.Load() > 0 && errors.Load() == requests.Load() {
		fatal(fmt.Errorf("every one of %d polls failed", requests.Load()))
	}
	if rep.Client.SSEEventsTotal < *minSSE {
		fatal(fmt.Errorf("delivered %d SSE events, need at least %d", rep.Client.SSEEventsTotal, *minSSE))
	}
}

// Report is the JSON document keplerload emits.
type Report struct {
	Target          string        `json:"target"`
	Label           string        `json:"label,omitempty"`
	StartedAt       time.Time     `json:"started_at"`
	DurationSeconds float64       `json:"duration_seconds"`
	Pollers         int           `json:"pollers"`
	SSEClients      int           `json:"sse_clients"`
	SlowSSEClients  int           `json:"slow_sse_clients"`
	PollIntervalMS  float64       `json:"poll_interval_ms"`
	SlowGapMS       float64       `json:"slow_gap_ms"`
	Client          ClientReport  `json:"client"`
	Server          *ServerReport `json:"server,omitempty"`
	ServerError     string        `json:"server_error,omitempty"`
	Sweep           []SweepPhase  `json:"sweep,omitempty"`
}

// ClientReport is everything measured from the load generator's side of
// the connection.
type ClientReport struct {
	Requests       int64             `json:"requests"`
	Errors         int64             `json:"errors"`
	NotModified    int64             `json:"not_modified"`
	Endpoints      []EndpointReport  `json:"endpoints"`
	SSE            []SSEClientReport `json:"sse"`
	SSEEventsTotal int64             `json:"sse_events_total"`
}

type EndpointReport struct {
	Endpoint    string           `json:"endpoint"`
	Requests    int64            `json:"requests"`
	Errors      int64            `json:"errors"`
	NotModified int64            `json:"not_modified,omitempty"`
	Statuses    map[string]int64 `json:"statuses"`
	Latency     LatencyReport    `json:"latency"`
}

// SweepPhase is one client-count step of an -sse-sweep run. Delivery-lag
// quantiles come from the server's per-bucket histogram deltas across the
// phase, so they describe exactly the events this phase delivered.
type SweepPhase struct {
	Clients            int     `json:"clients"`
	Tier               string  `json:"tier"` // "relay" or "direct"
	DurationSeconds    float64 `json:"duration_seconds"`
	EventsTotal        int64   `json:"events_total"`
	EventsPerClientMin int64   `json:"events_per_client_min"`
	EventsPerClientMax int64   `json:"events_per_client_max"`
	ClientErrors       int64   `json:"client_errors"`

	LagCount  int64   `json:"delivery_lag_count"`
	LagMeanMS float64 `json:"delivery_lag_mean_ms"`
	LagP50MS  float64 `json:"delivery_lag_p50_ms"`
	LagP90MS  float64 `json:"delivery_lag_p90_ms"`
	LagP99MS  float64 `json:"delivery_lag_p99_ms"`

	BusPublishedDelta int64 `json:"bus_published_delta"`
	BusDroppedDelta   int64 `json:"bus_dropped_delta"`
	// Relay-tier counters (zero deltas in direct mode).
	RelayDeliveriesDelta      int64 `json:"relay_deliveries_delta,omitempty"`
	RelayDroppedDelta         int64 `json:"relay_dropped_delta,omitempty"`
	RelayShedDelta            int64 `json:"relay_shed_delta,omitempty"`
	RelayUpstreamDroppedDelta int64 `json:"relay_upstream_dropped_delta,omitempty"`
	// Observed mid-phase, while every client was still attached.
	ClientsObserved       int `json:"clients_observed"`
	UpstreamDepthObserved int `json:"upstream_depth_observed"`
	// DropRate is dropped/(delivered+dropped) for the tier that served the
	// phase: relay drops+sheds over relay deliveries, or bus drops over
	// lag-counted deliveries in direct mode.
	DropRate float64 `json:"drop_rate"`
}

type LatencyReport struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type SSEClientReport struct {
	ID     int    `json:"id"`
	Slow   bool   `json:"slow"`
	Events int64  `json:"events"`
	Bytes  int64  `json:"bytes"`
	Error  string `json:"error,omitempty"`
}

// ServerReport is the server's own telemetry, differenced across the soak.
type ServerReport struct {
	BusPublishedDelta int64                    `json:"bus_published_delta"`
	BusDroppedDelta   int64                    `json:"bus_dropped_delta"`
	HTTPRequestsDelta int64                    `json:"http_requests_delta"`
	Endpoints         []ServerEndpointDelta    `json:"endpoints,omitempty"`
	SSELagCountDelta  int64                    `json:"sse_lag_count_delta"`
	SSELagAfter       *server.StageLatencyView `json:"sse_lag_after,omitempty"`
	SubscribersAtEnd  []events.SubscriberDepth `json:"subscribers_at_end,omitempty"`
	FeedCoverage      *float64                 `json:"feed_coverage,omitempty"`
	// Relay-tier counters; absent when the daemon runs -relay=false.
	RelayDeliveriesDelta      int64             `json:"relay_deliveries_delta,omitempty"`
	RelayDroppedDelta         int64             `json:"relay_dropped_delta,omitempty"`
	RelayShedDelta            int64             `json:"relay_shed_delta,omitempty"`
	RelayUpstreamDroppedDelta int64             `json:"relay_upstream_dropped_delta,omitempty"`
	RelayAtEnd                *events.RelayInfo `json:"relay_at_end,omitempty"`
}

type ServerEndpointDelta struct {
	Endpoint      string                  `json:"endpoint"`
	RequestsDelta int64                   `json:"requests_delta"`
	LatencyAfter  server.StageLatencyView `json:"latency_after"`
}

func latencyReport(h metrics.HistogramSnapshot) LatencyReport {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyReport{
		Count:  h.Count,
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P90MS:  ms(h.Quantile(0.90)),
		P99MS:  ms(h.Quantile(0.99)),
	}
}

// timedGet issues one GET (conditional when inm is non-empty), fully
// drains the body (so keep-alive reuse and the server's latency measurement
// both cover the whole response), and returns the status (0 on transport
// error), the response ETag, and the client-observed duration.
func timedGet(ctx context.Context, client *http.Client, url, inm string) (int, string, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", time.Since(start), err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	etag := resp.Header.Get("ETag")
	if cerr != nil {
		return resp.StatusCode, etag, d, cerr
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, etag, d, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return resp.StatusCode, etag, d, nil
}

// runSweep holds sweepCounts[i] SSE clients open for dur each, differencing
// the server's stats across every phase, then writes the report and applies
// the per-phase minSSE floor.
func runSweep(client *http.Client, base string, counts []int, dur time.Duration, label, out string, minSSE int64) {
	rep := Report{
		Target:          base,
		Label:           label,
		StartedAt:       time.Now().UTC(),
		DurationSeconds: (time.Duration(len(counts)) * dur).Seconds(),
	}
	for _, n := range counts {
		phase, err := runSweepPhase(client, base, n, dur)
		if err != nil {
			fatal(fmt.Errorf("sweep phase %d clients: %w", n, err))
		}
		rep.Sweep = append(rep.Sweep, phase)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(out, raw, 0o644); err != nil {
		fatal(err)
	}

	for _, p := range rep.Sweep {
		if p.EventsTotal < minSSE {
			fatal(fmt.Errorf("phase with %d clients delivered %d SSE events, need at least %d",
				p.Clients, p.EventsTotal, minSSE))
		}
	}
}

func runSweepPhase(client *http.Client, base string, clients int, dur time.Duration) (SweepPhase, error) {
	before, err := fetchStats(client, base)
	if err != nil {
		return SweepPhase{}, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	var wg sync.WaitGroup
	perClient := make([]int64, clients)
	var clientErrs atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ev, _, err := consumeSSE(ctx, base+"/v1/events", 0)
			perClient[id] = ev
			if err != nil {
				clientErrs.Add(1)
			}
		}(i)
	}
	// Mid-phase observation, while every client is still attached: the
	// attached-client count and the relay's upstream queue depth.
	var mid *server.StatsView
	select {
	case <-time.After(dur * 4 / 5):
		mid, _ = fetchStats(client, base)
	case <-ctx.Done():
	}
	wg.Wait()
	after, err := fetchStats(client, base)
	if err != nil {
		return SweepPhase{}, err
	}

	p := SweepPhase{
		Clients:         clients,
		Tier:            "direct",
		DurationSeconds: dur.Seconds(),
		ClientErrors:    clientErrs.Load(),
	}
	for _, ev := range perClient {
		p.EventsTotal += ev
		p.EventsPerClientMax = max(p.EventsPerClientMax, ev)
	}
	p.EventsPerClientMin = p.EventsTotal
	for _, ev := range perClient {
		p.EventsPerClientMin = min(p.EventsPerClientMin, ev)
	}

	if before.Bus != nil && after.Bus != nil {
		p.BusPublishedDelta = after.Bus.Published - before.Bus.Published
		p.BusDroppedDelta = after.Bus.Dropped - before.Bus.Dropped
	}
	var beforeLag, afterLag *server.StageLatencyView
	if before.HTTP != nil {
		beforeLag = before.HTTP.SSELag
	}
	if after.HTTP != nil {
		afterLag = after.HTTP.SSELag
	}
	lag := deltaHistogram(beforeLag, afterLag)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	p.LagCount = lag.Count
	p.LagMeanMS = ms(lag.Mean())
	p.LagP50MS = ms(lag.Quantile(0.50))
	p.LagP90MS = ms(lag.Quantile(0.90))
	p.LagP99MS = ms(lag.Quantile(0.99))

	delivered, dropped := p.LagCount, p.BusDroppedDelta
	if after.Relay != nil {
		p.Tier = "relay"
		if before.Relay != nil {
			p.RelayDeliveriesDelta = after.Relay.Deliveries - before.Relay.Deliveries
			p.RelayDroppedDelta = after.Relay.Dropped - before.Relay.Dropped
			p.RelayShedDelta = after.Relay.Shed - before.Relay.Shed
			p.RelayUpstreamDroppedDelta = after.Relay.UpstreamDropped - before.Relay.UpstreamDropped
		}
		delivered, dropped = p.RelayDeliveriesDelta, p.RelayDroppedDelta+p.RelayShedDelta
	}
	if delivered+dropped > 0 {
		p.DropRate = float64(dropped) / float64(delivered+dropped)
	}
	if mid != nil {
		if mid.Relay != nil {
			p.ClientsObserved = mid.Relay.Clients
			p.UpstreamDepthObserved = mid.Relay.UpstreamDepth
		} else {
			p.ClientsObserved = len(mid.Subscribers)
		}
	}
	return p, nil
}

// deltaHistogram reconstructs the phase-local delivery-lag distribution
// from two cumulative per-bucket snapshots.
func deltaHistogram(before, after *server.StageLatencyView) metrics.HistogramSnapshot {
	h := metrics.HistogramSnapshot{Bounds: metrics.DurationBounds[:]}
	if after == nil || len(after.Buckets) == 0 {
		return h
	}
	h.Counts = make([]int64, len(after.Buckets))
	copy(h.Counts, after.Buckets)
	sum := after.SumSeconds
	if before != nil {
		for i := range before.Buckets {
			if i < len(h.Counts) {
				h.Counts[i] -= before.Buckets[i]
			}
		}
		sum -= before.SumSeconds
	}
	for _, c := range h.Counts {
		h.Count += c
	}
	h.Sum = time.Duration(sum * float64(time.Second))
	return h
}

// consumeSSE reads /v1/events until the context ends, counting delivered
// events (frames carrying a data: line). A nonzero gap sleeps between
// frames to simulate a slow consumer; the server's bounded per-subscriber
// queue turns that backpressure into drops, which the report surfaces
// from the server side.
func consumeSSE(ctx context.Context, url string, gap time.Duration) (eventCount, byteCount int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	// No client timeout here: the stream is meant to live for the soak.
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET %s: %s", url, resp.Status)
	}

	rd := bufio.NewReader(resp.Body)
	inFrame := false
	for {
		line, err := rd.ReadString('\n')
		byteCount += int64(len(line))
		if err != nil {
			// The soak deadline cancelling the request surfaces as a read
			// error; that is the normal way a client ends.
			if ctx.Err() != nil {
				return eventCount, byteCount, nil
			}
			return eventCount, byteCount, err
		}
		switch {
		case strings.HasPrefix(line, "data:"):
			inFrame = true
		case line == "\n" && inFrame:
			eventCount++
			inFrame = false
			if gap > 0 {
				select {
				case <-ctx.Done():
					return eventCount, byteCount, nil
				case <-time.After(gap):
				}
			}
		}
	}
}

func fetchStats(client *http.Client, base string) (*server.StatsView, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	var v server.StatsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// serverDelta differences the server's counters across the soak. Counter
// deltas are exact; histogram quantiles are not differencable, so the lag
// section reports the after-soak distribution alongside its count delta.
func serverDelta(before, after *server.StatsView) *ServerReport {
	rep := &ServerReport{}
	if before.Bus != nil && after.Bus != nil {
		rep.BusPublishedDelta = after.Bus.Published - before.Bus.Published
		rep.BusDroppedDelta = after.Bus.Dropped - before.Bus.Dropped
	}
	beforeCounts := map[string]int64{}
	if before.HTTP != nil {
		for _, e := range before.HTTP.Endpoints {
			beforeCounts[e.Endpoint] = e.Latency.Count
		}
	}
	if after.HTTP != nil {
		for _, e := range after.HTTP.Endpoints {
			d := e.Latency.Count - beforeCounts[e.Endpoint]
			rep.HTTPRequestsDelta += d
			rep.Endpoints = append(rep.Endpoints, ServerEndpointDelta{
				Endpoint:      e.Endpoint,
				RequestsDelta: d,
				LatencyAfter:  e.Latency,
			})
		}
		if after.HTTP.SSELag != nil {
			rep.SSELagAfter = after.HTTP.SSELag
			rep.SSELagCountDelta = after.HTTP.SSELag.Count
			if before.HTTP != nil && before.HTTP.SSELag != nil {
				rep.SSELagCountDelta -= before.HTTP.SSELag.Count
			}
		}
	}
	rep.SubscribersAtEnd = after.Subscribers
	if after.Feeds != nil {
		cov := after.Feeds.Coverage
		rep.FeedCoverage = &cov
	}
	if after.Relay != nil {
		rep.RelayAtEnd = after.Relay
		if before.Relay != nil {
			rep.RelayDeliveriesDelta = after.Relay.Deliveries - before.Relay.Deliveries
			rep.RelayDroppedDelta = after.Relay.Dropped - before.Relay.Dropped
			rep.RelayShedDelta = after.Relay.Shed - before.Relay.Shed
			rep.RelayUpstreamDroppedDelta = after.Relay.UpstreamDropped - before.Relay.UpstreamDropped
		}
	}
	return rep
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keplerload:", err)
	os.Exit(1)
}
