// Command keplerload soaks a running keplerd's serving path and reports
// what clients actually experienced.
//
// It drives two kinds of load concurrently for a fixed duration:
//
//   - N pollers cycling through the read API (/v1/outages, /v1/outages/open,
//     /v1/incidents, /v1/stats, /v1/health/feeds, /healthz, /metrics),
//     recording client-observed latency and status classes per endpoint
//     into the same histogram type the server uses, so the two sides of
//     the connection are directly comparable.
//   - M SSE clients consuming /v1/events. The first -slow-sse of them
//     sleep between frame reads to exert TCP backpressure, which is the
//     documented way to make the server's per-subscriber queues fill and
//     drop — the report shows those drops from the server's side.
//
// Around the soak it snapshots /v1/stats and reports the server-side
// deltas: bus publishes and drops, per-endpoint request counts, and the
// SSE delivery-lag histogram. The JSON report goes to -out (default
// stdout).
//
// Example against a synthetic soak daemon:
//
//	keplerd -seed 1 -synthetic -listen :8080 &
//	keplerload -addr http://127.0.0.1:8080 -duration 30s -out BENCH_pr9_serving.json
//
// keplerload exits nonzero if the target is unreachable, if no poll ever
// succeeded, or if fewer than -min-sse-events SSE events were delivered
// (the CI smoke uses that to assert the event path is alive).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kepler/internal/events"
	"kepler/internal/metrics"
	"kepler/internal/server"
)

// pollPaths is the read-API cycle every poller walks. /v1/events is
// deliberately absent: streaming is the SSE clients' job.
var pollPaths = []string{
	"/v1/outages",
	"/v1/outages/open",
	"/v1/incidents",
	"/v1/stats",
	"/v1/health/feeds",
	"/healthz",
	"/metrics",
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the keplerd under load")
		pollers  = flag.Int("pollers", 4, "concurrent API pollers")
		sse      = flag.Int("sse", 3, "concurrent SSE clients on /v1/events")
		slowSSE  = flag.Int("slow-sse", 1, "of the SSE clients, how many read deliberately slowly (must be <= -sse)")
		slowGap  = flag.Duration("slow-gap", 250*time.Millisecond, "pause a slow SSE client takes between frame reads")
		interval = flag.Duration("poll-interval", 50*time.Millisecond, "pause between requests within one poller")
		duration = flag.Duration("duration", 30*time.Second, "soak length")
		minSSE   = flag.Int64("min-sse-events", 0, "exit nonzero unless at least this many SSE events were delivered across all clients")
		out      = flag.String("out", "-", "report destination: a file path, or - for stdout")
	)
	flag.Parse()

	if *pollers < 0 || *sse < 0 || *slowSSE < 0 || *slowSSE > *sse {
		fatal(fmt.Errorf("need 0 <= -slow-sse <= -sse and -pollers >= 0"))
	}
	if *duration <= 0 {
		fatal(fmt.Errorf("-duration must be positive, got %v", *duration))
	}

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	before, err := fetchStats(client, base)
	if err != nil {
		fatal(fmt.Errorf("target not reachable: %w", err))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	// Client-side telemetry reuses the server's own histogram machinery so
	// the report's client and server sections have identical bucket edges.
	hs := metrics.NewHTTPStats()
	var requests, errors atomic.Int64
	errorsByEndpoint := sync.Map{} // path -> *atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < *pollers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Stagger the starting endpoint so pollers don't convoy.
			for n := id; ; n++ {
				path := pollPaths[n%len(pollPaths)]
				status, d, err := timedGet(ctx, client, base+path)
				requests.Add(1)
				hs.Observe(path, status, d)
				if err != nil {
					errors.Add(1)
					c, _ := errorsByEndpoint.LoadOrStore(path, new(atomic.Int64))
					c.(*atomic.Int64).Add(1)
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(*interval):
				}
			}
		}(i)
	}

	sseReports := make([]SSEClientReport, *sse)
	for i := 0; i < *sse; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			slow := id < *slowSSE
			gap := time.Duration(0)
			if slow {
				gap = *slowGap
			}
			ev, bytes, err := consumeSSE(ctx, base+"/v1/events", gap)
			sseReports[id] = SSEClientReport{
				ID:     id,
				Slow:   slow,
				Events: ev,
				Bytes:  bytes,
				Error:  errString(err),
			}
		}(i)
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	after, aerr := fetchStats(client, base)

	rep := Report{
		Target:          base,
		StartedAt:       start.UTC(),
		DurationSeconds: elapsed.Seconds(),
		Pollers:         *pollers,
		SSEClients:      *sse,
		SlowSSEClients:  *slowSSE,
		PollIntervalMS:  float64(*interval) / float64(time.Millisecond),
		SlowGapMS:       float64(*slowGap) / float64(time.Millisecond),
		Client: ClientReport{
			Requests: requests.Load(),
			Errors:   errors.Load(),
			SSE:      sseReports,
		},
	}
	for _, r := range sseReports {
		rep.Client.SSEEventsTotal += r.Events
	}
	snap := hs.Snapshot()
	for _, e := range snap.Endpoints {
		var errs int64
		if c, ok := errorsByEndpoint.Load(e.Endpoint); ok {
			errs = c.(*atomic.Int64).Load()
		}
		rep.Client.Endpoints = append(rep.Client.Endpoints, EndpointReport{
			Endpoint: e.Endpoint,
			Requests: e.Latency.Count,
			Errors:   errs,
			Statuses: e.Statuses,
			Latency:  latencyReport(e.Latency),
		})
	}
	if aerr != nil {
		rep.ServerError = aerr.Error()
	} else {
		rep.Server = serverDelta(before, after)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}

	if requests.Load() > 0 && errors.Load() == requests.Load() {
		fatal(fmt.Errorf("every one of %d polls failed", requests.Load()))
	}
	if rep.Client.SSEEventsTotal < *minSSE {
		fatal(fmt.Errorf("delivered %d SSE events, need at least %d", rep.Client.SSEEventsTotal, *minSSE))
	}
}

// Report is the JSON document keplerload emits.
type Report struct {
	Target          string        `json:"target"`
	StartedAt       time.Time     `json:"started_at"`
	DurationSeconds float64       `json:"duration_seconds"`
	Pollers         int           `json:"pollers"`
	SSEClients      int           `json:"sse_clients"`
	SlowSSEClients  int           `json:"slow_sse_clients"`
	PollIntervalMS  float64       `json:"poll_interval_ms"`
	SlowGapMS       float64       `json:"slow_gap_ms"`
	Client          ClientReport  `json:"client"`
	Server          *ServerReport `json:"server,omitempty"`
	ServerError     string        `json:"server_error,omitempty"`
}

// ClientReport is everything measured from the load generator's side of
// the connection.
type ClientReport struct {
	Requests       int64             `json:"requests"`
	Errors         int64             `json:"errors"`
	Endpoints      []EndpointReport  `json:"endpoints"`
	SSE            []SSEClientReport `json:"sse"`
	SSEEventsTotal int64             `json:"sse_events_total"`
}

type EndpointReport struct {
	Endpoint string           `json:"endpoint"`
	Requests int64            `json:"requests"`
	Errors   int64            `json:"errors"`
	Statuses map[string]int64 `json:"statuses"`
	Latency  LatencyReport    `json:"latency"`
}

type LatencyReport struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type SSEClientReport struct {
	ID     int    `json:"id"`
	Slow   bool   `json:"slow"`
	Events int64  `json:"events"`
	Bytes  int64  `json:"bytes"`
	Error  string `json:"error,omitempty"`
}

// ServerReport is the server's own telemetry, differenced across the soak.
type ServerReport struct {
	BusPublishedDelta int64                    `json:"bus_published_delta"`
	BusDroppedDelta   int64                    `json:"bus_dropped_delta"`
	HTTPRequestsDelta int64                    `json:"http_requests_delta"`
	Endpoints         []ServerEndpointDelta    `json:"endpoints,omitempty"`
	SSELagCountDelta  int64                    `json:"sse_lag_count_delta"`
	SSELagAfter       *server.StageLatencyView `json:"sse_lag_after,omitempty"`
	SubscribersAtEnd  []events.SubscriberDepth `json:"subscribers_at_end,omitempty"`
	FeedCoverage      *float64                 `json:"feed_coverage,omitempty"`
}

type ServerEndpointDelta struct {
	Endpoint      string                  `json:"endpoint"`
	RequestsDelta int64                   `json:"requests_delta"`
	LatencyAfter  server.StageLatencyView `json:"latency_after"`
}

func latencyReport(h metrics.HistogramSnapshot) LatencyReport {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyReport{
		Count:  h.Count,
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P90MS:  ms(h.Quantile(0.90)),
		P99MS:  ms(h.Quantile(0.99)),
	}
}

// timedGet issues one GET, fully drains the body (so keep-alive reuse and
// the server's latency measurement both cover the whole response), and
// returns the status (0 on transport error) with the client-observed
// duration.
func timedGet(ctx context.Context, client *http.Client, url string) (int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, time.Since(start), err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	if cerr != nil {
		return resp.StatusCode, d, cerr
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, d, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return resp.StatusCode, d, nil
}

// consumeSSE reads /v1/events until the context ends, counting delivered
// events (frames carrying a data: line). A nonzero gap sleeps between
// frames to simulate a slow consumer; the server's bounded per-subscriber
// queue turns that backpressure into drops, which the report surfaces
// from the server side.
func consumeSSE(ctx context.Context, url string, gap time.Duration) (eventCount, byteCount int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	// No client timeout here: the stream is meant to live for the soak.
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET %s: %s", url, resp.Status)
	}

	rd := bufio.NewReader(resp.Body)
	inFrame := false
	for {
		line, err := rd.ReadString('\n')
		byteCount += int64(len(line))
		if err != nil {
			// The soak deadline cancelling the request surfaces as a read
			// error; that is the normal way a client ends.
			if ctx.Err() != nil {
				return eventCount, byteCount, nil
			}
			return eventCount, byteCount, err
		}
		switch {
		case strings.HasPrefix(line, "data:"):
			inFrame = true
		case line == "\n" && inFrame:
			eventCount++
			inFrame = false
			if gap > 0 {
				select {
				case <-ctx.Done():
					return eventCount, byteCount, nil
				case <-time.After(gap):
				}
			}
		}
	}
}

func fetchStats(client *http.Client, base string) (*server.StatsView, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	var v server.StatsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// serverDelta differences the server's counters across the soak. Counter
// deltas are exact; histogram quantiles are not differencable, so the lag
// section reports the after-soak distribution alongside its count delta.
func serverDelta(before, after *server.StatsView) *ServerReport {
	rep := &ServerReport{}
	if before.Bus != nil && after.Bus != nil {
		rep.BusPublishedDelta = after.Bus.Published - before.Bus.Published
		rep.BusDroppedDelta = after.Bus.Dropped - before.Bus.Dropped
	}
	beforeCounts := map[string]int64{}
	if before.HTTP != nil {
		for _, e := range before.HTTP.Endpoints {
			beforeCounts[e.Endpoint] = e.Latency.Count
		}
	}
	if after.HTTP != nil {
		for _, e := range after.HTTP.Endpoints {
			d := e.Latency.Count - beforeCounts[e.Endpoint]
			rep.HTTPRequestsDelta += d
			rep.Endpoints = append(rep.Endpoints, ServerEndpointDelta{
				Endpoint:      e.Endpoint,
				RequestsDelta: d,
				LatencyAfter:  e.Latency,
			})
		}
		if after.HTTP.SSELag != nil {
			rep.SSELagAfter = after.HTTP.SSELag
			rep.SSELagCountDelta = after.HTTP.SSELag.Count
			if before.HTTP != nil && before.HTTP.SSELag != nil {
				rep.SSELagCountDelta -= before.HTTP.SSELag.Count
			}
		}
	}
	rep.SubscribersAtEnd = after.Subscribers
	if after.Feeds != nil {
		cov := after.Feeds.Coverage
		rep.FeedCoverage = &cov
	}
	return rep
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keplerload:", err)
	os.Exit(1)
}
