package main

import (
	"strings"
	"testing"
)

func TestValidatePprofFlags(t *testing.T) {
	cases := []struct {
		name    string
		addr    string
		listen  string
		wantErr string // substring; empty means valid
	}{
		{name: "disabled", addr: "", listen: "127.0.0.1:8080"},
		{name: "loopback", addr: "127.0.0.1:6060", listen: "127.0.0.1:8080"},
		{name: "ephemeral port", addr: "127.0.0.1:0", listen: "127.0.0.1:8080"},
		{name: "wildcard host", addr: ":6060", listen: "127.0.0.1:8080"},
		{name: "not host:port", addr: "6060", listen: "127.0.0.1:8080",
			wantErr: "-pprof-addr must be host:port"},
		{name: "missing port", addr: "127.0.0.1:", listen: "127.0.0.1:8080",
			wantErr: "-pprof-addr must name a port"},
		{name: "same as listen", addr: "127.0.0.1:8080", listen: "127.0.0.1:8080",
			wantErr: "collides with -listen"},
		{name: "wildcard same port as listen", addr: ":8080", listen: ":8080",
			wantErr: "collides with -listen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validatePprofFlags(tc.addr, tc.listen)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
