package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateCheckpointFlags(t *testing.T) {
	cases := []struct {
		name     string
		interval time.Duration
		wantErr  string // substring; empty means valid
	}{
		{name: "default", interval: 15 * time.Minute},
		{name: "one bin", interval: time.Minute},
		{name: "zero", interval: 0,
			wantErr: "-checkpoint-interval must be positive, got 0s"},
		{name: "negative", interval: -time.Hour,
			wantErr: "-checkpoint-interval must be positive, got -1h0m0s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateCheckpointFlags(tc.interval)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
