package main

import (
	"testing"
	"time"
)

func TestValidateFeedFlags(t *testing.T) {
	cases := []struct {
		name    string
		silence time.Duration
		floor   float64
		wantErr bool
	}{
		{"disabled", 0, 0, false},
		{"watchdog only", 30 * time.Minute, 0, false},
		{"watchdog with floor", 30 * time.Minute, 0.5, false},
		{"floor of one", time.Minute, 1, false},
		{"negative silence", -time.Second, 0, true},
		{"negative floor", time.Minute, -0.1, true},
		{"floor above one", time.Minute, 1.1, true},
		{"floor without watchdog", 0, 0.5, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFeedFlags(tc.silence, tc.floor)
			if (err != nil) != tc.wantErr {
				t.Errorf("validateFeedFlags(%v, %v) error = %v, wantErr %v",
					tc.silence, tc.floor, err, tc.wantErr)
			}
		})
	}
}
