package main

import (
	"fmt"
	"net"
)

// validatePprofFlags checks the profiling flags before any world generation
// happens, in the descriptive style of probeflags.go. Profiling is opt-in:
// an empty address disables it entirely, and when enabled it must bind a
// listener of its own so the debug surface never shares a port with the
// public API (-listen).
func validatePprofFlags(addr, listen string) error {
	if addr == "" {
		return nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof-addr must be host:port, got %q: %v (profiling is served on its own listener; leave it empty to disable)", addr, err)
	}
	if port == "" {
		return fmt.Errorf("-pprof-addr must name a port, got %q (\":0\" picks a free one)", addr)
	}
	if addr == listen || (host == "" && ":"+port == listen) {
		return fmt.Errorf("-pprof-addr %q collides with -listen %q: the debug endpoints must not share the public API listener", addr, listen)
	}
	return nil
}
