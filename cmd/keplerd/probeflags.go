package main

import "fmt"

// Probe backend names accepted by -probe-backend.
const (
	probeBackendNone     = ""
	probeBackendSim      = "sim"
	probeBackendSimFault = "sim-fault"
)

// validateProbeFlags checks the active-measurement flags before any world
// generation happens, mirroring the descriptive style of the other flag
// validations: the error names the flag, the rejected value and the rule.
func validateProbeFlags(backend string, budget int, synthetic bool) error {
	switch backend {
	case probeBackendNone, probeBackendSim, probeBackendSimFault:
	default:
		return fmt.Errorf("-probe-backend must be one of %q, %q or empty, got %q",
			probeBackendSim, probeBackendSimFault, backend)
	}
	if budget <= 0 {
		return fmt.Errorf("-probe-budget must be positive, got %d (it caps probes per sliding window; disable probing by leaving -probe-backend empty)", budget)
	}
	if backend != probeBackendNone && !synthetic {
		return fmt.Errorf("-probe-backend %q requires -synthetic: the simulated measurement substrate is rebuilt from the rendered scenario windows, which an archive replay does not carry", backend)
	}
	return nil
}
