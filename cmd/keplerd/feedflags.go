package main

import (
	"fmt"
	"time"
)

// validateFeedFlags checks the feed-health watchdog knobs. The silence
// threshold is stream time (never wall clock), so it composes with any
// replay speed; zero disables the watchdog entirely. The coverage floor
// gates /healthz readiness and is meaningless without the watchdog that
// measures coverage.
func validateFeedFlags(silence time.Duration, floor float64) error {
	if silence < 0 {
		return fmt.Errorf("-feed-silence must be non-negative, got %v (0 disables the feed watchdog)", silence)
	}
	if floor < 0 || floor > 1 {
		return fmt.Errorf("-feed-floor must be in [0,1], got %v (it is the live/known session ratio below which /healthz degrades)", floor)
	}
	if floor > 0 && silence == 0 {
		return fmt.Errorf("-feed-floor requires -feed-silence > 0 (coverage is undefined without the watchdog)")
	}
	return nil
}
