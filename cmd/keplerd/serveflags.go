package main

import "fmt"

// validateServeFlags checks the serving-tier flags in the descriptive style
// of probeflags.go.
//
// -relay is a boolean and needs no range check; it is accepted here so the
// serving-tier knobs validate in one place. With the relay on (the
// default), all SSE clients share one bus subscription through the fan-out
// tier; off, each client subscribes to the bus directly — the pre-relay
// behavior, useful for isolating the relay when debugging delivery.
//
// -read-cache sizes the store's decoded-entry LRU (per history type, in
// entries). Deep pagination reads sealed segment files through this cache,
// so it bounds the resident cost of serving history: too small thrashes on
// hot pages, and zero or negative would disable the only bound between a
// request and a disk read per entry.
func validateServeFlags(relay bool, readCache int) error {
	_ = relay
	if readCache <= 0 {
		return fmt.Errorf("-read-cache must be positive, got %d (entries of decoded history kept in memory for segment-backed reads)", readCache)
	}
	if readCache > 1<<24 {
		return fmt.Errorf("-read-cache must be at most %d, got %d (a larger cache than 16Mi entries defeats the point of paging history off disk)", 1<<24, readCache)
	}
	return nil
}
