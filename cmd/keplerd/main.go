// Command keplerd runs Kepler as a long-lived service: it ingests a
// streamed record source through the sharded detection engine and serves
// detection results over an HTTP JSON API plus a Server-Sent-Events stream
// while ingestion is running. This is the daemon shape of the paper's
// deployment — a continuously-operating monitor rather than a batch report.
//
// Two sources are available:
//
//   - -archive replays an MRT-lite file (from cmd/topogen) through a
//     rate-controlled replayer: -speed 1 re-creates the original arrival
//     timing, -speed 60 compresses an archive minute into a second, and
//     -speed 0 (the default) replays as fast as the hardware allows. After
//     the archive drains, the daemon keeps serving its results until
//     signalled.
//   - -synthetic renders rolling scenario windows over the generated world
//     forever — the soak-test mode; no file needed.
//
// The colocation map and community dictionary are reconstructed from the
// same world seed the archive was generated with, exactly as cmd/kepler
// does.
//
// With -data-dir the daemon keeps its history durable: every lifecycle
// event is appended to a checksummed write-ahead log (internal/store),
// compacted periodically into snapshot segments, and the engine's full
// detection state is checkpointed beside it every -checkpoint-interval of
// stream time. On boot the directory is recovered — resolved outages and
// incidents are served immediately, SSE sequence numbers continue where
// they left off (so Last-Event-ID resume works across restarts), the
// engine restores the newest valid checkpoint (corrupt or incompatible
// checkpoints fall back to the older generation, then to record zero),
// and the source is re-ingested from the checkpoint's record cursor with
// already-persisted events suppressed — a restart mid-archive is
// equivalent to one uninterrupted run, and the catch-up cost is bounded
// by one checkpoint interval rather than the stream length
// (store.resume_records in /v1/stats reports the resume offset). A data
// dir is bound to one (source, seed, detection config, probe config)
// tuple; pointing it at a different archive or changing -tfail,
// -probe-backend or -probe-budget desynchronizes the replay gate — in
// particular, restarting without the probe backend strands any recovered
// mid-campaign confirmations forever (the daemon warns and drops them
// from serving in that case, and refuses checkpoints that carry parked
// campaigns).
//
// With -probe-backend the daemon grows a data plane: signal groups whose
// epicenters need corroboration are parked as probe campaigns executed
// asynchronously by internal/probe against the simulated traceroute
// substrate of the rendered scenario windows (-synthetic only), under the
// -probe-budget sliding-window cap. Campaign verdicts promote, refute or
// expire the parked groups at bin barriers; in-flight campaigns appear at
// /v1/probes, their counters in /v1/stats, and — with -data-dir — survive a
// restart: recovery serves the interrupted pendings immediately and the
// deterministic catch-up re-parks and re-measures them.
//
// With -trace (on by default) the engine records detection provenance:
// per outage, the evidence chain behind the call — diverted-path signal
// groups, localization candidates considered and eliminated, collateral
// folds, probe campaign verdicts — served at /v1/outages/{id}/trace,
// streamed as `trace` SSE events, and persisted through the store so the
// evidence survives restarts. Tracing changes the published event sequence
// (one trace event per resolution), so a data dir is bound to the -trace
// setting like it is to the detection config. Recording costs nothing when
// disabled and never perturbs detection output either way.
//
// With -feed-silence (30m of stream time by default; 0 disables) the
// engine runs a feed-health watchdog: every collector and every
// (collector, peer) session is tracked by the stream clock, flagged
// degraded after the silence threshold and recovered when it speaks
// again. Transitions surface as feed_degraded / feed_recovered SSE
// events, warn/info log lines and counters; the current per-session view
// with a live/known coverage ratio is served at /v1/health/feeds and as
// kepler_feed_* gauges at /metrics. The watchdog runs on stream time
// only, so it is deterministic across replay speeds and restarts — its
// state rides in the engine checkpoint and its events sit under the
// replay gate like every other kind, which binds a data dir to the
// -feed-silence setting like it is to the detection config.
// -feed-floor withdraws /healthz readiness (503) while feed coverage
// sits below the given ratio.
//
// Observability: keplerd logs through log/slog — -log-format text|json,
// -log-level debug|info|warn|error — with component-scoped loggers for the
// store, probe scheduler, server and source. Every bin close is measured
// in stages (shard barrier, divert merge, probe collection, classification,
// baseline cleanup, hooks); the fixed-bucket histograms appear in /v1/stats
// under bin_close and at /metrics as kepler_bin_close_seconds /
// kepler_bin_close_stage_seconds. -slow-bin-ms logs a structured per-stage
// report for any bin close over the threshold. The serving path itself is
// measured too: per-endpoint request latency and status-class histograms
// (kepler_http_request_seconds), SSE delivery lag from publish to the
// completed client write (kepler_sse_delivery_lag_seconds), and
// per-subscriber queue depth / drop gauges (kepler_sse_queue_depth,
// kepler_sse_queue_dropped_total) — all in /v1/stats under http and
// subscribers, and at /metrics. cmd/keplerload soaks the serving path
// from the client side and reports both perspectives side by side.
//
// Serving tier: read and event throughput scale independently of history
// size and client count. With -data-dir, /v1/outages and /v1/incidents
// page off the store's indexed snapshot segments through a -read-cache
// bounded LRU — resident memory and boot cost no longer grow with how long
// the data dir has been accumulating. Every read endpoint carries a strong
// ETag per published snapshot and answers If-None-Match with 304; the
// hottest bodies are pre-marshaled once per snapshot. /v1/events clients
// fan out from a relay (-relay, on by default) that holds exactly one bus
// subscription, so a thousand SSE streams cost the ingestion path one
// subscriber; per-client queues stay bounded and an aggregate budget sheds
// newest-joined clients first under overload (relay counters in /v1/stats
// and /metrics).
//
// Endpoints: /healthz, /metrics (Prometheus text exposition),
// /v1/health/feeds, /v1/outages, /v1/outages/{id}/trace,
// /v1/outages/open, /v1/incidents, /v1/probes, /v1/stats, /v1/events
// (SSE). /v1/outages and /v1/incidents paginate with
// ?after=<id>&limit=<n>.
// -pprof-addr additionally serves the standard net/http/pprof debug
// endpoints on a listener of their own — opt-in, and never on the API port.
// Shutdown on SIGINT/SIGTERM is graceful: the source is drained, the
// engine flushed (emitting final outage events), subscribers closed, the
// store synced, and the HTTP server stopped.
//
// Usage:
//
//	keplerd -seed 1 -archive archive.mrt -listen 127.0.0.1:8080
//	keplerd -seed 1 -archive archive.mrt -data-dir /var/lib/kepler
//	keplerd -seed 1 -synthetic -speed 600
//	keplerd -seed 1 -synthetic -probe-backend sim -probe-budget 512
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/live"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
	"kepler/internal/pipeline"
	"kepler/internal/probe"
	"kepler/internal/server"
	"kepler/internal/store"
	"kepler/internal/topology"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed the archive was generated with")
		archive   = flag.String("archive", "", "MRT-lite archive to replay")
		synthetic = flag.Bool("synthetic", false, "soak mode: stream rendered scenario windows instead of an archive")
		speed     = flag.Float64("speed", 0, "archive replay speed multiplier; 0 replays at maximum speed")
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		tfail     = flag.Float64("tfail", 0.10, "outage signal threshold, in (0,1]")
		unres     = flag.Bool("report-unresolved", true, "report outages whose epicenter could not be pinned (no data plane in replay mode)")
		shards    = flag.Int("shards", runtime.GOMAXPROCS(0), "path-state shard workers; <= 0 selects one per core")
		sseBuffer = flag.Int("sse-buffer", 256, "per-client SSE event queue; a client stalled past it loses events")
		grace     = flag.Duration("shutdown-timeout", 10*time.Second, "graceful HTTP shutdown budget")
		dataDir   = flag.String("data-dir", "", "durable history directory (WAL + snapshots); empty keeps history in memory only")
		compactMB = flag.Int64("compact-mb", 8, "WAL size in MiB past which the next bin close compacts into a snapshot segment")
		ckptIv    = flag.Duration("checkpoint-interval", 15*time.Minute, "stream time between engine state checkpoints (with -data-dir); restart recovery re-ingests at most this much of the stream. Checkpoint segments rotate independently of -compact-mb")
		ringSize  = flag.Int("resume-ring", 4096, "recent events retained for SSE Last-Event-ID resume")
		probeBkn  = flag.String("probe-backend", "", "active-measurement backend: sim, sim-fault (latency/loss-injected soak), or empty to disable probing; requires -synthetic")
		probeBdg  = flag.Int("probe-budget", 256, "probes allowed per sliding one-hour window")
		investW   = flag.Int("invest-workers", 0, "goroutines for the bin-close signal investigation; <= 1 classifies inline (output is identical at any count)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this host:port (own listener, never the API's); empty disables profiling")
		logFormat = flag.String("log-format", logFormatText, "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		slowBinMS = flag.Int("slow-bin-ms", 0, "log a structured per-stage report for any bin close slower than this many milliseconds; 0 disables")
		tracing   = flag.Bool("trace", true, "record detection provenance traces, served at /v1/outages/{id}/trace; a data dir is bound to this setting like it is to the detection config")
		feedSil   = flag.Duration("feed-silence", 30*time.Minute, "stream time after which a silent collector or peer session is flagged degraded (feed-health watchdog, /v1/health/feeds); 0 disables. A data dir is bound to this setting like it is to the detection config")
		feedFloor = flag.Float64("feed-floor", 0, "feed coverage ratio (live/known peer sessions) below which /healthz reports 503; 0 disables, requires -feed-silence > 0")
		relayOn   = flag.Bool("relay", true, "serve /v1/events through the SSE fan-out relay: every client shares one bus subscription; off subscribes each client to the bus directly")
		readCache = flag.Int("read-cache", 4096, "decoded history entries cached in memory per type when paging /v1/outages and /v1/incidents off snapshot segments (with -data-dir)")
	)
	flag.Parse()

	if *seed < 0 {
		fatal(fmt.Errorf("-seed must be non-negative, got %d (a world cannot be generated from a negative seed)", *seed))
	}
	if *tfail <= 0 || *tfail > 1 {
		fatal(fmt.Errorf("-tfail must be in (0,1], got %v (it is the fraction of an AS's stable paths that must divert)", *tfail))
	}
	if *speed < 0 {
		fatal(fmt.Errorf("-speed must be >= 0, got %v (0 replays at maximum speed)", *speed))
	}
	if *archive == "" && !*synthetic {
		fatal(fmt.Errorf("one of -archive or -synthetic is required"))
	}
	if *archive != "" && *synthetic {
		fatal(fmt.Errorf("-archive and -synthetic are mutually exclusive"))
	}
	if *compactMB <= 0 {
		fatal(fmt.Errorf("-compact-mb must be positive, got %d", *compactMB))
	}
	if err := validateCheckpointFlags(*ckptIv); err != nil {
		fatal(err)
	}
	if *ringSize < 0 {
		fatal(fmt.Errorf("-resume-ring must be non-negative, got %d (0 disables resume)", *ringSize))
	}
	if err := validateProbeFlags(*probeBkn, *probeBdg, *synthetic); err != nil {
		fatal(err)
	}
	if *investW > 1024 {
		fatal(fmt.Errorf("-invest-workers must be at most 1024, got %d (workers beyond the per-bin signal-group count idle anyway)", *investW))
	}
	if err := validatePprofFlags(*pprofAddr, *listen); err != nil {
		fatal(err)
	}
	if err := validateLogFlags(*logFormat, *logLevel); err != nil {
		fatal(err)
	}
	if err := validateSlowBinFlag(*slowBinMS); err != nil {
		fatal(err)
	}
	if err := validateFeedFlags(*feedSil, *feedFloor); err != nil {
		fatal(err)
	}
	if err := validateServeFlags(*relayOn, *readCache); err != nil {
		fatal(err)
	}

	// One root logger; every subsystem logs through a component-scoped
	// child so a single -log-format/-log-level pair governs the process.
	logger := newLogger(os.Stderr, *logFormat, *logLevel)
	dlog := logger.With("component", "daemon")

	cfg := topology.DefaultConfig()
	cfg.Seed = *seed
	w, err := topology.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	stack := pipeline.Build(w, 77)
	dlog.Info("pipeline built",
		"communities", stack.Dict.Len(), "ases", len(stack.Dict.CoveredASNs()),
		"facilities", stack.Map.NumFacilities(), "ixps", stack.Map.NumIXPs())

	// Active-measurement substrate: the probe scheduler measures against
	// the simulated traceroute layer of the rendered scenario windows,
	// installed as the synthetic source rotates them. Per-window platform
	// budgets are effectively unbounded — the scheduler's sliding window is
	// the enforced cap.
	var (
		probeStats *metrics.ProbeStats
		wdp        *pipeline.WindowDataPlane
		sched      *probe.Scheduler
	)
	if *probeBkn != probeBackendNone {
		probeStats = &metrics.ProbeStats{}
		wdp = stack.NewWindowDataPlane(1 << 30)
		backend := probe.Backend(probe.OverDataPlane(wdp))
		if *probeBkn == probeBackendSimFault {
			backend = &probe.Fault{
				Inner:    backend,
				Latency:  2 * time.Second,
				Jitter:   500 * time.Millisecond,
				LossRate: 0.05,
				Seed:     *seed,
			}
		}
		sched = probe.NewScheduler(backend, probe.Config{
			Workers:  4,
			Budget:   *probeBdg,
			Window:   time.Hour,
			Cooldown: 5 * time.Minute,
			Metrics:  probeStats,
			Logger:   logger.With("component", "probe"),
		})
		defer sched.Close()
		dlog.Info("probe scheduler on", "backend", *probeBkn, "budget_per_hour", *probeBdg)
	}

	// Source. Both sources are Resumable; the Tracked wrapper remembers the
	// cursor of the in-flight record so checkpoints taken inside BinClosed
	// hooks (mid-Process) can record the exact resume position.
	var tracked *live.Tracked
	switch {
	case *synthetic:
		scfg := live.SyntheticConfig{Seed: *seed + 100, Logger: logger.With("component", "source")}
		if wdp != nil {
			scfg.OnWindow = wdp.Install
		}
		tracked = live.Track(live.NewSynthetic(w, scfg))
		dlog.Info("synthetic soak source (endless rolling windows)")
	default:
		f, err := os.Open(*archive)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracked = live.Track(live.NewReplayer(mrt.NewReader(f), *speed))
		dlog.Info("replaying archive", "archive", *archive, "speed", speedName(*speed))
	}
	var src live.Source = tracked

	kcfg := core.DefaultConfig()
	kcfg.Tfail = *tfail
	kcfg.ReportUnresolved = *unres
	kcfg.InvestWorkers = *investW
	kcfg.Tracing = *tracing
	kcfg.FeedSilence = *feedSil

	// Staged bin-close latency: always collected (a handful of monotonic
	// clock reads per bin), exported via /v1/stats and /metrics. -slow-bin-ms
	// additionally turns outliers into structured warn reports.
	binStage := &metrics.BinStageStats{}
	if *slowBinMS > 0 {
		//keplervet:ignore atomicstats write-once config before the engine or server goroutines exist
		binStage.SlowBinThreshold = time.Duration(*slowBinMS) * time.Millisecond
		binStage.OnSlowBin = func(sp metrics.BinSpans) {
			dlog.Warn("slow bin close", slowBinAttrs(sp)...)
		}
	}

	// Durable history. The store's sink runs synchronously on the ingest
	// goroutine. On a shutdown-abort the whole hook chain is muted (see
	// events.MuteHooks) before the engine's final flush, so the resolution
	// artifacts of stopping are neither published nor persisted — a
	// deterministic re-ingestion would not regenerate them, and burning
	// sequence numbers on them would break SSE resume across the restart.
	svc := &metrics.ServiceStats{}
	var (
		st         *store.Store
		storeStats *metrics.StoreStats
		sum        store.Summary
		sinkArmed  atomic.Bool // cleared if an append fails: serve on, in memory
		aborting   atomic.Bool // set by OnAbort: mute hooks through shutdown
		resume     *store.Checkpoint
		engCkpt    *core.Checkpoint
	)
	busOpts := []events.Option{events.WithRing(*ringSize)}
	if *dataDir != "" {
		storeStats = &metrics.StoreStats{}
		st, err = store.Open(store.Options{
			Dir:          *dataDir,
			CompactBytes: *compactMB << 20,
			TailEvents:   *ringSize,
			ReadCache:    *readCache,
			Metrics:      storeStats,
			Logger:       logger.With("component", "store"),
		})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		// Summary, not History: recovery needs the bounded state (totals,
		// traces, pendings, event tail) — the entry histories stay on disk
		// and are paged in per request, so boot cost and resident memory no
		// longer scale with how long the data dir has been accumulating.
		sum = st.Summary()
		sinkArmed.Store(true)
		busOpts = append(busOpts,
			events.WithStartSeq(sum.LastSeq),
			events.WithSink(func(ev events.Event) {
				if !sinkArmed.Load() {
					return
				}
				if err := st.Append(ev); err != nil {
					// Losing durability must not take down detection;
					// serve on, in-memory, and say so loudly.
					dlog.Error("store append failed, persistence disabled", "error", err)
					sinkArmed.Store(false)
				}
			}),
		)
		dlog.Info("history recovered", "dir", *dataDir,
			"outages", sum.ResolvedTotal, "incidents", sum.IncidentTotal,
			"traces", len(sum.Traces), "seq", sum.LastSeq, "last_bin", sum.LastBin)

		// Newest usable engine checkpoint: structurally valid (CRC-framed),
		// version-compatible, not ahead of the durable event horizon (a
		// machine crash can persist a checkpoint whose WAL pages were lost),
		// and runnable in this configuration. Anything else falls back —
		// older checkpoint, then full re-ingest — never a partial restore.
		resume = st.LoadCheckpoint(func(c *store.Checkpoint) error {
			if c.EventSeq > sum.LastSeq {
				return fmt.Errorf("checkpoint seq %d ahead of durable horizon %d", c.EventSeq, sum.LastSeq)
			}
			ec, err := core.DecodeCheckpoint(c.Engine)
			if err != nil {
				return err
			}
			if ec.Records != c.Records {
				return fmt.Errorf("checkpoint envelope at record %d but engine state at %d", c.Records, ec.Records)
			}
			if len(ec.Pending) > 0 && sched == nil {
				return fmt.Errorf("checkpoint carries %d pending probe campaigns but this run has no -probe-backend", len(ec.Pending))
			}
			engCkpt = ec
			return nil
		})
	}

	// Engine → bus → server wiring. With the relay on, all SSE clients fan
	// out from one bus subscription owned by the relay goroutine; the
	// ingestion path pays for one subscriber no matter how many clients
	// stream.
	bus := events.New(svc, busOpts...)
	bus.SeedRing(sum.Tail)
	var relay *events.Relay
	if *relayOn {
		relay = events.NewRelay(bus, events.RelayOptions{})
	}
	eng := stack.NewEngine(kcfg, *shards)
	eng.SetBinStageStats(binStage)
	if sched != nil {
		eng.SetProber(sched)
	}

	// Checkpointed recovery: restore the engine to the checkpoint barrier
	// and seek the source to its record cursor, so catch-up re-ingests only
	// the suffix since the checkpoint instead of the whole stream. The
	// replay gate below then skips only the events published between the
	// checkpoint and the durable horizon.
	gateSkip := sum.LastSeq
	if engCkpt != nil {
		if err := eng.RestoreFrom(engCkpt); err != nil {
			// Should be unreachable (LoadCheckpoint pre-validated); rebuild
			// the engine rather than risk a partial restore.
			dlog.Error("checkpoint restore failed, re-ingesting from record zero", "error", err)
			eng.Close()
			eng = stack.NewEngine(kcfg, *shards)
			eng.SetBinStageStats(binStage)
			if sched != nil {
				eng.SetProber(sched)
			}
			resume, engCkpt = nil, nil
		}
	}
	if resume != nil {
		cur := live.Cursor{Records: resume.Records, Window: resume.Window, WindowPos: resume.WindowPos}
		if err := tracked.Seek(context.Background(), cur); err != nil {
			fatal(fmt.Errorf("checkpoint resume: %w (a data dir is bound to one source; restore the original archive or clear the ckpt-* segments)", err))
		}
		gateSkip = sum.LastSeq - resume.EventSeq
		storeStats.ResumeSeq.Store(int64(resume.EventSeq))
		storeStats.ResumeRecords.Store(int64(resume.Records))
		dlog.Info("resuming from checkpoint", "record", resume.Records,
			"bin", resume.BinEnd, "seq", resume.EventSeq, "catchup_events", gateSkip)
	} else if st != nil {
		dlog.Info("no usable checkpoint; re-ingesting from record zero")
	}
	// Serving-path telemetry: per-endpoint latency/status histograms plus
	// the SSE delivery-lag histogram, and the feed transition counters.
	httpStats := metrics.NewHTTPStats()
	feedStats := &metrics.FeedStats{}
	srvOpts := server.Options{
		Bus:       bus,
		Relay:     relay,
		Service:   svc,
		Ingest:    func() metrics.IngestSnapshot { return eng.Stats() },
		BinStage:  func() metrics.BinStageSnapshot { return binStage.Snapshot() },
		HTTP:      httpStats,
		Feed:      feedStats,
		FeedFloor: *feedFloor,
		Namer:     w.PoPName,
		SSEBuffer: *sseBuffer,
		Logger:    logger.With("component", "server"),
	}
	if storeStats != nil {
		srvOpts.Store = func() metrics.StoreSnapshot { return storeStats.Snapshot() }
	}
	if probeStats != nil {
		srvOpts.Probe = func() metrics.ProbeSnapshot { return probeStats.Snapshot() }
	}
	srv := server.New(srvOpts)

	// History accounting, all mutated on the ingest goroutine only (the
	// hooks run inside Process/Flush, so snapshot builds observe consistent
	// state). Without a store, resolved/eng.Incidents() accumulate in memory
	// as before. With one, serving pages history off the store's segment
	// files instead: only the totals live here, seeded from the recovered
	// summary, and the replay gate keeps catch-up from counting persisted
	// events twice. Should persistence fail mid-run, the post-failure
	// entries accumulate in the overlay slices and snapshots splice them
	// onto the frozen persisted prefix (overlayReader) — serve on, the
	// degraded tail in memory.
	var resolved []core.Outage
	resolvedTotal, incidentTotal := sum.ResolvedTotal, sum.IncidentTotal
	var outOverlay []core.Outage
	var incOverlay []core.Incident
	resolvedCount := func() int {
		if st != nil {
			return resolvedTotal
		}
		return len(resolved)
	}
	// traces mirrors the store's provenance retention on the serving side:
	// trace j describes resolved outage traceBase+j. Like resolved it only
	// mutates on the ingest goroutine; the gate keeps catch-up from
	// re-appending recovered traces.
	traces := sum.Traces
	traceBase := sum.TraceBase
	const traceCap = 1024
	noteTrace := func(tr core.OutageTrace) {
		idx := resolvedCount() - 1
		if idx < 0 {
			return
		}
		switch {
		case len(traces) == 0:
			traceBase = idx
		case traceBase+len(traces) != idx:
			// Alignment break (e.g. a data dir recorded without tracing):
			// restart the window at the current outage.
			traces = traces[:0]
			traceBase = idx
		}
		traces = append(traces, tr)
		if drop := len(traces) - traceCap; drop > 0 {
			traces = append(traces[:0], traces[drop:]...)
			traceBase += drop
		}
	}
	// recentOutcomes is the bounded probe-resolution log /v1/probes serves;
	// like resolved it only mutates on the ingest goroutine. It is seeded
	// from the recovered event tail so a restarted daemon shows the
	// resolutions that preceded the restart, not an empty log (the gate
	// suppresses their re-emission during catch-up).
	var recentOutcomes []core.ProbeOutcome
	const recentOutcomeCap = 64
	if sched != nil {
		for _, ev := range sum.Tail {
			if (ev.Kind == events.KindProbeConfirmed || ev.Kind == events.KindProbeExpired) && ev.Probe != nil {
				recentOutcomes = append(recentOutcomes, *ev.Probe)
			}
		}
		if len(recentOutcomes) > recentOutcomeCap {
			recentOutcomes = recentOutcomes[len(recentOutcomes)-recentOutcomeCap:]
		}
	}
	buildSnap := func(end time.Time) *server.Snapshot {
		var snap *server.Snapshot
		switch {
		case st == nil:
			snap = server.BuildSnapshot(end, eng, resolved)
		case sinkArmed.Load():
			snap = server.BuildSnapshotPaged(end, eng.OpenOutageStatuses(), st, resolvedTotal, incidentTotal)
		default:
			// Persistence failed: splice the in-memory tail onto the frozen
			// persisted prefix. Full slice expressions freeze the overlay
			// views so later ingest-goroutine appends never touch what a
			// concurrent HTTP read is paging through.
			snap = server.BuildSnapshotPaged(end, eng.OpenOutageStatuses(), overlayReader{
				st:      st,
				outs:    outOverlay[:len(outOverlay):len(outOverlay)],
				incs:    incOverlay[:len(incOverlay):len(incOverlay)],
				outBase: resolvedTotal - len(outOverlay),
				incBase: incidentTotal - len(incOverlay),
			}, resolvedTotal, incidentTotal)
		}
		snap.Traces = append([]core.OutageTrace(nil), traces...)
		snap.TraceBase = traceBase
		if fh, ok := eng.FeedHealth(end); ok {
			snap.Feeds = &fh
		}
		if sched != nil {
			snap.Pending = eng.PendingConfirmations()
			snap.ProbeOutcomes = append([]core.ProbeOutcome(nil), recentOutcomes...)
			probeStats.Pending.Store(int64(len(snap.Pending)))
		}
		return snap
	}
	hooks := events.EngineHooks(bus)
	publishResolved := hooks.OutageResolved
	hooks.OutageResolved = func(o core.Outage) {
		publishResolved(o) // the bus sink persists first; sinkArmed is settled after
		switch {
		case st == nil:
			resolved = append(resolved, o)
		case sinkArmed.Load():
			resolvedTotal++
		default:
			resolvedTotal++
			outOverlay = append(outOverlay, o)
		}
		dlog.Info("outage resolved", "pop", o.PoP.String(), "name", w.PoPName(o.PoP),
			"start", o.Start, "end", o.End, "duration", o.Duration().Round(time.Minute),
			"ases", len(o.AffectedASes), "paths", o.DivertedPaths)
	}
	if st != nil {
		publishIncident := hooks.IncidentClassified
		hooks.IncidentClassified = func(inc core.Incident) {
			publishIncident(inc)
			incidentTotal++
			if !sinkArmed.Load() {
				incOverlay = append(incOverlay, inc)
			}
		}
	}
	publishTrace := hooks.TraceRecorded
	hooks.TraceRecorded = func(tr core.OutageTrace) {
		publishTrace(tr)
		noteTrace(tr)
	}
	publishOpened := hooks.OutageOpened
	hooks.OutageOpened = func(s core.OutageStatus) {
		publishOpened(s)
		dlog.Info("outage opened", "pop", s.PoP.String(), "name", w.PoPName(s.PoP),
			"diverted_paths", s.WaitingPaths)
	}
	if sched != nil {
		noteOutcome := func(o core.ProbeOutcome) {
			recentOutcomes = append(recentOutcomes, o)
			if len(recentOutcomes) > recentOutcomeCap {
				recentOutcomes = recentOutcomes[len(recentOutcomes)-recentOutcomeCap:]
			}
		}
		publishProbeConfirmed := hooks.ProbeConfirmed
		hooks.ProbeConfirmed = func(o core.ProbeOutcome) {
			publishProbeConfirmed(o)
			noteOutcome(o)
			switch {
			case o.Located:
				probeStats.Promoted.Add(1)
				dlog.Info("probe campaign located epicenter", "campaign", o.Pending.ID,
					"pop", o.Epicenter.String(), "name", w.PoPName(o.Epicenter), "confirmed", o.Confirmed)
			case o.Pending.Epicenter.IsValid():
				// A confirmation campaign the data plane contradicted: a
				// suppressed false positive, not a localization failure.
				probeStats.Refuted.Add(1)
			default:
				probeStats.Unlocated.Add(1)
			}
		}
		publishProbeExpired := hooks.ProbeExpired
		hooks.ProbeExpired = func(o core.ProbeOutcome) {
			publishProbeExpired(o)
			noteOutcome(o)
			probeStats.Expired.Add(1)
			dlog.Warn("probe campaign expired unanswered",
				"campaign", o.Pending.ID, "signal_pop", o.Pending.SignalPoP.String())
		}
	}
	// Feed-health transitions: count and log them on top of publication.
	// The chain sits under the replay gate like every other callback, so a
	// restart's catch-up neither double-publishes nor double-counts them.
	publishFeedDegraded := hooks.FeedDegraded
	hooks.FeedDegraded = func(tr bgpstream.FeedTransition) {
		publishFeedDegraded(tr)
		feedStats.Degraded.Add(1)
		dlog.Warn("feed degraded", "scope", tr.Scope, "collector", tr.Collector,
			"peer_as", tr.PeerAS, "last_seen", tr.LastSeen, "at", tr.At)
	}
	publishFeedRecovered := hooks.FeedRecovered
	hooks.FeedRecovered = func(tr bgpstream.FeedTransition) {
		publishFeedRecovered(tr)
		feedStats.Recovered.Add(1)
		dlog.Info("feed recovered", "scope", tr.Scope, "collector", tr.Collector,
			"peer_as", tr.PeerAS, "at", tr.At)
	}
	// saveCheckpoint runs inside gated BinClosed hooks: the engine is at a
	// bin barrier, every event up to here has been appended to the WAL (the
	// bus sink runs first in the chain), and the tracked source knows the
	// in-flight record's cursor. Failures only cost recovery freshness, so
	// they log and move on.
	var lastCkptBin time.Time
	if resume != nil {
		lastCkptBin = resume.BinEnd
	}
	saveCheckpoint := func(end time.Time) {
		c, err := eng.Checkpoint()
		if err != nil {
			dlog.Warn("checkpoint skipped", "error", err)
			return
		}
		enc, err := c.Encode()
		if err != nil {
			dlog.Warn("checkpoint encode failed", "error", err)
			return
		}
		cur := tracked.Cursor() // position after the in-flight record
		switch c.Records {
		case cur.Records - 1:
			// Mid-Process: the in-flight record is not in the checkpoint, so
			// recovery must re-read it.
			cur = tracked.LastCursor()
		case cur.Records:
			// Flush-time barrier: everything consumed is included.
		default:
			dlog.Warn("checkpoint skipped: engine and source cursor diverged",
				"engine_record", c.Records, "source_record", cur.Records)
			return
		}
		if err := st.SaveCheckpoint(&store.Checkpoint{
			EventSeq:  bus.Seq(),
			Records:   c.Records,
			Window:    cur.Window,
			WindowPos: cur.WindowPos,
			BinEnd:    end,
			Engine:    enc,
		}); err != nil {
			dlog.Error("checkpoint save failed", "error", err)
		}
	}
	publishBin := hooks.BinClosed
	hooks.BinClosed = func(end time.Time) {
		publishBin(end)
		srv.PublishSnapshot(buildSnap(end))
		if st != nil && (lastCkptBin.IsZero() || end.Sub(lastCkptBin) >= *ckptIv) {
			saveCheckpoint(end)
			lastCkptBin = end
		}
	}
	// Recovery replays the source from the checkpoint cursor (or record
	// zero without one; detection is deterministic), suppressing the
	// gateSkip callbacks whose events are already persisted and published;
	// publication, persistence and the SSE sequence resume exactly where
	// the previous process stopped.
	finalHooks := events.GateHooks(hooks, gateSkip)
	if st != nil {
		finalHooks = events.MuteHooks(finalHooks, aborting.Load)
		// Serve the recovered history immediately — catch-up publishes its
		// first live snapshot only after re-ingestion crosses the durable
		// horizon. Probe campaigns that were mid-flight at the previous
		// shutdown surface right away; the deterministic catch-up re-parks
		// and re-measures them behind the gate.
		bootSnap := server.BuildSnapshotPaged(sum.LastBin, nil, st, sum.ResolvedTotal, sum.IncidentTotal)
		bootSnap.Traces = sum.Traces
		bootSnap.TraceBase = sum.TraceBase
		switch {
		case len(sum.PendingProbes) > 0 && sched == nil:
			// The data dir was written by a probing run but this one has no
			// backend: the recovered campaigns can never resolve, and the
			// probe-free catch-up will not reproduce the persisted event
			// sequence. Warn loudly rather than serve stuck state.
			dlog.Warn("recovered mid-campaign confirmations dropped: this run has no -probe-backend, and replaying a probing run's data dir without one desynchronizes the replay gate",
				"pending", len(sum.PendingProbes))
		case len(sum.PendingProbes) > 0:
			bootSnap.Pending = sum.PendingProbes
			probeStats.Pending.Store(int64(len(sum.PendingProbes)))
			dlog.Info("recovered mid-campaign probe confirmations", "pending", len(sum.PendingProbes))
		}
		srv.PublishSnapshot(bootSnap)
		src = live.OnAbort(src, func() { aborting.Store(true) })
	}
	eng.SetHooks(finalHooks)

	// Opt-in profiling: the net/http/pprof endpoints go on a dedicated mux
	// and listener, so the debug surface is only reachable where -pprof-addr
	// points and never rides the public API port.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("-pprof-addr: %w", err))
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pmux}
		defer pprofSrv.Close()
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && err != http.ErrServerClosed {
				dlog.Error("pprof server failed", "error", err)
			}
		}()
		dlog.Info("pprof profiling on", "url", fmt.Sprintf("http://%s/debug/pprof/", pln.Addr()))
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			dlog.Error("http server failed", "error", err)
		}
	}()
	dlog.Info("serving", "addr", fmt.Sprintf("http://%s", ln.Addr()),
		"endpoints", "/healthz /v1/outages /v1/events")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.SetReady(true)

	// Ingest loop. The final snapshot publish happens here, on the same
	// goroutine the hooks run on.
	type outcome struct {
		res live.PumpResult
		err error
	}
	pumpDone := make(chan outcome, 1)
	go func() {
		res, err := live.Pump(ctx, src, eng)
		srv.PublishSnapshot(buildSnap(res.Last))
		pumpDone <- outcome{res, err}
	}()

	var out outcome
	select {
	case out = <-pumpDone:
		if out.err != nil && ctx.Err() == nil {
			dlog.Error("source failed", "error", out.err)
		} else {
			dlog.Info("source drained; serving results until signalled", "records", out.res.Records)
		}
		<-ctx.Done()
	case <-ctx.Done():
		dlog.Info("signal received, draining")
		out = <-pumpDone // Pump aborts promptly: the source sees ctx.Done
	}
	stop()

	// Graceful teardown: flush already ran inside Pump; close subscribers
	// (closing the bus drains the relay, which then closes its clients),
	// sync the store, stop the HTTP server, stop the shard workers.
	bus.Close()
	if relay != nil {
		relay.Close()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			dlog.Error("store close failed", "error", err)
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		dlog.Warn("http shutdown timed out, forcing close", "error", err)
		httpSrv.Close()
	}
	eng.Close()
	dlog.Info("final ingest stats", "stats", eng.Stats())
	dlog.Info("final service stats", "stats", svc.Snapshot())
	if storeStats != nil {
		dlog.Info("final store stats", "stats", storeStats.Snapshot())
	}
	if probeStats != nil {
		dlog.Info("final probe stats", "stats", probeStats.Snapshot())
	}
	bcSnap := binStage.Snapshot()
	dlog.Info("bin-close latency", "bins", bcSnap.Total.Count,
		"mean", bcSnap.Total.Mean(), "p99", bcSnap.Total.Quantile(0.99))
	dlog.Info("bye", "outages_resolved", resolvedCount(), "incidents", len(eng.Incidents()))
}

func speedName(speed float64) string {
	if speed <= 0 {
		return "maximum speed"
	}
	return fmt.Sprintf("%gx real time", speed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keplerd:", err)
	os.Exit(1)
}
