package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"kepler/internal/metrics"
)

func TestValidateLogFlags(t *testing.T) {
	cases := []struct {
		format, level string
		wantErr       bool
	}{
		{"text", "info", false},
		{"json", "debug", false},
		{"text", "warn", false},
		{"json", "error", false},
		{"xml", "info", true},
		{"", "info", true},
		{"text", "verbose", true},
		{"text", "INFO", true}, // case-sensitive, like every other enum flag
		{"text", "", true},
	}
	for _, c := range cases {
		err := validateLogFlags(c.format, c.level)
		if (err != nil) != c.wantErr {
			t.Errorf("validateLogFlags(%q, %q) = %v, wantErr=%v", c.format, c.level, err, c.wantErr)
		}
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := newLogger(&buf, "text", "warn")
	lg.Info("hidden")
	lg.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked past -log-level warn: %q", out)
	}
	if !strings.Contains(out, "visible") {
		t.Errorf("warn line missing: %q", out)
	}
}

func TestNewLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := newLogger(&buf, "json", "info")
	lg.Info("outage resolved", "pop", "facility:7", "paths", 12)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("-log-format json produced non-JSON output %q: %v", buf.String(), err)
	}
	if line["msg"] != "outage resolved" || line["pop"] != "facility:7" {
		t.Errorf("json line = %v", line)
	}
}

func TestValidateSlowBinFlag(t *testing.T) {
	if err := validateSlowBinFlag(0); err != nil {
		t.Errorf("0 (disabled) rejected: %v", err)
	}
	if err := validateSlowBinFlag(250); err != nil {
		t.Errorf("250 rejected: %v", err)
	}
	if err := validateSlowBinFlag(-1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestSlowBinAttrs(t *testing.T) {
	sp := metrics.BinSpans{
		End:   time.Date(2016, 1, 1, 12, 0, 0, 0, time.UTC),
		Total: 300 * time.Millisecond,
	}
	sp.Stage[metrics.StageClassify] = 250 * time.Millisecond
	attrs := slowBinAttrs(sp)
	if len(attrs) != 2*(metrics.NumBinStages+2) {
		t.Fatalf("attr count = %d", len(attrs))
	}
	// Attrs must round-trip through a handler as key/value pairs.
	var buf bytes.Buffer
	newLogger(&buf, "json", "info").Warn("slow bin close", attrs...)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if _, ok := line["classify"]; !ok {
		t.Errorf("classify stage missing from %v", line)
	}
	if _, ok := line["total"]; !ok {
		t.Errorf("total missing from %v", line)
	}
}
