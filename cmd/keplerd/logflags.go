package main

import (
	"fmt"
	"io"
	"log/slog"

	"kepler/internal/metrics"
)

// Structured-logging flag values. keplerd logs through log/slog: -log-format
// selects the handler (text for humans, json for log shippers), -log-level
// the minimum severity. Component-scoped child loggers (component=daemon,
// store, probe, server, source) are derived from the one root logger so a
// single pair of flags governs the whole process.
const (
	logFormatText = "text"
	logFormatJSON = "json"
)

// logLevels maps -log-level values to slog levels.
var logLevels = map[string]slog.Level{
	"debug": slog.LevelDebug,
	"info":  slog.LevelInfo,
	"warn":  slog.LevelWarn,
	"error": slog.LevelError,
}

// validateLogFlags rejects unknown -log-format / -log-level values before
// any logger is constructed, so a typo fails fast instead of silently
// logging at the wrong level.
func validateLogFlags(format, level string) error {
	if format != logFormatText && format != logFormatJSON {
		return fmt.Errorf("-log-format must be %q or %q, got %q", logFormatText, logFormatJSON, format)
	}
	if _, ok := logLevels[level]; !ok {
		return fmt.Errorf("-log-level must be one of debug, info, warn, error; got %q", level)
	}
	return nil
}

// newLogger builds the daemon's root logger. Flags must have been validated
// with validateLogFlags first.
func newLogger(w io.Writer, format, level string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: logLevels[level]}
	if format == logFormatJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// validateSlowBinFlag checks -slow-bin-ms: a non-negative millisecond
// threshold; 0 disables slow-bin reporting.
func validateSlowBinFlag(ms int) error {
	if ms < 0 {
		return fmt.Errorf("-slow-bin-ms must be non-negative, got %d (0 disables slow-bin reports)", ms)
	}
	return nil
}

// slowBinAttrs renders one slow bin close as structured attributes: the
// bin, the total, and every instrumented stage, so the report pinpoints
// which stage (shard barrier, merge, probe collection, classification,
// baseline cleanup, hooks) ate the budget.
func slowBinAttrs(sp metrics.BinSpans) []any {
	attrs := make([]any, 0, 2*(metrics.NumBinStages+2))
	attrs = append(attrs, "bin", sp.End, "total", sp.Total)
	for i, n := range metrics.BinStageNames {
		attrs = append(attrs, n, sp.Stage[i])
	}
	return attrs
}
