package main

import (
	"strings"
	"testing"
)

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name      string
		relay     bool
		readCache int
		wantErr   string // substring; empty means valid
	}{
		{name: "defaults", relay: true, readCache: 4096},
		{name: "relay off", relay: false, readCache: 4096},
		{name: "small cache", relay: true, readCache: 1},
		{name: "zero cache", relay: true, readCache: 0,
			wantErr: "-read-cache must be positive, got 0"},
		{name: "negative cache", relay: true, readCache: -5,
			wantErr: "-read-cache must be positive, got -5"},
		{name: "absurd cache", relay: true, readCache: 1 << 30,
			wantErr: "-read-cache must be at most"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServeFlags(tc.relay, tc.readCache)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
