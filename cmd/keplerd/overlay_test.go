package main

import (
	"reflect"
	"testing"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/store"
)

// TestOverlayReaderSplicesPrefixAndOverlay drives every window shape across
// the persisted/overlay boundary against a flat-slice reference.
func TestOverlayReaderSplicesPrefixAndOverlay(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir(), CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	start := time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC)
	mkOut := func(i int) core.Outage {
		return core.Outage{
			PoP:   colo.FacilityPoP(colo.FacilityID(i + 1)),
			Start: start, End: start.Add(time.Duration(i+1) * time.Minute),
		}
	}
	mkInc := func(i int) core.Incident {
		return core.Incident{Time: start.Add(time.Duration(i) * time.Minute), Kind: core.IncidentPoP,
			PoP: colo.FacilityPoP(colo.FacilityID(i + 1))}
	}
	const persisted = 5
	seq := uint64(0)
	for i := 0; i < persisted; i++ {
		o, inc := mkOut(i), mkInc(i)
		bin := start.Add(time.Duration(i+1) * time.Minute)
		for _, ev := range []events.Event{
			{Time: bin, Kind: events.KindOutageResolved, Outage: &o},
			{Time: bin, Kind: events.KindIncident, Incident: &inc},
			{Time: bin, Kind: events.KindBinClosed},
		} {
			seq++
			ev.Seq = seq
			if err := st.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The daemon "fails" here; three more of each accumulate in memory.
	var all []core.Outage
	var allIncs []core.Incident
	for i := 0; i < persisted+3; i++ {
		all = append(all, mkOut(i))
		allIncs = append(allIncs, mkInc(i))
	}
	ov := overlayReader{st: st, outs: all[persisted:], incs: allIncs[persisted:],
		outBase: persisted, incBase: persisted}

	total := len(all)
	for s := 0; s <= total+1; s++ {
		for c := 0; c <= total+2; c++ {
			want := all[min(s, total):min(s+c, total)]
			got, err := ov.ReadOutages(s, c)
			if err != nil {
				t.Fatalf("ReadOutages(%d,%d): %v", s, c, err)
			}
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("ReadOutages(%d,%d) = %d entries, want %d", s, c, len(got), len(want))
			}
			wantInc := allIncs[min(s, total):min(s+c, total)]
			gotInc, err := ov.ReadIncidents(s, c)
			if err != nil {
				t.Fatalf("ReadIncidents(%d,%d): %v", s, c, err)
			}
			if len(gotInc) != len(wantInc) || (len(wantInc) > 0 && !reflect.DeepEqual(gotInc, wantInc)) {
				t.Fatalf("ReadIncidents(%d,%d) = %d entries, want %d", s, c, len(gotInc), len(wantInc))
			}
		}
	}
	if got, err := ov.ReadOutages(-3, 4); err != nil || len(got) != 0 {
		t.Errorf("negative start = %v, %v; want empty", got, err)
	}
}
