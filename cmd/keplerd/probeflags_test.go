package main

import (
	"strings"
	"testing"
)

func TestValidateProbeFlags(t *testing.T) {
	cases := []struct {
		name      string
		backend   string
		budget    int
		synthetic bool
		wantErr   string // substring; empty means valid
	}{
		{name: "disabled", backend: "", budget: 256, synthetic: false},
		{name: "sim with synthetic", backend: "sim", budget: 256, synthetic: true},
		{name: "sim-fault with synthetic", backend: "sim-fault", budget: 1, synthetic: true},
		{name: "unknown backend", backend: "atlas", budget: 256, synthetic: true,
			wantErr: `-probe-backend must be one of "sim", "sim-fault" or empty, got "atlas"`},
		{name: "zero budget", backend: "sim", budget: 0, synthetic: true,
			wantErr: "-probe-budget must be positive, got 0"},
		{name: "negative budget", backend: "", budget: -5, synthetic: false,
			wantErr: "-probe-budget must be positive, got -5"},
		{name: "sim without synthetic", backend: "sim", budget: 256, synthetic: false,
			wantErr: `-probe-backend "sim" requires -synthetic`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateProbeFlags(tc.backend, tc.budget, tc.synthetic)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
