package main

import (
	"kepler/internal/core"
	"kepler/internal/store"
)

// overlayReader composes the serving-tier history reader for the degraded
// mode a daemon enters when a store append fails mid-run: the prefix
// persisted before the failure still pages off the store's segments, and
// everything resolved after it is served from the in-memory overlay the
// hooks keep accumulating. Each published snapshot captures an immutable
// view of the overlay slices (the ingest goroutine only ever appends), so
// concurrent HTTP reads need no locking here.
type overlayReader struct {
	st   *store.Store
	outs []core.Outage   // entries beyond the persisted outage prefix
	incs []core.Incident // entries beyond the persisted incident prefix
	// persisted totals at the failure point; the overlay starts there.
	outBase, incBase int
}

func (o overlayReader) ReadOutages(start, count int) ([]core.Outage, error) {
	return readOverlaid(o.st.ReadOutages, o.outs, o.outBase, start, count)
}

func (o overlayReader) ReadIncidents(start, count int) ([]core.Incident, error) {
	return readOverlaid(o.st.ReadIncidents, o.incs, o.incBase, start, count)
}

// readOverlaid splices one logical [start, start+count) window out of the
// persisted prefix plus the in-memory overlay, clamping at the overlay end
// like the store clamps at its history end.
func readOverlaid[T any](persisted func(int, int) ([]T, error), overlay []T, base, start, count int) ([]T, error) {
	if start < 0 || count < 0 {
		start, count = 0, 0
	}
	var out []T
	if start < base {
		n := min(count, base-start)
		p, err := persisted(start, n)
		if err != nil {
			return nil, err
		}
		out = p
		start += n
		count -= n
	}
	if i := start - base; count > 0 && i < len(overlay) {
		out = append(out, overlay[i:min(i+count, len(overlay))]...)
	}
	return out, nil
}
