package main

import (
	"fmt"
	"time"
)

// validateCheckpointFlags checks the engine-checkpoint flags before any
// world generation happens, in the descriptive style of probeflags.go.
//
// -checkpoint-interval is stream time, not wall time: bins advance with
// the record stream, so a 60x replay checkpoints 60x more often on the
// wall clock. Checkpoints only exist with -data-dir (they ride the durable
// store's directory); without one the interval is accepted and ignored.
// The interval interacts with -compact-mb only in disk terms: checkpoint
// segments rotate on their own (newest two generations are kept) and WAL
// compaction never touches them, so disk stays bounded by history size +
// one WAL window + two checkpoints regardless of either setting.
func validateCheckpointFlags(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("-checkpoint-interval must be positive, got %v (stream time between engine checkpoints; restart recovery re-ingests at most one interval of records)", interval)
	}
	return nil
}
