// Command keplervet runs the project's determinism and concurrency
// analyzers (internal/lint) over the given package patterns:
//
//	go run ./cmd/keplervet ./...
//
// It exits 0 when the tree is clean, 1 when any diagnostic is reported,
// and 2 on usage or load errors. Diagnostics print one per line as
// file:line:col: [analyzer] message; -json switches to a machine-readable
// array (CI uploads it as an artifact). -analyzers runs a subset, -list
// prints the suite with the contract each analyzer enforces.
//
// A finding that is a sanctioned exception — a metrics span reading the
// wall clock, a buffered WAL write whose durability point is the bin-close
// flush — is silenced at the site with
//
//	//keplervet:ignore <analyzer> <reason>
//
// and an ignore that no longer suppresses anything is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kepler/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: keplervet [-json] [-analyzers a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	opts := lint.Options{}
	if *names != "" {
		known := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			if !known[n] {
				fmt.Fprintf(os.Stderr, "keplervet: unknown analyzer %q (run -list for the suite)\n", n)
				os.Exit(2)
			}
			opts.Analyzers = append(opts.Analyzers, n)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "keplervet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers, opts)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "keplervet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
