// Command topogen generates a synthetic Internet, schedules infrastructure
// outages over it, renders the resulting BGP dynamics, and writes the
// multi-collector archive as an MRT-lite file that cmd/kepler can replay.
//
// Usage:
//
//	topogen -seed 1 -days 30 -facility-outages 3 -ixp-outages 1 -out archive.mrt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kepler/internal/mrt"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "world generation seed")
		days  = flag.Int("days", 30, "scenario length in days")
		facN  = flag.Int("facility-outages", 3, "facility outages to inject")
		ixpN  = flag.Int("ixp-outages", 1, "IXP outages to inject")
		linkN = flag.Int("link-outages", 10, "link-level background events")
		asN   = flag.Int("as-outages", 2, "AS-level background events")
		out   = flag.String("out", "archive.mrt", "output archive path")
		truth = flag.String("truth", "", "optional path for the ground-truth event list (text)")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Seed = *seed
	w, err := topology.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(*days) * 24 * time.Hour)

	events := simulate.GenerateSchedule(w, simulate.ScheduleConfig{
		Seed:            *seed + 1,
		Start:           start.Add(3 * 24 * time.Hour),
		End:             end.Add(-24 * time.Hour),
		FacilityOutages: *facN,
		IXPOutages:      *ixpN,
		LinkOutages:     *linkN,
		ASOutages:       *asN,
		PartialFraction: 0.15,
		MinMembers:      6,
	})
	res, err := simulate.Render(w, events, start, end, simulate.RenderConfig{
		Seed: *seed + 2, SessionResets: 2, StickyFraction: 0.05,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := mrt.WriteAll(f, res.Records); err != nil {
		fatal(err)
	}
	fmt.Printf("world: %d ASes, %d facilities, %d IXPs, %d links\n",
		len(w.ASes), w.Map.NumFacilities(), w.Map.NumIXPs(), len(w.Links))
	fmt.Printf("archive: %d records over %d days -> %s\n", len(res.Records), *days, *out)

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		for _, ev := range res.Truth {
			fmt.Fprintf(tf, "%s\t%s\t%q\t%s\tfull=%v\n",
				ev.Time.Format(time.RFC3339), ev.PoP, ev.Name,
				ev.Duration.Round(time.Minute), ev.Full)
		}
		fmt.Printf("ground truth: %d infrastructure events -> %s\n", len(res.Truth), *truth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
