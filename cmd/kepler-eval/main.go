// Command kepler-eval regenerates every table and figure of the paper's
// evaluation and prints them to stdout. It is the command-line twin of the
// module's benchmark harness.
//
// Usage:
//
//	kepler-eval            # print everything
//	kepler-eval -only f1   # print one artifact (f1 f3 f5 t1 f7a f7b f7c
//	                       # f8a f8b f8c f9a f9b f9c f10a f10b f10c f10d
//	                       # dict valid summary)
package main

import (
	"flag"
	"fmt"
	"os"

	"kepler/internal/experiments"
)

func main() {
	only := flag.String("only", "", "print a single artifact (e.g. f1, t1, f10d)")
	flag.Parse()

	type artifact struct {
		key    string
		needs  string // "hist", "ams", "lon"
		render func(env *experiments.Env, ams, lon *experiments.CaseStudy) string
	}
	artifacts := []artifact{
		{"f1", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure1(e).Render() }},
		{"f3", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure3(e).Render() }},
		{"f5", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure5(e).Render() }},
		{"t1", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Table1(e).Render() }},
		{"f7a", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure7a(e).Render() }},
		{"f7b", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure7b(e).Render() }},
		{"f7c", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure7c(e).Render() }},
		{"f8a", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure8a(e).Render() }},
		{"f8b", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Figure8b(e).Render() }},
		{"f8c", "ams", func(_ *experiments.Env, a, _ *experiments.CaseStudy) string { return experiments.Figure8c(a).Render() }},
		{"f9a", "lon", func(_ *experiments.Env, _, l *experiments.CaseStudy) string { return experiments.Figure9a(l).Render() }},
		{"f9b", "lon", func(_ *experiments.Env, _, l *experiments.CaseStudy) string { return experiments.Figure9b(l).Render() }},
		{"f9c", "lon", func(_ *experiments.Env, _, l *experiments.CaseStudy) string { return experiments.Figure9c(l).Render() }},
		{"f10a", "ams", func(_ *experiments.Env, a, _ *experiments.CaseStudy) string { return experiments.Figure10a(a).Render() }},
		{"f10b", "ams", func(_ *experiments.Env, a, _ *experiments.CaseStudy) string { return experiments.Figure10b(a).Render() }},
		{"f10c", "ams", func(_ *experiments.Env, a, _ *experiments.CaseStudy) string { return experiments.Figure10c(a).Render() }},
		{"f10d", "ams", func(_ *experiments.Env, a, _ *experiments.CaseStudy) string { return experiments.Figure10d(a).Render() }},
		{"dict", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string {
			return experiments.DictionaryStats(e).Render()
		}},
		{"valid", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string {
			return experiments.Validation(e).Render()
		}},
		{"summary", "hist", func(e *experiments.Env, _, _ *experiments.CaseStudy) string { return experiments.Summary(e).Render() }},
	}

	need := map[string]bool{}
	for _, a := range artifacts {
		if *only == "" || a.key == *only {
			need[a.needs] = true
		}
	}
	if len(need) == 0 {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
		os.Exit(2)
	}

	var (
		env      *experiments.Env
		ams, lon *experiments.CaseStudy
		err      error
	)
	if need["hist"] {
		fmt.Fprintln(os.Stderr, "building 5-year historical environment (one-time, ~20s)...")
		if env, err = experiments.Historical(); err != nil {
			fatal(err)
		}
	}
	if need["ams"] {
		fmt.Fprintln(os.Stderr, "building AMS-IX case study...")
		if ams, err = experiments.AMSIXCase(); err != nil {
			fatal(err)
		}
	}
	if need["lon"] {
		fmt.Fprintln(os.Stderr, "building London case study...")
		if lon, err = experiments.LondonCase(); err != nil {
			fatal(err)
		}
	}

	for _, a := range artifacts {
		if *only != "" && a.key != *only {
			continue
		}
		fmt.Println(a.render(env, ams, lon))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kepler-eval:", err)
	os.Exit(1)
}
