// Command kepler replays an MRT-lite archive (produced by cmd/topogen)
// through the detection pipeline and reports classified incidents and
// localized infrastructure outages. The colocation map and community
// dictionary are reconstructed from the same world seed the archive was
// generated with — the moral equivalent of Kepler refreshing its dictionary
// and PeeringDB snapshot for the archive's time period.
//
// Replay runs on the sharded concurrent engine by default (one path-state
// shard per core, investigation synchronized at bin boundaries); -shards 1
// selects the sequential single-shard detector, which produces identical
// output.
//
// Outage and incident reports go to stdout in a fixed format; diagnostics
// go to stderr through log/slog (-log-format text|json, -log-level).
// -bin-stats additionally prints a staged bin-close latency summary (shard
// barrier, divert merge, classification, ...) at exit.
//
// Usage:
//
//	kepler -seed 1 -archive archive.mrt [-shards N] [-tfail 0.1] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"time"

	"kepler/internal/core"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
	"kepler/internal/pipeline"
	"kepler/internal/topology"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "world seed the archive was generated with")
		archive  = flag.String("archive", "archive.mrt", "MRT-lite archive to replay")
		tfail    = flag.Float64("tfail", 0.10, "outage signal threshold")
		verbose  = flag.Bool("v", false, "also print link/AS-level incidents")
		unres    = flag.Bool("report-unresolved", true, "report outages whose epicenter could not be pinned (no data plane in replay mode)")
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "path-state shard workers; 1 runs the sequential detector, <= 0 one worker per core")
		invest   = flag.Int("invest-workers", 0, "goroutines for the bin-close signal investigation; <= 1 classifies inline (output is identical at any count)")
		logFmt   = flag.String("log-format", "text", "stderr diagnostics format: text or json")
		logLvl   = flag.String("log-level", "info", "minimum diagnostic severity: debug, info, warn or error")
		binStats = flag.Bool("bin-stats", false, "print a staged bin-close latency summary at exit")
	)
	flag.Parse()

	if *seed < 0 {
		fatal(fmt.Errorf("-seed must be non-negative, got %d (a world cannot be generated from a negative seed)", *seed))
	}
	if *tfail <= 0 || *tfail > 1 {
		fatal(fmt.Errorf("-tfail must be in (0,1], got %v (it is the fraction of an AS's stable paths that must divert)", *tfail))
	}
	if *invest > 1024 {
		fatal(fmt.Errorf("-invest-workers must be at most 1024, got %d (workers beyond the per-bin signal-group count idle anyway)", *invest))
	}
	logger, err := newLogger(os.Stderr, *logFmt, *logLvl)
	if err != nil {
		fatal(err)
	}

	cfg := topology.DefaultConfig()
	cfg.Seed = *seed
	w, err := topology.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	stack := pipeline.Build(w, 77)
	logger.Info("dictionary built",
		"communities", stack.Dict.Len(), "ases", len(stack.Dict.CoveredASNs()),
		"trackable_facilities", trackable(stack), "facilities", stack.Map.NumFacilities())

	f, err := os.Open(*archive)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	kcfg := core.DefaultConfig()
	kcfg.Tfail = *tfail
	kcfg.ReportUnresolved = *unres
	kcfg.InvestWorkers = *invest

	// Both paths share one processing interface; the engine additionally
	// reports ingestion stats at exit.
	type detection interface {
		Process(*mrt.Record) []core.Outage
		Flush(time.Time) []core.Outage
		Incidents() []core.Incident
	}
	var det detection
	var eng *core.Engine
	var stage *metrics.BinStageStats
	if *binStats {
		stage = &metrics.BinStageStats{}
	}
	if *shards == 1 {
		d := stack.NewDetector(kcfg)
		if stage != nil {
			d.SetBinStageStats(stage)
		}
		det = d
	} else {
		// Engine resolves <= 0 to one worker per core.
		eng = stack.NewEngine(kcfg, *shards)
		defer eng.Close()
		if stage != nil {
			eng.SetBinStageStats(stage)
		}
		det = eng
	}

	rd := mrt.NewReader(f)
	var last time.Time
	records := 0
	// Archives lead with a table dump; with the engine, buffer that prefix
	// and bulk-load it across the shards before streaming the updates.
	var ribPrefix []*mrt.Record
	bootstrapping := eng != nil
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if bootstrapping {
			if rec.Kind == mrt.KindRIB {
				ribPrefix = append(ribPrefix, rec)
				records++
				last = rec.Time
				continue
			}
			bootstrapping = false
			outs, err := eng.BootstrapRIB(ribPrefix)
			if err != nil {
				fatal(err)
			}
			ribPrefix = nil
			for _, o := range outs {
				printOutage(stack, o)
			}
		}
		records++
		last = rec.Time
		for _, o := range det.Process(rec) {
			printOutage(stack, o)
		}
	}
	if bootstrapping {
		outs, err := eng.BootstrapRIB(ribPrefix)
		if err != nil {
			fatal(err)
		}
		for _, o := range outs {
			printOutage(stack, o)
		}
	}
	for _, o := range det.Flush(last) {
		printOutage(stack, o)
	}
	if eng != nil {
		logger.Info("ingest finished", "stats", eng.Stats())
	}
	if stage != nil {
		snap := stage.Snapshot()
		attrs := []any{"bins", snap.Total.Count,
			"mean", snap.Total.Mean(), "p50", snap.Total.Quantile(0.50),
			"p99", snap.Total.Quantile(0.99)}
		for i, name := range metrics.BinStageNames {
			attrs = append(attrs, name, snap.Stages[i].Mean())
		}
		logger.Info("bin-close latency", attrs...)
	}

	counts := map[core.IncidentKind]int{}
	for _, inc := range det.Incidents() {
		counts[inc.Kind]++
		if *verbose && inc.Kind != core.IncidentPoP {
			fmt.Printf("incident %s %-9s signal=%v affected=%d links=%d\n",
				inc.Time.Format("2006-01-02 15:04"), inc.Kind, inc.SignalPoP,
				len(inc.AffectedASes), inc.Links)
		}
	}
	logger.Info("replay finished", "records", records,
		"link", counts[core.IncidentLink], "as", counts[core.IncidentAS],
		"operator", counts[core.IncidentOperator], "pop", counts[core.IncidentPoP])
}

// newLogger builds the stderr diagnostics logger; report output (stdout)
// stays fixed-format regardless.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be one of debug, info, warn, error; got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

func printOutage(stack *pipeline.Stack, o core.Outage) {
	name := stack.World.PoPName(o.PoP)
	if name == "" {
		name = o.PoP.String()
	}
	fmt.Printf("OUTAGE %-30q %s  %s -> %s (%s)  affected-ASes=%d paths=%d\n",
		name, o.PoP, o.Start.Format("2006-01-02 15:04"), o.End.Format("15:04"),
		o.Duration().Round(time.Minute), len(o.AffectedASes), o.DivertedPaths)
}

func trackable(stack *pipeline.Stack) int {
	n := 0
	for _, f := range stack.Map.Facilities() {
		if ok, _ := stack.Map.Trackable(f.ID, stack.Dict.Covers); ok {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kepler:", err)
	os.Exit(1)
}
