// Package reports models the public outage-reporting channels the paper
// validates against: the NANOG and Outages mailing lists, the Data Center
// Dynamics / Data Center Knowledge trade press, and NOC incident pages.
// Reporting in these channels is strongly biased: the paper finds they
// capture only 24% of the outages Kepler detects, "missing most of the
// incidents that occur outside the US and the UK" (Section 6.1).
//
// Sample reproduces that bias deterministically: each injected ground-truth
// outage is reported with a probability depending on its country and
// severity, and each report carries a venue, a coarse timestamp and a
// free-text title — the fidelity level Kepler's validation module gets from
// the real lists.
package reports

import (
	"fmt"
	"math/rand"
	"time"

	"kepler/internal/colo"
)

// Event is one ground-truth infrastructure outage as injected by the
// scenario driver.
type Event struct {
	ID       int
	Time     time.Time
	Duration time.Duration
	PoP      colo.PoP
	Name     string // infrastructure name, e.g. "AMS-IX" or "Telecity HEX8/9"
	City     string
	Country  string // ISO 3166-1 alpha-2
	Full     bool   // full outage (vs partial)
}

// Report is one public mention of an outage.
type Report struct {
	EventID int
	Venue   string
	Time    time.Time // report time: lags the event
	PoP     colo.PoP
	Title   string
}

// Venues in rough order of popularity for infrastructure outage chatter.
var venues = []string{"outages", "nanog", "datacenterdynamics", "datacenterknowledge", "noc"}

// Reporting probabilities per region, tuned so that a realistic outage mix
// (~50% Europe, ~30% US, rest elsewhere, per Section 6.1) yields the
// paper's ~24% reported fraction.
const (
	probUSUK   = 0.33 // US and UK incidents dominate the mailing lists
	probEurope = 0.10
	probOther  = 0.04
	// severityBoost multiplies the probability for full outages longer
	// than an hour — big incidents are harder to miss.
	severityBoost = 1.6
)

func baseProbability(country string) float64 {
	switch country {
	case "US", "GB":
		return probUSUK
	case "DE", "NL", "FR", "IT", "ES", "AT", "CH", "BE", "SE", "DK", "NO",
		"FI", "PL", "CZ", "PT", "IE", "LU", "HU", "RO", "BG", "GR", "HR",
		"RS", "SK", "EE", "LV", "LT", "UA", "RU", "TR":
		return probEurope
	default:
		return probOther
	}
}

// Probability returns the chance the event gets publicly reported.
func Probability(e Event) float64 {
	p := baseProbability(e.Country)
	if e.Full && e.Duration > time.Hour {
		p *= severityBoost
	}
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// Sample deterministically selects which events are publicly reported and
// renders the reports. Reports lag the event start by minutes to hours
// (out-of-band communication is slow, as the paper notes).
func Sample(events []Event, seed int64) []Report {
	rng := rand.New(rand.NewSource(seed))
	var out []Report
	for _, e := range events {
		if rng.Float64() >= Probability(e) {
			continue
		}
		venue := venues[rng.Intn(len(venues))]
		lag := time.Duration(10+rng.Intn(170)) * time.Minute
		out = append(out, Report{
			EventID: e.ID,
			Venue:   venue,
			Time:    e.Time.Add(lag),
			PoP:     e.PoP,
			Title:   renderTitle(venue, e),
		})
	}
	return out
}

func renderTitle(venue string, e Event) string {
	kind := "outage"
	if !e.Full {
		kind = "partial outage"
	}
	switch venue {
	case "nanog", "outages":
		return fmt.Sprintf("[%s] %s %s in %s?", venue, e.Name, kind, e.City)
	case "noc":
		return fmt.Sprintf("NOC incident report: %s service disruption (%s)", e.Name, e.City)
	default:
		return fmt.Sprintf("%s suffers %s in %s", e.Name, kind, e.City)
	}
}

// MatchWindow is how far apart a report and a detection may be and still
// count as the same incident during validation.
const MatchWindow = 24 * time.Hour

// Matches reports whether a public report corroborates a detection at the
// given PoP and time: same infrastructure, within the match window. City
// PoPs match any infrastructure whose PoP the report names in that city.
func (r Report) Matches(pop colo.PoP, at time.Time, cmap *colo.Map) bool {
	dt := at.Sub(r.Time)
	if dt < -MatchWindow || dt > MatchWindow {
		return false
	}
	if r.PoP == pop {
		return true
	}
	// A city-level detection matches a facility/IXP report in that city,
	// and vice versa.
	if cmap != nil {
		if pop.Kind == colo.PoPCity && cmap.CityOf(r.PoP) != 0 && uint32(cmap.CityOf(r.PoP)) == pop.ID {
			return true
		}
		if r.PoP.Kind == colo.PoPCity && cmap.CityOf(pop) != 0 && uint32(cmap.CityOf(pop)) == r.PoP.ID {
			return true
		}
	}
	return false
}
