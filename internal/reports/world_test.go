package reports

import "kepler/internal/geo"

// testWorld returns the shared gazetteer for tests.
func testWorld() *geo.World { return geo.DefaultWorld() }
