package reports

import (
	"testing"
	"time"

	"kepler/internal/colo"
)

var base = time.Date(2015, 5, 13, 10, 0, 0, 0, time.UTC)

func mkEvents(n int, country string) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			ID: i, Time: base.Add(time.Duration(i) * time.Hour),
			Duration: 30 * time.Minute,
			PoP:      colo.FacilityPoP(colo.FacilityID(i + 1)),
			Name:     "Facility", City: "Somewhere", Country: country,
			Full: true,
		}
	}
	return out
}

func TestSampleDeterminism(t *testing.T) {
	ev := mkEvents(200, "US")
	r1 := Sample(ev, 99)
	r2 := Sample(ev, 99)
	if len(r1) != len(r2) {
		t.Fatal("non-deterministic sampling")
	}
	for i := range r1 {
		if r1[i].EventID != r2[i].EventID || r1[i].Venue != r2[i].Venue {
			t.Fatal("report contents differ across identical runs")
		}
	}
}

func TestGeographicBias(t *testing.T) {
	us := Sample(mkEvents(500, "US"), 1)
	de := Sample(mkEvents(500, "DE"), 1)
	ke := Sample(mkEvents(500, "KE"), 1)
	if len(us) <= len(de) || len(de) <= len(ke) {
		t.Errorf("bias ordering violated: US=%d DE=%d KE=%d", len(us), len(de), len(ke))
	}
	// US/UK events should be reported roughly half the time, never all.
	if len(us) < 150 || len(us) > 320 {
		t.Errorf("US reporting rate implausible: %d/500", len(us))
	}
	if len(ke) > 80 {
		t.Errorf("other-region reporting rate too high: %d/500", len(ke))
	}
}

func TestSeverityBoost(t *testing.T) {
	short := Event{Country: "DE", Full: true, Duration: 10 * time.Minute}
	long := Event{Country: "DE", Full: true, Duration: 3 * time.Hour}
	partial := Event{Country: "DE", Full: false, Duration: 3 * time.Hour}
	if Probability(long) <= Probability(short) {
		t.Error("long full outages should be likelier to be reported")
	}
	if Probability(partial) != Probability(short) {
		t.Error("partial outages get no severity boost")
	}
	huge := Event{Country: "US", Full: true, Duration: 10 * time.Hour}
	if Probability(huge) > 0.95 {
		t.Error("probability not capped")
	}
}

func TestReportLagsEvent(t *testing.T) {
	ev := mkEvents(300, "US")
	for _, r := range Sample(ev, 5) {
		e := ev[r.EventID]
		if !r.Time.After(e.Time) {
			t.Fatalf("report at %v does not lag event at %v", r.Time, e.Time)
		}
		if r.Time.Sub(e.Time) > 3*time.Hour {
			t.Fatalf("report lag too large: %v", r.Time.Sub(e.Time))
		}
		if r.Title == "" || r.Venue == "" {
			t.Fatal("empty report fields")
		}
	}
}

func TestMatches(t *testing.T) {
	pop := colo.FacilityPoP(3)
	r := Report{EventID: 1, Venue: "nanog", Time: base, PoP: pop}

	if !r.Matches(pop, base.Add(2*time.Hour), nil) {
		t.Error("same PoP within window should match")
	}
	if r.Matches(pop, base.Add(48*time.Hour), nil) {
		t.Error("outside window should not match")
	}
	if r.Matches(pop, base.Add(-48*time.Hour), nil) {
		t.Error("outside window (before) should not match")
	}
	if r.Matches(colo.FacilityPoP(4), base, nil) {
		t.Error("different facility should not match without a map")
	}
}

func TestMatchesCityLevel(t *testing.T) {
	// Build a tiny map: one facility in London.
	world := testWorld()
	b := colo.NewBuilder(world)
	b.AddFacility(colo.FacilityRecord{
		Source: "peeringdb", Name: "Telehouse East",
		Addr: colo.Address{Postcode: "E14 2AA", Country: "GB"}, CityHint: "London",
		Members: nil,
	})
	m := b.Build()
	fid, _ := m.FacilityByAddress(colo.Address{Postcode: "E14 2AA", Country: "GB"})
	lon, _ := world.Resolve("London")

	facReport := Report{Time: base, PoP: colo.FacilityPoP(fid)}
	if !facReport.Matches(colo.CityPoP(lon.ID), base.Add(time.Hour), m) {
		t.Error("city detection should match facility report in that city")
	}
	cityReport := Report{Time: base, PoP: colo.CityPoP(lon.ID)}
	if !cityReport.Matches(colo.FacilityPoP(fid), base.Add(time.Hour), m) {
		t.Error("facility detection should match city report for that city")
	}
}

func TestRenderTitleVariants(t *testing.T) {
	e := Event{Name: "AMS-IX", City: "Amsterdam", Full: false}
	seen := map[string]bool{}
	for _, v := range venues {
		title := renderTitle(v, e)
		if title == "" {
			t.Fatalf("venue %s rendered empty title", v)
		}
		seen[title] = true
	}
	if len(seen) < 3 {
		t.Error("titles should vary by venue")
	}
}
