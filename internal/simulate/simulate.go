// Package simulate drives outage scenarios over a generated world: it
// schedules ground-truth incidents (facility, IXP, link and AS outages with
// realistic duration distributions), renders the resulting BGP dynamics
// into MRT archives by recomputing routes around each transition, and
// exposes the failure state at any instant for data-plane and traffic
// queries. The rendered archives are what Kepler's pipeline consumes in
// every experiment; nothing downstream ever sees the ground truth except
// the validation harness.
package simulate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"net/netip"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/mrt"
	"kepler/internal/reports"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

// EventKind classifies a ground-truth incident.
type EventKind uint8

// Event kinds.
const (
	EvFacility EventKind = iota // colocation facility outage
	EvIXP                       // IXP switching-fabric outage
	EvLink                      // single interconnect (de-peering, maintenance)
	EvAS                        // whole-AS incident (membership termination etc.)
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvFacility:
		return "facility"
	case EvIXP:
		return "ixp"
	case EvLink:
		return "link"
	case EvAS:
		return "as"
	default:
		return "unknown"
	}
}

// Event is one scheduled incident.
type Event struct {
	ID       int
	Kind     EventKind
	Facility colo.FacilityID
	IXP      colo.IXPID
	Link     int
	AS       bgp.ASN
	Start    time.Time
	Duration time.Duration
	// Partial, in (0,1), fails only that fraction of the PoP's dependent
	// links (a partial outage); 0 means full outage.
	Partial float64

	// partialLinks is resolved at render time and reused on restore.
	partialLinks []int
}

// End returns the restoration instant.
func (e *Event) End() time.Time { return e.Start.Add(e.Duration) }

// PoP returns the infrastructure PoP of the event (invalid for link/AS).
func (e *Event) PoP() colo.PoP {
	switch e.Kind {
	case EvFacility:
		return colo.FacilityPoP(e.Facility)
	case EvIXP:
		return colo.IXPPoP(e.IXP)
	default:
		return colo.PoP{}
	}
}

// ScheduleConfig parameterizes incident generation.
type ScheduleConfig struct {
	Seed  int64
	Start time.Time
	End   time.Time

	FacilityOutages int
	IXPOutages      int
	LinkOutages     int
	ASOutages       int

	// PartialFraction of infrastructure outages are partial.
	PartialFraction float64
	// MinMembers restricts failed facilities/IXPs to populated ones.
	MinMembers int
}

// GenerateSchedule draws a deterministic incident schedule. Durations
// follow the paper's Figure 8b shape: a short-incident mode with a median
// near 15 minutes and a heavy mode above one hour (~40% of incidents), with
// IXP outages skewed longer than facility outages (software and
// configuration failures take longer to resolve than power restoration).
func GenerateSchedule(w *topology.World, cfg ScheduleConfig) []Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.End.Sub(cfg.Start)
	var events []Event
	id := 0

	randTime := func() time.Time {
		return cfg.Start.Add(time.Duration(rng.Int63n(int64(span))))
	}

	var facPool []colo.FacilityID
	for _, f := range w.Map.Facilities() {
		if len(f.Members) >= cfg.MinMembers {
			facPool = append(facPool, f.ID)
		}
	}
	var ixPool []colo.IXPID
	for _, ix := range w.Map.IXPs() {
		if len(ix.Members) >= cfg.MinMembers {
			ixPool = append(ixPool, ix.ID)
		}
	}

	duration := func(ixp bool) time.Duration {
		// Mixture: 60% short incidents, 40% long ones.
		var minutes float64
		if rng.Float64() < 0.6 {
			median := 12.0
			if ixp {
				median = 18.0
			}
			minutes = median * math.Exp(rng.NormFloat64()*0.7)
		} else {
			median := 100.0
			if ixp {
				median = 160.0
			}
			minutes = median * math.Exp(rng.NormFloat64()*0.8)
		}
		if minutes < 2 {
			minutes = 2
		}
		if minutes > 48*60 {
			minutes = 48 * 60
		}
		return time.Duration(minutes * float64(time.Minute))
	}

	for i := 0; i < cfg.FacilityOutages && len(facPool) > 0; i++ {
		e := Event{
			ID: id, Kind: EvFacility,
			Facility: facPool[rng.Intn(len(facPool))],
			Start:    randTime(), Duration: duration(false),
		}
		if rng.Float64() < cfg.PartialFraction {
			e.Partial = 0.3 + rng.Float64()*0.4
		}
		events = append(events, e)
		id++
	}
	for i := 0; i < cfg.IXPOutages && len(ixPool) > 0; i++ {
		e := Event{
			ID: id, Kind: EvIXP,
			IXP:   ixPool[rng.Intn(len(ixPool))],
			Start: randTime(), Duration: duration(true),
		}
		if rng.Float64() < cfg.PartialFraction {
			e.Partial = 0.3 + rng.Float64()*0.4
		}
		events = append(events, e)
		id++
	}
	for i := 0; i < cfg.LinkOutages && len(w.Links) > 0; i++ {
		events = append(events, Event{
			ID: id, Kind: EvLink,
			Link:  rng.Intn(len(w.Links)),
			Start: randTime(), Duration: duration(false),
		})
		id++
	}
	for i := 0; i < cfg.ASOutages && len(w.ASes) > 0; i++ {
		events = append(events, Event{
			ID: id, Kind: EvAS,
			AS:    w.ASes[rng.Intn(len(w.ASes))].ASN,
			Start: randTime(), Duration: duration(false),
		})
		id++
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Start.Equal(events[j].Start) {
			return events[i].Start.Before(events[j].Start)
		}
		return events[i].ID < events[j].ID
	})
	return events
}

// TruthEvents converts the schedule into the validation harness's format.
func TruthEvents(w *topology.World, events []Event) []reports.Event {
	var out []reports.Event
	for _, e := range events {
		pop := e.PoP()
		if !pop.IsValid() {
			continue
		}
		cityID := w.Map.CityOf(pop)
		city, country := "", ""
		if c, ok := w.Geo.City(cityID); ok {
			city, country = c.Name, c.Country
		}
		out = append(out, reports.Event{
			ID: e.ID, Time: e.Start, Duration: e.Duration,
			PoP: pop, Name: w.PoPName(pop),
			City: city, Country: country,
			Full: e.Partial == 0,
		})
	}
	return out
}

// dependentLinks returns the link IDs whose availability depends on the
// event's target.
func dependentLinks(w *topology.World, e *Event) []int {
	var out []int
	switch e.Kind {
	case EvFacility:
		for _, l := range w.Links {
			if l.Facility == e.Facility || l.AFac == e.Facility || l.BFac == e.Facility {
				out = append(out, l.ID)
			}
		}
	case EvIXP:
		for _, l := range w.Links {
			if l.IXP == e.IXP {
				out = append(out, l.ID)
			}
		}
	case EvLink:
		out = append(out, e.Link)
	case EvAS:
		for _, l := range w.LinksOf(e.AS) {
			out = append(out, l.ID)
		}
	}
	return out
}

// transition is one mask change instant.
type transition struct {
	at    time.Time
	ev    *Event
	begin bool // true: failure starts; false: restoration
}

// RenderConfig tunes archive rendering.
type RenderConfig struct {
	Seed int64
	// Ctx, when non-nil, lets callers abort a render in flight: Render
	// checks it before each transition and each per-origin route
	// recomputation (the CPU-heavy inner loop) and returns the context
	// error. The live soak source depends on this for prompt daemon
	// shutdown — a 7-day window can take long enough to render that
	// checking only between windows leaves SIGTERM hanging.
	Ctx context.Context
	// RIBDumpInterval inserts full RIB snapshots periodically (0: only an
	// initial dump at scenario start).
	RIBDumpInterval time.Duration
	// SessionResets injects this many collector session bounces as feed
	// noise.
	SessionResets int
	// StickyFraction of per-vantage route changes at *restoration*
	// transitions are never announced: the vantage keeps its post-outage
	// path, modelling BGP's newest-path tie-breaking and manual pinning
	// (the paper observes ~5% of paths never return, Section 6.3).
	StickyFraction float64
}

// Result is a rendered scenario.
type Result struct {
	World   *topology.World
	Engine  *routing.Engine
	Records []*mrt.Record
	Truth   []reports.Event

	start       time.Time
	end         time.Time
	transitions []transition
}

// Span returns the rendered time range.
func (r *Result) Span() (time.Time, time.Time) { return r.start, r.end }

// MaskAt reconstructs the failure state at an instant.
func (r *Result) MaskAt(at time.Time) *routing.Mask {
	mask := routing.NewMask()
	for _, tr := range r.transitions {
		if tr.at.After(at) {
			break
		}
		applyTransition(mask, tr)
	}
	return mask
}

func applyTransition(mask *routing.Mask, tr transition) {
	e := tr.ev
	if e.Partial > 0 && (e.Kind == EvFacility || e.Kind == EvIXP) {
		for _, id := range e.partialLinks {
			if tr.begin {
				mask.FailLink(id)
			} else {
				mask.RestoreLink(id)
			}
		}
		return
	}
	switch e.Kind {
	case EvFacility:
		if tr.begin {
			mask.FailFacility(e.Facility)
		} else {
			mask.RestoreFacility(e.Facility)
		}
	case EvIXP:
		if tr.begin {
			mask.FailIXP(e.IXP)
		} else {
			mask.RestoreIXP(e.IXP)
		}
	case EvLink:
		if tr.begin {
			mask.FailLink(e.Link)
		} else {
			mask.RestoreLink(e.Link)
		}
	case EvAS:
		if tr.begin {
			mask.FailAS(e.AS)
		} else {
			mask.RestoreAS(e.AS)
		}
	}
}

// Render replays the schedule and produces the multi-collector archive.
func Render(w *topology.World, events []Event, start, end time.Time, rc RenderConfig) (*Result, error) {
	if end.Before(start) {
		return nil, fmt.Errorf("simulate: end before start")
	}
	aborted := func() error {
		if rc.Ctx != nil {
			return rc.Ctx.Err()
		}
		return nil
	}
	if err := aborted(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(rc.Seed))
	eng := routing.New(w)

	// Vantage -> collectors carrying it.
	collectorsOf := make(map[bgp.ASN][]string)
	var vantages []bgp.ASN
	for _, c := range w.Collectors {
		for _, p := range c.Peers {
			if len(collectorsOf[p]) == 0 {
				vantages = append(vantages, p)
			}
			collectorsOf[p] = append(collectorsOf[p], c.Name)
		}
	}
	sort.Slice(vantages, func(i, j int) bool { return vantages[i] < vantages[j] })

	res := &Result{World: w, Engine: eng, start: start, end: end}
	res.Truth = TruthEvents(w, events)

	// Resolve partial outages and build the transition list.
	evs := make([]Event, len(events))
	copy(evs, events)
	for i := range evs {
		e := &evs[i]
		if e.Partial > 0 && (e.Kind == EvFacility || e.Kind == EvIXP) {
			deps := dependentLinks(w, e)
			n := int(float64(len(deps)) * e.Partial)
			if n < 1 && len(deps) > 0 {
				n = 1
			}
			idx := rng.Perm(len(deps))[:n]
			sort.Ints(idx)
			for _, j := range idx {
				e.partialLinks = append(e.partialLinks, deps[j])
			}
		}
		if e.Start.Before(start) || !e.End().Before(end) {
			return nil, fmt.Errorf("simulate: event %d outside scenario window", e.ID)
		}
		res.transitions = append(res.transitions,
			transition{at: e.Start, ev: e, begin: true},
			transition{at: e.End(), ev: e, begin: false},
		)
	}
	sort.Slice(res.transitions, func(i, j int) bool {
		ti, tj := res.transitions[i], res.transitions[j]
		if !ti.at.Equal(tj.at) {
			return ti.at.Before(tj.at)
		}
		if ti.ev.ID != tj.ev.ID {
			return ti.ev.ID < tj.ev.ID
		}
		return !ti.begin && tj.begin
	})

	// Baseline state.
	baseline := eng.ComputeAll(nil)
	current := make(map[bgp.ASN]*routing.Table, len(baseline.Tables))
	for o, t := range baseline.Tables {
		current[o] = t
	}

	// Initial RIB dump (and periodic redumps).
	dumpAt := func(at time.Time) {
		for _, v := range vantages {
			for _, o := range w.ASes {
				res.emitRoute(at, mrt.KindRIB, v, collectorsOf[v], o, current[o.ASN], 0)
			}
		}
	}
	dumpAt(start)
	if rc.RIBDumpInterval > 0 {
		for at := start.Add(rc.RIBDumpInterval); at.Before(end); at = at.Add(rc.RIBDumpInterval) {
			dumpAt(at)
		}
	}

	// Replay transitions.
	mask := routing.NewMask()
	currentRIB := &routing.RIB{Tables: current}
	for _, tr := range res.transitions {
		if err := aborted(); err != nil {
			return nil, err
		}
		touched := make(map[int]bool)
		if tr.ev.Partial > 0 && (tr.ev.Kind == EvFacility || tr.ev.Kind == EvIXP) {
			for _, id := range tr.ev.partialLinks {
				touched[id] = true
			}
		} else {
			for _, id := range dependentLinks(w, tr.ev) {
				touched[id] = true
			}
		}
		// Candidates: origins using touched links now (failure) or in the
		// baseline (restoration may attract routes back).
		cand := map[bgp.ASN]bool{}
		for _, o := range currentRIB.AffectedOrigins(touched) {
			cand[o] = true
		}
		for _, o := range baseline.AffectedOrigins(touched) {
			cand[o] = true
		}
		if tr.ev.Kind == EvAS {
			cand[tr.ev.AS] = true
		}
		origins := make([]bgp.ASN, 0, len(cand))
		for o := range cand {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })

		applyTransition(mask, tr)

		for _, o := range origins {
			if err := aborted(); err != nil {
				return nil, err
			}
			asObj, ok := w.AS(o)
			if !ok {
				continue
			}
			newT := eng.ComputeOrigin(o, mask)
			changes := eng.DiffTables(current[o], newT, vantages)
			current[o] = newT
			for _, ch := range changes {
				if !tr.begin && rc.StickyFraction > 0 && rng.Float64() < rc.StickyFraction {
					// The vantage sticks with its outage-time path: no
					// re-announcement reaches the collectors.
					continue
				}
				jitter := time.Duration(2+rng.Intn(45)) * time.Second
				at := tr.at.Add(jitter)
				if ch.New == nil {
					res.emitWithdraw(at, ch.Vantage, collectorsOf[ch.Vantage], asObj)
				} else {
					res.emitRoute(at, mrt.KindUpdate, ch.Vantage, collectorsOf[ch.Vantage], asObj, newT, jitter)
				}
			}
		}
	}

	// Collector session noise.
	for i := 0; i < rc.SessionResets && len(vantages) > 0; i++ {
		v := vantages[rng.Intn(len(vantages))]
		at := start.Add(time.Duration(rng.Int63n(int64(end.Sub(start)))))
		down := time.Duration(1+rng.Intn(10)) * time.Minute
		for _, cname := range collectorsOf[v] {
			res.Records = append(res.Records,
				&mrt.Record{Time: at, Kind: mrt.KindState, Collector: cname, PeerAS: v,
					OldState: mrt.StateEstablished, NewState: mrt.StateIdle},
				&mrt.Record{Time: at.Add(down), Kind: mrt.KindState, Collector: cname, PeerAS: v,
					OldState: mrt.StateIdle, NewState: mrt.StateEstablished},
			)
		}
	}

	sort.SliceStable(res.Records, func(i, j int) bool {
		return res.Records[i].Time.Before(res.Records[j].Time)
	})
	return res, nil
}

// emitRoute appends RIB/update records for every prefix of origin o as seen
// from vantage v, one record per collector.
func (r *Result) emitRoute(at time.Time, kind mrt.RecordKind, v bgp.ASN, collectors []string, o *topology.AS, table *routing.Table, _ time.Duration) {
	route, ok := r.Engine.Route(table, v)
	if !ok {
		return
	}
	attrs := bgp.Attributes{
		Origin:      bgp.OriginIGP,
		ASPath:      route.Path,
		Communities: route.Communities.Clone(),
	}
	// IPv6 routes only carry the communities of operators that also tag
	// their IPv6 ingresses, which is why IPv6 coverage trails IPv4
	// (Figure 7c).
	var comms6 bgp.Communities
	for _, c := range route.Communities {
		if a, ok := r.World.AS(c.ASN()); ok && a.UsesCommunities && !a.TagsIPv6 {
			continue
		}
		comms6 = append(comms6, c)
	}
	for _, cname := range collectors {
		for _, p := range o.Prefixes {
			u := &bgp.Update{Announced: []netip.Prefix{p}, Attrs: attrs.Clone()}
			u.Attrs.NextHop = v4NextHop(v)
			r.Records = append(r.Records, &mrt.Record{
				Time: at, Kind: kind, Collector: cname, PeerAS: v,
				PeerAddr: v4NextHop(v), Update: u,
			})
		}
		for _, p := range o.Prefixes6 {
			u := &bgp.Update{Announced: []netip.Prefix{p}, Attrs: attrs.Clone()}
			u.Attrs.Communities = comms6.Clone()
			u.Attrs.NextHop = v6NextHop(v)
			r.Records = append(r.Records, &mrt.Record{
				Time: at, Kind: kind, Collector: cname, PeerAS: v,
				PeerAddr: v6NextHop(v), Update: u,
			})
		}
	}
}

// emitWithdraw appends withdrawal records for every prefix of o.
func (r *Result) emitWithdraw(at time.Time, v bgp.ASN, collectors []string, o *topology.AS) {
	for _, cname := range collectors {
		u := &bgp.Update{}
		u.Withdrawn = append(u.Withdrawn, o.Prefixes...)
		u.Withdrawn = append(u.Withdrawn, o.Prefixes6...)
		r.Records = append(r.Records, &mrt.Record{
			Time: at, Kind: mrt.KindUpdate, Collector: cname, PeerAS: v,
			PeerAddr: v4NextHop(v), Update: u,
		})
	}
}
