package simulate

import (
	"net/netip"

	"kepler/internal/bgp"
)

// v4NextHop derives a stable IPv4 next-hop/peer address for a vantage AS.
func v4NextHop(v bgp.ASN) netip.Addr {
	return netip.AddrFrom4([4]byte{198, 32, byte(v >> 8), byte(v)})
}

// v6NextHop derives a stable IPv6 next-hop/peer address for a vantage AS.
func v6NextHop(v bgp.ASN) netip.Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x07, 0xf8
	b[4], b[5] = 0xff, 0xff
	b[14], b[15] = byte(v>>8), byte(v)
	return netip.AddrFrom16(b)
}
