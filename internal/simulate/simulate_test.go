package simulate

import (
	"bytes"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/mrt"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

var (
	start = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	end   = time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
)

func genWorld(t *testing.T) *topology.World {
	t.Helper()
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func schedCfg() ScheduleConfig {
	return ScheduleConfig{
		Seed: 9, Start: start.Add(24 * time.Hour), End: end.Add(-48 * time.Hour),
		FacilityOutages: 4, IXPOutages: 2, LinkOutages: 6, ASOutages: 2,
		PartialFraction: 0.25, MinMembers: 3,
	}
}

func TestGenerateSchedule(t *testing.T) {
	w := genWorld(t)
	evs := GenerateSchedule(w, schedCfg())
	if len(evs) != 14 {
		t.Fatalf("events = %d, want 14", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start.Before(evs[i-1].Start) {
			t.Fatal("schedule not sorted")
		}
	}
	for _, e := range evs {
		if e.Duration < 2*time.Minute || e.Duration > 48*time.Hour {
			t.Errorf("implausible duration %v", e.Duration)
		}
		if e.Start.Before(start) || e.End().After(end) {
			t.Errorf("event outside window: %+v", e)
		}
	}
	// Determinism.
	evs2 := GenerateSchedule(w, schedCfg())
	for i := range evs {
		if evs[i].ID != evs2[i].ID || !evs[i].Start.Equal(evs2[i].Start) {
			t.Fatal("schedule not deterministic")
		}
	}
}

func TestTruthEvents(t *testing.T) {
	w := genWorld(t)
	evs := GenerateSchedule(w, schedCfg())
	truth := TruthEvents(w, evs)
	// Only infra events appear (4 facility + 2 IXP).
	if len(truth) != 6 {
		t.Fatalf("truth events = %d, want 6", len(truth))
	}
	for _, e := range truth {
		if !e.PoP.IsValid() || e.Name == "" || e.Country == "" {
			t.Errorf("incomplete truth event %+v", e)
		}
	}
}

func TestRenderBasics(t *testing.T) {
	w := genWorld(t)
	evs := GenerateSchedule(w, schedCfg())
	res, err := Render(w, evs, start, end, RenderConfig{Seed: 5, SessionResets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records rendered")
	}
	// Sorted by time.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Time.Before(res.Records[i-1].Time) {
			t.Fatalf("records out of order at %d", i)
		}
	}
	// There must be RIB dumps, updates and state records.
	kinds := map[mrt.RecordKind]int{}
	for _, r := range res.Records {
		kinds[r.Kind]++
		if r.Collector == "" {
			t.Fatal("record without collector")
		}
	}
	if kinds[mrt.KindRIB] == 0 || kinds[mrt.KindUpdate] == 0 || kinds[mrt.KindState] == 0 {
		t.Fatalf("kind mix = %v", kinds)
	}
	// All updates must carry valid paths (origin-last) for announcements.
	for _, r := range res.Records {
		if r.Kind != mrt.KindUpdate || r.Update == nil || len(r.Update.Announced) == 0 {
			continue
		}
		path := r.Update.Attrs.ASPath
		if len(path) == 0 {
			t.Fatal("announcement without AS path")
		}
		if path.First() != r.PeerAS {
			t.Fatalf("path %v does not start at vantage %v", path, r.PeerAS)
		}
		origin, ok := w.OriginOf(r.Update.Announced[0])
		if !ok || path.Origin() != origin {
			t.Fatalf("path %v does not end at origin of %v", path, r.Update.Announced[0])
		}
	}
}

func TestRenderRoundTripsThroughMRT(t *testing.T) {
	w := genWorld(t)
	evs := GenerateSchedule(w, schedCfg())[:4]
	res, err := Render(w, evs, start, end, RenderConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mrt.WriteAll(&buf, res.Records); err != nil {
		t.Fatalf("archive write: %v", err)
	}
	got, err := mrt.ReadAll(&buf)
	if err != nil {
		t.Fatalf("archive read: %v", err)
	}
	if len(got) != len(res.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(res.Records))
	}
}

func TestRenderEmitsOutageDynamics(t *testing.T) {
	w := genWorld(t)
	// One full outage of a well-populated facility.
	var target colo.FacilityID
	best := 0
	for _, f := range w.Map.Facilities() {
		if len(f.Members) > best {
			best = len(f.Members)
			target = f.ID
		}
	}
	ev := Event{
		ID: 0, Kind: EvFacility, Facility: target,
		Start: start.Add(10 * 24 * time.Hour), Duration: time.Hour,
	}
	res, err := Render(w, []Event{ev}, start, end, RenderConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Updates must cluster around the failure and the restoration.
	failWindow, restoreWindow, elsewhere := 0, 0, 0
	for _, r := range res.Records {
		if r.Kind != mrt.KindUpdate {
			continue
		}
		switch {
		case r.Time.After(ev.Start.Add(-time.Minute)) && r.Time.Before(ev.Start.Add(2*time.Minute)):
			failWindow++
		case r.Time.After(ev.End().Add(-time.Minute)) && r.Time.Before(ev.End().Add(2*time.Minute)):
			restoreWindow++
		default:
			elsewhere++
		}
	}
	if failWindow == 0 {
		t.Error("no updates around failure")
	}
	if restoreWindow == 0 {
		t.Error("no updates around restoration")
	}
	if elsewhere > failWindow+restoreWindow {
		t.Errorf("more updates outside windows (%d) than inside (%d)", elsewhere, failWindow+restoreWindow)
	}
}

func TestMaskAt(t *testing.T) {
	w := genWorld(t)
	var target colo.FacilityID
	for _, f := range w.Map.Facilities() {
		if len(f.Members) >= 3 {
			target = f.ID
			break
		}
	}
	ev := Event{
		ID: 0, Kind: EvFacility, Facility: target,
		Start: start.Add(5 * 24 * time.Hour), Duration: 2 * time.Hour,
	}
	res, err := Render(w, []Event{ev}, start, end, RenderConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MaskAt(ev.Start.Add(-time.Second)); m.Facilities[target] {
		t.Error("mask failed before event")
	}
	if m := res.MaskAt(ev.Start.Add(time.Minute)); !m.Facilities[target] {
		t.Error("mask not failed during event")
	}
	if m := res.MaskAt(ev.End().Add(time.Minute)); m.Facilities[target] {
		t.Error("mask still failed after restore")
	}
}

func TestPartialOutage(t *testing.T) {
	w := genWorld(t)
	var target colo.FacilityID
	best := 0
	for _, f := range w.Map.Facilities() {
		if len(f.Members) > best {
			best = len(f.Members)
			target = f.ID
		}
	}
	ev := Event{
		ID: 0, Kind: EvFacility, Facility: target, Partial: 0.5,
		Start: start.Add(5 * 24 * time.Hour), Duration: time.Hour,
	}
	res, err := Render(w, []Event{ev}, start, end, RenderConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := res.MaskAt(ev.Start.Add(time.Minute))
	if m.Facilities[target] {
		t.Error("partial outage failed the whole facility")
	}
	if len(m.Links) == 0 {
		t.Error("partial outage failed no links")
	}
	// Roughly half the dependent links must be down.
	deps := dependentLinks(w, &ev)
	if len(m.Links) > len(deps) || len(m.Links) < len(deps)/4 {
		t.Errorf("partial failed %d of %d dependent links", len(m.Links), len(deps))
	}
	// After restore everything is back.
	if m2 := res.MaskAt(ev.End().Add(time.Minute)); len(m2.Links) != 0 {
		t.Error("partial links not restored")
	}
}

func TestRenderRejectsOutOfWindowEvents(t *testing.T) {
	w := genWorld(t)
	ev := Event{ID: 0, Kind: EvFacility, Facility: 1, Start: start.Add(-time.Hour), Duration: time.Hour}
	if _, err := Render(w, []Event{ev}, start, end, RenderConfig{}); err == nil {
		t.Error("out-of-window event accepted")
	}
	if _, err := Render(w, nil, end, start, RenderConfig{}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestCommunitiesTravelInRecords(t *testing.T) {
	w := genWorld(t)
	res, err := Render(w, nil, start, start.Add(time.Hour), RenderConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	withComm := 0
	total := 0
	for _, r := range res.Records {
		if r.Kind != mrt.KindRIB || r.Update == nil {
			continue
		}
		total++
		if len(r.Update.Attrs.Communities) > 0 {
			withComm++
		}
	}
	if total == 0 {
		t.Fatal("no RIB records")
	}
	frac := float64(withComm) / float64(total)
	// The paper observes ~50% of routes carrying location communities; our
	// default world should be in that ballpark.
	if frac < 0.25 || frac > 0.95 {
		t.Errorf("community coverage %.2f outside plausible range", frac)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EvFacility, EvIXP, EvLink, EvAS} {
		if k.String() == "unknown" {
			t.Errorf("kind %d renders unknown", k)
		}
	}
}

func TestVantageAddrs(t *testing.T) {
	a := v4NextHop(bgp.ASN(6001))
	b := v4NextHop(bgp.ASN(6002))
	if a == b {
		t.Error("v4 next hops collide")
	}
	if !v6NextHop(6001).Is6() {
		t.Error("v6 next hop not v6")
	}
}

func TestAffectedRecomputationMatchesFullRecompute(t *testing.T) {
	// The incremental recomputation must agree with a full recompute for
	// the failed state.
	w := genWorld(t)
	var target colo.FacilityID
	best := 0
	for _, f := range w.Map.Facilities() {
		if len(f.Members) > best {
			best = len(f.Members)
			target = f.ID
		}
	}
	ev := Event{ID: 0, Kind: EvFacility, Facility: target,
		Start: start.Add(24 * time.Hour), Duration: time.Hour}
	res, err := Render(w, []Event{ev}, start, end, RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := res.Engine
	mask := routing.NewMask()
	mask.FailFacility(target)

	// Sample origins and vantages; routes recomputed from scratch under the
	// mask must match what a full recompute yields (the renderer used the
	// same ComputeOrigin, so this guards the affected-origin pruning).
	full := eng.ComputeAll(mask)
	for i, a := range w.ASes {
		if i%25 != 0 {
			continue
		}
		inc := eng.ComputeOrigin(a.ASN, mask)
		for _, c := range w.Collectors {
			for _, v := range c.Peers {
				r1, ok1 := eng.Route(full.Tables[a.ASN], v)
				r2, ok2 := eng.Route(inc, v)
				if ok1 != ok2 || (ok1 && !r1.Equal(r2)) {
					t.Fatalf("divergent recomputation for origin %v vantage %v", a.ASN, v)
				}
			}
		}
	}
}
