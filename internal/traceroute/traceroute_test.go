package traceroute

import (
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

func world(t *testing.T) (*topology.World, *routing.Engine) {
	t.Helper()
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w, routing.New(w)
}

func TestTraceBasics(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	origin := w.ASes[len(w.ASes)-1].ASN
	table := eng.ComputeOrigin(origin, nil)
	src := w.Collectors[0].Peers[0]

	trace, ok := tr.Trace(table, src)
	if !ok {
		t.Fatalf("%v has no route to %v", src, origin)
	}
	if trace.Src != src || trace.Dst != origin {
		t.Errorf("endpoints = %v -> %v", trace.Src, trace.Dst)
	}
	if len(trace.Hops) < 2 {
		t.Fatalf("trace too short: %d hops", len(trace.Hops))
	}
	// First hop belongs to the source, last to the destination.
	if trace.Hops[0].ASN != src {
		t.Errorf("first hop AS = %v", trace.Hops[0].ASN)
	}
	if trace.Hops[len(trace.Hops)-1].ASN != origin {
		t.Errorf("last hop AS = %v", trace.Hops[len(trace.Hops)-1].ASN)
	}
	// RTT must be cumulative and nonnegative.
	prev := 0.0
	for i, h := range trace.Hops {
		if h.RTTms < prev {
			t.Fatalf("RTT decreased at hop %d: %f < %f", i, h.RTTms, prev)
		}
		prev = h.RTTms
		if !h.Addr.IsValid() {
			t.Fatalf("hop %d has invalid address", i)
		}
	}
	if trace.RTT() <= 0 {
		t.Error("zero end-to-end RTT")
	}
}

func TestTraceIXPDetection(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	// Find a multilateral link and trace across it.
	var link *topology.Interconnect
	for _, l := range w.Links {
		if l.Kind == topology.Multilateral {
			link = l
			break
		}
	}
	if link == nil {
		t.Skip("no multilateral link in world")
	}
	table := eng.ComputeOrigin(link.A, nil)
	trace, ok := tr.Trace(table, link.B)
	if !ok {
		t.Fatal("no route across peering link")
	}
	// If the chosen route still uses this IXP, the trace must show a LAN
	// hop that IPToIXP resolves.
	if trace.CrossesIXP(link.IXP) {
		found := false
		for _, h := range trace.Hops {
			if h.IXP == link.IXP {
				ix, ok := tr.IPToIXP(h.Addr)
				if !ok || ix != link.IXP {
					t.Errorf("LAN hop %v does not resolve to IXP %d (got %d, %v)", h.Addr, link.IXP, ix, ok)
				}
				found = true
			}
		}
		if !found {
			t.Error("no LAN hop on an IXP-crossing trace")
		}
	}
}

func TestTraceRerouteChangesInfraKey(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	// Find a PNI whose facility, when failed, changes some route.
	for _, l := range w.Links {
		if l.Kind != topology.PNI || l.Facility == 0 || l.Rel != topology.RelP2P {
			continue
		}
		before := eng.ComputeOrigin(l.A, nil)
		tb, ok := tr.Trace(before, l.B)
		if !ok || !tb.CrossesFacility(l.Facility) {
			continue
		}
		mask := routing.NewMask()
		mask.FailFacility(l.Facility)
		after := eng.ComputeOrigin(l.A, mask)
		ta, ok := tr.Trace(after, l.B)
		if !ok {
			continue
		}
		if ta.CrossesFacility(l.Facility) {
			t.Fatalf("trace still crosses failed facility %d", l.Facility)
		}
		if tb.InfraKey() == ta.InfraKey() {
			t.Fatalf("infra key unchanged across reroute: %q", tb.InfraKey())
		}
		return
	}
	t.Skip("no suitable PNI found")
}

func TestPlatformBudget(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)
	table := eng.ComputeOrigin(w.ASes[0].ASN, nil)
	src := w.Collectors[0].Peers[0]

	p := &Platform{Budget: 2}
	if _, err := p.Trace(tr, table, src); err != nil {
		t.Fatalf("first trace failed: %v", err)
	}
	if _, err := p.Trace(tr, table, src); err != nil {
		t.Fatalf("second trace failed: %v", err)
	}
	if _, err := p.Trace(tr, table, src); err != ErrBudget {
		t.Errorf("expected ErrBudget, got %v", err)
	}
	if p.Used != 2 {
		t.Errorf("Used = %d", p.Used)
	}
}

func TestArchiveStablePairs(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	var srcs, dsts []bgp.ASN
	for _, c := range w.Collectors {
		srcs = append(srcs, c.Peers...)
	}
	for i := 0; i < 10; i++ {
		dsts = append(dsts, w.ASes[i*7%len(w.ASes)].ASN)
	}

	collect := func(mask *routing.Mask) []*Trace {
		var out []*Trace
		for _, d := range dsts {
			table := eng.ComputeOrigin(d, mask)
			for _, s := range srcs {
				if s == d {
					continue
				}
				if trace, ok := tr.Trace(table, s); ok {
					out = append(out, trace)
				}
			}
		}
		return out
	}

	a := &Archive{}
	for week := 0; week < 4; week++ {
		a.AddWeek(collect(nil))
	}
	if a.Weeks() != 4 {
		t.Fatalf("weeks = %d", a.Weeks())
	}
	stable := a.StablePairs(4)
	if len(stable) == 0 {
		t.Fatal("no stable pairs across identical weeks")
	}
	for _, sp := range stable {
		if sp.InfraKey == "" || sp.Last == nil {
			t.Fatalf("bad stable pair %+v", sp)
		}
	}
	// Requesting more weeks than stored yields nothing.
	if got := a.StablePairs(9); got != nil {
		t.Errorf("StablePairs(9) = %v", got)
	}
}

func TestArchiveInstabilityExcluded(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	// Build 3 identical weeks, then one week under a big failure: pairs
	// whose infrastructure changed must drop out of the stable set.
	var fac colo.FacilityID
	for _, f := range w.Map.Facilities() {
		if len(f.Members) > 5 {
			fac = f.ID
			break
		}
	}
	if fac == 0 {
		t.Skip("no populated facility")
	}
	dst := w.ASes[3].ASN
	srcs := w.Collectors[0].Peers

	mk := func(mask *routing.Mask) []*Trace {
		table := eng.ComputeOrigin(dst, mask)
		var out []*Trace
		for _, s := range srcs {
			if trace, ok := tr.Trace(table, s); ok {
				out = append(out, trace)
			}
		}
		return out
	}
	a := &Archive{}
	for i := 0; i < 3; i++ {
		a.AddWeek(mk(nil))
	}
	stableBefore := len(a.StablePairs(3))

	mask := routing.NewMask()
	mask.FailFacility(fac)
	a.AddWeek(mk(mask))
	stableAfter := len(a.StablePairs(4))
	if stableAfter > stableBefore {
		t.Errorf("stability grew after disruption: %d -> %d", stableBefore, stableAfter)
	}
}

func TestRTTIncreasesOnReroute(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	// Across many (src,dst) pairs, failing the facility of the primary
	// path should on average not shorten RTTs (backup paths detour).
	var sumBefore, sumAfter float64
	n := 0
	for _, l := range w.Links {
		if l.Kind != topology.PNI || l.Rel != topology.RelP2P || l.Facility == 0 {
			continue
		}
		before := eng.ComputeOrigin(l.A, nil)
		tb, ok := tr.Trace(before, l.B)
		if !ok || !tb.CrossesFacility(l.Facility) {
			continue
		}
		mask := routing.NewMask()
		mask.FailFacility(l.Facility)
		after := eng.ComputeOrigin(l.A, mask)
		ta, ok := tr.Trace(after, l.B)
		if !ok {
			continue
		}
		sumBefore += tb.RTT()
		sumAfter += ta.RTT()
		n++
		if n >= 20 {
			break
		}
	}
	if n < 3 {
		t.Skip("too few reroutable pairs")
	}
	if sumAfter < sumBefore*0.9 {
		t.Errorf("mean RTT dropped after outages: %.1f -> %.1f over %d pairs", sumBefore/float64(n), sumAfter/float64(n), n)
	}
}

// TestWindowedPlatformBudgetResetAcrossRotation pins the weekly budget
// contract: the per-window spend exhausts, a rotation restores the full
// budget, and the lifetime counter keeps accumulating across windows.
func TestWindowedPlatformBudgetResetAcrossRotation(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)
	table := eng.ComputeOrigin(w.ASes[0].ASN, nil)
	src := w.Collectors[0].Peers[0]

	p := &WindowedPlatform{PerWeek: 2}
	for i := 0; i < 2; i++ {
		if _, err := p.Trace(tr, table, src); err != nil {
			t.Fatalf("trace %d failed: %v", i, err)
		}
	}
	if _, err := p.Trace(tr, table, src); err != ErrBudget {
		t.Fatalf("expected ErrBudget inside the window, got %v", err)
	}

	// Week boundary: the archive rotates, the budget window resets.
	p.Rotate()
	if p.Used != 0 || p.Weeks != 1 {
		t.Fatalf("rotation did not reset the window: used=%d weeks=%d", p.Used, p.Weeks)
	}
	if _, err := p.Trace(tr, table, src); err != nil {
		t.Fatalf("post-rotation trace failed: %v", err)
	}
	if p.TotalUsed != 3 {
		t.Fatalf("TotalUsed = %d, want 3 (lifetime spend survives rotation)", p.TotalUsed)
	}

	// Several idle rotations never inflate the per-window budget.
	p.Rotate()
	p.Rotate()
	spent := 0
	for {
		if _, err := p.Trace(tr, table, src); err == ErrBudget {
			break
		}
		spent++
		if spent > 10 {
			t.Fatal("budget never exhausted after idle rotations")
		}
	}
	if spent != 2 {
		t.Fatalf("window grants %d credits after idle rotations, want 2", spent)
	}
}

// TestPathCacheEvictionAcrossRotation pins the stale-baseline eviction:
// pairs that stay stable across the new week's dump survive a Refresh,
// pairs whose infrastructure changed are evicted, and a recovered week
// readmits them.
func TestPathCacheEvictionAcrossRotation(t *testing.T) {
	w, eng := world(t)
	tr := NewTracer(eng)

	var fac colo.FacilityID
	for _, f := range w.Map.Facilities() {
		if len(f.Members) > 5 {
			fac = f.ID
			break
		}
	}
	if fac == 0 {
		t.Skip("no populated facility")
	}
	var srcs, dsts []bgp.ASN
	for _, c := range w.Collectors {
		srcs = append(srcs, c.Peers...)
	}
	for i := 0; i < 10; i++ {
		dsts = append(dsts, w.ASes[i*7%len(w.ASes)].ASN)
	}
	collect := func(mask *routing.Mask) []*Trace {
		var out []*Trace
		for _, d := range dsts {
			table := eng.ComputeOrigin(d, mask)
			for _, s := range srcs {
				if s == d {
					continue
				}
				if trace, ok := tr.Trace(table, s); ok {
					out = append(out, trace)
				}
			}
		}
		return out
	}

	a := &Archive{}
	for i := 0; i < 3; i++ {
		a.AddWeek(collect(nil))
	}
	cache := NewPathCache(3)
	if evicted := cache.Refresh(a); evicted != 0 {
		t.Fatalf("first refresh evicted %d entries from an empty cache", evicted)
	}
	if cache.Len() == 0 {
		t.Fatal("no stable pairs cached across identical weeks")
	}
	before := cache.Len()

	// Find a cached pair whose path crosses the facility we will fail.
	var vicSrc, vicDst bgp.ASN
	for _, d := range dsts {
		for _, s := range srcs {
			if sp, ok := cache.Get(s, d); ok && sp.Last.CrossesFacility(fac) {
				vicSrc, vicDst = s, d
			}
		}
	}
	if vicSrc == 0 {
		t.Skip("no cached pair crosses the chosen facility")
	}

	// Week boundary under a facility failure: the affected pair's
	// infrastructure key changes, so the rotation must evict it.
	mask := routing.NewMask()
	mask.FailFacility(fac)
	a.AddWeek(collect(mask))
	evicted := cache.Refresh(a)
	if evicted == 0 {
		t.Fatal("disrupted week evicted nothing")
	}
	if cache.Week() != 4 {
		t.Fatalf("cache week = %d, want 4", cache.Week())
	}
	if _, ok := cache.Get(vicSrc, vicDst); ok {
		t.Fatalf("pair %v->%v survived the rotation despite crossing failed facility %d", vicSrc, vicDst, fac)
	}
	if cache.Len() >= before {
		t.Fatalf("cache grew across a disruption: %d -> %d", before, cache.Len())
	}

	// Recovery: three healthy weeks readmit the pair.
	for i := 0; i < 3; i++ {
		a.AddWeek(collect(nil))
	}
	cache.Refresh(a)
	if _, ok := cache.Get(vicSrc, vicDst); !ok {
		t.Fatalf("pair %v->%v not readmitted after recovery", vicSrc, vicDst)
	}
}
