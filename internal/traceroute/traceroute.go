// Package traceroute is Kepler's data-plane substrate (Section 4.4): it
// synthesizes IP-level forward paths from the routing engine's AS-level
// routes, maps IP hops back to IXPs (via peering-LAN prefixes, the
// traIXroute technique) and to facilities (via an interface map), models
// round-trip times from great-circle propagation delays, maintains weekly
// trace archives from which stable baseline subpaths are derived (the
// PathCache approach), and enforces the measurement budgets public
// platforms such as RIPE Atlas impose.
package traceroute

import (
	"fmt"
	"net/netip"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

// Hop is one IP-level hop of a trace.
type Hop struct {
	Addr     netip.Addr
	ASN      bgp.ASN         // AS owning the interface (IXP LAN addresses belong to the member)
	Facility colo.FacilityID // building housing the interface, 0 if unmapped
	IXP      colo.IXPID      // nonzero for peering-LAN interfaces
	RTTms    float64         // cumulative round-trip time at this hop
}

// Trace is one traceroute measurement.
type Trace struct {
	Src, Dst bgp.ASN
	Hops     []Hop
}

// RTT returns the end-to-end round-trip time in milliseconds.
func (t *Trace) RTT() float64 {
	if len(t.Hops) == 0 {
		return 0
	}
	return t.Hops[len(t.Hops)-1].RTTms
}

// CrossesIXP reports whether any hop is on the IXP's peering LAN.
func (t *Trace) CrossesIXP(ix colo.IXPID) bool {
	for _, h := range t.Hops {
		if h.IXP == ix {
			return true
		}
	}
	return false
}

// CrossesFacility reports whether any hop interface is housed in the
// facility.
func (t *Trace) CrossesFacility(f colo.FacilityID) bool {
	for _, h := range t.Hops {
		if h.Facility == f {
			return true
		}
	}
	return false
}

// InfraKey summarizes the infrastructure sequence of a trace: the ordered
// facility/IXP crossings. Two traces with the same key interconnect over
// the same physical hops.
func (t *Trace) InfraKey() string {
	key := ""
	for _, h := range t.Hops {
		switch {
		case h.IXP != 0:
			key += fmt.Sprintf("x%d,", h.IXP)
		case h.Facility != 0:
			key += fmt.Sprintf("f%d,", h.Facility)
		}
	}
	return key
}

// Tracer synthesizes traces from routing state.
type Tracer struct {
	w   *topology.World
	eng *routing.Engine
}

// NewTracer builds a tracer over the engine's world.
func NewTracer(eng *routing.Engine) *Tracer {
	return &Tracer{w: eng.World(), eng: eng}
}

// routerAddr derives a deterministic infrastructure address for an AS
// router located in a facility, drawn from the AS's first prefix.
func (tr *Tracer) routerAddr(asn bgp.ASN, fac colo.FacilityID) netip.Addr {
	a, ok := tr.w.AS(asn)
	if !ok || len(a.Prefixes) == 0 {
		return netip.AddrFrom4([4]byte{192, 0, 2, byte(asn)})
	}
	base := a.Prefixes[0].Addr().As4()
	base[3] = byte(1 + uint32(fac)%250)
	return netip.AddrFrom4(base)
}

// lanAddr derives the member's address on the IXP peering LAN.
func (tr *Tracer) lanAddr(ix colo.IXPID, member bgp.ASN) netip.Addr {
	ixp, ok := tr.w.Map.IXP(ix)
	if !ok || len(ixp.LANs) == 0 {
		return netip.AddrFrom4([4]byte{203, 0, 113, byte(member)})
	}
	var lan netip.Prefix
	for _, p := range ixp.LANs {
		if p.Addr().Is4() {
			lan = p
			break
		}
	}
	if !lan.IsValid() {
		lan = ixp.LANs[0]
	}
	idx := 1
	for i, m := range ixp.Members {
		if m == member {
			idx = i + 2
			break
		}
	}
	base := lan.Addr().As4()
	base[2] += byte(idx >> 8)
	base[3] = byte(idx)
	return netip.AddrFrom4(base)
}

// hopCoord locates a hop for delay modelling: facility city, else IXP city,
// else the AS home city.
func (tr *Tracer) hopCoord(asn bgp.ASN, fac colo.FacilityID, ix colo.IXPID) geo.Coord {
	var city geo.CityID
	if fac != 0 {
		city = tr.w.Map.CityOf(colo.FacilityPoP(fac))
	}
	if city == geo.NoCity && ix != 0 {
		city = tr.w.Map.CityOf(colo.IXPPoP(ix))
	}
	if city == geo.NoCity {
		if a, ok := tr.w.AS(asn); ok {
			city = a.HomeCity
		}
	}
	if c, ok := tr.w.Geo.City(city); ok {
		return c.Coord
	}
	return geo.Coord{}
}

// nearFacility picks the facility housing asn's side of link l.
func nearFacility(l *topology.Interconnect, asn bgp.ASN) colo.FacilityID {
	if l == nil {
		return 0
	}
	if l.Facility != 0 {
		return l.Facility
	}
	return l.PortFacility(asn)
}

// Trace synthesizes the forward path from src toward the table's origin
// under the routing state embodied by the table. ok is false when src has
// no route.
func (tr *Tracer) Trace(table *routing.Table, src bgp.ASN) (*Trace, bool) {
	route, ok := tr.eng.Route(table, src)
	if !ok {
		return nil, false
	}
	t := &Trace{Src: src, Dst: table.Origin}
	var rtt float64
	var prev geo.Coord
	emit := func(addr netip.Addr, asn bgp.ASN, fac colo.FacilityID, ix colo.IXPID) {
		coord := tr.hopCoord(asn, fac, ix)
		if len(t.Hops) > 0 && coord.Valid() && prev.Valid() {
			rtt += 2 * geo.PropagationDelay(prev, coord)
		}
		rtt += 0.3 // per-hop forwarding latency
		if coord.Valid() {
			prev = coord
		}
		t.Hops = append(t.Hops, Hop{Addr: addr, ASN: asn, Facility: fac, IXP: ix, RTTms: rtt})
	}

	// Source router.
	var firstFac colo.FacilityID
	if len(route.Links) > 0 {
		firstFac = nearFacility(route.Links[0], src)
	}
	prev = tr.hopCoord(src, firstFac, 0)
	emit(tr.routerAddr(src, firstFac), src, firstFac, 0)

	for i, l := range route.Links {
		near := route.Path[i]
		far := route.Path[i+1]
		if l != nil && l.IXP != 0 {
			// Crossing a peering LAN: the far member's LAN interface
			// responds (attributed to the member, located at the far port
			// facility when known, else the IXP's city).
			emit(tr.lanAddr(l.IXP, far), far, l.PortFacility(far), l.IXP)
		} else if l != nil {
			// PNI: far router in the shared building.
			emit(tr.routerAddr(far, l.Facility), far, l.Facility, 0)
		}
		// Far AS egress/backbone router toward the next hop.
		var nextFac colo.FacilityID
		if i+1 < len(route.Links) {
			nextFac = nearFacility(route.Links[i+1], far)
		}
		if nextFac != 0 || i+1 == len(route.Links) {
			emit(tr.routerAddr(far, nextFac), far, nextFac, 0)
		}
		_ = near
	}
	return t, true
}

// IPToIXP resolves an address to the IXP whose peering LAN contains it —
// the traIXroute technique of Section 4.4.
func (tr *Tracer) IPToIXP(addr netip.Addr) (colo.IXPID, bool) {
	for _, ix := range tr.w.Map.IXPs() {
		for _, lan := range ix.LANs {
			if lan.Contains(addr) {
				return ix.ID, true
			}
		}
	}
	return 0, false
}

// Platform is a rate-limited measurement platform (RIPE Atlas, Looking
// Glasses). Each trace consumes one credit.
type Platform struct {
	Budget int // remaining credits
	Used   int
}

// ErrBudget is returned when the platform budget is exhausted.
var ErrBudget = fmt.Errorf("traceroute: measurement budget exhausted")

// Trace runs a measurement through the platform, consuming budget.
func (p *Platform) Trace(tr *Tracer, table *routing.Table, src bgp.ASN) (*Trace, error) {
	if p.Budget <= 0 {
		return nil, ErrBudget
	}
	p.Budget--
	p.Used++
	t, ok := tr.Trace(table, src)
	if !ok {
		return nil, fmt.Errorf("traceroute: %v has no route to %v", src, table.Origin)
	}
	return t, nil
}

// pairKey identifies a measured (src, dst) pair.
type pairKey struct {
	src, dst bgp.ASN
}

// Archive stores weekly trace dumps, mirroring the public repositories
// (RIPE Atlas, Ark, iPlane) Kepler consumes opportunistically.
type Archive struct {
	weeks []map[pairKey]*Trace
}

// AddWeek appends one weekly dump.
func (a *Archive) AddWeek(traces []*Trace) {
	dump := make(map[pairKey]*Trace, len(traces))
	for _, t := range traces {
		dump[pairKey{t.Src, t.Dst}] = t
	}
	a.weeks = append(a.weeks, dump)
}

// Weeks returns the number of stored dumps.
func (a *Archive) Weeks() int { return len(a.weeks) }

// StablePair is an AS pair whose traces crossed the same infrastructure
// sequence in every one of the last N weekly dumps (Section 4.4's baseline
// construction).
type StablePair struct {
	Src, Dst bgp.ASN
	InfraKey string
	Last     *Trace
}

// StablePairs returns the pairs stable across the most recent n dumps.
func (a *Archive) StablePairs(n int) []StablePair {
	if n <= 0 || len(a.weeks) < n {
		return nil
	}
	recent := a.weeks[len(a.weeks)-n:]
	var out []StablePair
	keys := make([]pairKey, 0, len(recent[0]))
	for k := range recent[0] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		ref := recent[0][k].InfraKey()
		stable := ref != ""
		var last *Trace
		for _, week := range recent {
			t, ok := week[k]
			if !ok || t.InfraKey() != ref {
				stable = false
				break
			}
			last = t
		}
		if stable {
			out = append(out, StablePair{Src: k.src, Dst: k.dst, InfraKey: ref, Last: last})
		}
	}
	return out
}

// WindowedPlatform is a measurement platform whose credits renew per
// archive week: public platforms grant budgets per epoch rather than one
// lifetime pool, so Kepler's opportunistic archive consumption rotates the
// budget window together with the weekly dump (Section 4.4). Rotate resets
// the in-window spend; TotalUsed survives rotations for accounting.
type WindowedPlatform struct {
	// PerWeek is the number of credits granted each window.
	PerWeek int
	// Used is the spend within the current window.
	Used int
	// TotalUsed is the lifetime spend across all windows.
	TotalUsed int
	// Weeks counts completed rotations.
	Weeks int
}

// Rotate starts a new weekly window, restoring the full budget.
func (p *WindowedPlatform) Rotate() {
	p.Weeks++
	p.Used = 0
}

// Trace runs one measurement against the current window's budget.
func (p *WindowedPlatform) Trace(tr *Tracer, table *routing.Table, src bgp.ASN) (*Trace, error) {
	if p.Used >= p.PerWeek {
		return nil, ErrBudget
	}
	p.Used++
	p.TotalUsed++
	t, ok := tr.Trace(table, src)
	if !ok {
		return nil, fmt.Errorf("traceroute: %v has no route to %v", src, table.Origin)
	}
	return t, nil
}

// PathCache memoizes the stable baseline subpaths derived from the weekly
// archive — the PathCache approach of Section 4.4. Refresh rebuilds the
// cache from the archive's most recent dumps after each rotation: pairs
// whose infrastructure sequence stayed identical across the stability
// depth enter (or refresh), and previously cached pairs that went unstable
// in the new week are evicted, so a stale baseline can never validate a
// post-outage measurement.
type PathCache struct {
	depth   int
	week    int
	entries map[pairKey]StablePair
}

// NewPathCache builds a cache requiring stability across depth dumps.
func NewPathCache(depth int) *PathCache {
	if depth < 1 {
		depth = 1
	}
	return &PathCache{depth: depth, entries: make(map[pairKey]StablePair)}
}

// Refresh rebuilds the cache from the archive's last depth weeks, evicting
// every pair no longer stable. It returns the number of evicted entries.
func (c *PathCache) Refresh(a *Archive) int {
	fresh := make(map[pairKey]StablePair)
	for _, sp := range a.StablePairs(c.depth) {
		fresh[pairKey{src: sp.Src, dst: sp.Dst}] = sp
	}
	evicted := 0
	for k := range c.entries {
		if _, still := fresh[k]; !still {
			evicted++
		}
	}
	c.entries = fresh
	c.week = a.Weeks()
	return evicted
}

// Get returns the cached stable pair for (src, dst).
func (c *PathCache) Get(src, dst bgp.ASN) (StablePair, bool) {
	sp, ok := c.entries[pairKey{src: src, dst: dst}]
	return sp, ok
}

// Len returns the number of cached stable pairs.
func (c *PathCache) Len() int { return len(c.entries) }

// Week returns the archive week the cache was last refreshed against.
func (c *PathCache) Week() int { return c.week }
