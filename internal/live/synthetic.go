package live

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"kepler/internal/mrt"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

// SyntheticConfig parameterizes the world-driven soak generator.
type SyntheticConfig struct {
	// Seed drives schedule and rendering noise; each cycle derives its own
	// sub-seed so windows differ.
	Seed int64
	// Start is the stream time of the first cycle.
	Start time.Time
	// Window is the length of one rendered scenario cycle (default 7 days).
	Window time.Duration
	// Cycles bounds the number of rendered windows; 0 renders forever.
	Cycles int

	// Per-window incident mix (defaults: 1 facility, 1 IXP, 3 links, 1 AS).
	FacilityOutages int
	IXPOutages      int
	LinkOutages     int
	ASOutages       int
	// PartialFraction of infrastructure outages are partial (default 0.15).
	PartialFraction float64
	// SessionResets per window injects collector feed noise (default 2).
	SessionResets int

	// OnWindow, if set, observes every rendered window (result plus its
	// stream-time bounds) before its records are streamed. It runs on the
	// consuming goroutine; a daemon uses it to rebuild the simulated
	// data-plane substrate its probe backend measures against.
	OnWindow func(res *simulate.Result, start, end time.Time)

	// Logger receives window render reports at debug level. Nil discards
	// them.
	Logger *slog.Logger
}

func (c *SyntheticConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 7 * 24 * time.Hour
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.FacilityOutages == 0 && c.IXPOutages == 0 && c.LinkOutages == 0 && c.ASOutages == 0 {
		c.FacilityOutages, c.IXPOutages, c.LinkOutages, c.ASOutages = 1, 1, 3, 1
	}
	if c.PartialFraction == 0 {
		c.PartialFraction = 0.15
	}
	if c.SessionResets == 0 {
		c.SessionResets = 2
	}
}

// Synthetic generates an endless, time-continuous record stream by
// rendering scenario windows over a synthetic world on demand: each cycle
// draws a fresh incident schedule, renders the resulting BGP dynamics, and
// picks up exactly where the previous window ended. It exists for soak
// testing the live service layer — a daemon fed by Synthetic exercises
// ingestion, bin closes, event fan-out and API serving indefinitely without
// an archive on disk.
type Synthetic struct {
	world *topology.World
	cfg   SyntheticConfig

	cycle    int
	buf      []*mrt.Record
	pos      int
	consumed uint64 // records returned over all windows
}

// NewSynthetic builds the generator over a world.
func NewSynthetic(world *topology.World, cfg SyntheticConfig) *Synthetic {
	cfg.defaults()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Synthetic{world: world, cfg: cfg}
}

// render produces the next window. Rendering recomputes routing tables and
// is CPU-heavy, so the context is threaded into the renderer itself: a
// cancelled daemon aborts mid-render rather than finishing a multi-day
// window first.
func (s *Synthetic) render(ctx context.Context) error {
	start := s.cfg.Start.Add(time.Duration(s.cycle) * s.cfg.Window)
	end := start.Add(s.cfg.Window)
	seed := s.cfg.Seed + int64(s.cycle)*1009 // distinct schedule per window

	// Incidents keep clear of the window edges so every outage both starts
	// and restores inside its own cycle.
	events := simulate.GenerateSchedule(s.world, simulate.ScheduleConfig{
		Seed:            seed + 1,
		Start:           start.Add(s.cfg.Window / 4),
		End:             end.Add(-s.cfg.Window / 10),
		FacilityOutages: s.cfg.FacilityOutages,
		IXPOutages:      s.cfg.IXPOutages,
		LinkOutages:     s.cfg.LinkOutages,
		ASOutages:       s.cfg.ASOutages,
		PartialFraction: s.cfg.PartialFraction,
		MinMembers:      6,
	})
	res, err := simulate.Render(s.world, events, start, end, simulate.RenderConfig{
		Seed: seed + 2, SessionResets: s.cfg.SessionResets, StickyFraction: 0.05,
		Ctx: ctx,
	})
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("live: render cycle %d: %w", s.cycle, err)
	}
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(res, start, end)
	}
	s.cfg.Logger.Debug("scenario window rendered", "cycle", s.cycle,
		"start", start, "end", end, "records", len(res.Records))
	s.buf = res.Records
	s.pos = 0
	s.cycle++
	return nil
}

// Next implements Source.
func (s *Synthetic) Next(ctx context.Context) (*mrt.Record, error) {
	for s.pos >= len(s.buf) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cfg.Cycles > 0 && s.cycle >= s.cfg.Cycles {
			return nil, io.EOF
		}
		if err := s.render(ctx); err != nil {
			return nil, err
		}
	}
	rec := s.buf[s.pos]
	s.pos++
	s.consumed++
	return rec, nil
}

// Cursor implements Resumable: the position of the next unread record,
// located by (window, in-window offset) so Seek re-renders exactly one
// window instead of replaying the whole stream.
func (s *Synthetic) Cursor() Cursor {
	window := s.cycle
	if len(s.buf) > 0 {
		window = s.cycle - 1 // buf holds the window render already advanced past
	}
	return Cursor{Records: s.consumed, Window: window, WindowPos: s.pos}
}

// Seek implements Resumable: window schedules and renders derive
// deterministically from the configured seed and the window index, so
// resuming costs one render of the cursor's window — bounded, regardless
// of how long the previous process soaked. Must precede the first Next.
func (s *Synthetic) Seek(ctx context.Context, c Cursor) error {
	if s.consumed != 0 || len(s.buf) > 0 {
		return fmt.Errorf("live: synthetic seek after streaming started")
	}
	if c.Window < 0 || c.WindowPos < 0 {
		return fmt.Errorf("live: synthetic seek to invalid cursor %+v", c)
	}
	s.cycle = c.Window
	if err := s.render(ctx); err != nil {
		return err
	}
	if c.WindowPos > len(s.buf) {
		return fmt.Errorf("live: synthetic seek offset %d past window %d's %d records (was the world seed changed?)",
			c.WindowPos, c.Window, len(s.buf))
	}
	s.pos = c.WindowPos
	s.consumed = c.Records
	return nil
}
