package live

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/communities"
	"kepler/internal/core"
	"kepler/internal/mrt"
	"kepler/internal/topology"
)

var base = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

func mkRecs(n int, gap time.Duration) []*mrt.Record {
	recs := make([]*mrt.Record, n)
	for i := range recs {
		recs[i] = &mrt.Record{Time: base.Add(time.Duration(i) * gap), Kind: mrt.KindUpdate, Collector: "rrc00"}
	}
	return recs
}

func TestAdaptDrainsAndCancels(t *testing.T) {
	src := Adapt(bgpstream.NewSliceSource(mkRecs(3, time.Second)))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := src.Next(ctx); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := src.Next(ctx); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Adapt(bgpstream.NewSliceSource(mkRecs(1, 0))).Next(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestReplayerPacing drives the replayer with a fake clock: records one
// stream-minute apart at 60x must be scheduled one wall-second apart.
func TestReplayerPacing(t *testing.T) {
	recs := mkRecs(4, time.Minute)
	r := NewReplayer(bgpstream.NewSliceSource(recs), 60)
	wall := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var slept []time.Duration
	r.now = func() time.Time { return wall }
	r.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		wall = wall.Add(d)
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		rec, err := r.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Time.Equal(recs[i].Time) {
			t.Fatalf("record %d out of order", i)
		}
	}
	want := []time.Duration{time.Second, time.Second, time.Second}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestReplayerLateNoSleep: when the consumer falls behind (wall clock past
// the due instant), the replayer must not sleep at all.
func TestReplayerLateNoSleep(t *testing.T) {
	recs := mkRecs(3, time.Second)
	r := NewReplayer(bgpstream.NewSliceSource(recs), 1)
	wall := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r.now = func() time.Time {
		wall = wall.Add(time.Minute) // each observation is already late
		return wall
	}
	r.sleep = func(context.Context, time.Duration) error {
		t.Fatal("slept while behind schedule")
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayerMaxSpeed(t *testing.T) {
	recs := mkRecs(1000, time.Hour) // would take forever paced
	r := NewReplayer(bgpstream.NewSliceSource(recs), 0)
	r.sleep = func(context.Context, time.Duration) error {
		t.Fatal("max-speed replay slept")
		return nil
	}
	ctx := context.Background()
	n := 0
	for {
		_, err := r.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("drained %d records", n)
	}
}

// TestReplayerCancelDuringSleep: cancellation must abort a pending pace
// sleep promptly rather than waiting it out.
func TestReplayerCancelDuringSleep(t *testing.T) {
	recs := mkRecs(2, 24*time.Hour) // 1-day gap at 1x: sleeps ~forever
	r := NewReplayer(bgpstream.NewSliceSource(recs), 1)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := r.Next(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Next(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the pace sleep")
	}
}

// soakWorld generates a deliberately tiny world so synthetic rendering
// stays fast in tests.
func soakWorld(t *testing.T) *topology.World {
	t.Helper()
	cfg := topology.Config{
		Seed: 5, Tier1s: 2, Tier2s: 8, Contents: 4, Stubs: 20,
		Facilities: 10, IXPs: 4,
		CommunityFraction: 0.9, DocumentFraction: 0.9,
		CityGranularityFraction: 0.4, RemotePeerFraction: 0.2,
		SiblingFraction: 0.05, Collectors: 2, VantagePerCollector: 4,
	}
	w, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSyntheticContinuity renders two short windows and checks the stream
// is time-ordered, spans both cycles without gaps in coverage, and stops at
// the cycle bound.
func TestSyntheticContinuity(t *testing.T) {
	w := soakWorld(t)
	window := 24 * time.Hour
	syn := NewSynthetic(w, SyntheticConfig{
		Seed: 9, Window: window, Cycles: 2,
		FacilityOutages: 1, LinkOutages: 1, IXPOutages: 0, ASOutages: 0,
	})
	ctx := context.Background()
	var prev time.Time
	var first, last time.Time
	n := 0
	for {
		rec, err := syn.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Time.Before(prev) {
			t.Fatalf("stream went backwards at record %d: %v < %v", n, rec.Time, prev)
		}
		prev = rec.Time
		if first.IsZero() {
			first = rec.Time
		}
		last = rec.Time
		n++
	}
	if n == 0 {
		t.Fatal("no records rendered")
	}
	if span := last.Sub(first); span <= window {
		t.Fatalf("stream span %v never entered the second window", span)
	}
	if _, err := syn.Next(ctx); err != io.EOF {
		t.Fatalf("post-EOF err = %v", err)
	}
}

// TestSyntheticFeedsEngine soaks a real engine from the generator: records
// must ingest cleanly and close bins.
func TestSyntheticFeedsEngine(t *testing.T) {
	w := soakWorld(t)
	syn := NewSynthetic(w, SyntheticConfig{Seed: 9, Window: 24 * time.Hour, Cycles: 1})
	// An empty dictionary still ingests and bins (nothing tags).
	eng := core.NewEngine(core.DefaultConfig(), communities.New(), w.Map, nil, 2)
	defer eng.Close()
	res, err := Pump(context.Background(), syn, eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("pump consumed nothing")
	}
	if stats := eng.Stats(); stats.Records != int64(res.Records) {
		t.Errorf("engine saw %d records, pump counted %d", stats.Records, res.Records)
	}
}

// TestPumpCancel stops a pump mid-stream and checks it flushed at the last
// consumed record.
func TestPumpCancel(t *testing.T) {
	recs := mkRecs(100, time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := sourceFunc(func(c context.Context) (*mrt.Record, error) {
		if err := c.Err(); err != nil {
			return nil, err
		}
		if n == 50 {
			cancel()
			return nil, c.Err()
		}
		r := recs[n]
		n++
		return r, nil
	})
	eng := core.NewEngine(core.DefaultConfig(), communities.New(), nil, nil, 2)
	defer eng.Close()
	res, err := Pump(ctx, src, eng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if res.Records != 50 || !res.Last.Equal(recs[49].Time) {
		t.Fatalf("result = %+v", res)
	}
}

type sourceFunc func(context.Context) (*mrt.Record, error)

func (f sourceFunc) Next(ctx context.Context) (*mrt.Record, error) { return f(ctx) }
