package live

import (
	"context"
	"io"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/mrt"
)

// drain reads a source to EOF, returning the records.
func drain(t *testing.T, src Source) []*mrt.Record {
	t.Helper()
	var out []*mrt.Record
	for {
		rec, err := src.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// TestReplayerSeek pins the archive resume path: a seek to record offset N
// delivers exactly the suffix from N, unpaced for the skipped prefix, and a
// seek past the archive end is a descriptive error, not a silent EOF.
func TestReplayerSeek(t *testing.T) {
	recs := mkRecs(10, time.Minute)
	r := NewReplayer(bgpstream.NewSliceSource(recs), 0)
	if got := r.Cursor(); got != (Cursor{}) {
		t.Fatalf("fresh cursor = %+v", got)
	}
	if err := r.Seek(context.Background(), Cursor{Records: 7}); err != nil {
		t.Fatal(err)
	}
	if got := r.Cursor(); got.Records != 7 {
		t.Fatalf("cursor after seek = %+v", got)
	}
	rest := drain(t, r)
	if len(rest) != 3 || !rest[0].Time.Equal(recs[7].Time) {
		t.Fatalf("suffix = %d records starting %v, want 3 from %v", len(rest), rest[0].Time, recs[7].Time)
	}
	if got := r.Cursor(); got.Records != 10 {
		t.Fatalf("cursor after drain = %+v", got)
	}

	short := NewReplayer(bgpstream.NewSliceSource(mkRecs(3, time.Minute)), 0)
	if err := short.Seek(context.Background(), Cursor{Records: 7}); err == nil {
		t.Fatal("seek past archive end succeeded")
	}
}

// TestReplayerSeekSkipsPacing: the skipped prefix must not be paced — a 1x
// replay of a multi-hour archive would otherwise take hours to boot.
func TestReplayerSeekSkipsPacing(t *testing.T) {
	recs := mkRecs(5, time.Hour)
	r := NewReplayer(bgpstream.NewSliceSource(recs), 1)
	r.sleep = func(context.Context, time.Duration) error {
		t.Fatal("seek paced a skipped record")
		return nil
	}
	if err := r.Seek(context.Background(), Cursor{Records: 4}); err != nil {
		t.Fatal(err)
	}
	// The first delivered record anchors a fresh pacing origin: no sleep.
	if _, err := r.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTrackedCursor pins the wrapper contract: LastCursor always points at
// the most recently delivered record, so a Seek there re-delivers it.
func TestTrackedCursor(t *testing.T) {
	recs := mkRecs(6, time.Minute)
	tr := Track(NewReplayer(bgpstream.NewSliceSource(recs), 0))
	for i := 0; i < 4; i++ {
		if _, err := tr.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.LastCursor(); got.Records != 3 {
		t.Fatalf("LastCursor = %+v, want record 3", got)
	}
	if got := tr.Cursor(); got.Records != 4 {
		t.Fatalf("Cursor = %+v, want record 4", got)
	}
	resumed := NewReplayer(bgpstream.NewSliceSource(recs), 0)
	if err := resumed.Seek(context.Background(), tr.LastCursor()); err != nil {
		t.Fatal(err)
	}
	rec, err := resumed.Next(context.Background())
	if err != nil || !rec.Time.Equal(recs[3].Time) {
		t.Fatalf("resumed record = %v, %v; want the in-flight record %v", rec, err, recs[3].Time)
	}
}

// TestSyntheticSeek pins the window-seed resume path: seeking to a cursor
// taken mid-stream re-renders only that window (deterministically, from the
// configured seed) and the resumed stream continues record-for-record where
// the original left off — including across a window boundary.
func TestSyntheticSeek(t *testing.T) {
	w := soakWorld(t)
	cfg := SyntheticConfig{
		Seed: 9, Window: 24 * time.Hour, Cycles: 2,
		FacilityOutages: 1, LinkOutages: 1, IXPOutages: 0, ASOutages: 0,
	}
	full := drain(t, NewSynthetic(w, cfg))
	if len(full) < 10 {
		t.Fatalf("scenario rendered only %d records", len(full))
	}

	// Walk a fresh generator to several positions (mid-window-0, exactly a
	// window boundary, mid-window-1), capture the cursor, and resume a third
	// generator there.
	probePositions := []int{len(full) / 3, len(full) / 2, len(full) * 4 / 5}
	for _, pos := range probePositions {
		orig := NewSynthetic(w, cfg)
		for i := 0; i < pos; i++ {
			if _, err := orig.Next(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		cur := orig.Cursor()
		if cur.Records != uint64(pos) {
			t.Fatalf("cursor records = %d, want %d", cur.Records, pos)
		}
		resumed := NewSynthetic(w, cfg)
		if err := resumed.Seek(context.Background(), cur); err != nil {
			t.Fatal(err)
		}
		rest := drain(t, resumed)
		if len(rest) != len(full)-pos {
			t.Fatalf("resumed at %d: got %d records, want %d", pos, len(rest), len(full)-pos)
		}
		for i, rec := range rest {
			want := full[pos+i]
			if !rec.Time.Equal(want.Time) || rec.Kind != want.Kind || rec.PeerAS != want.PeerAS {
				t.Fatalf("resumed record %d diverges: %v vs %v", pos+i, rec, want)
			}
		}
	}

	// Seeking after streaming started is a programming error.
	late := NewSynthetic(w, cfg)
	if _, err := late.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := late.Seek(context.Background(), Cursor{}); err == nil {
		t.Fatal("seek after streaming started succeeded")
	}
}
