package live

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"kepler/internal/mrt"
)

func TestOnAbortFiresOnceOnFailure(t *testing.T) {
	boom := errors.New("collector went away")
	n := 0
	src := sourceFunc(func(context.Context) (*mrt.Record, error) {
		n++
		if n <= 2 {
			return &mrt.Record{Time: time.Unix(int64(n), 0)}, nil
		}
		return nil, boom
	})
	fired := 0
	wrapped := OnAbort(src, func() { fired++ })
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := wrapped.Next(ctx); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if fired != 0 {
			t.Fatal("abort hook fired on a healthy record")
		}
	}
	if _, err := wrapped.Next(ctx); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if fired != 1 {
		t.Fatalf("abort hook fired %d times, want 1", fired)
	}
	// Retries keep failing but the hook stays fired-once.
	wrapped.Next(ctx)
	if fired != 1 {
		t.Fatalf("abort hook re-fired on repeated failure: %d", fired)
	}
}

func TestOnAbortIgnoresEOF(t *testing.T) {
	src := sourceFunc(func(context.Context) (*mrt.Record, error) { return nil, io.EOF })
	fired := false
	wrapped := OnAbort(src, func() { fired = true })
	if _, err := wrapped.Next(context.Background()); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if fired {
		t.Fatal("abort hook fired on clean end-of-stream — the flush after EOF is real output and must stay persisted")
	}
}

// TestSyntheticCancelMidRender pins the prompt-shutdown fix: cancellation
// must abort the CPU-heavy window render itself, not just be noticed at the
// next window boundary.
func TestSyntheticCancelMidRender(t *testing.T) {
	w := soakWorld(t)
	syn := NewSynthetic(w, SyntheticConfig{
		Seed: 9, Window: 7 * 24 * time.Hour, // the default soak window: a heavy render
		FacilityOutages: 2, LinkOutages: 3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGTERM arrived before (or during) the first render
	if _, err := syn.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next under cancelled ctx = %v, want context.Canceled", err)
	}

	// The generator survives the abort: a live context picks up rendering.
	rec, err := syn.Next(context.Background())
	if err != nil || rec == nil {
		t.Fatalf("render after aborted render: %v", err)
	}
}
