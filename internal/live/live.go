// Package live turns the batch detection engine into a continuously-fed
// service: it defines the context-aware Source interface for streamed MRT
// records and the Pump that drives a core.Engine from one. Two sources
// ship: a rate-controlled archive Replayer (replay at N× real time, or as
// fast as the hardware allows) and a Synthetic world-driven generator that
// renders rolling scenario windows for soak testing. Both feed the engine
// through its existing record fan-out; the serving layer observes results
// via the engine's lifecycle hooks (internal/events) rather than through
// the pump's return value.
package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"kepler/internal/core"
	"kepler/internal/mrt"
)

// Source yields MRT records in non-decreasing time order, blocking until
// the next record is due (paced sources) or available (generated sources).
// Next returns io.EOF at stream end and ctx.Err() if cancelled while
// blocked — the hook that makes daemon shutdown prompt even mid-pacing.
type Source interface {
	Next(ctx context.Context) (*mrt.Record, error)
}

// Cursor is a resumable source position: the next Next after a Seek to it
// returns record offset Records of the stream. Window/WindowPos locate the
// same position for window-rendering sources (Synthetic), which resume by
// re-rendering one deterministic window rather than replaying everything
// before it; archive sources ignore them.
type Cursor struct {
	Records   uint64
	Window    int
	WindowPos int
}

// Resumable is a Source that can report and restore its stream position —
// the hook checkpoint recovery uses to re-ingest only the record suffix
// past the newest engine checkpoint instead of starting at record zero.
type Resumable interface {
	Source
	// Cursor returns the position of the next unread record.
	Cursor() Cursor
	// Seek fast-forwards the source to a cursor previously obtained from
	// Cursor (of this source type, over the same underlying stream). It
	// must be called before the first Next.
	Seek(ctx context.Context, c Cursor) error
}

// Tracked wraps a Resumable source, additionally remembering the cursor of
// the most recently returned record. A checkpoint taken from inside a
// BinClosed hook runs mid-Process: the in-flight record's effects are not
// part of the checkpoint, so recovery must resume at that record — which is
// exactly LastCursor.
type Tracked struct {
	Resumable
	last Cursor
}

// Track wraps src.
func Track(src Resumable) *Tracked { return &Tracked{Resumable: src} }

// Next implements Source.
func (t *Tracked) Next(ctx context.Context) (*mrt.Record, error) {
	c := t.Resumable.Cursor()
	rec, err := t.Resumable.Next(ctx)
	if err == nil {
		t.last = c
	}
	return rec, err
}

// LastCursor returns the cursor positioned at the most recently returned
// record (so a Seek there makes Next return it again). Zero until the
// first successful Next.
func (t *Tracked) LastCursor() Cursor { return t.last }

// batchSource is the subset of bgpstream.Source the adapters accept: any
// blocking-free, already-ordered record iterator (mrt.Reader,
// bgpstream.SliceSource, Merger, Stream, ...).
type batchSource interface {
	Next() (*mrt.Record, error)
}

// adapted lifts a batch source into a context-aware one. The underlying
// Next is assumed non-blocking (file reads), so cancellation is only
// checked between records.
type adapted struct{ src batchSource }

// Adapt wraps a batch bgpstream-style source as a live Source.
func Adapt(src interface {
	Next() (*mrt.Record, error)
}) Source {
	return adapted{src: src}
}

func (a adapted) Next(ctx context.Context) (*mrt.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.src.Next()
}

// abortHook wraps a source so fn runs — once, on the consuming goroutine —
// the moment the source fails with anything other than clean end-of-stream.
type abortHook struct {
	src   Source
	fn    func()
	fired bool
}

// OnAbort returns a source that invokes fn when src's Next first returns a
// non-EOF error (cancellation, source failure), before the error reaches
// the caller. Pump flushes the engine after any exit, and flush emits
// resolution events for outages that are still in progress; on clean EOF
// those are real results (the stream is over), but on a daemon shutdown
// they are artifacts of stopping. A store-backed daemon therefore hooks
// OnAbort to mute its lifecycle hooks (events.MuteHooks): since fn runs on
// the pump goroutine before the flush hooks do, the artifacts are neither
// persisted nor published, so the durable history and the bus sequence
// keep only events a deterministic re-ingestion will regenerate — which is
// what makes restart recovery byte-for-byte equivalent to an uninterrupted
// run, and Last-Event-ID resume exactly-once across it.
func OnAbort(src Source, fn func()) Source {
	return &abortHook{src: src, fn: fn}
}

func (a *abortHook) Next(ctx context.Context) (*mrt.Record, error) {
	rec, err := a.src.Next(ctx)
	if err != nil && !errors.Is(err, io.EOF) && !a.fired {
		a.fired = true
		a.fn()
	}
	return rec, err
}

// Replayer paces an archive against the wall clock: record timestamps are
// mapped onto real time at a configurable speedup, reproducing the arrival
// process the paper's live deployment saw from its collectors. Speed <= 0
// disables pacing (maximum-speed replay, the batch-equivalence mode).
type Replayer struct {
	src      batchSource
	speed    float64
	origin   time.Time // stream time of the first record
	wall0    time.Time // wall time the first record was released
	consumed uint64    // records returned so far (plus any skipped by Seek)

	// now and sleep are test seams; nil selects the real clock.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewReplayer wraps src with pacing. speed is the time-compression factor:
// 1 replays in real time, 60 replays one archive minute per wall second,
// <= 0 replays as fast as the source can be read.
func NewReplayer(src interface {
	Next() (*mrt.Record, error)
}, speed float64) *Replayer {
	return &Replayer{src: src, speed: speed}
}

func (r *Replayer) clock() func() time.Time {
	if r.now != nil {
		return r.now
	}
	// Wall clock by design: this paces the replay against real time; the
	// records it releases carry their own stream timestamps, which are all
	// detection ever sees (live is outside keplervet's walltime scope).
	return time.Now
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cursor implements Resumable.
func (r *Replayer) Cursor() Cursor { return Cursor{Records: r.consumed} }

// Seek implements Resumable: it reads and discards records up to the
// cursor's offset, without pacing — the skipped prefix was already
// processed by a previous run, so replay timing restarts at the first
// record actually delivered.
func (r *Replayer) Seek(ctx context.Context, c Cursor) error {
	for r.consumed < c.Records {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := r.src.Next(); err != nil {
			return fmt.Errorf("live: seek to record %d: %w after %d records (is this the archive the checkpoint was written against?)",
				c.Records, err, r.consumed)
		}
		r.consumed++
	}
	return nil
}

// Next implements Source: it reads the next record and blocks until its
// scheduled release instant.
func (r *Replayer) Next(ctx context.Context) (*mrt.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := r.src.Next()
	if err != nil {
		return nil, err
	}
	r.consumed++
	if r.speed <= 0 {
		return rec, nil
	}
	if r.origin.IsZero() {
		r.origin = rec.Time
		r.wall0 = r.clock()()
		return rec, nil
	}
	due := r.wall0.Add(time.Duration(float64(rec.Time.Sub(r.origin)) / r.speed))
	if wait := due.Sub(r.clock()()); wait > 0 {
		doSleep := r.sleep
		if doSleep == nil {
			doSleep = sleepCtx
		}
		if err := doSleep(ctx, wait); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// PumpResult summarizes one Pump run.
type PumpResult struct {
	// Records consumed from the source.
	Records int
	// Last is the timestamp of the final record (zero if none arrived).
	Last time.Time
	// Outages completed during the run, including the shutdown flush —
	// exactly what the batch pipeline would have returned for the same
	// records.
	Outages []core.Outage
}

// Pump drives the engine from the source until EOF or context
// cancellation, then flushes open state as of the last record. The engine's
// hooks fire on this goroutine, so a daemon installs its event publication
// and snapshot refresh there and treats Pump as the whole ingest loop. The
// returned error is nil at EOF, the context error if cancelled, and the
// source error otherwise; the flush runs in every case.
func Pump(ctx context.Context, src Source, eng *core.Engine) (PumpResult, error) {
	var res PumpResult
	var runErr error
	for {
		rec, err := src.Next(ctx)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				runErr = err
			}
			break
		}
		res.Records++
		res.Last = rec.Time
		res.Outages = append(res.Outages, eng.Process(rec)...)
	}
	if !res.Last.IsZero() {
		res.Outages = append(res.Outages, eng.Flush(res.Last)...)
	}
	return res, runErr
}
