package server

import (
	"time"

	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

// PoPView is the JSON shape of a PoP reference.
type PoPView struct {
	Kind string `json:"kind"` // city | facility | ixp
	ID   uint32 `json:"id"`
	Ref  string `json:"ref"` // e.g. "facility:42"
	Name string `json:"name,omitempty"`
}

func (s *Server) popView(p colo.PoP) PoPView {
	v := PoPView{Kind: p.Kind.String(), ID: p.ID, Ref: p.String()}
	if s.opts.Namer != nil {
		v.Name = s.opts.Namer(p)
	}
	return v
}

// OutageView is the JSON shape of a resolved outage. ID is the outage's
// 1-based position in the resolved history — stable across restarts
// (recovery rebuilds the same order) and the ?after= pagination cursor; it
// is omitted in SSE payloads, where the frame id already carries the bus
// sequence.
type OutageView struct {
	ID               uint64    `json:"id,omitempty"`
	PoP              PoPView   `json:"pop"`
	SignalPoP        PoPView   `json:"signal_pop"`
	Start            time.Time `json:"start"`
	End              time.Time `json:"end"`
	DurationSeconds  float64   `json:"duration_seconds"`
	Confirmed        bool      `json:"confirmed"`
	DataPlaneChecked bool      `json:"data_plane_checked"`
	AffectedASes     []bgp.ASN `json:"affected_ases"`
	DivertedPaths    int       `json:"diverted_paths"`
	Merged           int       `json:"merged"`
}

func (s *Server) outageView(id uint64, o *core.Outage) OutageView {
	return OutageView{
		ID:               id,
		PoP:              s.popView(o.PoP),
		SignalPoP:        s.popView(o.SignalPoP),
		Start:            o.Start,
		End:              o.End,
		DurationSeconds:  o.Duration().Seconds(),
		Confirmed:        o.Confirmed,
		DataPlaneChecked: o.DataPlaneChecked,
		AffectedASes:     o.AffectedASes,
		DivertedPaths:    o.DivertedPaths,
		Merged:           o.Merged,
	}
}

// OpenOutageView is the JSON shape of an ongoing outage.
type OpenOutageView struct {
	PoP           PoPView   `json:"pop"`
	SignalPoPs    []PoPView `json:"signal_pops"`
	Start         time.Time `json:"start"`
	LastSignal    time.Time `json:"last_signal"`
	Confirmed     bool      `json:"confirmed"`
	AffectedASes  []bgp.ASN `json:"affected_ases"`
	WaitingPaths  int       `json:"waiting_paths"`
	ReturnedPaths int       `json:"returned_paths"`
	Merged        int       `json:"merged"`
}

func (s *Server) openView(o *core.OutageStatus) OpenOutageView {
	sigs := make([]PoPView, len(o.SignalPoPs))
	for i, p := range o.SignalPoPs {
		sigs[i] = s.popView(p)
	}
	return OpenOutageView{
		PoP:           s.popView(o.PoP),
		SignalPoPs:    sigs,
		Start:         o.Start,
		LastSignal:    o.LastSignal,
		Confirmed:     o.Confirmed,
		AffectedASes:  o.AffectedASes,
		WaitingPaths:  o.WaitingPaths,
		ReturnedPaths: o.ReturnedPaths,
		Merged:        o.Merged,
	}
}

// IncidentView is the JSON shape of a classified signal. ID is the 1-based
// position in the unfiltered incident history (the pagination cursor),
// omitted in SSE payloads.
type IncidentView struct {
	ID           uint64    `json:"id,omitempty"`
	Time         time.Time `json:"time"`
	Kind         string    `json:"kind"`
	PoP          PoPView   `json:"pop"`
	SignalPoP    PoPView   `json:"signal_pop"`
	CommonAS     bgp.ASN   `json:"common_as,omitempty"`
	AffectedASes []bgp.ASN `json:"affected_ases"`
	Links        int       `json:"links"`
	Paths        int       `json:"paths"`
}

func (s *Server) incidentView(id uint64, inc *core.Incident) IncidentView {
	return IncidentView{
		ID:           id,
		Time:         inc.Time,
		Kind:         inc.Kind.String(),
		PoP:          s.popView(inc.PoP),
		SignalPoP:    s.popView(inc.SignalPoP),
		CommonAS:     inc.CommonAS,
		AffectedASes: inc.AffectedASes,
		Links:        inc.Links,
		Paths:        inc.Paths,
	}
}

// IngestView is the JSON shape of the engine's ingestion counters.
type IngestView struct {
	Records        int64   `json:"records"`
	Ops            int64   `json:"ops"`
	Bins           int64   `json:"bins"`
	RecordsPerSec  float64 `json:"records_per_sec"`
	BarrierSeconds float64 `json:"barrier_seconds"`
	BinLagSeconds  float64 `json:"bin_lag_seconds"`
	QueueDepths    []int   `json:"queue_depths,omitempty"`
}

func ingestView(s metrics.IngestSnapshot) *IngestView {
	return &IngestView{
		Records:        s.Records,
		Ops:            s.Ops,
		Bins:           s.Bins,
		RecordsPerSec:  s.RecordsPerSec,
		BarrierSeconds: s.BarrierTime.Seconds(),
		BinLagSeconds:  s.BinLag.Seconds(),
		QueueDepths:    s.QueueDepths,
	}
}

// ServiceView is the JSON shape of the HTTP/bus counters.
type ServiceView struct {
	HTTPRequests    int64 `json:"http_requests"`
	HTTPErrors      int64 `json:"http_errors"`
	SSEConnected    int64 `json:"sse_connected"`
	SSEActive       int64 `json:"sse_active"`
	EventsPublished int64 `json:"events_published"`
	EventsDropped   int64 `json:"events_dropped"`
}

func serviceView(s metrics.ServiceSnapshot) *ServiceView {
	return &ServiceView{
		HTTPRequests:    s.HTTPRequests,
		HTTPErrors:      s.HTTPErrors,
		SSEConnected:    s.SSEConnected,
		SSEActive:       s.SSEActive,
		EventsPublished: s.EventsPublished,
		EventsDropped:   s.EventsDropped,
	}
}

// StoreView is the JSON shape of the durable-history counters.
// ResumeSeq/ResumeRecords are the bounded-recovery proof: non-zero means
// this boot restored an engine checkpoint and re-ingested only the records
// past offset ResumeRecords, not the whole stream.
type StoreView struct {
	Appends              int64 `json:"appends"`
	AppendedBytes        int64 `json:"appended_bytes"`
	Flushes              int64 `json:"flushes"`
	Compactions          int64 `json:"compactions"`
	RecoveredEvents      int64 `json:"recovered_events"`
	TornTails            int64 `json:"torn_tails"`
	TruncatedBytes       int64 `json:"truncated_bytes"`
	CheckpointSaves      int64 `json:"checkpoint_saves"`
	CheckpointBytes      int64 `json:"checkpoint_bytes"`
	CheckpointsDiscarded int64 `json:"checkpoints_discarded"`
	ResumeSeq            int64 `json:"resume_seq"`
	ResumeRecords        int64 `json:"resume_records"`
	SegmentsSealed       int64 `json:"segments_sealed"`
	IndexWrites          int64 `json:"index_writes"`
	IndexRebuilds        int64 `json:"index_rebuilds"`
	SegmentReads         int64 `json:"segment_reads"`
	ReadCacheHits        int64 `json:"read_cache_hits"`
	ReadCacheMisses      int64 `json:"read_cache_misses"`
}

func storeView(s metrics.StoreSnapshot) *StoreView {
	return &StoreView{
		Appends:              s.Appends,
		AppendedBytes:        s.AppendedBytes,
		Flushes:              s.Flushes,
		Compactions:          s.Compactions,
		RecoveredEvents:      s.RecoveredEvents,
		TornTails:            s.TornTails,
		TruncatedBytes:       s.TruncatedBytes,
		CheckpointSaves:      s.CheckpointSaves,
		CheckpointBytes:      s.CheckpointBytes,
		CheckpointsDiscarded: s.CheckpointsDiscarded,
		ResumeSeq:            s.ResumeSeq,
		ResumeRecords:        s.ResumeRecords,
		SegmentsSealed:       s.SegmentsSealed,
		IndexWrites:          s.IndexWrites,
		IndexRebuilds:        s.IndexRebuilds,
		SegmentReads:         s.SegmentReads,
		ReadCacheHits:        s.ReadCacheHits,
		ReadCacheMisses:      s.ReadCacheMisses,
	}
}

// PendingProbeView is the JSON shape of one in-flight probe campaign: a
// signal group parked pending data-plane corroboration.
type PendingProbeView struct {
	ID           uint64    `json:"id"`
	At           time.Time `json:"at"`
	Deadline     time.Time `json:"deadline"`
	SignalPoP    PoPView   `json:"signal_pop"`
	Epicenter    *PoPView  `json:"epicenter,omitempty"` // absent when disambiguating
	Candidates   []PoPView `json:"candidates"`
	AffectedASes []bgp.ASN `json:"affected_ases"`
	Paths        int       `json:"paths"`
}

func (s *Server) pendingView(p *core.PendingConfirmation) PendingProbeView {
	cands := make([]PoPView, len(p.Candidates))
	for i, c := range p.Candidates {
		cands[i] = s.popView(c)
	}
	v := PendingProbeView{
		ID:           p.ID,
		At:           p.At,
		Deadline:     p.Deadline,
		SignalPoP:    s.popView(p.SignalPoP),
		Candidates:   cands,
		AffectedASes: p.AffectedASes,
		Paths:        p.Paths,
	}
	if p.Epicenter.IsValid() {
		e := s.popView(p.Epicenter)
		v.Epicenter = &e
	}
	return v
}

// ProbeOutcomeView is the JSON shape of one resolved campaign.
type ProbeOutcomeView struct {
	Pending   PendingProbeView `json:"pending"`
	Located   bool             `json:"located"`
	Epicenter *PoPView         `json:"epicenter,omitempty"`
	Confirmed bool             `json:"confirmed"`
	Checked   bool             `json:"checked"`
	Expired   bool             `json:"expired"`
}

func (s *Server) probeOutcomeView(o *core.ProbeOutcome) ProbeOutcomeView {
	v := ProbeOutcomeView{
		Pending:   s.pendingView(&o.Pending),
		Located:   o.Located,
		Confirmed: o.Confirmed,
		Checked:   o.Checked,
		Expired:   o.Expired,
	}
	if o.Epicenter.IsValid() {
		e := s.popView(o.Epicenter)
		v.Epicenter = &e
	}
	return v
}

// ProbeStatsView is the JSON shape of the active-measurement counters.
type ProbeStatsView struct {
	Campaigns int64 `json:"campaigns"`
	Targets   int64 `json:"targets"`
	Executed  int64 `json:"executed"`
	CacheHits int64 `json:"cache_hits"`
	Deduped   int64 `json:"deduped"`
	Denied    int64 `json:"denied"`
	Collected int64 `json:"collected"`
	Promoted  int64 `json:"promoted"`
	Refuted   int64 `json:"refuted"`
	Unlocated int64 `json:"unlocated"`
	Expired   int64 `json:"expired"`
	Pending   int64 `json:"pending"`
}

func probeStatsView(s metrics.ProbeSnapshot) *ProbeStatsView {
	return &ProbeStatsView{
		Campaigns: s.Campaigns,
		Targets:   s.Targets,
		Executed:  s.Executed,
		CacheHits: s.CacheHits,
		Deduped:   s.Deduped,
		Denied:    s.Denied,
		Collected: s.Collected,
		Promoted:  s.Promoted,
		Refuted:   s.Refuted,
		Unlocated: s.Unlocated,
		Expired:   s.Expired,
		Pending:   s.Pending,
	}
}

// TracePathView is the JSON shape of one sampled diverted path in a trace.
type TracePathView struct {
	Vantage bgp.ASN   `json:"vantage"`
	Prefix  string    `json:"prefix"`
	Near    bgp.ASN   `json:"near"`
	Far     bgp.ASN   `json:"far"`
	OldPath []bgp.ASN `json:"old_path,omitempty"`
}

// TraceSignalView is the JSON shape of one per-AS divert signal.
type TraceSignalView struct {
	Near     bgp.ASN         `json:"near"`
	Diverted int             `json:"diverted"`
	Stable   int             `json:"stable"`
	Paths    []TracePathView `json:"paths,omitempty"`
}

// TraceStepView is the JSON shape of one localization decision.
type TraceStepView struct {
	Stage      string    `json:"stage"`
	Outcome    string    `json:"outcome"`
	Candidates []PoPView `json:"candidates,omitempty"`
	Eliminated []PoPView `json:"eliminated,omitempty"`
	Chosen     *PoPView  `json:"chosen,omitempty"`
}

// TraceFoldView is the JSON shape of a collateral-damage fold.
type TraceFoldView struct {
	Into        PoPView `json:"into"`
	SharedPaths int     `json:"shared_paths"`
	TotalPaths  int     `json:"total_paths"`
}

// TraceProbeResultView is the JSON shape of one probe verdict.
type TraceProbeResultView struct {
	Target    PoPView `json:"target"`
	Confirmed bool    `json:"confirmed"`
	HasData   bool    `json:"has_data"`
}

// TraceProbeView is the JSON shape of the probe campaign that settled (or
// re-validated) a chapter's epicenter.
type TraceProbeView struct {
	Campaign   uint64                 `json:"campaign,omitempty"`
	Outcome    string                 `json:"outcome"`
	Candidates []PoPView              `json:"candidates,omitempty"`
	Results    []TraceProbeResultView `json:"results,omitempty"`
	Epicenter  *PoPView               `json:"epicenter,omitempty"`
}

// TraceChapterView is the JSON shape of one bin's evidence for an outage.
type TraceChapterView struct {
	Bin          time.Time         `json:"bin"`
	SignalPoP    PoPView           `json:"signal_pop"`
	Kind         string            `json:"kind,omitempty"`
	Epicenter    *PoPView          `json:"epicenter,omitempty"`
	StableTotal  int               `json:"stable_total"`
	TotalSignals int               `json:"total_signals"`
	Signals      []TraceSignalView `json:"signals,omitempty"`
	Steps        []TraceStepView   `json:"steps,omitempty"`
	Fold         *TraceFoldView    `json:"fold,omitempty"`
	Probe        *TraceProbeView   `json:"probe,omitempty"`
}

// TraceView is the /v1/outages/{id}/trace response: the full evidence chain
// behind one resolved outage.
type TraceView struct {
	OutageID        uint64             `json:"outage_id,omitempty"`
	Version         int                `json:"version"`
	PoP             PoPView            `json:"pop"`
	Start           time.Time          `json:"start"`
	End             time.Time          `json:"end"`
	Merged          int                `json:"merged"`
	Chapters        []TraceChapterView `json:"chapters"`
	DroppedChapters int                `json:"dropped_chapters,omitempty"`
}

func (s *Server) popViews(ps []colo.PoP) []PoPView {
	if len(ps) == 0 {
		return nil
	}
	out := make([]PoPView, len(ps))
	for i, p := range ps {
		out[i] = s.popView(p)
	}
	return out
}

func (s *Server) optPopView(p colo.PoP) *PoPView {
	if !p.IsValid() {
		return nil
	}
	v := s.popView(p)
	return &v
}

func (s *Server) traceProbeView(p *core.TraceProbe) *TraceProbeView {
	if p == nil {
		return nil
	}
	v := &TraceProbeView{
		Campaign:   p.Campaign,
		Outcome:    p.Outcome,
		Candidates: s.popViews(p.Candidates),
		Epicenter:  s.optPopView(p.Epicenter),
	}
	for _, r := range p.Results {
		v.Results = append(v.Results, TraceProbeResultView{
			Target:    s.popView(r.Target),
			Confirmed: r.Confirmed,
			HasData:   r.HasData,
		})
	}
	return v
}

func (s *Server) traceChapterView(ch *core.TraceChapter) TraceChapterView {
	v := TraceChapterView{
		Bin:          ch.Bin,
		SignalPoP:    s.popView(ch.SignalPoP),
		Kind:         ch.Kind,
		Epicenter:    s.optPopView(ch.Epicenter),
		StableTotal:  ch.StableTotal,
		TotalSignals: ch.TotalSignals,
		Probe:        s.traceProbeView(ch.Probe),
	}
	for i := range ch.Signals {
		sig := &ch.Signals[i]
		sv := TraceSignalView{Near: sig.Near, Diverted: sig.Diverted, Stable: sig.Stable}
		for _, p := range sig.Paths {
			sv.Paths = append(sv.Paths, TracePathView{
				Vantage: p.Vantage,
				Prefix:  p.Prefix,
				Near:    p.Near,
				Far:     p.Far,
				OldPath: p.OldPath,
			})
		}
		v.Signals = append(v.Signals, sv)
	}
	for i := range ch.Steps {
		st := &ch.Steps[i]
		v.Steps = append(v.Steps, TraceStepView{
			Stage:      st.Stage,
			Outcome:    st.Outcome,
			Candidates: s.popViews(st.Candidates),
			Eliminated: s.popViews(st.Eliminated),
			Chosen:     s.optPopView(st.Chosen),
		})
	}
	if ch.Fold != nil {
		v.Fold = &TraceFoldView{
			Into:        s.popView(ch.Fold.Into),
			SharedPaths: ch.Fold.SharedPaths,
			TotalPaths:  ch.Fold.TotalPaths,
		}
	}
	return v
}

func (s *Server) traceView(id uint64, tr *core.OutageTrace) TraceView {
	v := TraceView{
		OutageID:        id,
		Version:         tr.Version,
		PoP:             s.popView(tr.PoP),
		Start:           tr.Start,
		End:             tr.End,
		Merged:          tr.Merged,
		Chapters:        []TraceChapterView{},
		DroppedChapters: tr.DroppedChapters,
	}
	for i := range tr.Chapters {
		v.Chapters = append(v.Chapters, s.traceChapterView(&tr.Chapters[i]))
	}
	return v
}

// StageLatencyView is the JSON shape of one bin-close latency histogram.
// Buckets, when present, carries the per-bucket (non-cumulative) counts
// over metrics.DurationBounds plus the +Inf overflow — cumulative counts
// are differencable across scrapes, which is how keplerload computes
// per-phase quantiles from two /v1/stats polls.
type StageLatencyView struct {
	Count       int64   `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	Buckets     []int64 `json:"buckets,omitempty"`
}

func stageLatencyView(h metrics.HistogramSnapshot) StageLatencyView {
	return StageLatencyView{
		Count:       h.Count,
		SumSeconds:  h.Sum.Seconds(),
		MeanSeconds: h.Mean().Seconds(),
		P50Seconds:  h.Quantile(0.50).Seconds(),
		P90Seconds:  h.Quantile(0.90).Seconds(),
		P99Seconds:  h.Quantile(0.99).Seconds(),
	}
}

// stageLatencyViewWithBuckets additionally exposes the raw bucket counts.
func stageLatencyViewWithBuckets(h metrics.HistogramSnapshot) StageLatencyView {
	v := stageLatencyView(h)
	v.Buckets = h.Counts
	return v
}

// BinCloseView is the staged bin-close latency section of /v1/stats.
type BinCloseView struct {
	Total  StageLatencyView            `json:"total"`
	Stages map[string]StageLatencyView `json:"stages"`
}

func binCloseView(s metrics.BinStageSnapshot) *BinCloseView {
	v := &BinCloseView{
		Total:  stageLatencyView(s.Total),
		Stages: make(map[string]StageLatencyView, metrics.NumBinStages),
	}
	for i, name := range metrics.BinStageNames {
		v.Stages[name] = stageLatencyView(s.Stages[i])
	}
	return v
}

// FeedStatusView is the JSON shape of one collector's or peer session's
// liveness in /v1/health/feeds.
type FeedStatusView struct {
	Collector        string    `json:"collector"`
	PeerAS           bgp.ASN   `json:"peer_as,omitempty"`
	LastSeen         time.Time `json:"last_seen"`
	SilentForSeconds float64   `json:"silent_for_seconds"`
	Degraded         bool      `json:"degraded"`
}

// FeedHealthView is the /v1/health/feeds response (also embedded in
// /v1/stats). All times are stream time: the watchdog never consults the
// wall clock, so a replayed archive reports the health its feeds had then.
type FeedHealthView struct {
	AsOf            time.Time        `json:"as_of"`
	SilenceSeconds  float64          `json:"silence_seconds"`
	Coverage        float64          `json:"coverage"`
	CollectorsKnown int              `json:"collectors_known"`
	CollectorsLive  int              `json:"collectors_live"`
	SessionsKnown   int              `json:"sessions_known"`
	SessionsLive    int              `json:"sessions_live"`
	DegradedEvents  int64            `json:"degraded_events"`
	RecoveredEvents int64            `json:"recovered_events"`
	Collectors      []FeedStatusView `json:"collectors"`
	Sessions        []FeedStatusView `json:"sessions"`
}

func feedStatusViews(sts []bgpstream.FeedStatus) []FeedStatusView {
	out := make([]FeedStatusView, len(sts))
	for i, st := range sts {
		out[i] = FeedStatusView{
			Collector:        st.Collector,
			PeerAS:           st.PeerAS,
			LastSeen:         st.LastSeen,
			SilentForSeconds: st.SilentFor.Seconds(),
			Degraded:         st.Degraded,
		}
	}
	return out
}

func (s *Server) feedHealthView(f *bgpstream.FeedSnapshot) FeedHealthView {
	v := FeedHealthView{
		AsOf:            f.At,
		SilenceSeconds:  f.Silence.Seconds(),
		Coverage:        f.Coverage(),
		CollectorsKnown: f.CollectorsKnown,
		CollectorsLive:  f.CollectorsLive,
		SessionsKnown:   f.SessionsKnown,
		SessionsLive:    f.SessionsLive,
		Collectors:      feedStatusViews(f.Collectors),
		Sessions:        feedStatusViews(f.Sessions),
	}
	if s.opts.Feed != nil {
		fs := s.opts.Feed.Snapshot()
		v.DegradedEvents = fs.Degraded
		v.RecoveredEvents = fs.Recovered
	}
	return v
}

// EndpointView is the JSON shape of one endpoint's serving stats.
type EndpointView struct {
	Endpoint string           `json:"endpoint"`
	Latency  StageLatencyView `json:"latency"`
	Statuses map[string]int64 `json:"statuses"`
}

// HTTPView is the serving-path telemetry section of /v1/stats.
type HTTPView struct {
	Endpoints []EndpointView    `json:"endpoints"`
	SSELag    *StageLatencyView `json:"sse_lag,omitempty"`
}

func httpView(s metrics.HTTPSnapshot) *HTTPView {
	v := &HTTPView{Endpoints: make([]EndpointView, len(s.Endpoints))}
	for i, e := range s.Endpoints {
		v.Endpoints[i] = EndpointView{
			Endpoint: e.Endpoint,
			Latency:  stageLatencyView(e.Latency),
			Statuses: e.Statuses,
		}
	}
	if s.SSELag.Count > 0 {
		lag := stageLatencyViewWithBuckets(s.SSELag)
		v.SSELag = &lag
	}
	return v
}

// StatsView is the /v1/stats response.
type StatsView struct {
	Ready        bool                     `json:"ready"`
	SnapshotAt   time.Time                `json:"snapshot_at"`
	OpenCount    int                      `json:"open_outages"`
	Resolved     int                      `json:"resolved_outages"`
	Incidents    int                      `json:"incidents"`
	Ingest       *IngestView              `json:"ingest,omitempty"`
	Store        *StoreView               `json:"store,omitempty"`
	Probe        *ProbeStatsView          `json:"probe,omitempty"`
	BinClose     *BinCloseView            `json:"bin_close,omitempty"`
	Bus          *events.Stats            `json:"bus,omitempty"`
	Subscribers  []events.SubscriberDepth `json:"subscribers,omitempty"`
	Relay        *events.RelayInfo        `json:"relay,omitempty"`
	RelayClients []events.SubscriberDepth `json:"relay_clients,omitempty"`
	Service      *ServiceView             `json:"service,omitempty"`
	HTTP         *HTTPView                `json:"http,omitempty"`
	Feeds        *FeedHealthView          `json:"feeds,omitempty"`
}

// EventView is the SSE data payload: the bus event with its payload
// rendered through the same views as the REST endpoints.
type EventView struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Kind     string            `json:"kind"`
	Status   *OpenOutageView   `json:"status,omitempty"`
	Outage   *OutageView       `json:"outage,omitempty"`
	Incident *IncidentView     `json:"incident,omitempty"`
	Pending  *PendingProbeView `json:"pending,omitempty"`
	Probe    *ProbeOutcomeView `json:"probe,omitempty"`
	Trace    *TraceView        `json:"trace,omitempty"`
	// Feed transitions are already JSON-shaped; passed through as-is.
	Feed *bgpstream.FeedTransition `json:"feed,omitempty"`
}

func (s *Server) eventView(ev events.Event) EventView {
	v := EventView{Seq: ev.Seq, Time: ev.Time, Kind: string(ev.Kind)}
	if ev.Status != nil {
		ov := s.openView(ev.Status)
		v.Status = &ov
	}
	if ev.Outage != nil {
		ov := s.outageView(0, ev.Outage)
		v.Outage = &ov
	}
	if ev.Incident != nil {
		iv := s.incidentView(0, ev.Incident)
		v.Incident = &iv
	}
	if ev.Pending != nil {
		pv := s.pendingView(ev.Pending)
		v.Pending = &pv
	}
	if ev.Probe != nil {
		pv := s.probeOutcomeView(ev.Probe)
		v.Probe = &pv
	}
	if ev.Trace != nil {
		tv := s.traceView(0, ev.Trace)
		v.Trace = &tv
	}
	v.Feed = ev.Feed
	return v
}
