package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

func probeSnapshot() *Snapshot {
	snap := testSnapshot()
	snap.Pending = []core.PendingConfirmation{{
		ID: 7, At: t0, Deadline: t0.Add(10 * time.Minute),
		SignalPoP: colo.FacilityPoP(3), Epicenter: colo.FacilityPoP(3),
		Candidates:   []colo.PoP{colo.FacilityPoP(3)},
		AffectedASes: []bgp.ASN{11, 12}, Paths: 5,
	}, {
		ID: 8, At: t0, Deadline: t0.Add(10 * time.Minute),
		SignalPoP:  colo.CityPoP(2),
		Candidates: []colo.PoP{colo.FacilityPoP(3), colo.IXPPoP(9)},
		Paths:      2,
	}}
	snap.ProbeOutcomes = []core.ProbeOutcome{{
		Pending: core.PendingConfirmation{ID: 5, At: t0.Add(-time.Minute),
			SignalPoP: colo.FacilityPoP(3), Epicenter: colo.FacilityPoP(3),
			Candidates: []colo.PoP{colo.FacilityPoP(3)}},
		Located: true, Epicenter: colo.FacilityPoP(3), Confirmed: true, Checked: true,
	}, {
		Pending: core.PendingConfirmation{ID: 6, At: t0.Add(-time.Minute),
			SignalPoP: colo.CityPoP(2), Candidates: []colo.PoP{colo.CityPoP(2)}},
		Expired: true,
	}}
	return snap
}

func TestProbesEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(probeSnapshot())

	var body struct {
		AsOf    time.Time          `json:"as_of"`
		Count   int                `json:"count"`
		Pending []PendingProbeView `json:"pending"`
		Recent  []ProbeOutcomeView `json:"recent"`
	}
	getJSON(t, ts.URL+"/v1/probes", http.StatusOK, &body)
	if body.Count != 2 || len(body.Pending) != 2 {
		t.Fatalf("pending count = %d/%d, want 2", body.Count, len(body.Pending))
	}
	p := body.Pending[0]
	if p.ID != 7 || p.Epicenter == nil || p.Epicenter.Ref != "facility:3" || p.Epicenter.Name != "Test Facility" {
		t.Fatalf("pending[0] = %+v", p)
	}
	if got := body.Pending[1]; got.Epicenter != nil || len(got.Candidates) != 2 {
		t.Fatalf("disambiguation campaign rendered wrongly: %+v", got)
	}
	if len(body.Recent) != 2 || !body.Recent[0].Located || !body.Recent[1].Expired {
		t.Fatalf("recent outcomes = %+v", body.Recent)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	probe := &metrics.ProbeStats{}
	probe.Campaigns.Store(4)
	probe.Denied.Store(2)
	probe.Pending.Store(1)
	store := &metrics.StoreStats{}
	store.Appends.Store(42)
	svc := &metrics.ServiceStats{}
	srv := New(Options{
		Service: svc,
		Ingest: func() metrics.IngestSnapshot {
			return metrics.IngestSnapshot{Records: 1234, Ops: 5678, Bins: 9, QueueDepths: []int{1, 2}}
		},
		Store: func() metrics.StoreSnapshot { return store.Snapshot() },
		Probe: func() metrics.ProbeSnapshot { return probe.Snapshot() },
	})
	srv.PublishSnapshot(probeSnapshot())
	srv.SetReady(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		"kepler_ready 1\n",
		"kepler_ingest_records_total 1234\n",
		"kepler_ingest_queue_depth 3\n",
		"kepler_resolved_outages_total 1\n",
		"kepler_open_outages 1\n",
		"kepler_store_appends_total 42\n",
		"kepler_probe_campaigns_total 4\n",
		"kepler_probe_denied_total 2\n",
		"kepler_probe_pending 1\n",
		"kepler_http_requests_total",
		"# TYPE kepler_ingest_records_total counter\n",
		"# TYPE kepler_probe_pending gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every sample line must follow "name value" with a matching TYPE line.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if !strings.Contains(body, "# TYPE "+fields[0]+" ") {
			t.Errorf("sample %q has no TYPE metadata", fields[0])
		}
	}
}

// TestMetricsWithoutOptionalSources pins that a minimally configured
// server still serves a valid exposition (no store, probe or ingest).
func TestMetricsWithoutOptionalSources(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "kepler_ready 0") {
		t.Fatalf("minimal exposition broken: %d %q", resp.StatusCode, raw)
	}
	if strings.Contains(string(raw), "kepler_probe_") {
		t.Fatal("probe metrics rendered without a probe source")
	}
}
