// Package server exposes a running detection engine over HTTP: a JSON API
// for resolved and ongoing outages, classified incidents and runtime
// statistics, plus a Server-Sent-Events stream that multiplexes the outage
// event bus (internal/events) to many concurrent clients. API reads never
// touch engine state: they serve from an immutable snapshot the ingestion
// goroutine swaps in at each bin barrier (via the engine's BinClosed hook),
// so a burst of API traffic cannot slow record ingestion, and a stalled
// SSE client only ever loses its own events (bounded queue, drops counted).
//
// Endpoints:
//
//	GET /healthz          liveness + readiness
//	GET /v1/outages       resolved outages (the batch-equivalent output);
//	                      cursor pagination via ?after=<id>&limit=<n>
//	GET /v1/outages/open  ongoing outages as of the last closed bin
//	GET /v1/incidents     classified signals; ?kind=link|as|operator|pop,
//	                      same ?after=/&limit= cursors
//	GET /v1/stats         ingestion, bus, store and HTTP counters
//	GET /v1/events        SSE stream; ?kinds=comma,separated filter;
//	                      Last-Event-ID resumes from the bus replay ring
//
// History entries carry stable ascending ids (their position in the
// resolved/incident sequence, which recovery rebuilds identically), so
// ?after= cursors remain valid across daemon restarts.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

// EngineState is the accessor subset of core.Engine (and core.Detector)
// the snapshot builder reads. All three methods are only safe on the
// ingestion goroutine between Process calls or inside a BinClosed hook —
// which is exactly where BuildSnapshot runs.
type EngineState interface {
	OpenOutageStatuses() []core.OutageStatus
	Incidents() []core.Incident
}

// HistoryReader pages resolved outages and incidents from durable storage
// by ordinal: entry i of either sequence, independent of how much history
// exists. store.Store implements it over sealed segment files with an
// offset index, so serving deep cursors touches one positioned read, not
// resident memory. Implementations must be safe for concurrent use and
// must serve ordinals below the published totals immutably (history is
// append-only; a snapshot's totals only ever grow stale, never wrong).
type HistoryReader interface {
	ReadOutages(start, count int) ([]core.Outage, error)
	ReadIncidents(start, count int) ([]core.Incident, error)
}

// Snapshot is the immutable read model served by the API. The ingestion
// goroutine builds a fresh one at each bin barrier and publishes it
// atomically; handlers only ever read a published snapshot.
type Snapshot struct {
	// At is the bin close (or flush instant) the snapshot reflects.
	At time.Time
	// Resolved holds every completed outage so far, oldest first — the
	// in-memory serving mode. Leave nil and set History/ResolvedTotal to
	// page history off disk instead.
	Resolved []core.Outage
	// Open holds the ongoing outages as of At.
	Open []core.OutageStatus
	// Incidents holds every classified signal so far (in-memory mode, like
	// Resolved).
	Incidents []core.Incident
	// History, when non-nil, serves /v1/outages and /v1/incidents pages by
	// ordinal instead of the Resolved/Incidents slices, bounding resident
	// memory by the reader's cache rather than history size.
	History HistoryReader
	// ResolvedTotal/IncidentsTotal are the history sizes when History is
	// set (ids 1..total remain the pagination cursors).
	ResolvedTotal  int
	IncidentsTotal int

	// cache holds the ETag and pre-marshaled response bodies PublishSnapshot
	// attaches; handlers treat a nil cache as a plain uncached snapshot.
	cache *snapCache
	// Pending holds the signal groups parked behind in-flight probe
	// campaigns as of At (asynchronous-prober deployments only).
	Pending []core.PendingConfirmation
	// ProbeOutcomes holds recent campaign resolutions, oldest first,
	// bounded by the caller.
	ProbeOutcomes []core.ProbeOutcome
	// Traces holds the retained provenance traces (core.Config.Tracing):
	// trace j describes Resolved[TraceBase+j]. TraceBase counts older traces
	// dropped by the store's retention cap. Empty when tracing is disabled.
	Traces    []core.OutageTrace
	TraceBase int
	// Feeds is the feed-health watchdog snapshot as of At (stream time).
	// Nil when the watchdog is disabled (core.Config.FeedSilence zero).
	Feeds *bgpstream.FeedSnapshot
}

// BuildSnapshot captures the engine's queryable state. resolved is the
// caller-accumulated completed-outage list (the engine does not retain
// outages after they are drained); the snapshot aliases it, which is safe
// because outage accumulation is append-only.
func BuildSnapshot(at time.Time, eng EngineState, resolved []core.Outage) *Snapshot {
	return BuildSnapshotFrom(at, eng.OpenOutageStatuses(), resolved, eng.Incidents())
}

// BuildSnapshotFrom assembles a snapshot from explicit state — the variant
// a store-backed daemon uses, where the resolved and incident histories are
// accumulated from persisted events (complete from boot) rather than read
// off an engine that is still catching up on re-ingested records.
func BuildSnapshotFrom(at time.Time, open []core.OutageStatus, resolved []core.Outage, incidents []core.Incident) *Snapshot {
	return &Snapshot{At: at, Resolved: resolved, Open: open, Incidents: incidents}
}

// BuildSnapshotPaged assembles a disk-paged snapshot: history stays in the
// reader (the store's segment files), only the totals and the bounded open
// set live in memory. The store-backed daemon publishes these so resident
// memory no longer grows with history.
func BuildSnapshotPaged(at time.Time, open []core.OutageStatus, hist HistoryReader, resolvedTotal, incidentsTotal int) *Snapshot {
	return &Snapshot{At: at, Open: open, History: hist,
		ResolvedTotal: resolvedTotal, IncidentsTotal: incidentsTotal}
}

// resolvedTotal is the resolved-history size regardless of serving mode.
func (sn *Snapshot) resolvedTotal() int {
	if sn.History != nil {
		return sn.ResolvedTotal
	}
	return len(sn.Resolved)
}

// incidentsTotal is the incident-history size regardless of serving mode.
func (sn *Snapshot) incidentsTotal() int {
	if sn.History != nil {
		return sn.IncidentsTotal
	}
	return len(sn.Incidents)
}

// Options configures a Server.
type Options struct {
	// Bus feeds the SSE stream. Required for /v1/events; other endpoints
	// work without it.
	Bus *events.Bus
	// Relay, when set, serves /v1/events through the fan-out tier instead
	// of subscribing each client to the bus directly: N streaming clients
	// cost the ingestion path one bus subscriber. The relay must be built
	// over the same Bus (Last-Event-ID resume still replays its ring).
	Relay *events.Relay
	// Service receives HTTP/SSE counter updates; shared with the bus so
	// /v1/stats reports both sides. Optional.
	Service *metrics.ServiceStats
	// Ingest supplies live engine ingestion counters for /v1/stats
	// (atomics only — safe from any goroutine). Optional.
	Ingest func() metrics.IngestSnapshot
	// Store supplies durable-history counters (WAL appends, compactions,
	// recovery) for /v1/stats when the daemon runs with a data dir. Optional.
	Store func() metrics.StoreSnapshot
	// Probe supplies active-measurement counters (campaigns, budget
	// denials, promotions) for /v1/stats and /metrics when the daemon runs
	// an asynchronous prober. Optional.
	Probe func() metrics.ProbeSnapshot
	// BinStage supplies the staged bin-close latency histograms for
	// /v1/stats and the /metrics histogram exposition. Optional.
	BinStage func() metrics.BinStageSnapshot
	// HTTP collects per-endpoint latency/status histograms and the SSE
	// delivery-lag histogram, surfaced in /v1/stats and /metrics. Optional.
	HTTP *metrics.HTTPStats
	// Feed counts feed-health transitions published to the bus (post-gate)
	// for /v1/stats and /metrics. Optional.
	Feed *metrics.FeedStats
	// FeedFloor is the feed coverage ratio below which /healthz degrades to
	// 503 (readiness withdrawn while most peer sessions are silent). Zero
	// disables the check; it only applies when the snapshot carries a
	// watchdog section.
	FeedFloor float64
	// Namer resolves PoP display names (e.g. topology.World.PoPName in
	// replay mode, where the world is known). Optional.
	Namer func(colo.PoP) string
	// SSEBuffer is the per-client event queue capacity (default 256).
	// When a client stalls past it, its events are dropped and counted.
	SSEBuffer int
	// Heartbeat is the SSE keepalive comment interval (default 15s).
	Heartbeat time.Duration
	// Logger receives SSE stream lifecycle reports at debug level. Nil
	// discards them.
	Logger *slog.Logger
}

// Server serves the live API. Use New; the zero value is not usable.
type Server struct {
	opts  Options
	snap  atomic.Pointer[Snapshot]
	ready atomic.Bool
	mux   *http.ServeMux

	// bootID and pubSeq make ETags: unique per process per published
	// snapshot, so If-None-Match can never false-match across restarts
	// (a false mismatch merely costs one full response).
	bootID int64
	pubSeq atomic.Uint64
}

// New builds a server. Publish a first snapshot and SetReady(true) once
// ingestion starts; until then /healthz reports starting and the v1
// endpoints serve empty state.
func New(opts Options) *Server {
	if opts.SSEBuffer <= 0 {
		opts.SSEBuffer = 256
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{opts: opts, bootID: time.Now().UnixNano()}
	s.snap.Store(&Snapshot{cache: &snapCache{etag: `"0-0"`}})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/health/feeds", s.handleFeeds)
	s.mux.HandleFunc("GET /v1/outages", s.handleOutages)
	s.mux.HandleFunc("GET /v1/outages/open", s.handleOpen)
	s.mux.HandleFunc("GET /v1/outages/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/probes", s.handleProbes)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// PublishSnapshot atomically swaps the read model. Called from the
// ingestion goroutine (BinClosed hook and after the final flush). The
// publish pre-marshals the bounded read views (/v1/outages/open and the
// stats header) and mints the snapshot's ETag; unbounded views memoize on
// first request instead, keeping the bin barrier O(open outages).
func (s *Server) PublishSnapshot(snap *Snapshot) {
	if snap == nil {
		return
	}
	c := &snapCache{etag: fmt.Sprintf("\"%x-%x\"", s.bootID, s.pubSeq.Add(1))}
	c.openBody = marshalBody(s.openResponse(snap))
	snap.cache = c
	s.snap.Store(snap)
}

// Snapshot returns the currently served read model.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// SetReady flips the /healthz readiness signal.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler returns the root handler with request accounting and per-endpoint
// latency instrumentation applied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		svc, hs := s.opts.Service, s.opts.HTTP
		if svc == nil && hs == nil {
			s.mux.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		if svc != nil {
			svc.HTTPRequests.Add(1)
		}
		cw := &countingWriter{ResponseWriter: w}
		s.mux.ServeHTTP(cw, r)
		status := cw.status
		if status == 0 {
			status = http.StatusOK // handler never called WriteHeader
		}
		if svc != nil && status >= 400 {
			svc.HTTPErrors.Add(1)
		}
		if hs != nil {
			// r.Pattern is the matched route ("GET /v1/outages"), keeping
			// label cardinality fixed regardless of path values. SSE streams
			// record their whole connection lifetime here (the +Inf bucket);
			// their per-event latency is the delivery-lag histogram.
			pat := r.Pattern
			if pat == "" {
				pat = "unmatched"
			}
			hs.Observe(pat, status, time.Since(start))
		}
	})
}

// countingWriter records the response status for error accounting.
type countingWriter struct {
	http.ResponseWriter
	status int
}

func (c *countingWriter) WriteHeader(status int) {
	if c.status == 0 {
		c.status = status
	}
	c.ResponseWriter.WriteHeader(status)
}

// Flush forwards flushing so SSE works through the counting wrapper.
func (c *countingWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	snap := s.snap.Load()
	if !snap.At.IsZero() {
		body["last_bin_close"] = snap.At
	}
	if s.opts.Ingest != nil {
		body["bin_lag_seconds"] = s.opts.Ingest().BinLag.Seconds()
	}
	if snap.Feeds != nil {
		body["feed_coverage"] = snap.Feeds.Coverage()
	}
	if !s.ready.Load() {
		body["status"] = "starting"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	// Readiness also demands a minimally live feed: below the coverage
	// floor the detector is formally running but effectively blind, so
	// stop advertising health (load balancers should drain, not route).
	if s.opts.FeedFloor > 0 && snap.Feeds != nil && snap.Feeds.Coverage() < s.opts.FeedFloor {
		body["status"] = "degraded"
		body["feed_floor"] = s.opts.FeedFloor
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleFeeds serves the feed-health watchdog snapshot: per-collector and
// per-peer-session liveness as of the last closed bin, in stream time. 404
// when the watchdog is disabled.
func (s *Server) handleFeeds(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap.Feeds == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": "feed watchdog disabled (configure a feed silence threshold)",
		})
		return
	}
	if notModified(w, r, snap.cache) {
		return
	}
	writeJSON(w, http.StatusOK, s.feedHealthView(snap.Feeds))
}

// handleTrace serves the provenance trace of one resolved outage: the
// evidence chain (signal groups, disambiguation steps, collateral folds,
// probe verdicts) behind the detection. 404 distinguishes an unknown outage
// id from a trace that was never recorded (tracing disabled) or has aged
// out of the store's retention window.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "outage id must be a positive integer"})
		return
	}
	snap := s.snap.Load()
	if id > uint64(snap.resolvedTotal()) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown outage id"})
		return
	}
	if notModified(w, r, snap.cache) {
		return
	}
	idx := int(id-1) - snap.TraceBase
	switch {
	case len(snap.Traces) == 0:
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no trace recorded (tracing disabled?)"})
		return
	case idx < 0:
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "trace no longer retained"})
		return
	case idx >= len(snap.Traces):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no trace recorded for this outage"})
		return
	}
	writeJSON(w, http.StatusOK, s.traceView(id, &snap.Traces[idx]))
}

// pageParams is a validated pagination cursor: entries with id > after, at
// most limit of them (0 = unbounded).
type pageParams struct {
	after uint64
	limit int
}

// parsePage validates ?after= and ?limit=. Malformed cursors are rejected
// outright — a mistyped cursor silently serving the full multi-month
// history is exactly the unbounded-response bug pagination exists to fix.
func parsePage(r *http.Request) (pageParams, error) {
	var p pageParams
	q := r.URL.Query()
	if raw := q.Get("after"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return p, fmt.Errorf("after must be a non-negative integer id, got %q", raw)
		}
		p.after = v
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			return p, fmt.Errorf("limit must be a positive integer, got %q", raw)
		}
		p.limit = v
	}
	return p, nil
}

// window resolves the cursor against an n-entry history with ids 1..n:
// the first index to serve, how many, and the next_after cursor (non-zero
// only when entries remain past this page).
func (p pageParams) window(n int) (start, count int, nextAfter uint64) {
	if p.after >= uint64(n) {
		return n, 0, 0
	}
	start = int(p.after)
	count = n - start
	if p.limit > 0 && count > p.limit {
		count = p.limit
		nextAfter = uint64(start + count)
	}
	return start, count, nextAfter
}

// outagesResponse is the /v1/outages response shape.
type outagesResponse struct {
	AsOf      time.Time    `json:"as_of"`
	Count     int          `json:"count"`
	Total     int          `json:"total"`
	NextAfter uint64       `json:"next_after,omitempty"`
	Outages   []OutageView `json:"outages"`
}

// buildOutagesPage resolves one cursor page against the snapshot, from the
// in-memory slice or the disk-backed history reader.
func (s *Server) buildOutagesPage(snap *Snapshot, p pageParams) (outagesResponse, error) {
	total := snap.resolvedTotal()
	start, count, nextAfter := p.window(total)
	outs := make([]OutageView, count)
	if snap.History != nil && count > 0 {
		rows, err := snap.History.ReadOutages(start, count)
		if err != nil {
			return outagesResponse{}, err
		}
		if len(rows) != count {
			return outagesResponse{}, fmt.Errorf("history returned %d of %d outages", len(rows), count)
		}
		for i := range rows {
			outs[i] = s.outageView(uint64(start+i)+1, &rows[i])
		}
	} else {
		for i := 0; i < count; i++ {
			outs[i] = s.outageView(uint64(start+i)+1, &snap.Resolved[start+i])
		}
	}
	return outagesResponse{snap.At, count, total, nextAfter, outs}, nil
}

func (s *Server) handleOutages(w http.ResponseWriter, r *http.Request) {
	p, err := parsePage(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	snap := s.snap.Load()
	if notModified(w, r, snap.cache) {
		return
	}
	// The no-cursor request is the hot default page: serve the memoized
	// bytes, marshaled at most once per published snapshot.
	if r.URL.RawQuery == "" && snap.cache != nil {
		body := snap.cache.memoize(&snap.cache.outagesBody, func() []byte {
			resp, err := s.buildOutagesPage(snap, p)
			if err != nil {
				return nil
			}
			return marshalBody(resp)
		})
		if body != nil {
			writeJSONBody(w, body, nil)
			return
		}
	}
	resp, err := s.buildOutagesPage(snap, p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// openResponse builds the full /v1/outages/open body (pre-marshaled at
// snapshot publish — the open set is bounded by ongoing outages, not
// history).
func (s *Server) openResponse(snap *Snapshot) any {
	outs := make([]OpenOutageView, len(snap.Open))
	for i := range snap.Open {
		outs[i] = s.openView(&snap.Open[i])
	}
	return struct {
		AsOf    time.Time        `json:"as_of"`
		Count   int              `json:"count"`
		Outages []OpenOutageView `json:"outages"`
	}{snap.At, len(outs), outs}
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if notModified(w, r, snap.cache) {
		return
	}
	if snap.cache != nil {
		writeJSONBody(w, snap.cache.openBody, func() any { return s.openResponse(snap) })
		return
	}
	writeJSON(w, http.StatusOK, s.openResponse(snap))
}

// incidentsResponse is the /v1/incidents response shape.
type incidentsResponse struct {
	AsOf      time.Time      `json:"as_of"`
	Count     int            `json:"count"`
	Total     int            `json:"total"`
	NextAfter uint64         `json:"next_after,omitempty"`
	Incidents []IncidentView `json:"incidents"`
}

// incidentScanChunk bounds how many incidents a disk-backed filter scan
// materializes at a time, so a kind-filtered deep cursor never loads the
// whole history.
const incidentScanChunk = 512

// buildIncidentsPage resolves one incident cursor page. Ids index the
// unfiltered incident sequence, so cursors stay stable whether or not a
// kind filter is applied; the filter selects within the cursor window. In
// disk-backed mode the scan reads fixed-size chunks until the page fills.
func (s *Server) buildIncidentsPage(snap *Snapshot, p pageParams, kind string) (incidentsResponse, error) {
	total := snap.incidentsTotal()
	incs := make([]IncidentView, 0, 16)
	var nextAfter uint64
	start := int(min(p.after, uint64(total)))
	for base := start; base < total && nextAfter == 0; base += incidentScanChunk {
		n := min(incidentScanChunk, total-base)
		var rows []core.Incident
		if snap.History != nil {
			var err error
			rows, err = snap.History.ReadIncidents(base, n)
			if err != nil {
				return incidentsResponse{}, err
			}
			if len(rows) != n {
				return incidentsResponse{}, fmt.Errorf("history returned %d of %d incidents", len(rows), n)
			}
		} else {
			rows = snap.Incidents[base : base+n]
		}
		for i := range rows {
			if kind != "" && rows[i].Kind.String() != kind {
				continue
			}
			if p.limit > 0 && len(incs) == p.limit {
				nextAfter = incs[len(incs)-1].ID
				break
			}
			incs = append(incs, s.incidentView(uint64(base+i)+1, &rows[i]))
		}
	}
	return incidentsResponse{snap.At, len(incs), total, nextAfter, incs}, nil
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	p, err := parsePage(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind != "" {
		switch kind {
		case "link", "as", "operator", "pop":
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": "kind must be one of link, as, operator, pop",
			})
			return
		}
	}
	snap := s.snap.Load()
	if notModified(w, r, snap.cache) {
		return
	}
	if r.URL.RawQuery == "" && snap.cache != nil {
		body := snap.cache.memoize(&snap.cache.incidentsBody, func() []byte {
			resp, err := s.buildIncidentsPage(snap, p, "")
			if err != nil {
				return nil
			}
			return marshalBody(resp)
		})
		if body != nil {
			writeJSONBody(w, body, nil)
			return
		}
	}
	resp, err := s.buildIncidentsPage(snap, p, kind)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProbes serves the active-measurement view: campaigns currently in
// flight (parked signal groups awaiting verdicts) and recent resolutions,
// from the same immutable snapshot as every other read.
func (s *Server) handleProbes(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if notModified(w, r, snap.cache) {
		return
	}
	pend := make([]PendingProbeView, len(snap.Pending))
	for i := range snap.Pending {
		pend[i] = s.pendingView(&snap.Pending[i])
	}
	recent := make([]ProbeOutcomeView, len(snap.ProbeOutcomes))
	for i := range snap.ProbeOutcomes {
		recent[i] = s.probeOutcomeView(&snap.ProbeOutcomes[i])
	}
	writeJSON(w, http.StatusOK, struct {
		AsOf    time.Time          `json:"as_of"`
		Count   int                `json:"count"`
		Pending []PendingProbeView `json:"pending"`
		Recent  []ProbeOutcomeView `json:"recent"`
	}{snap.At, len(pend), pend, recent})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := StatsView{
		Ready:      s.ready.Load(),
		SnapshotAt: snap.At,
		OpenCount:  len(snap.Open),
		Resolved:   snap.resolvedTotal(),
		Incidents:  snap.incidentsTotal(),
	}
	if s.opts.Ingest != nil {
		resp.Ingest = ingestView(s.opts.Ingest())
	}
	if s.opts.Store != nil {
		resp.Store = storeView(s.opts.Store())
	}
	if s.opts.Probe != nil {
		resp.Probe = probeStatsView(s.opts.Probe())
	}
	if s.opts.BinStage != nil {
		resp.BinClose = binCloseView(s.opts.BinStage())
	}
	if s.opts.Bus != nil {
		st := s.opts.Bus.Stats()
		resp.Bus = &st
		if depths := s.opts.Bus.SubscriberDepths(); len(depths) > 0 {
			resp.Subscribers = depths
		}
	}
	if s.opts.Relay != nil {
		info := s.opts.Relay.Info()
		resp.Relay = &info
		if depths := s.opts.Relay.ClientDepths(); len(depths) > 0 {
			resp.RelayClients = depths
		}
	}
	if s.opts.Service != nil {
		resp.Service = serviceView(s.opts.Service.Snapshot())
	}
	if s.opts.HTTP != nil {
		resp.HTTP = httpView(s.opts.HTTP.Snapshot())
	}
	if snap.Feeds != nil {
		fv := s.feedHealthView(snap.Feeds)
		resp.Feeds = &fv
	}
	writeJSON(w, http.StatusOK, resp)
}
