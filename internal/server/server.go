// Package server exposes a running detection engine over HTTP: a JSON API
// for resolved and ongoing outages, classified incidents and runtime
// statistics, plus a Server-Sent-Events stream that multiplexes the outage
// event bus (internal/events) to many concurrent clients. API reads never
// touch engine state: they serve from an immutable snapshot the ingestion
// goroutine swaps in at each bin barrier (via the engine's BinClosed hook),
// so a burst of API traffic cannot slow record ingestion, and a stalled
// SSE client only ever loses its own events (bounded queue, drops counted).
//
// Endpoints:
//
//	GET /healthz          liveness + readiness
//	GET /v1/outages       resolved outages (the batch-equivalent output)
//	GET /v1/outages/open  ongoing outages as of the last closed bin
//	GET /v1/incidents     classified signals; ?kind=link|as|operator|pop
//	GET /v1/stats         ingestion, bus and HTTP counters
//	GET /v1/events        SSE stream; ?kinds=comma,separated filter
package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

// EngineState is the accessor subset of core.Engine (and core.Detector)
// the snapshot builder reads. All three methods are only safe on the
// ingestion goroutine between Process calls or inside a BinClosed hook —
// which is exactly where BuildSnapshot runs.
type EngineState interface {
	OpenOutageStatuses() []core.OutageStatus
	Incidents() []core.Incident
}

// Snapshot is the immutable read model served by the API. The ingestion
// goroutine builds a fresh one at each bin barrier and publishes it
// atomically; handlers only ever read a published snapshot.
type Snapshot struct {
	// At is the bin close (or flush instant) the snapshot reflects.
	At time.Time
	// Resolved holds every completed outage so far, oldest first.
	Resolved []core.Outage
	// Open holds the ongoing outages as of At.
	Open []core.OutageStatus
	// Incidents holds every classified signal so far.
	Incidents []core.Incident
}

// BuildSnapshot captures the engine's queryable state. resolved is the
// caller-accumulated completed-outage list (the engine does not retain
// outages after they are drained); the snapshot aliases it, which is safe
// because outage accumulation is append-only.
func BuildSnapshot(at time.Time, eng EngineState, resolved []core.Outage) *Snapshot {
	return &Snapshot{
		At:        at,
		Resolved:  resolved,
		Open:      eng.OpenOutageStatuses(),
		Incidents: eng.Incidents(),
	}
}

// Options configures a Server.
type Options struct {
	// Bus feeds the SSE stream. Required for /v1/events; other endpoints
	// work without it.
	Bus *events.Bus
	// Service receives HTTP/SSE counter updates; shared with the bus so
	// /v1/stats reports both sides. Optional.
	Service *metrics.ServiceStats
	// Ingest supplies live engine ingestion counters for /v1/stats
	// (atomics only — safe from any goroutine). Optional.
	Ingest func() metrics.IngestSnapshot
	// Namer resolves PoP display names (e.g. topology.World.PoPName in
	// replay mode, where the world is known). Optional.
	Namer func(colo.PoP) string
	// SSEBuffer is the per-client event queue capacity (default 256).
	// When a client stalls past it, its events are dropped and counted.
	SSEBuffer int
	// Heartbeat is the SSE keepalive comment interval (default 15s).
	Heartbeat time.Duration
}

// Server serves the live API. Use New; the zero value is not usable.
type Server struct {
	opts  Options
	snap  atomic.Pointer[Snapshot]
	ready atomic.Bool
	mux   *http.ServeMux
}

// New builds a server. Publish a first snapshot and SetReady(true) once
// ingestion starts; until then /healthz reports starting and the v1
// endpoints serve empty state.
func New(opts Options) *Server {
	if opts.SSEBuffer <= 0 {
		opts.SSEBuffer = 256
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	s := &Server{opts: opts}
	s.snap.Store(&Snapshot{})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/outages", s.handleOutages)
	s.mux.HandleFunc("GET /v1/outages/open", s.handleOpen)
	s.mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	return s
}

// PublishSnapshot atomically swaps the read model. Called from the
// ingestion goroutine (BinClosed hook and after the final flush).
func (s *Server) PublishSnapshot(snap *Snapshot) {
	if snap != nil {
		s.snap.Store(snap)
	}
}

// Snapshot returns the currently served read model.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// SetReady flips the /healthz readiness signal.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler returns the root handler with request accounting applied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if svc := s.opts.Service; svc != nil {
			svc.HTTPRequests.Add(1)
			cw := &countingWriter{ResponseWriter: w}
			s.mux.ServeHTTP(cw, r)
			if cw.status >= 400 {
				svc.HTTPErrors.Add(1)
			}
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// countingWriter records the response status for error accounting.
type countingWriter struct {
	http.ResponseWriter
	status int
}

func (c *countingWriter) WriteHeader(status int) {
	if c.status == 0 {
		c.status = status
	}
	c.ResponseWriter.WriteHeader(status)
}

// Flush forwards flushing so SSE works through the counting wrapper.
func (c *countingWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleOutages(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	outs := make([]OutageView, len(snap.Resolved))
	for i := range snap.Resolved {
		outs[i] = s.outageView(&snap.Resolved[i])
	}
	writeJSON(w, http.StatusOK, struct {
		AsOf    time.Time    `json:"as_of"`
		Count   int          `json:"count"`
		Outages []OutageView `json:"outages"`
	}{snap.At, len(outs), outs})
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	outs := make([]OpenOutageView, len(snap.Open))
	for i := range snap.Open {
		outs[i] = s.openView(&snap.Open[i])
	}
	writeJSON(w, http.StatusOK, struct {
		AsOf    time.Time        `json:"as_of"`
		Count   int              `json:"count"`
		Outages []OpenOutageView `json:"outages"`
	}{snap.At, len(outs), outs})
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	kind := r.URL.Query().Get("kind")
	if kind != "" {
		switch kind {
		case "link", "as", "operator", "pop":
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": "kind must be one of link, as, operator, pop",
			})
			return
		}
	}
	incs := make([]IncidentView, 0, len(snap.Incidents))
	for i := range snap.Incidents {
		if kind != "" && snap.Incidents[i].Kind.String() != kind {
			continue
		}
		incs = append(incs, s.incidentView(&snap.Incidents[i]))
	}
	writeJSON(w, http.StatusOK, struct {
		AsOf      time.Time      `json:"as_of"`
		Count     int            `json:"count"`
		Incidents []IncidentView `json:"incidents"`
	}{snap.At, len(incs), incs})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := StatsView{
		Ready:      s.ready.Load(),
		SnapshotAt: snap.At,
		OpenCount:  len(snap.Open),
		Resolved:   len(snap.Resolved),
		Incidents:  len(snap.Incidents),
	}
	if s.opts.Ingest != nil {
		resp.Ingest = ingestView(s.opts.Ingest())
	}
	if s.opts.Bus != nil {
		st := s.opts.Bus.Stats()
		resp.Bus = &st
	}
	if s.opts.Service != nil {
		resp.Service = serviceView(s.opts.Service.Snapshot())
	}
	writeJSON(w, http.StatusOK, resp)
}
