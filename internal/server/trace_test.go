package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

// tracedSnapshot extends testSnapshot with an evidence chain for its one
// resolved outage.
func tracedSnapshot() *Snapshot {
	snap := testSnapshot()
	o := snap.Resolved[0]
	snap.Traces = []core.OutageTrace{{
		Version: core.TraceVersion, PoP: o.PoP, Start: o.Start, End: o.End, Merged: o.Merged,
		Chapters: []core.TraceChapter{{
			Bin: o.End, SignalPoP: o.SignalPoP, Kind: "pop", Epicenter: o.PoP,
			Signals: []core.TraceSignal{{
				Near: 11, Diverted: 5, Stable: 40,
				Paths: []core.TraceDivertedPath{{
					Vantage: 7, Prefix: "10.0.0.0/24", Near: 11, Far: 12,
					OldPath: []bgp.ASN{7, 11, 12},
				}},
			}},
			Steps: []core.TraceStep{{
				Stage: "localize", Outcome: "chosen",
				Candidates: []colo.PoP{o.PoP, colo.FacilityPoP(8), colo.IXPPoP(2)},
				Eliminated: []colo.PoP{colo.FacilityPoP(8), colo.IXPPoP(2)},
				Chosen:     o.PoP,
			}},
		}},
	}}
	snap.TraceBase = 0
	return snap
}

func TestTraceEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(tracedSnapshot())

	var tv TraceView
	getJSON(t, ts.URL+"/v1/outages/1/trace", http.StatusOK, &tv)
	if tv.OutageID != 1 || tv.Version != core.TraceVersion {
		t.Errorf("trace header = id %d version %d", tv.OutageID, tv.Version)
	}
	if len(tv.Chapters) != 1 {
		t.Fatalf("chapters = %d, want 1", len(tv.Chapters))
	}
	ch := tv.Chapters[0]
	if len(ch.Signals) != 1 || ch.Signals[0].Diverted != 5 || len(ch.Signals[0].Paths) != 1 {
		t.Errorf("signal evidence missing: %+v", ch.Signals)
	}
	if len(ch.Steps) != 1 || len(ch.Steps[0].Candidates) != 3 || len(ch.Steps[0].Eliminated) != 2 || ch.Steps[0].Chosen == nil {
		t.Errorf("localization steps missing: %+v", ch.Steps)
	}

	// Malformed and out-of-range ids.
	getJSON(t, ts.URL+"/v1/outages/zero/trace", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/outages/0/trace", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/outages/2/trace", http.StatusNotFound, nil)
}

func TestTraceEndpointDisabledAndEvicted(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)

	// Tracing disabled: outages exist, no traces at all.
	srv.PublishSnapshot(testSnapshot())
	getJSON(t, ts.URL+"/v1/outages/1/trace", http.StatusNotFound, nil)

	// Evicted: two resolved outages but only the newer one's trace retained.
	snap := tracedSnapshot()
	o2 := snap.Resolved[0]
	o2.PoP = colo.IXPPoP(4)
	snap.Resolved = append(snap.Resolved, o2)
	snap.Traces[0].PoP = o2.PoP
	snap.TraceBase = 1
	srv.PublishSnapshot(snap)
	getJSON(t, ts.URL+"/v1/outages/1/trace", http.StatusNotFound, nil) // aged out
	var tv TraceView
	getJSON(t, ts.URL+"/v1/outages/2/trace", http.StatusOK, &tv)
	if tv.PoP.Kind != "ixp" {
		t.Errorf("retained trace pop = %+v, want the ixp epicenter", tv.PoP)
	}
}

// TestStatsAndMetricsBinClose wires a BinStageStats into the server and
// asserts both exports: the /v1/stats JSON section and the Prometheus
// histogram exposition on /metrics.
func TestStatsAndMetricsBinClose(t *testing.T) {
	stage := &metrics.BinStageStats{}
	var spans metrics.BinSpans
	spans.Total = 3 * time.Millisecond
	for i := range spans.Stage {
		spans.Stage[i] = 500 * time.Microsecond
	}
	stage.Record(spans)

	srv := New(Options{
		BinStage:  func() metrics.BinStageSnapshot { return stage.Snapshot() },
		Heartbeat: time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	srv.PublishSnapshot(testSnapshot())

	var stats StatsView
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.BinClose == nil {
		t.Fatal("stats missing bin_close section")
	}
	if stats.BinClose.Total.Count != 1 {
		t.Errorf("total count = %d, want 1", stats.BinClose.Total.Count)
	}
	for _, name := range metrics.BinStageNames {
		st, ok := stats.BinClose.Stages[name]
		if !ok {
			t.Errorf("stats missing stage %q", name)
			continue
		}
		if st.Count != 1 {
			t.Errorf("stage %q count = %d, want 1", name, st.Count)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE kepler_bin_close_seconds histogram",
		`kepler_bin_close_seconds_bucket{le="+Inf"} 1`,
		"kepler_bin_close_seconds_count 1",
		"# TYPE kepler_bin_close_stage_seconds histogram",
		`kepler_bin_close_stage_seconds_bucket{stage="classify",le="+Inf"} 1`,
		`kepler_bin_close_stage_seconds_count{stage="barrier"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Bucket counts must be cumulative: the 3ms total observation falls in
	// the le="0.005" bucket and every wider one.
	if !strings.Contains(text, `kepler_bin_close_seconds_bucket{le="0.005"} 1`) {
		t.Error(`/metrics missing cumulative le="0.005" bucket for the 3ms observation`)
	}
}
