package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/live"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
	"kepler/internal/pipeline"
	"kepler/internal/probe"
	"kepler/internal/simulate"
	"kepler/internal/store"
	"kepler/internal/topology"
)

// cutSource fails with context.Canceled once the stream reaches cutoff —
// the moment a SIGTERM would interrupt an archive replay, as seen by
// live.Pump.
type cutSource struct {
	src    live.Source
	cutoff time.Time
}

func (c *cutSource) Next(ctx context.Context) (*mrt.Record, error) {
	rec, err := c.src.Next(ctx)
	if err != nil {
		return nil, err
	}
	if !rec.Time.Before(c.cutoff) {
		return nil, context.Canceled
	}
	return rec, nil
}

// sseCollect drains an SSE stream in the background, recording every event
// frame's id and payload until the stream ends (bye) or maxEvents arrived.
type sseCollect struct {
	ids   []uint64
	views []EventView
}

func collectSSE(t *testing.T, url string, lastID uint64, maxEvents int) (*sseCollect, func() *sseCollect) {
	t.Helper()
	resp := sseGet(t, url, lastID)
	br := bufio.NewReader(resp.Body)
	// Reading the opening comment synchronously guarantees the
	// subscription is registered before the caller starts publishing.
	if f, err := readFrame(br); err != nil || !f.comment {
		t.Fatalf("opening frame = %+v, %v", f, err)
	}
	c := &sseCollect{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		for maxEvents <= 0 || len(c.ids) < maxEvents {
			f, err := readFrame(br)
			if err != nil || f.event == "bye" {
				return
			}
			if f.comment {
				continue
			}
			id, err := strconv.ParseUint(f.id, 10, 64)
			if err != nil {
				t.Errorf("frame id %q: %v", f.id, err)
				return
			}
			var ev EventView
			if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
				t.Errorf("frame data: %v", err)
				return
			}
			c.ids = append(c.ids, id)
			c.views = append(c.views, ev)
		}
	}()
	return c, func() *sseCollect { <-done; return c }
}

// restartScenario builds the 14-day two-outage scenario shared by the
// restart equivalence tests: the two most trackable facilities go down in
// different halves of the archive, with link-level background churn in
// between — detection time is event driven, so without records between the
// bursts no bins close and the first outage's resolution would only
// finalize at the shutdown flush.
func restartScenario(t *testing.T) (*pipeline.Stack, *topology.World, *simulate.Result, core.Config, time.Time) {
	t.Helper()
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stack := pipeline.Build(w, 77)
	// The two most trackable facilities, taken down in different halves of
	// the scenario so both daemon lifetimes contribute outages.
	var first, second colo.FacilityID
	bestN, secondN := 0, 0
	for _, f := range stack.Map.Facilities() {
		_, n := stack.Map.Trackable(f.ID, stack.Dict.Covers)
		switch {
		case n > bestN:
			second, secondN = first, bestN
			first, bestN = f.ID, n
		case n > secondN:
			second, secondN = f.ID, n
		}
	}
	if first == 0 || second == 0 {
		t.Fatal("need two trackable facilities")
	}
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(14 * 24 * time.Hour)
	evs := []simulate.Event{
		{Kind: simulate.EvFacility, Facility: first,
			Start: start.Add(5 * 24 * time.Hour), Duration: 45 * time.Minute},
		{Kind: simulate.EvFacility, Facility: second,
			Start: start.Add(10 * 24 * time.Hour), Duration: 40 * time.Minute},
	}
	for i := 0; i < 6; i++ {
		evs = append(evs, simulate.Event{
			Kind: simulate.EvLink, Link: i,
			Start:    start.Add(time.Duration(6*24+i*8) * time.Hour),
			Duration: 20 * time.Minute,
		})
	}
	res, err := simulate.Render(w, evs, start, end, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ReportUnresolved = true
	// Watchdog on: restart equivalence must hold with feed transitions in
	// the published stream (they burn gate-counted callbacks like any other
	// event kind).
	cfg.FeedSilence = 5 * time.Minute
	return stack, w, res, cfg, start
}

// TestRestartEquivalence is the durability contract of the live service: a
// daemon killed mid-archive and restarted against the same data dir must
// end up reporting exactly the resolved-outage set of one uninterrupted
// batch Detector run, and an SSE client that disconnected before the kill
// and reconnects after it with Last-Event-ID must observe every event
// exactly once. Run with -race: both phases overlap SSE consumption with
// ingestion, and the second phase persists while serving.
func TestRestartEquivalence(t *testing.T) {
	stack, w, res, cfg, start := restartScenario(t)
	wantOuts, wantIncs := stack.Run(res.Records, cfg, nil)
	if len(wantOuts) < 2 {
		t.Fatalf("batch reference found %d outages; need activity in both halves", len(wantOuts))
	}

	dir := t.TempDir()
	const ringSize = 1 << 14

	// ---- Phase 1: daemon runs until a "SIGTERM" cuts the source mid-archive.
	// CompactBytes: 1 compacts at every bin close, so the durable history
	// lives in sealed segments with incremental snapshot manifests — the
	// restart contract must hold with that machinery in the loop.
	stats1 := &metrics.StoreStats{}
	st1, err := store.Open(store.Options{Dir: dir, TailEvents: ringSize, CompactBytes: 1, Metrics: stats1})
	if err != nil {
		t.Fatal(err)
	}
	var armed atomic.Bool
	armed.Store(true)
	bus1 := events.New(nil, events.WithRing(ringSize), events.WithSink(func(ev events.Event) {
		if !armed.Load() {
			return
		}
		if err := st1.Append(ev); err != nil {
			t.Errorf("phase 1 append: %v", err)
		}
	}))
	eng1 := stack.NewEngine(cfg, 4)
	// Serve SSE through the relay tier: equivalence must survive the extra
	// fan-out hop. The aggregate shed budget exceeds the per-client buffer
	// cap times the client count, so no event can be shed in this test.
	relay1 := events.NewRelay(bus1, events.RelayOptions{Buffer: ringSize, MaxQueued: 4 * ringSize})
	defer relay1.Close()
	srv1 := New(Options{Bus: bus1, Relay: relay1, Namer: w.PoPName, SSEBuffer: ringSize})
	var resolved1 []core.Outage
	hooks1 := events.EngineHooks(bus1)
	pubRes1 := hooks1.OutageResolved
	hooks1.OutageResolved = func(o core.Outage) { pubRes1(o); resolved1 = append(resolved1, o) }
	pubBin1 := hooks1.BinClosed
	hooks1.BinClosed = func(binEnd time.Time) {
		pubBin1(binEnd)
		srv1.PublishSnapshot(BuildSnapshot(binEnd, eng1, resolved1))
	}
	// As cmd/keplerd wires it: the abort mutes the hooks, so the engine's
	// shutdown flush publishes nothing and the bus sequence ends exactly at
	// the persisted horizon.
	var aborting atomic.Bool
	eng1.SetHooks(events.MuteHooks(hooks1, aborting.Load))
	ts1 := httptest.NewServer(srv1.Handler())
	srv1.SetReady(true)

	// Two SSE clients: one sees the first few events and drops — the
	// disconnect everyone hits on a flaky link — and one stays connected
	// all the way through the kill.
	const seenBeforeDisconnect = 5
	_, wait1 := collectSSE(t, ts1.URL+"/v1/events", 0, seenBeforeDisconnect)
	_, wait1b := collectSSE(t, ts1.URL+"/v1/events", 0, 0)

	// Kill between the two injected outages: the first is resolved and
	// durable, the second still ahead.
	cut := &cutSource{src: live.Adapt(bgpstream.NewSliceSource(res.Records)), cutoff: start.Add(8 * 24 * time.Hour)}
	src1 := live.OnAbort(cut, func() { armed.Store(false); aborting.Store(true) })
	if _, err := live.Pump(context.Background(), src1, eng1); err != context.Canceled {
		t.Fatalf("phase 1 pump error = %v, want context.Canceled", err)
	}
	bus1.Close()
	phase1 := *wait1()
	phase1b := *wait1b()
	ts1.Close()
	eng1.Close()
	// SIGKILL model: st1 is abandoned, never Closed. The last bin-close
	// flush is the durable horizon; the muted abort-flush kept the bus
	// sequence and the store in lockstep at that horizon.

	if len(phase1.ids) != seenBeforeDisconnect || phase1.ids[0] != 1 {
		t.Fatalf("phase 1 client ids = %v", phase1.ids)
	}
	lastID := phase1.ids[len(phase1.ids)-1]

	// ---- Phase 2: a new process recovers the dir and re-ingests.
	stats2 := &metrics.StoreStats{}
	st2, err := store.Open(store.Options{Dir: dir, TailEvents: ringSize, CompactBytes: 1, Metrics: stats2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hist := st2.History()
	// With every-bin compaction the kill usually lands just after a
	// compaction, so the WAL tail is empty and recovery comes from the
	// snapshot manifest plus sealed segments instead of WAL replay.
	if hist.LastSeq == 0 {
		t.Fatal("recovery found nothing durable; phase 1 never reached disk")
	}
	if stats1.SegmentsSealed.Load() == 0 {
		t.Fatal("phase 1 sealed no segments; the incremental-snapshot path never engaged")
	}
	if len(hist.Resolved) == 0 || len(hist.Resolved) >= len(wantOuts) {
		t.Fatalf("durable history has %d/%d outages; the cut must fall mid-history for this test to bite",
			len(hist.Resolved), len(wantOuts))
	}
	if !reflect.DeepEqual(hist.Resolved, wantOuts[:len(hist.Resolved)]) {
		t.Fatal("recovered outages are not a prefix of the batch output")
	}
	// The stay-connected client saw exactly the persisted prefix: the muted
	// shutdown flush published nothing past the durable horizon.
	if n := len(phase1b.ids); n == 0 || phase1b.ids[n-1] != hist.LastSeq {
		t.Fatalf("stay-connected client last id = %v, want durable horizon %d", phase1b.ids, hist.LastSeq)
	}
	for i, id := range phase1b.ids {
		if id != uint64(i)+1 {
			t.Fatalf("stay-connected client id %d at position %d in phase 1", id, i)
		}
	}

	bus2 := events.New(nil,
		events.WithStartSeq(hist.LastSeq),
		events.WithRing(ringSize),
		events.WithSink(func(ev events.Event) {
			if err := st2.Append(ev); err != nil {
				t.Errorf("phase 2 append: %v", err)
			}
		}))
	bus2.SeedRing(hist.Tail)
	eng2 := stack.NewEngine(cfg, 2) // different shard count: determinism is the contract
	defer eng2.Close()
	relay2 := events.NewRelay(bus2, events.RelayOptions{Buffer: ringSize, MaxQueued: 4 * ringSize})
	defer relay2.Close()
	srv2 := New(Options{Bus: bus2, Relay: relay2, Namer: w.PoPName, SSEBuffer: ringSize,
		Store: func() metrics.StoreSnapshot { return stats2.Snapshot() }})
	resolved2 := hist.Resolved
	hooks2 := events.EngineHooks(bus2)
	pubRes2 := hooks2.OutageResolved
	hooks2.OutageResolved = func(o core.Outage) { pubRes2(o); resolved2 = append(resolved2, o) }
	pubBin2 := hooks2.BinClosed
	hooks2.BinClosed = func(binEnd time.Time) {
		pubBin2(binEnd)
		srv2.PublishSnapshot(BuildSnapshot(binEnd, eng2, resolved2))
	}
	eng2.SetHooks(events.GateHooks(hooks2, hist.LastSeq))
	// Boot snapshot pages history off the recovered store's segment indexes
	// rather than resident slices, exactly as keplerd does.
	sum := st2.Summary()
	srv2.PublishSnapshot(BuildSnapshotPaged(hist.LastBin, nil, st2, sum.ResolvedTotal, sum.IncidentTotal))
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	srv2.SetReady(true)

	// The recovered history is queryable before catch-up, with the same
	// stable ids a pre-restart client paginated by.
	var bootPage pageResp
	getJSON(t, ts2.URL+"/v1/outages", 200, &bootPage)
	if bootPage.Total != len(hist.Resolved) || bootPage.Outages[0].ID != 1 {
		t.Fatalf("boot snapshot = %+v", bootPage)
	}

	// Both phase 1 clients reconnect, presenting the standard header: the
	// early-dropper from where it left off, the stay-connected one from the
	// durable horizon it observed at the kill.
	_, wait2 := collectSSE(t, ts2.URL+"/v1/events", lastID, 0)
	_, wait2b := collectSSE(t, ts2.URL+"/v1/events", hist.LastSeq, 0)

	// Re-ingest the archive from the top; EOF this time, so the final
	// flush is a real end-of-stream and stays persisted.
	pres, err := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(res.Records)), eng2)
	if err != nil {
		t.Fatal(err)
	}
	srv2.PublishSnapshot(BuildSnapshot(pres.Last, eng2, resolved2))
	finalSeq := bus2.Seq()
	bus2.Close()
	phase2 := *wait2()
	phase2b := *wait2b()

	// 1. Hook accumulation across the restart equals the batch run.
	if !reflect.DeepEqual(resolved2, wantOuts) {
		t.Errorf("restarted daemon resolved %d outages, batch %d; sets diverge",
			len(resolved2), len(wantOuts))
	}
	// 2. So does the durable history itself (and its incident log), i.e.
	// what yet another restart would recover.
	final := st2.History()
	if !reflect.DeepEqual(final.Resolved, wantOuts) {
		t.Errorf("durable outage history diverges from batch")
	}
	if !reflect.DeepEqual(final.Incidents, wantIncs) {
		t.Errorf("durable incident history diverges from batch (%d vs %d)",
			len(final.Incidents), len(wantIncs))
	}
	if final.LastSeq != finalSeq {
		t.Errorf("store seq %d != bus seq %d", final.LastSeq, finalSeq)
	}
	// 3. The API serves it.
	var apiOuts struct {
		Total   int          `json:"total"`
		Outages []OutageView `json:"outages"`
	}
	getJSON(t, ts2.URL+"/v1/outages", 200, &apiOuts)
	if apiOuts.Total != len(wantOuts) {
		t.Errorf("API total = %d, want %d", apiOuts.Total, len(wantOuts))
	}
	for i := range apiOuts.Outages {
		if want := srv2.outageView(uint64(i)+1, &wantOuts[i]); !reflect.DeepEqual(apiOuts.Outages[i], want) {
			t.Errorf("API outage %d diverges after restart", i)
		}
	}
	// 4. Exactly-once across the reconnect: the two connections together
	// observed the contiguous sequence 1..finalSeq with no gap or repeat.
	all := append(append([]uint64{}, phase1.ids...), phase2.ids...)
	if uint64(len(all)) != finalSeq {
		t.Fatalf("client observed %d events, bus published %d", len(all), finalSeq)
	}
	for i, id := range all {
		if id != uint64(i)+1 {
			t.Fatalf("event id %d at position %d: duplicate or gap across the reconnect", id, i)
		}
	}
	// Same for the client that stayed connected through the kill: its two
	// connections cover 1..finalSeq with no overlap and no hole.
	allB := append(append([]uint64{}, phase1b.ids...), phase2b.ids...)
	if uint64(len(allB)) != finalSeq {
		t.Fatalf("stay-connected client observed %d events, bus published %d", len(allB), finalSeq)
	}
	for i, id := range allB {
		if id != uint64(i)+1 {
			t.Fatalf("stay-connected client id %d at position %d: duplicate or gap across the restart", id, i)
		}
	}
	// 5. And the resolved payloads it saw are the batch outages, in order.
	var sawResolved []OutageView
	for _, ev := range append(append([]EventView{}, phase1.views...), phase2.views...) {
		if ev.Outage != nil {
			sawResolved = append(sawResolved, *ev.Outage)
		}
	}
	if len(sawResolved) != len(wantOuts) {
		t.Fatalf("client saw %d resolved events, want %d", len(sawResolved), len(wantOuts))
	}
	for i := range sawResolved {
		if want := srv2.outageView(0, &wantOuts[i]); !reflect.DeepEqual(sawResolved[i], want) {
			t.Errorf("resolved event %d diverges from batch", i)
		}
	}
}

// countingCut wraps cutSource, counting records delivered before the cut
// so the bounded-recovery assertion can relate the checkpoint offset to the
// kill position.
type countingCut struct {
	cutSource
	delivered int
}

func (c *countingCut) Next(ctx context.Context) (*mrt.Record, error) {
	rec, err := c.cutSource.Next(ctx)
	if err == nil {
		c.delivered++
	}
	return rec, err
}

// newSched builds a deterministic probe scheduler (unbounded budget,
// Collect-waits-all) over the scenario's simulated traceroute substrate.
func newSched(t *testing.T, stack *pipeline.Stack, res *simulate.Result) *probe.Scheduler {
	t.Helper()
	sched := probe.NewScheduler(probe.OverDataPlane(stack.NewSimDataPlane(res, 1<<30)), probe.Config{Workers: 2})
	t.Cleanup(sched.Close)
	return sched
}

// marshalEvent renders one bus event as its canonical JSON bytes for the
// byte-for-byte sequence comparison.
func marshalEvent(t *testing.T, ev events.Event) []byte {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRestartEquivalenceCheckpointed extends the durability contract to
// checkpointed recovery: a daemon SIGKILLed mid-archive whose boot restores
// the newest engine checkpoint and re-ingests only the record suffix must
// publish byte-for-byte the same outage/incident/probe event sequence as
// one uninterrupted run — with the active-measurement path wired, at
// restore shard counts 1 and 4 — while the re-ingested prefix stays
// bounded by the checkpoint cadence rather than the stream length. Run
// with -race: the checkpointing phase runs a 4-shard engine plus scheduler
// workers.
func TestRestartEquivalenceCheckpointed(t *testing.T) {
	stack, _, res, cfg, start := restartScenario(t)
	const ckptInterval = 6 * time.Hour // stream time between checkpoints

	// Reference: one uninterrupted engine run, probing enabled, every
	// published event recorded.
	var refEvents []events.Event
	refBus := events.New(nil, events.WithSink(func(ev events.Event) { refEvents = append(refEvents, ev) }))
	refEng := stack.NewEngine(cfg, 4)
	refEng.SetProber(newSched(t, stack, res))
	refEng.SetHooks(events.EngineHooks(refBus))
	if _, err := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(res.Records)), refEng); err != nil {
		t.Fatal(err)
	}
	refBus.Close()
	refEng.Close()
	probeEvents, resolvedEvents := 0, 0
	for _, ev := range refEvents {
		switch ev.Kind {
		case events.KindProbeRequested, events.KindProbeConfirmed, events.KindProbeExpired:
			probeEvents++
		case events.KindOutageResolved:
			resolvedEvents++
		}
	}
	if probeEvents == 0 || resolvedEvents == 0 {
		t.Fatalf("reference run published %d probe and %d resolved events; the scenario must exercise both", probeEvents, resolvedEvents)
	}

	for _, restoreShards := range []int{1, 4} {
		t.Run(fmt.Sprintf("restore-shards=%d", restoreShards), func(t *testing.T) {
			dir := t.TempDir()

			// ---- Phase 1: checkpointing daemon, SIGKILLed mid-archive.
			// CompactBytes: 1: checkpointed recovery must compose with
			// sealed segments and incremental snapshot manifests.
			st1, err := store.Open(store.Options{Dir: dir, CompactBytes: 1})
			if err != nil {
				t.Fatal(err)
			}
			var armed atomic.Bool
			armed.Store(true)
			var persisted []events.Event
			bus1 := events.New(nil, events.WithSink(func(ev events.Event) {
				if !armed.Load() {
					return
				}
				if err := st1.Append(ev); err != nil {
					t.Errorf("phase 1 append: %v", err)
				}
				persisted = append(persisted, ev)
			}))
			eng1 := stack.NewEngine(cfg, 4)
			eng1.SetProber(newSched(t, stack, res))
			hooks1 := events.EngineHooks(bus1)
			publishBin := hooks1.BinClosed
			var lastCkpt time.Time
			hooks1.BinClosed = func(end time.Time) {
				publishBin(end)
				if !lastCkpt.IsZero() && end.Sub(lastCkpt) < ckptInterval {
					return
				}
				c, err := eng1.Checkpoint()
				if err != nil {
					t.Errorf("checkpoint at %v: %v", end, err)
					return
				}
				enc, err := c.Encode()
				if err != nil {
					t.Errorf("encode: %v", err)
					return
				}
				if err := st1.SaveCheckpoint(&store.Checkpoint{
					EventSeq: bus1.Seq(), Records: c.Records, BinEnd: end, Engine: enc,
				}); err != nil {
					t.Errorf("save checkpoint: %v", err)
				}
				lastCkpt = end
			}
			var aborting atomic.Bool
			eng1.SetHooks(events.MuteHooks(hooks1, aborting.Load))
			cut := &countingCut{cutSource: cutSource{
				src:    live.Adapt(bgpstream.NewSliceSource(res.Records)),
				cutoff: start.Add(8 * 24 * time.Hour),
			}}
			src1 := live.OnAbort(cut, func() { armed.Store(false); aborting.Store(true) })
			if _, err := live.Pump(context.Background(), src1, eng1); err != context.Canceled {
				t.Fatalf("phase 1 pump error = %v, want context.Canceled", err)
			}
			bus1.Close()
			eng1.Close()
			// SIGKILL model: st1 abandoned, never Closed.

			// ---- Phase 2: recover, restore the checkpoint, re-ingest the suffix.
			stats2 := &metrics.StoreStats{}
			st2, err := store.Open(store.Options{Dir: dir, CompactBytes: 1, Metrics: stats2})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			hist := st2.History()
			if got := uint64(len(persisted)); got != hist.LastSeq {
				t.Fatalf("durable horizon %d but phase 1 published %d events", hist.LastSeq, got)
			}
			var engCkpt *core.Checkpoint
			ck := st2.LoadCheckpoint(func(c *store.Checkpoint) error {
				if c.EventSeq > hist.LastSeq {
					return fmt.Errorf("checkpoint ahead of durable horizon")
				}
				ec, err := core.DecodeCheckpoint(c.Engine)
				if err != nil {
					return err
				}
				engCkpt = ec
				return nil
			})
			if ck == nil {
				t.Fatal("no usable checkpoint recovered")
			}
			// Bounded recovery: the replayed prefix (checkpoint to kill) is a
			// sliver of the records the killed process had ingested, set by
			// the checkpoint cadence, not the stream length.
			reingested := cut.delivered - int(ck.Records)
			if reingested < 0 || reingested > cut.delivered/2 {
				t.Fatalf("checkpoint at record %d, kill at %d: replayed prefix %d is not bounded",
					ck.Records, cut.delivered, reingested)
			}
			stats2.ResumeSeq.Store(int64(ck.EventSeq))
			stats2.ResumeRecords.Store(int64(ck.Records))

			var evs2 []events.Event
			bus2 := events.New(nil,
				events.WithStartSeq(hist.LastSeq),
				events.WithSink(func(ev events.Event) {
					if err := st2.Append(ev); err != nil {
						t.Errorf("phase 2 append: %v", err)
					}
					evs2 = append(evs2, ev)
				}))
			eng2 := stack.NewEngine(cfg, restoreShards)
			defer eng2.Close()
			eng2.SetProber(newSched(t, stack, res))
			if err := eng2.RestoreFrom(engCkpt); err != nil {
				t.Fatal(err)
			}
			eng2.SetHooks(events.GateHooks(events.EngineHooks(bus2), hist.LastSeq-ck.EventSeq))
			suffix := res.Records[ck.Records:]
			if _, err := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(suffix)), eng2); err != nil {
				t.Fatal(err)
			}
			bus2.Close()
			if got := eng2.Stats().Records; got != int64(len(suffix)) {
				t.Errorf("restored engine ingested %d records, suffix has %d", got, len(suffix))
			}
			// The recovery gauges a daemon would export: resumed well past
			// record zero.
			snap := stats2.Snapshot()
			if snap.ResumeRecords == 0 || snap.ResumeSeq == 0 {
				t.Errorf("resume gauges = %d/%d, want non-zero", snap.ResumeRecords, snap.ResumeSeq)
			}

			// Byte-for-byte: the persisted prefix plus the post-restore
			// publication equals the uninterrupted run's event sequence —
			// outages, incidents, bins and probe lifecycle alike.
			all := append(append([]events.Event{}, persisted...), evs2...)
			if len(all) != len(refEvents) {
				t.Fatalf("restarted run published %d events, uninterrupted run %d", len(all), len(refEvents))
			}
			for i := range all {
				got, want := marshalEvent(t, all[i]), marshalEvent(t, refEvents[i])
				if !bytes.Equal(got, want) {
					t.Fatalf("event %d diverges across the restart:\n got  %s\n want %s", i, got, want)
				}
			}
			// And a third boot would recover the identical history.
			final := st2.History()
			if final.LastSeq != uint64(len(refEvents)) {
				t.Errorf("durable seq %d, want %d", final.LastSeq, len(refEvents))
			}
		})
	}
}
