package server

import (
	"fmt"
	"net/http"
	"time"

	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/geo"
)

// bigSnapshot builds a snapshot with n resolved outages and 2n incidents of
// alternating kinds, so cursor windows and kind filtering compose.
func bigSnapshot(n int) *Snapshot {
	s := &Snapshot{At: t0}
	for i := 0; i < n; i++ {
		s.Resolved = append(s.Resolved, core.Outage{
			PoP: colo.FacilityPoP(colo.FacilityID(i + 1)), SignalPoP: colo.FacilityPoP(colo.FacilityID(i + 1)),
			Start: t0.Add(time.Duration(i) * time.Hour), End: t0.Add(time.Duration(i)*time.Hour + 30*time.Minute),
			AffectedASes: []bgp.ASN{bgp.ASN(100 + i)}, DivertedPaths: i + 1,
		})
		s.Incidents = append(s.Incidents,
			core.Incident{Time: t0, Kind: core.IncidentPoP, PoP: colo.FacilityPoP(colo.FacilityID(i + 1))},
			core.Incident{Time: t0, Kind: core.IncidentLink, PoP: colo.CityPoP(geo.CityID(i + 1))},
		)
	}
	return s
}

type pageResp struct {
	Count     int          `json:"count"`
	Total     int          `json:"total"`
	NextAfter uint64       `json:"next_after"`
	Outages   []OutageView `json:"outages"`
}

func outageIDs(outs []OutageView) []uint64 {
	ids := make([]uint64, len(outs))
	for i, o := range outs {
		ids[i] = o.ID
	}
	return ids
}

func TestOutagesPagination(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(bigSnapshot(5))

	// Page through with limit 2: 2+2+1, cursors chaining.
	var page pageResp
	getJSON(t, ts.URL+"/v1/outages?limit=2", http.StatusOK, &page)
	if page.Count != 2 || page.Total != 5 || page.NextAfter != 2 {
		t.Fatalf("page 1 = %+v", page)
	}
	if ids := outageIDs(page.Outages); ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("page 1 ids = %v", ids)
	}
	cursor := page.NextAfter
	page = pageResp{}
	getJSON(t, fmt.Sprintf("%s/v1/outages?limit=2&after=%d", ts.URL, cursor), http.StatusOK, &page)
	if page.Count != 2 || page.NextAfter != 4 {
		t.Fatalf("page 2 = %+v", page)
	}
	cursor = page.NextAfter
	page = pageResp{}
	getJSON(t, fmt.Sprintf("%s/v1/outages?limit=2&after=%d", ts.URL, cursor), http.StatusOK, &page)
	if page.Count != 1 || page.NextAfter != 0 {
		t.Fatalf("final page = %+v (next_after must be omitted at the end)", page)
	}
	if page.Outages[0].ID != 5 {
		t.Fatalf("final page ids = %v", outageIDs(page.Outages))
	}

	// Cursor at or past the end: empty page, not an error.
	page = pageResp{}
	getJSON(t, ts.URL+"/v1/outages?after=5", http.StatusOK, &page)
	if page.Count != 0 || page.Total != 5 {
		t.Errorf("past-end page = %+v", page)
	}
	page = pageResp{}
	getJSON(t, ts.URL+"/v1/outages?after=99", http.StatusOK, &page)
	if page.Count != 0 {
		t.Errorf("far-past-end page = %+v", page)
	}

	// No params: full history, ids still assigned.
	page = pageResp{}
	getJSON(t, ts.URL+"/v1/outages", http.StatusOK, &page)
	if page.Count != 5 || page.Outages[4].ID != 5 {
		t.Errorf("unpaginated = %+v", page)
	}
}

func TestPaginationRejectsMalformedCursors(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(bigSnapshot(3))

	for _, bad := range []string{
		"/v1/outages?limit=0",
		"/v1/outages?limit=-5",
		"/v1/outages?limit=abc",
		"/v1/outages?after=-1",
		"/v1/outages?after=xyz",
		"/v1/outages?after=1.5",
		"/v1/incidents?limit=0",
		"/v1/incidents?after=bogus",
	} {
		var body map[string]string
		getJSON(t, ts.URL+bad, http.StatusBadRequest, &body)
		if body["error"] == "" {
			t.Errorf("%s: 400 without JSON error body", bad)
		}
	}
}

func TestIncidentsPaginationWithKindFilter(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(bigSnapshot(4)) // ids 1..8, odd=pop even=link

	type incResp struct {
		Count     int            `json:"count"`
		Total     int            `json:"total"`
		NextAfter uint64         `json:"next_after"`
		Incidents []IncidentView `json:"incidents"`
	}
	// Unfiltered paging.
	var resp incResp
	getJSON(t, ts.URL+"/v1/incidents?limit=3", http.StatusOK, &resp)
	if resp.Count != 3 || resp.Total != 8 || resp.NextAfter != 3 {
		t.Fatalf("page 1 = %+v", resp)
	}
	resp = incResp{}
	getJSON(t, ts.URL+"/v1/incidents?limit=10&after=3", http.StatusOK, &resp)
	if resp.Count != 5 || resp.NextAfter != 0 {
		t.Fatalf("page 2 = %+v", resp)
	}

	// Kind filter selects within the cursor window; ids stay global, so the
	// cursor a client chains is still valid.
	resp = incResp{}
	getJSON(t, ts.URL+"/v1/incidents?kind=link&limit=2", http.StatusOK, &resp)
	if resp.Count != 2 || resp.Incidents[0].ID != 2 || resp.Incidents[1].ID != 4 {
		t.Fatalf("filtered page = %+v", resp)
	}
	if resp.NextAfter != 4 {
		t.Fatalf("filtered next_after = %d, want 4", resp.NextAfter)
	}
	cursor := resp.NextAfter
	resp = incResp{}
	getJSON(t, fmt.Sprintf("%s/v1/incidents?kind=link&limit=2&after=%d", ts.URL, cursor), http.StatusOK, &resp)
	if resp.Count != 2 || resp.Incidents[0].ID != 6 || resp.Incidents[1].ID != 8 {
		t.Fatalf("filtered page 2 = %+v", resp)
	}
}
