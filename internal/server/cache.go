package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// snapCache rides on a published snapshot: one ETag for the whole read
// model plus pre-marshaled response bodies. Bounded bodies (the open-outage
// view) are built at publish time on the ingestion goroutine; history-sized
// bodies (the no-cursor /v1/outages and /v1/incidents dumps in in-memory
// serving mode) memoize on first request so the bin barrier never does
// O(history) marshaling. The cache is immutable except through the mutex,
// and a snapshot without one (tests constructing Snapshot directly) simply
// serves uncached.
type snapCache struct {
	etag     string
	openBody []byte // full /v1/outages/open response

	mu            sync.Mutex
	outagesBody   []byte // no-query /v1/outages response (in-memory mode only)
	incidentsBody []byte // no-query /v1/incidents response (in-memory mode only)
}

// marshalBody renders a response body exactly as writeJSON would (trailing
// newline included), so cached and uncached responses are byte-identical.
func marshalBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil
	}
	return buf.Bytes()
}

// memoize returns the cached body under mu, building it at most once per
// snapshot.
func (c *snapCache) memoize(slot *[]byte, build func() []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if *slot == nil {
		*slot = build()
	}
	return *slot
}

// notModified applies conditional-request handling for a snapshot-derived
// read endpoint: it stamps the snapshot's ETag on the response and, when
// the client presented a matching If-None-Match, writes 304 and reports
// true. ETags are unique per process per published snapshot, so a match
// guarantees the client's cached body is current; snapshots without a
// cache (or requests without the header) always revalidate in full.
func notModified(w http.ResponseWriter, r *http.Request, c *snapCache) bool {
	if c == nil || c.etag == "" {
		return false
	}
	w.Header().Set("ETag", c.etag)
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == c.etag || cand == "*" {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}

// writeJSONBody writes a pre-marshaled 200 response. Falls back to the
// builder when the cached bytes are absent (marshal failure at publish).
func writeJSONBody(w http.ResponseWriter, body []byte, fallback func() any) {
	if body == nil {
		writeJSON(w, http.StatusOK, fallback())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
