package server

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

func testFeedSnapshot() *bgpstream.FeedSnapshot {
	return &bgpstream.FeedSnapshot{
		At:              t0,
		Silence:         30 * time.Minute,
		CollectorsKnown: 1,
		CollectorsLive:  1,
		SessionsKnown:   4,
		SessionsLive:    1,
		Collectors: []bgpstream.FeedStatus{
			{Collector: "rrc00", LastSeen: t0.Add(-time.Minute)},
		},
		Sessions: []bgpstream.FeedStatus{
			{Collector: "rrc00", PeerAS: 11, LastSeen: t0.Add(-time.Minute)},
			{Collector: "rrc00", PeerAS: 12, LastSeen: t0.Add(-time.Hour), SilentFor: time.Hour, Degraded: true},
			{Collector: "rrc00", PeerAS: 13, LastSeen: t0.Add(-time.Hour), SilentFor: time.Hour, Degraded: true},
			{Collector: "rrc00", PeerAS: 14, LastSeen: t0.Add(-time.Hour), SilentFor: time.Hour, Degraded: true},
		},
	}
}

// TestFeedsEndpoint checks /v1/health/feeds in both configurations: 404
// without a watchdog section, the full per-session view with one.
func TestFeedsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(testSnapshot())
	getJSON(t, ts.URL+"/v1/health/feeds", http.StatusNotFound, nil)

	snap := testSnapshot()
	snap.Feeds = testFeedSnapshot()
	srv.PublishSnapshot(snap)
	var v FeedHealthView
	getJSON(t, ts.URL+"/v1/health/feeds", http.StatusOK, &v)
	if v.Coverage != 0.25 {
		t.Errorf("coverage = %v, want 0.25", v.Coverage)
	}
	if v.SilenceSeconds != (30 * time.Minute).Seconds() {
		t.Errorf("silence = %v", v.SilenceSeconds)
	}
	if len(v.Sessions) != 4 || len(v.Collectors) != 1 {
		t.Fatalf("sessions/collectors = %d/%d, want 4/1", len(v.Sessions), len(v.Collectors))
	}
	if !v.Sessions[1].Degraded || v.Sessions[1].SilentForSeconds != 3600 {
		t.Errorf("session[1] = %+v, want degraded after 3600s", v.Sessions[1])
	}
}

// TestHealthzFeedFloor checks readiness withdrawal below the coverage floor.
func TestHealthzFeedFloor(t *testing.T) {
	srv := New(Options{FeedFloor: 0.5, Heartbeat: time.Hour})
	ts := newHTTPServer(t, srv)
	srv.SetReady(true)

	// No watchdog section: the floor does not apply.
	srv.PublishSnapshot(testSnapshot())
	var body map[string]any
	getJSON(t, ts+"/healthz", http.StatusOK, &body)

	// Coverage 0.25 < floor 0.5: degraded.
	snap := testSnapshot()
	snap.Feeds = testFeedSnapshot()
	srv.PublishSnapshot(snap)
	getJSON(t, ts+"/healthz", http.StatusServiceUnavailable, &body)
	if body["status"] != "degraded" {
		t.Errorf("status = %q, want degraded", body["status"])
	}
	if body["feed_coverage"] != 0.25 {
		t.Errorf("feed_coverage = %v, want 0.25", body["feed_coverage"])
	}

	// Coverage recovers above the floor: healthy again.
	snap = testSnapshot()
	snap.Feeds = testFeedSnapshot()
	snap.Feeds.SessionsLive = 3
	srv.PublishSnapshot(snap)
	getJSON(t, ts+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("status = %q, want ok", body["status"])
	}
}

// newHTTPServer is a lighter helper than newTestServer for custom Options.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestStatsServingTelemetry drives real requests and a live SSE delivery
// through an instrumented server, then checks every new /v1/stats section:
// per-endpoint latency, SSE delivery lag, per-subscriber queue depths with a
// stalled subscriber's drops, and the feed-health block.
func TestStatsServingTelemetry(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	defer bus.Close()
	hs := metrics.NewHTTPStats()
	fs := &metrics.FeedStats{}
	fs.Degraded.Add(2)
	fs.Recovered.Add(1)
	srv := New(Options{
		Bus:       bus,
		Service:   svc,
		HTTP:      hs,
		Feed:      fs,
		Heartbeat: time.Hour,
	})
	ts := newHTTPServer(t, srv)
	snap := testSnapshot()
	snap.Feeds = testFeedSnapshot()
	srv.PublishSnapshot(snap)
	srv.SetReady(true)

	// A stalled subscriber: never drained, queue capacity 1.
	stalled := bus.Subscribe(1)
	defer stalled.Close()

	// Live SSE client.
	resp, err := http.Get(ts + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	for { // consume the opening comment
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\n" {
			break
		}
	}

	for i := 0; i < 3; i++ {
		bus.Publish(events.Event{Kind: events.KindBinClosed, Time: t0})
	}
	// Read one delivered frame so at least one lag observation lands.
	if _, err := rd.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hs.Snapshot().SSELag.Count >= 1 })

	// Some plain API traffic for the endpoint histograms.
	getJSON(t, ts+"/v1/outages", http.StatusOK, nil)
	getJSON(t, ts+"/v1/outages", http.StatusOK, nil)
	http.Get(ts + "/nope") // unmatched route

	var sv StatsView
	getJSON(t, ts+"/v1/stats", http.StatusOK, &sv)

	if sv.HTTP == nil {
		t.Fatal("stats missing http section")
	}
	byEndpoint := map[string]EndpointView{}
	for _, e := range sv.HTTP.Endpoints {
		byEndpoint[e.Endpoint] = e
	}
	if e, ok := byEndpoint["GET /v1/outages"]; !ok || e.Latency.Count != 2 || e.Statuses["2xx"] != 2 {
		t.Errorf("outages endpoint stats = %+v", byEndpoint["GET /v1/outages"])
	}
	if _, ok := byEndpoint["unmatched"]; !ok {
		t.Error("unmatched route not recorded")
	}
	if sv.HTTP.SSELag == nil || sv.HTTP.SSELag.Count < 1 {
		t.Errorf("sse lag = %+v, want >= 1 observation", sv.HTTP.SSELag)
	}

	if len(sv.Subscribers) < 2 {
		t.Fatalf("subscribers = %+v, want the stalled one and the SSE client", sv.Subscribers)
	}
	var foundStalled bool
	for _, d := range sv.Subscribers {
		if d.ID == stalled.ID() {
			foundStalled = true
			if d.Depth != 1 || d.Cap != 1 || d.Dropped != 2 {
				t.Errorf("stalled subscriber = %+v, want depth 1/1 dropped 2", d)
			}
		}
	}
	if !foundStalled {
		t.Error("stalled subscriber missing from /v1/stats")
	}

	if sv.Feeds == nil {
		t.Fatal("stats missing feeds section")
	}
	if sv.Feeds.Coverage != 0.25 || sv.Feeds.DegradedEvents != 2 || sv.Feeds.RecoveredEvents != 1 {
		t.Errorf("feeds = %+v, want coverage 0.25, degraded 2, recovered 1", sv.Feeds)
	}
}

// TestMetricsServingExposition checks the new Prometheus series render.
func TestMetricsServingExposition(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	defer bus.Close()
	hs := metrics.NewHTTPStats()
	fs := &metrics.FeedStats{}
	fs.Degraded.Add(5)
	srv := New(Options{Bus: bus, Service: svc, HTTP: hs, Feed: fs, Heartbeat: time.Hour})
	ts := newHTTPServer(t, srv)
	snap := testSnapshot()
	snap.Feeds = testFeedSnapshot()
	srv.PublishSnapshot(snap)

	sub := bus.Subscribe(1)
	defer sub.Close()
	getJSON(t, ts+"/v1/outages", http.StatusOK, nil)

	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		"kepler_feed_coverage_ratio 0.25",
		"kepler_feed_sessions_known 4",
		"kepler_feed_sessions_live 1",
		"kepler_feed_collectors_known 1",
		"kepler_feed_degraded_total 5",
		"kepler_feed_recovered_total 0",
		`kepler_http_request_seconds_bucket{endpoint="GET /v1/outages"`,
		`kepler_http_request_seconds_count{endpoint="GET /v1/outages"} 1`,
		"# TYPE kepler_sse_delivery_lag_seconds histogram",
		"kepler_sse_delivery_lag_seconds_count 0",
		`kepler_sse_queue_depth{subscriber="`,
		`kepler_sse_queue_dropped_total{subscriber="`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
