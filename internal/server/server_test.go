package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

var t0 = time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC)

func testSnapshot() *Snapshot {
	return &Snapshot{
		At: t0,
		Resolved: []core.Outage{{
			PoP: colo.FacilityPoP(3), SignalPoP: colo.CityPoP(2),
			Start: t0.Add(-2 * time.Hour), End: t0.Add(-time.Hour),
			Confirmed: true, DataPlaneChecked: true,
			AffectedASes: []bgp.ASN{11, 12}, DivertedPaths: 5, Merged: 1,
		}},
		Open: []core.OutageStatus{{
			PoP: colo.IXPPoP(9), SignalPoPs: []colo.PoP{colo.IXPPoP(9)},
			Start: t0.Add(-10 * time.Minute), LastSignal: t0,
			AffectedASes: []bgp.ASN{21, 22, 23}, WaitingPaths: 7, ReturnedPaths: 1,
		}},
		Incidents: []core.Incident{
			{Time: t0, Kind: core.IncidentPoP, PoP: colo.FacilityPoP(3), SignalPoP: colo.FacilityPoP(3), AffectedASes: []bgp.ASN{11, 12}, Links: 4, Paths: 5},
			{Time: t0, Kind: core.IncidentLink, PoP: colo.CityPoP(2), SignalPoP: colo.CityPoP(2), AffectedASes: []bgp.ASN{31}, Links: 1, Paths: 1},
		},
	}
}

func newTestServer(t *testing.T, svc *metrics.ServiceStats, bus *events.Bus) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{
		Bus:     bus,
		Service: svc,
		Ingest: func() metrics.IngestSnapshot {
			return metrics.IngestSnapshot{Records: 1234, Ops: 5678, Bins: 9}
		},
		Namer: func(p colo.PoP) string {
			if p == colo.FacilityPoP(3) {
				return "Test Facility"
			}
			return ""
		},
		Heartbeat: time.Hour, // keep pings out of framing assertions
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
}

func TestHealthzReadiness(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	var body map[string]any
	getJSON(t, ts.URL+"/healthz", http.StatusServiceUnavailable, &body)
	if body["status"] != "starting" {
		t.Errorf("status = %q", body["status"])
	}
	srv.SetReady(true)
	srv.PublishSnapshot(testSnapshot())
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("status = %q", body["status"])
	}
	if _, ok := body["last_bin_close"]; !ok {
		t.Error("healthz missing last_bin_close after a published snapshot")
	}
}

func TestOutagesEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(testSnapshot())

	var resp struct {
		AsOf    time.Time    `json:"as_of"`
		Count   int          `json:"count"`
		Outages []OutageView `json:"outages"`
	}
	getJSON(t, ts.URL+"/v1/outages", http.StatusOK, &resp)
	if resp.Count != 1 || len(resp.Outages) != 1 {
		t.Fatalf("count = %d, outages = %d", resp.Count, len(resp.Outages))
	}
	o := resp.Outages[0]
	if o.PoP.Ref != "facility:3" || o.PoP.Kind != "facility" || o.PoP.ID != 3 {
		t.Errorf("pop = %+v", o.PoP)
	}
	if o.PoP.Name != "Test Facility" {
		t.Errorf("namer not applied: %+v", o.PoP)
	}
	if o.SignalPoP.Ref != "city:2" {
		t.Errorf("signal pop = %+v", o.SignalPoP)
	}
	if o.DurationSeconds != 3600 {
		t.Errorf("duration = %v", o.DurationSeconds)
	}
	if !o.Confirmed || len(o.AffectedASes) != 2 || o.DivertedPaths != 5 || o.Merged != 1 {
		t.Errorf("outage view = %+v", o)
	}
	if !resp.AsOf.Equal(t0) {
		t.Errorf("as_of = %v", resp.AsOf)
	}
}

func TestOpenOutagesEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(testSnapshot())

	var resp struct {
		Count   int              `json:"count"`
		Outages []OpenOutageView `json:"outages"`
	}
	getJSON(t, ts.URL+"/v1/outages/open", http.StatusOK, &resp)
	if resp.Count != 1 {
		t.Fatalf("count = %d", resp.Count)
	}
	o := resp.Outages[0]
	if o.PoP.Ref != "ixp:9" || o.WaitingPaths != 7 || o.ReturnedPaths != 1 {
		t.Errorf("open view = %+v", o)
	}
	if len(o.SignalPoPs) != 1 || o.SignalPoPs[0].Ref != "ixp:9" {
		t.Errorf("signal pops = %+v", o.SignalPoPs)
	}
}

func TestIncidentsEndpointAndFilter(t *testing.T) {
	svc := &metrics.ServiceStats{}
	srv, ts := newTestServer(t, svc, nil)
	srv.PublishSnapshot(testSnapshot())

	var resp struct {
		Count     int            `json:"count"`
		Incidents []IncidentView `json:"incidents"`
	}
	getJSON(t, ts.URL+"/v1/incidents", http.StatusOK, &resp)
	if resp.Count != 2 {
		t.Fatalf("count = %d", resp.Count)
	}
	getJSON(t, ts.URL+"/v1/incidents?kind=pop", http.StatusOK, &resp)
	if resp.Count != 1 || resp.Incidents[0].Kind != "pop" {
		t.Fatalf("filtered = %+v", resp)
	}
	var errBody map[string]string
	getJSON(t, ts.URL+"/v1/incidents?kind=bogus", http.StatusBadRequest, &errBody)
	if errBody["error"] == "" {
		t.Error("400 without error message")
	}
	if svc.HTTPErrors.Load() != 1 {
		t.Errorf("error counter = %d", svc.HTTPErrors.Load())
	}
	if svc.HTTPRequests.Load() != 3 {
		t.Errorf("request counter = %d", svc.HTTPRequests.Load())
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	defer bus.Close()
	srv, ts := newTestServer(t, svc, bus)
	srv.PublishSnapshot(testSnapshot())
	srv.SetReady(true)
	bus.Publish(events.Event{Kind: events.KindBinClosed})

	var resp StatsView
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &resp)
	if !resp.Ready || resp.OpenCount != 1 || resp.Resolved != 1 || resp.Incidents != 2 {
		t.Errorf("stats = %+v", resp)
	}
	if resp.Ingest == nil || resp.Ingest.Records != 1234 {
		t.Errorf("ingest = %+v", resp.Ingest)
	}
	if resp.Bus == nil || resp.Bus.Published != 1 {
		t.Errorf("bus = %+v", resp.Bus)
	}
	if resp.Service == nil || resp.Service.HTTPRequests < 1 {
		t.Errorf("service = %+v", resp.Service)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, ts := newTestServer(t, nil, nil)
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/outages", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/outages = %d", resp.StatusCode)
	}
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id, event, data string
	comment         bool
}

// readFrame reads one SSE frame (terminated by a blank line).
func readFrame(r *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, ":"):
			f.comment, seen = true, true
		case strings.HasPrefix(line, "id: "):
			f.id, seen = line[4:], true
		case strings.HasPrefix(line, "event: "):
			f.event, seen = line[7:], true
		case strings.HasPrefix(line, "data: "):
			f.data, seen = line[6:], true
		}
	}
}

func TestSSEFraming(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	srv, ts := newTestServer(t, svc, bus)
	_ = srv

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// Opening comment frame arrives before any event.
	f, err := readFrame(br)
	if err != nil || !f.comment {
		t.Fatalf("first frame = %+v, %v", f, err)
	}

	pop := colo.FacilityPoP(3)
	bus.Publish(events.Event{Time: t0, Kind: events.KindOutageOpened, Status: &core.OutageStatus{PoP: pop, WaitingPaths: 4}})
	bus.Publish(events.Event{Time: t0, Kind: events.KindOutageResolved, Outage: &core.Outage{PoP: pop, Start: t0, End: t0.Add(time.Hour)}})

	f, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != "1" || f.event != "outage_opened" {
		t.Fatalf("frame = %+v", f)
	}
	var ev EventView
	if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
		t.Fatalf("data not JSON: %v (%q)", err, f.data)
	}
	if ev.Seq != 1 || ev.Kind != "outage_opened" || ev.Status == nil || ev.Status.PoP.Ref != "facility:3" {
		t.Errorf("event view = %+v", ev)
	}
	if ev.Status.PoP.Name != "Test Facility" {
		t.Errorf("namer not applied on SSE payload: %+v", ev.Status.PoP)
	}

	f, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != "2" || f.event != "outage_resolved" {
		t.Fatalf("frame = %+v", f)
	}

	// Bus close ends the stream with a bye frame and EOF.
	bus.Close()
	f, err = readFrame(br)
	if err != nil || f.event != "bye" {
		t.Fatalf("closing frame = %+v, %v", f, err)
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("stream not terminated: %v", err)
	}
}

func TestSSEKindFilter(t *testing.T) {
	bus := events.New(nil)
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)

	resp, err := http.Get(ts.URL + "/v1/events?kinds=outage_resolved")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := readFrame(br); err != nil { // opening comment
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		bus.Publish(events.Event{Kind: events.KindBinClosed, Time: t0})
	}
	bus.Publish(events.Event{Kind: events.KindOutageResolved, Time: t0, Outage: &core.Outage{PoP: colo.FacilityPoP(1)}})
	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.event != "outage_resolved" || f.id != "6" {
		t.Fatalf("filter leaked: %+v", f)
	}
}

// TestSSEManySubscribersSlowConsumer is the acceptance scenario: 8
// concurrent SSE streams, one of which never reads. The stalled client's
// bounded queue overflows and its events are dropped (counted in
// /v1/stats); the reading clients keep receiving everything. Run with
// -race.
func TestSSEManySubscribersSlowConsumer(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	srv, ts := newTestServer(t, svc, bus)
	srv.SetReady(true)

	const readers = 7
	type tally struct {
		frames int
		lastID string
	}
	results := make([]tally, readers)
	var wg sync.WaitGroup

	// 7 live readers drain their streams until the bus closes.
	for i := 0; i < readers; i++ {
		resp, err := http.Get(ts.URL + "/v1/events")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, resp *http.Response) {
			defer wg.Done()
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			for {
				f, err := readFrame(br)
				if err != nil {
					return
				}
				if f.event == "bye" {
					return
				}
				if !f.comment {
					results[i].frames++
					results[i].lastID = f.id
				}
			}
		}(i, resp)
	}

	// The slow consumer opens the stream and never reads past the headers.
	slow, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}

	// Wait until all 8 handlers registered their subscriptions.
	deadline := time.Now().Add(5 * time.Second)
	for bus.Stats().Subscribers < readers+1 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d", bus.Stats().Subscribers, readers+1)
		}
		time.Sleep(time.Millisecond)
	}

	// Publish until the stalled client demonstrably dropped events. The
	// publisher never blocks (that is the point of the bounded queues), so
	// the cap only guards against a regression.
	const maxEvents = 500000
	published := 0
	for svc.EventsDropped.Load() == 0 {
		if published >= maxEvents {
			t.Fatal("no drops after 500k events: queues unbounded?")
		}
		bus.Publish(events.Event{Kind: events.KindBinClosed, Time: t0})
		published++
	}

	var stats StatsView
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Service == nil || stats.Service.EventsDropped == 0 {
		t.Errorf("drops not reported in /v1/stats: %+v", stats.Service)
	}
	if stats.Service.SSEActive != readers+1 {
		t.Errorf("sse_active = %d, want %d", stats.Service.SSEActive, readers+1)
	}
	if stats.Bus == nil || stats.Bus.Dropped == 0 {
		t.Errorf("bus drops missing: %+v", stats.Bus)
	}

	// Release everything: kill the stalled connection, close the bus, and
	// let the readers drain to their bye frames.
	slow.Body.Close()
	bus.Close()
	wg.Wait()
	for i, r := range results {
		if r.frames == 0 {
			t.Errorf("reader %d starved while slow consumer stalled", i)
		}
	}
}
