package server

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
	"kepler/internal/store"
)

// buildPagedStore persists n bins of resolved outages and 2n incidents
// through a small-threshold store so history lands in sealed segments, and
// returns the store plus the equivalent in-memory history.
func buildPagedStore(t *testing.T, n int) (*store.Store, *metrics.StoreStats, []core.Outage, []core.Incident) {
	t.Helper()
	m := &metrics.StoreStats{}
	st, err := store.Open(store.Options{Dir: t.TempDir(), CompactBytes: 1, ReadCache: 8, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	var outs []core.Outage
	var incs []core.Incident
	seq := uint64(0)
	add := func(ev events.Event) {
		seq++
		ev.Seq = seq
		if err := st.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		bin := t0.Add(time.Duration(i+1) * time.Minute)
		o := core.Outage{
			PoP: colo.FacilityPoP(colo.FacilityID(i + 1)), SignalPoP: colo.FacilityPoP(colo.FacilityID(i + 1)),
			Start: bin.Add(-30 * time.Minute), End: bin,
			AffectedASes: []bgp.ASN{bgp.ASN(100 + i)}, DivertedPaths: i + 1,
		}
		i1 := core.Incident{Time: bin, Kind: core.IncidentPoP, PoP: colo.FacilityPoP(colo.FacilityID(i + 1))}
		i2 := core.Incident{Time: bin, Kind: core.IncidentLink, PoP: colo.CityPoP(2)}
		add(events.Event{Time: bin, Kind: events.KindOutageResolved, Outage: &o})
		add(events.Event{Time: bin, Kind: events.KindIncident, Incident: &i1})
		add(events.Event{Time: bin, Kind: events.KindIncident, Incident: &i2})
		add(events.Event{Time: bin, Kind: events.KindBinClosed})
		outs = append(outs, o)
		incs = append(incs, i1, i2)
	}
	return st, m, outs, incs
}

// TestDiskPagedServingEquivalence is the serving-mode contract: a server
// paging history off sealed store segments answers every cursor page —
// including kind-filtered incident scans and deep cursors — byte-equally
// to one serving the same history from in-memory slices.
func TestDiskPagedServingEquivalence(t *testing.T) {
	const n = 9
	st, m, outs, incs := buildPagedStore(t, n)

	mem := New(Options{})
	mem.PublishSnapshot(BuildSnapshotFrom(t0, nil, outs, incs))
	tsMem := httptest.NewServer(mem.Handler())
	defer tsMem.Close()

	paged := New(Options{Store: func() metrics.StoreSnapshot { return m.Snapshot() }})
	paged.PublishSnapshot(BuildSnapshotPaged(t0, nil, st, len(outs), len(incs)))
	tsPaged := httptest.NewServer(paged.Handler())
	defer tsPaged.Close()

	get := func(ts *httptest.Server, path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	paths := []string{
		"/v1/outages",
		"/v1/outages?limit=4",
		"/v1/outages?after=4&limit=3",
		fmt.Sprintf("/v1/outages?after=%d", n-1),
		fmt.Sprintf("/v1/outages?after=%d", n+5),
		"/v1/incidents",
		"/v1/incidents?limit=5",
		"/v1/incidents?after=7&limit=5",
		"/v1/incidents?kind=pop",
		"/v1/incidents?kind=link&limit=3",
		"/v1/incidents?kind=operator",
	}
	for _, p := range paths {
		if memBody, pagedBody := get(tsMem, p), get(tsPaged, p); string(memBody) != string(pagedBody) {
			t.Errorf("GET %s diverges between serving modes:\n mem   %s\n paged %s", p, memBody, pagedBody)
		}
	}

	// Deep pages really came off segment files, not resident slices.
	if m.Snapshot().SegmentReads == 0 {
		t.Error("paged serving never touched a segment file")
	}

	// Stats and /metrics report history totals, not resident-slice sizes.
	var sv StatsView
	getJSON(t, tsPaged.URL+"/v1/stats", 200, &sv)
	if sv.Resolved != n || sv.Incidents != 2*n {
		t.Errorf("paged stats totals = %d/%d, want %d/%d", sv.Resolved, sv.Incidents, n, 2*n)
	}
	mBody := get(tsPaged, "/metrics")
	wantLine := fmt.Sprintf("kepler_resolved_outages_total %d", n)
	if !contains(mBody, wantLine) {
		t.Errorf("/metrics missing %q", wantLine)
	}
	if !contains(mBody, "kepler_store_segment_reads_total") {
		t.Error("/metrics missing segment read counter")
	}
}

func contains(b []byte, sub string) bool {
	return len(b) >= len(sub) && (string(b) == sub || indexOf(b, sub) >= 0)
}

func indexOf(b []byte, sub string) int {
	for i := 0; i+len(sub) <= len(b); i++ {
		if string(b[i:i+len(sub)]) == sub {
			return i
		}
	}
	return -1
}

// TestETagNotModified pins the conditional-read contract: every published
// snapshot has one ETag; If-None-Match on an unchanged snapshot costs a
// 304 with no body, and a new publish invalidates it.
func TestETagNotModified(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(testSnapshot())

	condGet := func(path, inm string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	for _, path := range []string{"/v1/outages", "/v1/outages/open", "/v1/incidents", "/v1/probes"} {
		resp, body := condGet(path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("GET %s has no ETag", path)
		}
		resp2, body2 := condGet(path, etag)
		if resp2.StatusCode != http.StatusNotModified {
			t.Errorf("conditional GET %s = %d, want 304", path, resp2.StatusCode)
		}
		if len(body2) != 0 {
			t.Errorf("304 for %s carried a %d-byte body", path, len(body2))
		}
		// A stale ETag (different snapshot) revalidates in full.
		resp3, body3 := condGet(path, `"dead-beef"`)
		if resp3.StatusCode != http.StatusOK || string(body3) != string(body) {
			t.Errorf("mismatched If-None-Match for %s: status %d, body equal=%v",
				path, resp3.StatusCode, string(body3) == string(body))
		}
		if resp3.Header.Get("ETag") != etag {
			t.Errorf("ETag changed without a publish on %s", path)
		}
	}

	// New snapshot → new ETag; old validator now misses.
	resp, _ := condGet("/v1/outages", "")
	oldTag := resp.Header.Get("ETag")
	srv.PublishSnapshot(testSnapshot())
	resp2, _ := condGet("/v1/outages", oldTag)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("stale validator after republish = %d, want 200", resp2.StatusCode)
	}
	if newTag := resp2.Header.Get("ETag"); newTag == oldTag {
		t.Error("republish did not mint a new ETag")
	}
}

// TestPremarshalMatchesUncached pins that the cached no-query bodies are
// byte-identical to what the uncached path would serve (the memoized bytes
// are built through the same encoder).
func TestPremarshalMatchesUncached(t *testing.T) {
	srv, ts := newTestServer(t, nil, nil)
	srv.PublishSnapshot(bigSnapshot(6))
	read := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	// First hit memoizes; second serves the cached bytes. ?after=0 is the
	// same page but bypasses the no-query cache.
	first := read("/v1/outages")
	second := read("/v1/outages")
	uncached := read("/v1/outages?after=0")
	if first != second || first != uncached {
		t.Errorf("cached/uncached bodies diverge:\n 1st %s\n 2nd %s\n unc %s", first, second, uncached)
	}
	if a, b := read("/v1/outages/open"), read("/v1/outages/open"); a != b {
		t.Error("open body unstable across reads")
	}
	if a, b := read("/v1/incidents"), read("/v1/incidents?after=0"); a != b {
		t.Errorf("incidents cached/uncached diverge:\n %s\n %s", a, b)
	}
}

// TestSSERelayTierServing pins the relay-backed /v1/events path: many
// clients, one bus subscriber, coalesced writes preserving order, kind
// filters, and Last-Event-ID resume through the relay.
func TestSSERelayTierServing(t *testing.T) {
	svc := &metrics.ServiceStats{}
	bus := events.New(svc, events.WithRing(1024))
	relayStats := &metrics.RelayStats{}
	relay := events.NewRelay(bus, events.RelayOptions{Metrics: relayStats})
	defer relay.Close()
	srv := New(Options{Bus: bus, Relay: relay, Service: svc, HTTP: metrics.NewHTTPStats(), Heartbeat: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 5
	const n = 40
	readers := make([]*bufio.Reader, clients)
	bodies := make([]io.Closer, clients)
	for i := range readers {
		resp := sseGet(t, ts.URL+"/v1/events", 0)
		readers[i] = bufio.NewReader(resp.Body)
		bodies[i] = resp.Body
		if f, err := readFrame(readers[i]); err != nil || !f.comment {
			t.Fatalf("client %d opening frame = %+v, %v", i, f, err)
		}
	}
	defer func() {
		for _, b := range bodies {
			b.Close()
		}
	}()
	// One filtered client rides along.
	respF := sseGet(t, ts.URL+"/v1/events?kinds=outage_resolved", 0)
	defer respF.Body.Close()
	brF := bufio.NewReader(respF.Body)
	if f, err := readFrame(brF); err != nil || !f.comment {
		t.Fatalf("filtered opening frame = %+v, %v", f, err)
	}

	// All clients attached: the ingestion path still sees one subscriber.
	if st := bus.Stats(); st.Subscribers != 1 {
		t.Fatalf("bus subscribers with %d SSE clients = %d, want 1 (relay tier)", clients+1, st.Subscribers)
	}

	publishOpened(bus, n)
	bus.Publish(events.Event{Time: t0, Kind: events.KindOutageResolved, Outage: &core.Outage{
		PoP: colo.FacilityPoP(3), SignalPoP: colo.FacilityPoP(3), Start: t0.Add(-time.Hour), End: t0,
	}})

	// A burst much larger than one coalesced batch arrives in order with
	// contiguous ids on every client.
	for i, br := range readers {
		ids := collectIDs(t, br, n+1)
		for j, id := range ids {
			if id != uint64(j)+1 {
				t.Fatalf("client %d frame %d has id %d; coalescing broke ordering", i, j, id)
			}
		}
	}
	fIDs := collectIDs(t, brF, 1)
	if fIDs[0] != n+1 {
		t.Errorf("filtered client got id %d, want %d (only the resolved event)", fIDs[0], n+1)
	}

	// Resume through the relay: a new client presents Last-Event-ID and
	// receives exactly the missed suffix.
	respR := sseGet(t, ts.URL+"/v1/events", uint64(n-3))
	defer respR.Body.Close()
	brR := bufio.NewReader(respR.Body)
	if f, err := readFrame(brR); err != nil || !f.comment {
		t.Fatalf("resume opening frame = %+v, %v", f, err)
	}
	rIDs := collectIDs(t, brR, 4)
	if !reflect.DeepEqual(rIDs, []uint64{uint64(n) - 2, uint64(n) - 1, uint64(n), uint64(n) + 1}) {
		t.Errorf("relay resume ids = %v", rIDs)
	}

	// The relay tier shows up in /v1/stats with deliveries and clients.
	var sv StatsView
	getJSON(t, ts.URL+"/v1/stats", 200, &sv)
	if sv.Relay == nil {
		t.Fatal("stats missing relay section")
	}
	if sv.Relay.Clients == 0 || sv.Relay.Deliveries == 0 {
		t.Errorf("relay stats = %+v, want live clients and deliveries", sv.Relay)
	}
	if sv.Relay.UpstreamDropped != 0 {
		t.Errorf("relay upstream dropped = %d, want 0", sv.Relay.UpstreamDropped)
	}
	if sv.Bus.Subscribers != 1 {
		t.Errorf("stats bus subscribers = %d, want 1", sv.Bus.Subscribers)
	}
}

// TestSSECoalescedBurstLagObserved pins that per-event delivery lag is
// still observed per event (not per batch) after write coalescing.
func TestSSECoalescedBurstLagObserved(t *testing.T) {
	hs := metrics.NewHTTPStats()
	bus := events.New(nil)
	defer bus.Close()
	srv := New(Options{Bus: bus, HTTP: hs, Heartbeat: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := sseGet(t, ts.URL+"/v1/events", 0)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if f, err := readFrame(br); err != nil || !f.comment {
		t.Fatalf("opening frame = %+v, %v", f, err)
	}
	const n = 25
	publishOpened(bus, n)
	collectIDs(t, br, n)
	if got := hs.Snapshot().SSELag.Count; got != n {
		t.Errorf("SSE lag observations = %d, want %d (one per event, coalesced or not)", got, n)
	}
}
