package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/live"
	"kepler/internal/metrics"
	"kepler/internal/pipeline"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

// TestLiveServiceMatchesBatch is the serving layer's correctness contract:
// a daemon-wired stack (replayed archive → sharded engine with hooks →
// event bus → HTTP server) must report over the API exactly the outages
// and incidents the batch Detector produces for the same archive, and the
// SSE stream must deliver the same resolved-outage sequence. Run with
// -race: ingestion, snapshot publication and API reads overlap throughout.
func TestLiveServiceMatchesBatch(t *testing.T) {
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stack := pipeline.Build(w, 77)
	var target colo.FacilityID
	bestN := 0
	for _, f := range stack.Map.Facilities() {
		if _, n := stack.Map.Trackable(f.ID, stack.Dict.Covers); n > bestN {
			target, bestN = f.ID, n
		}
	}
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(14 * 24 * time.Hour)
	ev := simulate.Event{
		Kind: simulate.EvFacility, Facility: target,
		Start:    start.Add(5 * 24 * time.Hour),
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(w, []simulate.Event{ev}, start, end, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.ReportUnresolved = true // no data plane in replay mode
	wantOuts, wantIncs := stack.Run(res.Records, cfg, nil)
	if len(wantOuts) == 0 {
		t.Fatal("batch reference detected nothing; equivalence would be vacuous")
	}

	// Daemon wiring, as cmd/keplerd assembles it.
	svc := &metrics.ServiceStats{}
	bus := events.New(svc)
	eng := stack.NewEngine(cfg, 4)
	defer eng.Close()
	srv := New(Options{
		Bus:     bus,
		Service: svc,
		Ingest:  func() metrics.IngestSnapshot { return eng.Stats() },
		Namer:   w.PoPName,
		// The SSE queue receives every kind (filtering happens at write
		// time); size it so a descheduled writer cannot lose a resolved
		// event under -race slowdowns.
		SSEBuffer: 1 << 14,
	})
	var resolved []core.Outage
	hooks := events.EngineHooks(bus)
	publishResolved := hooks.OutageResolved
	hooks.OutageResolved = func(o core.Outage) {
		publishResolved(o)
		resolved = append(resolved, o)
	}
	publishBin := hooks.BinClosed
	hooks.BinClosed = func(binEnd time.Time) {
		publishBin(binEnd)
		srv.PublishSnapshot(BuildSnapshot(binEnd, eng, resolved))
	}
	eng.SetHooks(hooks)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.SetReady(true)

	// A bus-level collector witnesses the full resolved-event sequence
	// (big queue: it must not drop), while an SSE client consumes the same
	// stream over HTTP. API polling runs concurrently to assert reads
	// never disturb ingestion.
	collector := bus.Subscribe(4096)
	var busResolved []core.Outage
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ev := range collector.Events() {
			if ev.Kind == events.KindOutageResolved {
				busResolved = append(busResolved, *ev.Outage)
			}
		}
	}()
	sseResp, err := http.Get(ts.URL + "/v1/events?kinds=outage_resolved")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sseDone := make(chan []EventView)
	go func() {
		br := bufio.NewReader(sseResp.Body)
		var got []EventView
		for {
			f, err := readFrame(br)
			if err != nil || f.event == "bye" {
				sseDone <- got
				return
			}
			if f.comment {
				continue
			}
			var ev EventView
			if json.Unmarshal([]byte(f.data), &ev) == nil {
				got = append(got, ev)
			}
		}
	}()
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/outages")
			if err == nil {
				resp.Body.Close()
			}
			resp, err = http.Get(ts.URL + "/v1/stats")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	// Ingest the archive at maximum replay speed.
	src := live.NewReplayer(bgpstream.NewSliceSource(res.Records), 0)
	pres, err := live.Pump(context.Background(), src, eng)
	if err != nil {
		t.Fatal(err)
	}
	srv.PublishSnapshot(BuildSnapshot(pres.Last, eng, resolved))
	close(pollStop)
	<-pollDone
	bus.Close()
	<-collectorDone

	// 1. The engine's own output matched batch (sanity for the harness).
	if !reflect.DeepEqual(pres.Outages, wantOuts) {
		t.Errorf("pump output diverges from batch:\n live:  %+v\n batch: %+v", pres.Outages, wantOuts)
	}
	// 2. The hook-accumulated state equals batch.
	if !reflect.DeepEqual(resolved, wantOuts) {
		t.Errorf("hook accumulation diverges from batch")
	}
	// 3. The bus delivered the same resolved sequence.
	if !reflect.DeepEqual(busResolved, wantOuts) {
		t.Errorf("bus resolved events diverge: %d vs %d", len(busResolved), len(wantOuts))
	}
	if collector.Dropped() != 0 {
		t.Fatalf("collector dropped %d events; equivalence sample incomplete", collector.Dropped())
	}

	// 4. The API reports exactly the batch outages, rendered through the
	// server's own views.
	var apiOuts struct {
		Count   int          `json:"count"`
		Outages []OutageView `json:"outages"`
	}
	getJSON(t, ts.URL+"/v1/outages", http.StatusOK, &apiOuts)
	wantViews := make([]OutageView, len(wantOuts))
	for i := range wantOuts {
		wantViews[i] = srv.outageView(uint64(i)+1, &wantOuts[i])
	}
	if !reflect.DeepEqual(apiOuts.Outages, wantViews) {
		t.Errorf("API outages diverge:\n api:   %+v\n batch: %+v", apiOuts.Outages, wantViews)
	}

	// 5. Incidents line up too.
	var apiIncs struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/v1/incidents", http.StatusOK, &apiIncs)
	if apiIncs.Count != len(wantIncs) {
		t.Errorf("API incidents = %d, batch = %d", apiIncs.Count, len(wantIncs))
	}

	// 6. The SSE stream saw the same resolved outages (same order, same
	// epicenters and windows).
	sse := <-sseDone
	if len(sse) != len(wantOuts) {
		t.Fatalf("SSE resolved events = %d, want %d", len(sse), len(wantOuts))
	}
	for i, ev := range sse {
		// SSE payloads carry no history ordinal (the frame id is the bus
		// sequence), so compare against an id-less view.
		want := srv.outageView(0, &wantOuts[i])
		if ev.Outage == nil || !reflect.DeepEqual(*ev.Outage, want) {
			t.Errorf("SSE event %d diverges:\n sse:   %+v\n batch: %+v", i, ev.Outage, want)
		}
	}

	// 7. Ingestion stats flowed through to /v1/stats.
	var stats StatsView
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Ingest == nil || stats.Ingest.Records != int64(len(res.Records)) {
		t.Errorf("ingest stats = %+v, want %d records", stats.Ingest, len(res.Records))
	}
}
