package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"kepler/internal/metrics"
)

// writeHistogram emits one full Prometheus histogram metric family: the
// HELP/TYPE preamble followed by a single (optionally labeled) series.
func writeHistogram(b *strings.Builder, name, help, labels string, h metrics.HistogramSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(b, name, labels, h)
}

// writeHistogramSeries emits the _bucket/_sum/_count sample lines of one
// histogram series in the text exposition format: bucket counts are
// cumulative, the le values are bound durations in seconds, and a +Inf
// bucket always closes the series. labels, if non-empty, is a
// ready-formatted `k="v"` list prepended to each bucket's le pair.
func writeHistogramSeries(b *strings.Builder, name, labels string, h metrics.HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, strconv.FormatFloat(bound.Seconds(), 'g', -1, 64), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, h.Sum.Seconds(), name, h.Count)
		return
	}
	fmt.Fprintf(b, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.Sum.Seconds(), name, labels, h.Count)
}

// handleMetrics renders the daemon's atomic counters in the Prometheus
// text exposition format (version 0.0.4) so a standard scraper can watch a
// keplerd fleet without any client library: one hand-rolled writer over
// the same lock-free snapshots /v1/stats serves. Counters that track
// monotonically increasing totals are typed counter; point-in-time values
// (queue depths, open outages, pending campaigns) are gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	wr := func(name, typ, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}

	snap := s.snap.Load()
	ready := 0.0
	if s.ready.Load() {
		ready = 1
	}
	wr("kepler_ready", "gauge", "Whether ingestion has started.", ready)
	wr("kepler_open_outages", "gauge", "Ongoing outages as of the last closed bin.", float64(len(snap.Open)))
	wr("kepler_resolved_outages_total", "counter", "Completed outages recorded.", float64(snap.resolvedTotal()))
	wr("kepler_incidents_total", "counter", "Classified outage signals recorded.", float64(snap.incidentsTotal()))

	if s.opts.Ingest != nil {
		ing := s.opts.Ingest()
		wr("kepler_ingest_records_total", "counter", "MRT records consumed.", float64(ing.Records))
		wr("kepler_ingest_ops_total", "counter", "Route ops dispatched to shards.", float64(ing.Ops))
		wr("kepler_ingest_bins_total", "counter", "Bin barriers executed.", float64(ing.Bins))
		wr("kepler_ingest_records_per_second", "gauge", "Wall-clock ingestion rate.", ing.RecordsPerSec)
		wr("kepler_ingest_barrier_seconds_total", "counter", "Cumulative wall time inside bin barriers.", ing.BarrierTime.Seconds())
		depth := 0
		for _, d := range ing.QueueDepths {
			depth += d
		}
		wr("kepler_ingest_queue_depth", "gauge", "Dispatched-but-unprocessed op batches across shards.", float64(depth))
	}
	if s.opts.Service != nil {
		svc := s.opts.Service.Snapshot()
		wr("kepler_http_requests_total", "counter", "API requests served.", float64(svc.HTTPRequests))
		wr("kepler_http_errors_total", "counter", "Requests answered with a 4xx/5xx status.", float64(svc.HTTPErrors))
		wr("kepler_sse_connected_total", "counter", "SSE streams opened over the process lifetime.", float64(svc.SSEConnected))
		wr("kepler_sse_active", "gauge", "Currently connected SSE streams.", float64(svc.SSEActive))
		wr("kepler_events_published_total", "counter", "Events fanned out by the bus.", float64(svc.EventsPublished))
		wr("kepler_events_dropped_total", "counter", "Per-subscriber deliveries lost to full queues.", float64(svc.EventsDropped))
	}
	if s.opts.Store != nil {
		st := s.opts.Store()
		wr("kepler_store_appends_total", "counter", "Events appended to the WAL.", float64(st.Appends))
		wr("kepler_store_appended_bytes_total", "counter", "Framed payload bytes written to the WAL.", float64(st.AppendedBytes))
		wr("kepler_store_flushes_total", "counter", "Buffered-writer flushes.", float64(st.Flushes))
		wr("kepler_store_compactions_total", "counter", "WAL compactions into snapshot segments.", float64(st.Compactions))
		wr("kepler_store_recovered_events_total", "counter", "Events replayed from the WAL on open.", float64(st.RecoveredEvents))
		wr("kepler_store_torn_tails_total", "counter", "Torn or corrupt WAL tails truncated on open.", float64(st.TornTails))
		wr("kepler_store_truncated_bytes_total", "counter", "Bytes discarded by tail truncation.", float64(st.TruncatedBytes))
		wr("kepler_store_checkpoint_saves_total", "counter", "Engine checkpoints written beside the WAL.", float64(st.CheckpointSaves))
		wr("kepler_store_checkpoint_bytes_total", "counter", "Framed checkpoint bytes written.", float64(st.CheckpointBytes))
		wr("kepler_store_checkpoints_discarded_total", "counter", "Corrupt or rejected checkpoints skipped at recovery.", float64(st.CheckpointsDiscarded))
		wr("kepler_store_resume_seq", "gauge", "Event sequence this boot's engine resumed from (0 = full re-ingest).", float64(st.ResumeSeq))
		wr("kepler_store_resume_records", "gauge", "Record offset this boot's engine resumed from (0 = full re-ingest).", float64(st.ResumeRecords))
		wr("kepler_store_segments_sealed_total", "counter", "History segments sealed at compaction.", float64(st.SegmentsSealed))
		wr("kepler_store_index_writes_total", "counter", "Segment offset-index sidecars written.", float64(st.IndexWrites))
		wr("kepler_store_index_rebuilds_total", "counter", "Missing or corrupt segment indexes rebuilt by scan.", float64(st.IndexRebuilds))
		wr("kepler_store_segment_reads_total", "counter", "Page reads served from a history segment file.", float64(st.SegmentReads))
		wr("kepler_store_read_cache_hits_total", "counter", "History entries served from the decoded-frame cache.", float64(st.ReadCacheHits))
		wr("kepler_store_read_cache_misses_total", "counter", "History entries decoded from disk on a cache miss.", float64(st.ReadCacheMisses))
	}
	if s.opts.Probe != nil {
		pb := s.opts.Probe()
		wr("kepler_probe_campaigns_total", "counter", "Probe campaigns submitted.", float64(pb.Campaigns))
		wr("kepler_probe_targets_total", "counter", "Candidate targets across campaigns.", float64(pb.Targets))
		wr("kepler_probe_executed_total", "counter", "Probes run against the measurement backend.", float64(pb.Executed))
		wr("kepler_probe_cache_hits_total", "counter", "Targets answered from the verdict cache.", float64(pb.CacheHits))
		wr("kepler_probe_deduped_total", "counter", "Targets folded into an in-flight probe.", float64(pb.Deduped))
		wr("kepler_probe_denied_total", "counter", "Probes denied by the measurement budget.", float64(pb.Denied))
		wr("kepler_probe_collected_total", "counter", "Completed verdicts delivered to the engine.", float64(pb.Collected))
		wr("kepler_probe_promoted_total", "counter", "Pending confirmations promoted to located outages.", float64(pb.Promoted))
		wr("kepler_probe_refuted_total", "counter", "Confirmations contradicted by the data plane (suppressed false positives).", float64(pb.Refuted))
		wr("kepler_probe_unlocated_total", "counter", "Disambiguation verdicts that failed to pin an epicenter.", float64(pb.Unlocated))
		wr("kepler_probe_expired_total", "counter", "Pending confirmations that outlived their TTL.", float64(pb.Expired))
		wr("kepler_probe_pending", "gauge", "Currently parked confirmations.", float64(pb.Pending))
	}
	if s.opts.Bus != nil {
		bs := s.opts.Bus.Stats()
		wr("kepler_bus_subscribers", "gauge", "Registered event-bus subscribers.", float64(bs.Subscribers))
		if depths := s.opts.Bus.SubscriberDepths(); len(depths) > 0 {
			fmt.Fprint(&b, "# HELP kepler_sse_queue_depth Per-subscriber event queue occupancy.\n# TYPE kepler_sse_queue_depth gauge\n")
			for _, d := range depths {
				fmt.Fprintf(&b, "kepler_sse_queue_depth{subscriber=\"%d\"} %d\n", d.ID, d.Depth)
			}
			fmt.Fprint(&b, "# HELP kepler_sse_queue_dropped_total Per-subscriber deliveries lost to a full queue.\n# TYPE kepler_sse_queue_dropped_total counter\n")
			for _, d := range depths {
				fmt.Fprintf(&b, "kepler_sse_queue_dropped_total{subscriber=\"%d\"} %d\n", d.ID, d.Dropped)
			}
		}
	}
	if s.opts.Relay != nil {
		info := s.opts.Relay.Info()
		wr("kepler_relay_clients", "gauge", "Downstream SSE relay clients connected.", float64(info.Clients))
		wr("kepler_relay_deliveries_total", "counter", "Events enqueued to relay clients.", float64(info.Deliveries))
		wr("kepler_relay_dropped_total", "counter", "Relay deliveries lost to a full client queue.", float64(info.Dropped))
		wr("kepler_relay_shed_total", "counter", "Relay deliveries withheld by the aggregate queue budget.", float64(info.Shed))
		wr("kepler_relay_joins_total", "counter", "Relay clients admitted.", float64(info.Joins))
		wr("kepler_relay_leaves_total", "counter", "Relay clients departed.", float64(info.Leaves))
		wr("kepler_relay_upstream_depth", "gauge", "Occupancy of the relay's single upstream bus queue.", float64(info.UpstreamDepth))
		wr("kepler_relay_upstream_dropped_total", "counter", "Events the relay itself lost upstream (relay stalled).", float64(info.UpstreamDropped))
	}
	if snap.Feeds != nil {
		f := snap.Feeds
		wr("kepler_feed_coverage_ratio", "gauge", "Live peer sessions over known peer sessions (stream time).", f.Coverage())
		wr("kepler_feed_collectors_known", "gauge", "Collectors ever observed by the feed watchdog.", float64(f.CollectorsKnown))
		wr("kepler_feed_collectors_live", "gauge", "Collectors within the silence threshold.", float64(f.CollectorsLive))
		wr("kepler_feed_sessions_known", "gauge", "Peer sessions ever observed by the feed watchdog.", float64(f.SessionsKnown))
		wr("kepler_feed_sessions_live", "gauge", "Peer sessions within the silence threshold.", float64(f.SessionsLive))
	}
	if s.opts.Feed != nil {
		fs := s.opts.Feed.Snapshot()
		wr("kepler_feed_degraded_total", "counter", "Feed degraded transitions published.", float64(fs.Degraded))
		wr("kepler_feed_recovered_total", "counter", "Feed recovered transitions published.", float64(fs.Recovered))
	}
	if s.opts.HTTP != nil {
		hs := s.opts.HTTP.Snapshot()
		if len(hs.Endpoints) > 0 {
			name := "kepler_http_request_seconds"
			fmt.Fprintf(&b, "# HELP %s API request latency by route pattern (SSE streams record connection lifetime).\n# TYPE %s histogram\n", name, name)
			for _, e := range hs.Endpoints {
				writeHistogramSeries(&b, name, fmt.Sprintf(`endpoint=%q`, e.Endpoint), e.Latency)
			}
		}
		writeHistogram(&b, "kepler_sse_delivery_lag_seconds",
			"Bus publication to completed client write, live SSE deliveries only.",
			"", hs.SSELag)
	}
	if s.opts.BinStage != nil {
		bc := s.opts.BinStage()
		writeHistogram(&b, "kepler_bin_close_seconds",
			"End-to-end bin-close wall time (barrier wait through hook dispatch).",
			"", bc.Total)
		name := "kepler_bin_close_stage_seconds"
		fmt.Fprintf(&b, "# HELP %s Bin-close wall time by pipeline stage.\n# TYPE %s histogram\n", name, name)
		for i, stage := range metrics.BinStageNames {
			writeHistogramSeries(&b, name, fmt.Sprintf(`stage=%q`, stage), bc.Stages[i])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
