package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
)

func publishOpened(bus *events.Bus, n int) {
	for i := 0; i < n; i++ {
		bus.Publish(events.Event{
			Time: t0.Add(time.Duration(i) * time.Minute), Kind: events.KindOutageOpened,
			Status: &core.OutageStatus{PoP: colo.FacilityPoP(3), WaitingPaths: i + 1},
		})
	}
}

// sseGet opens an SSE stream, optionally resuming with Last-Event-ID.
func sseGet(t *testing.T, url string, lastID uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// collectIDs reads frames, skipping comments, until n events arrived.
func collectIDs(t *testing.T, br *bufio.Reader, n int) []uint64 {
	t.Helper()
	var ids []uint64
	for len(ids) < n {
		f, err := readFrame(br)
		if err != nil {
			t.Fatalf("stream ended after %d/%d events: %v", len(ids), n, err)
		}
		if f.comment {
			continue
		}
		id, err := strconv.ParseUint(f.id, 10, 64)
		if err != nil {
			t.Fatalf("frame id %q: %v", f.id, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestSSEResumeReplaysMissedEvents(t *testing.T) {
	bus := events.New(nil, events.WithRing(64))
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)

	// A first client (no Last-Event-ID: live-only) sees events 1..3, then
	// drops.
	resp := sseGet(t, ts.URL+"/v1/events", 0)
	br := bufio.NewReader(resp.Body)
	if f, err := readFrame(br); err != nil || !f.comment {
		t.Fatalf("opening frame = %+v, %v", f, err) // subscription registered
	}
	publishOpened(bus, 3)
	ids := collectIDs(t, br, 3)
	resp.Body.Close()
	if ids[2] != 3 {
		t.Fatalf("first connection ids = %v", ids)
	}

	// Events published while disconnected.
	publishOpened(bus, 4)

	// Reconnect with Last-Event-ID: 3 — the four missed events arrive as
	// backlog, then live delivery continues seamlessly.
	resp2 := sseGet(t, ts.URL+"/v1/events", 3)
	defer resp2.Body.Close()
	br2 := bufio.NewReader(resp2.Body)
	ids2 := collectIDs(t, br2, 4)
	for i, id := range ids2 {
		if id != uint64(4+i) {
			t.Fatalf("resumed ids = %v, want 4..7", ids2)
		}
	}
	publishOpened(bus, 1)
	live := collectIDs(t, br2, 1)
	if live[0] != 8 {
		t.Errorf("live event after backlog = %d, want 8", live[0])
	}
}

func TestSSEResumeRespectsKindFilter(t *testing.T) {
	bus := events.New(nil, events.WithRing(64))
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)

	publishOpened(bus, 2) // seqs 1,2: outage_opened
	bus.Publish(events.Event{Time: t0, Kind: events.KindOutageResolved,
		Outage: &core.Outage{PoP: colo.FacilityPoP(3), Start: t0, End: t0.Add(time.Hour)}}) // seq 3
	publishOpened(bus, 1) // seq 4

	resp := sseGet(t, ts.URL+"/v1/events?kinds=outage_resolved", 1)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	ids := collectIDs(t, br, 1)
	if ids[0] != 3 {
		t.Fatalf("filtered resume delivered id %d, want 3 only", ids[0])
	}
	var ev EventView
	// Re-read: collectIDs discarded the payload; fetch the next event to
	// prove nothing else leaked through the filter.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if f, err := readFrame(br); err == nil && !f.comment {
			json.Unmarshal([]byte(f.data), &ev)
		}
	}()
	select {
	case <-done:
		if ev.Seq != 0 {
			t.Errorf("unexpected extra event through filter: %+v", ev)
		}
	case <-time.After(100 * time.Millisecond):
		// Blocked waiting for more events: exactly what we want.
	}
}

// TestSSEFreshClientGetsLiveOnly pins that resume is opt-in: a connection
// without Last-Event-ID never receives the replay ring — a new subscriber
// on a long-running daemon owes nothing from the past.
func TestSSEFreshClientGetsLiveOnly(t *testing.T) {
	bus := events.New(nil, events.WithRing(64))
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)
	publishOpened(bus, 5) // history a fresh client must NOT see

	resp := sseGet(t, ts.URL+"/v1/events", 0)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if f, err := readFrame(br); err != nil || !f.comment {
		t.Fatalf("opening frame = %+v, %v", f, err)
	}
	publishOpened(bus, 1) // seq 6, the first thing it should see
	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.comment {
		t.Fatalf("fresh client got a second comment (resume incomplete?) before any event")
	}
	if f.id != "6" {
		t.Fatalf("fresh client's first event id = %q, want 6 (ring must not replay)", f.id)
	}
}

func TestSSEResumeIncompleteAfterEviction(t *testing.T) {
	bus := events.New(nil, events.WithRing(2))
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)
	publishOpened(bus, 6) // ring holds 5,6 — a client at 1 missed 2..4 forever

	resp := sseGet(t, ts.URL+"/v1/events", 1)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// Frame 1: opening comment. Frame 2: the incomplete-resume comment.
	f, err := readFrame(br)
	if err != nil || !f.comment {
		t.Fatalf("opening frame = %+v, %v", f, err)
	}
	f, err = readFrame(br)
	if err != nil || !f.comment {
		t.Fatalf("expected ': resume incomplete' comment, got %+v, %v", f, err)
	}
	// Then the oldest retained events.
	f, err = readFrame(br)
	if err != nil || f.id != "5" {
		t.Fatalf("first replayed frame = %+v, %v", f, err)
	}
}

func TestSSERejectsMalformedLastEventID(t *testing.T) {
	bus := events.New(nil, events.WithRing(4))
	defer bus.Close()
	_, ts := newTestServer(t, nil, bus)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID = %d, want 400", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("400 without JSON error body: %v %v", body, err)
	}
}
