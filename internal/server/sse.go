package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kepler/internal/events"
)

// eventStream is the downstream side of either event tier: a direct bus
// subscription (events.Subscriber) or a relay client (events.RelayClient).
// The SSE handler serves both interchangeably.
type eventStream interface {
	Events() <-chan events.Event
	Dropped() int64
	Close()
}

// sseBatchMax bounds how many queued events one SSE write coalesces. Large
// enough to drain a bin burst in a handful of writes, small enough that a
// slow client never stalls behind one enormous buffered write.
const sseBatchMax = 64

// handleEvents streams the bus over Server-Sent Events. Each bus event
// becomes one SSE frame:
//
//	id: <bus sequence number>
//	event: <kind>
//	data: <EventView JSON>
//
// with comment-only keepalive frames at the heartbeat interval. Queued
// events are coalesced: everything waiting in the subscription (up to
// sseBatchMax) is marshaled into one buffered write with a single flush,
// so a bin-close burst costs a client O(1) syscalls, not O(events).
//
// When Options.Relay is set, clients subscribe to the fan-out tier instead
// of the bus — a thousand streams cost ingestion exactly one subscriber.
// Either way the subscription queue is bounded (Options.SSEBuffer): a
// client that stops reading blocks only its own writer goroutine, its
// queue fills, and further events are dropped for it alone — drop totals
// appear in /v1/stats. ?kinds=outage_resolved,incident filters server-side
// (in the relay tier, before the client's queue).
//
// A reconnecting client sends the standard Last-Event-ID header (every
// frame's id is the bus sequence number) and first receives the events it
// missed, replayed from the bus's in-memory ring — which the daemon seeds
// from the durable store on boot, so resume even works across a restart.
// Registration and backlog capture are atomic, making delivery
// exactly-once; if the requested position has already been evicted from
// the ring, the replay starts at the oldest retained event after a
// ": resume incomplete" comment.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Bus == nil && s.opts.Relay == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "event bus not configured"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "streaming unsupported"})
		return
	}

	// Only an explicit Last-Event-ID resumes from the replay ring; a fresh
	// client gets live delivery only (a new subscriber owes nothing from
	// the past, and on a long-running daemon the ring is full of history
	// it never saw).
	var lastID uint64
	resuming := false
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("Last-Event-ID must be a previously served numeric event id, got %q", raw),
			})
			return
		}
		lastID, resuming = v, true
	}

	var allow map[events.Kind]bool
	if raw := r.URL.Query().Get("kinds"); raw != "" {
		allow = make(map[events.Kind]bool)
		for _, k := range strings.Split(raw, ",") {
			allow[events.Kind(strings.TrimSpace(k))] = true
		}
	}

	var (
		stream   eventStream
		backlog  []events.Event
		complete = true
	)
	switch {
	case s.opts.Relay != nil && resuming:
		stream, backlog, complete = s.opts.Relay.SubscribeFrom(lastID, s.opts.SSEBuffer, allow)
	case s.opts.Relay != nil:
		stream = s.opts.Relay.Subscribe(s.opts.SSEBuffer, allow)
	case resuming:
		stream, backlog, complete = s.opts.Bus.SubscribeFrom(lastID, s.opts.SSEBuffer)
	default:
		stream = s.opts.Bus.Subscribe(s.opts.SSEBuffer)
	}
	defer stream.Close()
	s.opts.Logger.Debug("sse stream open", "remote", r.RemoteAddr,
		"relay", s.opts.Relay != nil, "resuming", resuming,
		"backlog", len(backlog), "complete", complete)
	defer func() {
		s.opts.Logger.Debug("sse stream closed", "remote", r.RemoteAddr, "dropped", stream.Dropped())
	}()
	if svc := s.opts.Service; svc != nil {
		svc.SSEConnected.Add(1)
		svc.SSEActive.Add(1)
		defer svc.SSEActive.Add(-1)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment both commits the response headers and lets
	// clients detect liveness before the first event.
	fmt.Fprint(w, ": stream open\n\n")
	if !complete {
		fmt.Fprint(w, ": resume incomplete\n\n")
	}
	fl.Flush()

	var (
		buf    bytes.Buffer // reused frame buffer across batches
		stamps []time.Time  // publication stamps of live events in the batch
	)
	// writeBatch coalesces a batch of events into one write and one flush,
	// preserving event order. Delivery lag (bus publication to completed
	// client write) is observed per event after the flush; only live
	// deliveries count — backlog events carry publication stamps from
	// before this connection existed (possibly a prior process).
	writeBatch := func(evs []events.Event, live bool) bool {
		buf.Reset()
		stamps = stamps[:0]
		for _, ev := range evs {
			if allow != nil && !allow[ev.Kind] {
				continue
			}
			data, err := json.Marshal(s.eventView(ev))
			if err != nil {
				continue
			}
			fmt.Fprintf(&buf, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			if live && !ev.PublishedAt.IsZero() {
				stamps = append(stamps, ev.PublishedAt)
			}
		}
		if buf.Len() == 0 {
			return true
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return false // client went away mid-write
		}
		fl.Flush()
		if s.opts.HTTP != nil {
			for _, at := range stamps {
				s.opts.HTTP.SSELag.Observe(time.Since(at))
			}
		}
		return true
	}
	// Missed events first: everything published after Last-Event-ID was
	// captured atomically with the subscription, so the transition from
	// backlog to live delivery neither drops nor repeats an event.
	if !writeBatch(backlog, false) {
		return
	}

	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()

	batch := make([]events.Event, 0, sseBatchMax)
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				// Bus closed: daemon shutdown. End the stream cleanly.
				fmt.Fprint(w, "event: bye\ndata: {}\n\n")
				fl.Flush()
				return
			}
			// Coalesce whatever else is already queued into this write. A
			// close mid-drain just ends the batch; the next select observes
			// the closed channel and says bye.
			batch = append(batch[:0], ev)
		drain:
			for len(batch) < sseBatchMax {
				select {
				case ev2, ok2 := <-stream.Events():
					if !ok2 {
						break drain
					}
					batch = append(batch, ev2)
				default:
					break drain
				}
			}
			if !writeBatch(batch, true) {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
