package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"kepler/internal/events"
)

// handleEvents streams the bus over Server-Sent Events. Each bus event
// becomes one SSE frame:
//
//	id: <bus sequence number>
//	event: <kind>
//	data: <EventView JSON>
//
// with comment-only keepalive frames at the heartbeat interval. The
// subscription queue is bounded (Options.SSEBuffer): a client that stops
// reading blocks only its own writer goroutine, its queue fills, and
// further events are dropped for it alone — drop totals appear in
// /v1/stats. ?kinds=outage_resolved,incident filters server-side.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Bus == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "event bus not configured"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "streaming unsupported"})
		return
	}

	var allow map[events.Kind]bool
	if raw := r.URL.Query().Get("kinds"); raw != "" {
		allow = make(map[events.Kind]bool)
		for _, k := range strings.Split(raw, ",") {
			allow[events.Kind(strings.TrimSpace(k))] = true
		}
	}

	sub := s.opts.Bus.Subscribe(s.opts.SSEBuffer)
	defer sub.Close()
	if svc := s.opts.Service; svc != nil {
		svc.SSEConnected.Add(1)
		svc.SSEActive.Add(1)
		defer svc.SSEActive.Add(-1)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment both commits the response headers and lets
	// clients detect liveness before the first event.
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()

	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Bus closed: daemon shutdown. End the stream cleanly.
				fmt.Fprint(w, "event: bye\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if allow != nil && !allow[ev.Kind] {
				continue
			}
			data, err := json.Marshal(s.eventView(ev))
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return // client went away mid-write
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
