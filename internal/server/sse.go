package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kepler/internal/events"
)

// handleEvents streams the bus over Server-Sent Events. Each bus event
// becomes one SSE frame:
//
//	id: <bus sequence number>
//	event: <kind>
//	data: <EventView JSON>
//
// with comment-only keepalive frames at the heartbeat interval. The
// subscription queue is bounded (Options.SSEBuffer): a client that stops
// reading blocks only its own writer goroutine, its queue fills, and
// further events are dropped for it alone — drop totals appear in
// /v1/stats. ?kinds=outage_resolved,incident filters server-side.
//
// A reconnecting client sends the standard Last-Event-ID header (every
// frame's id is the bus sequence number) and first receives the events it
// missed, replayed from the bus's in-memory ring — which the daemon seeds
// from the durable store on boot, so resume even works across a restart.
// Registration and backlog capture are atomic on the bus, making delivery
// exactly-once; if the requested position has already been evicted from
// the ring, the replay starts at the oldest retained event after a
// ": resume incomplete" comment.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Bus == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "event bus not configured"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "streaming unsupported"})
		return
	}

	// Only an explicit Last-Event-ID resumes from the replay ring; a fresh
	// client gets live delivery only (a new subscriber owes nothing from
	// the past, and on a long-running daemon the ring is full of history
	// it never saw).
	var lastID uint64
	resuming := false
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("Last-Event-ID must be a previously served numeric event id, got %q", raw),
			})
			return
		}
		lastID, resuming = v, true
	}

	var allow map[events.Kind]bool
	if raw := r.URL.Query().Get("kinds"); raw != "" {
		allow = make(map[events.Kind]bool)
		for _, k := range strings.Split(raw, ",") {
			allow[events.Kind(strings.TrimSpace(k))] = true
		}
	}

	var (
		sub      *events.Subscriber
		backlog  []events.Event
		complete = true
	)
	if resuming {
		sub, backlog, complete = s.opts.Bus.SubscribeFrom(lastID, s.opts.SSEBuffer)
	} else {
		sub = s.opts.Bus.Subscribe(s.opts.SSEBuffer)
	}
	defer sub.Close()
	s.opts.Logger.Debug("sse stream open", "remote", r.RemoteAddr,
		"resuming", resuming, "backlog", len(backlog), "complete", complete)
	defer func() {
		s.opts.Logger.Debug("sse stream closed", "remote", r.RemoteAddr, "dropped", sub.Dropped())
	}()
	if svc := s.opts.Service; svc != nil {
		svc.SSEConnected.Add(1)
		svc.SSEActive.Add(1)
		defer svc.SSEActive.Add(-1)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment both commits the response headers and lets
	// clients detect liveness before the first event.
	fmt.Fprint(w, ": stream open\n\n")
	if !complete {
		fmt.Fprint(w, ": resume incomplete\n\n")
	}
	fl.Flush()

	writeEvent := func(ev events.Event, live bool) bool {
		if allow != nil && !allow[ev.Kind] {
			return true
		}
		data, err := json.Marshal(s.eventView(ev))
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
			return false // client went away mid-write
		}
		fl.Flush()
		// Delivery lag: bus publication to completed client write. Only
		// live deliveries count — backlog events carry publication stamps
		// from before this connection existed (possibly a prior process).
		if live && s.opts.HTTP != nil && !ev.PublishedAt.IsZero() {
			s.opts.HTTP.SSELag.Observe(time.Since(ev.PublishedAt))
		}
		return true
	}
	// Missed events first: everything published after Last-Event-ID was
	// captured atomically with the subscription, so the transition from
	// backlog to live delivery neither drops nor repeats an event.
	for _, ev := range backlog {
		if !writeEvent(ev, false) {
			return
		}
	}

	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()

	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Bus closed: daemon shutdown. End the stream cleanly.
				fmt.Fprint(w, "event: bye\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if !writeEvent(ev, true) {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
