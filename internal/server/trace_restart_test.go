package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"kepler/internal/bgpstream"
	"kepler/internal/events"
	"kepler/internal/live"
	"kepler/internal/store"
)

// TestTraceSurvivesRestart is the durability half of the provenance
// contract: a tracing daemon's evidence chains are persisted through the
// store and, after a restart, the recovered history serves the same
// non-empty trace for the same outage id over /v1/outages/{id}/trace.
func TestTraceSurvivesRestart(t *testing.T) {
	stack, w, res, cfg, _ := restartScenario(t)
	cfg.Tracing = true
	dir := t.TempDir()

	// ---- Phase 1: tracing daemon ingests the whole archive and exits.
	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bus1 := events.New(nil, events.WithSink(func(ev events.Event) {
		if err := st1.Append(ev); err != nil {
			t.Errorf("phase 1 append: %v", err)
		}
	}))
	eng1 := stack.NewEngine(cfg, 4)
	eng1.SetHooks(events.EngineHooks(bus1))
	if _, err := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(res.Records)), eng1); err != nil {
		t.Fatal(err)
	}
	bus1.Close()
	eng1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- Phase 2: recover and serve the traces with the outages.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hist := st2.History()
	if len(hist.Resolved) == 0 {
		t.Fatal("no resolved outages recovered; the scenario must detect something")
	}
	if len(hist.Traces) != len(hist.Resolved) || hist.TraceBase != 0 {
		t.Fatalf("recovered %d traces (base %d) for %d outages; want full 1:1 coverage",
			len(hist.Traces), hist.TraceBase, len(hist.Resolved))
	}

	srv := New(Options{Namer: w.PoPName})
	snap := BuildSnapshotFrom(hist.LastBin, nil, hist.Resolved, hist.Incidents)
	snap.Traces = hist.Traces
	snap.TraceBase = hist.TraceBase
	srv.PublishSnapshot(snap)
	srv.SetReady(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, o := range hist.Resolved {
		var tv TraceView
		getJSON(t, fmt.Sprintf("%s/v1/outages/%d/trace", ts.URL, i+1), http.StatusOK, &tv)
		if tv.OutageID != uint64(i)+1 || len(tv.Chapters) == 0 {
			t.Errorf("outage %d: trace id %d with %d chapters; want a non-empty evidence chain",
				i+1, tv.OutageID, len(tv.Chapters))
		}
		if got := srv.popView(o.PoP); !reflect.DeepEqual(tv.PoP, got) {
			t.Errorf("outage %d: trace epicenter %+v, want %+v", i+1, tv.PoP, got)
		}
		if !tv.Start.Equal(o.Start) || !tv.End.Equal(o.End) {
			t.Errorf("outage %d: trace window %v..%v, want %v..%v", i+1, tv.Start, tv.End, o.Start, o.End)
		}
	}
}
