package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"strconv"
	"strings"
	"testing"
	"unicode"
)

// A want is one expectation parsed from a trailing comment of the form
//
//	// want <analyzer> "substring" [<analyzer> "substring" ...]
//
// in a testdata package: the named analyzer must report a diagnostic on
// that line whose message contains the substring. Every diagnostic the
// run produces must be claimed by exactly one want, and every want must
// be claimed by a diagnostic — unexpected findings (false positives) and
// missing findings (false negatives) both fail the test.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func loadTestdata(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	pkgs, err := Load("", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loading %v: no packages", patterns)
	}
	return pkgs
}

// parseWants extracts every want clause from the packages' comments.
func parseWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for {
						rest = strings.TrimSpace(rest)
						if rest == "" {
							break
						}
						sp := strings.IndexFunc(rest, unicode.IsSpace)
						if sp < 0 {
							t.Fatalf("%s: malformed want clause %q: analyzer without pattern", pos, c.Text)
						}
						analyzer := rest[:sp]
						rest = strings.TrimSpace(rest[sp:])
						end := quotedEnd(rest)
						if end < 0 {
							t.Fatalf("%s: malformed want clause %q: missing quoted pattern", pos, c.Text)
						}
						substr, err := strconv.Unquote(rest[:end+1])
						if err != nil {
							t.Fatalf("%s: malformed want pattern %q: %v", pos, rest[:end+1], err)
						}
						wants = append(wants, &want{
							file: pos.Filename, line: pos.Line,
							analyzer: analyzer, substr: substr,
						})
						rest = rest[end+1:]
					}
				}
			}
		}
	}
	return wants
}

// quotedEnd returns the index of the closing quote of the Go string
// literal at the start of s, honoring backslash escapes, or -1.
func quotedEnd(s string) int {
	if len(s) == 0 || s[0] != '"' {
		return -1
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// runGolden loads the patterns, runs the named analyzer, and diffs the
// diagnostics against the // want comments in the sources.
func runGolden(t *testing.T, analyzer string, patterns ...string) {
	t.Helper()
	pkgs := loadTestdata(t, patterns...)
	wants := parseWants(t, pkgs)
	if len(wants) == 0 {
		t.Fatalf("no // want comments under %v: the golden package asserts nothing", patterns)
	}
	diags := Run(pkgs, Analyzers(), Options{AllPackages: true, Analyzers: []string{analyzer}})

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: missing %s diagnostic containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", "./testdata/src/maporder")
}

func TestWallTimeGolden(t *testing.T) {
	runGolden(t, "walltime", "./testdata/src/walltime")
}

func TestHookBarrierGolden(t *testing.T) {
	runGolden(t, "hookbarrier", "./testdata/src/hookbarrier")
}

func TestAtomicStatsGolden(t *testing.T) {
	runGolden(t, "atomicstats", "./testdata/src/atomicstats", "./testdata/src/atomicstats/metrics")
}

func TestSyncCloseGolden(t *testing.T) {
	runGolden(t, "syncclose", "./testdata/src/syncclose")
}

// enclosingFunc names the function declaration containing the diagnostic.
func enclosingFunc(pkgs []*Package, d Diagnostic) string {
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				start, end := pkg.Fset.Position(fd.Pos()), pkg.Fset.Position(fd.End())
				if start.Filename == d.File && start.Line <= d.Line && d.Line <= end.Line {
					return fd.Name.Name
				}
			}
		}
	}
	return ""
}

// TestIgnoreSuppression pins the contract of //keplervet:ignore: each
// directive silences exactly one line's diagnostics for one analyzer, an
// identical unsuppressed violation still surfaces, a directive with
// nothing to suppress is itself reported, and malformed directives
// (missing analyzer, unknown analyzer, missing reason) are each flagged.
func TestIgnoreSuppression(t *testing.T) {
	pkgs := loadTestdata(t, "./testdata/src/ignore")
	diags := Run(pkgs, Analyzers(), Options{AllPackages: true, Analyzers: []string{"walltime"}})

	var wall, meta []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "walltime":
			wall = append(wall, d)
		case "keplervet":
			meta = append(meta, d)
		default:
			t.Errorf("diagnostic from unexpected analyzer: %s", d)
		}
	}

	// The two suppressed time.Now calls must be silent; the third,
	// identical and undirected, must survive.
	if len(wall) != 1 {
		t.Fatalf("got %d surviving walltime diagnostics, want exactly 1 (the unsuppressed site): %v", len(wall), wall)
	}
	if fn := enclosingFunc(pkgs, wall[0]); fn != "unsuppressed" {
		t.Errorf("surviving walltime diagnostic is in %q, want %q: %s", fn, "unsuppressed", wall[0])
	}

	wantMeta := []struct{ fn, substr string }{
		{"clean", "unused ignore: no walltime diagnostic here to suppress"},
		{"malformedDirectives", "malformed ignore: missing analyzer name"},
		{"malformedDirectives", `ignore names unknown analyzer "nosuchanalyzer"`},
		{"malformedDirectives", `ignore for "walltime" has no reason`},
	}
	if len(meta) != len(wantMeta) {
		t.Errorf("got %d keplervet meta-diagnostics, want %d: %v", len(meta), len(wantMeta), meta)
	}
	for _, w := range wantMeta {
		found := false
		for _, d := range meta {
			if enclosingFunc(pkgs, d) == w.fn && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing keplervet diagnostic in %s containing %q; got %v", w.fn, w.substr, meta)
		}
	}
}

// TestWriteJSON pins the machine-readable output shape the CI job
// archives: an empty run is a JSON empty array, and diagnostics round-trip.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty run encodes as %q, want []", got)
	}

	in := []Diagnostic{{Analyzer: "maporder", File: "a.go", Line: 3, Col: 7, Message: "m"}}
	buf.Reset()
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round-trip mismatch: %+v", out)
	}
}
