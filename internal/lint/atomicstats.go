package lint

import (
	"go/ast"
	"go/types"
)

// AtomicStats enforces the metrics counter contract: every exported
// counter field of a `*Stats` struct in the metrics package must be an
// atomic type (counters are written from the ingestion goroutine, shard
// workers and HTTP handlers concurrently, and read lock-free by /v1/stats
// and /metrics), and call sites everywhere must access those fields only
// through their atomic method sets. Point-in-time `*Snapshot` structs are
// plain by design and exempt.
//
// Two rules:
//
//  1. declaration (metrics package only): a plain integer field in a
//     *Stats struct is flagged — use atomic.Int64 and friends;
//  2. use (every package): a *Stats atomic field used as a value (copied,
//     compared, passed) rather than as the receiver of an atomic method
//     call or the operand of & is flagged, as is any direct read/write of
//     a plain integer *Stats field outside a sync/atomic call.
var AtomicStats = &Analyzer{
	Name: "atomicstats",
	Doc: "metrics *Stats counter fields must be atomic types and accessed atomically " +
		"(concurrent writers, lock-free readers)",
	Scope: func(string) bool { return true },
	Run:   runAtomicStats,
}

func runAtomicStats(pass *Pass) {
	if pass.Pkg.Types.Name() == "metrics" {
		checkStatsDecls(pass)
	}
	checkStatsUses(pass)
}

// checkStatsDecls flags non-atomic integer counter fields in *Stats
// structs of the metrics package itself.
func checkStatsDecls(pass *Pass) {
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !isStatsName(ts.Name.Name) {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t := pass.Pkg.Info.TypeOf(field.Type)
				if t == nil || !isPlainInteger(t) {
					continue
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					pass.Reportf(name.Pos(), "counter field %s.%s is a plain %s; use an atomic type (concurrent writers, lock-free readers)",
						ts.Name.Name, name.Name, t.String())
				}
			}
			return true
		})
	}
}

// checkStatsUses flags value (non-atomic) uses of *Stats counter fields
// anywhere in the analyzed package.
func checkStatsUses(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			recv := namedType(selection.Recv())
			if recv == nil || !isStatsName(recv.Obj().Name()) {
				return
			}
			if pkg := recv.Obj().Pkg(); pkg == nil || pkg.Name() != "metrics" {
				return
			}
			parent, grand := parents(stack)
			if isAtomicNamed(selection.Type()) {
				// Atomic field: legal uses are s.F.Method(...) and &s.F.
				if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
					return // receiver of a further selection (method call)
				}
				if u, ok := parent.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
					return
				}
				pass.Reportf(sel.Pos(), "atomic counter %s.%s used as a value; call its atomic methods (Load/Store/Add) instead of copying it",
					recv.Obj().Name(), selection.Obj().Name())
				return
			}
			if !isPlainInteger(selection.Type()) {
				return
			}
			// Plain integer counter (already flagged at declaration inside
			// metrics): any direct use outside &field-into-sync/atomic is a
			// racy read or lost-update write.
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
				if call, ok := grand.(*ast.CallExpr); ok && isSyncAtomicCall(info, call) {
					return
				}
			}
			pass.Reportf(sel.Pos(), "non-atomic access to counter field %s.%s; counters are updated concurrently",
				recv.Obj().Name(), selection.Obj().Name())
		})
	}
}

// isStatsName matches the counter-struct naming convention without
// catching the point-in-time Snapshot types.
func isStatsName(name string) bool {
	return len(name) > len("Stats") && name[len(name)-len("Stats"):] == "Stats"
}

func isPlainInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAtomicNamed reports whether t is one of sync/atomic's value types.
func isAtomicNamed(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// isSyncAtomicCall reports whether call invokes a sync/atomic function.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// walkWithStack visits every node with the stack of its ancestors
// (outermost first, not including the node itself).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parents returns the visited node's nearest non-parenthesis ancestor and
// that ancestor's own nearest non-parenthesis ancestor.
func parents(stack []ast.Node) (parent, grand ast.Node) {
	i := len(stack) - 1
	skipParens := func() {
		for i >= 0 {
			if _, ok := stack[i].(*ast.ParenExpr); !ok {
				return
			}
			i--
		}
	}
	skipParens()
	if i >= 0 {
		parent = stack[i]
		i--
	}
	skipParens()
	if i >= 0 {
		grand = stack[i]
	}
	return parent, grand
}
