package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncClose guards the durability contract of the store layer: a function
// that writes to an *os.File (WAL segments, snapshot segments, checkpoint
// segments) must not be able to return success without the data reaching
// an fsync — either a (*os.File).Sync in the same function or a call to a
// package-local helper that syncs. Writes whose error result is discarded
// are flagged too: an unchecked short write is a silent torn frame.
//
// Two write shapes are recognized: direct method writes
// (f.Write/WriteString/WriteAt/Truncate) and passing an *os.File into a
// call whose parameter is a Write-capable interface (io.Writer and
// friends, e.g. writeFrame(f, payload)). Wrapping constructors (New*) are
// exempt — handing a file to bufio.NewWriter defers durability to the
// explicit flush/sync points, which this analyzer checks at their own
// call sites. Deliberately deferred durability (the WAL's buffered
// bin-close flush) is documented with //keplervet:ignore syncclose.
var SyncClose = &Analyzer{
	Name: "syncclose",
	Doc: "os.File writes in the store must fsync before success-return, and write errors " +
		"must not be discarded (torn frames otherwise go unnoticed)",
	Scope: scopePaths("kepler/internal/store"),
	Run:   runSyncClose,
}

// fileWriteMethods are the *os.File methods that mutate file contents.
var fileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Truncate":    true,
}

func runSyncClose(pass *Pass) {
	info := pass.Pkg.Info
	decls := funcDecls(pass.Pkg)

	type writeSite struct {
		pos  token.Pos
		desc string
	}
	type fn struct {
		obj    *types.Func
		writes []writeSite
		syncs  bool
	}

	var funcs []*fn
	byObj := make(map[*types.Func]*fn)
	callees := make(map[*types.Func]map[*types.Func]bool)

	var objs []*types.Func
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					objs = append(objs, obj)
				}
			}
		}
	}

	for _, obj := range objs {
		fd := decls[obj]
		fi := &fn{obj: obj}
		byObj[obj] = fi
		funcs = append(funcs, fi)
		callees[obj] = localCallees(pass.Pkg, fd, decls)
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isOsFile(info.TypeOf(sel.X)) {
				switch {
				case sel.Sel.Name == "Sync":
					fi.syncs = true
				case fileWriteMethods[sel.Sel.Name]:
					fi.writes = append(fi.writes, writeSite{call.Pos(), "(*os.File)." + sel.Sel.Name})
				}
				return true
			}
			// *os.File handed to a writer-shaped parameter.
			if name := calleeName(call); name == "" || strings.HasPrefix(name, "New") {
				return true
			}
			sig := calleeSignature(info, call)
			if sig == nil {
				return true
			}
			for i, arg := range call.Args {
				if !isOsFile(info.TypeOf(arg)) {
					continue
				}
				if pt := paramType(sig, i); pt != nil && hasWriteMethod(pt) {
					fi.writes = append(fi.writes, writeSite{call.Pos(), "file passed to " + calleeName(call)})
				}
			}
			return true
		})
	}

	// A function "reaches a sync" if it syncs directly or calls (to any
	// depth, within the package) a function that does.
	reaches := make(map[*types.Func]bool)
	var reachesSync func(obj *types.Func, visiting map[*types.Func]bool) bool
	reachesSync = func(obj *types.Func, visiting map[*types.Func]bool) bool {
		if r, ok := reaches[obj]; ok {
			return r
		}
		if visiting[obj] {
			return false
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		fi := byObj[obj]
		if fi != nil && fi.syncs {
			reaches[obj] = true
			return true
		}
		for callee := range callees[obj] {
			if reachesSync(callee, visiting) {
				reaches[obj] = true
				return true
			}
		}
		reaches[obj] = false
		return false
	}

	for _, fi := range funcs {
		if len(fi.writes) == 0 || reachesSync(fi.obj, map[*types.Func]bool{}) {
			continue
		}
		for _, w := range fi.writes {
			pass.Reportf(w.pos, "%s in %s, which can return without an fsync: sync before success or route the write through a syncing helper",
				w.desc, fi.obj.Name())
		}
	}

	// Discarded write errors, independent of sync reachability.
	for _, obj := range objs {
		fd := decls[obj]
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isFileWriteCall(info, call) {
					pass.Reportf(call.Pos(), "file write error discarded; an unchecked short write is a silent torn frame")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isFileWriteCall(info, call) && allBlank(n.Lhs) {
					pass.Reportf(call.Pos(), "file write error discarded; an unchecked short write is a silent torn frame")
				}
			}
			return true
		})
	}
}

// isFileWriteCall reports whether call is a direct *os.File write method.
func isFileWriteCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isOsFile(info.TypeOf(sel.X)) && fileWriteMethods[sel.Sel.Name]
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// isOsFile reports whether t is os.File or *os.File.
func isOsFile(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedType(t)
	return n != nil && n.Obj().Name() == "File" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os"
}

// calleeSignature resolves the static signature of a call, or nil.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if fn, ok := calleeObj(info, call).(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		return sig
	}
	if t := info.TypeOf(call.Fun); t != nil {
		sig, _ := t.Underlying().(*types.Signature)
		return sig
	}
	return nil
}

// paramType returns the type of parameter i, collapsing variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i >= params.Len() {
		if !sig.Variadic() {
			return nil
		}
		i = params.Len() - 1
	}
	t := params.At(i).Type()
	if i == params.Len()-1 && sig.Variadic() {
		if s, ok := t.(*types.Slice); ok {
			t = s.Elem()
		}
	}
	return t
}

// hasWriteMethod reports whether t is an interface whose method set
// includes Write([]byte) (n int, err error) — the io.Writer shape.
func hasWriteMethod(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Write" {
			return true
		}
	}
	return false
}
