package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags wall-clock reads in the detection packages. Detection
// runs on stream time (record timestamps drive bins, TTLs and cooldowns);
// a time.Now or time.Sleep on a detection path makes output depend on the
// host's clock and scheduling, breaking replay and restart equivalence.
// Metrics spans and histogram stamps are legitimate wall-clock users —
// allowlist each such call site with
//
//	//keplervet:ignore walltime <why this is instrumentation>
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "detection packages must run on stream time; wall-clock calls (time.Now/Since/Until/Sleep/" +
		"After/Tick/NewTimer/NewTicker/AfterFunc) are flagged unless explicitly allowlisted as instrumentation",
	Scope: scopePaths(
		"kepler/internal/core",
		"kepler/internal/bgpstream",
		"kepler/internal/pipeline",
		"kepler/internal/traceroute",
	),
	Run: runWallTime,
}

// wallClockFuncs are the package-time functions that read or wait on the
// wall clock. Pure arithmetic/construction (time.Unix, time.Date,
// time.Duration math, time.Parse) is stream-safe and not listed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods like (time.Time).After compare stream timestamps
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "wall-clock call time.%s in a detection package: detection must run on stream time", fn.Name())
			}
			return true
		})
	}
}
