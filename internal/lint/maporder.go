package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map whose body performs an
// order-sensitive effect — appending to a slice that outlives the loop,
// firing a hook/event callback, calling an encoder/writer, charging probe
// budget — unless the collected slice is subsequently sorted in the same
// function (the repo's sorted-keys idiom). Go randomizes map iteration
// order per run, so any such loop makes detection output a function of the
// runtime's hash seed instead of the record stream.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration feeding order-sensitive output must go through a sorted key slice; " +
		"appends into a slice that the same function later sorts are recognized as the sorted-keys idiom",
	Scope: scopePaths("kepler/internal/core", "kepler/internal/bgpstream", "kepler/internal/probe"),
	Run:   runMapOrder,
}

// effectNamePrefixes are method/function name prefixes treated as
// order-sensitive when called from inside a map-range body: encoding,
// byte-stream writing, event publication, and probe submission (budget is
// charged in submission order).
var effectNamePrefixes = []string{
	"Encode", "Marshal", "Write", "Publish", "Emit", "Fire", "Charge", "Submit", "Send", "Append",
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedTargets(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				reportMapRangeEffects(pass, rs, sorted)
				return true
			})
		}
	}
}

// sortedTargets collects the objects that fd passes to a sorting call
// (sort.Slice/Sort/Strings/..., slices.Sort*, or any project helper whose
// name contains "sort"/"Sort"): appending map keys or values into one of
// these inside a map range is the sanctioned sorted-iteration idiom.
func sortedTargets(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObj(info, arg); obj != nil {
				out[obj] = true
			}
		}
		// Method form: keys.Sort() — the receiver is the target.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := rootObj(info, sel.X); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// reportMapRangeEffects walks one map-range body and reports every
// order-sensitive effect not covered by the sorted-keys idiom.
func reportMapRangeEffects(pass *Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "append" {
					continue
				}
				target := rootObj(info, n.Lhs[i])
				if target == nil || sorted[target] {
					continue // indexed target (commutes) or sorted afterwards
				}
				if target.Pos() >= rs.Pos() && target.Pos() < rs.End() {
					continue // slice local to the loop body
				}
				pass.Reportf(n.Pos(), "append to %q inside map iteration: order is randomized; collect into a sorted key slice first", target.Name())
			}
		case *ast.CallExpr:
			if isHookFieldCall(info, n) {
				pass.Reportf(n.Pos(), "hook/event callback fired inside map iteration: delivery order is randomized; iterate a sorted key slice")
				return true
			}
			if name := calleeName(n); name != "append" && hasEffectPrefix(name) {
				if obj := calleeObj(info, n); obj != nil {
					pass.Reportf(n.Pos(), "order-sensitive call %s inside map iteration; iterate a sorted key slice", name)
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: message order is randomized; iterate a sorted key slice")
		}
		return true
	})
}

// isSortingCall recognizes both the stdlib sorters (any function of
// package sort or slices) and project helpers whose name mentions sorting.
func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	if fn, ok := calleeObj(info, call).(*types.Func); ok && fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			return true
		}
	}
	name := calleeName(call)
	return name != "" && strings.Contains(strings.ToLower(name), "sort")
}

func hasEffectPrefix(name string) bool {
	for _, p := range effectNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
