// Package metrics is golden-test input for the atomicstats analyzer's
// declaration rule: it mirrors the real internal/metrics naming
// conventions (*Stats = live counters, *Snapshot = point-in-time copies).
package metrics

import "sync/atomic"

// FleetStats mixes a correct atomic counter with a plain one.
type FleetStats struct {
	Good atomic.Int64
	Bad  int64 // want atomicstats "counter field FleetStats.Bad is a plain int64"

	hidden int64 // unexported: not part of the counter surface
}

// FleetSnapshot is a point-in-time copy: plain fields are the point.
type FleetSnapshot struct {
	Good int64
	Bad  int64
}

// Snapshot reads the counters atomically.
func (s *FleetStats) Snapshot() FleetSnapshot {
	return FleetSnapshot{Good: s.Good.Load(), Bad: readBad(s)}
}

func readBad(s *FleetStats) int64 {
	return atomic.LoadInt64(&s.Bad)
}
