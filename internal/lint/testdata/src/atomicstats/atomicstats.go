// Package atomicstats is golden-test input for the atomicstats analyzer's
// use rule: accessing metrics *Stats counters from a consumer package.
package atomicstats

import (
	"sync/atomic"

	"kepler/internal/lint/testdata/src/atomicstats/metrics"
)

// bump updates counters through their atomic method set: allowed.
func bump(s *metrics.FleetStats) {
	s.Good.Add(1)
	atomic.AddInt64(&s.Bad, 1)
}

// read loads atomically: allowed.
func read(s *metrics.FleetStats) int64 {
	return s.Good.Load() + atomic.LoadInt64(&s.Bad)
}

// snapshotUse consumes the point-in-time copy: plain by design.
func snapshotUse(s *metrics.FleetStats) int64 {
	snap := s.Snapshot()
	return snap.Good + snap.Bad
}

// copyAtomic copies an atomic counter as a value.
func copyAtomic(s *metrics.FleetStats) {
	v := s.Good // want atomicstats "atomic counter FleetStats.Good used as a value"
	_ = v.Load()
}

// racyWrite updates a plain counter with a read-modify-write.
func racyWrite(s *metrics.FleetStats) {
	s.Bad++ // want atomicstats "non-atomic access to counter field FleetStats.Bad"
}

// racyRead reads a plain counter directly.
func racyRead(s *metrics.FleetStats) int64 {
	return s.Bad // want atomicstats "non-atomic access to counter field FleetStats.Bad"
}
