// Package maporder is golden-test input for the maporder analyzer.
package maporder

import "sort"

// Hooks mimics the core lifecycle-callback struct shape.
type Hooks struct {
	Fired func(string)
}

type sink struct {
	hooks Hooks
	out   []string
}

func (s *sink) Encode(v string) {}

// collectUnsorted appends map contents straight into an outer slice.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder "append to \"out\" inside map iteration"
	}
	return out
}

// collectSorted is the sanctioned idiom: collect, then sort.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice uses sort.Slice after collection.
func collectSortSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sortInts stands in for a project sorting helper.
func sortInts(v []int) { sort.Ints(v) }

// collectHelperSorted is sorted through a project helper.
func collectHelperSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

// fireHooks invokes a lifecycle callback per map entry.
func (s *sink) fireHooks(m map[string]int) {
	for k := range m {
		s.hooks.Fired(k) // want maporder "hook/event callback fired inside map iteration"
	}
}

// encodeEach calls an encoder per map entry.
func (s *sink) encodeEach(m map[string]int) {
	for k := range m {
		s.Encode(k) // want maporder "order-sensitive call Encode"
	}
}

// sendEach streams map entries over a channel.
func sendEach(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want maporder "channel send inside map iteration"
	}
}

// loopLocal appends into a slice scoped to the loop body: no escape.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// perKeyWrites mutate another map keyed by the iteration variable:
// commutative, order never observable.
func perKeyWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// aggregate folds map values commutatively.
func aggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
