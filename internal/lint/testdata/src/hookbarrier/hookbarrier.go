// Package hookbarrier is golden-test input for the hookbarrier analyzer.
package hookbarrier

// Hooks mimics core.Hooks: func-typed callback fields.
type Hooks struct {
	Resolved func(int)
	Closed   func(int)
}

type engine struct {
	hooks Hooks
	done  []int
}

// emit fires a hook. It is called from closeBinOver (a barrier root) and
// from Leak (an exported non-root): the Leak chain is the violation.
func (e *engine) emit(v int) {
	e.done = append(e.done, v)
	if e.hooks.Resolved != nil {
		e.hooks.Resolved(v) // want hookbarrier "hook fired in emit, which is reachable from Leak"
	}
}

// closeBinOver is a barrier root: hooks fired here or below are fine.
func (e *engine) closeBinOver(end int) {
	e.tick(end)
	if e.hooks.Closed != nil {
		e.hooks.Closed(end)
	}
}

// tick is reachable only from closeBinOver: its emit chain is legitimate
// (the emit diagnostic above comes from the Leak chain, not this one).
func (e *engine) tick(end int) {
	e.emit(end)
}

// Flush is a root by name: firing hooks on the flush path is the
// sanctioned stream-end behavior.
func (e *engine) Flush() {
	if e.hooks.Closed != nil {
		e.hooks.Closed(-1)
	}
}

// Leak is an exported entry that reaches emit without passing a barrier
// root — the escape hookbarrier exists to catch.
func (e *engine) Leak(v int) {
	e.emit(v)
}

// Direct fires a hook straight from an exported non-root function.
func (e *engine) Direct(v int) {
	if e.hooks.Resolved != nil {
		e.hooks.Resolved(v) // want hookbarrier "hook fired in Direct, which is reachable from Direct"
	}
}
