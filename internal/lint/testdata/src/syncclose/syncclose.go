// Package syncclose is golden-test input for the syncclose analyzer.
package syncclose

import (
	"bufio"
	"io"
	"os"
)

// appendSynced writes then fsyncs in the same function: contract held.
func appendSynced(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// appendViaHelper routes durability through a package-local syncing helper.
func appendViaHelper(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return flush(f)
}

func flush(f *os.File) error { return f.Sync() }

// buffered hands the file to a wrapping constructor: durability is
// deferred to the writer's own flush points, checked at their call sites.
func buffered(f *os.File) *bufio.Writer {
	return bufio.NewWriter(f)
}

// readFrame only reads: no durability obligation.
func readFrame(f *os.File, b []byte) (int, error) {
	return f.Read(b)
}

// appendUnsynced can return nil with the frame still in the page cache.
func appendUnsynced(f *os.File, b []byte) error {
	_, err := f.Write(b) // want syncclose "(*os.File).Write in appendUnsynced, which can return without an fsync"
	return err
}

// writeThrough hands the file to an io.Writer-shaped helper, no fsync.
func writeThrough(f *os.File, b []byte) error {
	return writeFrame(f, b) // want syncclose "file passed to writeFrame in writeThrough, which can return without an fsync"
}

func writeFrame(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

// fireAndForget drops the write error on the floor.
func fireAndForget(f *os.File, b []byte) error {
	f.Write(b) // want syncclose "file write error discarded"
	return f.Sync()
}

// blankedError discards the error explicitly; just as silent a torn frame.
func blankedError(f *os.File) error {
	_, _ = f.WriteString("frame") // want syncclose "file write error discarded"
	return f.Sync()
}
