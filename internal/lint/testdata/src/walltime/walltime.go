// Package walltime is golden-test input for the walltime analyzer.
package walltime

import "time"

// binEnd advances stream time: pure arithmetic, no wall clock.
func binEnd(at time.Time, bin time.Duration) time.Time {
	return at.Truncate(bin).Add(bin)
}

// expired compares stream timestamps with Time methods: allowed.
func expired(deadline, at time.Time) bool {
	return at.After(deadline)
}

// fromUnix constructs a timestamp from stream data: allowed.
func fromUnix(sec int64) time.Time {
	return time.Unix(sec, 0)
}

// stamp reads the wall clock.
func stamp() time.Time {
	return time.Now() // want walltime "wall-clock call time.Now"
}

// elapsed reads the wall clock through Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want walltime "wall-clock call time.Since"
}

// stall blocks on the wall clock.
func stall() {
	time.Sleep(time.Millisecond) // want walltime "wall-clock call time.Sleep"
}

// clockFunc leaks the wall clock as a value, not just a call.
func clockFunc() func() time.Time {
	return time.Now // want walltime "wall-clock call time.Now"
}
