// Package ignore is golden-test input for the //keplervet:ignore
// suppression machinery. TestIgnoreSuppression asserts against this file
// programmatically (no // want comments): the two suppressed sites must
// produce nothing, the unsuppressed twin must still be reported, the
// unused directive must be reported as such, and the malformed
// directives must each surface a "keplervet" diagnostic.
package ignore

import "time"

// suppressedTrailing carries the directive on the violating line itself.
func suppressedTrailing() time.Time {
	return time.Now() //keplervet:ignore walltime test fixture: trailing suppression
}

// suppressedStandalone carries the directive on the line above.
func suppressedStandalone() time.Time {
	//keplervet:ignore walltime test fixture: standalone suppression
	return time.Now()
}

// unsuppressed is the identical violation with no directive — it proves
// each ignore above silenced exactly its own line, nothing more.
func unsuppressed() time.Time {
	return time.Now()
}

// clean has a directive with nothing to suppress: stale allowlist.
func clean() int {
	//keplervet:ignore walltime stale: nothing on the next line reads the clock
	return 1
}

// malformed directives: no analyzer name, unknown analyzer, no reason.
func malformedDirectives() int {
	//keplervet:ignore
	x := 1
	//keplervet:ignore nosuchanalyzer some reason
	x++
	//keplervet:ignore walltime
	return x
}
