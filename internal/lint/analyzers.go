package lint

import (
	"go/ast"
	"go/types"
)

// Analyzers returns the full keplervet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallTime, HookBarrier, AtomicStats, SyncClose}
}

// scopePaths builds a Scope predicate matching exact import paths.
func scopePaths(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if p == want {
				return true
			}
		}
		return false
	}
}

// calleeObj resolves the static callee of a call expression: a package
// function, a method, or a dot-imported/builtin identifier. Calls through
// function values resolve to nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName is the bare name of a call's function or method, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isHookFieldCall reports whether call invokes a func-typed field of a
// struct type named "Hooks" — the shape of every lifecycle callback
// (inv.hooks.OutageResolved(...), d.hooks.BinClosed(...)).
func isHookFieldCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	if _, isFunc := selection.Type().Underlying().(*types.Signature); !isFunc {
		return false
	}
	recv := namedType(selection.Recv())
	return recv != nil && recv.Obj().Name() == "Hooks"
}

// rootObj resolves the object an assignable expression ultimately names:
// the variable for an identifier, the field for a selector chain. Index
// expressions return nil (per-key map/slice writes commute across
// iteration orders).
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// funcDecls maps every package-level function and method declaration to
// its types object.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// localCallees collects the package-local functions a declaration's body
// calls (including from function literals nested inside it). Calls through
// stored function values are invisible — a documented under-approximation.
func localCallees(pkg *Package, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeObj(pkg.Info, call).(*types.Func); ok {
			if _, local := decls[fn]; local {
				out[fn] = true
			}
		}
		return true
	})
	return out
}
