// Package lint is keplervet: a suite of project-specific static analyzers
// that mechanically enforce the repository's determinism and concurrency
// contracts. The load-bearing promise of the whole reproduction — detection
// output is a pure function of the record stream, byte-for-byte identical
// across shard counts, restarts, async probing and invest-worker counts —
// is guarded at runtime by equivalence tests; these analyzers catch the
// known ways of breaking it at compile review time instead:
//
//   - maporder: unsorted map iteration feeding order-sensitive output
//     (slice appends, hook/event writes, encoders, probe submission)
//   - walltime: wall-clock reads (time.Now/Since/Sleep/...) inside
//     detection packages, which must run on stream time
//   - hookbarrier: lifecycle hook invocations from functions not reachable
//     exclusively through the bin-close/flush barrier path
//   - atomicstats: metrics *Stats counter fields that are not atomic, or
//     atomic counters accessed non-atomically
//   - syncclose: os.File WAL/checkpoint writes in internal/store on paths
//     that can return without fsync-or-error
//
// A diagnostic can be suppressed with a same-line (or directly preceding
// full-line) comment:
//
//	//keplervet:ignore <analyzer> <reason>
//
// The reason is mandatory, and an ignore that suppresses nothing is itself
// reported — stale allowlists rot into blind spots otherwise.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// An Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// Scope reports whether the analyzer applies to a package import
	// path. The driver consults it; tests bypass it via Options.
	Scope func(importPath string) bool
	// Run analyzes one package and reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, serializable for the -json output mode.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Options configures a Run.
type Options struct {
	// AllPackages runs every analyzer on every package, ignoring
	// Analyzer.Scope. Golden-file tests use it to point analyzers at
	// testdata packages whose import paths are outside the real scope.
	AllPackages bool
	// Analyzers restricts the run to the named analyzers (nil = all).
	Analyzers []string
}

// ignoreTag is the suppression comment marker.
const ignoreTag = "//keplervet:ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	file     string
	line     int // line the directive suppresses (its own, or the next for full-line comments)
	analyzer string
	pos      token.Pos
	used     bool
}

// Run executes the analyzers over the packages, applies suppression
// comments, reports unused or malformed ignores, and returns the surviving
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	selected := analyzers
	if opts.Analyzers != nil {
		byName := make(map[string]bool, len(opts.Analyzers))
		for _, n := range opts.Analyzers {
			byName[n] = true
		}
		selected = nil
		for _, a := range analyzers {
			if byName[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range selected {
			if !opts.AllPackages && a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}

	directives, malformed := collectIgnores(pkgs, known)
	diags = append(diags, malformed...)
	diags = applyIgnores(diags, directives)
	diags = dedup(diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// collectIgnores parses every //keplervet:ignore comment in the packages.
// Malformed directives (missing analyzer, unknown analyzer, missing
// reason) are returned as diagnostics of the pseudo-analyzer "keplervet".
func collectIgnores(pkgs []*Package, known map[string]bool) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var malformed []Diagnostic
	report := func(fset *token.FileSet, pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		malformed = append(malformed, Diagnostic{
			Analyzer: "keplervet", File: p.Filename, Line: p.Line, Col: p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreTag) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignoreTag)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						report(pkg.Fset, c.Pos(), "malformed ignore: missing analyzer name (want %s <analyzer> <reason>)", ignoreTag)
						continue
					}
					if !known[fields[0]] {
						report(pkg.Fset, c.Pos(), "ignore names unknown analyzer %q", fields[0])
						continue
					}
					if len(fields) < 2 {
						report(pkg.Fset, c.Pos(), "ignore for %q has no reason; suppressions must be justified", fields[0])
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					// A comment on its own line suppresses the next line;
					// a trailing comment suppresses its own.
					if standsAlone(pkg.Sources[pos.Filename], pos) {
						line++
					}
					dirs = append(dirs, &ignoreDirective{
						file: pos.Filename, line: line, analyzer: fields[0], pos: c.Pos(),
					})
				}
			}
		}
	}
	return dirs, malformed
}

// standsAlone reports whether the comment at pos has nothing but
// whitespace before it on its source line.
func standsAlone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	// Offset points at the '/' of the comment; scan back to the newline.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true // first line of the file
}

// applyIgnores drops diagnostics matched by a directive and appends an
// unused-ignore diagnostic for every directive that matched nothing.
func applyIgnores(diags []Diagnostic, dirs []*ignoreDirective) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer == d.Analyzer && dir.file == d.File && dir.line == d.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			kept = append(kept, Diagnostic{
				Analyzer: "keplervet", File: dir.file, Line: dir.line, Col: 1,
				Message: fmt.Sprintf("unused ignore: no %s diagnostic here to suppress", dir.analyzer),
			})
		}
	}
	return kept
}

// dedup drops exact repeats: a nested map range reports the same effect
// once per enclosing loop.
func dedup(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	var out []Diagnostic
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// WriteJSON renders diagnostics as a JSON array (the machine-readable
// output mode behind `keplervet -json`). An empty run encodes as [].
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
