package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HookBarrier flags lifecycle-hook invocations (calls through func-typed
// fields of a struct named Hooks) from functions reachable outside the
// bin-close/flush barrier path. Hooks run synchronously on the ingestion
// goroutine at bin boundaries — the only points where outage state is
// allowed to change and where subscribers (event bus, store WAL, read
// snapshots) are guaranteed a consistent view. A hook fired from any other
// path publishes state mid-bin, which both races the shards and makes the
// published event sequence depend on call timing instead of the stream.
//
// The barrier roots — the functions from which hook firing is legitimate,
// directly or transitively — are the bin-close sequence and the stream
// flush: closeBinOver, Flush, finishProbes. The analyzer builds the
// package's static call graph (calls through stored function values are
// invisible — an under-approximation, so keep hook plumbing as direct
// calls) and reports any hook call whose firing function is transitively
// reachable from an exported non-root function without passing a root.
var HookBarrier = &Analyzer{
	Name: "hookbarrier",
	Doc: "Hooks.* callbacks may only fire on the bin-close/flush path " +
		"(closeBinOver/Flush/finishProbes and their exclusive callees)",
	Scope: scopePaths("kepler/internal/core"),
	Run:   runHookBarrier,
}

// barrierRoots are the functions that anchor the legitimate hook-firing
// path. Callers of a root are never at fault: the root is the barrier.
var barrierRoots = map[string]bool{
	"closeBinOver": true,
	"Flush":        true,
	"finishProbes": true,
}

func runHookBarrier(pass *Pass) {
	decls := funcDecls(pass.Pkg)

	type funcInfo struct {
		obj       *types.Func
		hookCalls []token.Pos
	}
	var funcs []*funcInfo
	callers := make(map[*types.Func][]*types.Func)
	byObj := make(map[*types.Func]*funcInfo)

	// Deterministic walk order: declaration order per file, files as listed.
	var objs []*types.Func
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					objs = append(objs, obj)
				}
			}
		}
	}

	for _, obj := range objs {
		fd := decls[obj]
		fi := &funcInfo{obj: obj}
		byObj[obj] = fi
		funcs = append(funcs, fi)
		for callee := range localCallees(pass.Pkg, fd, decls) {
			callers[callee] = append(callers[callee], obj)
		}
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isHookFieldCall(pass.Pkg.Info, call) {
					fi.hookCalls = append(fi.hookCalls, call.Pos())
				}
				return true
			})
		}
	}

	for _, fi := range funcs {
		if len(fi.hookCalls) == 0 || barrierRoots[fi.obj.Name()] {
			continue
		}
		if bad := escapesBarrier(fi.obj, callers); bad != nil {
			for _, pos := range fi.hookCalls {
				pass.Reportf(pos, "hook fired in %s, which is reachable from %s outside the bin-close/flush barrier path",
					fi.obj.Name(), bad.Name())
			}
		}
	}
}

// escapesBarrier climbs the caller graph from fn, stopping at barrier
// roots, and returns an exported non-root function that can reach fn — the
// witness that fn's hooks can fire off the barrier — or nil if every chain
// is absorbed by a root.
func escapesBarrier(fn *types.Func, callers map[*types.Func][]*types.Func) *types.Func {
	seen := map[*types.Func]bool{fn: true}
	queue := []*types.Func{fn}
	var witnesses []*types.Func
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.Exported() && !barrierRoots[cur.Name()] {
			witnesses = append(witnesses, cur)
			continue
		}
		for _, c := range callers[cur] {
			if seen[c] || barrierRoots[c.Name()] {
				continue
			}
			seen[c] = true
			queue = append(queue, c)
		}
	}
	if len(witnesses) == 0 {
		return nil
	}
	sort.Slice(witnesses, func(i, j int) bool { return witnesses[i].Name() < witnesses[j].Name() })
	return witnesses[0]
}
