package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package, ready for
// analysis. Syntax holds only the non-test files (GoFiles): the
// determinism contracts keplervet enforces are about production code, and
// tests legitimately use wall clocks, unsorted iteration and raw files.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Sources maps each parsed filename to its raw bytes (suppression
	// comments need to know what shares a line with them).
	Sources map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Error      *struct{ Err string }
}

// goList runs the go tool from dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns (relative to dir; "" means the current directory)
// into fully type-checked packages. It keeps the zero-dependency ethos:
// the go tool itself supplies compiled export data for every import
// (`go list -deps -export`), and the target packages are parsed and
// type-checked from source with the stdlib go/parser + go/types.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		sources := make(map[string][]byte, len(t.GoFiles))
		for _, name := range t.GoFiles {
			path := filepath.Join(t.Dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			sources[path] = src
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			Info:       info,
			Sources:    sources,
		})
	}
	return pkgs, nil
}
