package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/registry"
)

// Config parameterizes world generation.
type Config struct {
	Seed int64

	Tier1s, Tier2s, Contents, Stubs int
	Facilities, IXPs                int

	// CommunityFraction is the probability a tier-2 AS uses location
	// communities; other tiers derive from it. DocumentFraction is the
	// probability a community user publishes its scheme.
	CommunityFraction float64
	DocumentFraction  float64
	// CityGranularityFraction of schemes tag at city granularity (the
	// majority per Section 3.3); the rest tag facilities/IXPs.
	CityGranularityFraction float64
	// RemotePeerFraction of IXP memberships connect via layer-2 carriers
	// from another city (Castro et al. estimate ~20% at large IXPs).
	RemotePeerFraction float64
	// SiblingFraction of tier-2/content ASes share an organization with
	// another AS.
	SiblingFraction float64

	Collectors          int
	VantagePerCollector int
}

// DefaultConfig is a laptop-sized world adequate for tests and examples.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		Tier1s:                  4,
		Tier2s:                  40,
		Contents:                16,
		Stubs:                   140,
		Facilities:              60,
		IXPs:                    18,
		CommunityFraction:       0.75,
		DocumentFraction:        0.85,
		CityGranularityFraction: 0.55,
		RemotePeerFraction:      0.20,
		SiblingFraction:         0.08,
		Collectors:              3,
		VantagePerCollector:     10,
	}
}

// tier1ASNs gives the generated tier-1s recognizable numbers.
var tier1ASNs = []bgp.ASN{3356, 1299, 2914, 3257, 6762, 6453, 3320, 701, 174, 6461}

var facilityOperators = []string{
	"Equinix", "Telehouse", "Interxion", "Telecity", "Digital Realty",
	"Coresite", "Global Switch", "NTT Facilities", "CyrusOne", "Iron Mountain",
}

// genFacility is the pre-ID facility being assembled.
type genFacility struct {
	truth   registry.FacilityTruth
	city    geo.City
	members map[bgp.ASN]bool
}

// genIXP is the pre-ID IXP being assembled.
type genIXP struct {
	truth   registry.IXPTruth
	city    geo.City
	fabIdx  []int // indices into gen facilities
	members map[bgp.ASN]bool
	rsASN   bgp.ASN
}

// Generate builds a world from the config. Generation is deterministic.
func Generate(cfg Config) (*World, error) {
	gw := geo.DefaultWorld()
	cities := gw.Cities()
	if len(cities) == 0 {
		return nil, errNoCities
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- facilities, Zipf-ish concentration in hub cities ---
	// Hub order: interleave Europe and North America first (matching the
	// real peering ecosystem), then the rest.
	hubs := hubOrder(cities)
	facs := make([]*genFacility, 0, cfg.Facilities)
	for i := 0; i < cfg.Facilities; i++ {
		// city rank ~ Zipf: repeatedly halve the candidate window.
		rank := 0
		for rank < len(hubs)-1 && rng.Float64() < 0.72 {
			rank = rng.Intn(len(hubs))
			break
		}
		city := hubs[rank%len(hubs)]
		op := facilityOperators[rng.Intn(len(facilityOperators))]
		f := &genFacility{
			city:    city,
			members: make(map[bgp.ASN]bool),
			truth: registry.FacilityTruth{
				Name:     fmt.Sprintf("%s %s %d", op, city.Name, i+1),
				Operator: op,
				Addr: colo.Address{
					Street:   fmt.Sprintf("%d Peering Way", 100+i),
					Postcode: fmt.Sprintf("P%04d", i+1),
					Country:  city.Country,
				},
				City: city.Name,
			},
		}
		facs = append(facs, f)
	}
	facsInCity := make(map[geo.CityID][]int)
	for i, f := range facs {
		facsInCity[f.city.ID] = append(facsInCity[f.city.ID], i)
	}

	// --- IXPs in cities that have facilities ---
	var ixps []*genIXP
	cityList := make([]geo.CityID, 0, len(facsInCity))
	for c := range facsInCity {
		cityList = append(cityList, c)
	}
	sort.Slice(cityList, func(i, j int) bool { return cityList[i] < cityList[j] })
	// Prefer cities with many facilities for the big exchanges.
	sort.SliceStable(cityList, func(i, j int) bool {
		return len(facsInCity[cityList[i]]) > len(facsInCity[cityList[j]])
	})
	for i := 0; i < cfg.IXPs && len(cityList) > 0; i++ {
		cid := cityList[i%len(cityList)]
		city, _ := gw.City(cid)
		candidates := facsInCity[cid]
		nFab := 1
		if len(candidates) > 1 {
			nFab = 1 + rng.Intn(minInt(3, len(candidates)))
		}
		fabIdx := pickN(rng, candidates, nFab)
		name := ixpName(city, i)
		ix := &genIXP{
			city:    city,
			fabIdx:  fabIdx,
			members: make(map[bgp.ASN]bool),
			rsASN:   bgp.ASN(59000 + i),
			truth: registry.IXPTruth{
				Name: name,
				URL:  fmt.Sprintf("https://www.%s.example.net", fmt.Sprintf("ix%d", i+1)),
				City: city.Name,
				ASNs: []bgp.ASN{bgp.ASN(59000 + i)},
				LANs: []netip.Prefix{
					netip.PrefixFrom(netip.AddrFrom4([4]byte{185, byte(i + 1), 0, 0}), 22),
					netip.PrefixFrom(netip.AddrFrom16(v6LAN(i)), 48),
				},
			},
		}
		for _, fi := range fabIdx {
			ix.truth.FacilityAddrs = append(ix.truth.FacilityAddrs, facs[fi].truth.Addr)
		}
		ixps = append(ixps, ix)
	}
	ixpsInCity := make(map[geo.CityID][]int)
	for i, ix := range ixps {
		ixpsInCity[ix.city.ID] = append(ixpsInCity[ix.city.ID], i)
	}

	// --- ASes ---
	var ases []*AS
	addAS := func(a *AS) { ases = append(ases, a) }

	prefixIdx := 0
	nextPrefix := func() netip.Prefix {
		// 20.0.0.0 upward in /24 steps: globally routable, non-bogon.
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{
			byte(20 + prefixIdx>>16), byte(prefixIdx >> 8), byte(prefixIdx), 0,
		}), 24)
		prefixIdx++
		return p
	}
	prefix6Idx := 0
	nextPrefix6 := func() netip.Prefix {
		var b [16]byte
		b[0], b[1] = 0x2a, 0x10
		b[2], b[3] = byte(prefix6Idx>>8), byte(prefix6Idx)
		prefix6Idx++
		return netip.PrefixFrom(netip.AddrFrom16(b), 32)
	}

	pickCity := func() geo.City { return hubs[rng.Intn(len(hubs))] }

	// Tier-1s: global footprint.
	for i := 0; i < cfg.Tier1s; i++ {
		asn := tier1ASNs[i%len(tier1ASNs)]
		if i >= len(tier1ASNs) {
			asn = bgp.ASN(2800 + i)
		}
		a := &AS{
			ASN: asn, Type: Tier1,
			Name:     fmt.Sprintf("Backbone-%d", i+1),
			OrgName:  fmt.Sprintf("Backbone %d Communications Inc", i+1),
			HomeCity: hubs[i%len(hubs)].ID,
		}
		nPfx := 4 + rng.Intn(3)
		for p := 0; p < nPfx; p++ {
			a.Prefixes = append(a.Prefixes, nextPrefix())
		}
		a.Prefixes6 = append(a.Prefixes6, nextPrefix6())
		addAS(a)
	}
	for i := 0; i < cfg.Tier2s; i++ {
		city := pickCity()
		a := &AS{
			ASN: bgp.ASN(6000 + i), Type: Tier2,
			Name:     fmt.Sprintf("Regional-%d", i+1),
			OrgName:  fmt.Sprintf("Regional Networks %d Ltd", i+1),
			HomeCity: city.ID,
		}
		nPfx := 2 + rng.Intn(3)
		for p := 0; p < nPfx; p++ {
			a.Prefixes = append(a.Prefixes, nextPrefix())
		}
		if rng.Float64() < 0.6 {
			a.Prefixes6 = append(a.Prefixes6, nextPrefix6())
		}
		addAS(a)
	}
	for i := 0; i < cfg.Contents; i++ {
		city := pickCity()
		a := &AS{
			ASN: bgp.ASN(15000 + i), Type: Content,
			Name:     fmt.Sprintf("CDN-%d", i+1),
			OrgName:  fmt.Sprintf("Content Delivery %d LLC", i+1),
			HomeCity: city.ID,
		}
		nPfx := 2 + rng.Intn(4)
		for p := 0; p < nPfx; p++ {
			a.Prefixes = append(a.Prefixes, nextPrefix())
		}
		if rng.Float64() < 0.9 {
			a.Prefixes6 = append(a.Prefixes6, nextPrefix6())
		}
		addAS(a)
	}
	for i := 0; i < cfg.Stubs; i++ {
		city := pickCity()
		a := &AS{
			ASN: bgp.ASN(30000 + i), Type: Stub,
			Name:     fmt.Sprintf("Edge-%d", i+1),
			OrgName:  fmt.Sprintf("Edge Access %d BV", i+1),
			HomeCity: city.ID,
		}
		a.Prefixes = append(a.Prefixes, nextPrefix())
		if rng.Float64() < 0.35 {
			a.Prefixes6 = append(a.Prefixes6, nextPrefix6())
		}
		addAS(a)
	}

	// Siblings: merge some org names pairwise among tier2/content.
	var orgCandidates []*AS
	for _, a := range ases {
		if a.Type == Tier2 || a.Type == Content {
			orgCandidates = append(orgCandidates, a)
		}
	}
	for i := 0; i+1 < len(orgCandidates); i += 2 {
		if rng.Float64() < cfg.SiblingFraction*2 {
			orgCandidates[i+1].OrgName = orgCandidates[i].OrgName
		}
	}

	// --- facility presence (indices into facs) ---
	presence := make(map[bgp.ASN][]int)
	addPresence := func(a *AS, fi int) {
		for _, x := range presence[a.ASN] {
			if x == fi {
				return
			}
		}
		presence[a.ASN] = append(presence[a.ASN], fi)
		facs[fi].members[a.ASN] = true
	}
	for _, a := range ases {
		var want int
		switch a.Type {
		case Tier1:
			want = len(facs) / 2
		case Tier2:
			want = 2 + rng.Intn(6)
		case Content:
			want = 3 + rng.Intn(8)
		case Stub:
			want = rng.Intn(3)
		}
		// Prefer facilities in the home city, then anywhere.
		home := facsInCity[a.HomeCity]
		for _, fi := range pickN(rng, home, minInt(len(home), 1+want/3)) {
			addPresence(a, fi)
		}
		for len(presence[a.ASN]) < want {
			addPresence(a, rng.Intn(len(facs)))
		}
	}

	// --- IXP memberships ---
	memberships := make(map[bgp.ASN][]IXPMembership) // with gen indices in PortFacility via placeholder
	type memPlace struct {
		ixp    int
		portFi int
		remote bool
		viaRS  bool
	}
	places := make(map[bgp.ASN][]memPlace)
	join := func(a *AS, ixi int, remote bool) {
		ix := ixps[ixi]
		if ix.members[a.ASN] {
			return
		}
		port := ix.fabIdx[rng.Intn(len(ix.fabIdx))]
		if !remote {
			// Local members port at a fabric facility where they colocate,
			// gaining presence if needed.
			addPresence(a, port)
		}
		viaRS := false
		switch a.Type {
		case Stub, Content:
			viaRS = rng.Float64() < 0.8
		case Tier2:
			viaRS = rng.Float64() < 0.5
		}
		ix.members[a.ASN] = true
		places[a.ASN] = append(places[a.ASN], memPlace{ixp: ixi, portFi: port, remote: remote, viaRS: viaRS})
	}
	for _, a := range ases {
		var joins int
		switch a.Type {
		case Tier1:
			joins = rng.Intn(2) // tier1s mostly avoid public peering
		case Tier2:
			joins = 1 + rng.Intn(3)
		case Content:
			joins = 2 + rng.Intn(4)
		case Stub:
			if rng.Float64() < 0.5 {
				joins = 1
			}
		}
		// Prefer IXPs in cities of presence.
		var local []int
		seen := map[int]bool{}
		for _, fi := range presence[a.ASN] {
			for _, ixi := range ixpsInCity[facs[fi].city.ID] {
				if !seen[ixi] {
					seen[ixi] = true
					local = append(local, ixi)
				}
			}
		}
		sort.Ints(local)
		for _, ixi := range pickN(rng, local, minInt(len(local), joins)) {
			join(a, ixi, false)
		}
		for len(places[a.ASN]) < joins && len(ixps) > 0 {
			ixi := rng.Intn(len(ixps))
			remote := rng.Float64() < cfg.RemotePeerFraction*2 // fills are mostly remote
			join(a, ixi, remote)
		}
	}

	// --- community usage ---
	for _, a := range ases {
		var p float64
		switch a.Type {
		case Tier1:
			p = 0.9
		case Tier2:
			p = cfg.CommunityFraction
		case Content:
			p = cfg.CommunityFraction * 0.8
		case Stub:
			p = cfg.CommunityFraction * 0.2
		}
		if rng.Float64() < p {
			a.UsesCommunities = true
			a.Documents = rng.Float64() < cfg.DocumentFraction
			a.TagsIPv6 = rng.Float64() < 0.55
			if rng.Float64() < cfg.CityGranularityFraction {
				a.Granularity = colo.PoPCity
			} else {
				a.Granularity = colo.PoPFacility
			}
		}
		// Community scrubbing is orthogonal to tagging; operators who run
		// community schemes are less inclined to strip them.
		strip := 0.30
		if a.UsesCommunities {
			strip = 0.12
		}
		a.StripsForeign = rng.Float64() < strip
	}

	// --- ground truth + colocation map (IDs become final here) ---
	truth := &registry.GroundTruth{}
	for _, f := range facs {
		ft := f.truth
		ft.Members = sortedMemberList(f.members)
		truth.Facilities = append(truth.Facilities, ft)
	}
	for _, ix := range ixps {
		it := ix.truth
		it.Members = sortedMemberList(ix.members)
		truth.IXPs = append(truth.IXPs, it)
	}
	perfect := registry.SnapshotOptions{
		PeeringDBFacilityCoverage: 1, PeeringDBMemberCoverage: 1,
		DCMapFacilityCoverage: 0, DCMapMemberCoverage: 0,
		PeeringDBIXPMemberCov: 1, EuroIXMemberCov: 0,
	}
	facRecs, ixpRecs := registry.Snapshot(truth, perfect, cfg.Seed)
	builder := colo.NewBuilder(gw)
	for _, r := range facRecs {
		builder.AddFacility(r)
	}
	for _, r := range ixpRecs {
		builder.AddIXP(r)
	}
	cmap := builder.Build()

	// Resolve gen indices to colo IDs.
	facID := make([]colo.FacilityID, len(facs))
	for i, f := range facs {
		id, ok := cmap.FacilityByAddress(f.truth.Addr)
		if !ok {
			return nil, fmt.Errorf("topology: facility %q lost in map build", f.truth.Name)
		}
		facID[i] = id
	}
	ixpID := make([]colo.IXPID, len(ixps))
	for i, ix := range ixps {
		id, ok := cmap.IXPByOperatedASN(ix.rsASN)
		if !ok {
			return nil, fmt.Errorf("topology: IXP %q lost in map build", ix.truth.Name)
		}
		ixpID[i] = id
	}
	for asn, ps := range places {
		for _, p := range ps {
			memberships[asn] = append(memberships[asn], IXPMembership{
				IXP:          ixpID[p.ixp],
				PortFacility: facID[p.portFi],
				Remote:       p.remote,
				ViaRS:        p.viaRS,
			})
		}
	}

	w := &World{
		Cfg:      cfg,
		ASes:     ases,
		byASN:    make(map[bgp.ASN]*AS, len(ases)),
		linksOf:  make(map[bgp.ASN][]*Interconnect),
		originOf: make(map[netip.Prefix]bgp.ASN),
		RSASNs:   make(map[bgp.ASN]colo.IXPID),
		Map:      cmap,
		Truth:    truth,
		Geo:      gw,
	}
	sort.Slice(w.ASes, func(i, j int) bool { return w.ASes[i].ASN < w.ASes[j].ASN })
	for _, a := range w.ASes {
		w.byASN[a.ASN] = a
		for _, fi := range presence[a.ASN] {
			a.Facilities = append(a.Facilities, facID[fi])
		}
		sort.Slice(a.Facilities, func(i, j int) bool { return a.Facilities[i] < a.Facilities[j] })
		a.Memberships = memberships[a.ASN]
		sort.Slice(a.Memberships, func(i, j int) bool { return a.Memberships[i].IXP < a.Memberships[j].IXP })
		for _, p := range a.Prefixes {
			w.originOf[p] = a.ASN
		}
		for _, p := range a.Prefixes6 {
			w.originOf[p] = a.ASN
		}
	}
	for i, ix := range ixps {
		w.RSASNs[ix.rsASN] = ixpID[i]
	}

	w.buildLinks(rng)
	w.buildCollectors(rng)
	w.buildSchemes()
	return w, nil
}

func hubOrder(cities []geo.City) []geo.City {
	var eu, na, rest []geo.City
	for _, c := range cities {
		switch c.Continent {
		case geo.Europe:
			eu = append(eu, c)
		case geo.NorthAmerica:
			na = append(na, c)
		default:
			rest = append(rest, c)
		}
	}
	out := make([]geo.City, 0, len(cities))
	for i := 0; i < len(eu) || i < len(na); i++ {
		if i < len(eu) {
			out = append(out, eu[i])
		}
		if i < len(na) && i%2 == 0 {
			out = append(out, na[i])
		}
	}
	// Remaining NA cities and the rest trail.
	for i := 0; i < len(na); i += 2 {
		if i+1 < len(na) {
			out = append(out, na[i+1])
		}
	}
	return append(out, rest...)
}

func ixpName(city geo.City, i int) string {
	base := city.Name
	if len(base) > 3 {
		base = base[:3]
	}
	return fmt.Sprintf("%s-IX%d", asUpper(base), i+1)
}

func asUpper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] &^= 0x20
		}
	}
	return string(b)
}

func v6LAN(i int) [16]byte {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x07, 0xf8
	b[4], b[5] = byte(i>>8), byte(i)
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func pickN(rng *rand.Rand, pool []int, n int) []int {
	if n >= len(pool) {
		out := make([]int, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]int, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func sortedMemberList(set map[bgp.ASN]bool) []bgp.ASN {
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
