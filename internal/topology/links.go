package topology

import (
	"math/rand"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/registry"
)

// linkKey dedups parallel links: one link per (pair, kind, venue).
type linkKey struct {
	a, b bgp.ASN
	kind LinkKind
	fac  colo.FacilityID
	ixp  colo.IXPID
}

func (w *World) addLink(seen map[linkKey]bool, a, b bgp.ASN, rel Rel, kind LinkKind, fac colo.FacilityID, ixp colo.IXPID, afac, bfac colo.FacilityID) *Interconnect {
	if a == b {
		return nil
	}
	ka, kb := a, b
	kfa, kfb := afac, bfac
	krel := rel
	if ka > kb {
		ka, kb = kb, ka
		kfa, kfb = kfb, kfa
		if rel == RelC2P {
			// canonical key keeps A<B; the stored link keeps the
			// customer first, so only the key is reordered.
		}
	}
	key := linkKey{a: ka, b: kb, kind: kind, fac: fac, ixp: ixp}
	if seen[key] {
		return nil
	}
	seen[key] = true
	l := &Interconnect{
		ID: len(w.Links), A: a, B: b, Rel: krel, Kind: kind,
		Facility: fac, IXP: ixp, AFac: afac, BFac: bfac,
	}
	w.Links = append(w.Links, l)
	w.linksOf[a] = append(w.linksOf[a], l)
	w.linksOf[b] = append(w.linksOf[b], l)
	return l
}

// hasTransit reports whether a transit relationship already connects the
// pair (peering alongside transit is excluded to keep policies clean).
func (w *World) hasTransit(a, b bgp.ASN) bool {
	for _, l := range w.linksOf[a] {
		if l.Involves(b) && l.Rel == RelC2P {
			return true
		}
	}
	return false
}

func (w *World) commonFacility(a, b *AS) colo.FacilityID {
	for _, fa := range a.Facilities {
		for _, fb := range b.Facilities {
			if fa == fb {
				return fa
			}
		}
	}
	return 0
}

func (w *World) buildLinks(rng *rand.Rand) {
	seen := make(map[linkKey]bool)

	var tier1s, tier2s, contents, stubs []*AS
	for _, a := range w.ASes {
		switch a.Type {
		case Tier1:
			tier1s = append(tier1s, a)
		case Tier2:
			tier2s = append(tier2s, a)
		case Content:
			contents = append(contents, a)
		case Stub:
			stubs = append(stubs, a)
		}
	}

	// Tier-1 full mesh: settlement-free PNIs at shared facilities.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			fac := w.commonFacility(a, b)
			if fac == 0 && len(a.Facilities) > 0 {
				fac = a.Facilities[0] // tethered cross-connect
			}
			w.addLink(seen, a.ASN, b.ASN, RelP2P, PNI, fac, 0, 0, 0)
		}
	}

	pickProviders := func(a *AS, pool []*AS, n int) []*AS {
		if len(pool) == 0 {
			return nil
		}
		idx := rng.Perm(len(pool))
		var out []*AS
		for _, j := range idx {
			if pool[j].ASN == a.ASN {
				continue
			}
			out = append(out, pool[j])
			if len(out) == n {
				break
			}
		}
		return out
	}

	transit := func(cust *AS, prov *AS) {
		fac := w.commonFacility(cust, prov)
		if fac == 0 && len(prov.Facilities) > 0 {
			fac = prov.Facilities[rng.Intn(len(prov.Facilities))]
		}
		w.addLink(seen, cust.ASN, prov.ASN, RelC2P, PNI, fac, 0, 0, 0)
	}

	for _, a := range tier2s {
		for _, p := range pickProviders(a, tier1s, 1+rng.Intn(2)) {
			transit(a, p)
		}
	}
	for _, a := range contents {
		pool := append(append([]*AS{}, tier1s...), tier2s...)
		for _, p := range pickProviders(a, pool, 1+rng.Intn(2)) {
			transit(a, p)
		}
	}
	for _, a := range stubs {
		for _, p := range pickProviders(a, tier2s, 1+rng.Intn(2)) {
			transit(a, p)
		}
		// A few stubs are dual-homed to a tier-1 as well.
		if rng.Float64() < 0.1 {
			for _, p := range pickProviders(a, tier1s, 1) {
				transit(a, p)
			}
		}
	}

	// Public peering at IXPs.
	type port struct {
		asn    bgp.ASN
		fac    colo.FacilityID
		remote bool
		viaRS  bool
	}
	ixpPorts := make(map[colo.IXPID][]port)
	for _, a := range w.ASes {
		for _, mem := range a.Memberships {
			ixpPorts[mem.IXP] = append(ixpPorts[mem.IXP], port{
				asn: a.ASN, fac: mem.PortFacility, remote: mem.Remote, viaRS: mem.ViaRS,
			})
		}
	}
	ixpIDs := make([]colo.IXPID, 0, len(ixpPorts))
	for id := range ixpPorts {
		ixpIDs = append(ixpIDs, id)
	}
	sort.Slice(ixpIDs, func(i, j int) bool { return ixpIDs[i] < ixpIDs[j] })

	for _, ixid := range ixpIDs {
		ports := ixpPorts[ixid]
		sort.Slice(ports, func(i, j int) bool { return ports[i].asn < ports[j].asn })
		for i := 0; i < len(ports); i++ {
			for j := i + 1; j < len(ports); j++ {
				pa, pb := ports[i], ports[j]
				if w.hasTransit(pa.asn, pb.asn) {
					continue
				}
				switch {
				case pa.viaRS && pb.viaRS:
					kind := Multilateral
					if pa.remote || pb.remote {
						kind = RemotePeering
					}
					w.addLink(seen, pa.asn, pb.asn, RelP2P, kind, 0, ixid, pa.fac, pb.fac)
				case rng.Float64() < 0.35:
					kind := PublicBilateral
					if pa.remote || pb.remote {
						kind = RemotePeering
					}
					w.addLink(seen, pa.asn, pb.asn, RelP2P, kind, 0, ixid, pa.fac, pb.fac)
				}
			}
		}
	}

	// Content-to-edge PNIs at shared facilities (the "flattening").
	for _, c := range contents {
		for _, e := range append(append([]*AS{}, tier2s...), stubs...) {
			if rng.Float64() >= 0.08 {
				continue
			}
			if w.hasTransit(c.ASN, e.ASN) {
				continue
			}
			if fac := w.commonFacility(c, e); fac != 0 {
				w.addLink(seen, c.ASN, e.ASN, RelP2P, PNI, fac, 0, 0, 0)
			}
		}
	}
}

var collectorNames = []string{"rrc00", "rrc01", "rrc03", "route-views2", "route-views4", "rrc12"}

func (w *World) buildCollectors(rng *rand.Rand) {
	// Vantage candidates: transit and content ASes, interleaving community
	// users and non-users — collectors peer with whoever volunteers, so
	// roughly half the monitored paths carry location communities
	// (Section 5.2's ~50% coverage).
	var users, nonUsers []bgp.ASN
	for _, a := range w.ASes {
		if a.Type == Tier1 || a.Type == Tier2 || a.Type == Content {
			if a.UsesCommunities {
				users = append(users, a.ASN)
			} else {
				nonUsers = append(nonUsers, a.ASN)
			}
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	sort.Slice(nonUsers, func(i, j int) bool { return nonUsers[i] < nonUsers[j] })
	var candidates []bgp.ASN
	for i := 0; i < len(users) || i < len(nonUsers); i++ {
		if i < len(users) {
			candidates = append(candidates, users[i])
		}
		if i < len(nonUsers) {
			candidates = append(candidates, nonUsers[i])
		}
	}

	n := w.Cfg.Collectors
	if n > len(collectorNames) {
		n = len(collectorNames)
	}
	used := 0
	for i := 0; i < n; i++ {
		c := Collector{Name: collectorNames[i]}
		for v := 0; v < w.Cfg.VantagePerCollector && used < len(candidates); v++ {
			c.Peers = append(c.Peers, candidates[used])
			used++
		}
		if len(c.Peers) == 0 && len(candidates) > 0 {
			c.Peers = append(c.Peers, candidates[rng.Intn(len(candidates))])
		}
		w.Collectors = append(w.Collectors, c)
	}
}

// buildSchemes derives each community-using AS's scheme from its links and
// appends the ground-truth schemes for the registry renderer.
func (w *World) buildSchemes() {
	for _, a := range w.ASes {
		if !a.UsesCommunities {
			continue
		}
		seen := make(map[colo.PoP]bool)
		var entries []registry.SchemeEntry
		for _, l := range w.linksOf[a.ASN] {
			pop := l.IngressPoP(a.ASN, a.Granularity, w.Map)
			if !pop.IsValid() || seen[pop] {
				continue
			}
			seen[pop] = true
			entries = append(entries, registry.SchemeEntry{
				Low:  SchemeLow(pop),
				Kind: pop.Kind,
				Name: w.PoPName(pop),
			})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Low < entries[j].Low })
		w.Truth.Schemes = append(w.Truth.Schemes, registry.SchemeTruth{
			ASN:       a.ASN,
			Documents: a.Documents,
			Entries:   entries,
		})
	}
}

// PoPName renders the human name of a PoP as an operator would write it in
// community documentation.
func (w *World) PoPName(p colo.PoP) string {
	switch p.Kind {
	case colo.PoPFacility:
		if f, ok := w.Map.Facility(colo.FacilityID(p.ID)); ok {
			return f.Name
		}
	case colo.PoPIXP:
		if ix, ok := w.Map.IXP(colo.IXPID(p.ID)); ok {
			return ix.Name
		}
	case colo.PoPCity:
		if c, ok := w.Geo.City(geo.CityID(p.ID)); ok {
			return c.Name
		}
	}
	return ""
}

// IngressCommunity returns the community asn attaches to routes received
// over link l, or ok=false when the AS does not tag or the PoP is unknown.
func (w *World) IngressCommunity(asn bgp.ASN, l *Interconnect) (bgp.Community, colo.PoP, bool) {
	a, ok := w.byASN[asn]
	if !ok || !a.UsesCommunities {
		return bgp.Community{}, colo.PoP{}, false
	}
	pop := l.IngressPoP(asn, a.Granularity, w.Map)
	if !pop.IsValid() {
		return bgp.Community{}, colo.PoP{}, false
	}
	return CommunityFor(asn, pop), pop, true
}

// RSASNOf returns the route-server ASN of the IXP, or 0.
func (w *World) RSASNOf(ixp colo.IXPID) bgp.ASN {
	for asn, id := range w.RSASNs {
		if id == ixp {
			return asn
		}
	}
	return 0
}

// IsRS reports whether asn is an IXP route server.
func (w *World) IsRS(asn bgp.ASN) bool {
	_, ok := w.RSASNs[asn]
	return ok
}
