// Package topology generates the synthetic Internet Kepler is evaluated on:
// autonomous systems of several tiers, colocation facilities, IXPs with
// route servers and multi-facility switching fabrics, and the four peering
// flavors of Section 2 — private interconnects (PNI), public bilateral
// peering, multilateral peering over route servers, and remote peering via
// layer-2 carriers. Every interconnection is bound to the physical
// infrastructure that carries it, which is exactly the property the paper
// exploits: a facility or IXP failure takes down a *set* of links spanning
// many AS pairs.
//
// The generator is deterministic for a given Config (seeded PRNG, sorted
// iteration everywhere), so experiments and tests are reproducible.
package topology

import (
	"fmt"
	"net/netip"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/registry"
)

// ASType is the role of an AS in the hierarchy.
type ASType uint8

// AS roles.
const (
	Tier1 ASType = iota
	Tier2
	Content
	Stub
)

// String names the role.
func (t ASType) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Content:
		return "content"
	case Stub:
		return "stub"
	default:
		return "unknown"
	}
}

// IXPMembership records one AS's port at one IXP.
type IXPMembership struct {
	IXP          colo.IXPID
	PortFacility colo.FacilityID // fabric facility terminating the port
	Remote       bool            // reached via a layer-2 carrier from afar
	ViaRS        bool            // uses the route server (multilateral)
}

// AS is one autonomous system.
type AS struct {
	ASN      bgp.ASN
	Type     ASType
	Name     string
	OrgName  string
	HomeCity geo.CityID

	Prefixes  []netip.Prefix // originated IPv4 prefixes
	Prefixes6 []netip.Prefix // originated IPv6 prefixes

	Facilities  []colo.FacilityID // colocation presence
	Memberships []IXPMembership

	// UsesCommunities: the AS tags ingress points with location
	// communities. Documents: it also publishes its scheme (minable).
	UsesCommunities bool
	Documents       bool
	// TagsIPv6: the AS also tags its IPv6 routes. Many operators do not
	// (the paper: "ISPs still focus less on optimizing IPv6 traffic
	// flows"), which is why IPv6 community coverage trails IPv4.
	TagsIPv6 bool
	// StripsForeign: the AS scrubs communities attached by other networks
	// when re-announcing routes — common boundary hygiene that limits how
	// far location communities propagate and bounds Kepler's coverage to
	// about half of all paths (Section 5.2).
	StripsForeign bool
	// Granularity is the PoP kind the AS encodes: facility-level schemes
	// also tag IXP ingresses at IXP granularity; city-level schemes tag
	// everything at city granularity (the majority case per Section 3.3).
	Granularity colo.PoPKind
}

// Rel is the business relationship on a link.
type Rel int8

// Relationships: on a RelC2P link A is the customer and B the provider.
const (
	RelC2P Rel = -1
	RelP2P Rel = 0
)

// LinkKind is the physical/commercial flavor of an interconnect.
type LinkKind uint8

// Link kinds, in decreasing selection preference (operators prefer private
// interconnects over public, and local ports over remote ones).
const (
	PNI LinkKind = iota
	PublicBilateral
	Multilateral
	RemotePeering
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case PNI:
		return "pni"
	case PublicBilateral:
		return "bilateral"
	case Multilateral:
		return "multilateral"
	case RemotePeering:
		return "remote"
	default:
		return "unknown"
	}
}

// Interconnect is one physical adjacency between two ASes, bound to the
// infrastructure that carries it.
type Interconnect struct {
	ID   int
	A, B bgp.ASN
	Rel  Rel // RelC2P: A is customer of B
	Kind LinkKind

	// Facility is set for PNI links: the building housing the cross-connect.
	Facility colo.FacilityID
	// IXP is set for public peering links (bilateral, multilateral, remote).
	IXP colo.IXPID
	// AFac/BFac are the fabric facilities terminating each side's IXP port
	// (zero when unknown). A facility outage severs every port it terminates.
	AFac, BFac colo.FacilityID
}

// Peer returns the other endpoint.
func (l *Interconnect) Peer(asn bgp.ASN) bgp.ASN {
	if l.A == asn {
		return l.B
	}
	return l.A
}

// Involves reports whether asn is an endpoint.
func (l *Interconnect) Involves(asn bgp.ASN) bool { return l.A == asn || l.B == asn }

// IngressPoP returns the physical PoP at which asn receives routes over
// this link, at the granularity the AS's community scheme uses. Facility-
// granularity schemes tag PNIs with the building and IXP peerings with the
// IXP; city schemes tag the city of the ingress.
func (l *Interconnect) IngressPoP(asn bgp.ASN, gran colo.PoPKind, cmap *colo.Map) colo.PoP {
	switch gran {
	case colo.PoPCity:
		var city geo.CityID
		if l.Facility != 0 {
			city = cmap.CityOf(colo.FacilityPoP(l.Facility))
		} else if l.IXP != 0 {
			city = cmap.CityOf(colo.IXPPoP(l.IXP))
		}
		if city == geo.NoCity {
			return colo.PoP{}
		}
		return colo.CityPoP(city)
	default:
		if l.Facility != 0 {
			return colo.FacilityPoP(l.Facility)
		}
		if l.IXP != 0 {
			return colo.IXPPoP(l.IXP)
		}
		return colo.PoP{}
	}
}

// PortFacility returns the fabric facility terminating asn's side of an
// IXP link (zero for PNIs or unknown ports).
func (l *Interconnect) PortFacility(asn bgp.ASN) colo.FacilityID {
	switch asn {
	case l.A:
		return l.AFac
	case l.B:
		return l.BFac
	}
	return 0
}

// Collector is one route collector and the ASes feeding it full tables.
type Collector struct {
	Name  string
	Peers []bgp.ASN
}

// World is the generated Internet.
type World struct {
	Cfg Config

	ASes  []*AS // sorted by ASN
	byASN map[bgp.ASN]*AS

	Links      []*Interconnect // ID = index
	linksOf    map[bgp.ASN][]*Interconnect
	originOf   map[netip.Prefix]bgp.ASN
	RSASNs     map[bgp.ASN]colo.IXPID // route-server ASN -> IXP
	Collectors []Collector

	// Map is the ground-truth colocation map (perfect knowledge); Kepler
	// runs against a noisy rebuild, but link construction and data-plane
	// synthesis use this one.
	Map   *colo.Map
	Truth *registry.GroundTruth
	Geo   *geo.World
}

// AS returns the AS by number.
func (w *World) AS(asn bgp.ASN) (*AS, bool) {
	a, ok := w.byASN[asn]
	return a, ok
}

// LinksOf returns all interconnects involving asn.
func (w *World) LinksOf(asn bgp.ASN) []*Interconnect { return w.linksOf[asn] }

// OriginOf returns the AS originating the prefix.
func (w *World) OriginOf(p netip.Prefix) (bgp.ASN, bool) {
	a, ok := w.originOf[p]
	return a, ok
}

// Registrations renders WHOIS-style org registrations for as2org.
func (w *World) Registrations() []as2org.Registration {
	out := make([]as2org.Registration, 0, len(w.ASes))
	for _, a := range w.ASes {
		country := ""
		if c, ok := w.Geo.City(a.HomeCity); ok {
			country = c.Country
		}
		out = append(out, as2org.Registration{ASN: a.ASN, OrgName: a.OrgName, Country: country})
	}
	return out
}

// SchemeLow derives the deterministic low-16-bit community value an AS
// uses for a given ingress PoP. Offsets keep kinds disjoint: cities from
// 2000, IXPs from 4000, facilities from 51000 (matching the style of real
// schemes like Init7's).
func SchemeLow(p colo.PoP) uint16 {
	switch p.Kind {
	case colo.PoPCity:
		return uint16(2000 + p.ID)
	case colo.PoPIXP:
		return uint16(4000 + p.ID)
	case colo.PoPFacility:
		return uint16(51000 + p.ID)
	default:
		return 0
	}
}

// CommunityFor returns the community asn attaches for ingress PoP p.
func CommunityFor(asn bgp.ASN, p colo.PoP) bgp.Community {
	return bgp.MakeCommunity(uint16(asn), SchemeLow(p))
}

// RSCommunityLow is the low half of route-server redistribution communities
// ("announce to all" tag redistributed to members).
const RSCommunityLow = 3000

// Errors.
var errNoCities = fmt.Errorf("topology: gazetteer has no cities")
