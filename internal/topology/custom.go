package topology

import (
	"net/netip"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/registry"
)

// NewEmptyWorld creates a world with no ASes or links over an existing
// colocation map, for hand-built scenarios (tests, worked examples such as
// the paper's Figure 2 topology). Populate it with AddAS and Connect.
func NewEmptyWorld(cmap *colo.Map, gw *geo.World) *World {
	return &World{
		byASN:    make(map[bgp.ASN]*AS),
		linksOf:  make(map[bgp.ASN][]*Interconnect),
		originOf: make(map[netip.Prefix]bgp.ASN),
		RSASNs:   make(map[bgp.ASN]colo.IXPID),
		Map:      cmap,
		Truth:    &registry.GroundTruth{},
		Geo:      gw,
	}
}

// AddAS inserts an AS. Prefix originations are indexed. ASes must be added
// before links referencing them.
func (w *World) AddAS(a *AS) {
	w.ASes = append(w.ASes, a)
	sort.Slice(w.ASes, func(i, j int) bool { return w.ASes[i].ASN < w.ASes[j].ASN })
	w.byASN[a.ASN] = a
	for _, p := range a.Prefixes {
		w.originOf[p] = a.ASN
	}
	for _, p := range a.Prefixes6 {
		w.originOf[p] = a.ASN
	}
}

// Connect adds an interconnect between a and b. For transit links pass
// rel=RelC2P with a as the customer. Returns the created link.
func (w *World) Connect(a, b bgp.ASN, rel Rel, kind LinkKind, fac colo.FacilityID, ixp colo.IXPID, afac, bfac colo.FacilityID) *Interconnect {
	l := &Interconnect{
		ID: len(w.Links), A: a, B: b, Rel: rel, Kind: kind,
		Facility: fac, IXP: ixp, AFac: afac, BFac: bfac,
	}
	w.Links = append(w.Links, l)
	w.linksOf[a] = append(w.linksOf[a], l)
	w.linksOf[b] = append(w.linksOf[b], l)
	return l
}

// RegisterRS declares asn to be the route server of ixp.
func (w *World) RegisterRS(asn bgp.ASN, ixp colo.IXPID) {
	w.RSASNs[asn] = ixp
}

// AddCollector registers a collector with the given vantage peers.
func (w *World) AddCollector(name string, peers ...bgp.ASN) {
	w.Collectors = append(w.Collectors, Collector{Name: name, Peers: peers})
}

// FinishSchemes recomputes ground-truth community schemes after hand-built
// ASes and links are in place.
func (w *World) FinishSchemes() {
	w.Truth.Schemes = nil
	w.buildSchemes()
}
