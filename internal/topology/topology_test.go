package topology

import (
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

func genDefault(t *testing.T) *World {
	t.Helper()
	w, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateCounts(t *testing.T) {
	w := genDefault(t)
	cfg := w.Cfg
	if got := len(w.ASes); got != cfg.Tier1s+cfg.Tier2s+cfg.Contents+cfg.Stubs {
		t.Errorf("ASes = %d", got)
	}
	if w.Map.NumFacilities() != cfg.Facilities {
		t.Errorf("facilities = %d, want %d", w.Map.NumFacilities(), cfg.Facilities)
	}
	if w.Map.NumIXPs() != cfg.IXPs {
		t.Errorf("ixps = %d, want %d", w.Map.NumIXPs(), cfg.IXPs)
	}
	if len(w.Links) == 0 {
		t.Fatal("no links generated")
	}
	if len(w.Collectors) != cfg.Collectors {
		t.Errorf("collectors = %d", len(w.Collectors))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w1 := genDefault(t)
	w2 := genDefault(t)
	if len(w1.Links) != len(w2.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(w1.Links), len(w2.Links))
	}
	for i := range w1.Links {
		a, b := w1.Links[i], w2.Links[i]
		if a.A != b.A || a.B != b.B || a.Kind != b.Kind || a.Facility != b.Facility || a.IXP != b.IXP {
			t.Fatalf("link %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range w1.ASes {
		if w1.ASes[i].ASN != w2.ASes[i].ASN || w1.ASes[i].UsesCommunities != w2.ASes[i].UsesCommunities {
			t.Fatalf("AS %d differs", i)
		}
	}
}

func TestLinkInvariants(t *testing.T) {
	w := genDefault(t)
	for _, l := range w.Links {
		if l.A == l.B {
			t.Fatalf("self link: %+v", l)
		}
		switch l.Kind {
		case PNI:
			if l.IXP != 0 {
				t.Errorf("PNI with IXP set: %+v", l)
			}
			if l.Facility == 0 {
				t.Errorf("PNI without facility: %+v", l)
			}
		case PublicBilateral, Multilateral, RemotePeering:
			if l.IXP == 0 {
				t.Errorf("public link without IXP: %+v", l)
			}
			if l.Facility != 0 {
				t.Errorf("public link with PNI facility: %+v", l)
			}
		}
		if l.Rel == RelC2P && l.Kind != PNI {
			t.Errorf("transit over public peering: %+v", l)
		}
		// Port facilities of IXP links must belong to the IXP fabric.
		if l.IXP != 0 {
			ix, ok := w.Map.IXP(l.IXP)
			if !ok {
				t.Fatalf("link references unknown IXP %d", l.IXP)
			}
			for _, pf := range []colo.FacilityID{l.AFac, l.BFac} {
				if pf == 0 {
					continue
				}
				found := false
				for _, f := range ix.Facilities {
					if f == pf {
						found = true
					}
				}
				if !found {
					t.Errorf("port facility %d not in fabric of IXP %d", pf, l.IXP)
				}
			}
		}
	}
}

func TestEveryASHasRouteToTier1(t *testing.T) {
	w := genDefault(t)
	// Every non-tier1 AS must have at least one provider link (otherwise it
	// would be partitioned from the core).
	for _, a := range w.ASes {
		if a.Type == Tier1 {
			continue
		}
		hasProvider := false
		for _, l := range w.LinksOf(a.ASN) {
			if l.Rel == RelC2P && l.A == a.ASN {
				hasProvider = true
				break
			}
		}
		if !hasProvider {
			t.Errorf("%v (%v) has no provider", a.ASN, a.Type)
		}
	}
}

func TestPrefixOrigination(t *testing.T) {
	w := genDefault(t)
	seen := make(map[string]bgp.ASN)
	for _, a := range w.ASes {
		if len(a.Prefixes) == 0 {
			t.Errorf("%v originates no IPv4 prefixes", a.ASN)
		}
		for _, p := range append(append([]interface{ String() string }{}, toStringers(a.Prefixes)...), toStringers(a.Prefixes6)...) {
			if prev, dup := seen[p.String()]; dup {
				t.Errorf("prefix %s originated by both %v and %v", p, prev, a.ASN)
			}
			seen[p.String()] = a.ASN
		}
		for _, p := range a.Prefixes {
			if bgp.IsBogon(p) {
				t.Errorf("bogon prefix generated: %s", p)
			}
			origin, ok := w.OriginOf(p)
			if !ok || origin != a.ASN {
				t.Errorf("OriginOf(%s) = %v, %v", p, origin, ok)
			}
		}
	}
}

func toStringers[T interface{ String() string }](xs []T) []interface{ String() string } {
	out := make([]interface{ String() string }, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out
}

func TestMembershipConsistency(t *testing.T) {
	w := genDefault(t)
	remote, local := 0, 0
	for _, a := range w.ASes {
		for _, mem := range a.Memberships {
			if !w.Map.AtIXP(a.ASN, mem.IXP) {
				t.Errorf("%v has membership at IXP %d but map disagrees", a.ASN, mem.IXP)
			}
			if mem.PortFacility == 0 {
				t.Errorf("%v membership without port facility", a.ASN)
			}
			if mem.Remote {
				remote++
			} else {
				local++
				// Local members must colocate at their port facility.
				found := false
				for _, f := range a.Facilities {
					if f == mem.PortFacility {
						found = true
					}
				}
				if !found {
					t.Errorf("%v local port at %d without colocation", a.ASN, mem.PortFacility)
				}
			}
		}
	}
	if remote == 0 {
		t.Error("no remote peering generated")
	}
	frac := float64(remote) / float64(remote+local)
	if frac < 0.03 || frac > 0.5 {
		t.Errorf("remote fraction %.2f outside plausible range", frac)
	}
}

func TestSchemes(t *testing.T) {
	w := genDefault(t)
	users, documented := 0, 0
	for _, a := range w.ASes {
		if a.UsesCommunities {
			users++
			if a.Documents {
				documented++
			}
		}
	}
	if users == 0 || documented == 0 {
		t.Fatalf("users=%d documented=%d", users, documented)
	}
	if len(w.Truth.Schemes) != users {
		t.Errorf("schemes = %d, want %d", len(w.Truth.Schemes), users)
	}
	// Scheme entries must have resolvable names and valid lows.
	for _, s := range w.Truth.Schemes {
		for _, e := range s.Entries {
			if e.Name == "" {
				t.Errorf("scheme %v has unnamed entry %+v", s.ASN, e)
			}
			if e.Low == 0 {
				t.Errorf("scheme %v has zero low value", s.ASN)
			}
		}
	}
}

func TestIngressCommunity(t *testing.T) {
	w := genDefault(t)
	found := false
	for _, a := range w.ASes {
		if !a.UsesCommunities {
			// Non-users never tag.
			for _, l := range w.LinksOf(a.ASN) {
				if _, _, ok := w.IngressCommunity(a.ASN, l); ok {
					t.Fatalf("non-user %v tagged a route", a.ASN)
				}
			}
			continue
		}
		for _, l := range w.LinksOf(a.ASN) {
			comm, pop, ok := w.IngressCommunity(a.ASN, l)
			if !ok {
				continue
			}
			found = true
			if comm.ASN() != a.ASN {
				t.Fatalf("community %v not branded with %v", comm, a.ASN)
			}
			if !pop.IsValid() {
				t.Fatalf("invalid PoP for %v", comm)
			}
			if a.Granularity == colo.PoPCity && pop.Kind != colo.PoPCity {
				t.Fatalf("city-granularity AS tagged %v", pop)
			}
		}
	}
	if !found {
		t.Fatal("no ingress communities at all")
	}
}

func TestSchemeLowDisjoint(t *testing.T) {
	// City, IXP and facility lows must never collide for realistic ID
	// ranges.
	if SchemeLow(colo.CityPoP(200)) >= SchemeLow(colo.IXPPoP(1)) {
		t.Error("city and IXP ranges overlap")
	}
	if SchemeLow(colo.IXPPoP(2000)) >= SchemeLow(colo.FacilityPoP(1)) {
		t.Error("IXP and facility ranges overlap")
	}
	if SchemeLow(colo.PoP{}) != 0 {
		t.Error("invalid PoP should map to 0")
	}
}

func TestCollectors(t *testing.T) {
	w := genDefault(t)
	seen := make(map[string]bool)
	for _, c := range w.Collectors {
		if seen[c.Name] {
			t.Errorf("duplicate collector %s", c.Name)
		}
		seen[c.Name] = true
		if len(c.Peers) == 0 {
			t.Errorf("collector %s has no peers", c.Name)
		}
		for _, p := range c.Peers {
			if _, ok := w.AS(p); !ok {
				t.Errorf("collector %s peers with unknown %v", c.Name, p)
			}
		}
	}
}

func TestRouteServers(t *testing.T) {
	w := genDefault(t)
	if len(w.RSASNs) != w.Cfg.IXPs {
		t.Errorf("route servers = %d, want %d", len(w.RSASNs), w.Cfg.IXPs)
	}
	for asn, ixp := range w.RSASNs {
		if !w.IsRS(asn) {
			t.Errorf("IsRS(%v) = false", asn)
		}
		if got := w.RSASNOf(ixp); got != asn {
			t.Errorf("RSASNOf(%d) = %v, want %v", ixp, got, asn)
		}
	}
	if w.IsRS(3356) {
		t.Error("tier1 classified as route server")
	}
}

func TestPoPName(t *testing.T) {
	w := genDefault(t)
	for _, f := range w.Map.Facilities() {
		if w.PoPName(colo.FacilityPoP(f.ID)) == "" {
			t.Errorf("facility %d has no PoP name", f.ID)
		}
	}
	for _, ix := range w.Map.IXPs() {
		if w.PoPName(colo.IXPPoP(ix.ID)) == "" {
			t.Errorf("ixp %d has no PoP name", ix.ID)
		}
	}
	if w.PoPName(colo.PoP{}) != "" {
		t.Error("invalid PoP should render empty")
	}
}

func TestLinkAccessors(t *testing.T) {
	l := &Interconnect{A: 1, B: 2, AFac: 10, BFac: 20}
	if l.Peer(1) != 2 || l.Peer(2) != 1 {
		t.Error("Peer wrong")
	}
	if !l.Involves(1) || l.Involves(3) {
		t.Error("Involves wrong")
	}
	if l.PortFacility(1) != 10 || l.PortFacility(2) != 20 || l.PortFacility(3) != 0 {
		t.Error("PortFacility wrong")
	}
}

func TestASTypeAndKindStrings(t *testing.T) {
	for _, tt := range []ASType{Tier1, Tier2, Content, Stub} {
		if tt.String() == "unknown" {
			t.Errorf("type %d renders unknown", tt)
		}
	}
	for _, k := range []LinkKind{PNI, PublicBilateral, Multilateral, RemotePeering} {
		if k.String() == "unknown" {
			t.Errorf("kind %d renders unknown", k)
		}
	}
}

func TestRegistrations(t *testing.T) {
	w := genDefault(t)
	regs := w.Registrations()
	if len(regs) != len(w.ASes) {
		t.Fatalf("registrations = %d", len(regs))
	}
	orgNames := make(map[string]int)
	for _, r := range regs {
		if r.OrgName == "" {
			t.Errorf("%v has empty org", r.ASN)
		}
		orgNames[r.OrgName]++
	}
	// Sibling generation must produce at least one shared org.
	shared := 0
	for _, n := range orgNames {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no sibling organizations generated")
	}
}
