// Package metrics provides the statistics and rendering helpers the
// experiment harness uses to regenerate the paper's tables and figures:
// empirical CDFs, time-bucketed series, and fixed-width text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over the samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points samples the CDF at n evenly spaced sample indices, returning
// (value, cumulative fraction) pairs suitable for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		out = append(out, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Series is a time-bucketed counter/accumulator.
type Series struct {
	Start  time.Time
	Bucket time.Duration
	Values []float64
}

// NewSeries allocates a series covering [start, end).
func NewSeries(start, end time.Time, bucket time.Duration) *Series {
	n := int(end.Sub(start)/bucket) + 1
	if n < 1 {
		n = 1
	}
	return &Series{Start: start, Bucket: bucket, Values: make([]float64, n)}
}

// Add accumulates v into the bucket containing at (ignored outside range).
func (s *Series) Add(at time.Time, v float64) {
	i := int(at.Sub(s.Start) / s.Bucket)
	if i < 0 || i >= len(s.Values) {
		return
	}
	s.Values[i] += v
}

// Set assigns the bucket containing at.
func (s *Series) Set(at time.Time, v float64) {
	i := int(at.Sub(s.Start) / s.Bucket)
	if i < 0 || i >= len(s.Values) {
		return
	}
	s.Values[i] = v
}

// BucketTime returns the start time of bucket i.
func (s *Series) BucketTime(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Bucket)
}

// Table renders fixed-width text tables (the harness's stand-in for the
// paper's typeset tables).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a duration in the paper's "minutes" convention.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.0fm", d.Minutes())
}
