package metrics

import (
	"fmt"
	"sync/atomic"
)

// RelayStats collects the SSE relay/fan-out tier's counters
// (internal/events.Relay): one upstream bus subscription feeding N
// downstream clients. All fields are atomics — the relay goroutine writes
// while /v1/stats and /metrics read concurrently.
type RelayStats struct {
	Deliveries atomic.Int64 // events enqueued to a downstream client
	Dropped    atomic.Int64 // deliveries lost to one full client queue
	Shed       atomic.Int64 // deliveries withheld by aggregate load-shedding
	Joins      atomic.Int64 // downstream clients admitted
	Leaves     atomic.Int64 // downstream clients departed
	Clients    atomic.Int64 // currently connected downstream clients (gauge)
}

// RelaySnapshot is a point-in-time copy of RelayStats.
type RelaySnapshot struct {
	Deliveries int64
	Dropped    int64
	Shed       int64
	Joins      int64
	Leaves     int64
	Clients    int64
}

// Snapshot copies the current counter values.
func (s *RelayStats) Snapshot() RelaySnapshot {
	return RelaySnapshot{
		Deliveries: s.Deliveries.Load(),
		Dropped:    s.Dropped.Load(),
		Shed:       s.Shed.Load(),
		Joins:      s.Joins.Load(),
		Leaves:     s.Leaves.Load(),
		Clients:    s.Clients.Load(),
	}
}

// String renders the snapshot as a single log-friendly line.
func (s RelaySnapshot) String() string {
	return fmt.Sprintf("clients=%d deliveries=%d dropped=%d shed=%d joins=%d leaves=%d",
		s.Clients, s.Deliveries, s.Dropped, s.Shed, s.Joins, s.Leaves)
}
