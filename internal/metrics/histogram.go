package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DurationBounds is the fixed bucket layout shared by every duration
// histogram: upper bounds from 100µs to 10s in a 1-2.5-5 progression, plus
// an implicit +Inf bucket. Fixed bounds keep observation allocation-free
// and make the Prometheus exposition stable across restarts.
var DurationBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// numBuckets counts the finite buckets; the +Inf bucket is Counts[numBuckets].
const numBuckets = len(DurationBounds)

// Histogram is a fixed-bucket duration histogram safe for concurrent
// observation: one writer per stage on the ingestion goroutine, any number
// of concurrent readers from /v1/stats and /metrics. Zero value is ready.
type Histogram struct {
	counts [numBuckets + 1]atomic.Int64
	sum    atomic.Int64 // cumulative nanoseconds
	count  atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < numBuckets && d > DurationBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts holds
// per-bucket (non-cumulative) observation counts; Counts[len(Bounds)] is
// the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Snapshot copies the current state. The loads are not mutually atomic;
// concurrent observations may skew Sum against Counts by one in-flight
// observation, which is fine for monitoring output.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: DurationBounds[:],
		Counts: make([]int64, numBuckets+1),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observed duration, zero when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// attributing every observation in a bucket to its upper bound — the same
// conservative estimate a Prometheus histogram_quantile gives. Returns the
// last finite bound for observations in the +Inf bucket and zero when the
// histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Bin-close stages. Each bin barrier is decomposed into monotonic spans:
// waiting for the shard workers to quiesce, merging their diverted-path
// indexes, collecting asynchronous probe verdicts, the Section 4.3 signal
// classification (including the InvestWorkers fan-out), the per-shard
// baseline cleanup, and the lifecycle hooks (which a store-backed daemon
// uses for its synchronous WAL flush).
const (
	StageBarrier  = iota // shard barrier wait (Engine only; zero on Detector)
	StageMerge           // per-shard diverted-index merge (Engine only)
	StageCollect         // async probe verdict collection + return application
	StageClassify        // signal grouping, classification, disambiguation
	StageFinish          // per-shard stable-baseline cleanup
	StageHooks           // BinClosed hooks: event publication, store flush
	NumBinStages
)

// BinStageNames maps stage indexes to their metric label values.
var BinStageNames = [NumBinStages]string{
	"barrier", "merge", "probe_collect", "classify", "finish", "hooks",
}

// BinSpans carries the measured spans of one bin close.
type BinSpans struct {
	// End is the stream time of the closed bin.
	End time.Time
	// Total is the wall time of the whole close (>= sum of stages: the
	// residual is un-instrumented glue).
	Total time.Duration
	// Stage holds the per-stage spans, indexed by the Stage constants.
	Stage [NumBinStages]time.Duration
}

// String renders the spans as a single log-friendly line.
func (b BinSpans) String() string {
	out := fmt.Sprintf("bin=%s total=%s", b.End.Format(time.RFC3339), b.Total.Round(time.Microsecond))
	for i, d := range b.Stage {
		out += fmt.Sprintf(" %s=%s", BinStageNames[i], d.Round(time.Microsecond))
	}
	return out
}

// BinStageStats aggregates per-stage bin-close latency histograms. Record
// is called once per bin close on the ingestion goroutine; snapshots are
// read concurrently by the HTTP layer. The zero value is ready.
type BinStageStats struct {
	// Total observes whole-close durations; Stages the per-stage spans.
	Total  Histogram
	Stages [NumBinStages]Histogram

	// SlowBinThreshold, when positive, invokes OnSlowBin for any bin whose
	// total close time meets or exceeds it. Set both before ingestion
	// starts; OnSlowBin runs on the ingestion goroutine and must be fast.
	//keplervet:ignore atomicstats write-once config, not a counter: set before ingestion starts, immutable afterwards
	SlowBinThreshold time.Duration
	OnSlowBin        func(BinSpans)
}

// Record folds one bin close into the histograms and fires the slow-bin
// callback when the total crosses the threshold.
func (s *BinStageStats) Record(spans BinSpans) {
	s.Total.Observe(spans.Total)
	for i := range spans.Stage {
		s.Stages[i].Observe(spans.Stage[i])
	}
	//keplervet:ignore atomicstats SlowBinThreshold is write-once config, immutable once ingestion starts
	if s.SlowBinThreshold > 0 && spans.Total >= s.SlowBinThreshold && s.OnSlowBin != nil {
		s.OnSlowBin(spans)
	}
}

// BinStageSnapshot is a point-in-time view of every stage histogram.
type BinStageSnapshot struct {
	Total  HistogramSnapshot
	Stages [NumBinStages]HistogramSnapshot
}

// Snapshot copies all histograms.
func (s *BinStageStats) Snapshot() BinStageSnapshot {
	snap := BinStageSnapshot{Total: s.Total.Snapshot()}
	for i := range s.Stages {
		snap.Stages[i] = s.Stages[i].Snapshot()
	}
	return snap
}
