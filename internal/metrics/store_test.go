package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestStoreStatsSnapshot drives every StoreStats counter once and checks
// the snapshot copies all of them — a field-for-field pin so a counter
// added to the struct but forgotten in Snapshot fails here.
func TestStoreStatsSnapshot(t *testing.T) {
	var s StoreStats
	s.Appends.Add(7)
	s.AppendedBytes.Add(1024)
	s.Flushes.Add(3)
	s.Compactions.Add(2)
	s.RecoveredEvents.Add(11)
	s.TornTails.Add(1)
	s.TruncatedBytes.Add(99)
	s.CheckpointSaves.Add(4)
	s.CheckpointBytes.Add(2048)
	s.CheckpointsDiscarded.Add(1)
	s.ResumeSeq.Store(42)
	s.ResumeRecords.Store(1000)

	snap := s.Snapshot()
	want := StoreSnapshot{
		Appends: 7, AppendedBytes: 1024, Flushes: 3, Compactions: 2,
		RecoveredEvents: 11, TornTails: 1, TruncatedBytes: 99,
		CheckpointSaves: 4, CheckpointBytes: 2048, CheckpointsDiscarded: 1,
		ResumeSeq: 42, ResumeRecords: 1000,
	}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
}

// TestStoreSnapshotString checks the log line carries the counters an
// operator greps for after a recovery.
func TestStoreSnapshotString(t *testing.T) {
	snap := StoreSnapshot{
		Appends: 5, AppendedBytes: 512, Flushes: 2, Compactions: 1,
		RecoveredEvents: 9, TornTails: 1, CheckpointSaves: 3, ResumeRecords: 777,
	}
	line := snap.String()
	for _, frag := range []string{"appends=5", "bytes=512", "flushes=2",
		"compactions=1", "recovered=9", "torn=1", "ckpts=3", "resume_records=777"} {
		if !strings.Contains(line, frag) {
			t.Errorf("String() = %q, missing %q", line, frag)
		}
	}
}

// TestStoreStatsConcurrent updates the counters from many goroutines with
// interleaved snapshots — the WAL-appender / stats-endpoint access pattern.
// Run with -race.
func TestStoreStatsConcurrent(t *testing.T) {
	var s StoreStats
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Appends.Add(1)
				s.AppendedBytes.Add(64)
				if i%50 == 0 {
					s.Flushes.Add(1)
				}
				if i%500 == 0 {
					s.Compactions.Add(1)
				}
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Appends != writers*perWriter {
		t.Errorf("appends = %d, want %d", snap.Appends, writers*perWriter)
	}
	if snap.AppendedBytes != 64*writers*perWriter {
		t.Errorf("bytes = %d, want %d", snap.AppendedBytes, 64*writers*perWriter)
	}
	if snap.Flushes != writers*perWriter/50 {
		t.Errorf("flushes = %d, want %d", snap.Flushes, writers*perWriter/50)
	}
	if snap.Compactions != writers*perWriter/500 {
		t.Errorf("compactions = %d, want %d", snap.Compactions, writers*perWriter/500)
	}
}
