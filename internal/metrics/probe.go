package metrics

import (
	"fmt"
	"sync/atomic"
)

// ProbeStats collects the active-measurement subsystem's counters
// (internal/probe plus the core pending-confirmation layer): campaign and
// target volume, how much work the scheduler's dedup/cache/budget layers
// absorbed, and how parked confirmations ultimately resolved. All fields
// are atomics — the scheduler's workers, the ingestion goroutine's hooks
// and /v1/stats readers update and read them concurrently.
type ProbeStats struct {
	Campaigns atomic.Int64 // probe campaigns submitted
	Targets   atomic.Int64 // candidate targets across campaigns
	Executed  atomic.Int64 // probes actually run against the backend
	CacheHits atomic.Int64 // targets answered from the verdict cache
	Deduped   atomic.Int64 // targets folded into an in-flight probe
	Denied    atomic.Int64 // probes denied by the measurement budget
	Collected atomic.Int64 // completed verdicts delivered to the engine

	Promoted  atomic.Int64 // pendings promoted to located outages
	Refuted   atomic.Int64 // confirmations contradicted by the data plane (suppressed false positives)
	Unlocated atomic.Int64 // disambiguation verdicts that failed to pin an epicenter
	Expired   atomic.Int64 // pendings that outlived their TTL
	Pending   atomic.Int64 // currently parked confirmations (gauge)
}

// ProbeSnapshot is a point-in-time copy of ProbeStats.
type ProbeSnapshot struct {
	Campaigns int64
	Targets   int64
	Executed  int64
	CacheHits int64
	Deduped   int64
	Denied    int64
	Collected int64
	Promoted  int64
	Refuted   int64
	Unlocated int64
	Expired   int64
	Pending   int64
}

// Snapshot copies the current counter values.
func (s *ProbeStats) Snapshot() ProbeSnapshot {
	return ProbeSnapshot{
		Campaigns: s.Campaigns.Load(),
		Targets:   s.Targets.Load(),
		Executed:  s.Executed.Load(),
		CacheHits: s.CacheHits.Load(),
		Deduped:   s.Deduped.Load(),
		Denied:    s.Denied.Load(),
		Collected: s.Collected.Load(),
		Promoted:  s.Promoted.Load(),
		Refuted:   s.Refuted.Load(),
		Unlocated: s.Unlocated.Load(),
		Expired:   s.Expired.Load(),
		Pending:   s.Pending.Load(),
	}
}

// String renders the snapshot as a single log-friendly line.
func (s ProbeSnapshot) String() string {
	return fmt.Sprintf("campaigns=%d targets=%d executed=%d cached=%d deduped=%d denied=%d promoted=%d refuted=%d unlocated=%d expired=%d pending=%d",
		s.Campaigns, s.Targets, s.Executed, s.CacheHits, s.Deduped, s.Denied,
		s.Promoted, s.Refuted, s.Unlocated, s.Expired, s.Pending)
}
