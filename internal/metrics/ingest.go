package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// IngestStats collects low-overhead runtime counters from the sharded
// ingestion engine: records consumed, route ops fanned out to shards, bins
// closed, and cumulative time the engine spent synchronizing shards at bin
// barriers. All counters are safe for concurrent update.
type IngestStats struct {
	Records      atomic.Int64 // MRT records consumed
	Ops          atomic.Int64 // route ops dispatched to shards
	Bins         atomic.Int64 // bins closed (barriers executed)
	BarrierNanos atomic.Int64 // cumulative wall time inside bin barriers

	startOnce sync.Once
	start     atomic.Int64 // wall-clock start, unix nanos
}

// Begin marks the ingestion start for rate computation. Idempotent; the
// engine calls it on the first record. The wall clock is the point:
// records/sec measures this host's ingest throughput, not stream time,
// so it never feeds detection (metrics is outside keplervet's walltime
// scope by construction).
func (s *IngestStats) Begin() {
	s.startOnce.Do(func() { s.start.Store(time.Now().UnixNano()) })
}

// IngestSnapshot is a point-in-time view of the engine's ingestion health.
type IngestSnapshot struct {
	Records int64
	Ops     int64
	Bins    int64
	// RecordsPerSec is the wall-clock ingestion rate since Begin.
	RecordsPerSec float64
	// BarrierTime is the cumulative wall time spent in bin barriers.
	BarrierTime time.Duration
	// BinLag is the mean barrier stall per closed bin: how far behind the
	// sequentialized investigator drags the parallel shard layer.
	BinLag time.Duration
	// QueueDepths is the per-shard count of dispatched-but-unprocessed op
	// batches at snapshot time.
	QueueDepths []int
}

// Snapshot computes current rates. queueDepths is supplied by the caller
// (the engine knows its channel occupancy); it may be nil.
func (s *IngestStats) Snapshot(queueDepths []int) IngestSnapshot {
	snap := IngestSnapshot{
		Records:     s.Records.Load(),
		Ops:         s.Ops.Load(),
		Bins:        s.Bins.Load(),
		BarrierTime: time.Duration(s.BarrierNanos.Load()),
		QueueDepths: queueDepths,
	}
	if start := s.start.Load(); start > 0 {
		elapsed := time.Since(time.Unix(0, start)).Seconds()
		if elapsed > 0 {
			snap.RecordsPerSec = float64(snap.Records) / elapsed
		}
	}
	if snap.Bins > 0 {
		snap.BinLag = snap.BarrierTime / time.Duration(snap.Bins)
	}
	return snap
}

// String renders the snapshot as a single log-friendly line.
func (s IngestSnapshot) String() string {
	return fmt.Sprintf("records=%d ops=%d bins=%d rate=%.0f rec/s barrier=%s binlag=%s queues=%v",
		s.Records, s.Ops, s.Bins, s.RecordsPerSec, s.BarrierTime.Round(time.Microsecond),
		s.BinLag.Round(time.Microsecond), s.QueueDepths)
}
