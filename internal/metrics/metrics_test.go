package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %f", got)
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %f", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %f", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %f", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %f", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %f", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF points should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		c := NewCDF(raw)
		prev := -1.0
		for x := -10.0; x <= 10; x += 0.5 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for q := 0.1; q < 1; q += 0.1 {
		v := c.Quantile(q)
		if got := c.At(v); got < q-0.15 {
			t.Errorf("At(Quantile(%f)=%f) = %f", q, v, got)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[3][0] != 4 {
		t.Errorf("point range = %v", pts)
	}
	if pts[3][1] != 1 {
		t.Errorf("final cumulative = %f", pts[3][1])
	}
	// More points than samples clamps.
	if got := c.Points(100); len(got) != 4 {
		t.Errorf("clamped points = %d", len(got))
	}
}

func TestSeries(t *testing.T) {
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(10 * time.Hour)
	s := NewSeries(start, end, time.Hour)
	s.Add(start, 1)
	s.Add(start.Add(30*time.Minute), 2)
	s.Add(start.Add(5*time.Hour), 7)
	s.Add(start.Add(-time.Hour), 100) // out of range: dropped
	s.Add(end.Add(time.Hour), 100)    // out of range: dropped

	if s.Values[0] != 3 {
		t.Errorf("bucket 0 = %f", s.Values[0])
	}
	if s.Values[5] != 7 {
		t.Errorf("bucket 5 = %f", s.Values[5])
	}
	s.Set(start.Add(5*time.Hour), 1)
	if s.Values[5] != 1 {
		t.Errorf("Set failed: %f", s.Values[5])
	}
	if !s.BucketTime(5).Equal(start.Add(5 * time.Hour)) {
		t.Errorf("BucketTime = %v", s.BucketTime(5))
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("Table 1: Facilities coverage", "Continent", "All", ">5", "Trackable")
	tbl.AddRow("Europe", 878, 305, 243)
	tbl.AddRow("North America", 529, 132, 105)
	out := tbl.String()
	for _, want := range []string{"Table 1", "Continent", "Europe", "878", "243", "North America"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	// Columns align: header row and data rows have consistent prefix width.
	// title + header + separator + 2 data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := NewTable("", "x")
	tbl.AddRow(3.14159)
	if !strings.Contains(tbl.String(), "3.14") {
		t.Error("float not formatted to 2 decimals")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(17 * time.Minute); got != "17m" {
		t.Errorf("FormatDuration = %q", got)
	}
}
