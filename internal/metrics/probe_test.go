package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestProbeStatsSnapshot(t *testing.T) {
	s := &ProbeStats{}
	s.Campaigns.Add(3)
	s.Targets.Add(7)
	s.Executed.Add(5)
	s.CacheHits.Add(1)
	s.Deduped.Add(1)
	s.Denied.Add(2)
	s.Collected.Add(3)
	s.Promoted.Add(2)
	s.Unlocated.Add(1)
	s.Expired.Add(1)
	s.Pending.Store(4)

	snap := s.Snapshot()
	want := ProbeSnapshot{
		Campaigns: 3, Targets: 7, Executed: 5, CacheHits: 1, Deduped: 1,
		Denied: 2, Collected: 3, Promoted: 2, Unlocated: 1, Expired: 1, Pending: 4,
	}
	if snap != want {
		t.Fatalf("snapshot = %+v, want %+v", snap, want)
	}
	line := snap.String()
	for _, frag := range []string{"campaigns=3", "denied=2", "promoted=2", "pending=4"} {
		if !strings.Contains(line, frag) {
			t.Errorf("String() missing %q: %s", frag, line)
		}
	}
}

func TestProbeStatsConcurrent(t *testing.T) {
	s := &ProbeStats{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Executed.Add(1)
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Executed.Load(); got != 8000 {
		t.Fatalf("executed = %d, want 8000", got)
	}
}
