package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestHTTPStatsObserveAndSnapshot checks lazy endpoint registration, status
// class bucketing, and the sorted snapshot order.
func TestHTTPStatsObserveAndSnapshot(t *testing.T) {
	h := NewHTTPStats()
	h.Observe("GET /v1/outages", 200, time.Millisecond)
	h.Observe("GET /v1/outages", 200, 2*time.Millisecond)
	h.Observe("GET /v1/outages", 404, time.Millisecond)
	h.Observe("GET /healthz", 503, 500*time.Microsecond)
	h.Observe("GET /healthz", 7, time.Microsecond) // nonsense status -> "other"
	h.SSELag.Observe(3 * time.Millisecond)

	snap := h.Snapshot()
	if len(snap.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(snap.Endpoints))
	}
	if snap.Endpoints[0].Endpoint != "GET /healthz" || snap.Endpoints[1].Endpoint != "GET /v1/outages" {
		t.Fatalf("endpoints not sorted: %q, %q", snap.Endpoints[0].Endpoint, snap.Endpoints[1].Endpoint)
	}
	hz := snap.Endpoints[0]
	if hz.Statuses["5xx"] != 1 || hz.Statuses["other"] != 1 {
		t.Errorf("healthz statuses = %v, want 5xx:1 other:1", hz.Statuses)
	}
	out := snap.Endpoints[1]
	if out.Statuses["2xx"] != 2 || out.Statuses["4xx"] != 1 {
		t.Errorf("outages statuses = %v, want 2xx:2 4xx:1", out.Statuses)
	}
	if out.Latency.Count != 3 {
		t.Errorf("outages latency count = %d, want 3", out.Latency.Count)
	}
	if snap.SSELag.Count != 1 {
		t.Errorf("sse lag count = %d, want 1", snap.SSELag.Count)
	}
}

// TestHTTPStatsConcurrent drives observations and snapshots from many
// goroutines. Run with -race.
func TestHTTPStatsConcurrent(t *testing.T) {
	h := NewHTTPStats()
	endpoints := []string{"GET /a", "GET /b", "GET /c"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(endpoints[(w+i)%len(endpoints)], 200+i%400, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			h.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	var total int64
	for _, e := range h.Snapshot().Endpoints {
		total += e.Latency.Count
	}
	if total != 8*500 {
		t.Errorf("total observations = %d, want %d", total, 8*500)
	}
}

// TestFeedStatsSnapshot checks the transition counter copy.
func TestFeedStatsSnapshot(t *testing.T) {
	var fs FeedStats
	fs.Degraded.Add(3)
	fs.Recovered.Add(2)
	snap := fs.Snapshot()
	if snap.Degraded != 3 || snap.Recovered != 2 {
		t.Errorf("snapshot = %+v, want {3 2}", snap)
	}
}
