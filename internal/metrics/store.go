package metrics

import (
	"fmt"
	"sync/atomic"
)

// StoreStats collects the durable outage-history layer's counters
// (internal/store): WAL append volume, flush/compaction activity, and what
// recovery found on boot. All fields are atomics — appends happen on the
// ingestion goroutine while /v1/stats reads concurrently.
type StoreStats struct {
	Appends       atomic.Int64 // events appended to the WAL
	AppendedBytes atomic.Int64 // framed payload bytes written
	Flushes       atomic.Int64 // buffered-writer flushes (one per bin close)
	Compactions   atomic.Int64 // WAL compactions into snapshot segments

	RecoveredEvents atomic.Int64 // events replayed from the WAL on open
	TornTails       atomic.Int64 // torn/corrupt WAL tails truncated on open
	TruncatedBytes  atomic.Int64 // bytes discarded by tail truncation

	CheckpointSaves      atomic.Int64 // engine checkpoints written
	CheckpointBytes      atomic.Int64 // framed checkpoint bytes written
	CheckpointsDiscarded atomic.Int64 // corrupt/rejected checkpoints skipped at recovery
	// ResumeSeq and ResumeRecords are recovery gauges: the event sequence
	// and record offset the engine resumed from. Zero means the boot
	// re-ingested from record zero — the pre-checkpoint recovery path.
	// Their point is the bounded-recovery proof: ResumeRecords tracks the
	// checkpoint cadence, so records re-ingested after a restart stay
	// bounded by one checkpoint interval instead of the stream length.
	ResumeSeq     atomic.Int64
	ResumeRecords atomic.Int64

	// History-segment serving counters: sealed segments and their offset
	// indexes, page reads that went to disk, and the decoded-entry LRU.
	// ReadCacheHits/Misses are the bounded-memory proof of the read path:
	// resident history is the cache, not the history.
	SegmentsSealed  atomic.Int64 // history segments written at compaction
	IndexWrites     atomic.Int64 // offset-index sidecars written
	IndexRebuilds   atomic.Int64 // missing/corrupt indexes rebuilt by scan on open
	SegmentReads    atomic.Int64 // page reads served from a segment file
	ReadCacheHits   atomic.Int64 // entries served from the decoded-frame LRU
	ReadCacheMisses atomic.Int64 // entries that had to be decoded from disk
}

// StoreSnapshot is a point-in-time copy of StoreStats.
type StoreSnapshot struct {
	Appends              int64
	AppendedBytes        int64
	Flushes              int64
	Compactions          int64
	RecoveredEvents      int64
	TornTails            int64
	TruncatedBytes       int64
	CheckpointSaves      int64
	CheckpointBytes      int64
	CheckpointsDiscarded int64
	ResumeSeq            int64
	ResumeRecords        int64
	SegmentsSealed       int64
	IndexWrites          int64
	IndexRebuilds        int64
	SegmentReads         int64
	ReadCacheHits        int64
	ReadCacheMisses      int64
}

// Snapshot copies the current counter values.
func (s *StoreStats) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		Appends:              s.Appends.Load(),
		AppendedBytes:        s.AppendedBytes.Load(),
		Flushes:              s.Flushes.Load(),
		Compactions:          s.Compactions.Load(),
		RecoveredEvents:      s.RecoveredEvents.Load(),
		TornTails:            s.TornTails.Load(),
		TruncatedBytes:       s.TruncatedBytes.Load(),
		CheckpointSaves:      s.CheckpointSaves.Load(),
		CheckpointBytes:      s.CheckpointBytes.Load(),
		CheckpointsDiscarded: s.CheckpointsDiscarded.Load(),
		ResumeSeq:            s.ResumeSeq.Load(),
		ResumeRecords:        s.ResumeRecords.Load(),
		SegmentsSealed:       s.SegmentsSealed.Load(),
		IndexWrites:          s.IndexWrites.Load(),
		IndexRebuilds:        s.IndexRebuilds.Load(),
		SegmentReads:         s.SegmentReads.Load(),
		ReadCacheHits:        s.ReadCacheHits.Load(),
		ReadCacheMisses:      s.ReadCacheMisses.Load(),
	}
}

// String renders the snapshot as a single log-friendly line.
func (s StoreSnapshot) String() string {
	return fmt.Sprintf("appends=%d bytes=%d flushes=%d compactions=%d recovered=%d torn=%d ckpts=%d resume_records=%d segments=%d cache_hits=%d cache_misses=%d",
		s.Appends, s.AppendedBytes, s.Flushes, s.Compactions,
		s.RecoveredEvents, s.TornTails, s.CheckpointSaves, s.ResumeRecords,
		s.SegmentsSealed, s.ReadCacheHits, s.ReadCacheMisses)
}
