package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestIngestStatsSnapshot(t *testing.T) {
	var s IngestStats
	s.Begin()
	s.Records.Add(1000)
	s.Ops.Add(2500)
	s.Bins.Add(10)
	s.BarrierNanos.Add(int64(20 * time.Millisecond))

	snap := s.Snapshot([]int{1, 0, 3})
	if snap.Records != 1000 || snap.Ops != 2500 || snap.Bins != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.BinLag != 2*time.Millisecond {
		t.Errorf("bin lag = %v, want 2ms", snap.BinLag)
	}
	if snap.RecordsPerSec <= 0 {
		t.Errorf("rate = %v, want > 0", snap.RecordsPerSec)
	}
	if len(snap.QueueDepths) != 3 || snap.QueueDepths[2] != 3 {
		t.Errorf("queue depths = %v", snap.QueueDepths)
	}
	if line := snap.String(); !strings.Contains(line, "records=1000") || !strings.Contains(line, "bins=10") {
		t.Errorf("render = %q", line)
	}

	// Begin is idempotent: a later call must not reset the rate clock.
	first := s.start.Load()
	s.Begin()
	if s.start.Load() != first {
		t.Error("Begin reset the start clock")
	}
}

func TestIngestStatsZeroValue(t *testing.T) {
	var s IngestStats
	snap := s.Snapshot(nil)
	if snap.RecordsPerSec != 0 || snap.BinLag != 0 {
		t.Errorf("zero-value snapshot computed rates: %+v", snap)
	}
}
