package metrics

import (
	"fmt"
	"sync/atomic"
)

// ServiceStats collects the serving layer's runtime counters: HTTP request
// accounting from internal/server and event-bus publish/drop accounting
// from internal/events. All fields are atomics, safe for concurrent update
// from request handlers, SSE writers and the ingestion goroutine alike.
type ServiceStats struct {
	HTTPRequests atomic.Int64 // API requests served (all endpoints)
	HTTPErrors   atomic.Int64 // requests answered with a 4xx/5xx status
	SSEConnected atomic.Int64 // SSE streams opened over the process lifetime
	SSEActive    atomic.Int64 // currently connected SSE streams (gauge)

	EventsPublished atomic.Int64 // events fanned out by the bus
	EventsDropped   atomic.Int64 // per-subscriber deliveries lost to full queues
}

// ServiceSnapshot is a point-in-time copy of ServiceStats.
type ServiceSnapshot struct {
	HTTPRequests    int64
	HTTPErrors      int64
	SSEConnected    int64
	SSEActive       int64
	EventsPublished int64
	EventsDropped   int64
}

// Snapshot copies the current counter values.
func (s *ServiceStats) Snapshot() ServiceSnapshot {
	return ServiceSnapshot{
		HTTPRequests:    s.HTTPRequests.Load(),
		HTTPErrors:      s.HTTPErrors.Load(),
		SSEConnected:    s.SSEConnected.Load(),
		SSEActive:       s.SSEActive.Load(),
		EventsPublished: s.EventsPublished.Load(),
		EventsDropped:   s.EventsDropped.Load(),
	}
}

// String renders the snapshot as a single log-friendly line.
func (s ServiceSnapshot) String() string {
	return fmt.Sprintf("http=%d errors=%d sse=%d/%d events=%d dropped=%d",
		s.HTTPRequests, s.HTTPErrors, s.SSEActive, s.SSEConnected,
		s.EventsPublished, s.EventsDropped)
}
