package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketing places observations into the exact buckets the
// fixed bounds define, including the clamp at zero and the +Inf bucket.
func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)           // clamps to 0 -> first bucket
	h.Observe(50 * time.Microsecond)  // first bucket
	h.Observe(100 * time.Microsecond) // still first bucket (le bound)
	h.Observe(101 * time.Microsecond) // second bucket
	h.Observe(3 * time.Millisecond)   // le=5ms bucket
	h.Observe(time.Minute)            // +Inf bucket
	snap := h.Snapshot()

	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if got := snap.Counts[0]; got != 3 {
		t.Errorf("bucket le=100µs = %d, want 3", got)
	}
	if got := snap.Counts[1]; got != 1 {
		t.Errorf("bucket le=250µs = %d, want 1", got)
	}
	var fiveMs int
	for i, b := range snap.Bounds {
		if b == 5*time.Millisecond {
			fiveMs = i
		}
	}
	if got := snap.Counts[fiveMs]; got != 1 {
		t.Errorf("bucket le=5ms = %d, want 1", got)
	}
	if got := snap.Counts[len(snap.Counts)-1]; got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	// Negative observations clamp, so the sum excludes the -1s.
	want := 50*time.Microsecond + 100*time.Microsecond + 101*time.Microsecond +
		3*time.Millisecond + time.Minute
	if snap.Sum != want {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
}

// TestHistogramQuantile checks the upper-bound quantile estimate.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond) // le=250µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(400 * time.Millisecond) // le=500ms
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q != 250*time.Microsecond {
		t.Errorf("p50 = %v, want 250µs", q)
	}
	if q := snap.Quantile(0.99); q != 500*time.Millisecond {
		t.Errorf("p99 = %v, want 500ms", q)
	}
	if m := snap.Mean(); m <= 0 {
		t.Errorf("mean = %v, want > 0", m)
	}
}

// TestHistogramQuantileEdgeCases pins the two boundary behaviors the
// quantile estimate promises: an empty snapshot reports zero (not the first
// bound), and observations beyond the largest bound — the +Inf bucket —
// report the last finite bound rather than infinity, for every q.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	snap := empty.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := snap.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := snap.Mean(); got != 0 {
		t.Errorf("empty Mean() = %v, want 0", got)
	}

	last := DurationBounds[len(DurationBounds)-1]
	var inf Histogram
	inf.Observe(time.Minute) // beyond the 10s top bound
	inf.Observe(time.Hour)
	isnap := inf.Snapshot()
	if got := isnap.Counts[len(isnap.Counts)-1]; got != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", got)
	}
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if got := isnap.Quantile(q); got != last {
			t.Errorf("all-inf Quantile(%v) = %v, want last bound %v", q, got, last)
		}
	}

	// Mixed: one finite, one +Inf — p50 lands on the finite bucket's bound,
	// p100 clamps to the last finite bound.
	var mixed Histogram
	mixed.Observe(time.Millisecond)
	mixed.Observe(time.Minute)
	msnap := mixed.Snapshot()
	if got := msnap.Quantile(0.5); got != time.Millisecond {
		t.Errorf("mixed p50 = %v, want 1ms", got)
	}
	if got := msnap.Quantile(1.0); got != last {
		t.Errorf("mixed p100 = %v, want %v", got, last)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines with
// concurrent snapshots — the ingest-writer / HTTP-reader pattern. Run with
// -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				if snap.Count < 0 || snap.Sum < 0 {
					t.Errorf("torn snapshot: %+v", snap)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", snap.Count, writers*perWriter)
	}
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != snap.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, snap.Count)
	}
}

// TestBinStageStatsRecord checks per-stage aggregation and the slow-bin
// callback threshold semantics.
func TestBinStageStatsRecord(t *testing.T) {
	var s BinStageStats
	var slow []BinSpans
	s.SlowBinThreshold = 10 * time.Millisecond
	s.OnSlowBin = func(b BinSpans) { slow = append(slow, b) }

	fast := BinSpans{End: time.Unix(60, 0), Total: 2 * time.Millisecond}
	fast.Stage[StageBarrier] = time.Millisecond
	fast.Stage[StageClassify] = 500 * time.Microsecond
	s.Record(fast)

	slowBin := BinSpans{End: time.Unix(120, 0), Total: 50 * time.Millisecond}
	slowBin.Stage[StageHooks] = 40 * time.Millisecond
	s.Record(slowBin)

	if len(slow) != 1 || !slow[0].End.Equal(time.Unix(120, 0)) {
		t.Fatalf("slow-bin callback fired %d times (%v), want once for the 50ms bin", len(slow), slow)
	}
	snap := s.Snapshot()
	if snap.Total.Count != 2 {
		t.Errorf("total count = %d, want 2", snap.Total.Count)
	}
	if got := snap.Stages[StageBarrier].Sum; got != time.Millisecond {
		t.Errorf("barrier sum = %v, want 1ms", got)
	}
	if got := snap.Stages[StageHooks].Sum; got != 40*time.Millisecond {
		t.Errorf("hooks sum = %v, want 40ms", got)
	}
	// Threshold is inclusive.
	exact := BinSpans{End: time.Unix(180, 0), Total: 10 * time.Millisecond}
	s.Record(exact)
	if len(slow) != 2 {
		t.Errorf("inclusive threshold: callback fired %d times, want 2", len(slow))
	}
	if line := slowBin.String(); !strings.Contains(line, "hooks=40ms") || !strings.Contains(line, "total=50ms") {
		t.Errorf("render = %q", line)
	}
}

// TestBinStageNamesComplete pins the stage-name table to the stage count so
// adding a stage without naming it fails loudly (the names are Prometheus
// label values).
func TestBinStageNamesComplete(t *testing.T) {
	for i, name := range BinStageNames {
		if name == "" {
			t.Errorf("stage %d has no name", i)
		}
	}
	if len(BinStageNames) != NumBinStages {
		t.Errorf("len(BinStageNames) = %d, want %d", len(BinStageNames), NumBinStages)
	}
}
