package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestIngestStatsConcurrentWriters drives every IngestStats counter from
// many goroutines while snapshots are taken concurrently — the exact access
// pattern of the sharded engine (ingest goroutine writing, HTTP stats
// endpoint reading). Run with -race.
func TestIngestStatsConcurrentWriters(t *testing.T) {
	var s IngestStats
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Begin()
				s.Records.Add(1)
				s.Ops.Add(3)
				if i%100 == 0 {
					s.Bins.Add(1)
					s.BarrierNanos.Add(int64(time.Microsecond))
				}
			}
		}()
	}
	// Concurrent readers must never observe torn or negative state.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot([]int{0, 1})
				// Counters only grow; a reader must never observe a
				// negative or otherwise torn value. (Records/Ops are read
				// at different instants, so no cross-counter invariant is
				// safe to assert mid-run.)
				if snap.Records < 0 || snap.Ops < 0 || snap.Bins < 0 {
					t.Errorf("inconsistent snapshot: %+v", snap)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	snap := s.Snapshot(nil)
	if snap.Records != writers*perWriter {
		t.Errorf("records = %d, want %d", snap.Records, writers*perWriter)
	}
	if snap.Ops != 3*writers*perWriter {
		t.Errorf("ops = %d, want %d", snap.Ops, 3*writers*perWriter)
	}
	if snap.Bins != writers*perWriter/100 {
		t.Errorf("bins = %d, want %d", snap.Bins, writers*perWriter/100)
	}
	if snap.RecordsPerSec <= 0 {
		t.Error("rate not computed after concurrent Begin")
	}
}

// TestServiceStatsConcurrentWriters exercises the HTTP/bus counters under
// concurrent update with interleaved snapshots.
func TestServiceStatsConcurrentWriters(t *testing.T) {
	var s ServiceStats
	var wg sync.WaitGroup
	const n = 500
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s.HTTPRequests.Add(1)
				if i%10 == 0 {
					s.HTTPErrors.Add(1)
				}
				s.SSEConnected.Add(1)
				s.SSEActive.Add(1)
				s.EventsPublished.Add(2)
				s.EventsDropped.Add(1)
				s.SSEActive.Add(-1)
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.HTTPRequests != 6*n || snap.HTTPErrors != 6*n/10 {
		t.Errorf("http counters = %d/%d", snap.HTTPRequests, snap.HTTPErrors)
	}
	if snap.SSEActive != 0 || snap.SSEConnected != 6*n {
		t.Errorf("sse counters = %d/%d", snap.SSEActive, snap.SSEConnected)
	}
	if snap.EventsPublished != 12*n || snap.EventsDropped != 6*n {
		t.Errorf("event counters = %d/%d", snap.EventsPublished, snap.EventsDropped)
	}
	if line := snap.String(); !strings.Contains(line, "http=3000") {
		t.Errorf("render = %q", line)
	}
}
