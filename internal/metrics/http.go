package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPStats collects serving-path telemetry: per-endpoint request latency
// histograms with status-class counters, and the SSE delivery-lag histogram.
// Endpoints are registered lazily under a mutex on first observation (the
// route set is tiny and stabilizes immediately); the hot path afterwards is
// one map lookup plus atomic increments. Safe for concurrent use from every
// request handler goroutine.
type HTTPStats struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointStats

	// SSELag observes the wall-clock delay between an event's bus
	// publication and its write to an SSE client — one observation per live
	// delivery per client, so a single slow subscriber visibly drags the
	// upper quantiles. Ring-replayed backlog deliveries are excluded (their
	// publication stamps predate the connection).
	SSELag Histogram
}

// NewHTTPStats builds an empty collector.
func NewHTTPStats() *HTTPStats {
	return &HTTPStats{endpoints: make(map[string]*EndpointStats)}
}

// EndpointStats aggregates one route pattern's latency and status classes.
type EndpointStats struct {
	latency Histogram
	// classes counts responses by status/100; index 0 collects anything
	// outside 1xx..5xx.
	classes [6]atomic.Int64
}

// Observe records one served request against its route pattern. For SSE
// streams the duration is the whole connection lifetime, which lands in the
// +Inf bucket by design — connection longevity, not request latency.
func (h *HTTPStats) Observe(endpoint string, status int, d time.Duration) {
	h.mu.Lock()
	e := h.endpoints[endpoint]
	if e == nil {
		e = &EndpointStats{}
		h.endpoints[endpoint] = e
	}
	h.mu.Unlock()
	e.latency.Observe(d)
	c := status / 100
	if c < 1 || c > 5 {
		c = 0
	}
	e.classes[c].Add(1)
}

// EndpointSnapshot is a point-in-time copy of one endpoint's stats.
type EndpointSnapshot struct {
	Endpoint string
	Latency  HistogramSnapshot
	// Statuses maps status classes ("2xx".."5xx", "other") to response
	// counts; zero classes are omitted.
	Statuses map[string]int64
}

// HTTPSnapshot is a point-in-time copy of HTTPStats, endpoints ascending by
// pattern.
type HTTPSnapshot struct {
	Endpoints []EndpointSnapshot
	SSELag    HistogramSnapshot
}

// Snapshot copies the current state.
func (h *HTTPStats) Snapshot() HTTPSnapshot {
	h.mu.Lock()
	eps := make([]*EndpointStats, 0, len(h.endpoints))
	names := make([]string, 0, len(h.endpoints))
	for name, e := range h.endpoints {
		names = append(names, name)
		eps = append(eps, e)
	}
	h.mu.Unlock()

	snap := HTTPSnapshot{SSELag: h.SSELag.Snapshot()}
	for i, e := range eps {
		es := EndpointSnapshot{
			Endpoint: names[i],
			Latency:  e.latency.Snapshot(),
			Statuses: make(map[string]int64),
		}
		for c := range e.classes {
			n := e.classes[c].Load()
			if n == 0 {
				continue
			}
			label := "other"
			if c >= 1 {
				label = fmt.Sprintf("%dxx", c)
			}
			es.Statuses[label] = n
		}
		snap.Endpoints = append(snap.Endpoints, es)
	}
	sort.Slice(snap.Endpoints, func(i, j int) bool {
		return snap.Endpoints[i].Endpoint < snap.Endpoints[j].Endpoint
	})
	return snap
}

// FeedStats counts feed-health transitions as published to the event bus —
// post-gate, so restart re-ingest never double-counts. Updated from the
// daemon's chained hooks; read by /v1/stats and /metrics.
type FeedStats struct {
	Degraded  atomic.Int64 // feed_degraded events published
	Recovered atomic.Int64 // feed_recovered events published
}

// FeedStatsSnapshot is a point-in-time copy of FeedStats.
type FeedStatsSnapshot struct {
	Degraded  int64
	Recovered int64
}

// Snapshot copies the current counter values.
func (s *FeedStats) Snapshot() FeedStatsSnapshot {
	return FeedStatsSnapshot{
		Degraded:  s.Degraded.Load(),
		Recovered: s.Recovered.Load(),
	}
}
