package bgpstream

import (
	"net/netip"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

func TestShardOfStableAndKeyAffine(t *testing.T) {
	p1 := netip.MustParsePrefix("10.0.1.0/24")
	for n := 1; n <= 16; n++ {
		a := ShardOf(64500, p1, n)
		if a != ShardOf(64500, p1, n) {
			t.Fatalf("n=%d: non-deterministic shard", n)
		}
		if a < 0 || a >= n {
			t.Fatalf("n=%d: shard %d out of range", n, a)
		}
	}
	// Distinct keys should spread (not a strict requirement per pair, but
	// the full pool must hit every shard).
	hit := make(map[int]bool)
	for i := 0; i < 256; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
		hit[ShardOf(bgp.ASN(64500+i%4), p, 4)] = true
	}
	if len(hit) != 4 {
		t.Errorf("256 keys over 4 shards hit only %v", hit)
	}
}

func TestFanoutSplitsAndBroadcasts(t *testing.T) {
	f := NewFanout(4)
	at := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

	upd := &mrt.Record{
		Time: at, Kind: mrt.KindUpdate, Collector: "rrc00", PeerAS: 64500,
		Update: &bgp.Update{
			Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
			Announced: []netip.Prefix{
				netip.MustParsePrefix("10.0.1.0/24"),
				netip.MustParsePrefix("10.0.2.0/24"),
			},
			Attrs: bgp.Attributes{ASPath: bgp.Path{64500, 64501}},
		},
	}
	if n := f.Add(upd); n != 3 {
		t.Fatalf("ops queued = %d, want 3", n)
	}

	// Ops land on the shard ShardOf names, with strictly increasing seq,
	// withdrawals before announcements.
	total := 0
	var lastSeq uint64
	for i := 0; i < 4; i++ {
		ops := f.Take(i)
		total += len(ops)
		for _, op := range ops {
			if got := f.ShardOf(op.Peer, op.Prefix); got != i {
				t.Errorf("op for key %v landed on shard %d, ShardOf says %d", op.Prefix, i, got)
			}
			if op.Seq <= 0 {
				t.Errorf("missing seq on %+v", op)
			}
		}
		if len(ops) > 0 && ops[len(ops)-1].Seq > lastSeq {
			lastSeq = ops[len(ops)-1].Seq
		}
	}
	if total != 3 {
		t.Fatalf("total ops = %d, want 3", total)
	}

	// Peer-down broadcasts to every shard and feeds the session tracker.
	down := &mrt.Record{
		Time: at.Add(time.Minute), Kind: mrt.KindState, Collector: "rrc00", PeerAS: 64500,
		OldState: mrt.StateEstablished, NewState: mrt.StateIdle,
	}
	if n := f.Add(down); n != 4 {
		t.Fatalf("broadcast queued %d ops, want 4", n)
	}
	for i := 0; i < 4; i++ {
		ops := f.Take(i)
		if len(ops) != 1 || ops[0].Kind != OpPeerDown || ops[0].Peer != 64500 {
			t.Errorf("shard %d: broadcast ops = %+v", i, ops)
		}
		if ops[0].Seq <= lastSeq {
			t.Errorf("broadcast seq %d not after %d", ops[0].Seq, lastSeq)
		}
	}
	if !f.Tracker().IsDown(SessionKey{Collector: "rrc00", PeerAS: 64500}, at.Add(2*time.Minute)) {
		t.Error("session tracker missed the peer-down")
	}

	// Re-establish queues nothing.
	up := &mrt.Record{
		Time: at.Add(2 * time.Minute), Kind: mrt.KindState, Collector: "rrc00", PeerAS: 64500,
		OldState: mrt.StateIdle, NewState: mrt.StateEstablished,
	}
	if n := f.Add(up); n != 0 {
		t.Errorf("established state queued %d ops", n)
	}
}
