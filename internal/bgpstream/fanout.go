package bgpstream

import (
	"hash/fnv"
	"net/netip"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

// RouteOpKind distinguishes the per-path operations a record fans out to.
type RouteOpKind uint8

// Route op kinds.
const (
	// OpAnnounce carries a (possibly re-)announced route for one prefix.
	OpAnnounce RouteOpKind = iota
	// OpWithdraw retracts one prefix.
	OpWithdraw
	// OpPeerDown reports a collector session leaving Established state; it
	// is broadcast to every shard so each can suspend its partition of the
	// peer's paths.
	OpPeerDown
)

// RouteOp is one shard-addressable unit of work derived from an MRT
// record. Seq is a global, strictly increasing sequence number assigned in
// record order: consumers that merge per-shard results can sort on it to
// reproduce the exact processing order of a sequential replay. Path and
// Communities alias the originating record's slices and must be treated as
// read-only.
type RouteOp struct {
	Seq         uint64
	Kind        RouteOpKind
	Time        time.Time
	Peer        bgp.ASN
	Prefix      netip.Prefix
	Path        bgp.Path
	Communities bgp.Communities
}

// ShardOf deterministically assigns a (vantage, prefix) route key to one
// of n shards. The hash is FNV-1a over the peer ASN and the prefix bytes,
// so the assignment is stable across runs and processes.
func ShardOf(peer bgp.ASN, prefix netip.Prefix, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [21]byte
	buf[0] = byte(peer >> 24)
	buf[1] = byte(peer >> 16)
	buf[2] = byte(peer >> 8)
	buf[3] = byte(peer)
	a16 := prefix.Addr().As16()
	copy(buf[4:20], a16[:])
	buf[20] = byte(prefix.Bits())
	h.Write(buf[:])
	return int(mix64(h.Sum64()) % uint64(n))
}

// mix64 is a splitmix64-style finalizer: FNV's low bits correlate on
// short, near-constant inputs like route keys, which would starve shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fanout splits a time-ordered record stream into n per-shard route-op
// queues, keeping all ops of one (peer, prefix) path key on one shard so
// per-path state needs no locking. State messages feed the embedded
// session tracker and broadcast peer-down ops to every shard. Fanout is
// the ingestion half of the sharded engine: it does only cheap routing
// (hash + append) on the hot path, leaving community annotation and state
// maintenance to the shard workers.
type Fanout struct {
	n       int
	seq     uint64
	pending [][]RouteOp
	// spare holds one recycled op slab per shard, adopted by the next Take
	// so batch dispatch reuses capacity instead of allocating per batch.
	spare   [][]RouteOp
	tracker *SessionTracker
}

// NewFanout builds a fan-out over n shards (n >= 1).
func NewFanout(n int) *Fanout {
	if n < 1 {
		n = 1
	}
	return &Fanout{n: n, pending: make([][]RouteOp, n), spare: make([][]RouteOp, n), tracker: NewSessionTracker()}
}

// Seq returns the sequence number of the most recently emitted op.
func (f *Fanout) Seq() uint64 { return f.seq }

// RestoreSeq seeds the op sequence counter — the checkpoint-recovery hook
// that keeps post-restore op numbering identical to an uninterrupted run.
func (f *Fanout) RestoreSeq(seq uint64) { f.seq = seq }

// Shards returns the shard count.
func (f *Fanout) Shards() int { return f.n }

// Tracker exposes the session tracker fed by state records.
func (f *Fanout) Tracker() *SessionTracker { return f.tracker }

// ShardOf returns the shard owning a path key under this fan-out.
func (f *Fanout) ShardOf(peer bgp.ASN, prefix netip.Prefix) int {
	return ShardOf(peer, prefix, f.n)
}

// Add splits one record into pending per-shard ops and returns the number
// of ops queued. Records must arrive in non-decreasing time order.
func (f *Fanout) Add(rec *mrt.Record) int {
	switch rec.Kind {
	case mrt.KindState:
		f.tracker.Observe(rec)
		if rec.NewState == mrt.StateEstablished {
			return 0
		}
		f.seq++
		op := RouteOp{Seq: f.seq, Kind: OpPeerDown, Time: rec.Time, Peer: rec.PeerAS}
		for i := range f.pending {
			f.pending[i] = append(f.pending[i], op)
		}
		return f.n
	case mrt.KindRIB, mrt.KindUpdate:
		if rec.Update == nil {
			return 0
		}
		n := 0
		for _, p := range rec.Update.Withdrawn {
			f.seq++
			i := ShardOf(rec.PeerAS, p, f.n)
			f.pending[i] = append(f.pending[i], RouteOp{
				Seq: f.seq, Kind: OpWithdraw, Time: rec.Time, Peer: rec.PeerAS, Prefix: p,
			})
			n++
		}
		attrs := rec.Update.Attrs
		for _, p := range rec.Update.Announced {
			f.seq++
			i := ShardOf(rec.PeerAS, p, f.n)
			f.pending[i] = append(f.pending[i], RouteOp{
				Seq: f.seq, Kind: OpAnnounce, Time: rec.Time, Peer: rec.PeerAS, Prefix: p,
				Path: attrs.ASPath, Communities: attrs.Communities,
			})
			n++
		}
		return n
	}
	return 0
}

// Pending returns the number of ops queued for shard i.
func (f *Fanout) Pending(i int) int { return len(f.pending[i]) }

// Take hands shard i's pending ops to the caller and resets the queue,
// adopting a previously recycled slab (if any) as the new accumulation
// buffer so steady-state dispatch stops allocating.
func (f *Fanout) Take(i int) []RouteOp {
	ops := f.pending[i]
	f.pending[i] = f.spare[i]
	f.spare[i] = nil
	return ops
}

// Recycle returns a fully consumed Take buffer to shard i for reuse. The
// caller must guarantee the ops have been completely applied: the slab is
// reused by a later Add, overwriting its entries. If the accumulation
// buffer is empty the slab is adopted immediately; otherwise it is parked
// as the shard's spare and adopted by the next Take.
func (f *Fanout) Recycle(i int, ops []RouteOp) {
	if ops == nil {
		return
	}
	if f.pending[i] == nil {
		f.pending[i] = ops[:0]
		return
	}
	f.spare[i] = ops[:0]
}
