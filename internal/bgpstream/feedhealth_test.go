package bgpstream

import (
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

func feedRec(coll string, peer bgp.ASN, at time.Time) *mrt.Record {
	return &mrt.Record{Kind: mrt.KindUpdate, Collector: coll, PeerAS: peer, Time: at}
}

func TestFeedWatchdogTransitions(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w := NewFeedWatchdog(5 * time.Minute)

	w.Observe(feedRec("rrc00", 64500, t0))
	w.Observe(feedRec("rrc00", 64501, t0))
	w.Observe(feedRec("rrc01", 64500, t0))

	if w.Due(t0.Add(time.Minute)) {
		t.Fatal("nothing should be due one minute in")
	}
	if trs := w.Evaluate(t0.Add(time.Minute)); len(trs) != 0 {
		t.Fatalf("expected no transitions, got %v", trs)
	}

	// rrc00/64501 and all of rrc01 go silent; the rest keep talking.
	w.Observe(feedRec("rrc00", 64500, t0.Add(4*time.Minute)))
	end := t0.Add(6 * time.Minute)
	if !w.Due(end) {
		t.Fatal("silence threshold crossed, Due must report it")
	}
	trs := w.Evaluate(end)
	want := []FeedTransition{
		{Scope: ScopeCollector, Collector: "rrc01", Degraded: true, LastSeen: t0, At: end},
		{Scope: ScopePeer, Collector: "rrc00", PeerAS: 64501, Degraded: true, LastSeen: t0, At: end},
		{Scope: ScopePeer, Collector: "rrc01", PeerAS: 64500, Degraded: true, LastSeen: t0, At: end},
	}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("degraded transitions:\n got %+v\nwant %+v", trs, want)
	}
	// Committed: re-evaluating the same end is quiescent.
	if w.Due(end) {
		t.Fatal("Due must clear once transitions are committed")
	}
	if trs := w.Evaluate(end); len(trs) != 0 {
		t.Fatalf("expected committed state, got %v", trs)
	}

	// rrc01 comes back.
	back := t0.Add(7 * time.Minute)
	w.Observe(feedRec("rrc01", 64500, back))
	trs = w.Evaluate(t0.Add(8 * time.Minute))
	want = []FeedTransition{
		{Scope: ScopeCollector, Collector: "rrc01", Degraded: false, LastSeen: back, At: t0.Add(8 * time.Minute)},
		{Scope: ScopePeer, Collector: "rrc01", PeerAS: 64500, Degraded: false, LastSeen: back, At: t0.Add(8 * time.Minute)},
	}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("recovery transitions:\n got %+v\nwant %+v", trs, want)
	}
}

func TestFeedWatchdogSnapshotAndCoverage(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w := NewFeedWatchdog(5 * time.Minute)

	empty := w.Snapshot(t0)
	if got := empty.Coverage(); got != 1 {
		t.Fatalf("empty watchdog coverage = %v, want 1", got)
	}

	w.Observe(feedRec("rrc00", 64500, t0))
	w.Observe(feedRec("rrc01", 64500, t0.Add(10*time.Minute)))
	end := t0.Add(12 * time.Minute)
	w.Evaluate(end)

	snap := w.Snapshot(end)
	if snap.SessionsKnown != 2 || snap.SessionsLive != 1 {
		t.Fatalf("sessions known/live = %d/%d, want 2/1", snap.SessionsKnown, snap.SessionsLive)
	}
	if snap.CollectorsKnown != 2 || snap.CollectorsLive != 1 {
		t.Fatalf("collectors known/live = %d/%d, want 2/1", snap.CollectorsKnown, snap.CollectorsLive)
	}
	if got := snap.Coverage(); got != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
	if !snap.Sessions[0].Degraded || snap.Sessions[0].Collector != "rrc00" {
		t.Fatalf("sessions[0] = %+v, want degraded rrc00", snap.Sessions[0])
	}
	if want := 12 * time.Minute; snap.Sessions[0].SilentFor != want {
		t.Fatalf("silent_for = %v, want %v", snap.Sessions[0].SilentFor, want)
	}
}

func TestFeedWatchdogCheckpointRoundTrip(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w := NewFeedWatchdog(5 * time.Minute)
	w.Observe(feedRec("rrc00", 64500, t0))
	w.Observe(feedRec("rrc00", 64501, t0.Add(time.Minute)))
	w.Observe(feedRec("rrc01", 64502, t0.Add(8*time.Minute)))
	end := t0.Add(9 * time.Minute)
	w.Evaluate(end)

	ckpt := w.Checkpoint()
	w2 := NewFeedWatchdog(5 * time.Minute)
	w2.Restore(ckpt)
	if !reflect.DeepEqual(w2.Checkpoint(), ckpt) {
		t.Fatal("checkpoint did not round-trip")
	}

	// The restored watchdog must continue with identical transitions.
	later := t0.Add(15 * time.Minute)
	if !reflect.DeepEqual(w.Evaluate(later), w2.Evaluate(later)) {
		t.Fatal("restored watchdog diverged from the original")
	}
	if !reflect.DeepEqual(w.Snapshot(later), w2.Snapshot(later)) {
		t.Fatal("restored snapshot diverged")
	}
}
