package bgpstream

import (
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

var t0 = time.Date(2016, 7, 20, 0, 0, 0, 0, time.UTC)

func updRec(at time.Duration, collector string, peer bgp.ASN, prefix string) *mrt.Record {
	r := &mrt.Record{
		Time:      t0.Add(at),
		Kind:      mrt.KindUpdate,
		Collector: collector,
		PeerAS:    peer,
		Update: &bgp.Update{
			Announced: []netip.Prefix{netip.MustParsePrefix(prefix)},
			Attrs: bgp.Attributes{
				ASPath:  bgp.Path{peer, 20940},
				NextHop: netip.MustParseAddr("192.0.2.1"),
			},
		},
	}
	return r
}

func stateRec(at time.Duration, collector string, peer bgp.ASN, from, to mrt.SessionState) *mrt.Record {
	return &mrt.Record{
		Time:      t0.Add(at),
		Kind:      mrt.KindState,
		Collector: collector,
		PeerAS:    peer,
		OldState:  from,
		NewState:  to,
	}
}

func TestMergerOrdersAcrossSources(t *testing.T) {
	s1 := NewSliceSource([]*mrt.Record{
		updRec(0, "rrc00", 1, "184.84.0.0/16"),
		updRec(3*time.Second, "rrc00", 1, "184.84.0.0/16"),
		updRec(9*time.Second, "rrc00", 1, "184.84.0.0/16"),
	})
	s2 := NewSliceSource([]*mrt.Record{
		updRec(1*time.Second, "rrc03", 2, "2.21.0.0/16"),
		updRec(4*time.Second, "rrc03", 2, "2.21.0.0/16"),
	})
	s3 := NewSliceSource(nil)

	m := NewMerger(s1, s2, s3)
	var got []*mrt.Record
	for {
		r, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != 5 {
		t.Fatalf("merged %d records, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("out of order at %d: %v before %v", i, got[i].Time, got[i-1].Time)
		}
	}
}

func TestMergerDeterministicTieBreak(t *testing.T) {
	mk := func() *Merger {
		a := NewSliceSource([]*mrt.Record{updRec(0, "A", 1, "184.84.0.0/16")})
		b := NewSliceSource([]*mrt.Record{updRec(0, "B", 2, "2.21.0.0/16")})
		return NewMerger(a, b)
	}
	m1, m2 := mk(), mk()
	r1a, _ := m1.Next()
	r2a, _ := m2.Next()
	if r1a.Collector != r2a.Collector {
		t.Error("tie-break is not deterministic")
	}
	if r1a.Collector != "A" {
		t.Errorf("first source should win ties, got %s", r1a.Collector)
	}
}

func TestMergerLargeRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sources []Source
	total := 0
	for s := 0; s < 8; s++ {
		var recs []*mrt.Record
		at := time.Duration(0)
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Intn(5000)) * time.Millisecond
			recs = append(recs, updRec(at, "c", bgp.ASN(s+1), "184.84.0.0/16"))
		}
		total += n
		sources = append(sources, NewSliceSource(recs))
	}
	m := NewMerger(sources...)
	var prev time.Time
	count := 0
	for {
		r, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && r.Time.Before(prev) {
			t.Fatalf("order violation at record %d", count)
		}
		prev = r.Time
		count++
	}
	if count != total {
		t.Fatalf("merged %d records, want %d", count, total)
	}
}

func TestFilterMatch(t *testing.T) {
	r4 := updRec(time.Minute, "rrc00", 13030, "184.84.242.0/24")
	r6 := updRec(time.Minute, "rrc00", 13030, "2a02:2e0::/32")
	st := stateRec(time.Minute, "rrc00", 13030, mrt.StateEstablished, mrt.StateIdle)

	cases := []struct {
		name string
		f    Filter
		r    *mrt.Record
		want bool
	}{
		{"empty matches", Filter{}, r4, true},
		{"kind match", Filter{Kinds: []mrt.RecordKind{mrt.KindUpdate}}, r4, true},
		{"kind reject", Filter{Kinds: []mrt.RecordKind{mrt.KindState}}, r4, false},
		{"collector match", Filter{Collectors: []string{"rrc00", "rrc03"}}, r4, true},
		{"collector reject", Filter{Collectors: []string{"route-views2"}}, r4, false},
		{"peer match", Filter{PeerASNs: []bgp.ASN{13030}}, r4, true},
		{"peer reject", Filter{PeerASNs: []bgp.ASN{3356}}, r4, false},
		{"start bound", Filter{Start: t0.Add(2 * time.Minute)}, r4, false},
		{"end bound", Filter{End: t0.Add(30 * time.Second)}, r4, false},
		{"window ok", Filter{Start: t0, End: t0.Add(time.Hour)}, r4, true},
		{"v4 only accepts v4", Filter{IPv4Only: true}, r4, true},
		{"v4 only rejects v6", Filter{IPv4Only: true}, r6, false},
		{"v6 only accepts v6", Filter{IPv6Only: true}, r6, true},
		{"v6 only rejects v4", Filter{IPv6Only: true}, r4, false},
		{"family filter passes state records", Filter{IPv4Only: true}, st, true},
	}
	for _, c := range cases {
		if got := c.f.Match(c.r); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterSource(t *testing.T) {
	src := NewSliceSource([]*mrt.Record{
		updRec(0, "rrc00", 1, "184.84.0.0/16"),
		updRec(time.Second, "rrc03", 2, "2.21.0.0/16"),
		updRec(2*time.Second, "rrc00", 3, "9.9.0.0/16"),
	})
	fs := NewFilterSource(src, &Filter{Collectors: []string{"rrc00"}})
	var count int
	for {
		r, err := fs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r.Collector != "rrc00" {
			t.Errorf("leaked record from %s", r.Collector)
		}
		count++
	}
	if count != 2 {
		t.Errorf("got %d records, want 2", count)
	}
}

func TestSessionTrackerGaps(t *testing.T) {
	tr := NewSessionTracker()
	key := SessionKey{Collector: "rrc00", PeerAS: 13030}

	tr.Observe(stateRec(0, "rrc00", 13030, mrt.StateEstablished, mrt.StateIdle))
	if !tr.IsDown(key, t0.Add(time.Minute)) {
		t.Error("session should be down after Idle transition")
	}
	if tr.IsDown(SessionKey{Collector: "rrc03", PeerAS: 13030}, t0.Add(time.Minute)) {
		t.Error("unrelated session reported down")
	}

	// Bouncing through Connect/Active states keeps the same gap.
	tr.Observe(stateRec(2*time.Minute, "rrc00", 13030, mrt.StateIdle, mrt.StateConnect))
	tr.Observe(stateRec(3*time.Minute, "rrc00", 13030, mrt.StateConnect, mrt.StateActive))
	if !tr.IsDown(key, t0.Add(3*time.Minute+30*time.Second)) {
		t.Error("session should still be down mid-bounce")
	}

	tr.Observe(stateRec(5*time.Minute, "rrc00", 13030, mrt.StateOpenConfirm, mrt.StateEstablished))
	gaps := tr.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("got %d gaps, want 1: %+v", len(gaps), gaps)
	}
	g := gaps[0]
	if !g.Start.Equal(t0) || !g.End.Equal(t0.Add(5*time.Minute)) {
		t.Errorf("gap = %+v", g)
	}
	if tr.IsDown(key, t0.Add(6*time.Minute)) {
		t.Error("session should be up after re-establishment")
	}
	if !tr.IsDown(key, t0.Add(time.Minute)) {
		t.Error("historical query inside closed gap should report down")
	}
}

func TestSessionTrackerOpenGap(t *testing.T) {
	tr := NewSessionTracker()
	tr.Observe(stateRec(0, "rrc00", 1, mrt.StateEstablished, mrt.StateIdle))
	gaps := tr.Gaps()
	if len(gaps) != 1 || !gaps[0].End.IsZero() {
		t.Fatalf("open gap not reported: %+v", gaps)
	}
}

func TestStreamEndToEnd(t *testing.T) {
	s1 := NewSliceSource([]*mrt.Record{
		updRec(0, "rrc00", 1, "184.84.0.0/16"),
		stateRec(time.Second, "rrc00", 1, mrt.StateEstablished, mrt.StateIdle),
		updRec(2*time.Second, "rrc00", 1, "184.84.0.0/16"),
	})
	s2 := NewSliceSource([]*mrt.Record{
		updRec(500*time.Millisecond, "rrc03", 2, "2.21.0.0/16"),
	})
	st := NewStream(nil, s1, s2)
	recs, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("drained %d records, want 4", len(recs))
	}
	if !st.Tracker().IsDown(SessionKey{Collector: "rrc00", PeerAS: 1}, t0.Add(3*time.Second)) {
		t.Error("stream did not feed tracker")
	}
}
