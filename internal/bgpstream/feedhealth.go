package bgpstream

import (
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

// FeedWatchdog tracks per-session and per-collector feed liveness on
// stream time: every record refreshes its session's last-seen stamp, and a
// feed whose silence (bin end minus last-seen) reaches the configured
// threshold is declared degraded until a record arrives again. It is the
// coverage-side complement of SessionTracker: the tracker believes state
// messages (a session that *says* it is down), the watchdog catches feeds
// that silently stop without one — the collector blind spot that erodes
// the stable baseline with no visible symptom.
//
// The watchdog never reads a clock. All decisions are pure functions of
// record timestamps and the bin ends the detection pipeline hands it, so
// a replayed stream produces the identical transition sequence at any
// replay speed, with any shard count, and across restarts (Checkpoint /
// Restore). That keeps feed_degraded / feed_recovered events inside the
// same determinism contract as every other lifecycle event — in
// particular, the replay gate can count them.
//
// All methods are single-goroutine: the ingestion goroutine observes
// records and evaluates transitions at bin barriers. Concurrent readers
// must go through a snapshot published at a barrier.
type FeedWatchdog struct {
	silence time.Duration

	sessions   map[SessionKey]time.Time
	collectors map[string]time.Time
	// degraded holds the feeds currently declared degraded; a session or
	// collector key is present only while degraded.
	degradedSessions   map[SessionKey]bool
	degradedCollectors map[string]bool
}

// NewFeedWatchdog builds a watchdog declaring any feed silent for at
// least the given duration degraded. silence must be positive.
func NewFeedWatchdog(silence time.Duration) *FeedWatchdog {
	return &FeedWatchdog{
		silence:            silence,
		sessions:           make(map[SessionKey]time.Time),
		collectors:         make(map[string]time.Time),
		degradedSessions:   make(map[SessionKey]bool),
		degradedCollectors: make(map[string]bool),
	}
}

// Silence returns the configured silence threshold.
func (w *FeedWatchdog) Silence() time.Duration { return w.silence }

// Observe refreshes the record's session and collector last-seen stamps.
// Every record kind counts as liveness — a withdrawal-only trickle still
// proves the feed is alive. Records must arrive in non-decreasing time
// order, as the merged stream guarantees.
func (w *FeedWatchdog) Observe(r *mrt.Record) {
	w.sessions[SessionKey{Collector: r.Collector, PeerAS: r.PeerAS}] = r.Time
	w.collectors[r.Collector] = r.Time
}

// FeedScope discriminates watchdog transition subjects.
type FeedScope string

// Transition scopes.
const (
	ScopeCollector FeedScope = "collector"
	ScopePeer      FeedScope = "peer"
)

// FeedTransition is one degraded/recovered edge, evaluated at a bin end.
type FeedTransition struct {
	Scope     FeedScope `json:"scope"`
	Collector string    `json:"collector"`
	// PeerAS is set for peer-scope transitions only.
	PeerAS bgp.ASN `json:"peer_as,omitempty"`
	// Degraded is true for a degraded edge, false for a recovery.
	Degraded bool `json:"degraded"`
	// LastSeen is the stream time of the feed's most recent record.
	LastSeen time.Time `json:"last_seen"`
	// At is the bin end the transition was evaluated at.
	At time.Time `json:"at"`
}

// Due reports, without mutating any state, whether Evaluate(end) would
// emit at least one transition. The engine's idle-bin fast path consults
// it so a silence threshold crossing still closes an otherwise-empty bin.
func (w *FeedWatchdog) Due(end time.Time) bool {
	for key, last := range w.sessions {
		if w.degradedSessions[key] != (end.Sub(last) >= w.silence) {
			return true
		}
	}
	for c, last := range w.collectors {
		if w.degradedCollectors[c] != (end.Sub(last) >= w.silence) {
			return true
		}
	}
	return false
}

// Evaluate computes the degraded/recovered transitions as of a bin end
// and commits them: a live feed whose silence reached the threshold
// degrades, a degraded feed seen again recovers. Transitions are returned
// sorted by (scope, collector, peer) — collector scope first — so the
// emission order is a pure function of the observed stream.
func (w *FeedWatchdog) Evaluate(end time.Time) []FeedTransition {
	var out []FeedTransition
	for c, last := range w.collectors {
		silent := end.Sub(last) >= w.silence
		if w.degradedCollectors[c] == silent {
			continue
		}
		if silent {
			w.degradedCollectors[c] = true
		} else {
			delete(w.degradedCollectors, c)
		}
		out = append(out, FeedTransition{
			Scope: ScopeCollector, Collector: c,
			Degraded: silent, LastSeen: last, At: end,
		})
	}
	for key, last := range w.sessions {
		silent := end.Sub(last) >= w.silence
		if w.degradedSessions[key] == silent {
			continue
		}
		if silent {
			w.degradedSessions[key] = true
		} else {
			delete(w.degradedSessions, key)
		}
		out = append(out, FeedTransition{
			Scope: ScopePeer, Collector: key.Collector, PeerAS: key.PeerAS,
			Degraded: silent, LastSeen: last, At: end,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Scope != b.Scope {
			return a.Scope == ScopeCollector
		}
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.PeerAS < b.PeerAS
	})
	return out
}

// FeedStatus is the point-in-time health of one feed.
type FeedStatus struct {
	Collector string `json:"collector"`
	// PeerAS is zero for collector-scope rows.
	PeerAS   bgp.ASN   `json:"peer_as,omitempty"`
	LastSeen time.Time `json:"last_seen"`
	// SilentFor is the feed's silence as of the snapshot instant.
	SilentFor time.Duration `json:"silent_for_ns"`
	Degraded  bool          `json:"degraded"`
}

// FeedSnapshot is the full health picture at one bin end: every known
// feed with its silence, plus coverage totals. Collectors and Sessions
// are sorted by (collector, peer).
type FeedSnapshot struct {
	At      time.Time     `json:"at"`
	Silence time.Duration `json:"silence_ns"`

	CollectorsKnown int `json:"collectors_known"`
	CollectorsLive  int `json:"collectors_live"`
	SessionsKnown   int `json:"sessions_known"`
	SessionsLive    int `json:"sessions_live"`

	Collectors []FeedStatus `json:"collectors,omitempty"`
	Sessions   []FeedStatus `json:"sessions,omitempty"`
}

// Coverage returns the live-session fraction, 1 when no session is known
// yet (an empty watchdog has lost nothing).
func (s *FeedSnapshot) Coverage() float64 {
	if s.SessionsKnown == 0 {
		return 1
	}
	return float64(s.SessionsLive) / float64(s.SessionsKnown)
}

// Snapshot captures every feed's status as of a bin end. Degraded flags
// reflect the committed Evaluate state, not an on-the-fly re-evaluation,
// so a snapshot taken right after Evaluate(end) is self-consistent.
func (w *FeedWatchdog) Snapshot(asOf time.Time) FeedSnapshot {
	snap := FeedSnapshot{At: asOf, Silence: w.silence}
	for c, last := range w.collectors {
		st := FeedStatus{Collector: c, LastSeen: last, SilentFor: asOf.Sub(last), Degraded: w.degradedCollectors[c]}
		snap.Collectors = append(snap.Collectors, st)
		snap.CollectorsKnown++
		if !st.Degraded {
			snap.CollectorsLive++
		}
	}
	for key, last := range w.sessions {
		st := FeedStatus{Collector: key.Collector, PeerAS: key.PeerAS, LastSeen: last, SilentFor: asOf.Sub(last), Degraded: w.degradedSessions[key]}
		snap.Sessions = append(snap.Sessions, st)
		snap.SessionsKnown++
		if !st.Degraded {
			snap.SessionsLive++
		}
	}
	less := func(a, b *FeedStatus) bool {
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.PeerAS < b.PeerAS
	}
	sort.Slice(snap.Collectors, func(i, j int) bool { return less(&snap.Collectors[i], &snap.Collectors[j]) })
	sort.Slice(snap.Sessions, func(i, j int) bool { return less(&snap.Sessions[i], &snap.Sessions[j]) })
	return snap
}

// FeedEntry is the serialized state of one watched feed.
type FeedEntry struct {
	Collector string `json:"collector"`
	// PeerAS is zero for collector-scope entries.
	PeerAS   bgp.ASN   `json:"peer_as,omitempty"`
	LastSeen time.Time `json:"last_seen"`
	Degraded bool      `json:"degraded,omitempty"`
}

// FeedCheckpoint is the watchdog's full serializable state, sorted by
// (collector, peer) so the encoding is deterministic and shard-count
// independent (the watchdog is global, fed before fan-out).
type FeedCheckpoint struct {
	Collectors []FeedEntry `json:"collectors,omitempty"`
	Sessions   []FeedEntry `json:"sessions,omitempty"`
}

// Checkpoint snapshots the watchdog deterministically.
func (w *FeedWatchdog) Checkpoint() FeedCheckpoint {
	var c FeedCheckpoint
	for coll, last := range w.collectors {
		c.Collectors = append(c.Collectors, FeedEntry{Collector: coll, LastSeen: last, Degraded: w.degradedCollectors[coll]})
	}
	for key, last := range w.sessions {
		c.Sessions = append(c.Sessions, FeedEntry{Collector: key.Collector, PeerAS: key.PeerAS, LastSeen: last, Degraded: w.degradedSessions[key]})
	}
	less := func(a, b *FeedEntry) bool {
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.PeerAS < b.PeerAS
	}
	sort.Slice(c.Collectors, func(i, j int) bool { return less(&c.Collectors[i], &c.Collectors[j]) })
	sort.Slice(c.Sessions, func(i, j int) bool { return less(&c.Sessions[i], &c.Sessions[j]) })
	return c
}

// Restore replaces the watchdog's state with a checkpoint. Must be called
// before any Observe.
func (w *FeedWatchdog) Restore(c FeedCheckpoint) {
	w.collectors = make(map[string]time.Time, len(c.Collectors))
	w.degradedCollectors = make(map[string]bool)
	for _, e := range c.Collectors {
		w.collectors[e.Collector] = e.LastSeen
		if e.Degraded {
			w.degradedCollectors[e.Collector] = true
		}
	}
	w.sessions = make(map[SessionKey]time.Time, len(c.Sessions))
	w.degradedSessions = make(map[SessionKey]bool)
	for _, e := range c.Sessions {
		key := SessionKey{Collector: e.Collector, PeerAS: e.PeerAS}
		w.sessions[key] = e.LastSeen
		if e.Degraded {
			w.degradedSessions[key] = true
		}
	}
}
