// Package bgpstream provides a unified, time-sorted feed of BGP records from
// many collectors, mirroring the role BGPStream (Orsini et al., IMC 2016)
// plays for Kepler: it decouples the detection pipeline from the feed
// sources (Section 4.1 of the paper). It merges per-collector archives with
// a k-way heap merge, applies record filters, and tracks per-session BGP
// state messages so the monitoring module can detect collector feed gaps
// and disregard updates lost to them.
package bgpstream

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

// Source yields records in non-decreasing time order. mrt.Reader satisfies
// this interface, as does SliceSource.
type Source interface {
	Next() (*mrt.Record, error)
}

// SliceSource replays an in-memory record slice. The slice must already be
// time-sorted, as archives are.
type SliceSource struct {
	records []*mrt.Record
	pos     int
}

// NewSliceSource wraps records (not copied) as a Source.
func NewSliceSource(records []*mrt.Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next implements Source.
func (s *SliceSource) Next() (*mrt.Record, error) {
	if s.pos >= len(s.records) {
		return nil, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// mergeItem is one heap entry: the head record of a source.
type mergeItem struct {
	rec *mrt.Record
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if !h[i].rec.Time.Equal(h[j].rec.Time) {
		return h[i].rec.Time.Before(h[j].rec.Time)
	}
	// Stable tie-break on source index keeps merges deterministic.
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Merger is a k-way merge of sources into one time-ordered stream.
type Merger struct {
	sources []Source
	heap    mergeHeap
	primed  bool
}

// NewMerger merges the given sources. Each source must itself be
// time-ordered; the merged stream is then globally time-ordered.
func NewMerger(sources ...Source) *Merger {
	return &Merger{sources: sources}
}

func (m *Merger) prime() error {
	m.heap = make(mergeHeap, 0, len(m.sources))
	for i, s := range m.sources {
		rec, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return fmt.Errorf("bgpstream: source %d: %w", i, err)
		}
		m.heap = append(m.heap, mergeItem{rec: rec, src: i})
	}
	heap.Init(&m.heap)
	m.primed = true
	return nil
}

// Next implements Source over the merged stream.
func (m *Merger) Next() (*mrt.Record, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return nil, err
		}
	}
	if len(m.heap) == 0 {
		return nil, io.EOF
	}
	it := m.heap[0]
	next, err := m.sources[it.src].Next()
	switch err {
	case nil:
		m.heap[0] = mergeItem{rec: next, src: it.src}
		heap.Fix(&m.heap, 0)
	case io.EOF:
		heap.Pop(&m.heap)
	default:
		return nil, fmt.Errorf("bgpstream: source %d: %w", it.src, err)
	}
	return it.rec, nil
}

// Filter selects records. All zero-valued criteria match everything.
type Filter struct {
	Kinds      []mrt.RecordKind // empty: all kinds
	Collectors []string         // empty: all collectors
	PeerASNs   []bgp.ASN        // empty: all peers
	Start      time.Time        // zero: no lower bound
	End        time.Time        // zero: no upper bound (exclusive otherwise)
	IPv4Only   bool             // drop records whose update carries only IPv6 prefixes
	IPv6Only   bool             // drop records whose update carries only IPv4 prefixes
}

// Match reports whether the record passes the filter.
func (f *Filter) Match(r *mrt.Record) bool {
	if len(f.Kinds) > 0 && !containsKind(f.Kinds, r.Kind) {
		return false
	}
	if len(f.Collectors) > 0 && !containsString(f.Collectors, r.Collector) {
		return false
	}
	if len(f.PeerASNs) > 0 && !containsASN(f.PeerASNs, r.PeerAS) {
		return false
	}
	if !f.Start.IsZero() && r.Time.Before(f.Start) {
		return false
	}
	if !f.End.IsZero() && !r.Time.Before(f.End) {
		return false
	}
	if (f.IPv4Only || f.IPv6Only) && r.Update != nil {
		has4, has6 := updateFamilies(r.Update)
		if f.IPv4Only && !has4 {
			return false
		}
		if f.IPv6Only && !has6 {
			return false
		}
	}
	return true
}

func updateFamilies(u *bgp.Update) (has4, has6 bool) {
	for _, p := range u.Announced {
		if p.Addr().Is4() {
			has4 = true
		} else {
			has6 = true
		}
	}
	for _, p := range u.Withdrawn {
		if p.Addr().Is4() {
			has4 = true
		} else {
			has6 = true
		}
	}
	return has4, has6
}

func containsKind(ks []mrt.RecordKind, k mrt.RecordKind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func containsString(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func containsASN(as []bgp.ASN, a bgp.ASN) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// FilterSource wraps a source, yielding only matching records.
type FilterSource struct {
	src    Source
	filter *Filter
}

// NewFilterSource applies filter to src.
func NewFilterSource(src Source, filter *Filter) *FilterSource {
	return &FilterSource{src: src, filter: filter}
}

// Next implements Source.
func (f *FilterSource) Next() (*mrt.Record, error) {
	for {
		r, err := f.src.Next()
		if err != nil {
			return nil, err
		}
		if f.filter.Match(r) {
			return r, nil
		}
	}
}

// SessionKey identifies one collector BGP session.
type SessionKey struct {
	Collector string
	PeerAS    bgp.ASN
}

// Gap is an interval during which a collector session was not established;
// updates "missing" during a gap reflect feed loss, not routing dynamics.
type Gap struct {
	Session SessionKey
	Start   time.Time
	End     time.Time // zero if the session never recovered
}

// SessionTracker consumes state records and maintains per-session health,
// implementing Section 4.2's "we check for BGP State messages to detect
// potential disruptions in the BGP feed ... and disregard updates due to it".
type SessionTracker struct {
	state map[SessionKey]mrt.SessionState
	down  map[SessionKey]time.Time // session -> time it went down
	gaps  []Gap
}

// NewSessionTracker returns an empty tracker. Sessions are presumed
// established until a state message says otherwise.
func NewSessionTracker() *SessionTracker {
	return &SessionTracker{
		state: make(map[SessionKey]mrt.SessionState),
		down:  make(map[SessionKey]time.Time),
	}
}

// Observe feeds one record to the tracker. Non-state records are ignored.
func (t *SessionTracker) Observe(r *mrt.Record) {
	if r.Kind != mrt.KindState {
		return
	}
	key := SessionKey{Collector: r.Collector, PeerAS: r.PeerAS}
	prev, tracked := t.state[key]
	t.state[key] = r.NewState

	wasUp := !tracked || prev == mrt.StateEstablished
	isUp := r.NewState == mrt.StateEstablished
	switch {
	case wasUp && !isUp:
		if _, already := t.down[key]; !already {
			t.down[key] = r.Time
		}
	case !isUp:
		// still down; keep original gap start
	case isUp:
		if start, wasDown := t.down[key]; wasDown {
			t.gaps = append(t.gaps, Gap{Session: key, Start: start, End: r.Time})
			delete(t.down, key)
		}
	}
}

// SessionEntry is the serialized state of one tracked collector session.
type SessionEntry struct {
	Collector string           `json:"collector"`
	PeerAS    bgp.ASN          `json:"peer_as"`
	State     mrt.SessionState `json:"state"`
	// DownSince is the start of the session's open gap; zero when up.
	DownSince time.Time `json:"down_since,omitempty"`
}

// SessionCheckpoint is the tracker's full serializable state: per-session
// status plus the closed feed gaps observed so far.
type SessionCheckpoint struct {
	Sessions []SessionEntry `json:"sessions,omitempty"`
	Gaps     []Gap          `json:"gaps,omitempty"`
}

// Checkpoint snapshots the tracker deterministically: sessions sorted by
// (collector, peer), gaps in observation order.
func (t *SessionTracker) Checkpoint() SessionCheckpoint {
	c := SessionCheckpoint{}
	for key, st := range t.state {
		e := SessionEntry{Collector: key.Collector, PeerAS: key.PeerAS, State: st}
		if start, down := t.down[key]; down {
			e.DownSince = start
		}
		c.Sessions = append(c.Sessions, e)
	}
	sort.Slice(c.Sessions, func(i, j int) bool {
		if c.Sessions[i].Collector != c.Sessions[j].Collector {
			return c.Sessions[i].Collector < c.Sessions[j].Collector
		}
		return c.Sessions[i].PeerAS < c.Sessions[j].PeerAS
	})
	c.Gaps = append(c.Gaps, t.gaps...)
	return c
}

// Restore replaces the tracker's state with a checkpoint. Must be called
// before any Observe.
func (t *SessionTracker) Restore(c SessionCheckpoint) {
	t.state = make(map[SessionKey]mrt.SessionState, len(c.Sessions))
	t.down = make(map[SessionKey]time.Time)
	for _, e := range c.Sessions {
		key := SessionKey{Collector: e.Collector, PeerAS: e.PeerAS}
		t.state[key] = e.State
		if !e.DownSince.IsZero() {
			t.down[key] = e.DownSince
		}
	}
	t.gaps = append([]Gap(nil), c.Gaps...)
}

// IsDown reports whether the session was down at the given instant.
func (t *SessionTracker) IsDown(key SessionKey, at time.Time) bool {
	if start, down := t.down[key]; down && !at.Before(start) {
		return true
	}
	for _, g := range t.gaps {
		if g.Session == key && !at.Before(g.Start) && at.Before(g.End) {
			return true
		}
	}
	return false
}

// Gaps returns all closed gaps observed so far plus open gaps (End zero).
// Open gaps are appended in sorted session order so the result is a pure
// function of the observed stream, not of map iteration order.
func (t *SessionTracker) Gaps() []Gap {
	keys := make([]SessionKey, 0, len(t.down))
	for key := range t.down {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Collector != keys[j].Collector {
			return keys[i].Collector < keys[j].Collector
		}
		return keys[i].PeerAS < keys[j].PeerAS
	})
	out := make([]Gap, len(t.gaps), len(t.gaps)+len(keys))
	copy(out, t.gaps)
	for _, key := range keys {
		out = append(out, Gap{Session: key, Start: t.down[key]})
	}
	return out
}

// Stream couples a merged+filtered source with session tracking: the
// canonical input to Kepler's monitoring module.
type Stream struct {
	src     Source
	tracker *SessionTracker
}

// NewStream builds a stream over the sources with an optional filter
// (nil means no filtering).
func NewStream(filter *Filter, sources ...Source) *Stream {
	var src Source = NewMerger(sources...)
	if filter != nil {
		src = NewFilterSource(src, filter)
	}
	return &Stream{src: src, tracker: NewSessionTracker()}
}

// Next returns the next record, feeding state messages to the tracker
// as a side effect.
func (s *Stream) Next() (*mrt.Record, error) {
	r, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	s.tracker.Observe(r)
	return r, nil
}

// Tracker exposes the session tracker for gap-aware consumers.
func (s *Stream) Tracker() *SessionTracker { return s.tracker }

// Drain reads the stream to EOF, returning all records.
func (s *Stream) Drain() ([]*mrt.Record, error) {
	var out []*mrt.Record
	for {
		r, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
