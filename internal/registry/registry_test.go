package registry

import (
	"strings"
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/geo"
)

func sampleTruth() *GroundTruth {
	members := func(n int) []bgp.ASN {
		out := make([]bgp.ASN, n)
		for i := range out {
			out[i] = bgp.ASN(100 + i)
		}
		return out
	}
	theAddr := colo.Address{Street: "Coriander Ave", Postcode: "E14 2AA", Country: "GB"}
	amsAddr := colo.Address{Street: "Science Park 121", Postcode: "1098 XG", Country: "NL"}
	return &GroundTruth{
		Facilities: []FacilityTruth{
			{Name: "Telehouse East", Operator: "Telehouse", Addr: theAddr, City: "London", Members: members(12)},
			{Name: "Nikhef", Operator: "Nikhef", Addr: amsAddr, City: "Amsterdam", Members: members(8)},
		},
		IXPs: []IXPTruth{
			{Name: "LINX", URL: "https://linx.net", City: "London", ASNs: []bgp.ASN{8714},
				Members: members(10), FacilityAddrs: []colo.Address{theAddr}},
			{Name: "AMS-IX", URL: "https://ams-ix.net", City: "Amsterdam", ASNs: []bgp.ASN{6777},
				Members: members(9), FacilityAddrs: []colo.Address{amsAddr}},
		},
		Schemes: []SchemeTruth{
			{ASN: 100, Documents: true, Entries: []SchemeEntry{
				{Low: 51702, Kind: colo.PoPFacility, Name: "Telehouse East"},
				{Low: 4006, Kind: colo.PoPIXP, Name: "LINX"},
				{Low: 2001, Kind: colo.PoPCity, Name: "London"},
			}},
			{ASN: 101, Documents: false, Entries: []SchemeEntry{
				{Low: 1, Kind: colo.PoPCity, Name: "Amsterdam"},
			}},
		},
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	gt := sampleTruth()
	f1, x1 := Snapshot(gt, DefaultSnapshotOptions(), 42)
	f2, x2 := Snapshot(gt, DefaultSnapshotOptions(), 42)
	if len(f1) != len(f2) || len(x1) != len(x2) {
		t.Fatal("snapshot is not deterministic")
	}
	for i := range f1 {
		if f1[i].Name != f2[i].Name || len(f1[i].Members) != len(f2[i].Members) {
			t.Fatal("facility records differ across identical runs")
		}
	}
}

func TestSnapshotPerfectCoverage(t *testing.T) {
	gt := sampleTruth()
	opts := SnapshotOptions{
		PeeringDBFacilityCoverage: 1, PeeringDBMemberCoverage: 1,
		DCMapFacilityCoverage: 1, DCMapMemberCoverage: 1,
		PeeringDBIXPMemberCov: 1, EuroIXMemberCov: 1,
	}
	facs, ixps := Snapshot(gt, opts, 1)
	// 2 facilities × 2 sources; 2 IXPs × (peeringdb + euroix, both European).
	if len(facs) != 4 {
		t.Errorf("facility records = %d, want 4", len(facs))
	}
	if len(ixps) != 4 {
		t.Errorf("ixp records = %d, want 4", len(ixps))
	}
	// Perfect coverage lists every member.
	for _, f := range facs {
		if f.Source == "peeringdb" && len(f.Members) != 12 && len(f.Members) != 8 {
			t.Errorf("peeringdb members = %d", len(f.Members))
		}
	}
}

func TestSnapshotMergesCleanly(t *testing.T) {
	gt := sampleTruth()
	facs, ixps := Snapshot(gt, DefaultSnapshotOptions(), 7)
	b := colo.NewBuilder(geo.DefaultWorld())
	for _, f := range facs {
		b.AddFacility(f)
	}
	for _, ix := range ixps {
		b.AddIXP(ix)
	}
	m := b.Build()
	// Address-keyed merge must never yield more facilities than truth.
	if m.NumFacilities() > len(gt.Facilities) {
		t.Errorf("facilities after merge = %d > truth %d", m.NumFacilities(), len(gt.Facilities))
	}
	if m.NumIXPs() != len(gt.IXPs) {
		t.Errorf("ixps after merge = %d, want %d", m.NumIXPs(), len(gt.IXPs))
	}
	// Merged member lists must be supersets of each single source's list.
	for _, ix := range m.IXPs() {
		if len(ix.Members) == 0 {
			t.Errorf("IXP %s has no members after merge", ix.Name)
		}
	}
}

func TestRenderDocs(t *testing.T) {
	gt := sampleTruth()
	docs := RenderDocs(gt, DocOptions{DistractorsPerDoc: 3}, 11)
	if len(docs) != 1 {
		t.Fatalf("docs = %d, want 1 (non-documenting scheme must be skipped)", len(docs))
	}
	d := docs[0]
	if d.ASN != 100 {
		t.Errorf("doc ASN = %v", d.ASN)
	}
	for _, want := range []string{"100:51702", "100:4006", "100:2001", "Telehouse East", "LINX", "London"} {
		if !strings.Contains(d.Text, want) {
			t.Errorf("doc missing %q:\n%s", want, d.Text)
		}
	}
}

func TestRenderDocsMineRoundTrip(t *testing.T) {
	// End-to-end: truth -> snapshot -> colo map -> docs -> mined dictionary
	// must recover exactly the documented ingress entries.
	gt := sampleTruth()
	opts := SnapshotOptions{
		PeeringDBFacilityCoverage: 1, PeeringDBMemberCoverage: 1,
		DCMapFacilityCoverage: 1, DCMapMemberCoverage: 1,
		PeeringDBIXPMemberCov: 1, EuroIXMemberCov: 1,
	}
	facs, ixps := Snapshot(gt, opts, 3)
	b := colo.NewBuilder(geo.DefaultWorld())
	for _, f := range facs {
		b.AddFacility(f)
	}
	for _, ix := range ixps {
		b.AddIXP(ix)
	}
	cmap := b.Build()

	docs := RenderDocs(gt, DocOptions{DistractorsPerDoc: 4}, 5)
	dict := communities.NewMiner(geo.DefaultWorld(), cmap).Mine(docs)

	// All three documented ingress communities must be present.
	for _, low := range []uint16{51702, 4006, 2001} {
		e, ok := dict.Lookup(bgp.MakeCommunity(100, low))
		if !ok {
			t.Errorf("community 100:%d not mined", low)
			continue
		}
		switch low {
		case 51702:
			if e.PoP.Kind != colo.PoPFacility {
				t.Errorf("100:%d kind = %v, want facility", low, e.PoP.Kind)
			}
		case 4006:
			if e.PoP.Kind != colo.PoPIXP {
				t.Errorf("100:%d kind = %v, want ixp", low, e.PoP.Kind)
			}
		case 2001:
			if e.PoP.Kind != colo.PoPCity {
				t.Errorf("100:%d kind = %v, want city", low, e.PoP.Kind)
			}
		}
	}
	// No distractor (low >= 60000) may leak into the dictionary, and the
	// private scheme of AS101 must be absent.
	for _, e := range dict.Entries() {
		if e.Community.Low >= 60000 {
			t.Errorf("outbound distractor leaked: %v", e.Community)
		}
		if e.ASN == 101 {
			t.Errorf("private scheme leaked: %v", e.Community)
		}
	}
	if dict.Len() != 3 {
		t.Errorf("dictionary size = %d, want exactly 3 (no false positives)", dict.Len())
	}
}

func TestDCMapNameVariant(t *testing.T) {
	if got := dcMapName("Telehouse East"); got == "Telehouse East" {
		t.Error("dcmap name should differ from canonical")
	}
}
