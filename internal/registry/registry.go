// Package registry renders ground-truth infrastructure into the imperfect
// public data sources Kepler mines: PeeringDB- and DataCenterMap-style
// colocation snapshots (Section 3.3), and the IRR remarks / operator web
// pages holding natural-language community documentation (Section 3.2).
//
// The paper consumes the real services; this package substitutes
// deterministic synthetic renderings with realistic imperfections — partial
// coverage, per-source member-list gaps, divergent naming — so that the
// downstream merging and mining code has real work to do. All sampling is
// seeded; the same ground truth and seed always render identical sources.
package registry

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/communities"
)

// FacilityTruth is the ground truth for one colocation facility.
type FacilityTruth struct {
	Name     string
	Operator string
	Addr     colo.Address
	City     string // city identifier, resolvable by the geo gazetteer
	Members  []bgp.ASN
}

// IXPTruth is the ground truth for one IXP.
type IXPTruth struct {
	Name          string
	URL           string
	City          string
	ASNs          []bgp.ASN // route-server / management ASNs
	LANs          []netip.Prefix
	Members       []bgp.ASN
	FacilityAddrs []colo.Address // buildings hosting fabric
}

// SchemeEntry is one location community in an operator's scheme: the low
// 16 bits and the entity it tags.
type SchemeEntry struct {
	Low  uint16
	Kind colo.PoPKind
	Name string // facility, IXP or city name as the operator writes it
}

// SchemeTruth is one operator's community scheme.
type SchemeTruth struct {
	ASN       bgp.ASN
	Documents bool // false: scheme is private (the paper's XO/Verizon case)
	Entries   []SchemeEntry
}

// GroundTruth bundles everything the renderer needs.
type GroundTruth struct {
	Facilities []FacilityTruth
	IXPs       []IXPTruth
	Schemes    []SchemeTruth
}

// SnapshotOptions tunes source imperfection. Zero value = perfect sources;
// DefaultSnapshotOptions gives the realistic mix.
type SnapshotOptions struct {
	PeeringDBFacilityCoverage float64 // probability a facility appears at all
	PeeringDBMemberCoverage   float64 // probability a present facility lists a given member
	DCMapFacilityCoverage     float64
	DCMapMemberCoverage       float64
	PeeringDBIXPMemberCov     float64
	EuroIXMemberCov           float64
}

// DefaultSnapshotOptions reflects the relative completeness the paper and
// follow-up measurement studies report for these sources.
func DefaultSnapshotOptions() SnapshotOptions {
	return SnapshotOptions{
		PeeringDBFacilityCoverage: 0.97,
		PeeringDBMemberCoverage:   0.92,
		DCMapFacilityCoverage:     0.70,
		DCMapMemberCoverage:       0.55,
		PeeringDBIXPMemberCov:     0.96,
		EuroIXMemberCov:           0.85,
	}
}

// Snapshot renders the colocation data sources. The returned records feed
// colo.Builder directly.
func Snapshot(gt *GroundTruth, opts SnapshotOptions, seed int64) ([]colo.FacilityRecord, []colo.IXPRecord) {
	rng := rand.New(rand.NewSource(seed))
	var facs []colo.FacilityRecord
	var ixps []colo.IXPRecord

	for _, f := range gt.Facilities {
		if rng.Float64() < opts.PeeringDBFacilityCoverage {
			facs = append(facs, colo.FacilityRecord{
				Source:   "peeringdb",
				Name:     f.Name,
				Operator: f.Operator,
				Addr:     f.Addr,
				CityHint: f.City,
				Members:  sampleASNs(rng, f.Members, opts.PeeringDBMemberCoverage),
			})
		}
		if rng.Float64() < opts.DCMapFacilityCoverage {
			facs = append(facs, colo.FacilityRecord{
				Source:   "dcmap",
				Name:     dcMapName(f.Name),
				Addr:     colo.Address{Postcode: f.Addr.Postcode, Country: f.Addr.Country},
				CityHint: f.City,
				Members:  sampleASNs(rng, f.Members, opts.DCMapMemberCoverage),
			})
		}
	}

	for _, ix := range gt.IXPs {
		ixps = append(ixps, colo.IXPRecord{
			Source:        "peeringdb",
			Name:          ix.Name,
			URL:           ix.URL,
			CityHint:      ix.City,
			ASNs:          ix.ASNs,
			LANs:          ix.LANs,
			Members:       sampleASNs(rng, ix.Members, opts.PeeringDBIXPMemberCov),
			FacilityAddrs: ix.FacilityAddrs,
		})
		// Euro-IX publishes European exchanges; it fills member gaps.
		if isEuropean(ix) {
			ixps = append(ixps, colo.IXPRecord{
				Source:   "euroix",
				Name:     ix.Name,
				URL:      strings.ToUpper(ix.URL), // URL merging is case-insensitive
				CityHint: ix.City,
				Members:  sampleASNs(rng, ix.Members, opts.EuroIXMemberCov),
			})
		}
	}
	return facs, ixps
}

func isEuropean(ix IXPTruth) bool {
	for _, a := range ix.FacilityAddrs {
		switch a.Country {
		case "GB", "DE", "NL", "FR", "IT", "ES", "AT", "CH", "BE", "SE", "DK",
			"NO", "FI", "PL", "CZ", "PT", "IE", "LU", "HU", "RO", "BG", "GR":
			return true
		}
	}
	return false
}

func dcMapName(name string) string {
	// DataCenterMap tends to add boilerplate to names; the merge must
	// survive it (address keys, not names, unify facilities).
	return name + " Data Center"
}

func sampleASNs(rng *rand.Rand, asns []bgp.ASN, p float64) []bgp.ASN {
	var out []bgp.ASN
	for _, a := range asns {
		if rng.Float64() < p {
			out = append(out, a)
		}
	}
	return out
}

// ingressTemplates render inbound location communities in the passive-voice
// styles seen across real operator docs.
var ingressTemplates = []string{
	"%s - routes received at %s",
	"%s - routes learned at %s",
	"%s - prefixes exchanged at %s",
	"%s - received from peer at %s",
}

// distractorTemplates render outbound/action communities the miner must
// filter by grammatical voice. Some include location names to make the
// filtering non-trivial.
var distractorTemplates = []string{
	"%s - announce to all peers",
	"%s - do not announce to peers at %s",
	"%s - prepend 2x towards peers in %s",
	"%s - blackhole these prefixes",
	"%s - set local preference to 80",
}

// DocOptions tunes the documentation renderer.
type DocOptions struct {
	DistractorsPerDoc int // outbound entries sprinkled in each document
}

// RenderDocs renders each documenting operator's scheme as a mined
// Document. Operators with Documents=false are skipped entirely — their
// communities stay out of the dictionary, bounding Kepler's coverage as in
// Section 3.2.
func RenderDocs(gt *GroundTruth, opts DocOptions, seed int64) []communities.Document {
	rng := rand.New(rand.NewSource(seed))
	var docs []communities.Document
	for _, scheme := range gt.Schemes {
		if !scheme.Documents || len(scheme.Entries) == 0 {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "BGP communities for customers of %s.\n\n", scheme.ASN)
		for _, e := range scheme.Entries {
			comm := fmt.Sprintf("%d:%d", scheme.ASN, e.Low)
			tmpl := ingressTemplates[rng.Intn(len(ingressTemplates))]
			fmt.Fprintf(&b, tmpl+"\n", comm, e.Name)
		}
		for i := 0; i < opts.DistractorsPerDoc; i++ {
			low := 60000 + rng.Intn(5000)
			comm := fmt.Sprintf("%d:%d", scheme.ASN, low)
			tmpl := distractorTemplates[rng.Intn(len(distractorTemplates))]
			var line string
			if strings.Count(tmpl, "%s") == 2 {
				loc := "London"
				if len(scheme.Entries) > 0 {
					loc = scheme.Entries[rng.Intn(len(scheme.Entries))].Name
				}
				line = fmt.Sprintf(tmpl, comm, loc)
			} else {
				line = fmt.Sprintf(tmpl, comm)
			}
			b.WriteString(line + "\n")
		}
		source := "irr"
		if rng.Float64() < 0.4 {
			source = "web"
		}
		docs = append(docs, communities.Document{ASN: scheme.ASN, Source: source, Text: b.String()})
	}
	return docs
}
