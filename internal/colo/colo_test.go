package colo

import (
	"net/netip"
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/geo"
)

// buildTestMap assembles a small two-source map:
//
//	Facility "Telehouse East" (London): AS1 AS2 AS3 (peeringdb) + AS4 (dcmap)
//	Facility "Equinix AM7" (Amsterdam): AS2 AS5
//	IXP "LINX" (London): members AS1..AS4, fabric at Telehouse East
//	IXP "AMS-IX" (Amsterdam): members AS2 AS5 AS6, fabric at AM7
func buildTestMap(t *testing.T) *Map {
	t.Helper()
	b := NewBuilder(geo.DefaultWorld())

	theAddr := Address{Street: "Coriander Ave", Postcode: "E14 2AA", Country: "GB"}
	am7Addr := Address{Street: "Kuiperberghweg 13", Postcode: "1101 AE", Country: "NL"}

	b.AddFacility(FacilityRecord{
		Source: "peeringdb", Name: "Telehouse East", Operator: "Telehouse",
		Addr: theAddr, CityHint: "London", Members: []bgp.ASN{1, 2, 3},
	})
	b.AddFacility(FacilityRecord{
		Source: "dcmap", Name: "Telehouse London East", // longer name wins
		Addr: Address{Postcode: "E14 2AA", Country: "GB"}, CityHint: "LON",
		Members: []bgp.ASN{2, 4},
	})
	b.AddFacility(FacilityRecord{
		Source: "peeringdb", Name: "Equinix AM7", Operator: "Equinix",
		Addr: am7Addr, CityHint: "Amsterdam", Members: []bgp.ASN{2, 5},
	})

	b.AddIXP(IXPRecord{
		Source: "peeringdb", Name: "LINX LON1", URL: "https://linx.net",
		CityHint: "London", ASNs: []bgp.ASN{8714},
		LANs:          []netip.Prefix{netip.MustParsePrefix("195.66.224.0/22")},
		Members:       []bgp.ASN{1, 2, 3},
		FacilityAddrs: []Address{theAddr},
	})
	b.AddIXP(IXPRecord{
		Source: "euroix", Name: "LINX", URL: "https://LINX.net", // same URL, case-insensitive
		CityHint: "London", Members: []bgp.ASN{4},
	})
	b.AddIXP(IXPRecord{
		Source: "peeringdb", Name: "AMS-IX", URL: "https://ams-ix.net",
		CityHint: "Amsterdam", ASNs: []bgp.ASN{6777},
		LANs:          []netip.Prefix{netip.MustParsePrefix("80.249.208.0/21")},
		Members:       []bgp.ASN{2, 5, 6},
		FacilityAddrs: []Address{am7Addr},
	})
	return b.Build()
}

func TestMergeFacilitiesByAddress(t *testing.T) {
	m := buildTestMap(t)
	if m.NumFacilities() != 2 {
		t.Fatalf("facilities = %d, want 2 (merge by postcode failed)", m.NumFacilities())
	}
	fid, ok := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})
	if !ok {
		t.Fatal("Telehouse East not found by address")
	}
	f, _ := m.Facility(fid)
	if f.Name != "Telehouse London East" {
		t.Errorf("longest name should win: %q", f.Name)
	}
	if f.Operator != "Telehouse" {
		t.Errorf("operator lost: %q", f.Operator)
	}
	if f.Addr.Street != "Coriander Ave" {
		t.Errorf("street lost: %q", f.Addr.Street)
	}
	wantMembers := []bgp.ASN{1, 2, 3, 4}
	if len(f.Members) != len(wantMembers) {
		t.Fatalf("members = %v, want %v", f.Members, wantMembers)
	}
	for i, a := range wantMembers {
		if f.Members[i] != a {
			t.Errorf("members = %v, want %v", f.Members, wantMembers)
			break
		}
	}
	if len(f.Sources) != 2 {
		t.Errorf("sources = %v", f.Sources)
	}
	lon, _ := geo.DefaultWorld().Resolve("London")
	if f.City != lon.ID {
		t.Errorf("city = %d, want London(%d)", f.City, lon.ID)
	}
}

func TestMergeIXPsByURL(t *testing.T) {
	m := buildTestMap(t)
	if m.NumIXPs() != 2 {
		t.Fatalf("ixps = %d, want 2 (URL merge failed)", m.NumIXPs())
	}
	var linx IXP
	for _, ix := range m.IXPs() {
		if ix.Name == "LINX LON1" {
			linx = ix
		}
	}
	if linx.ID == 0 {
		t.Fatal("LINX not found")
	}
	if len(linx.Members) != 4 {
		t.Errorf("LINX members = %v, want 4 after merge", linx.Members)
	}
	if len(linx.Facilities) != 1 {
		t.Fatalf("LINX fabric facilities = %v", linx.Facilities)
	}
	// Route-server ASN lookup.
	got, ok := m.IXPByOperatedASN(8714)
	if !ok || got != linx.ID {
		t.Errorf("IXPByOperatedASN(8714) = %d, %v", got, ok)
	}
	if _, ok := m.IXPByOperatedASN(9999); ok {
		t.Error("unknown operated ASN resolved")
	}
}

func TestIndices(t *testing.T) {
	m := buildTestMap(t)
	// AS2 is in both facilities and both IXPs.
	if got := m.FacilitiesOf(2); len(got) != 2 {
		t.Errorf("FacilitiesOf(2) = %v", got)
	}
	if got := m.IXPsOf(2); len(got) != 2 {
		t.Errorf("IXPsOf(2) = %v", got)
	}
	if got := m.FacilitiesOf(99); got != nil {
		t.Errorf("FacilitiesOf(99) = %v", got)
	}

	lon, _ := geo.DefaultWorld().Resolve("London")
	if got := m.FacilitiesInCity(lon.ID); len(got) != 1 {
		t.Errorf("FacilitiesInCity(London) = %v", got)
	}
	if got := m.IXPsInCity(lon.ID); len(got) != 1 {
		t.Errorf("IXPsInCity(London) = %v", got)
	}

	theID, _ := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})
	if got := m.IXPsAtFacility(theID); len(got) != 1 {
		t.Errorf("IXPsAtFacility = %v", got)
	}
}

func TestCommonQueries(t *testing.T) {
	m := buildTestMap(t)
	theID, _ := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})
	am7ID, _ := m.FacilityByAddress(Address{Postcode: "1101 AE", Country: "NL"})

	common := m.CommonFacilities(1, 2)
	if len(common) != 1 || common[0] != theID {
		t.Errorf("CommonFacilities(1,2) = %v, want [%d]", common, theID)
	}
	if got := m.CommonFacilities(1, 5); len(got) != 0 {
		t.Errorf("CommonFacilities(1,5) = %v", got)
	}
	if got := m.CommonFacilities(2, 5); len(got) != 1 || got[0] != am7ID {
		t.Errorf("CommonFacilities(2,5) = %v", got)
	}
	if got := m.CommonIXPs(2, 5); len(got) != 1 {
		t.Errorf("CommonIXPs(2,5) = %v", got)
	}
	if !m.AtFacility(1, theID) || m.AtFacility(5, theID) {
		t.Error("AtFacility wrong")
	}
}

func TestMembersAt(t *testing.T) {
	m := buildTestMap(t)
	theID, _ := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})
	lon, _ := geo.DefaultWorld().Resolve("London")

	if got := m.MembersAt(FacilityPoP(theID)); len(got) != 4 {
		t.Errorf("MembersAt(facility) = %v", got)
	}
	if got := m.MembersAt(CityPoP(lon.ID)); len(got) != 4 {
		t.Errorf("MembersAt(city London) = %v", got)
	}
	var amsix IXPID
	for _, ix := range m.IXPs() {
		if ix.Name == "AMS-IX" {
			amsix = ix.ID
		}
	}
	if got := m.MembersAt(IXPPoP(amsix)); len(got) != 3 {
		t.Errorf("MembersAt(AMS-IX) = %v", got)
	}
	if got := m.MembersAt(PoP{}); got != nil {
		t.Errorf("MembersAt(invalid) = %v", got)
	}
}

func TestCityOf(t *testing.T) {
	m := buildTestMap(t)
	world := geo.DefaultWorld()
	lon, _ := world.Resolve("London")
	ams, _ := world.Resolve("Amsterdam")
	theID, _ := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})

	if got := m.CityOf(FacilityPoP(theID)); got != lon.ID {
		t.Errorf("CityOf(facility) = %d", got)
	}
	if got := m.CityOf(CityPoP(ams.ID)); got != ams.ID {
		t.Errorf("CityOf(city) = %d", got)
	}
	var amsix IXPID
	for _, ix := range m.IXPs() {
		if ix.Name == "AMS-IX" {
			amsix = ix.ID
		}
	}
	if got := m.CityOf(IXPPoP(amsix)); got != ams.ID {
		t.Errorf("CityOf(ixp) = %d", got)
	}
	if got := m.CityOf(PoP{}); got != geo.NoCity {
		t.Errorf("CityOf(invalid) = %d", got)
	}
}

func TestTrackable(t *testing.T) {
	m := buildTestMap(t)
	theID, _ := m.FacilityByAddress(Address{Postcode: "E14 2AA", Country: "GB"})

	all := func(bgp.ASN) bool { return true }
	none := func(bgp.ASN) bool { return false }

	ok, n := m.Trackable(theID, all)
	if ok || n != 4 { // 4 members < MinTrackableMembers
		t.Errorf("Trackable(all) = %v, %d", ok, n)
	}
	ok, n = m.Trackable(theID, none)
	if ok || n != 0 {
		t.Errorf("Trackable(none) = %v, %d", ok, n)
	}
	if ok, _ := m.Trackable(999, all); ok {
		t.Error("Trackable(bogus id) = true")
	}
}

func TestTrackableThreshold(t *testing.T) {
	b := NewBuilder(geo.DefaultWorld())
	members := make([]bgp.ASN, 10)
	for i := range members {
		members[i] = bgp.ASN(i + 1)
	}
	b.AddFacility(FacilityRecord{
		Source: "peeringdb", Name: "Big Facility",
		Addr: Address{Postcode: "10115", Country: "DE"}, CityHint: "Berlin",
		Members: members,
	})
	m := b.Build()
	fid, _ := m.FacilityByAddress(Address{Postcode: "10115", Country: "DE"})

	coverN := func(n int) func(bgp.ASN) bool {
		return func(a bgp.ASN) bool { return int(a) <= n }
	}
	if ok, _ := m.Trackable(fid, coverN(5)); ok {
		t.Error("5 covered members should not be trackable")
	}
	if ok, _ := m.Trackable(fid, coverN(6)); !ok {
		t.Error("6 covered members should be trackable")
	}
}

func TestPoPBasics(t *testing.T) {
	p := FacilityPoP(7)
	if !p.IsValid() || p.String() != "facility:7" {
		t.Errorf("PoP = %v valid=%v", p, p.IsValid())
	}
	if (PoP{}).IsValid() {
		t.Error("zero PoP should be invalid")
	}
	if CityPoP(0).IsValid() {
		t.Error("zero-ID PoP should be invalid")
	}
	if PoPCity.String() != "city" || PoPFacility.String() != "facility" || PoPIXP.String() != "ixp" || PoPInvalid.String() != "invalid" {
		t.Error("kind names wrong")
	}
	// PoPs must be usable as map keys.
	set := map[PoP]bool{CityPoP(1): true, FacilityPoP(1): true, IXPPoP(1): true}
	if len(set) != 3 {
		t.Error("PoP kinds collide as map keys")
	}
}

func TestBuildDeterminism(t *testing.T) {
	m1 := buildTestMap(t)
	m2 := buildTestMap(t)
	if m1.NumFacilities() != m2.NumFacilities() || m1.NumIXPs() != m2.NumIXPs() {
		t.Fatal("non-deterministic build")
	}
	for i := range m1.Facilities() {
		if m1.Facilities()[i].Name != m2.Facilities()[i].Name {
			t.Fatal("facility order differs across builds")
		}
	}
	for i := range m1.IXPs() {
		if m1.IXPs()[i].Name != m2.IXPs()[i].Name {
			t.Fatal("ixp order differs across builds")
		}
	}
}

func TestAddressString(t *testing.T) {
	a := Address{Street: "Coriander Ave", Postcode: "E14 2AA", Country: "GB"}
	if a.String() == "" || a.Key() != "E14 2AA/GB" {
		t.Errorf("Address rendering wrong: %q %q", a.String(), a.Key())
	}
}
