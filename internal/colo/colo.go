// Package colo models the high-resolution colocation map of Section 3.3:
// which ASes are present in which colocation facilities, which ASes are
// members of which IXPs, and which facilities host parts of which IXP
// switching fabrics. The map is assembled by merging several imperfect data
// sources (PeeringDB-like, DataCenterMap-like, operator websites): facility
// records are unified by building-level address (postcode + country), IXP
// records by website URL and city, exactly as the paper describes, and the
// member lists of unified records are merged to maximize completeness.
//
// The map answers the queries Kepler's signal-investigation module needs:
// common facilities/IXPs of an AS pair, members of a PoP, facilities of an
// IXP fabric, and per-facility trackability (Section 5.2).
package colo

import (
	"fmt"
	"net/netip"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/geo"
)

// FacilityID identifies a facility in a Map. The zero value is invalid.
type FacilityID uint32

// IXPID identifies an IXP in a Map. The zero value is invalid.
type IXPID uint32

// Address is a building-level postal address. Postcode+Country is the
// merge key for facility records across data sources.
type Address struct {
	Street   string
	Postcode string
	Country  string // ISO 3166-1 alpha-2
}

// Key returns the cross-source facility merge key.
func (a Address) Key() string { return a.Postcode + "/" + a.Country }

// String renders the address single-line.
func (a Address) String() string {
	return fmt.Sprintf("%s, %s %s", a.Street, a.Postcode, a.Country)
}

// Facility is one colocation facility in the merged map.
type Facility struct {
	ID       FacilityID
	Name     string
	AKA      []string // name variants from other sources
	Operator string
	Addr     Address
	City     geo.CityID
	Coord    geo.Coord
	Members  []bgp.ASN // ASes with presence, sorted ascending
	Sources  []string  // data sources that contributed
}

// IXP is one internet exchange point in the merged map.
type IXP struct {
	ID         IXPID
	Name       string
	AKA        []string // name variants from other sources
	URL        string
	City       geo.CityID
	ASNs       []bgp.ASN      // IXP-operated ASNs (route servers, mgmt)
	LANs       []netip.Prefix // peering LAN prefixes
	Members    []bgp.ASN      // member ASes, sorted ascending
	Facilities []FacilityID   // facilities hosting switch fabric
	Sources    []string
}

// PoPKind distinguishes the granularities a PoP reference can take; "PoP"
// in the paper means any of city, facility or IXP.
type PoPKind uint8

// PoP kinds.
const (
	PoPInvalid PoPKind = iota
	PoPCity
	PoPFacility
	PoPIXP
)

// String names the kind.
func (k PoPKind) String() string {
	switch k {
	case PoPCity:
		return "city"
	case PoPFacility:
		return "facility"
	case PoPIXP:
		return "ixp"
	default:
		return "invalid"
	}
}

// PoP is a tagged reference to a city, facility or IXP. PoPs are comparable
// and therefore usable as map keys.
type PoP struct {
	Kind PoPKind
	ID   uint32
}

// CityPoP wraps a city as a PoP.
func CityPoP(id geo.CityID) PoP { return PoP{Kind: PoPCity, ID: uint32(id)} }

// FacilityPoP wraps a facility as a PoP.
func FacilityPoP(id FacilityID) PoP { return PoP{Kind: PoPFacility, ID: uint32(id)} }

// IXPPoP wraps an IXP as a PoP.
func IXPPoP(id IXPID) PoP { return PoP{Kind: PoPIXP, ID: uint32(id)} }

// IsValid reports whether the PoP references anything.
func (p PoP) IsValid() bool { return p.Kind != PoPInvalid && p.ID != 0 }

// String renders e.g. "facility:42".
func (p PoP) String() string { return fmt.Sprintf("%s:%d", p.Kind, p.ID) }

// Map is the merged colocation map.
type Map struct {
	facilities []Facility // index = FacilityID-1
	ixps       []IXP      // index = IXPID-1

	facByASN  map[bgp.ASN][]FacilityID
	ixpByASN  map[bgp.ASN][]IXPID
	facByCity map[geo.CityID][]FacilityID
	ixpByCity map[geo.CityID][]IXPID
	ixpAtFac  map[FacilityID][]IXPID
	facKey    map[string]FacilityID // address key -> facility
	ixpByASN2 map[bgp.ASN]IXPID     // IXP-operated ASN -> IXP
}

// NumFacilities returns the facility count.
func (m *Map) NumFacilities() int { return len(m.facilities) }

// NumIXPs returns the IXP count.
func (m *Map) NumIXPs() int { return len(m.ixps) }

// Facility returns the facility by ID.
func (m *Map) Facility(id FacilityID) (Facility, bool) {
	if id == 0 || int(id) > len(m.facilities) {
		return Facility{}, false
	}
	return m.facilities[id-1], true
}

// IXP returns the IXP by ID.
func (m *Map) IXP(id IXPID) (IXP, bool) {
	if id == 0 || int(id) > len(m.ixps) {
		return IXP{}, false
	}
	return m.ixps[id-1], true
}

// Facilities returns all facilities in ID order (shared slice; do not
// modify).
func (m *Map) Facilities() []Facility { return m.facilities }

// IXPs returns all IXPs in ID order (shared slice; do not modify).
func (m *Map) IXPs() []IXP { return m.ixps }

// FacilitiesOf returns the facilities where the AS has presence.
func (m *Map) FacilitiesOf(asn bgp.ASN) []FacilityID { return m.facByASN[asn] }

// IXPsOf returns the IXPs the AS is a member of.
func (m *Map) IXPsOf(asn bgp.ASN) []IXPID { return m.ixpByASN[asn] }

// FacilitiesInCity returns the facilities located in the city.
func (m *Map) FacilitiesInCity(city geo.CityID) []FacilityID { return m.facByCity[city] }

// IXPsInCity returns the IXPs located in the city.
func (m *Map) IXPsInCity(city geo.CityID) []IXPID { return m.ixpByCity[city] }

// IXPsAtFacility returns the IXPs with fabric presence in the facility.
func (m *Map) IXPsAtFacility(f FacilityID) []IXPID { return m.ixpAtFac[f] }

// IXPByOperatedASN resolves an IXP-operated ASN (e.g. a route server ASN)
// to its IXP.
func (m *Map) IXPByOperatedASN(asn bgp.ASN) (IXPID, bool) {
	id, ok := m.ixpByASN2[asn]
	return id, ok
}

// FacilityByAddress resolves a building address to a facility.
func (m *Map) FacilityByAddress(a Address) (FacilityID, bool) {
	id, ok := m.facKey[a.Key()]
	return id, ok
}

// AtFacility reports whether the AS has presence in the facility.
func (m *Map) AtFacility(asn bgp.ASN, f FacilityID) bool {
	return containsFac(m.facByASN[asn], f)
}

// AtIXP reports whether the AS is a member of the IXP.
func (m *Map) AtIXP(asn bgp.ASN, ix IXPID) bool {
	return containsIXP(m.ixpByASN[asn], ix)
}

// CommonFacilities returns the facilities where both ASes are present,
// sorted ascending.
func (m *Map) CommonFacilities(a, b bgp.ASN) []FacilityID {
	return intersectFac(m.facByASN[a], m.facByASN[b])
}

// CommonIXPs returns the IXPs both ASes are members of, sorted ascending.
func (m *Map) CommonIXPs(a, b bgp.ASN) []IXPID {
	return intersectIXP(m.ixpByASN[a], m.ixpByASN[b])
}

// MembersAt returns the members of a PoP: facility tenants, IXP members, or
// the union of facility tenants for a city.
func (m *Map) MembersAt(p PoP) []bgp.ASN {
	switch p.Kind {
	case PoPFacility:
		if f, ok := m.Facility(FacilityID(p.ID)); ok {
			return f.Members
		}
	case PoPIXP:
		if ix, ok := m.IXP(IXPID(p.ID)); ok {
			return ix.Members
		}
	case PoPCity:
		set := make(map[bgp.ASN]bool)
		for _, fid := range m.facByCity[geo.CityID(p.ID)] {
			f := m.facilities[fid-1]
			for _, a := range f.Members {
				set[a] = true
			}
		}
		out := make([]bgp.ASN, 0, len(set))
		for a := range set {
			out = append(out, a)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	return nil
}

// CityOf returns the city of a facility- or IXP-PoP, or the city itself.
func (m *Map) CityOf(p PoP) geo.CityID {
	switch p.Kind {
	case PoPCity:
		return geo.CityID(p.ID)
	case PoPFacility:
		if f, ok := m.Facility(FacilityID(p.ID)); ok {
			return f.City
		}
	case PoPIXP:
		if ix, ok := m.IXP(IXPID(p.ID)); ok {
			return ix.City
		}
	}
	return geo.NoCity
}

// MinTrackableMembers is the Section 5.2 threshold: a facility is trackable
// when at least this many of its members can be located through
// communities (3 potential near-ends and 3 potential far-ends).
const MinTrackableMembers = 6

// Trackable reports whether the facility is trackable given the set of
// ASes whose interconnections the community dictionary can locate, and
// returns the number of covered members.
func (m *Map) Trackable(f FacilityID, covered func(bgp.ASN) bool) (bool, int) {
	fac, ok := m.Facility(f)
	if !ok {
		return false, 0
	}
	n := 0
	for _, a := range fac.Members {
		if covered(a) {
			n++
		}
	}
	return n >= MinTrackableMembers, n
}

func containsFac(list []FacilityID, f FacilityID) bool {
	for _, x := range list {
		if x == f {
			return true
		}
	}
	return false
}

func containsIXP(list []IXPID, ix IXPID) bool {
	for _, x := range list {
		if x == ix {
			return true
		}
	}
	return false
}

func intersectFac(a, b []FacilityID) []FacilityID {
	var out []FacilityID
	for _, x := range a {
		if containsFac(b, x) {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func intersectIXP(a, b []IXPID) []IXPID {
	var out []IXPID
	for _, x := range a {
		if containsIXP(b, x) {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
