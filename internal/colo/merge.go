package colo

import (
	"net/netip"
	"sort"
	"strings"

	"kepler/internal/bgp"
	"kepler/internal/geo"
)

// FacilityRecord is one facility entry as published by a single data source
// (PeeringDB, DataCenterMap, an operator website, ...). Records from
// different sources describing the same building are unified by
// postcode+country.
type FacilityRecord struct {
	Source   string
	Name     string
	Operator string
	Addr     Address
	CityHint string // free-form city identifier, geocoded during the merge
	Members  []bgp.ASN
}

// IXPRecord is one IXP entry from a single data source. Records are
// unified by URL when present, else by name+city.
type IXPRecord struct {
	Source        string
	Name          string
	URL           string
	CityHint      string
	ASNs          []bgp.ASN      // IXP-operated ASNs (route servers etc.)
	LANs          []netip.Prefix // peering LAN prefixes
	Members       []bgp.ASN
	FacilityAddrs []Address // buildings hosting fabric, by address
}

// Builder accumulates records from all sources and produces a merged Map.
type Builder struct {
	world *geo.World
	facs  []FacilityRecord
	ixps  []IXPRecord
}

// NewBuilder returns a Builder geocoding city hints against world.
func NewBuilder(world *geo.World) *Builder {
	return &Builder{world: world}
}

// AddFacility queues one facility record.
func (b *Builder) AddFacility(r FacilityRecord) { b.facs = append(b.facs, r) }

// AddIXP queues one IXP record.
func (b *Builder) AddIXP(r IXPRecord) { b.ixps = append(b.ixps, r) }

// Build merges all queued records into a Map. The merge is deterministic:
// facilities sort by address key, IXPs by merge key, and member lists are
// deduplicated and sorted.
func (b *Builder) Build() *Map {
	m := &Map{
		facByASN:  make(map[bgp.ASN][]FacilityID),
		ixpByASN:  make(map[bgp.ASN][]IXPID),
		facByCity: make(map[geo.CityID][]FacilityID),
		ixpByCity: make(map[geo.CityID][]IXPID),
		ixpAtFac:  make(map[FacilityID][]IXPID),
		facKey:    make(map[string]FacilityID),
		ixpByASN2: make(map[bgp.ASN]IXPID),
	}

	// --- merge facilities by address key ---
	facGroups := make(map[string][]FacilityRecord)
	for _, r := range b.facs {
		facGroups[r.Addr.Key()] = append(facGroups[r.Addr.Key()], r)
	}
	facKeys := make([]string, 0, len(facGroups))
	for k := range facGroups {
		facKeys = append(facKeys, k)
	}
	sort.Strings(facKeys)

	for _, key := range facKeys {
		group := facGroups[key]
		f := Facility{Addr: group[0].Addr}
		memberSet := make(map[bgp.ASN]bool)
		srcSet := make(map[string]bool)
		nameSet := make(map[string]bool)
		for _, r := range group {
			// Longest name wins: sources abbreviate differently and the
			// longest form is usually the most descriptive. All variants
			// are kept as AKA names for entity recognition.
			if r.Name != "" {
				nameSet[r.Name] = true
			}
			if len(r.Name) > len(f.Name) {
				f.Name = r.Name
			}
			if f.Operator == "" {
				f.Operator = r.Operator
			}
			if f.Addr.Street == "" {
				f.Addr.Street = r.Addr.Street
			}
			if f.City == geo.NoCity && r.CityHint != "" {
				if c, ok := b.world.Resolve(r.CityHint); ok {
					f.City = c.ID
					f.Coord = c.Coord
				}
			}
			for _, a := range r.Members {
				memberSet[a] = true
			}
			srcSet[r.Source] = true
		}
		f.Members = sortedASNs(memberSet)
		f.Sources = sortedStrings(srcSet)
		delete(nameSet, f.Name)
		f.AKA = sortedStrings(nameSet)
		f.ID = FacilityID(len(m.facilities) + 1)
		m.facilities = append(m.facilities, f)
		m.facKey[key] = f.ID
	}

	// --- merge IXPs by URL (fallback: name+city) ---
	ixpGroups := make(map[string][]IXPRecord)
	ixpKeyOf := func(r IXPRecord) string {
		if r.URL != "" {
			return "url:" + strings.ToLower(r.URL)
		}
		return "nc:" + strings.ToLower(r.Name) + "/" + strings.ToLower(r.CityHint)
	}
	for _, r := range b.ixps {
		k := ixpKeyOf(r)
		ixpGroups[k] = append(ixpGroups[k], r)
	}
	ixpKeys := make([]string, 0, len(ixpGroups))
	for k := range ixpGroups {
		ixpKeys = append(ixpKeys, k)
	}
	sort.Strings(ixpKeys)

	for _, key := range ixpKeys {
		group := ixpGroups[key]
		ix := IXP{}
		memberSet := make(map[bgp.ASN]bool)
		asnSet := make(map[bgp.ASN]bool)
		lanSet := make(map[string]netip.Prefix)
		facSet := make(map[FacilityID]bool)
		srcSet := make(map[string]bool)
		nameSet := make(map[string]bool)
		for _, r := range group {
			if r.Name != "" {
				nameSet[r.Name] = true
			}
			if len(r.Name) > len(ix.Name) {
				ix.Name = r.Name
			}
			if ix.URL == "" {
				ix.URL = r.URL
			}
			if ix.City == geo.NoCity && r.CityHint != "" {
				if c, ok := b.world.Resolve(r.CityHint); ok {
					ix.City = c.ID
				}
			}
			for _, a := range r.Members {
				memberSet[a] = true
			}
			for _, a := range r.ASNs {
				asnSet[a] = true
			}
			for _, p := range r.LANs {
				lanSet[p.String()] = p
			}
			for _, addr := range r.FacilityAddrs {
				if fid, ok := m.facKey[addr.Key()]; ok {
					facSet[fid] = true
				}
			}
			srcSet[r.Source] = true
		}
		ix.Members = sortedASNs(memberSet)
		ix.ASNs = sortedASNs(asnSet)
		ix.Sources = sortedStrings(srcSet)
		delete(nameSet, ix.Name)
		ix.AKA = sortedStrings(nameSet)
		lanKeys := make([]string, 0, len(lanSet))
		for k := range lanSet {
			lanKeys = append(lanKeys, k)
		}
		sort.Strings(lanKeys)
		for _, k := range lanKeys {
			ix.LANs = append(ix.LANs, lanSet[k])
		}
		facIDs := make([]FacilityID, 0, len(facSet))
		for f := range facSet {
			facIDs = append(facIDs, f)
		}
		sort.Slice(facIDs, func(i, j int) bool { return facIDs[i] < facIDs[j] })
		ix.Facilities = facIDs

		ix.ID = IXPID(len(m.ixps) + 1)
		m.ixps = append(m.ixps, ix)
	}

	// --- build indices ---
	for i := range m.facilities {
		f := &m.facilities[i]
		for _, a := range f.Members {
			m.facByASN[a] = append(m.facByASN[a], f.ID)
		}
		if f.City != geo.NoCity {
			m.facByCity[f.City] = append(m.facByCity[f.City], f.ID)
		}
	}
	for i := range m.ixps {
		ix := &m.ixps[i]
		for _, a := range ix.Members {
			m.ixpByASN[a] = append(m.ixpByASN[a], ix.ID)
		}
		for _, a := range ix.ASNs {
			m.ixpByASN2[a] = ix.ID
		}
		if ix.City != geo.NoCity {
			m.ixpByCity[ix.City] = append(m.ixpByCity[ix.City], ix.ID)
		}
		for _, f := range ix.Facilities {
			m.ixpAtFac[f] = append(m.ixpAtFac[f], ix.ID)
		}
	}
	return m
}

func sortedASNs(set map[bgp.ASN]bool) []bgp.ASN {
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
