package as2org

import (
	"testing"

	"kepler/internal/bgp"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Bell Canada Inc.":         "bell canada",
		"Bell Canada":              "bell canada",
		"BELL CANADA LLC":          "bell canada",
		"Level 3 Communications":   "level 3 communications",
		"Hurricane Electric, LLC":  "hurricane electric",
		"Deutsche Telekom AG":      "deutsche telekom",
		"Foo Networks Ltd":         "foo networks",
		"Telia Company AB":         "telia",
		"":                         "",
		"GmbH":                     "gmbh", // lone suffix is kept: nothing else to match on
		"NTT Communications Corp.": "ntt communications",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildSiblings(t *testing.T) {
	tbl := Build([]Registration{
		{ASN: 577, OrgName: "Bell Canada Inc.", Country: "CA"},
		{ASN: 6539, OrgName: "Bell Canada", Country: "CA"},
		{ASN: 36522, OrgName: "BELL CANADA LLC", Country: "CA"},
		{ASN: 3356, OrgName: "Level 3 Communications", Country: "US"},
		{ASN: 3549, OrgName: "Level 3 Communications, LLC", Country: "US"},
		{ASN: 6939, OrgName: "Hurricane Electric", Country: "US"},
	})

	if tbl.NumOrgs() != 3 {
		t.Fatalf("NumOrgs = %d, want 3", tbl.NumOrgs())
	}
	if !tbl.SameOrg(577, 6539) || !tbl.SameOrg(6539, 36522) {
		t.Error("Bell Canada siblings not grouped")
	}
	if !tbl.SameOrg(3356, 3549) {
		t.Error("Level 3 siblings not grouped")
	}
	if tbl.SameOrg(3356, 6939) {
		t.Error("unrelated ASes grouped")
	}
	if tbl.SameOrg(1, 2) {
		t.Error("unknown ASes must not be siblings")
	}
	if tbl.SameOrg(3356, 3356) != true {
		t.Error("an AS is its own sibling-set member")
	}

	sib := tbl.Siblings(577)
	if len(sib) != 2 || sib[0] != 6539 || sib[1] != 36522 {
		t.Errorf("Siblings(577) = %v", sib)
	}
	if got := tbl.Siblings(9999); got != nil {
		t.Errorf("Siblings(unknown) = %v", got)
	}
}

func TestOrgLookup(t *testing.T) {
	tbl := Build([]Registration{
		{ASN: 1, OrgName: "Alpha Networks Ltd", Country: "GB"},
		{ASN: 2, OrgName: "Alpha Networks", Country: "GB"},
	})
	id := tbl.OrgOf(1)
	if id == 0 {
		t.Fatal("OrgOf(1) = 0")
	}
	org, ok := tbl.Org(id)
	if !ok || org.Name != "Alpha Networks Ltd" {
		t.Errorf("Org = %+v (longest name should be representative)", org)
	}
	if org.Country != "GB" || len(org.ASNs) != 2 {
		t.Errorf("Org = %+v", org)
	}
	if _, ok := tbl.Org(0); ok {
		t.Error("Org(0) should fail")
	}
	if _, ok := tbl.Org(99); ok {
		t.Error("Org(out of range) should fail")
	}
	if tbl.OrgOf(42) != 0 {
		t.Error("OrgOf(unknown) should be 0")
	}
}

func TestUnnamedRegistrationsStaySeparate(t *testing.T) {
	tbl := Build([]Registration{
		{ASN: 10, OrgName: ""},
		{ASN: 11, OrgName: ""},
	})
	if tbl.SameOrg(10, 11) {
		t.Error("unnamed registrations merged")
	}
	if tbl.NumOrgs() != 2 {
		t.Errorf("NumOrgs = %d, want 2", tbl.NumOrgs())
	}
}

func TestDistinctOrgs(t *testing.T) {
	tbl := Build([]Registration{
		{ASN: 1, OrgName: "Acme"},
		{ASN: 2, OrgName: "Acme Inc"},
		{ASN: 3, OrgName: "Zenith"},
	})
	if got := tbl.DistinctOrgs([]bgp.ASN{1, 2}); got != 1 {
		t.Errorf("DistinctOrgs(siblings) = %d, want 1", got)
	}
	if got := tbl.DistinctOrgs([]bgp.ASN{1, 2, 3}); got != 2 {
		t.Errorf("DistinctOrgs = %d, want 2", got)
	}
	// Unknown ASNs each count individually.
	if got := tbl.DistinctOrgs([]bgp.ASN{1, 100, 101}); got != 3 {
		t.Errorf("DistinctOrgs with unknowns = %d, want 3", got)
	}
	if got := tbl.DistinctOrgs(nil); got != 0 {
		t.Errorf("DistinctOrgs(nil) = %d", got)
	}
}

func TestBuildDeterminism(t *testing.T) {
	regs := []Registration{
		{ASN: 5, OrgName: "Echo"},
		{ASN: 4, OrgName: "Delta"},
		{ASN: 3, OrgName: "Charlie"},
		{ASN: 2, OrgName: "Bravo"},
		{ASN: 1, OrgName: "Alpha"},
	}
	t1 := Build(regs)
	// Reversed input order.
	rev := make([]Registration, len(regs))
	for i, r := range regs {
		rev[len(regs)-1-i] = r
	}
	t2 := Build(rev)
	for asn := bgp.ASN(1); asn <= 5; asn++ {
		o1, _ := t1.Org(t1.OrgOf(asn))
		o2, _ := t2.Org(t2.OrgOf(asn))
		if o1.Name != o2.Name {
			t.Errorf("AS%d org differs across input orders: %q vs %q", asn, o1.Name, o2.Name)
		}
	}
}
