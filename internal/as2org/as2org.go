// Package as2org maps autonomous systems to the organizations operating
// them, following the approach of Cai et al. (IMC 2010) that the paper uses
// to combine multiple AS-level outage signals into operator-level signals
// (Section 4.3): WHOIS-style registration records are normalized — legal
// suffixes stripped, case folded — and ASNs whose normalized organization
// names coincide become siblings.
package as2org

import (
	"sort"
	"strings"

	"kepler/internal/bgp"
)

// Registration is one WHOIS-style AS registration record.
type Registration struct {
	ASN     bgp.ASN
	OrgName string
	Country string
}

// OrgID identifies an organization within a Table. The zero value means
// "unknown organization".
type OrgID uint32

// Org is one inferred organization.
type Org struct {
	ID      OrgID
	Name    string // representative (longest) registered name
	Country string
	ASNs    []bgp.ASN // sorted ascending
}

// Table is the AS-to-organization mapping.
type Table struct {
	orgs  []Org
	byASN map[bgp.ASN]OrgID
}

// legalSuffixes are stripped from org names before comparison; different
// registries record the same operator with different legal forms.
var legalSuffixes = []string{
	"inc", "incorporated", "llc", "ltd", "limited", "gmbh", "bv", "b.v",
	"sa", "s.a", "ag", "plc", "corp", "corporation", "co", "company",
	"sarl", "srl", "oy", "ab", "as", "nv", "n.v", "pty", "kk",
}

// Normalize canonicalizes an organization name for sibling matching.
func Normalize(name string) string {
	s := strings.ToLower(name)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == ' ':
			b.WriteRune(r)
		case r == '.', r == ',', r == '-', r == '_', r == '/':
			b.WriteRune(' ')
		}
	}
	fields := strings.Fields(b.String())
	// Drop trailing legal-form tokens (possibly several: "Foo Networks Ltd Inc").
	for len(fields) > 1 {
		last := fields[len(fields)-1]
		stripped := false
		for _, suf := range legalSuffixes {
			if last == suf {
				fields = fields[:len(fields)-1]
				stripped = true
				break
			}
		}
		if !stripped {
			break
		}
	}
	return strings.Join(fields, " ")
}

// Build groups registrations into organizations. Registrations with empty
// or unmatchable names become singleton organizations. The result is
// deterministic: organizations sort by normalized name.
func Build(regs []Registration) *Table {
	type group struct {
		name    string // representative
		country string
		asns    map[bgp.ASN]bool
	}
	groups := make(map[string]*group)
	for _, r := range regs {
		key := Normalize(r.OrgName)
		if key == "" {
			// Unnamed: isolate per ASN so nothing accidentally merges.
			key = "\x00asn:" + r.ASN.String()
		}
		g := groups[key]
		if g == nil {
			g = &group{asns: make(map[bgp.ASN]bool)}
			groups[key] = g
		}
		if len(r.OrgName) > len(g.name) {
			g.name = r.OrgName
		}
		if g.country == "" {
			g.country = r.Country
		}
		g.asns[r.ASN] = true
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	t := &Table{byASN: make(map[bgp.ASN]OrgID)}
	for _, k := range keys {
		g := groups[k]
		asns := make([]bgp.ASN, 0, len(g.asns))
		for a := range g.asns {
			asns = append(asns, a)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		org := Org{
			ID:      OrgID(len(t.orgs) + 1),
			Name:    g.name,
			Country: g.country,
			ASNs:    asns,
		}
		t.orgs = append(t.orgs, org)
		for _, a := range asns {
			t.byASN[a] = org.ID
		}
	}
	return t
}

// NumOrgs returns the organization count.
func (t *Table) NumOrgs() int { return len(t.orgs) }

// Org returns the organization by ID.
func (t *Table) Org(id OrgID) (Org, bool) {
	if id == 0 || int(id) > len(t.orgs) {
		return Org{}, false
	}
	return t.orgs[id-1], true
}

// OrgOf returns the organization operating the ASN, or 0 if unknown.
func (t *Table) OrgOf(asn bgp.ASN) OrgID { return t.byASN[asn] }

// SameOrg reports whether two ASes are siblings (same known organization).
// Unknown ASes are never siblings of anything.
func (t *Table) SameOrg(a, b bgp.ASN) bool {
	oa := t.byASN[a]
	return oa != 0 && oa == t.byASN[b]
}

// Siblings returns the other ASNs operated by asn's organization.
func (t *Table) Siblings(asn bgp.ASN) []bgp.ASN {
	id := t.byASN[asn]
	if id == 0 {
		return nil
	}
	org := t.orgs[id-1]
	out := make([]bgp.ASN, 0, len(org.ASNs)-1)
	for _, a := range org.ASNs {
		if a != asn {
			out = append(out, a)
		}
	}
	return out
}

// DistinctOrgs counts the distinct known organizations among the ASNs;
// ASNs with no known org each count as their own organization, which is the
// conservative reading Kepler's PoP-level classifier needs ("at least three
// different non-sibling ASes").
func (t *Table) DistinctOrgs(asns []bgp.ASN) int {
	seen := make(map[OrgID]bool)
	unknown := 0
	for _, a := range asns {
		if id := t.byASN[a]; id != 0 {
			seen[id] = true
		} else {
			unknown++
		}
	}
	return len(seen) + unknown
}
