package probe

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

var t0 = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)

// recordingBackend confirms everything and logs execution order.
type recordingBackend struct {
	mu    sync.Mutex
	order []colo.PoP
	delay time.Duration
}

func (b *recordingBackend) Probe(pop colo.PoP, _ time.Time) (bool, bool) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	b.order = append(b.order, pop)
	b.mu.Unlock()
	return true, true
}

func req(id uint64, at time.Time, cands ...colo.PoP) core.ProbeRequest {
	return core.ProbeRequest{ID: id, At: at, Candidates: cands}
}

func TestSchedulerCompletesCampaigns(t *testing.T) {
	b := &recordingBackend{}
	s := NewScheduler(b, Config{Workers: 3})
	defer s.Close()

	s.Submit(req(1, t0, colo.FacilityPoP(1), colo.IXPPoP(2)))
	s.Submit(req(2, t0, colo.CityPoP(3)))

	vs := s.Collect(t0.Add(time.Minute))
	if len(vs) != 2 || vs[0].ID != 1 || vs[1].ID != 2 {
		t.Fatalf("verdicts = %+v, want ids 1,2", vs)
	}
	for _, v := range vs {
		for _, r := range v.Results {
			if !r.Confirmed || !r.HasData {
				t.Fatalf("result %+v, want confirmed", r)
			}
		}
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
}

// TestSchedulerPriorityOrder pins the dequeue order: facility before IXP
// before city, newest signal first within a kind.
func TestSchedulerPriorityOrder(t *testing.T) {
	// One worker: the execution order is exactly the dequeue order. The
	// backend delay keeps the worker inside its first probe until every
	// campaign is queued.
	b := &recordingBackend{delay: 20 * time.Millisecond}
	s := NewScheduler(b, Config{Workers: 1})
	defer s.Close()

	// Submit in scrambled order while the worker contends for the first
	// task; to make the test deterministic, pre-load everything before the
	// worker can drain by submitting under a single collect epoch.
	s.Submit(req(1, t0, colo.CityPoP(10)))
	s.Submit(req(2, t0.Add(time.Minute), colo.IXPPoP(20)))
	s.Submit(req(3, t0, colo.FacilityPoP(30)))
	s.Submit(req(4, t0.Add(time.Minute), colo.FacilityPoP(40)))
	s.Collect(t0.Add(2 * time.Minute))

	b.mu.Lock()
	order := append([]colo.PoP(nil), b.order...)
	b.mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("executed %d probes, want 4", len(order))
	}
	// The worker may already be executing the first submitted task (city)
	// before the rest arrive; everything after the in-flight probe must
	// follow strict priority order.
	rest := order
	if rest[0] == colo.CityPoP(10) {
		rest = rest[1:]
	}
	for i := 1; i < len(rest); i++ {
		ri, rj := rankOf(rest[i-1].Kind), rankOf(rest[i].Kind)
		if ri > rj {
			t.Fatalf("priority inversion in execution order %v", order)
		}
		if ri == rj && rest[i-1].Kind == colo.PoPFacility {
			// facility:40 (newer signal) must precede facility:30.
			if rest[i-1] != colo.FacilityPoP(40) || rest[i] != colo.FacilityPoP(30) {
				t.Fatalf("recency inversion in execution order %v", order)
			}
		}
	}
}

// TestSchedulerDedup pins that two campaigns probing one target within the
// same bin share a single execution.
func TestSchedulerDedup(t *testing.T) {
	b := &recordingBackend{delay: 5 * time.Millisecond}
	m := &metrics.ProbeStats{}
	s := NewScheduler(b, Config{Workers: 2, Metrics: m})
	defer s.Close()

	target := colo.FacilityPoP(7)
	s.Submit(req(1, t0, target))
	s.Submit(req(2, t0, target))
	vs := s.Collect(t0.Add(time.Minute))
	if len(vs) != 2 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	b.mu.Lock()
	n := len(b.order)
	b.mu.Unlock()
	if n != 1 {
		t.Fatalf("executed %d probes for one deduplicable target", n)
	}
	if m.Deduped.Load() != 1 {
		t.Fatalf("deduped counter = %d", m.Deduped.Load())
	}
}

// TestSchedulerBudgetExhaustion is the dedicated budget scenario: with a
// 2-probe window, a 5-target burst executes exactly two measurements in
// priority order and completes the rest as no-data; after the window
// slides, capacity returns.
func TestSchedulerBudgetExhaustion(t *testing.T) {
	b := &recordingBackend{}
	m := &metrics.ProbeStats{}
	s := NewScheduler(b, Config{Workers: 1, Budget: 2, Window: time.Hour, Metrics: m})
	defer s.Close()

	s.Submit(req(1, t0,
		colo.FacilityPoP(1), colo.FacilityPoP(2), colo.IXPPoP(3), colo.CityPoP(4), colo.CityPoP(5)))
	vs := s.Collect(t0.Add(time.Minute))
	if len(vs) != 1 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	measured := 0
	for _, r := range vs[0].Results {
		if r.HasData {
			measured++
			if r.Target.Kind == colo.PoPCity {
				t.Fatalf("budget spent on a city probe before facilities: %+v", vs[0].Results)
			}
		}
	}
	if measured != 2 {
		t.Fatalf("measured %d targets under a 2-probe budget", measured)
	}
	if m.Denied.Load() != 3 {
		t.Fatalf("denied = %d, want 3", m.Denied.Load())
	}

	// Still inside the window: everything is denied.
	s.Submit(req(2, t0.Add(30*time.Minute), colo.FacilityPoP(9)))
	vs = s.Collect(t0.Add(31 * time.Minute))
	if len(vs) != 1 || vs[0].Results[0].HasData {
		t.Fatalf("expected denial inside the window, got %+v", vs)
	}

	// Past the window: the budget has slid free.
	s.Submit(req(3, t0.Add(2*time.Hour), colo.FacilityPoP(9)))
	vs = s.Collect(t0.Add(2*time.Hour + time.Minute))
	if len(vs) != 1 || !vs[0].Results[0].HasData || !vs[0].Results[0].Confirmed {
		t.Fatalf("expected measurement after the window slid, got %+v", vs)
	}
}

// TestSchedulerCooldownCache pins the verdict cache: a target probed again
// within the cooldown answers from cache without touching the backend, and
// re-measures once the cooldown lapses.
func TestSchedulerCooldownCache(t *testing.T) {
	b := &recordingBackend{}
	m := &metrics.ProbeStats{}
	s := NewScheduler(b, Config{Workers: 1, Cooldown: 10 * time.Minute, Metrics: m})
	defer s.Close()

	target := colo.FacilityPoP(5)
	s.Submit(req(1, t0, target))
	s.Collect(t0.Add(time.Minute))

	s.Submit(req(2, t0.Add(5*time.Minute), target))
	vs := s.Collect(t0.Add(6 * time.Minute))
	if len(vs) != 1 || !vs[0].Results[0].HasData {
		t.Fatalf("cached verdict missing: %+v", vs)
	}
	if m.CacheHits.Load() != 1 {
		t.Fatalf("cache hits = %d", m.CacheHits.Load())
	}
	if got := m.Executed.Load(); got != 1 {
		t.Fatalf("executed = %d, want 1 (second probe served from cache)", got)
	}

	s.Submit(req(3, t0.Add(30*time.Minute), target))
	s.Collect(t0.Add(31 * time.Minute))
	if got := m.Executed.Load(); got != 2 {
		t.Fatalf("executed = %d, want 2 after cooldown lapsed", got)
	}
}

// TestVerdictCacheLRU pins the eviction order of the cache itself.
func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	c.put(colo.FacilityPoP(1), cacheEntry{at: t0, hasData: true})
	c.put(colo.FacilityPoP(2), cacheEntry{at: t0, hasData: true})
	c.get(colo.FacilityPoP(1)) // 1 becomes most recent
	c.put(colo.FacilityPoP(3), cacheEntry{at: t0, hasData: true})
	if _, ok := c.get(colo.FacilityPoP(2)); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, id := range []colo.FacilityID{1, 3} {
		if _, ok := c.get(colo.FacilityPoP(id)); !ok {
			t.Fatalf("entry %d evicted wrongly", id)
		}
	}
}

// TestSchedulerAsyncCollect pins the non-blocking mode: Collect does not
// wait for a slow probe, which a later Collect then delivers.
func TestSchedulerAsyncCollect(t *testing.T) {
	block := make(chan struct{})
	b := &gateBackend{gate: block}
	s := NewScheduler(b, Config{Workers: 1, Async: true})
	defer s.Close()

	s.Submit(req(1, t0, colo.FacilityPoP(1)))
	if vs := s.Collect(t0.Add(time.Minute)); len(vs) != 0 {
		t.Fatalf("async Collect returned an incomplete campaign: %+v", vs)
	}
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if vs := s.Collect(t0.Add(2 * time.Minute)); len(vs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("verdict never arrived after unblocking")
		}
		time.Sleep(time.Millisecond)
	}
}

type gateBackend struct{ gate chan struct{} }

func (b *gateBackend) Probe(colo.PoP, time.Time) (bool, bool) {
	<-b.gate
	return true, true
}

// TestSchedulerCloseUnblocksCollect pins the shutdown path: closing the
// scheduler completes queued work as no-data and releases a deterministic
// Collect waiter instead of deadlocking.
func TestSchedulerCloseUnblocksCollect(t *testing.T) {
	block := make(chan struct{})
	b := &gateBackend{gate: block}
	s := NewScheduler(b, Config{Workers: 1})
	s.Submit(req(1, t0, colo.FacilityPoP(1), colo.FacilityPoP(2)))

	done := make(chan struct{})
	go func() {
		s.Collect(t0.Add(time.Minute))
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(block) // let the in-flight probe finish so Close can join workers
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Collect deadlocked across Close")
	}
}

// TestSchedulerConcurrentStress drives many campaigns through many workers
// under -race: verdicts must arrive complete, ordered and exactly once.
func TestSchedulerConcurrentStress(t *testing.T) {
	var executed atomic.Int64
	b := backendFunc(func(pop colo.PoP, at time.Time) (bool, bool) {
		executed.Add(1)
		return pop.ID%2 == 0, true
	})
	m := &metrics.ProbeStats{}
	s := NewScheduler(b, Config{Workers: 8, Cooldown: time.Minute, CacheSize: 32, Metrics: m})
	defer s.Close()

	seen := map[uint64]bool{}
	var id uint64
	for round := 0; round < 20; round++ {
		at := t0.Add(time.Duration(round) * time.Minute)
		for i := 0; i < 10; i++ {
			id++
			s.Submit(req(id, at,
				colo.FacilityPoP(colo.FacilityID(i%5+1)),
				colo.IXPPoP(colo.IXPID(i%3+1)),
				colo.CityPoP(1)))
		}
		vs := s.Collect(at.Add(time.Minute))
		last := uint64(0)
		for _, v := range vs {
			if v.ID <= last {
				t.Fatalf("verdicts unordered: %d after %d", v.ID, last)
			}
			last = v.ID
			if seen[v.ID] {
				t.Fatalf("verdict %d delivered twice", v.ID)
			}
			seen[v.ID] = true
			if len(v.Results) != 3 {
				t.Fatalf("verdict %d incomplete: %+v", v.ID, v.Results)
			}
		}
	}
	if len(seen) != int(id) {
		t.Fatalf("delivered %d of %d campaigns", len(seen), id)
	}
	if m.CacheHits.Load()+m.Deduped.Load() == 0 {
		t.Fatal("stress run never exercised dedup or the cache")
	}
}

type backendFunc func(colo.PoP, time.Time) (bool, bool)

func (f backendFunc) Probe(pop colo.PoP, at time.Time) (bool, bool) { return f(pop, at) }

// TestReplayBackend pins the replayed-archive backend semantics.
func TestReplayBackend(t *testing.T) {
	r := NewReplay(map[colo.PoP]Verdict{
		colo.FacilityPoP(1): {Confirmed: true, HasData: true},
		colo.FacilityPoP(2): {Confirmed: false, HasData: true},
	})
	if c, h := r.Probe(colo.FacilityPoP(1), t0); !c || !h {
		t.Fatal("recorded confirmation not replayed")
	}
	if c, h := r.Probe(colo.FacilityPoP(2), t0); c || !h {
		t.Fatal("recorded refutation not replayed")
	}
	if _, h := r.Probe(colo.FacilityPoP(9), t0); h {
		t.Fatal("unrecorded target answered with data")
	}
	if r.Queries() != 3 {
		t.Fatalf("queries = %d", r.Queries())
	}
}

// TestFaultBackendDeterministic pins that fault injection is a pure
// function of the probe identity: the same (target, at, seed) always takes
// the same loss decision, regardless of call order.
func TestFaultBackendDeterministic(t *testing.T) {
	inner := backendFunc(func(colo.PoP, time.Time) (bool, bool) { return true, true })
	f := &Fault{Inner: inner, LossRate: 0.5, Seed: 42}

	type key struct {
		id uint32
		at int64
	}
	first := map[key]bool{}
	for pass := 0; pass < 2; pass++ {
		lost := 0
		for i := uint32(1); i <= 40; i++ {
			at := t0.Add(time.Duration(i) * time.Minute)
			_, hasData := f.Probe(colo.FacilityPoP(colo.FacilityID(i)), at)
			k := key{i, at.Unix()}
			if pass == 0 {
				first[k] = hasData
				if !hasData {
					lost++
				}
			} else if first[k] != hasData {
				t.Fatalf("loss decision for %v changed between passes", k)
			}
		}
		if pass == 0 && (lost == 0 || lost == 40) {
			t.Fatalf("loss rate 0.5 lost %d of 40 probes", lost)
		}
	}
}
