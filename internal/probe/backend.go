package probe

import (
	"sync"
	"time"

	"kepler/internal/colo"
)

// Verdict is one scripted measurement outcome.
type Verdict struct {
	Confirmed bool
	HasData   bool
}

// Replay is the replayed-archive backend: it serves verdicts recorded from
// an earlier run (or scripted by a test) instead of measuring. Targets with
// no recorded verdict answer no-data, like a platform with no vantage
// toward them. Safe for concurrent use.
type Replay struct {
	mu       sync.Mutex
	verdicts map[colo.PoP]Verdict
	queries  int
}

// NewReplay builds a replay backend over a verdict table. The map is
// copied.
func NewReplay(verdicts map[colo.PoP]Verdict) *Replay {
	m := make(map[colo.PoP]Verdict, len(verdicts))
	for k, v := range verdicts {
		m[k] = v
	}
	return &Replay{verdicts: m}
}

// Record adds or replaces one recorded verdict.
func (r *Replay) Record(pop colo.PoP, v Verdict) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verdicts[pop] = v
}

// Queries returns how many probes the backend has served.
func (r *Replay) Queries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries
}

// Probe implements Backend.
func (r *Replay) Probe(pop colo.PoP, _ time.Time) (bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	v, ok := r.verdicts[pop]
	if !ok {
		return false, false
	}
	return v.Confirmed, v.HasData
}

// Fault wraps a backend with latency and loss injection for soak testing:
// every probe sleeps Latency plus a deterministic jitter, and a LossRate
// fraction of probes answer no-data without reaching the inner backend.
// Loss and jitter derive from a hash of (target, at, seed) rather than a
// shared random stream, so the injected faults are a pure function of the
// probe — identical across runs and indifferent to worker interleaving,
// which keeps a fault-injected daemon replayable by the store's recovery
// gate.
type Fault struct {
	Inner    Backend
	Latency  time.Duration // base per-probe delay
	Jitter   time.Duration // max additional deterministic delay
	LossRate float64       // fraction of probes lost, in [0,1]
	Seed     int64
}

// hash mixes the probe identity into a 64-bit value (splitmix64).
func (f *Fault) hash(pop colo.PoP, at time.Time) uint64 {
	x := uint64(f.Seed) ^ uint64(at.Unix())<<20 ^ uint64(pop.ID)<<2 ^ uint64(pop.Kind)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Probe implements Backend.
func (f *Fault) Probe(pop colo.PoP, at time.Time) (bool, bool) {
	h := f.hash(pop, at)
	delay := f.Latency
	if f.Jitter > 0 {
		delay += time.Duration(h % uint64(f.Jitter))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if f.LossRate > 0 && float64(h%1000)/1000 < f.LossRate {
		return false, false
	}
	return f.Inner.Probe(pop, at)
}
