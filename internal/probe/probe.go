// Package probe is Kepler's active-measurement subsystem: an asynchronous
// scheduler that turns the investigator's point-in-time confirmation needs
// into probe campaigns executed concurrently against a pluggable Backend,
// under the measurement budgets public platforms impose (Section 4.3: "we
// resort to targeted traceroute queries to discover the outage source").
//
// The engine parks a signal group and submits a campaign at bin close
// (core.Prober); the scheduler deduplicates targets against in-flight
// probes and a cooldown-guarded LRU verdict cache, orders execution by
// localization specificity (facility > IXP > city) and signal recency,
// charges every probe against a sliding-window budget (denied probes
// complete as no-data, mirroring an exhausted platform), and hands
// completed verdicts back at the next bin barrier. In the default
// deterministic mode Collect waits for every outstanding campaign, which
// makes the engine's output a pure function of the record stream — the
// property the store's replay gate and the async-vs-sync equivalence test
// rely on; Async mode returns only what has finished, trading determinism
// for bin closes that never wait on a slow backend (the core TTL then
// bounds how long a verdict may straggle).
//
// Worker scheduling must never influence results for that property to
// hold, so every outcome-bearing decision happens on the submitting or
// collecting goroutine: budget slots are charged (and denials decided) at
// Submit time in campaign-and-candidate order, cache lookups happen at
// Submit, and executed verdicts enter the cache at Collect in a sorted
// order — workers only decide *when* a probe runs, never *whether* or
// what the shared state looks like afterwards.
package probe

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

// Backend executes one measurement: does the data plane confirm an outage
// of pop as of the stream instant at? hasData=false means no measurement
// was possible. Implementations must be safe for concurrent use; wrap a
// single-threaded core.DataPlane with OverDataPlane.
type Backend interface {
	Probe(pop colo.PoP, at time.Time) (confirmed, hasData bool)
}

// Config tunes a Scheduler.
type Config struct {
	// Workers is the number of concurrent probe executors (default 4).
	Workers int
	// Budget caps executed probes per Window; <= 0 is unbounded. A probe
	// that cannot get a slot completes immediately as no-data — the
	// exhausted-platform behavior of the synchronous path.
	Budget int
	// Window is the sliding budget window, in stream time (default 1h).
	Window time.Duration
	// Cooldown suppresses re-probing a target measured less than this long
	// ago (stream time): the cached verdict answers instead. Zero disables.
	Cooldown time.Duration
	// CacheSize bounds the LRU verdict cache (default 256 when Cooldown is
	// set, 0 otherwise).
	CacheSize int
	// Async makes Collect return only completed campaigns instead of
	// waiting for all outstanding ones. Default false: deterministic mode.
	Async bool
	// Metrics receives scheduler counters. Optional.
	Metrics *metrics.ProbeStats
	// Logger receives campaign lifecycle reports at debug level and budget
	// denials at warn level. Nil discards them.
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.CacheSize == 0 && c.Cooldown > 0 {
		c.CacheSize = 256
	}
}

// targetKey identifies one deduplicable measurement: a PoP queried as of
// one signal bin. Campaigns of the same bin share the execution.
type targetKey struct {
	pop colo.PoP
	at  int64 // unix seconds of the signal bin close
}

// task is one scheduled measurement, shared by every campaign slot that
// requested the same target.
type task struct {
	target colo.PoP
	at     time.Time
	campID uint64 // first requesting campaign: priority tiebreak
	slots  []slotRef

	done      bool
	confirmed bool
	hasData   bool
}

type slotRef struct {
	c   *campaign
	idx int
}

// campaign tracks one core.ProbeRequest through execution.
type campaign struct {
	id        uint64
	results   []core.ProbeResult
	remaining int
}

func (c *campaign) fill(idx int, r core.ProbeResult) {
	c.results[idx] = r
	c.remaining--
}

// Scheduler is the asynchronous probe campaign executor; it implements
// core.Prober. Use NewScheduler; call Close when done.
type Scheduler struct {
	backend Backend
	cfg     Config
	m       *metrics.ProbeStats
	log     *slog.Logger

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*task
	inflight  map[targetKey]*task
	campaigns map[uint64]*campaign
	cache     *verdictCache
	// cacheStage holds executed results between barriers; Collect installs
	// them into the LRU in a sorted order so the cache state never depends
	// on worker completion order.
	cacheStage []*task
	budget     []time.Time // stream-time stamps of budget charges
	closed     bool

	wg sync.WaitGroup
}

// NewScheduler starts a scheduler over the backend with cfg.Workers
// executor goroutines.
func NewScheduler(b Backend, cfg Config) *Scheduler {
	cfg.defaults()
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Scheduler{
		backend:   b,
		cfg:       cfg,
		m:         cfg.Metrics,
		log:       log,
		inflight:  make(map[targetKey]*task),
		campaigns: make(map[uint64]*campaign),
		cache:     newVerdictCache(cfg.CacheSize),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// rankOf orders execution by localization specificity: facility probes
// pin the most specific epicenters and run first, then IXPs, then cities.
func rankOf(k colo.PoPKind) int {
	switch k {
	case colo.PoPFacility:
		return 0
	case colo.PoPIXP:
		return 1
	case colo.PoPCity:
		return 2
	default:
		return 3
	}
}

// Submit implements core.Prober: it registers the campaign, satisfies what
// it can from the verdict cache and in-flight dedup, charges the budget
// for the rest — in candidate order, on this goroutine, so a constrained
// budget denies the same probes on every replay of the same stream — and
// queues the charged targets for the workers. Called from the ingestion
// goroutine at bin close.
func (s *Scheduler) Submit(req core.ProbeRequest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &campaign{
		id:        req.ID,
		results:   make([]core.ProbeResult, len(req.Candidates)),
		remaining: len(req.Candidates),
	}
	s.campaigns[req.ID] = c
	if s.m != nil {
		s.m.Campaigns.Add(1)
		s.m.Targets.Add(int64(len(req.Candidates)))
	}
	if s.closed {
		// Shutdown race: complete the campaign as unmeasured rather than
		// leaving the engine parked forever.
		for i, pop := range req.Candidates {
			c.fill(i, core.ProbeResult{Target: pop})
		}
		return
	}
	for i, pop := range req.Candidates {
		if s.cfg.Cooldown > 0 {
			if ent, ok := s.cache.get(pop); ok && !req.At.Before(ent.at) && req.At.Sub(ent.at) <= s.cfg.Cooldown {
				c.fill(i, core.ProbeResult{Target: pop, Confirmed: ent.confirmed, HasData: ent.hasData})
				if s.m != nil {
					s.m.CacheHits.Add(1)
				}
				continue
			}
		}
		key := targetKey{pop: pop, at: req.At.Unix()}
		if t := s.inflight[key]; t != nil {
			if t.done {
				c.fill(i, core.ProbeResult{Target: pop, Confirmed: t.confirmed, HasData: t.hasData})
			} else {
				t.slots = append(t.slots, slotRef{c: c, idx: i})
			}
			if s.m != nil {
				s.m.Deduped.Add(1)
			}
			continue
		}
		if !s.acquireBudgetLocked(req.At) {
			// Denied probes complete immediately as no-data; they are still
			// recorded in the in-flight index so same-bin duplicates share
			// the denial instead of burning another slot check.
			t := &task{target: pop, at: req.At, campID: req.ID, done: true}
			s.inflight[key] = t
			c.fill(i, core.ProbeResult{Target: pop})
			continue
		}
		t := &task{target: pop, at: req.At, campID: req.ID, slots: []slotRef{{c: c, idx: i}}}
		s.inflight[key] = t
		s.queue = append(s.queue, t)
	}
	s.log.Debug("probe campaign submitted", "campaign", req.ID,
		"candidates", len(req.Candidates), "queued", len(s.queue))
	s.cond.Broadcast()
}

// Collect implements core.Prober: completed campaigns are returned sorted
// by id and forgotten. In deterministic mode (Config.Async false) it first
// waits for every outstanding campaign, so a bin barrier observes exactly
// the verdicts of everything submitted before it.
func (s *Scheduler) Collect(binEnd time.Time) []core.ProbeVerdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.Async {
		for !s.closed && s.outstandingLocked() {
			s.cond.Wait()
		}
	}
	var out []core.ProbeVerdict
	for id, c := range s.campaigns {
		if c.remaining > 0 {
			continue
		}
		out = append(out, core.ProbeVerdict{ID: id, Results: c.results})
		delete(s.campaigns, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	// Install the barrier's executed results into the verdict cache in a
	// content-derived order: the LRU's state (and therefore its eviction
	// choices) must be a function of what was measured, not of which worker
	// finished first.
	sort.Slice(s.cacheStage, func(i, j int) bool {
		a, b := s.cacheStage[i], s.cacheStage[j]
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		if ra, rb := rankOf(a.target.Kind), rankOf(b.target.Kind); ra != rb {
			return ra < rb
		}
		return a.target.ID < b.target.ID
	})
	for _, t := range s.cacheStage {
		s.cache.put(t.target, cacheEntry{at: t.at, confirmed: t.confirmed, hasData: t.hasData})
	}
	s.cacheStage = nil
	// Done tasks have served their same-bin dedup purpose; drop them so the
	// in-flight index stays bounded by actual outstanding work.
	for key, t := range s.inflight {
		if t.done {
			delete(s.inflight, key)
		}
	}
	if s.m != nil {
		s.m.Collected.Add(int64(len(out)))
	}
	return out
}

func (s *Scheduler) outstandingLocked() bool {
	for _, c := range s.campaigns {
		if c.remaining > 0 {
			return true
		}
	}
	return false
}

// Outstanding reports the number of campaigns not yet fully measured.
func (s *Scheduler) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.campaigns {
		if c.remaining > 0 {
			n++
		}
	}
	return n
}

// Close stops the workers. Queued probes are abandoned and their campaigns
// completed as no-data so a concurrent Collect cannot block forever.
// Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, t := range s.queue {
		s.completeLocked(t, false, false)
	}
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// popTaskLocked removes and returns the highest-priority queued task:
// most specific PoP kind first, then newest signal, then lowest campaign
// id — a total order, so concurrent workers drain deterministically.
func (s *Scheduler) popTaskLocked() *task {
	best := -1
	for i, t := range s.queue {
		if best < 0 {
			best = i
			continue
		}
		b := s.queue[best]
		ri, rb := rankOf(t.target.Kind), rankOf(b.target.Kind)
		switch {
		case ri != rb:
			if ri < rb {
				best = i
			}
		case !t.at.Equal(b.at):
			if t.at.After(b.at) {
				best = i
			}
		case t.campID < b.campID:
			best = i
		}
	}
	t := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return t
}

// acquireBudgetLocked charges one probe at stream time at against the
// sliding window. Charging happens at Submit, on the ingestion goroutine,
// so which probe a constrained budget denies is a deterministic function
// of campaign-and-candidate order, untouched by worker scheduling.
func (s *Scheduler) acquireBudgetLocked(at time.Time) bool {
	if s.cfg.Budget <= 0 {
		return true
	}
	keep := s.budget[:0]
	for _, ts := range s.budget {
		if at.Sub(ts) < s.cfg.Window {
			keep = append(keep, ts)
		}
	}
	s.budget = keep
	if len(s.budget) >= s.cfg.Budget {
		s.log.Warn("probe denied by sliding-window budget",
			"budget", s.cfg.Budget, "window", s.cfg.Window)
		if s.m != nil {
			s.m.Denied.Add(1)
		}
		return false
	}
	s.budget = append(s.budget, at)
	return true
}

// completeLocked records a task result, fills every waiting campaign slot
// and wakes Collect waiters.
func (s *Scheduler) completeLocked(t *task, confirmed, hasData bool) {
	t.done = true
	t.confirmed = confirmed
	t.hasData = hasData
	for _, sl := range t.slots {
		sl.c.fill(sl.idx, core.ProbeResult{Target: t.target, Confirmed: confirmed, HasData: hasData})
	}
	t.slots = nil
	s.cond.Broadcast()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		t := s.popTaskLocked()
		s.mu.Unlock()

		confirmed, hasData := s.backend.Probe(t.target, t.at)

		s.mu.Lock()
		if s.m != nil {
			s.m.Executed.Add(1)
		}
		s.completeLocked(t, confirmed, hasData)
		s.cacheStage = append(s.cacheStage, t)
		s.mu.Unlock()
	}
}

// OverDataPlane adapts a synchronous core.DataPlane as a Backend,
// serializing calls — the simulation-backed data plane shares routing
// caches and a platform budget that are not safe for concurrent use.
func OverDataPlane(dp core.DataPlane) Backend {
	return &dpBackend{dp: dp}
}

type dpBackend struct {
	mu sync.Mutex
	dp core.DataPlane
}

func (b *dpBackend) Probe(pop colo.PoP, at time.Time) (bool, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dp.Confirm(pop, at)
}

// cacheEntry is one cached verdict.
type cacheEntry struct {
	at        time.Time
	confirmed bool
	hasData   bool
}

// verdictCache is a small LRU of per-target verdicts backing the cooldown.
type verdictCache struct {
	cap     int
	entries map[colo.PoP]*cacheNode
	head    *cacheNode // most recent
	tail    *cacheNode // least recent
}

type cacheNode struct {
	pop        colo.PoP
	ent        cacheEntry
	prev, next *cacheNode
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{cap: capacity, entries: make(map[colo.PoP]*cacheNode)}
}

func (c *verdictCache) get(pop colo.PoP) (cacheEntry, bool) {
	n := c.entries[pop]
	if n == nil {
		return cacheEntry{}, false
	}
	c.moveFront(n)
	return n.ent, true
}

func (c *verdictCache) put(pop colo.PoP, ent cacheEntry) {
	if c.cap <= 0 {
		return
	}
	if n := c.entries[pop]; n != nil {
		n.ent = ent
		c.moveFront(n)
		return
	}
	n := &cacheNode{pop: pop, ent: ent}
	c.entries[pop] = n
	c.pushFront(n)
	if len(c.entries) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.pop)
	}
}

func (c *verdictCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *verdictCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *verdictCache) moveFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
