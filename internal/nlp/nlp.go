// Package nlp provides the light-weight natural-language machinery behind
// Kepler's community-dictionary miner (Section 3.2 of the paper). The paper
// uses NLTK for tokenization/POS tagging and Stanford NER for named-entity
// recognition over operators' community documentation; this package
// substitutes a rule-based equivalent: a tokenizer, a sentence splitter, a
// grammatical-voice detector (passive-voice sentences document *inbound*
// communities — "routes received at ..." — while active/imperative sentences
// define *outbound* traffic-engineering actions — "announce to ..."), a
// gazetteer-driven named-entity recognizer, and community-value pattern
// extraction.
package nlp

import (
	"regexp"
	"strings"
	"unicode"
)

// TokenKind classifies a token.
type TokenKind uint8

// Token kinds.
const (
	TokenWord TokenKind = iota
	TokenNumber
	TokenCommunity // looks like "13030:51904"
	TokenPunct
)

// Token is one lexical unit.
type Token struct {
	Text string
	Kind TokenKind
}

// communityPattern matches classic community notation: two decimal halves
// joined by a colon, optionally preceded by "AS" on the high half.
var communityPattern = regexp.MustCompile(`^(?:AS)?(\d{1,5}):(\d{1,5})$`)

// rangePattern matches community range notation like "65000:1000-1099".
var rangePattern = regexp.MustCompile(`^(?:AS)?(\d{1,5}):(\d{1,5})-(\d{1,5})$`)

// Tokenize splits s into word, number, community and punctuation tokens.
// Hyphenated and colon-joined numeric forms are kept intact so community
// values ("13030:51904") and ranges survive as single tokens.
func Tokenize(s string) []Token {
	var tokens []Token
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return unicode.IsSpace(r)
	})
	for _, f := range fields {
		// Strip leading/trailing punctuation but keep it as tokens: a
		// trailing period matters for sentence splitting.
		lead, core, trail := trimPunct(f)
		for _, p := range lead {
			tokens = append(tokens, Token{Text: string(p), Kind: TokenPunct})
		}
		if core != "" {
			tokens = append(tokens, classify(core))
		}
		for _, p := range trail {
			tokens = append(tokens, Token{Text: string(p), Kind: TokenPunct})
		}
	}
	return tokens
}

func trimPunct(s string) (lead string, core string, trail string) {
	start := 0
	for start < len(s) && isEdgePunct(rune(s[start])) {
		start++
	}
	end := len(s)
	for end > start && isEdgePunct(rune(s[end-1])) {
		end--
	}
	return s[:start], s[start:end], s[end:]
}

// isEdgePunct reports punctuation that should be peeled off token edges.
// Colons and hyphens are not edge punctuation: they glue communities and
// ranges together.
func isEdgePunct(r rune) bool {
	switch r {
	case '.', ',', ';', '!', '?', '(', ')', '[', ']', '"', '\'', '{', '}':
		return true
	}
	return false
}

func classify(s string) Token {
	if communityPattern.MatchString(s) || rangePattern.MatchString(s) {
		return Token{Text: s, Kind: TokenCommunity}
	}
	numeric := true
	for _, r := range s {
		if r < '0' || r > '9' {
			numeric = false
			break
		}
	}
	if numeric {
		return Token{Text: s, Kind: TokenNumber}
	}
	return Token{Text: s, Kind: TokenWord}
}

// Sentences splits documentation text into sentence-ish units: it breaks on
// '.', ';', newlines that end bullet items, and blank lines. Operators'
// community docs are mostly tables and fragments, so the splitter is
// newline-biased rather than grammar-precise.
func Sentences(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			flush()
			continue
		}
		for _, r := range trimmed {
			switch r {
			case '.', ';':
				flush()
			default:
				cur.WriteRune(r)
			}
		}
		flush() // each physical line is its own unit in tabular docs
	}
	flush()
	return out
}

// Voice is the grammatical voice of a sentence.
type Voice uint8

// Voice values.
const (
	VoiceUnknown Voice = iota
	VoicePassive       // documents an inbound community ("received at ...")
	VoiceActive        // defines an outbound action ("announce to ...")
)

// String names the voice.
func (v Voice) String() string {
	switch v {
	case VoicePassive:
		return "passive"
	case VoiceActive:
		return "active"
	default:
		return "unknown"
	}
}

// passiveParticiples are verbs whose past participle, in community docs,
// marks an inbound/ingress community (paper: "received", "learned",
// "exchanged").
var passiveParticiples = map[string]bool{
	"received":   true,
	"learned":    true,
	"learnt":     true,
	"exchanged":  true,
	"accepted":   true,
	"heard":      true,
	"tagged":     true,
	"marked":     true,
	"ingress":    true, // "ingress at" noun usage, common in docs
	"originated": true,
}

// activeVerbs are imperative/action verbs that mark outbound
// traffic-engineering communities (paper: "announce", "block").
var activeVerbs = map[string]bool{
	"announce": true, "announces": true, "announced": true,
	"advertise": true, "advertises": true, "advertised": true,
	"export": true, "exports": true, "exported": true,
	"block": true, "blocks": true, "blocked": true,
	"suppress": true, "suppressed": true,
	"prepend": true, "prepends": true, "prepended": true,
	"set": true, "lower": true, "raise": true,
	"blackhole": true, "blackholed": true,
	"drop": true, "dropped": true,
	"filter": true, "filtered": true,
	"restrict": true, "restricted": true,
}

// auxiliaries are the be/have forms that precede a passive participle.
var auxiliaries = map[string]bool{
	"is": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "being": true, "has": true,
	"have": true, "had": true, "gets": true, "get": true,
}

// DetectVoice classifies a tokenized sentence. The heuristic mirrors the
// paper's use of POS tagging: a known passive participle ("received",
// "learned", "exchanged") ⇒ passive, including the bare-participle fragments
// dominant in tabular docs ("received at Telehouse East"); a known action
// verb ("announce", "block") ⇒ active, unless an auxiliary precedes it
// ("routes are announced to ..." still describes provenance). The first
// decisive verb wins.
func DetectVoice(tokens []Token) Voice {
	sawAux := false
	for _, tok := range tokens {
		if tok.Kind != TokenWord {
			continue
		}
		w := strings.ToLower(tok.Text)
		if auxiliaries[w] {
			sawAux = true
			continue
		}
		if passiveParticiples[w] {
			return VoicePassive
		}
		if activeVerbs[w] {
			if sawAux {
				return VoicePassive
			}
			return VoiceActive
		}
	}
	return VoiceUnknown
}

// EntityType classifies a recognized named entity.
type EntityType uint8

// Entity types used by the dictionary miner.
const (
	EntityUnknown  EntityType = iota
	EntityLocation            // a city-level location
	EntityIXP                 // an internet exchange point
	EntityFacility            // a colocation facility
	EntityOperator            // a network/facility operator organization
)

// String names the entity type.
func (t EntityType) String() string {
	switch t {
	case EntityLocation:
		return "location"
	case EntityIXP:
		return "ixp"
	case EntityFacility:
		return "facility"
	case EntityOperator:
		return "operator"
	default:
		return "unknown"
	}
}

// Entity is one gazetteer match in a token stream.
type Entity struct {
	Text  string // matched surface text
	Canon string // canonical gazetteer name
	Type  EntityType
	Pos   int // index of first matched token
	Len   int // number of tokens matched
}

// Gazetteer is a longest-match dictionary of known entities, the stand-in
// for Stanford NER primed with PeeringDB/Euro-IX/IRR organization names (the
// Banerjee et al. technique the paper adopts).
type Gazetteer struct {
	// entries maps normalized first word -> candidate entries, longest
	// first.
	entries map[string][]gazEntry
}

type gazEntry struct {
	words []string // normalized words
	canon string
	typ   EntityType
}

// NewGazetteer returns an empty gazetteer.
func NewGazetteer() *Gazetteer {
	return &Gazetteer{entries: make(map[string][]gazEntry)}
}

// Add registers a (possibly multi-word) entity name.
func (g *Gazetteer) Add(name string, typ EntityType) {
	words := normalizeWords(name)
	if len(words) == 0 {
		return
	}
	e := gazEntry{words: words, canon: name, typ: typ}
	key := words[0]
	list := g.entries[key]
	// Keep longest-first so greedy matching prefers "Telehouse East London"
	// over "Telehouse".
	at := len(list)
	for i, x := range list {
		if len(e.words) > len(x.words) {
			at = i
			break
		}
	}
	list = append(list, gazEntry{})
	copy(list[at+1:], list[at:])
	list[at] = e
	g.entries[key] = list
}

// Len returns the number of registered entries.
func (g *Gazetteer) Len() int {
	n := 0
	for _, l := range g.entries {
		n += len(l)
	}
	return n
}

func normalizeWords(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, ".,;:()[]\"'")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Find scans the token stream and returns all non-overlapping gazetteer
// matches, greedily preferring longer matches. Only word/number tokens
// participate.
func (g *Gazetteer) Find(tokens []Token) []Entity {
	var out []Entity
	for i := 0; i < len(tokens); {
		if tokens[i].Kind == TokenPunct {
			i++
			continue
		}
		first := strings.ToLower(tokens[i].Text)
		matched := false
		for _, e := range g.entries[first] {
			if matchAt(tokens, i, e.words) {
				out = append(out, Entity{
					Text:  surface(tokens[i : i+len(e.words)]),
					Canon: e.canon,
					Type:  e.typ,
					Pos:   i,
					Len:   len(e.words),
				})
				i += len(e.words)
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

func matchAt(tokens []Token, pos int, words []string) bool {
	if pos+len(words) > len(tokens) {
		return false
	}
	for j, w := range words {
		t := tokens[pos+j]
		if t.Kind == TokenPunct {
			return false
		}
		if strings.ToLower(t.Text) != w {
			return false
		}
	}
	return true
}

func surface(tokens []Token) string {
	parts := make([]string, len(tokens))
	for i, t := range tokens {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// CommunityMatch is one community value (or expanded range element) found
// in a sentence.
type CommunityMatch struct {
	High uint32 // top 16 bits as parsed (validated by caller against ASN)
	Low  uint32
}

// ExtractCommunities returns every community literal in the token stream.
// Range notation ("65000:100-103") expands to each value; absurd ranges
// (more than maxRange values) are truncated to keep hostile docs cheap.
func ExtractCommunities(tokens []Token) []CommunityMatch {
	const maxRange = 256
	var out []CommunityMatch
	for _, tok := range tokens {
		if tok.Kind != TokenCommunity {
			continue
		}
		if m := rangePattern.FindStringSubmatch(tok.Text); m != nil {
			hi := parseUint(m[1])
			lo1 := parseUint(m[2])
			lo2 := parseUint(m[3])
			if lo2 < lo1 {
				lo1, lo2 = lo2, lo1
			}
			if lo2-lo1 >= maxRange {
				lo2 = lo1 + maxRange - 1
			}
			for v := lo1; v <= lo2; v++ {
				out = append(out, CommunityMatch{High: hi, Low: v})
			}
			continue
		}
		if m := communityPattern.FindStringSubmatch(tok.Text); m != nil {
			out = append(out, CommunityMatch{High: parseUint(m[1]), Low: parseUint(m[2])})
		}
	}
	return out
}

func parseUint(s string) uint32 {
	var v uint32
	for i := 0; i < len(s); i++ {
		v = v*10 + uint32(s[i]-'0')
	}
	return v
}

// CapitalizedSpans returns maximal runs of capitalized words, the raw
// candidates the paper feeds to NER after matching against PeeringDB and
// IRR organization names. Runs shorter than 1 word or made of common
// sentence-initial words only are skipped by the caller.
func CapitalizedSpans(tokens []Token) [][]Token {
	var out [][]Token
	var run []Token
	flush := func() {
		if len(run) > 0 {
			out = append(out, run)
			run = nil
		}
	}
	for _, t := range tokens {
		if t.Kind == TokenWord && len(t.Text) > 0 && t.Text[0] >= 'A' && t.Text[0] <= 'Z' {
			run = append(run, t)
			continue
		}
		flush()
	}
	flush()
	return out
}
