package nlp

import (
	"strings"
	"testing"
)

func kinds(tokens []Token) []TokenKind {
	out := make([]TokenKind, len(tokens))
	for i, t := range tokens {
		out[i] = t.Kind
	}
	return out
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("13030:51904 routes received at Coresite LAX-1 (Los Angeles).")
	var comm, words, punct int
	for _, tok := range toks {
		switch tok.Kind {
		case TokenCommunity:
			comm++
		case TokenWord:
			words++
		case TokenPunct:
			punct++
		}
	}
	if comm != 1 {
		t.Errorf("community tokens = %d, want 1", comm)
	}
	if words < 6 {
		t.Errorf("word tokens = %d, want >= 6", words)
	}
	if punct < 3 { // ( ) .
		t.Errorf("punct tokens = %d, want >= 3", punct)
	}
	// LAX-1 must survive as a single word token (hyphen is not edge punct).
	found := false
	for _, tok := range toks {
		if tok.Text == "LAX-1" {
			found = true
		}
	}
	if !found {
		t.Error("LAX-1 was split")
	}
}

func TestTokenizeKindsTable(t *testing.T) {
	cases := []struct {
		in   string
		want TokenKind
	}{
		{"13030:51904", TokenCommunity},
		{"AS13030:51904", TokenCommunity},
		{"65000:1000-1099", TokenCommunity},
		{"51904", TokenNumber},
		{"received", TokenWord},
		{"LAX-1", TokenWord},
	}
	for _, c := range cases {
		toks := Tokenize(c.in)
		if len(toks) != 1 || toks[0].Kind != c.want {
			t.Errorf("Tokenize(%q) = %v (kinds %v), want single %v", c.in, toks, kinds(toks), c.want)
		}
	}
}

func TestSentences(t *testing.T) {
	text := `Community values for customers.

13030:51904 - received at Coresite LAX-1
13030:51702 - received at Telehouse East London; 13030:4006 - received at LINX
Do not announce to peers.`
	got := Sentences(text)
	if len(got) != 5 {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
	if !strings.Contains(got[1], "51904") {
		t.Errorf("sentence order wrong: %q", got)
	}
	if !strings.Contains(got[2], "Telehouse East London") || !strings.Contains(got[3], "LINX") {
		t.Errorf("semicolon split failed: %q", got)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences(""); len(got) != 0 {
		t.Errorf("Sentences(\"\") = %q", got)
	}
	if got := Sentences("\n\n  \n"); len(got) != 0 {
		t.Errorf("Sentences(blank) = %q", got)
	}
}

func TestDetectVoice(t *testing.T) {
	cases := []struct {
		sentence string
		want     Voice
	}{
		{"13030:51904 routes received at Coresite LAX-1", VoicePassive},
		{"Routes learned from peers at LINX Juniper LAN", VoicePassive},
		{"Prefixes exchanged at DE-CIX Frankfurt", VoicePassive},
		{"routes are announced to all peers", VoicePassive},
		{"Announce to all peers", VoiceActive},
		{"Do not announce to AS3356", VoiceActive},
		{"Block announcements towards LINX", VoiceActive},
		{"Prepend 3x towards all peers in Frankfurt", VoiceActive},
		{"Set local preference to 80", VoiceActive},
		{"Community for internal use", VoiceUnknown},
		{"", VoiceUnknown},
		{"received", VoicePassive},
	}
	for _, c := range cases {
		if got := DetectVoice(Tokenize(c.sentence)); got != c.want {
			t.Errorf("DetectVoice(%q) = %v, want %v", c.sentence, got, c.want)
		}
	}
}

func TestVoiceString(t *testing.T) {
	if VoicePassive.String() != "passive" || VoiceActive.String() != "active" || VoiceUnknown.String() != "unknown" {
		t.Error("voice names wrong")
	}
}

func TestGazetteerLongestMatch(t *testing.T) {
	g := NewGazetteer()
	g.Add("Telehouse", EntityOperator)
	g.Add("Telehouse East London", EntityFacility)
	g.Add("LINX", EntityIXP)
	g.Add("Los Angeles", EntityLocation)

	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}

	toks := Tokenize("received at Telehouse East London via LINX near Los Angeles")
	ents := g.Find(toks)
	if len(ents) != 3 {
		t.Fatalf("got %d entities: %+v", len(ents), ents)
	}
	if ents[0].Canon != "Telehouse East London" || ents[0].Type != EntityFacility {
		t.Errorf("longest match failed: %+v", ents[0])
	}
	if ents[1].Canon != "LINX" || ents[1].Type != EntityIXP {
		t.Errorf("IXP match failed: %+v", ents[1])
	}
	if ents[2].Canon != "Los Angeles" || ents[2].Type != EntityLocation {
		t.Errorf("location match failed: %+v", ents[2])
	}
}

func TestGazetteerShortMatchWhenLongFails(t *testing.T) {
	g := NewGazetteer()
	g.Add("Telehouse", EntityOperator)
	g.Add("Telehouse East London", EntityFacility)
	ents := g.Find(Tokenize("peering at Telehouse North site"))
	if len(ents) != 1 || ents[0].Canon != "Telehouse" || ents[0].Type != EntityOperator {
		t.Errorf("fallback to shorter entry failed: %+v", ents)
	}
}

func TestGazetteerCaseInsensitive(t *testing.T) {
	g := NewGazetteer()
	g.Add("AMS-IX", EntityIXP)
	ents := g.Find(Tokenize("routes received at ams-ix Amsterdam"))
	if len(ents) != 1 || ents[0].Canon != "AMS-IX" {
		t.Errorf("case-insensitive match failed: %+v", ents)
	}
}

func TestGazetteerNoOverlap(t *testing.T) {
	g := NewGazetteer()
	g.Add("East London", EntityLocation)
	g.Add("Telehouse East London", EntityFacility)
	ents := g.Find(Tokenize("at Telehouse East London today"))
	if len(ents) != 1 || ents[0].Type != EntityFacility {
		t.Errorf("overlapping match not suppressed: %+v", ents)
	}
}

func TestGazetteerEmptyAdd(t *testing.T) {
	g := NewGazetteer()
	g.Add("   ", EntityIXP)
	if g.Len() != 0 {
		t.Error("blank entity registered")
	}
}

func TestExtractCommunities(t *testing.T) {
	toks := Tokenize("13030:51904 received; range 65000:10-13 set, not 300000:1")
	got := ExtractCommunities(toks)
	// 1 single + 4 from the range. "300000:1" has a 6-digit high half and
	// must not tokenize as a community.
	if len(got) != 5 {
		t.Fatalf("got %d matches: %+v", len(got), got)
	}
	if got[0].High != 13030 || got[0].Low != 51904 {
		t.Errorf("single match = %+v", got[0])
	}
	if got[1].Low != 10 || got[4].Low != 13 {
		t.Errorf("range expansion = %+v", got[1:])
	}
}

func TestExtractCommunitiesRangeCapped(t *testing.T) {
	toks := Tokenize("65000:0-65000")
	got := ExtractCommunities(toks)
	if len(got) != 256 {
		t.Errorf("hostile range expanded to %d values, want cap 256", len(got))
	}
}

func TestExtractCommunitiesReversedRange(t *testing.T) {
	got := ExtractCommunities(Tokenize("65000:20-18"))
	if len(got) != 3 || got[0].Low != 18 || got[2].Low != 20 {
		t.Errorf("reversed range = %+v", got)
	}
}

func TestCapitalizedSpans(t *testing.T) {
	toks := Tokenize("routes received at Telehouse East London via the LINX exchange")
	spans := CapitalizedSpans(toks)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if surface(spans[0]) != "Telehouse East London" {
		t.Errorf("span 0 = %q", surface(spans[0]))
	}
	if surface(spans[1]) != "LINX" {
		t.Errorf("span 1 = %q", surface(spans[1]))
	}
}

func TestEntityTypeString(t *testing.T) {
	for _, et := range []EntityType{EntityLocation, EntityIXP, EntityFacility, EntityOperator} {
		if et.String() == "unknown" {
			t.Errorf("type %d stringifies to unknown", et)
		}
	}
	if EntityUnknown.String() != "unknown" {
		t.Error("EntityUnknown name wrong")
	}
}
