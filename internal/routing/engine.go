package routing

import (
	"sort"
	"sync"

	"kepler/internal/bgp"
	"kepler/internal/topology"
)

// entry is one AS's chosen route toward an origin.
type entry struct {
	next  bgp.ASN                // next hop toward the origin (0 at the origin)
	link  *topology.Interconnect // link to next (nil at the origin)
	class uint8
	plen  uint16 // AS-level hop count to the origin
}

// Table holds every AS's best route toward one origin under one mask.
type Table struct {
	Origin  bgp.ASN
	entries map[bgp.ASN]entry
}

// Has reports whether asn has any route to the origin.
func (t *Table) Has(asn bgp.ASN) bool {
	_, ok := t.entries[asn]
	return ok
}

// Size returns the number of ASes with a route.
func (t *Table) Size() int { return len(t.entries) }

// NextHop returns the next hop and link asn uses, ok=false if unreachable.
func (t *Table) NextHop(asn bgp.ASN) (bgp.ASN, *topology.Interconnect, bool) {
	e, ok := t.entries[asn]
	if !ok {
		return 0, nil, false
	}
	return e.next, e.link, true
}

// Class returns the route class asn's entry holds (ClassNone if
// unreachable).
func (t *Table) Class(asn bgp.ASN) uint8 {
	e, ok := t.entries[asn]
	if !ok {
		return ClassNone
	}
	return e.class
}

// UsesLink reports whether any AS's chosen route crosses the link.
func (t *Table) UsesLink(id int) bool {
	for _, e := range t.entries {
		if e.link != nil && e.link.ID == id {
			return true
		}
	}
	return false
}

// Route is a fully reconstructed path from a vantage AS to the origin.
type Route struct {
	Path        bgp.Path                 // vantage first, origin last
	Links       []*topology.Interconnect // Links[i] connects Path[i] and Path[i+1]
	Communities bgp.Communities          // accumulated location + RS communities
}

// Equal reports whether two routes are identical in path and communities.
func (r *Route) Equal(other *Route) bool {
	if r == nil || other == nil {
		return r == other
	}
	if !r.Path.Equal(other.Path) {
		return false
	}
	if len(r.Links) != len(other.Links) {
		return false
	}
	for i := range r.Links {
		if r.Links[i].ID != other.Links[i].ID {
			return false
		}
	}
	return r.Communities.Equal(other.Communities)
}

// Engine computes routes over a world.
type Engine struct {
	w *topology.World
}

// New returns an engine over w.
func New(w *topology.World) *Engine { return &Engine{w: w} }

// World returns the underlying topology.
func (e *Engine) World() *topology.World { return e.w }

// better reports whether candidate (class,plen,via,link) beats incumbent.
// Preference: class, then path length, then link kind (PNI > bilateral >
// multilateral > remote), then lower neighbor ASN, then lower link ID.
func better(cClass uint8, cPlen uint16, cVia bgp.ASN, cLink *topology.Interconnect,
	iClass uint8, iPlen uint16, iVia bgp.ASN, iLink *topology.Interconnect) bool {
	if cClass != iClass {
		return cClass < iClass
	}
	if cPlen != iPlen {
		return cPlen < iPlen
	}
	if cLink != nil && iLink != nil && cLink.Kind != iLink.Kind {
		return cLink.Kind < iLink.Kind
	}
	if cVia != iVia {
		return cVia < iVia
	}
	if cLink != nil && iLink != nil {
		return cLink.ID < iLink.ID
	}
	return false
}

// ComputeOrigin computes every AS's best valley-free route toward origin
// under the mask, using the three-phase relaxation.
func (e *Engine) ComputeOrigin(origin bgp.ASN, mask *Mask) *Table {
	t := &Table{Origin: origin, entries: make(map[bgp.ASN]entry)}
	if mask == nil {
		mask = NewMask()
	}
	if mask.ASes[origin] {
		return t
	}
	if _, ok := e.w.AS(origin); !ok {
		return t
	}
	t.entries[origin] = entry{class: ClassSelf}

	// Phase 1 — up: propagate along customer→provider edges until fixpoint.
	// Only self/customer routes travel up.
	for changed := true; changed; {
		changed = false
		for _, l := range e.w.Links {
			if l.Rel != topology.RelC2P || !mask.LinkUp(l) {
				continue
			}
			cust, prov := l.A, l.B
			ce, ok := t.entries[cust]
			if !ok || ce.class > ClassCustomer {
				continue
			}
			cand := entry{next: cust, link: l, class: ClassCustomer, plen: ce.plen + 1}
			if ie, ok := t.entries[prov]; !ok || better(cand.class, cand.plen, cand.next, cand.link, ie.class, ie.plen, ie.next, ie.link) {
				t.entries[prov] = cand
				changed = true
			}
		}
	}

	// Phase 2 — across: each peer link crosses once. Only self/customer
	// routes are exported over peer links. Candidates are computed against
	// the up-phase snapshot so a peer route never chains across two peer
	// links.
	type upd struct {
		asn bgp.ASN
		e   entry
	}
	var updates []upd
	for _, l := range e.w.Links {
		if l.Rel != topology.RelP2P || !mask.LinkUp(l) {
			continue
		}
		for _, dir := range [2][2]bgp.ASN{{l.A, l.B}, {l.B, l.A}} {
			from, to := dir[0], dir[1]
			fe, ok := t.entries[from]
			if !ok || fe.class > ClassCustomer {
				continue
			}
			updates = append(updates, upd{asn: to, e: entry{next: from, link: l, class: ClassPeer, plen: fe.plen + 1}})
		}
	}
	for _, u := range updates {
		if ie, ok := t.entries[u.asn]; !ok || better(u.e.class, u.e.plen, u.e.next, u.e.link, ie.class, ie.plen, ie.next, ie.link) {
			t.entries[u.asn] = u.e
		}
	}

	// Phase 3 — down: propagate along provider→customer edges until
	// fixpoint. Providers export everything to customers.
	for changed := true; changed; {
		changed = false
		for _, l := range e.w.Links {
			if l.Rel != topology.RelC2P || !mask.LinkUp(l) {
				continue
			}
			cust, prov := l.A, l.B
			pe, ok := t.entries[prov]
			if !ok {
				continue
			}
			cand := entry{next: prov, link: l, class: ClassProvider, plen: pe.plen + 1}
			if ie, ok := t.entries[cust]; !ok || better(cand.class, cand.plen, cand.next, cand.link, ie.class, ie.plen, ie.next, ie.link) {
				t.entries[cust] = cand
				changed = true
			}
		}
	}
	return t
}

// Route reconstructs the full route from vantage toward the table's origin,
// including the communities each on-path AS attaches at its ingress and the
// route-server redistribution communities of multilateral hops. Communities
// propagate from where they are attached toward the vantage; any
// intermediate AS that scrubs foreign communities (StripsForeign) removes
// everything attached closer to the origin, which is why location
// communities reach collectors on only about half of all paths.
func (e *Engine) Route(t *Table, vantage bgp.ASN) (*Route, bool) {
	if _, ok := t.entries[vantage]; !ok {
		return nil, false
	}
	r := &Route{Path: bgp.Path{vantage}}
	cur := vantage
	// True while no AS between the vantage and the current hop
	// (exclusive) scrubs foreign communities.
	visible := true
	for cur != t.Origin {
		ent := t.entries[cur]
		r.Links = append(r.Links, ent.link)
		// cur received this route from ent.next over ent.link: cur's
		// ingress tagging applies. The tagging AS's own community is
		// visible iff no downstream re-announcer scrubbed it.
		if visible {
			if comm, _, ok := e.w.IngressCommunity(cur, ent.link); ok {
				r.Communities = append(r.Communities, comm)
			}
			if ent.link != nil && ent.link.Kind == topology.Multilateral {
				if rs := e.w.RSASNOf(ent.link.IXP); rs != 0 {
					r.Communities = append(r.Communities, bgp.MakeCommunity(uint16(rs), topology.RSCommunityLow))
				}
			}
		}
		if a, ok := e.w.AS(cur); ok && a.StripsForeign {
			// cur scrubs everything attached upstream of itself; its own
			// ingress tag (added above) already passed.
			visible = false
		}
		cur = ent.next
		r.Path = append(r.Path, cur)
		if len(r.Path) > 64 {
			return nil, false // defensive bound; tables never produce cycles
		}
	}
	r.Communities = r.Communities.Normalize()
	return r, true
}

// RIB is a set of per-origin tables under one mask.
type RIB struct {
	Tables map[bgp.ASN]*Table
}

// ComputeOrigins computes tables for the given origins concurrently
// (results are independent, so parallelism preserves determinism).
func (e *Engine) ComputeOrigins(origins []bgp.ASN, mask *Mask) *RIB {
	rib := &RIB{Tables: make(map[bgp.ASN]*Table, len(origins))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, o := range origins {
		wg.Add(1)
		go func(origin bgp.ASN) {
			defer wg.Done()
			sem <- struct{}{}
			t := e.ComputeOrigin(origin, mask)
			<-sem
			mu.Lock()
			rib.Tables[origin] = t
			mu.Unlock()
		}(o)
	}
	wg.Wait()
	return rib
}

// ComputeAll computes tables for every AS in the world.
func (e *Engine) ComputeAll(mask *Mask) *RIB {
	origins := make([]bgp.ASN, 0, len(e.w.ASes))
	for _, a := range e.w.ASes {
		origins = append(origins, a.ASN)
	}
	return e.ComputeOrigins(origins, mask)
}

// AffectedOrigins returns the origins whose current tables route any AS
// over any of the given links — the candidates for recomputation after a
// failure or restoration touching those links.
func (r *RIB) AffectedOrigins(linkIDs map[int]bool) []bgp.ASN {
	var out []bgp.ASN
	for origin, t := range r.Tables {
		for _, e := range t.entries {
			if e.link != nil && linkIDs[e.link.ID] {
				out = append(out, origin)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Change is one route difference at a vantage AS for one origin.
type Change struct {
	Origin  bgp.ASN
	Vantage bgp.ASN
	Old     *Route // nil: newly reachable
	New     *Route // nil: withdrawn
}

// DiffTables compares two tables for the same origin at the given vantage
// points and returns the route-level changes.
func (e *Engine) DiffTables(old, new_ *Table, vantages []bgp.ASN) []Change {
	var out []Change
	for _, v := range vantages {
		var or, nr *Route
		if old != nil {
			or, _ = e.Route(old, v)
		}
		if new_ != nil {
			nr, _ = e.Route(new_, v)
		}
		if or == nil && nr == nil {
			continue
		}
		if or.Equal(nr) {
			continue
		}
		origin := bgp.ASN(0)
		if old != nil {
			origin = old.Origin
		} else if new_ != nil {
			origin = new_.Origin
		}
		out = append(out, Change{Origin: origin, Vantage: v, Old: or, New: nr})
	}
	return out
}
