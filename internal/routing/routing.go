// Package routing computes inter-domain routes over a topology.World with
// standard BGP policy semantics and physical failure awareness. It is the
// substrate that turns injected infrastructure outages into the BGP
// dynamics Kepler observes.
//
// Policies follow the Gao–Rexford conditions: routes learned from customers
// are exported to everyone; routes learned from peers or providers are
// exported only to customers. Selection prefers customer routes over peer
// routes over provider routes (LOCAL_PREF), then shortest AS path, then a
// deterministic tie-break that prefers private interconnects over public
// ones and lower neighbor ASNs — modelling the operational practice of
// keeping traffic on PNIs and making every computation reproducible.
//
// Valley-free best paths are computed per origin with the classic
// three-phase relaxation (up via customer→provider edges, once across peer
// edges, down via provider→customer edges). A Mask overlays physical
// failures: failed facilities sever the PNIs they house and the IXP ports
// they terminate; failed IXPs sever their whole fabric; failed ASes and
// individual links model de-peerings and maintenance.
package routing

import (
	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/topology"
)

// Route classes in preference order (smaller is better).
const (
	ClassSelf     uint8 = 0
	ClassCustomer uint8 = 1
	ClassPeer     uint8 = 2
	ClassProvider uint8 = 3
	ClassNone     uint8 = 0xff
)

// Mask is a set of physical failures overlaid on the topology.
type Mask struct {
	Facilities map[colo.FacilityID]bool
	IXPs       map[colo.IXPID]bool
	Links      map[int]bool
	ASes       map[bgp.ASN]bool
}

// NewMask returns an empty (all-healthy) mask.
func NewMask() *Mask {
	return &Mask{
		Facilities: make(map[colo.FacilityID]bool),
		IXPs:       make(map[colo.IXPID]bool),
		Links:      make(map[int]bool),
		ASes:       make(map[bgp.ASN]bool),
	}
}

// Clone returns an independent copy.
func (m *Mask) Clone() *Mask {
	c := NewMask()
	for k := range m.Facilities {
		c.Facilities[k] = true
	}
	for k := range m.IXPs {
		c.IXPs[k] = true
	}
	for k := range m.Links {
		c.Links[k] = true
	}
	for k := range m.ASes {
		c.ASes[k] = true
	}
	return c
}

// Empty reports whether nothing is failed.
func (m *Mask) Empty() bool {
	return len(m.Facilities) == 0 && len(m.IXPs) == 0 && len(m.Links) == 0 && len(m.ASes) == 0
}

// FailFacility marks a facility down.
func (m *Mask) FailFacility(f colo.FacilityID) { m.Facilities[f] = true }

// FailIXP marks an IXP's whole fabric down.
func (m *Mask) FailIXP(ix colo.IXPID) { m.IXPs[ix] = true }

// FailLink marks one interconnect down (de-peering, maintenance).
func (m *Mask) FailLink(id int) { m.Links[id] = true }

// FailAS marks an AS down (all its sessions drop).
func (m *Mask) FailAS(a bgp.ASN) { m.ASes[a] = true }

// RestoreFacility clears a facility failure.
func (m *Mask) RestoreFacility(f colo.FacilityID) { delete(m.Facilities, f) }

// RestoreIXP clears an IXP failure.
func (m *Mask) RestoreIXP(ix colo.IXPID) { delete(m.IXPs, ix) }

// RestoreLink clears a link failure.
func (m *Mask) RestoreLink(id int) { delete(m.Links, id) }

// RestoreAS clears an AS failure.
func (m *Mask) RestoreAS(a bgp.ASN) { delete(m.ASes, a) }

// LinkUp reports whether the interconnect is usable under the mask. A PNI
// dies with its building; an IXP link dies with the exchange fabric or with
// either side's port facility.
func (m *Mask) LinkUp(l *topology.Interconnect) bool {
	if m.Links[l.ID] {
		return false
	}
	if m.ASes[l.A] || m.ASes[l.B] {
		return false
	}
	if l.Facility != 0 && m.Facilities[l.Facility] {
		return false
	}
	if l.IXP != 0 {
		if m.IXPs[l.IXP] {
			return false
		}
		if l.AFac != 0 && m.Facilities[l.AFac] {
			return false
		}
		if l.BFac != 0 && m.Facilities[l.BFac] {
			return false
		}
	}
	return true
}

// FailCity fails every facility and IXP located in the city.
func (m *Mask) FailCity(city geo.CityID, cmap *colo.Map) {
	for _, f := range cmap.FacilitiesInCity(city) {
		m.FailFacility(f)
	}
	for _, ix := range cmap.IXPsInCity(city) {
		m.FailIXP(ix)
	}
}
