package routing

import (
	"net/netip"
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/topology"
)

// fig2World reconstructs the topology of the paper's Figure 2:
//
//	facilities F1, F2 (London), F3, F4 (Amsterdam)
//	IX1 fabric at F2+F3; IX2 fabric at F4
//	AS1–AS2: private peering at F2, backup PNI at F1
//	AS2–AS4: public bilateral via IX1 (ports F2 / F3)
//	AS3–AS4: multilateral via IX1 (ports F3 / F3), backup via IX2 (F4/F4)
//	AS10: common transit provider of all four (PNIs at various facilities)
type fig2 struct {
	w                  *topology.World
	f1, f2, f3, f4     colo.FacilityID
	ix1, ix2           colo.IXPID
	as1, as2, as3, as4 bgp.ASN
	as10               bgp.ASN
}

func buildFig2(t *testing.T) *fig2 {
	t.Helper()
	gw := geo.DefaultWorld()
	b := colo.NewBuilder(gw)
	addrs := []colo.Address{
		{Street: "1 Dock Rd", Postcode: "F1", Country: "GB"},
		{Street: "2 Dock Rd", Postcode: "F2", Country: "GB"},
		{Street: "1 Gracht", Postcode: "F3", Country: "NL"},
		{Street: "2 Gracht", Postcode: "F4", Country: "NL"},
	}
	cities := []string{"London", "London", "Amsterdam", "Amsterdam"}
	members := [][]bgp.ASN{
		{1, 2, 10},
		{1, 2, 10},
		{3, 4, 10},
		{3, 4, 10},
	}
	for i, a := range addrs {
		b.AddFacility(colo.FacilityRecord{
			Source: "truth", Name: "Fac" + a.Postcode, Addr: a,
			CityHint: cities[i], Members: members[i],
		})
	}
	b.AddIXP(colo.IXPRecord{
		Source: "truth", Name: "IX1", URL: "https://ix1.test", CityHint: "London",
		ASNs:          []bgp.ASN{64900},
		Members:       []bgp.ASN{2, 3, 4},
		FacilityAddrs: []colo.Address{addrs[1], addrs[2]},
	})
	b.AddIXP(colo.IXPRecord{
		Source: "truth", Name: "IX2", URL: "https://ix2.test", CityHint: "Amsterdam",
		ASNs:          []bgp.ASN{64901},
		Members:       []bgp.ASN{3, 4},
		FacilityAddrs: []colo.Address{addrs[3]},
	})
	cmap := b.Build()

	var fid [4]colo.FacilityID
	for i, a := range addrs {
		id, ok := cmap.FacilityByAddress(a)
		if !ok {
			t.Fatalf("facility %d missing", i)
		}
		fid[i] = id
	}
	ix1, _ := cmap.IXPByOperatedASN(64900)
	ix2, _ := cmap.IXPByOperatedASN(64901)

	w := topology.NewEmptyWorld(cmap, gw)
	mkAS := func(asn bgp.ASN, prefix string, facs []colo.FacilityID, gran colo.PoPKind, comm bool) {
		a := &topology.AS{
			ASN: asn, Type: topology.Tier2,
			Name:            asn.String(),
			OrgName:         asn.String() + " Org",
			Prefixes:        []netip.Prefix{netip.MustParsePrefix(prefix)},
			Facilities:      facs,
			UsesCommunities: comm,
			Granularity:     gran,
		}
		if lon, ok := gw.Resolve("London"); ok {
			a.HomeCity = lon.ID
		}
		w.AddAS(a)
	}
	mkAS(1, "20.1.0.0/24", []colo.FacilityID{fid[0], fid[1]}, colo.PoPFacility, true)
	mkAS(2, "20.2.0.0/24", []colo.FacilityID{fid[0], fid[1]}, colo.PoPFacility, true)
	mkAS(3, "20.3.0.0/24", []colo.FacilityID{fid[2], fid[3]}, colo.PoPFacility, true)
	mkAS(4, "20.4.0.0/24", []colo.FacilityID{fid[2], fid[3]}, colo.PoPFacility, true)
	mkAS(10, "20.10.0.0/24", []colo.FacilityID{fid[0], fid[1], fid[2], fid[3]}, colo.PoPFacility, true)
	w.RegisterRS(64900, ix1)
	w.RegisterRS(64901, ix2)

	// Peering per Figure 2.
	w.Connect(1, 2, topology.RelP2P, topology.PNI, fid[1], 0, 0, 0) // primary AS1-AS2 @ F2
	w.Connect(1, 2, topology.RelP2P, topology.PNI, fid[0], 0, 0, 0) // backup @ F1
	w.Connect(2, 4, topology.RelP2P, topology.PublicBilateral, 0, ix1, fid[1], fid[2])
	w.Connect(3, 4, topology.RelP2P, topology.Multilateral, 0, ix1, fid[2], fid[2])
	w.Connect(3, 4, topology.RelP2P, topology.Multilateral, 0, ix2, fid[3], fid[3])
	// Transit to AS10.
	w.Connect(1, 10, topology.RelC2P, topology.PNI, fid[0], 0, 0, 0)
	w.Connect(2, 10, topology.RelC2P, topology.PNI, fid[0], 0, 0, 0)
	w.Connect(3, 10, topology.RelC2P, topology.PNI, fid[3], 0, 0, 0)
	w.Connect(4, 10, topology.RelC2P, topology.PNI, fid[3], 0, 0, 0)
	w.FinishSchemes()

	return &fig2{
		w: w, f1: fid[0], f2: fid[1], f3: fid[2], f4: fid[3],
		ix1: ix1, ix2: ix2, as1: 1, as2: 2, as3: 3, as4: 4, as10: 10,
	}
}

func TestFig2Baseline(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)

	// AS1 -> AS2 uses the F2 PNI (lowest link ID among equal candidates).
	t2 := e.ComputeOrigin(s.as2, nil)
	r, ok := e.Route(t2, s.as1)
	if !ok {
		t.Fatal("AS1 cannot reach AS2")
	}
	if !r.Path.Equal(bgp.Path{1, 2}) {
		t.Fatalf("AS1->AS2 path = %v", r.Path)
	}
	if r.Links[0].Facility != s.f2 {
		t.Errorf("AS1->AS2 uses facility %d, want F2=%d", r.Links[0].Facility, s.f2)
	}
	// AS1 tags its ingress at F2.
	want := topology.CommunityFor(1, colo.FacilityPoP(s.f2))
	if !r.Communities.Contains(want) {
		t.Errorf("communities %v missing %v", r.Communities, want)
	}

	// AS2 -> AS4: direct peer route via IX1 preferred over transit.
	t4 := e.ComputeOrigin(s.as4, nil)
	r24, ok := e.Route(t4, s.as2)
	if !ok || !r24.Path.Equal(bgp.Path{2, 4}) {
		t.Fatalf("AS2->AS4 = %+v ok=%v", r24, ok)
	}
	if r24.Links[0].IXP != s.ix1 {
		t.Errorf("AS2->AS4 not via IX1")
	}

	// AS3 -> AS4 multilateral via IX1 (preferred over IX2 by link ID) and
	// carries the RS community.
	r34, ok := e.Route(t4, s.as3)
	if !ok || !r34.Path.Equal(bgp.Path{3, 4}) {
		t.Fatalf("AS3->AS4 = %+v", r34)
	}
	if r34.Links[0].IXP != s.ix1 {
		t.Errorf("AS3->AS4 not via IX1: %+v", r34.Links[0])
	}
	rs := bgp.MakeCommunity(64900, topology.RSCommunityLow)
	if !r34.Communities.Contains(rs) {
		t.Errorf("RS community missing: %v", r34.Communities)
	}
}

func TestFig2FacilityOutage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)

	// Figure 2(b): F2 fails. AS1-AS2 moves to the F1 PNI; AS2->AS4 loses
	// its IX1 port (at F2) and falls back to transit via AS10; AS3->AS4
	// keeps IX1 (ports at F3).
	mask := NewMask()
	mask.FailFacility(s.f2)

	t2 := e.ComputeOrigin(s.as2, mask)
	r12, ok := e.Route(t2, s.as1)
	if !ok || !r12.Path.Equal(bgp.Path{1, 2}) {
		t.Fatalf("AS1->AS2 after F2 outage = %+v", r12)
	}
	if r12.Links[0].Facility != s.f1 {
		t.Errorf("AS1->AS2 should use backup F1, got facility %d", r12.Links[0].Facility)
	}
	// The AS path is unchanged but the community changed — the paper's core
	// observation.
	if !r12.Communities.Contains(topology.CommunityFor(1, colo.FacilityPoP(s.f1))) {
		t.Errorf("ingress community did not move to F1: %v", r12.Communities)
	}

	t4 := e.ComputeOrigin(s.as4, mask)
	r24, ok := e.Route(t4, s.as2)
	if !ok {
		t.Fatal("AS2 lost AS4 entirely")
	}
	if !r24.Path.Equal(bgp.Path{2, 10, 4}) {
		t.Errorf("AS2->AS4 after F2 outage = %v, want via AS10", r24.Path)
	}
	r34, ok := e.Route(t4, s.as3)
	if !ok || r34.Links[0].IXP != s.ix1 {
		t.Errorf("AS3->AS4 should keep IX1: %+v", r34)
	}
}

func TestFig2IXPOutage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)

	// Figure 2(c): IX1 fails. AS1-AS2 PNI unaffected; AS2->AS4 to transit;
	// AS3->AS4 fails over to IX2.
	mask := NewMask()
	mask.FailIXP(s.ix1)

	t2 := e.ComputeOrigin(s.as2, mask)
	r12, _ := e.Route(t2, s.as1)
	if r12 == nil || r12.Links[0].Facility != s.f2 {
		t.Errorf("AS1->AS2 should keep F2 PNI: %+v", r12)
	}

	t4 := e.ComputeOrigin(s.as4, mask)
	r24, _ := e.Route(t4, s.as2)
	if r24 == nil || !r24.Path.Equal(bgp.Path{2, 10, 4}) {
		t.Errorf("AS2->AS4 = %+v, want transit", r24)
	}
	r34, _ := e.Route(t4, s.as3)
	if r34 == nil || !r34.Path.Equal(bgp.Path{3, 4}) {
		t.Fatalf("AS3->AS4 = %+v", r34)
	}
	if r34.Links[0].IXP != s.ix2 {
		t.Errorf("AS3->AS4 should fail over to IX2, got IXP %d", r34.Links[0].IXP)
	}
	// AS path identical, physical infrastructure changed: the detection
	// challenge the paper motivates.
}

func TestFig2PortFacilityOutage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)

	// F3 hosts AS4's IX1 port and the AS3/AS4 multilateral ports: failing
	// it kills IX1 peering for those ports while IX1 itself stays up.
	mask := NewMask()
	mask.FailFacility(s.f3)

	t4 := e.ComputeOrigin(s.as4, mask)
	r24, _ := e.Route(t4, s.as2)
	if r24 == nil || !r24.Path.Equal(bgp.Path{2, 10, 4}) {
		t.Errorf("AS2->AS4 = %+v, want transit after port loss", r24)
	}
	r34, _ := e.Route(t4, s.as3)
	if r34 == nil || r34.Links[0].IXP != s.ix2 {
		t.Errorf("AS3->AS4 should use IX2: %+v", r34)
	}
}

func TestFig2ASOutage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	mask := NewMask()
	mask.FailAS(s.as4)
	t4 := e.ComputeOrigin(s.as4, mask)
	if t4.Size() != 0 {
		t.Errorf("failed origin still reachable: %d entries", t4.Size())
	}
	// Other origins unaffected except routes through AS4 (there are none).
	t2 := e.ComputeOrigin(s.as2, mask)
	if !t2.Has(s.as1) || !t2.Has(s.as3) {
		t.Error("unrelated reachability lost")
	}
}

func TestFig2LinkOutage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	// De-peer AS1-AS2 at F2 only (link-level incident).
	var linkID int = -1
	for _, l := range s.w.LinksOf(1) {
		if l.Involves(2) && l.Facility == s.f2 {
			linkID = l.ID
		}
	}
	if linkID < 0 {
		t.Fatal("link not found")
	}
	mask := NewMask()
	mask.FailLink(linkID)
	t2 := e.ComputeOrigin(s.as2, mask)
	r12, _ := e.Route(t2, s.as1)
	if r12 == nil || r12.Links[0].Facility != s.f1 {
		t.Errorf("AS1->AS2 should use F1 after de-peering: %+v", r12)
	}
}

func TestValleyFreeProperty(t *testing.T) {
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := New(w)
	// Sample origins; verify every reconstructed route's class sequence is
	// provider* peer? customer* self (checked via entry classes: walking
	// toward the origin, classes never increase, and ClassPeer appears at
	// most once).
	count := 0
	for i, a := range w.ASes {
		if i%17 != 0 {
			continue
		}
		tbl := e.ComputeOrigin(a.ASN, nil)
		for _, v := range w.ASes {
			r, ok := e.Route(tbl, v.ASN)
			if !ok {
				continue
			}
			count++
			prev := uint8(ClassNone)
			peers := 0
			for _, hop := range r.Path {
				c := tbl.Class(hop)
				if c == ClassNone {
					t.Fatalf("on-path AS %v has no entry", hop)
				}
				if prev != ClassNone && c > prev {
					t.Fatalf("class increased along path %v (origin %v)", r.Path, a.ASN)
				}
				if c == ClassPeer {
					peers++
				}
				prev = c
			}
			if peers > 1 {
				t.Fatalf("path %v crosses %d peer-class hops", r.Path, peers)
			}
			if r.Path.HasLoop() {
				t.Fatalf("loop in path %v", r.Path)
			}
		}
	}
	if count == 0 {
		t.Fatal("no routes checked")
	}
}

func TestGeneratedWorldReachability(t *testing.T) {
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := New(w)
	// Every AS must reach a tier-1 origin (the core is universally visible).
	var tier1 bgp.ASN
	for _, a := range w.ASes {
		if a.Type == topology.Tier1 {
			tier1 = a.ASN
			break
		}
	}
	tbl := e.ComputeOrigin(tier1, nil)
	for _, a := range w.ASes {
		if !tbl.Has(a.ASN) {
			t.Errorf("%v cannot reach tier1 %v", a.ASN, tier1)
		}
	}
}

func TestDeterministicComputation(t *testing.T) {
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := New(w)
	origin := w.ASes[10].ASN
	t1 := e.ComputeOrigin(origin, nil)
	t2 := e.ComputeOrigin(origin, nil)
	for _, a := range w.ASes {
		r1, ok1 := e.Route(t1, a.ASN)
		r2, ok2 := e.Route(t2, a.ASN)
		if ok1 != ok2 {
			t.Fatalf("reachability differs for %v", a.ASN)
		}
		if ok1 && !r1.Equal(r2) {
			t.Fatalf("route differs for %v: %v vs %v", a.ASN, r1.Path, r2.Path)
		}
	}
}

func TestMaskBasics(t *testing.T) {
	m := NewMask()
	if !m.Empty() {
		t.Error("new mask not empty")
	}
	m.FailFacility(3)
	m.FailIXP(2)
	m.FailLink(7)
	m.FailAS(42)
	if m.Empty() {
		t.Error("mask with failures reports empty")
	}
	c := m.Clone()
	m.RestoreFacility(3)
	m.RestoreIXP(2)
	m.RestoreLink(7)
	m.RestoreAS(42)
	if !m.Empty() {
		t.Error("restore incomplete")
	}
	if c.Empty() {
		t.Error("clone shares state with original")
	}
}

func TestMaskFailCity(t *testing.T) {
	s := buildFig2(t)
	gw := geo.DefaultWorld()
	lon, _ := gw.Resolve("London")
	m := NewMask()
	m.FailCity(lon.ID, s.w.Map)
	if !m.Facilities[s.f1] || !m.Facilities[s.f2] {
		t.Error("London facilities not failed")
	}
	if m.Facilities[s.f3] || m.Facilities[s.f4] {
		t.Error("Amsterdam facilities failed")
	}
	if !m.IXPs[s.ix1] {
		t.Error("IX1 (London) not failed")
	}
	if m.IXPs[s.ix2] {
		t.Error("IX2 (Amsterdam) failed")
	}
}

func TestAffectedOriginsAndDiff(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	base := e.ComputeAll(nil)

	// Links housed in F2.
	failedLinks := make(map[int]bool)
	for _, l := range s.w.Links {
		if l.Facility == s.f2 || l.AFac == s.f2 || l.BFac == s.f2 {
			failedLinks[l.ID] = true
		}
	}
	affected := base.AffectedOrigins(failedLinks)
	if len(affected) == 0 {
		t.Fatal("no affected origins for F2 outage")
	}
	// AS2 and AS4 must be among them (AS1->AS2 via F2; AS2->AS4 via IX1@F2).
	hasAS := func(list []bgp.ASN, a bgp.ASN) bool {
		for _, x := range list {
			if x == a {
				return true
			}
		}
		return false
	}
	if !hasAS(affected, s.as2) || !hasAS(affected, s.as4) {
		t.Errorf("affected = %v, want AS2 and AS4", affected)
	}

	mask := NewMask()
	mask.FailFacility(s.f2)
	newT4 := e.ComputeOrigin(s.as4, mask)
	changes := e.DiffTables(base.Tables[s.as4], newT4, []bgp.ASN{s.as1, s.as2, s.as3})
	// AS2's route to AS4 changed; AS3's did not; AS1's route to AS4 goes
	// via AS10 transit in both states.
	foundAS2 := false
	for _, c := range changes {
		if c.Vantage == s.as2 {
			foundAS2 = true
			if c.Old == nil || c.New == nil {
				t.Errorf("AS2 change should be a reroute: %+v", c)
			}
		}
		if c.Vantage == s.as3 {
			t.Errorf("AS3 route should be unchanged: %+v", c)
		}
	}
	if !foundAS2 {
		t.Error("AS2 reroute not detected")
	}
}

func TestDiffWithdrawal(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	old := e.ComputeOrigin(s.as4, nil)
	mask := NewMask()
	mask.FailAS(s.as4)
	gone := e.ComputeOrigin(s.as4, mask)
	changes := e.DiffTables(old, gone, []bgp.ASN{s.as1, s.as2, s.as3})
	if len(changes) != 3 {
		t.Fatalf("changes = %d, want 3 withdrawals", len(changes))
	}
	for _, c := range changes {
		if c.New != nil {
			t.Errorf("expected withdrawal, got %+v", c.New)
		}
	}
}

func TestRouteOnUnknownVantage(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	tbl := e.ComputeOrigin(s.as2, nil)
	if _, ok := e.Route(tbl, 999); ok {
		t.Error("route from unknown vantage succeeded")
	}
	unknown := e.ComputeOrigin(999, nil)
	if unknown.Size() != 0 {
		t.Error("unknown origin produced routes")
	}
}

func TestTableUsesLink(t *testing.T) {
	s := buildFig2(t)
	e := New(s.w)
	tbl := e.ComputeOrigin(s.as2, nil)
	used := false
	for _, l := range s.w.LinksOf(2) {
		if tbl.UsesLink(l.ID) {
			used = true
		}
	}
	if !used {
		t.Error("no link of the origin is used")
	}
	if tbl.UsesLink(99999) {
		t.Error("phantom link used")
	}
}
