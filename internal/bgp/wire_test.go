package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestUpdateRoundTripIPv4(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{mustPrefix("198.0.0.0/16")},
		Announced: []netip.Prefix{mustPrefix("184.84.242.0/24"), mustPrefix("2.21.67.0/24")},
		Attrs: Attributes{
			Origin:      OriginIGP,
			ASPath:      Path{13030, 20940},
			NextHop:     netip.MustParseAddr("192.0.2.1"),
			MED:         50,
			HasMED:      true,
			LocalPref:   200,
			HasLocal:    true,
			Communities: Communities{{13030, 51904}, {13030, 4006}},
		},
	}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, n, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d bytes", n, len(b))
	}
	if !reflect.DeepEqual(got.Announced, u.Announced) {
		t.Errorf("Announced = %v, want %v", got.Announced, u.Announced)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("Withdrawn = %v, want %v", got.Withdrawn, u.Withdrawn)
	}
	if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
		t.Errorf("ASPath = %v", got.Attrs.ASPath)
	}
	if !got.Attrs.Communities.Equal(u.Attrs.Communities) {
		t.Errorf("Communities = %v", got.Attrs.Communities)
	}
	if got.Attrs.MED != 50 || !got.Attrs.HasMED || got.Attrs.LocalPref != 200 || !got.Attrs.HasLocal {
		t.Errorf("MED/LocalPref lost: %+v", got.Attrs)
	}
	if got.Attrs.NextHop != u.Attrs.NextHop {
		t.Errorf("NextHop = %v", got.Attrs.NextHop)
	}
}

func TestUpdateRoundTripIPv6(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{mustPrefix("2001:7f8:1::/48")},
		Announced: []netip.Prefix{mustPrefix("2a02:2e0::/32")},
		Attrs: Attributes{
			Origin:      OriginIGP,
			ASPath:      Path{6695, 3320},
			NextHop:     netip.MustParseAddr("2001:7f8::1"),
			Communities: Communities{{6695, 1000}},
		},
	}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, _, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.Announced) != 1 || got.Announced[0] != u.Announced[0] {
		t.Errorf("Announced = %v", got.Announced)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("Withdrawn = %v", got.Withdrawn)
	}
	if got.Attrs.NextHop != u.Attrs.NextHop {
		t.Errorf("v6 NextHop = %v", got.Attrs.NextHop)
	}
}

func TestUpdatePureWithdrawal(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{mustPrefix("184.84.0.0/16")}}
	b, err := MarshalUpdate(u)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, _, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.Announced) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
	if got.Empty() {
		t.Error("withdrawal-only update should not be Empty")
	}
	if !(&Update{}).Empty() {
		t.Error("zero update should be Empty")
	}
}

func TestMarshalRejectsBadNextHop(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{mustPrefix("184.84.242.0/24")},
		Attrs:     Attributes{ASPath: Path{1}},
	}
	if _, err := MarshalUpdate(u); err == nil {
		t.Error("expected error for missing IPv4 next hop")
	}
	u6 := &Update{
		Announced: []netip.Prefix{mustPrefix("2a02:2e0::/32")},
		Attrs:     Attributes{ASPath: Path{1}, NextHop: netip.MustParseAddr("192.0.2.1")},
	}
	if _, err := MarshalUpdate(u6); err == nil {
		t.Error("expected error for v4 next hop on v6 NLRI")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{mustPrefix("184.84.242.0/24")},
		Attrs: Attributes{
			ASPath:  Path{13030},
			NextHop: netip.MustParseAddr("192.0.2.1"),
		},
	}
	good, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at every byte boundary must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, _, err := UnmarshalUpdate(good[:i]); err == nil {
			t.Errorf("UnmarshalUpdate(truncated at %d) succeeded", i)
		}
	}

	// Corrupt marker.
	bad := append([]byte(nil), good...)
	bad[0] = 0
	if _, _, err := UnmarshalUpdate(bad); err != ErrBadMarker {
		t.Errorf("marker corruption: err = %v", err)
	}

	// Wrong message type.
	bad = append([]byte(nil), good...)
	bad[markerLen+2] = 1 // OPEN
	if _, _, err := UnmarshalUpdate(bad); err != ErrNotUpdate {
		t.Errorf("type corruption: err = %v", err)
	}

	// Absurd declared length.
	bad = append([]byte(nil), good...)
	bad[markerLen] = 0xff
	bad[markerLen+1] = 0xff
	if _, _, err := UnmarshalUpdate(bad); err == nil {
		t.Error("length corruption accepted")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	// The decoder must reject, not panic on, arbitrary garbage.
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		UnmarshalUpdate(buf[:n]) // must not panic
	}
	// Also garbage with a valid header prefix.
	for i := 0; i < 2000; i++ {
		n := headerLen + rng.Intn(200)
		for j := 0; j < markerLen; j++ {
			buf[j] = 0xff
		}
		buf[markerLen] = byte(n >> 8)
		buf[markerLen+1] = byte(n)
		buf[markerLen+2] = msgTypeUpdate
		rng.Read(buf[headerLen:n])
		UnmarshalUpdate(buf[:n]) // must not panic
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any structurally valid IPv4 update round-trips exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := &Update{
			Attrs: Attributes{
				Origin:  Origin(rng.Intn(3)),
				NextHop: netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(255) + 1)}),
			},
		}
		nAnn := rng.Intn(5) + 1
		for i := 0; i < nAnn; i++ {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			p, err := addr.Prefix(bits)
			if err != nil {
				return false
			}
			u.Announced = append(u.Announced, p)
		}
		pathLen := rng.Intn(6) + 1
		for i := 0; i < pathLen; i++ {
			u.Attrs.ASPath = append(u.Attrs.ASPath, ASN(rng.Intn(400000)+1))
		}
		nComm := rng.Intn(6)
		for i := 0; i < nComm; i++ {
			u.Attrs.Communities = append(u.Attrs.Communities, MakeCommunity(uint16(rng.Intn(65536)), uint16(rng.Intn(65536))))
		}
		b, err := MarshalUpdate(u)
		if err != nil {
			return false
		}
		got, n, err := UnmarshalUpdate(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(got.Announced, u.Announced) &&
			got.Attrs.ASPath.Equal(u.Attrs.ASPath) &&
			got.Attrs.Communities.Equal(u.Attrs.Communities) &&
			got.Attrs.Origin == u.Attrs.Origin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBackToBackMessages(t *testing.T) {
	u1 := &Update{Withdrawn: []netip.Prefix{mustPrefix("184.84.0.0/16")}}
	u2 := &Update{Withdrawn: []netip.Prefix{mustPrefix("2.21.0.0/16")}}
	b1, _ := MarshalUpdate(u1)
	b2, _ := MarshalUpdate(u2)
	stream := append(append([]byte(nil), b1...), b2...)

	got1, n1, err := UnmarshalUpdate(stream)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := UnmarshalUpdate(stream[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(stream) {
		t.Errorf("consumed %d bytes of %d", n1+n2, len(stream))
	}
	if got1.Withdrawn[0] != u1.Withdrawn[0] || got2.Withdrawn[0] != u2.Withdrawn[0] {
		t.Error("messages crossed")
	}
}
