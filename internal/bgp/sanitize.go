package bgp

import "net/netip"

// Path sanitation, Section 4.1 of the paper: "Kepler sanitizes the collected
// paths by discarding paths with AS loops, private ASNs, or special-purpose
// ASNs", plus the customary bogon-prefix filter applied by every collector
// pipeline.

// bogons4 are IPv4 prefixes that must never be globally routed
// (RFC 6890 special-purpose registry plus multicast/reserved space).
var bogons4 = []netip.Prefix{
	netip.MustParsePrefix("0.0.0.0/8"),
	netip.MustParsePrefix("10.0.0.0/8"),
	netip.MustParsePrefix("100.64.0.0/10"),
	netip.MustParsePrefix("127.0.0.0/8"),
	netip.MustParsePrefix("169.254.0.0/16"),
	netip.MustParsePrefix("172.16.0.0/12"),
	netip.MustParsePrefix("192.0.0.0/24"),
	netip.MustParsePrefix("192.0.2.0/24"),
	netip.MustParsePrefix("192.168.0.0/16"),
	netip.MustParsePrefix("198.18.0.0/15"),
	netip.MustParsePrefix("198.51.100.0/24"),
	netip.MustParsePrefix("203.0.113.0/24"),
	netip.MustParsePrefix("224.0.0.0/4"),
	netip.MustParsePrefix("240.0.0.0/4"),
}

// bogons6 are the equivalent IPv6 never-route prefixes.
var bogons6 = []netip.Prefix{
	netip.MustParsePrefix("::/8"),
	netip.MustParsePrefix("100::/64"),
	netip.MustParsePrefix("2001:db8::/32"),
	netip.MustParsePrefix("fc00::/7"),
	netip.MustParsePrefix("fe80::/10"),
	netip.MustParsePrefix("ff00::/8"),
}

// IsBogon reports whether the prefix overlaps reserved, private or
// documentation address space and must be discarded by the input module.
func IsBogon(p netip.Prefix) bool {
	if !p.IsValid() {
		return true
	}
	set := bogons4
	if p.Addr().Is6() && !p.Addr().Is4In6() {
		set = bogons6
	}
	for _, b := range set {
		if b.Overlaps(p) {
			return true
		}
	}
	return false
}

// SanitizeError explains why a path or prefix was rejected.
type SanitizeError string

// Error implements the error interface.
func (e SanitizeError) Error() string { return "bgp: sanitize: " + string(e) }

// Rejection reasons returned by Sanitize.
const (
	RejectEmptyPath    SanitizeError = "empty AS path"
	RejectASLoop       SanitizeError = "AS path contains a loop"
	RejectPrivateASN   SanitizeError = "AS path contains a private or special-purpose ASN"
	RejectBogonPrefix  SanitizeError = "bogon prefix"
	RejectDefaultRoute SanitizeError = "default route"
)

// Sanitize validates one announced route (prefix + path) against the input
// module's rules. It returns nil when the route may enter the pipeline.
func Sanitize(prefix netip.Prefix, path Path) error {
	if prefix.Bits() == 0 {
		return RejectDefaultRoute
	}
	if IsBogon(prefix) {
		return RejectBogonPrefix
	}
	if len(path) == 0 {
		return RejectEmptyPath
	}
	if path.ContainsUnroutable() {
		return RejectPrivateASN
	}
	if path.HasLoop() {
		return RejectASLoop
	}
	return nil
}
