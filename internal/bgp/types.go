// Package bgp provides the BGP substrate Kepler is built on: autonomous
// system numbers, prefixes, the communities attribute (RFC 1997), AS paths,
// update/withdraw/state records, a binary wire codec for UPDATE messages
// (RFC 4271 with 4-octet ASNs and RFC 4760 multiprotocol IPv6 NLRI), and the
// path-sanitation rules Kepler's input module applies (AS loops, private and
// special-purpose ASNs, bogon prefixes).
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// ASN is a 4-octet autonomous system number (RFC 6793).
type ASN uint32

// String renders the ASN in the conventional "AS64500" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// IsPrivate reports whether the ASN falls in the 16-bit (64512–65534) or
// 32-bit (4200000000–4294967294) private-use ranges (RFC 6996).
func (a ASN) IsPrivate() bool {
	return (a >= 64512 && a <= 65534) || (a >= 4200000000 && a <= 4294967294)
}

// IsSpecialPurpose reports whether the ASN is reserved or documentation-only
// and must never appear in a sane public AS path: AS0 (RFC 7607), AS23456
// (AS_TRANS, RFC 6793), 64496–64511 and 65536–65551 (documentation,
// RFC 5398), 65535 and 4294967295 (last ASNs, RFC 7300).
func (a ASN) IsSpecialPurpose() bool {
	switch {
	case a == 0, a == 23456, a == 65535, a == 4294967295:
		return true
	case a >= 64496 && a <= 64511:
		return true
	case a >= 65536 && a <= 65551:
		return true
	}
	return false
}

// Routable reports whether the ASN may legitimately appear in a public AS
// path seen at a route collector.
func (a ASN) Routable() bool { return !a.IsPrivate() && !a.IsSpecialPurpose() }

// Community is a classic RFC 1997 BGP community: two 16-bit halves
// conventionally written "High:Low". The high half is, by convention, the
// ASN of the operator that attached the community; the low half is an
// operator-defined value (for Kepler, frequently an ingress-location code).
type Community struct {
	High uint16
	Low  uint16
}

// MakeCommunity assembles a community from its two halves.
func MakeCommunity(high, low uint16) Community { return Community{High: high, Low: low} }

// CommunityFromUint32 splits a packed 32-bit community value.
func CommunityFromUint32(v uint32) Community {
	return Community{High: uint16(v >> 16), Low: uint16(v)}
}

// Uint32 packs the community into its 32-bit wire representation.
func (c Community) Uint32() uint32 { return uint32(c.High)<<16 | uint32(c.Low) }

// ASN returns the operator ASN conventionally encoded in the top 16 bits.
func (c Community) ASN() ASN { return ASN(c.High) }

// String renders the community in "High:Low" notation.
func (c Community) String() string {
	return strconv.Itoa(int(c.High)) + ":" + strconv.Itoa(int(c.Low))
}

// ParseCommunity parses "High:Low" notation. It rejects halves outside
// [0, 65535] and malformed strings.
func ParseCommunity(s string) (Community, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Community{}, fmt.Errorf("bgp: community %q: missing ':'", s)
	}
	hi, err := strconv.ParseUint(s[:i], 10, 16)
	if err != nil {
		return Community{}, fmt.Errorf("bgp: community %q: bad high half: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return Community{}, fmt.Errorf("bgp: community %q: bad low half: %v", s, err)
	}
	return Community{High: uint16(hi), Low: uint16(lo)}, nil
}

// Communities is a set of communities attached to a route. Wire order is
// not semantic; Normalize sorts and deduplicates.
type Communities []Community

// Normalize sorts the set ascending by packed value and removes duplicates,
// in place, returning the (possibly shortened) slice.
func (cs Communities) Normalize() Communities {
	if len(cs) < 2 {
		return cs
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Uint32() < cs[j].Uint32() })
	out := cs[:1]
	for _, c := range cs[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// Contains reports whether the set includes c.
func (cs Communities) Contains(c Community) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// ByASN returns the subset of communities whose high half equals asn,
// preserving order.
func (cs Communities) ByASN(asn ASN) Communities {
	var out Communities
	for _, c := range cs {
		if c.ASN() == asn {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns an independent copy.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	out := make(Communities, len(cs))
	copy(out, cs)
	return out
}

// Equal reports whether two community sets are identical element-wise
// (callers should Normalize first if order is not meaningful).
func (cs Communities) Equal(other Communities) bool {
	if len(cs) != len(other) {
		return false
	}
	for i := range cs {
		if cs[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the set space-separated, e.g. "13030:51904 13030:4006".
func (cs Communities) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Path is an AS path. By BGP convention the leftmost entry (index 0) is the
// most recent hop — the collector's peer — and the rightmost is the
// originating AS.
type Path []ASN

// Origin returns the originating AS (rightmost), or 0 for an empty path.
func (p Path) Origin() ASN {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1]
}

// First returns the collector-adjacent AS (leftmost), or 0 for an empty path.
func (p Path) First() ASN {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// HasLoop reports whether any ASN appears in two non-adjacent positions.
// Adjacent duplicates (path prepending) are legitimate and not loops.
func (p Path) HasLoop() bool {
	seen := make(map[ASN]int, len(p))
	for i, a := range p {
		if j, ok := seen[a]; ok && i-j > 1 {
			return true
		}
		seen[a] = i
	}
	return false
}

// Dedup returns the path with adjacent prepending collapsed
// ("1 2 2 2 3" -> "1 2 3"). The receiver is unmodified; when it contains
// no prepending (the common case) it is returned as-is, without copying.
func (p Path) Dedup() Path {
	if len(p) == 0 {
		return nil
	}
	for i := 1; i < len(p); i++ {
		if p[i] != p[i-1] {
			continue
		}
		out := make(Path, i, len(p))
		copy(out, p[:i])
		for ; i < len(p); i++ {
			if p[i] != p[i-1] {
				out = append(out, p[i])
			}
		}
		return out
	}
	return p
}

// ContainsUnroutable reports whether any hop is a private or
// special-purpose ASN.
func (p Path) ContainsUnroutable() bool {
	for _, a := range p {
		if !a.Routable() {
			return true
		}
	}
	return false
}

// Contains reports whether the path traverses asn.
func (p Path) Contains(asn ASN) bool {
	for _, a := range p {
		if a == asn {
			return true
		}
	}
	return false
}

// Index returns the position of asn in the path, or -1.
func (p Path) Index(asn ASN) int {
	for i, a := range p {
		if a == asn {
			return i
		}
	}
	return -1
}

// Equal reports element-wise equality.
func (p Path) Equal(other Path) bool {
	if len(p) != len(other) {
		return false
	}
	for i := range p {
		if p[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// String renders the path space-separated, most recent hop first.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = strconv.FormatUint(uint64(a), 10)
	}
	return strings.Join(parts, " ")
}

// Origin attribute codes (RFC 4271 §4.3).
type Origin uint8

// Origin values.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String returns the RFC name of the origin code.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	default:
		return "INVALID(" + strconv.Itoa(int(o)) + ")"
	}
}

// Attributes carries the path attributes Kepler consumes.
type Attributes struct {
	Origin      Origin
	ASPath      Path
	NextHop     netip.Addr
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities Communities
}

// Clone returns a deep copy of the attributes.
func (a Attributes) Clone() Attributes {
	out := a
	out.ASPath = a.ASPath.Clone()
	out.Communities = a.Communities.Clone()
	return out
}

// Update is one decoded BGP UPDATE message: any number of withdrawn
// prefixes plus any number of announced prefixes sharing one attribute set.
type Update struct {
	Withdrawn []netip.Prefix
	Announced []netip.Prefix
	Attrs     Attributes
}

// Empty reports whether the update carries neither announcements nor
// withdrawals.
func (u *Update) Empty() bool { return len(u.Withdrawn) == 0 && len(u.Announced) == 0 }
