package bgp

import (
	"testing"
	"testing/quick"
)

func TestASNClassification(t *testing.T) {
	cases := []struct {
		asn     ASN
		private bool
		special bool
	}{
		{0, false, true},
		{3356, false, false},
		{13030, false, false},
		{23456, false, true},
		{64495, false, false},
		{64496, false, true},
		{64511, false, true},
		{64512, true, false},
		{65534, true, false},
		{65535, false, true},
		{65536, false, true},
		{65551, false, true},
		{65552, false, false},
		{4199999999, false, false},
		{4200000000, true, false},
		{4294967294, true, false},
		{4294967295, false, true},
	}
	for _, c := range cases {
		if got := c.asn.IsPrivate(); got != c.private {
			t.Errorf("%v.IsPrivate() = %v, want %v", c.asn, got, c.private)
		}
		if got := c.asn.IsSpecialPurpose(); got != c.special {
			t.Errorf("%v.IsSpecialPurpose() = %v, want %v", c.asn, got, c.special)
		}
		if got := c.asn.Routable(); got != (!c.private && !c.special) {
			t.Errorf("%v.Routable() = %v", c.asn, got)
		}
	}
}

func TestCommunityRoundTrip(t *testing.T) {
	f := func(hi, lo uint16) bool {
		c := MakeCommunity(hi, lo)
		if CommunityFromUint32(c.Uint32()) != c {
			return false
		}
		parsed, err := ParseCommunity(c.String())
		return err == nil && parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "13030", "13030:", ":42", "70000:1", "1:70000", "a:b", "1:2:3"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q) unexpectedly succeeded", s)
		}
	}
	c, err := ParseCommunity("13030:51904")
	if err != nil || c.High != 13030 || c.Low != 51904 {
		t.Errorf("ParseCommunity(13030:51904) = %v, %v", c, err)
	}
	if c.ASN() != 13030 {
		t.Errorf("ASN() = %v", c.ASN())
	}
}

func TestCommunitiesNormalize(t *testing.T) {
	cs := Communities{{2, 2}, {1, 1}, {2, 2}, {1, 1}, {3, 3}}
	got := cs.Normalize()
	want := Communities{{1, 1}, {2, 2}, {3, 3}}
	if !got.Equal(want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
	// Idempotent, nil-safe, single-element safe.
	if !got.Normalize().Equal(want) {
		t.Error("Normalize not idempotent")
	}
	var empty Communities
	if empty.Normalize() != nil {
		t.Error("nil Normalize should stay nil")
	}
}

func TestCommunitiesQueries(t *testing.T) {
	cs := Communities{{13030, 51904}, {13030, 4006}, {2914, 410}}
	if !cs.Contains(Community{2914, 410}) {
		t.Error("Contains failed")
	}
	if cs.Contains(Community{2914, 411}) {
		t.Error("Contains false positive")
	}
	sub := cs.ByASN(13030)
	if len(sub) != 2 {
		t.Errorf("ByASN returned %d communities, want 2", len(sub))
	}
	clone := cs.Clone()
	clone[0] = Community{1, 1}
	if cs[0] == clone[0] {
		t.Error("Clone is not independent")
	}
	if got := cs.String(); got != "13030:51904 13030:4006 2914:410" {
		t.Errorf("String = %q", got)
	}
}

func TestPathBasics(t *testing.T) {
	p := Path{3356, 13030, 20940}
	if p.First() != 3356 || p.Origin() != 20940 {
		t.Errorf("First/Origin = %v/%v", p.First(), p.Origin())
	}
	var empty Path
	if empty.First() != 0 || empty.Origin() != 0 {
		t.Error("empty path First/Origin should be 0")
	}
	if p.Index(13030) != 1 || p.Index(1) != -1 {
		t.Error("Index wrong")
	}
	if !p.Contains(20940) || p.Contains(9) {
		t.Error("Contains wrong")
	}
	if p.String() != "3356 13030 20940" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPathLoops(t *testing.T) {
	cases := []struct {
		p    Path
		loop bool
	}{
		{Path{1, 2, 3}, false},
		{Path{1, 2, 2, 3}, false},       // prepending, not a loop
		{Path{1, 2, 2, 2, 2, 3}, false}, // heavy prepending
		{Path{1, 2, 3, 2}, true},        // genuine loop
		{Path{1, 2, 1}, true},           // collector peer loop
		{Path{7, 7, 7}, false},          // pure prepend
		{Path{1, 2, 3, 4, 5, 1}, true},  // long loop
		{nil, false},
	}
	for _, c := range cases {
		if got := c.p.HasLoop(); got != c.loop {
			t.Errorf("HasLoop(%v) = %v, want %v", c.p, got, c.loop)
		}
	}
}

func TestPathDedup(t *testing.T) {
	p := Path{1, 2, 2, 2, 3, 3, 4}
	if got := p.Dedup(); !got.Equal(Path{1, 2, 3, 4}) {
		t.Errorf("Dedup = %v", got)
	}
	if len(p) != 7 {
		t.Error("Dedup mutated receiver")
	}
	var empty Path
	if empty.Dedup() != nil {
		t.Error("Dedup(nil) should be nil")
	}
}

func TestPathDedupNeverLongerProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = ASN(v % 8) // force duplicates
		}
		d := p.Dedup()
		if len(d) > len(p) {
			return false
		}
		// No adjacent duplicates may remain.
		for i := 1; i < len(d); i++ {
			if d[i] == d[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathCloneIndependent(t *testing.T) {
	p := Path{1, 2, 3}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if Path(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "INCOMPLETE" {
		t.Error("origin names wrong")
	}
	if Origin(9).String() != "INVALID(9)" {
		t.Errorf("invalid origin = %q", Origin(9).String())
	}
}

func TestAttributesClone(t *testing.T) {
	a := Attributes{
		ASPath:      Path{1, 2},
		Communities: Communities{{1, 2}},
	}
	c := a.Clone()
	c.ASPath[0] = 9
	c.Communities[0] = Community{9, 9}
	if a.ASPath[0] != 1 || a.Communities[0].High != 1 {
		t.Error("Attributes.Clone is shallow")
	}
}
