package bgp

import (
	"net/netip"
	"testing"
)

func TestIsBogon(t *testing.T) {
	cases := []struct {
		prefix string
		bogon  bool
	}{
		{"10.0.0.0/8", true},
		{"10.1.2.0/24", true},
		{"192.168.1.0/24", true},
		{"172.20.0.0/16", true},
		{"172.32.0.0/16", false},
		{"8.8.8.0/24", false},
		{"184.84.242.0/24", false},
		{"224.1.0.0/16", true},
		{"240.0.0.0/8", true},
		{"0.0.0.0/32", true},
		{"100.64.0.0/10", true},
		{"100.128.0.0/10", false},
		{"2001:db8::/32", true},
		{"fe80::/10", true},
		{"fc00::/7", true},
		{"2a02:2e0::/32", false},
		{"ff02::/16", true},
	}
	for _, c := range cases {
		if got := IsBogon(netip.MustParsePrefix(c.prefix)); got != c.bogon {
			t.Errorf("IsBogon(%s) = %v, want %v", c.prefix, got, c.bogon)
		}
	}
	if !IsBogon(netip.Prefix{}) {
		t.Error("invalid prefix should be bogon")
	}
}

func TestSanitize(t *testing.T) {
	good := netip.MustParsePrefix("184.84.242.0/24")
	cases := []struct {
		name   string
		prefix netip.Prefix
		path   Path
		want   error
	}{
		{"clean", good, Path{3356, 13030, 20940}, nil},
		{"prepended", good, Path{3356, 13030, 13030, 20940}, nil},
		{"empty path", good, nil, RejectEmptyPath},
		{"loop", good, Path{3356, 13030, 3356}, RejectASLoop},
		{"private asn", good, Path{3356, 64512, 20940}, RejectPrivateASN},
		{"special asn", good, Path{3356, 23456, 20940}, RejectPrivateASN},
		{"as0", good, Path{0, 13030}, RejectPrivateASN},
		{"bogon", netip.MustParsePrefix("10.0.0.0/8"), Path{3356}, RejectBogonPrefix},
		{"default route", netip.MustParsePrefix("0.0.0.0/0"), Path{3356}, RejectDefaultRoute},
	}
	for _, c := range cases {
		if got := Sanitize(c.prefix, c.path); got != c.want {
			t.Errorf("%s: Sanitize = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSanitizeErrorMessage(t *testing.T) {
	if RejectASLoop.Error() == "" {
		t.Error("empty error message")
	}
}
