package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Wire codec for BGP UPDATE messages, RFC 4271 §4.3, with two widely
// deployed extensions: 4-octet AS numbers carried natively in AS_PATH
// (RFC 6793 "NEW_AS_PATH everywhere" form, as modern collectors emit) and
// IPv6 NLRI via MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760).
//
// The codec is deliberately strict on decode: malformed attribute lengths,
// truncated NLRI and unknown mandatory fields are errors, because Kepler's
// input module must distinguish feed corruption from routing dynamics.

// Message header constants (RFC 4271 §4.1).
const (
	markerLen     = 16
	headerLen     = markerLen + 2 + 1 // marker + length + type
	maxMessageLen = 4096

	msgTypeUpdate = 2
)

// Path-attribute type codes.
const (
	attrOrigin          = 1
	attrASPath          = 2
	attrNextHop         = 3
	attrMED             = 4
	attrLocalPref       = 5
	attrCommunities     = 8
	attrMPReachNLRI     = 14
	attrMPUnreachNLRI   = 15
	attrLargeCommunity  = 32 // recognised and skipped
	flagOptional        = 0x80
	flagTransitive      = 0x40
	flagExtendedLength  = 0x10
	segTypeASSet        = 1
	segTypeASSequence   = 2
	afiIPv6             = 2
	safiUnicast         = 1
	maxASPathSegmentLen = 255
)

// Codec errors.
var (
	ErrTruncated   = errors.New("bgp: truncated message")
	ErrBadMarker   = errors.New("bgp: bad message marker")
	ErrBadLength   = errors.New("bgp: bad message length")
	ErrNotUpdate   = errors.New("bgp: not an UPDATE message")
	ErrBadAttr     = errors.New("bgp: malformed path attribute")
	ErrBadNLRI     = errors.New("bgp: malformed NLRI")
	ErrTooLarge    = errors.New("bgp: message exceeds 4096 bytes")
	ErrMixedFamily = errors.New("bgp: IPv4 and IPv6 prefixes mixed in one family field")
)

// MarshalUpdate encodes an Update into a full BGP message (header
// included). IPv4 announcements ride the classic NLRI field; IPv6
// announcements and withdrawals are encoded as MP_REACH_NLRI /
// MP_UNREACH_NLRI attributes. An update may carry either family but the
// encoder rejects mixing families within the same announcement set, which
// mirrors how collectors emit records.
func MarshalUpdate(u *Update) ([]byte, error) {
	v4Ann, v6Ann, err := splitFamily(u.Announced)
	if err != nil {
		return nil, err
	}
	v4Wdr, v6Wdr, err := splitFamily(u.Withdrawn)
	if err != nil {
		return nil, err
	}

	body := make([]byte, 0, 256)

	// Withdrawn routes (IPv4 only here).
	wdr := encodePrefixes(nil, v4Wdr)
	if len(wdr) > 0xffff {
		return nil, ErrTooLarge
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(wdr)))
	body = append(body, wdr...)

	// Path attributes.
	attrs, err := marshalAttrs(&u.Attrs, v4Ann, v6Ann, v6Wdr)
	if err != nil {
		return nil, err
	}
	if len(attrs) > 0xffff {
		return nil, ErrTooLarge
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)

	// Classic NLRI (IPv4).
	body = encodePrefixes(body, v4Ann)

	total := headerLen + len(body)
	if total > maxMessageLen {
		return nil, ErrTooLarge
	}
	msg := make([]byte, headerLen, total)
	for i := 0; i < markerLen; i++ {
		msg[i] = 0xff
	}
	binary.BigEndian.PutUint16(msg[markerLen:], uint16(total))
	msg[markerLen+2] = msgTypeUpdate
	return append(msg, body...), nil
}

// UnmarshalUpdate decodes a full BGP message produced by MarshalUpdate (or
// any conforming peer). It returns the decoded update and the number of
// bytes consumed, allowing streams of back-to-back messages.
func UnmarshalUpdate(b []byte) (*Update, int, error) {
	if len(b) < headerLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xff {
			return nil, 0, ErrBadMarker
		}
	}
	total := int(binary.BigEndian.Uint16(b[markerLen:]))
	if total < headerLen || total > maxMessageLen {
		return nil, 0, ErrBadLength
	}
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	if b[markerLen+2] != msgTypeUpdate {
		return nil, 0, ErrNotUpdate
	}
	body := b[headerLen:total]
	u := &Update{}

	if len(body) < 2 {
		return nil, 0, ErrTruncated
	}
	wdrLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < wdrLen {
		return nil, 0, ErrTruncated
	}
	var err error
	u.Withdrawn, err = decodePrefixes(body[:wdrLen], false)
	if err != nil {
		return nil, 0, err
	}
	body = body[wdrLen:]

	if len(body) < 2 {
		return nil, 0, ErrTruncated
	}
	attrLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < attrLen {
		return nil, 0, ErrTruncated
	}
	v6Ann, v6Wdr, err := unmarshalAttrs(body[:attrLen], &u.Attrs)
	if err != nil {
		return nil, 0, err
	}
	body = body[attrLen:]

	u.Announced, err = decodePrefixes(body, false)
	if err != nil {
		return nil, 0, err
	}
	u.Announced = append(u.Announced, v6Ann...)
	u.Withdrawn = append(u.Withdrawn, v6Wdr...)
	return u, total, nil
}

func splitFamily(prefixes []netip.Prefix) (v4, v6 []netip.Prefix, err error) {
	for _, p := range prefixes {
		if !p.IsValid() {
			return nil, nil, fmt.Errorf("%w: invalid prefix %v", ErrBadNLRI, p)
		}
		if p.Addr().Is4() {
			v4 = append(v4, p)
		} else {
			v6 = append(v6, p)
		}
	}
	return v4, v6, nil
}

func marshalAttrs(a *Attributes, v4Ann, v6Ann, v6Wdr []netip.Prefix) ([]byte, error) {
	out := make([]byte, 0, 128)

	appendAttr := func(flags, code byte, val []byte) error {
		if len(val) > 255 {
			flags |= flagExtendedLength
		}
		out = append(out, flags, code)
		if flags&flagExtendedLength != 0 {
			if len(val) > 0xffff {
				return ErrTooLarge
			}
			out = binary.BigEndian.AppendUint16(out, uint16(len(val)))
		} else {
			out = append(out, byte(len(val)))
		}
		out = append(out, val...)
		return nil
	}

	// ORIGIN — mandatory when anything is announced.
	if len(v4Ann) > 0 || len(v6Ann) > 0 {
		if err := appendAttr(flagTransitive, attrOrigin, []byte{byte(a.Origin)}); err != nil {
			return nil, err
		}
		// AS_PATH as one AS_SEQUENCE segment of 4-octet ASNs.
		if len(a.ASPath) > maxASPathSegmentLen {
			return nil, fmt.Errorf("%w: AS path longer than %d", ErrBadAttr, maxASPathSegmentLen)
		}
		seg := make([]byte, 2+4*len(a.ASPath))
		seg[0] = segTypeASSequence
		seg[1] = byte(len(a.ASPath))
		for i, asn := range a.ASPath {
			binary.BigEndian.PutUint32(seg[2+4*i:], uint32(asn))
		}
		if err := appendAttr(flagTransitive, attrASPath, seg); err != nil {
			return nil, err
		}
	}
	// NEXT_HOP — required for classic IPv4 NLRI.
	if len(v4Ann) > 0 {
		nh := a.NextHop
		if !nh.IsValid() || !nh.Is4() {
			return nil, fmt.Errorf("%w: IPv4 NLRI requires an IPv4 next hop", ErrBadAttr)
		}
		b := nh.As4()
		if err := appendAttr(flagTransitive, attrNextHop, b[:]); err != nil {
			return nil, err
		}
	}
	if a.HasMED {
		if err := appendAttr(flagOptional, attrMED, binary.BigEndian.AppendUint32(nil, a.MED)); err != nil {
			return nil, err
		}
	}
	if a.HasLocal {
		if err := appendAttr(flagTransitive, attrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref)); err != nil {
			return nil, err
		}
	}
	if len(a.Communities) > 0 {
		val := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			val = binary.BigEndian.AppendUint32(val, c.Uint32())
		}
		if err := appendAttr(flagOptional|flagTransitive, attrCommunities, val); err != nil {
			return nil, err
		}
	}
	if len(v6Ann) > 0 {
		nh := a.NextHop
		if !nh.IsValid() || !nh.Is6() || nh.Is4In6() {
			return nil, fmt.Errorf("%w: IPv6 NLRI requires an IPv6 next hop", ErrBadAttr)
		}
		val := make([]byte, 0, 32)
		val = binary.BigEndian.AppendUint16(val, afiIPv6)
		val = append(val, safiUnicast)
		nhb := nh.As16()
		val = append(val, 16)
		val = append(val, nhb[:]...)
		val = append(val, 0) // reserved SNPA count
		val = encodePrefixes(val, v6Ann)
		if err := appendAttr(flagOptional, attrMPReachNLRI, val); err != nil {
			return nil, err
		}
	}
	if len(v6Wdr) > 0 {
		val := make([]byte, 0, 16)
		val = binary.BigEndian.AppendUint16(val, afiIPv6)
		val = append(val, safiUnicast)
		val = encodePrefixes(val, v6Wdr)
		if err := appendAttr(flagOptional, attrMPUnreachNLRI, val); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func unmarshalAttrs(b []byte, a *Attributes) (v6Ann, v6Wdr []netip.Prefix, err error) {
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, nil, ErrBadAttr
		}
		flags, code := b[0], b[1]
		var alen int
		if flags&flagExtendedLength != 0 {
			if len(b) < 4 {
				return nil, nil, ErrBadAttr
			}
			alen = int(binary.BigEndian.Uint16(b[2:]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return nil, nil, ErrBadAttr
		}
		val := b[:alen]
		b = b[alen:]

		switch code {
		case attrOrigin:
			if alen != 1 {
				return nil, nil, fmt.Errorf("%w: ORIGIN length %d", ErrBadAttr, alen)
			}
			a.Origin = Origin(val[0])
		case attrASPath:
			p, err := decodeASPath(val)
			if err != nil {
				return nil, nil, err
			}
			a.ASPath = p
		case attrNextHop:
			if alen != 4 {
				return nil, nil, fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttr, alen)
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		case attrMED:
			if alen != 4 {
				return nil, nil, fmt.Errorf("%w: MED length %d", ErrBadAttr, alen)
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case attrLocalPref:
			if alen != 4 {
				return nil, nil, fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttr, alen)
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocal = true
		case attrCommunities:
			if alen%4 != 0 {
				return nil, nil, fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttr, alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, CommunityFromUint32(binary.BigEndian.Uint32(val[i:])))
			}
		case attrMPReachNLRI:
			ann, nh, err := decodeMPReach(val)
			if err != nil {
				return nil, nil, err
			}
			v6Ann = append(v6Ann, ann...)
			if !a.NextHop.IsValid() {
				a.NextHop = nh
			}
		case attrMPUnreachNLRI:
			wdr, err := decodeMPUnreach(val)
			if err != nil {
				return nil, nil, err
			}
			v6Wdr = append(v6Wdr, wdr...)
		default:
			// Unknown optional attributes (incl. large communities) are
			// skipped; unknown well-known attributes are a decode error.
			if flags&flagOptional == 0 {
				return nil, nil, fmt.Errorf("%w: unknown well-known attribute %d", ErrBadAttr, code)
			}
		}
	}
	return v6Ann, v6Wdr, nil
}

func decodeASPath(val []byte) (Path, error) {
	var p Path
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadAttr)
		}
		segType, n := val[0], int(val[1])
		val = val[2:]
		if len(val) < 4*n {
			return nil, fmt.Errorf("%w: truncated AS_PATH segment", ErrBadAttr)
		}
		switch segType {
		case segTypeASSequence, segTypeASSet:
			for i := 0; i < n; i++ {
				p = append(p, ASN(binary.BigEndian.Uint32(val[4*i:])))
			}
		default:
			return nil, fmt.Errorf("%w: AS_PATH segment type %d", ErrBadAttr, segType)
		}
		val = val[4*n:]
	}
	return p, nil
}

func decodeMPReach(val []byte) ([]netip.Prefix, netip.Addr, error) {
	if len(val) < 5 {
		return nil, netip.Addr{}, fmt.Errorf("%w: short MP_REACH_NLRI", ErrBadAttr)
	}
	afi := binary.BigEndian.Uint16(val)
	safi := val[2]
	nhLen := int(val[3])
	val = val[4:]
	if afi != afiIPv6 || safi != safiUnicast {
		return nil, netip.Addr{}, fmt.Errorf("%w: unsupported AFI/SAFI %d/%d", ErrBadAttr, afi, safi)
	}
	if len(val) < nhLen+1 {
		return nil, netip.Addr{}, fmt.Errorf("%w: truncated MP next hop", ErrBadAttr)
	}
	var nh netip.Addr
	if nhLen >= 16 {
		nh = netip.AddrFrom16([16]byte(val[:16]))
	}
	val = val[nhLen:]
	snpa := int(val[0])
	val = val[1:]
	// Skip SNPA blocks (deprecated, always zero in practice).
	for i := 0; i < snpa; i++ {
		if len(val) < 1 {
			return nil, netip.Addr{}, fmt.Errorf("%w: truncated SNPA", ErrBadAttr)
		}
		l := int(val[0])
		if len(val) < 1+l {
			return nil, netip.Addr{}, fmt.Errorf("%w: truncated SNPA body", ErrBadAttr)
		}
		val = val[1+l:]
	}
	ann, err := decodePrefixes(val, true)
	return ann, nh, err
}

func decodeMPUnreach(val []byte) ([]netip.Prefix, error) {
	if len(val) < 3 {
		return nil, fmt.Errorf("%w: short MP_UNREACH_NLRI", ErrBadAttr)
	}
	afi := binary.BigEndian.Uint16(val)
	safi := val[2]
	if afi != afiIPv6 || safi != safiUnicast {
		return nil, fmt.Errorf("%w: unsupported AFI/SAFI %d/%d", ErrBadAttr, afi, safi)
	}
	return decodePrefixes(val[3:], true)
}

// encodePrefixes appends RFC 4271 NLRI encodings (length byte + minimal
// octets) of the prefixes to dst.
func encodePrefixes(dst []byte, prefixes []netip.Prefix) []byte {
	for _, p := range prefixes {
		bits := p.Bits()
		dst = append(dst, byte(bits))
		nbytes := (bits + 7) / 8
		if p.Addr().Is4() {
			b := p.Addr().As4()
			dst = append(dst, b[:nbytes]...)
		} else {
			b := p.Addr().As16()
			dst = append(dst, b[:nbytes]...)
		}
	}
	return dst
}

// decodePrefixes parses a packed NLRI field. v6 selects the address family
// (classic fields are IPv4; MP attributes carry IPv6 here).
func decodePrefixes(b []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	for len(b) > 0 {
		bits := int(b[0])
		b = b[1:]
		if bits > maxBits {
			return nil, fmt.Errorf("%w: prefix length %d exceeds %d", ErrBadNLRI, bits, maxBits)
		}
		nbytes := (bits + 7) / 8
		if len(b) < nbytes {
			return nil, fmt.Errorf("%w: truncated prefix body", ErrBadNLRI)
		}
		var addr netip.Addr
		if v6 {
			var buf [16]byte
			copy(buf[:], b[:nbytes])
			addr = netip.AddrFrom16(buf)
		} else {
			var buf [4]byte
			copy(buf[:], b[:nbytes])
			addr = netip.AddrFrom4(buf)
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNLRI, err)
		}
		out = append(out, p)
		b = b[nbytes:]
	}
	return out, nil
}
