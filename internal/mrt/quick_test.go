package mrt

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"kepler/internal/bgp"
)

// randomRecord derives a structurally valid record from a seed.
func randomRecord(rng *rand.Rand) *Record {
	at := time.Unix(rng.Int63n(1<<32), int64(rng.Intn(1e6))*1000).UTC()
	collector := []string{"rrc00", "rrc01", "route-views2"}[rng.Intn(3)]
	peer := bgp.ASN(rng.Intn(400000) + 1)
	switch rng.Intn(3) {
	case 0:
		return &Record{
			Time: at, Kind: KindState, Collector: collector, PeerAS: peer,
			PeerAddr: netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(255) + 1)}),
			OldState: SessionState(rng.Intn(6) + 1), NewState: SessionState(rng.Intn(6) + 1),
		}
	default:
		u := &bgp.Update{}
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(200) + 20), byte(rng.Intn(256)), 0, 0})
			p, _ := addr.Prefix(rng.Intn(17) + 8)
			if rng.Intn(2) == 0 {
				u.Withdrawn = append(u.Withdrawn, p)
			} else {
				u.Announced = append(u.Announced, p)
			}
		}
		if len(u.Announced) > 0 {
			u.Attrs.NextHop = netip.AddrFrom4([4]byte{192, 0, 2, 1})
			hops := rng.Intn(5) + 1
			for i := 0; i < hops; i++ {
				u.Attrs.ASPath = append(u.Attrs.ASPath, bgp.ASN(rng.Intn(400000)+1))
			}
			for i := 0; i < rng.Intn(4); i++ {
				u.Attrs.Communities = append(u.Attrs.Communities,
					bgp.MakeCommunity(uint16(rng.Intn(65536)), uint16(rng.Intn(65536))))
			}
		}
		kind := KindUpdate
		if rng.Intn(2) == 0 && len(u.Announced) > 0 {
			kind = KindRIB
		}
		return &Record{
			Time: at, Kind: kind, Collector: collector, PeerAS: peer,
			PeerAddr: netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(255) + 1)}),
			Update:   u,
		}
	}
}

// TestQuickRoundTrip: any sequence of structurally valid records survives
// an archive round trip byte-for-byte in content.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%32) + 1
		in := make([]*Record, n)
		for i := range in {
			in[i] = randomRecord(rng)
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, in); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			a, b := in[i], out[i]
			if !a.Time.Equal(b.Time) || a.Kind != b.Kind || a.Collector != b.Collector ||
				a.PeerAS != b.PeerAS || a.PeerAddr != b.PeerAddr {
				return false
			}
			if a.Kind == KindState && (a.OldState != b.OldState || a.NewState != b.NewState) {
				return false
			}
			if a.Update != nil {
				if len(a.Update.Announced) != len(b.Update.Announced) ||
					len(a.Update.Withdrawn) != len(b.Update.Withdrawn) {
					return false
				}
				if !a.Update.Attrs.ASPath.Equal(b.Update.Attrs.ASPath) {
					return false
				}
				if !a.Update.Attrs.Communities.Equal(b.Update.Attrs.Communities) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
