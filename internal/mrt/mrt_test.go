package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"kepler/internal/bgp"
)

func sampleRecords() []*Record {
	t0 := time.Date(2015, 5, 13, 8, 22, 0, 0, time.UTC)
	return []*Record{
		{
			Time:      t0,
			Kind:      KindRIB,
			Collector: "rrc00",
			PeerAS:    13030,
			PeerAddr:  netip.MustParseAddr("192.0.2.1"),
			Update: &bgp.Update{
				Announced: []netip.Prefix{netip.MustParsePrefix("184.84.242.0/24")},
				Attrs: bgp.Attributes{
					ASPath:      bgp.Path{13030, 20940},
					NextHop:     netip.MustParseAddr("192.0.2.1"),
					Communities: bgp.Communities{bgp.MakeCommunity(13030, 51904)},
				},
			},
		},
		{
			Time:      t0.Add(90 * time.Second),
			Kind:      KindUpdate,
			Collector: "route-views2",
			PeerAS:    6695,
			PeerAddr:  netip.MustParseAddr("2001:7f8::1"),
			Update: &bgp.Update{
				Withdrawn: []netip.Prefix{netip.MustParsePrefix("184.84.242.0/24")},
			},
		},
		{
			Time:      t0.Add(2 * time.Minute),
			Kind:      KindState,
			Collector: "rrc03",
			PeerAS:    1273,
			PeerAddr:  netip.MustParseAddr("192.0.2.9"),
			OldState:  StateEstablished,
			NewState:  StateIdle,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		w, g := recs[i], got[i]
		if !g.Time.Equal(w.Time) {
			t.Errorf("record %d time = %v, want %v", i, g.Time, w.Time)
		}
		if g.Kind != w.Kind || g.Collector != w.Collector || g.PeerAS != w.PeerAS || g.PeerAddr != w.PeerAddr {
			t.Errorf("record %d header = %+v, want %+v", i, g, w)
		}
	}
	if got[0].Update == nil || got[0].Update.Attrs.Communities.String() != "13030:51904" {
		t.Errorf("RIB payload lost: %+v", got[0].Update)
	}
	if got[1].Update == nil || len(got[1].Update.Withdrawn) != 1 {
		t.Errorf("update payload lost: %+v", got[1].Update)
	}
	if got[2].OldState != StateEstablished || got[2].NewState != StateIdle {
		t.Errorf("state payload lost: %+v", got[2])
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAll(empty) = %v, %v", got, err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadAll(bytes.NewReader([]byte("NOTMRT....")))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xff, 0xff})
	_, err := ReadAll(&buf)
	if err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must either yield fewer records or an error —
	// never a panic or phantom record.
	for i := 7; i < len(full); i += 11 {
		recs, err := ReadAll(bytes.NewReader(full[:i]))
		if err == nil && len(recs) >= 3 {
			t.Errorf("truncated stream at %d produced all records", i)
		}
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteRecord(&Record{Kind: KindUpdate}); err == nil {
		t.Error("update without payload accepted")
	}
	if err := w.WriteRecord(&Record{Kind: KindInvalid}); err == nil {
		t.Error("invalid kind accepted")
	}
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if err := w.WriteRecord(&Record{
		Kind:      KindState,
		Collector: string(long),
		OldState:  StateIdle, NewState: StateConnect,
	}); err == nil {
		t.Error("over-long collector name accepted")
	}
}

func TestRecordClone(t *testing.T) {
	r := sampleRecords()[0]
	c := r.Clone()
	c.Update.Announced[0] = netip.MustParsePrefix("198.51.100.0/24")
	c.Update.Attrs.ASPath[0] = 9999
	if r.Update.Announced[0] != netip.MustParsePrefix("184.84.242.0/24") {
		t.Error("Clone shares Announced")
	}
	if r.Update.Attrs.ASPath[0] != 13030 {
		t.Error("Clone shares ASPath")
	}
	s := sampleRecords()[2]
	if sc := s.Clone(); sc.NewState != s.NewState {
		t.Error("state clone wrong")
	}
}

func TestKindAndStateStrings(t *testing.T) {
	if KindRIB.String() != "RIB" || KindUpdate.String() != "UPDATE" || KindState.String() != "STATE" {
		t.Error("kind names wrong")
	}
	if KindInvalid.String() != "INVALID" {
		t.Error("invalid kind name wrong")
	}
	if StateEstablished.String() != "Established" || StateIdle.String() != "Idle" {
		t.Error("state names wrong")
	}
	if SessionState(99).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestLargeArchive(t *testing.T) {
	// Exercise buffered IO across many records.
	t0 := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	var recs []*Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, &Record{
			Time:      t0.Add(time.Duration(i) * time.Second),
			Kind:      KindUpdate,
			Collector: "rrc00",
			PeerAS:    bgp.ASN(3356),
			PeerAddr:  netip.MustParseAddr("192.0.2.1"),
			Update: &bgp.Update{
				Announced: []netip.Prefix{netip.MustParsePrefix("184.84.242.0/24")},
				Attrs: bgp.Attributes{
					ASPath:  bgp.Path{3356, bgp.ASN(i%1000 + 1)},
					NextHop: netip.MustParseAddr("192.0.2.1"),
				},
			},
		})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d, want %d", len(got), len(recs))
	}
	// Timestamps must be strictly increasing as written.
	for i := 1; i < len(got); i++ {
		if !got[i].Time.After(got[i-1].Time) {
			t.Fatalf("timestamps out of order at %d", i)
		}
	}
}
