// Package mrt implements a binary archive format for routing data, modelled
// on the MRT export format (RFC 6396) that RouteViews and RIPE RIS publish
// and that BGPStream consumes. Archives hold three record kinds: RIB
// snapshot entries (TABLE_DUMP-style), BGP UPDATE messages (BGP4MP-style,
// embedding the full RFC 4271 wire encoding from package bgp) and BGP
// session state changes. Records carry microsecond timestamps, the collector
// name, and peer identity, which is everything Kepler's stream layer needs
// to merge and order multi-collector feeds.
//
// Layout:
//
//	file   := magic version record*
//	magic  := "MRTL" (4 bytes)                 version := uint16 (=1)
//	record := tsMicro(uint64) kind(uint8) peerAS(uint32)
//	          peerAddr(1+16 bytes: family tag + address)
//	          collector(uint8 len + bytes)
//	          bodyLen(uint32) body
//
// Update and RIB bodies are full BGP UPDATE messages; State bodies are two
// uint8 FSM states. All integers are big-endian.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"kepler/internal/bgp"
)

// RecordKind distinguishes the archive record types.
type RecordKind uint8

// Record kinds.
const (
	KindInvalid RecordKind = iota
	KindRIB                // a snapshot entry: one prefix + attributes from one peer
	KindUpdate             // a live UPDATE message
	KindState              // a BGP FSM transition on a collector session
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case KindRIB:
		return "RIB"
	case KindUpdate:
		return "UPDATE"
	case KindState:
		return "STATE"
	default:
		return "INVALID"
	}
}

// SessionState is a BGP finite-state-machine state (RFC 4271 §8.2.2).
type SessionState uint8

// FSM states.
const (
	StateIdle        SessionState = 1
	StateConnect     SessionState = 2
	StateActive      SessionState = 3
	StateOpenSent    SessionState = 4
	StateOpenConfirm SessionState = 5
	StateEstablished SessionState = 6
)

// String names the FSM state.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateActive:
		return "Active"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Record is one archive entry.
type Record struct {
	Time      time.Time
	Kind      RecordKind
	Collector string
	PeerAS    bgp.ASN
	PeerAddr  netip.Addr

	// Update holds the decoded message for KindRIB and KindUpdate.
	Update *bgp.Update

	// OldState and NewState are set for KindState.
	OldState SessionState
	NewState SessionState
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	out := *r
	if r.Update != nil {
		u := *r.Update
		u.Announced = append([]netip.Prefix(nil), r.Update.Announced...)
		u.Withdrawn = append([]netip.Prefix(nil), r.Update.Withdrawn...)
		u.Attrs = r.Update.Attrs.Clone()
		out.Update = &u
	}
	return &out
}

var (
	magic = [4]byte{'M', 'R', 'T', 'L'}

	// ErrBadMagic indicates the stream is not an MRT-lite archive.
	ErrBadMagic = errors.New("mrt: bad magic")
	// ErrBadVersion indicates an unsupported archive version.
	ErrBadVersion = errors.New("mrt: unsupported version")
	// ErrCorrupt indicates a structurally invalid record.
	ErrCorrupt = errors.New("mrt: corrupt record")
)

const version = 1

// maxBodyLen bounds a single record body; anything larger is corruption.
const maxBodyLen = 1 << 20

// Writer serializes records to an archive stream. Writers buffer
// internally; call Flush (or Close on the underlying sink) when done.
type Writer struct {
	w       *bufio.Writer
	started bool
	scratch []byte
}

// NewWriter creates an archive writer on w. The file header is emitted
// lazily on the first WriteRecord.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteRecord appends one record.
func (w *Writer) WriteRecord(r *Record) error {
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		var v [2]byte
		binary.BigEndian.PutUint16(v[:], version)
		if _, err := w.w.Write(v[:]); err != nil {
			return err
		}
		w.started = true
	}

	var body []byte
	switch r.Kind {
	case KindRIB, KindUpdate:
		if r.Update == nil {
			return fmt.Errorf("mrt: %s record without update payload", r.Kind)
		}
		b, err := bgp.MarshalUpdate(r.Update)
		if err != nil {
			return fmt.Errorf("mrt: encoding update: %w", err)
		}
		body = b
	case KindState:
		body = []byte{byte(r.OldState), byte(r.NewState)}
	default:
		return fmt.Errorf("mrt: cannot write record of kind %d", r.Kind)
	}
	if len(r.Collector) > 255 {
		return fmt.Errorf("mrt: collector name too long: %d bytes", len(r.Collector))
	}

	h := w.scratch[:0]
	h = binary.BigEndian.AppendUint64(h, uint64(r.Time.UnixMicro()))
	h = append(h, byte(r.Kind))
	h = binary.BigEndian.AppendUint32(h, uint32(r.PeerAS))
	h = appendAddr(h, r.PeerAddr)
	h = append(h, byte(len(r.Collector)))
	h = append(h, r.Collector...)
	h = binary.BigEndian.AppendUint32(h, uint32(len(body)))
	w.scratch = h
	if _, err := w.w.Write(h); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

func appendAddr(dst []byte, a netip.Addr) []byte {
	if a.Is4() {
		dst = append(dst, 4)
		b := a.As4()
		var full [16]byte
		copy(full[:], b[:])
		return append(dst, full[:]...)
	}
	if a.IsValid() {
		dst = append(dst, 6)
		b := a.As16()
		return append(dst, b[:]...)
	}
	dst = append(dst, 0)
	var zero [16]byte
	return append(dst, zero[:]...)
}

func decodeAddr(fam byte, b []byte) (netip.Addr, error) {
	switch fam {
	case 0:
		return netip.Addr{}, nil
	case 4:
		return netip.AddrFrom4([4]byte(b[:4])), nil
	case 6:
		return netip.AddrFrom16([16]byte(b[:16])), nil
	default:
		return netip.Addr{}, fmt.Errorf("%w: address family %d", ErrCorrupt, fam)
	}
}

// Reader decodes an archive stream sequentially.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader creates an archive reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record, or io.EOF at clean end of stream.
func (r *Reader) Next() (*Record, error) {
	if !r.header {
		var hdr [6]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("mrt: reading header: %w", err)
		}
		if [4]byte(hdr[:4]) != magic {
			return nil, ErrBadMagic
		}
		if binary.BigEndian.Uint16(hdr[4:]) != version {
			return nil, ErrBadVersion
		}
		r.header = true
	}

	var fixed [8 + 1 + 4 + 17]byte
	if _, err := io.ReadFull(r.r, fixed[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated record header", ErrCorrupt)
	}
	rec := &Record{
		Time:   time.UnixMicro(int64(binary.BigEndian.Uint64(fixed[:8]))).UTC(),
		Kind:   RecordKind(fixed[8]),
		PeerAS: bgp.ASN(binary.BigEndian.Uint32(fixed[9:13])),
	}
	addr, err := decodeAddr(fixed[13], fixed[14:30])
	if err != nil {
		return nil, err
	}
	rec.PeerAddr = addr

	nameLen, err := r.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated collector name", ErrCorrupt)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.r, name); err != nil {
		return nil, fmt.Errorf("%w: truncated collector name", ErrCorrupt)
	}
	rec.Collector = string(name)

	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated body length", ErrCorrupt)
	}
	bodyLen := binary.BigEndian.Uint32(lenBuf[:])
	if bodyLen > maxBodyLen {
		return nil, fmt.Errorf("%w: body length %d", ErrCorrupt, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}

	switch rec.Kind {
	case KindRIB, KindUpdate:
		u, _, err := bgp.UnmarshalUpdate(body)
		if err != nil {
			return nil, fmt.Errorf("%w: embedded update: %v", ErrCorrupt, err)
		}
		rec.Update = u
	case KindState:
		if len(body) != 2 {
			return nil, fmt.Errorf("%w: state body length %d", ErrCorrupt, len(body))
		}
		rec.OldState = SessionState(body[0])
		rec.NewState = SessionState(body[1])
	default:
		return nil, fmt.Errorf("%w: record kind %d", ErrCorrupt, rec.Kind)
	}
	return rec, nil
}

// ReadAll drains the reader into a slice.
func ReadAll(r io.Reader) ([]*Record, error) {
	rd := NewReader(r)
	var out []*Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes all records and flushes.
func WriteAll(w io.Writer, records []*Record) error {
	wr := NewWriter(w)
	for _, r := range records {
		if err := wr.WriteRecord(r); err != nil {
			return err
		}
	}
	return wr.Flush()
}
