package events

import (
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/core"
)

// GateHooks wraps a hook set so that the first skip lifecycle callbacks are
// swallowed and everything after passes through unchanged. It is the replay
// gate of the durable-store recovery path: the detection pipeline is fully
// deterministic for a given record stream, so a daemon that recovered a
// store whose last persisted sequence is S re-ingests its source from the
// beginning — rebuilding baselines and open-outage state exactly — while
// the gate drops the S callbacks that were already published and persisted
// before the restart. Publication (and therefore sequence assignment and
// persistence) resumes at exactly S+1, which is what keeps SSE ids gapless
// across restarts and the store free of duplicates.
//
// The count is exact because EngineHooks publishes exactly one event per
// callback, in callback order, on a single goroutine.
// MuteHooks wraps a hook set so every callback is dropped while muted
// reports true. A store-backed daemon arms this at the moment its source
// aborts (live.OnAbort): the engine flush that follows a shutdown emits
// resolution events that are artifacts of stopping, not real detections —
// publishing them would burn bus sequence numbers that the restarted
// process reassigns to different (real) events, breaking Last-Event-ID
// exactly-once across the restart for any client still connected at the
// kill. Muting keeps the published stream identical to the persisted one,
// so the sequence numbering is continuous across process lifetimes.
func MuteHooks(h core.Hooks, muted func() bool) core.Hooks {
	return core.Hooks{
		OutageOpened: func(s core.OutageStatus) {
			if !muted() && h.OutageOpened != nil {
				h.OutageOpened(s)
			}
		},
		OutageUpdated: func(s core.OutageStatus) {
			if !muted() && h.OutageUpdated != nil {
				h.OutageUpdated(s)
			}
		},
		OutageResolved: func(o core.Outage) {
			if !muted() && h.OutageResolved != nil {
				h.OutageResolved(o)
			}
		},
		IncidentClassified: func(inc core.Incident) {
			if !muted() && h.IncidentClassified != nil {
				h.IncidentClassified(inc)
			}
		},
		BinClosed: func(end time.Time) {
			if !muted() && h.BinClosed != nil {
				h.BinClosed(end)
			}
		},
		ProbeRequested: func(p core.PendingConfirmation) {
			if !muted() && h.ProbeRequested != nil {
				h.ProbeRequested(p)
			}
		},
		ProbeConfirmed: func(o core.ProbeOutcome) {
			if !muted() && h.ProbeConfirmed != nil {
				h.ProbeConfirmed(o)
			}
		},
		ProbeExpired: func(o core.ProbeOutcome) {
			if !muted() && h.ProbeExpired != nil {
				h.ProbeExpired(o)
			}
		},
		TraceRecorded: func(tr core.OutageTrace) {
			if !muted() && h.TraceRecorded != nil {
				h.TraceRecorded(tr)
			}
		},
		FeedDegraded: func(tr bgpstream.FeedTransition) {
			if !muted() && h.FeedDegraded != nil {
				h.FeedDegraded(tr)
			}
		},
		FeedRecovered: func(tr bgpstream.FeedTransition) {
			if !muted() && h.FeedRecovered != nil {
				h.FeedRecovered(tr)
			}
		},
	}
}

func GateHooks(h core.Hooks, skip uint64) core.Hooks {
	if skip == 0 {
		return h
	}
	var seen uint64
	pass := func() bool {
		if seen < skip {
			seen++
			return false
		}
		return true
	}
	return core.Hooks{
		OutageOpened: func(s core.OutageStatus) {
			if pass() && h.OutageOpened != nil {
				h.OutageOpened(s)
			}
		},
		OutageUpdated: func(s core.OutageStatus) {
			if pass() && h.OutageUpdated != nil {
				h.OutageUpdated(s)
			}
		},
		OutageResolved: func(o core.Outage) {
			if pass() && h.OutageResolved != nil {
				h.OutageResolved(o)
			}
		},
		IncidentClassified: func(inc core.Incident) {
			if pass() && h.IncidentClassified != nil {
				h.IncidentClassified(inc)
			}
		},
		BinClosed: func(end time.Time) {
			if pass() && h.BinClosed != nil {
				h.BinClosed(end)
			}
		},
		ProbeRequested: func(p core.PendingConfirmation) {
			if pass() && h.ProbeRequested != nil {
				h.ProbeRequested(p)
			}
		},
		ProbeConfirmed: func(o core.ProbeOutcome) {
			if pass() && h.ProbeConfirmed != nil {
				h.ProbeConfirmed(o)
			}
		},
		ProbeExpired: func(o core.ProbeOutcome) {
			if pass() && h.ProbeExpired != nil {
				h.ProbeExpired(o)
			}
		},
		TraceRecorded: func(tr core.OutageTrace) {
			if pass() && h.TraceRecorded != nil {
				h.TraceRecorded(tr)
			}
		},
		FeedDegraded: func(tr bgpstream.FeedTransition) {
			if pass() && h.FeedDegraded != nil {
				h.FeedDegraded(tr)
			}
		},
		FeedRecovered: func(tr bgpstream.FeedTransition) {
			if pass() && h.FeedRecovered != nil {
				h.FeedRecovered(tr)
			}
		},
	}
}
