package events

import (
	"sync"
	"testing"
	"time"
)

// TestSubscriberDepthsStalled pins the queue-depth gauge semantics: a
// subscriber that never drains reports a full queue plus drops, while a
// drained subscriber reports depth zero; ids ascend in registration order.
func TestSubscriberDepthsStalled(t *testing.T) {
	b := New(nil)
	defer b.Close()

	stalled := b.Subscribe(4)
	healthy := b.Subscribe(16)
	defer stalled.Close()
	defer healthy.Close()
	if stalled.ID() == 0 || healthy.ID() <= stalled.ID() {
		t.Fatalf("ids = %d, %d; want ascending registration order starting at 1",
			stalled.ID(), healthy.ID())
	}

	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindBinClosed, Time: time.Unix(int64(i), 0)})
	}
	for i := 0; i < 10; i++ {
		<-healthy.Events()
	}

	depths := b.SubscriberDepths()
	if len(depths) != 2 {
		t.Fatalf("depths = %d entries, want 2", len(depths))
	}
	st, ok := depths[0], depths[1]
	if st.ID != stalled.ID() {
		st, ok = depths[1], depths[0]
	}
	if st.Depth != 4 || st.Cap != 4 {
		t.Errorf("stalled depth/cap = %d/%d, want 4/4", st.Depth, st.Cap)
	}
	if st.Dropped != 6 {
		t.Errorf("stalled dropped = %d, want 6", st.Dropped)
	}
	if stalled.Depth() != 4 {
		t.Errorf("Subscriber.Depth() = %d, want 4", stalled.Depth())
	}
	if ok.Depth != 0 || ok.Dropped != 0 {
		t.Errorf("healthy depth/dropped = %d/%d, want 0/0", ok.Depth, ok.Dropped)
	}
	for i := 1; i < len(depths); i++ {
		if depths[i].ID <= depths[i-1].ID {
			t.Errorf("depths not ascending by id: %+v", depths)
		}
	}
}

// TestSubscriberDepthsConcurrent races subscribe/unsubscribe/publish against
// SubscriberDepths readers. Run with -race; correctness here is absence of
// data races plus internally consistent snapshots.
func TestSubscriberDepthsConcurrent(t *testing.T) {
	b := New(nil)
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // publisher
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				b.Publish(Event{Kind: KindBinClosed, Time: time.Unix(int64(i), 0)})
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // churning subscribers, some draining, some not
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := b.Subscribe(2)
				select {
				case <-s.Events():
				default:
				}
				s.Close()
			}
		}()
	}
	wg.Add(1)
	go func() { // gauge reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, d := range b.SubscriberDepths() {
				if d.Depth < 0 || d.Depth > d.Cap {
					t.Errorf("inconsistent depth %d (cap %d)", d.Depth, d.Cap)
					return
				}
				if d.ID == 0 {
					t.Error("subscriber with zero id")
					return
				}
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
