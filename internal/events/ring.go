package events

// Ring is a fixed-capacity circular buffer of recent events that evicts the
// oldest entry on overflow — the retention window behind both the bus's
// Last-Event-ID replay (SubscribeFrom) and the store's persisted event tail.
// A nil *Ring is valid and retains nothing. Ring is not goroutine-safe;
// each owner guards it with its own lock.
type Ring struct {
	buf   []Event
	start int
	n     int
}

// NewRing returns a ring retaining up to capacity events, or nil when
// capacity <= 0 (retention disabled).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Push appends ev, evicting the oldest entry when full.
func (r *Ring) Push(ev Event) {
	if r == nil {
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
}

// Len reports how many events are retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Each calls fn on every retained event, oldest first.
func (r *Ring) Each(fn func(Event)) {
	if r == nil {
		return
	}
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.start+i)%len(r.buf)])
	}
}

// Events copies the retained window, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	r.Each(func(ev Event) { out = append(out, ev) })
	return out
}
