// Package events is the outage event bus of the live service layer: it
// bridges the detection engine's lifecycle hooks (outage opened, updated,
// resolved; incident classified; bin closed) onto bounded per-subscriber
// queues that many concurrent consumers — SSE streams, loggers, future
// persistence sinks — drain independently. Publishing never blocks: a
// subscriber whose queue is full loses the event and the loss is counted,
// so one stuck client can never stall a bin close (the publisher is the
// ingestion goroutine itself).
package events

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

// Kind discriminates bus events.
type Kind string

// Event kinds, also used as SSE event names by internal/server.
const (
	KindOutageOpened   Kind = "outage_opened"
	KindOutageUpdated  Kind = "outage_updated"
	KindOutageResolved Kind = "outage_resolved"
	KindIncident       Kind = "incident"
	KindBinClosed      Kind = "bin_closed"
	KindProbeRequested Kind = "probe_requested"
	KindProbeConfirmed Kind = "probe_confirmed"
	KindProbeExpired   Kind = "probe_expired"
	KindTrace          Kind = "trace"
	KindFeedDegraded   Kind = "feed_degraded"
	KindFeedRecovered  Kind = "feed_recovered"
)

// Event is one bus message. Exactly one of the payload pointers is non-nil,
// matched to Kind; BinClosed events carry only Time. Seq is a bus-global,
// gapless publication sequence number (SSE ids derive from it).
type Event struct {
	Seq      uint64
	Time     time.Time
	Kind     Kind
	Status   *core.OutageStatus        // opened / updated
	Outage   *core.Outage              // resolved
	Incident *core.Incident            // incident
	Pending  *core.PendingConfirmation // probe_requested
	Probe    *core.ProbeOutcome        // probe_confirmed / probe_expired
	Trace    *core.OutageTrace         // trace (Config.Tracing only)
	Feed     *bgpstream.FeedTransition // feed_degraded / feed_recovered

	// PublishedAt is the wall-clock instant Publish stamped this event —
	// the origin of the SSE delivery-lag histogram. It is process-local
	// observability only: excluded from JSON so the durable WAL and SSE
	// payloads stay deterministic. Ring-replayed backlog events carry a
	// stale stamp (and store-tail events a zero one), so consumers must
	// measure lag on live deliveries only.
	PublishedAt time.Time `json:"-"`
}

// Subscriber is one bounded-queue consumer registration.
type Subscriber struct {
	bus     *Bus
	id      uint64
	ch      chan Event
	dropped atomic.Int64
}

// ID returns the subscriber's bus-unique registration id, stable for the
// subscription's lifetime — the label of its queue-depth gauge.
func (s *Subscriber) ID() uint64 { return s.id }

// Depth returns the subscriber's current queue occupancy.
func (s *Subscriber) Depth() int { return len(s.ch) }

// Events returns the subscriber's delivery channel. It is closed when the
// bus closes or the subscriber cancels.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full queue.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Close cancels the subscription and closes the delivery channel. Safe to
// call multiple times and concurrently with Publish and Bus.Close:
// idempotence comes from bus-map membership, checked under the bus lock,
// so no subscriber-side state is ever held while waiting for it.
func (s *Subscriber) Close() {
	s.bus.unsubscribe(s)
}

// Bus fans events out to subscribers. The zero value is not usable; use New.
type Bus struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	seq    uint64
	subSeq uint64
	closed bool

	// sink, if set, observes every published event synchronously on the
	// publisher's goroutine, before fan-out — the durable write path.
	sink func(Event)
	// ring retains the most recent published events for Last-Event-ID
	// resume; nil when retention is disabled.
	ring *Ring

	published atomic.Int64
	dropped   atomic.Int64
	svc       *metrics.ServiceStats // optional mirror
}

// Option configures a Bus at construction.
type Option func(*Bus)

// WithStartSeq seeds the publication sequence so the first published event
// carries seq+1. A daemon recovering a persisted store passes the store's
// last durable sequence here, making SSE event ids continuous across
// restarts.
func WithStartSeq(seq uint64) Option {
	return func(b *Bus) { b.seq = seq }
}

// WithSink installs a synchronous observer invoked for every published
// event, after sequence assignment and before any subscriber delivery. It
// runs on the publisher's goroutine (the ingestion goroutine), so a store
// sink sees a gapless, ordered stream and needs no locking of its own — at
// the cost that a slow sink slows bin closes.
func WithSink(fn func(Event)) Option {
	return func(b *Bus) { b.sink = fn }
}

// WithRing retains the last n published events for replay to reconnecting
// subscribers (SubscribeFrom). n <= 0 disables retention.
func WithRing(n int) Option {
	return func(b *Bus) { b.ring = NewRing(n) }
}

// New builds a bus. svc, if non-nil, receives publish/drop counter updates
// alongside the bus's own counters (the server exports it via /v1/stats).
func New(svc *metrics.ServiceStats, opts ...Option) *Bus {
	b := &Bus{subs: make(map[*Subscriber]struct{}), svc: svc}
	for _, o := range opts {
		o(b)
	}
	return b
}

// SeedRing pre-populates the replay ring with already-sequenced events —
// the tail a recovered store hands back — so clients that disconnected
// before a restart can still resume across it. Events must be in ascending
// sequence order and precede anything published afterwards. Without
// WithRing this is a no-op.
func (b *Bus) SeedRing(evs []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range evs {
		b.ring.Push(ev)
	}
}

// Subscribe registers a consumer with the given queue capacity (minimum 1).
// Events published while the queue is full are dropped for this subscriber
// only, and counted. Subscribing to a closed bus returns an
// already-closed subscription.
func (b *Bus) Subscribe(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscriber{bus: b, ch: make(chan Event, buffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		// Never registered: Close degrades to a no-op membership miss.
		close(s.ch)
		return s
	}
	b.subSeq++
	s.id = b.subSeq
	b.subs[s] = struct{}{}
	return s
}

// SubscribeFrom registers a consumer that resumes after a previously seen
// sequence number: events retained in the replay ring with Seq > after are
// returned as the backlog, and registration happens under the same lock, so
// the backlog plus the subscription channel together deliver every
// subsequent event exactly once. complete reports whether the ring still
// held position after+1; when false the client missed events that have
// already been evicted (or predate the store horizon) and the backlog
// starts at the oldest retained event. after=0 resumes from the start of
// the ring.
func (b *Bus) SubscribeFrom(after uint64, buffer int) (s *Subscriber, backlog []Event, complete bool) {
	if buffer < 1 {
		buffer = 1
	}
	s = &Subscriber{bus: b, ch: make(chan Event, buffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s, nil, after >= b.seq
	}
	b.subSeq++
	s.id = b.subSeq
	complete = true
	b.ring.Each(func(ev Event) {
		if ev.Seq <= after {
			return
		}
		if len(backlog) == 0 && ev.Seq != after+1 {
			complete = false // ring already evicted after+1 .. ev.Seq-1
		}
		backlog = append(backlog, ev)
	})
	if len(backlog) == 0 && after < b.seq {
		complete = false // everything since `after` was evicted (or never retained)
	}
	b.subs[s] = struct{}{}
	return s, backlog, complete
}

// Replay returns the retained events with Seq > after without registering
// a subscription — the relay tier's join path, where registration happens
// on the relay goroutine instead. complete has SubscribeFrom semantics:
// false when the ring has already evicted position after+1.
func (b *Bus) Replay(after uint64) (evs []Event, complete bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	complete = true
	b.ring.Each(func(ev Event) {
		if ev.Seq <= after {
			return
		}
		if len(evs) == 0 && ev.Seq != after+1 {
			complete = false // ring already evicted after+1 .. ev.Seq-1
		}
		evs = append(evs, ev)
	})
	if len(evs) == 0 && after < b.seq {
		complete = false // everything since `after` was evicted (or never retained)
	}
	return evs, complete
}

func (b *Bus) unsubscribe(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Publish assigns the event its sequence number and offers it to every
// subscriber without blocking. It is called from the ingestion goroutine's
// engine hooks, so the only per-subscriber cost is a channel send or a
// drop-counter increment.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev.Seq = b.seq
	// Wall-clock stamp for the SSE delivery-lag histogram. Observability
	// only: never serialized, never read by detection.
	ev.PublishedAt = time.Now()
	if b.sink != nil {
		b.sink(ev)
	}
	b.ring.Push(ev)
	b.published.Add(1)
	if b.svc != nil {
		b.svc.EventsPublished.Add(1)
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
			if b.svc != nil {
				b.svc.EventsDropped.Add(1)
			}
		}
	}
}

// Close shuts the bus down: all subscriber channels are closed and further
// Publish and Subscribe calls become no-ops. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Seq returns the sequence number of the most recently published event
// (or the WithStartSeq seed if nothing has been published yet).
func (b *Bus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// SubscriberDepth is a point-in-time view of one subscriber's queue.
type SubscriberDepth struct {
	ID      uint64 `json:"id"`
	Depth   int    `json:"depth"`
	Cap     int    `json:"cap"`
	Dropped int64  `json:"dropped"`
}

// SubscriberDepths snapshots every live subscriber's queue occupancy,
// capacity, and drop count, ascending by subscriber id — the backing data
// for the per-subscriber queue-depth gauges in /v1/stats and /metrics.
func (b *Bus) SubscriberDepths() []SubscriberDepth {
	b.mu.Lock()
	out := make([]SubscriberDepth, 0, len(b.subs))
	for s := range b.subs {
		out = append(out, SubscriberDepth{
			ID:      s.id,
			Depth:   len(s.ch),
			Cap:     cap(s.ch),
			Dropped: s.dropped.Load(),
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats is a point-in-time view of the bus.
type Stats struct {
	Published   int64 `json:"published"`
	Dropped     int64 `json:"dropped"`
	Subscribers int   `json:"subscribers"`
}

// Stats snapshots publication and drop counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return Stats{
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: n,
	}
}

// EngineHooks bridges a detection pipeline onto the bus: every lifecycle
// callback becomes a published event. Callers that need additional
// callbacks (snapshot refresh, outage accumulation) chain their own
// functions over the returned struct before Engine.SetHooks.
func EngineHooks(b *Bus) core.Hooks {
	return core.Hooks{
		OutageOpened: func(s core.OutageStatus) {
			b.Publish(Event{Time: s.LastSignal, Kind: KindOutageOpened, Status: &s})
		},
		OutageUpdated: func(s core.OutageStatus) {
			b.Publish(Event{Time: s.LastSignal, Kind: KindOutageUpdated, Status: &s})
		},
		OutageResolved: func(o core.Outage) {
			b.Publish(Event{Time: o.End, Kind: KindOutageResolved, Outage: &o})
		},
		IncidentClassified: func(inc core.Incident) {
			b.Publish(Event{Time: inc.Time, Kind: KindIncident, Incident: &inc})
		},
		BinClosed: func(end time.Time) {
			b.Publish(Event{Time: end, Kind: KindBinClosed})
		},
		ProbeRequested: func(p core.PendingConfirmation) {
			b.Publish(Event{Time: p.At, Kind: KindProbeRequested, Pending: &p})
		},
		ProbeConfirmed: func(o core.ProbeOutcome) {
			b.Publish(Event{Time: o.Pending.At, Kind: KindProbeConfirmed, Probe: &o})
		},
		ProbeExpired: func(o core.ProbeOutcome) {
			b.Publish(Event{Time: o.Pending.At, Kind: KindProbeExpired, Probe: &o})
		},
		TraceRecorded: func(tr core.OutageTrace) {
			b.Publish(Event{Time: tr.End, Kind: KindTrace, Trace: &tr})
		},
		FeedDegraded: func(tr bgpstream.FeedTransition) {
			b.Publish(Event{Time: tr.At, Kind: KindFeedDegraded, Feed: &tr})
		},
		FeedRecovered: func(tr bgpstream.FeedTransition) {
			b.Publish(Event{Time: tr.At, Kind: KindFeedRecovered, Feed: &tr})
		},
	}
}
