package events

import (
	"sort"
	"sync"
	"sync/atomic"

	"kepler/internal/metrics"
)

// Relay is the SSE fan-out tier: one upstream bus subscription feeding any
// number of downstream clients through per-client bounded queues, so a
// thousand streaming clients cost the ingestion path exactly one
// subscriber — the publisher's per-event work stays O(1) in client count,
// and a bin close can never slow down because clients piled up.
//
// All relay state is confined to a single goroutine: clients join and
// leave through a control channel serialized with fan-out, which is what
// makes resume exactly-once — a join captures the ring backlog up to the
// exact sequence the relay has already fanned out, and everything after
// arrives through the new client's queue.
//
// Downstream flow control is two-layered. A client whose own queue is full
// loses the event (dropped, counted — same contract as a direct bus
// subscriber). Separately, when the aggregate queued depth across all
// clients exceeds the MaxQueued budget, delivery stops for the rest of the
// fan-out pass — and because clients are visited oldest-join first, it is
// the newest joiners that shed under memory pressure, preserving service
// for established consumers.
type Relay struct {
	bus  *Bus
	up   *Subscriber
	ctl  chan relayCtl
	done chan struct{}
	m    *metrics.RelayStats

	maxQueued int

	// Goroutine-owned: the join-ordered client list and the sequence of the
	// last event fanned out.
	clients     []*RelayClient
	nextID      uint64
	lastRelayed uint64

	// byID mirrors the client set for concurrent observability reads
	// (Info, ClientDepths); the relay goroutine is the only writer.
	statsMu sync.Mutex
	byID    map[uint64]*RelayClient
}

// RelayOptions configures a Relay.
type RelayOptions struct {
	// Buffer is the upstream subscription queue capacity (default 1024).
	// It bounds the only queue the publisher ever touches; a relay that
	// stalls past it loses events like any other slow subscriber would.
	Buffer int
	// MaxQueued is the aggregate downstream queue budget, in events,
	// across all clients (default 16384). When exceeded mid-fan-out, the
	// remaining — newest-joined — clients shed the event. <= 0 applies the
	// default; use a very large value to effectively disable shedding.
	MaxQueued int
	// Metrics receives delivery/drop/shed counters. Optional; a private
	// instance backs Info when nil.
	Metrics *metrics.RelayStats
}

// RelayClient is one downstream registration. Its accessors mirror
// Subscriber so the SSE handler can serve either interchangeably.
type RelayClient struct {
	relay   *Relay
	id      uint64
	ch      chan Event
	minSeq  uint64        // deliver only events with Seq > minSeq (exactly-once resume)
	allow   map[Kind]bool // nil = all kinds (per-tenant kind filter)
	dropped atomic.Int64
	shed    atomic.Int64
}

// ID returns the client's relay-unique registration id.
func (c *RelayClient) ID() uint64 { return c.id }

// Depth returns the client's current queue occupancy.
func (c *RelayClient) Depth() int { return len(c.ch) }

// Events returns the client's delivery channel. It is closed when the
// client leaves or the relay shuts down (bus close).
func (c *RelayClient) Events() <-chan Event { return c.ch }

// Dropped returns how many events this client lost to its own full queue.
func (c *RelayClient) Dropped() int64 { return c.dropped.Load() }

// Shed returns how many events were withheld from this client by the
// aggregate load-shedding budget.
func (c *RelayClient) Shed() int64 { return c.shed.Load() }

// Close deregisters the client and closes its delivery channel. Safe to
// call multiple times and concurrently with relay shutdown.
func (c *RelayClient) Close() {
	r := c.relay
	select {
	case r.ctl <- relayCtl{leave: c}:
	case <-r.done:
		// Relay already shut down; every channel is closed.
	}
}

type relayCtl struct {
	join  *joinReq
	leave *RelayClient
}

type joinReq struct {
	after  uint64
	resume bool
	buffer int
	allow  map[Kind]bool
	reply  chan joinResp
}

type joinResp struct {
	client   *RelayClient
	backlog  []Event
	complete bool
}

// NewRelay subscribes the relay to the bus and starts its fan-out
// goroutine. The relay shuts down — closing every client channel — when
// the bus closes, after draining the events already queued upstream; Close
// shuts it down early.
func NewRelay(bus *Bus, opts RelayOptions) *Relay {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 16384
	}
	m := opts.Metrics
	if m == nil {
		m = &metrics.RelayStats{}
	}
	r := &Relay{
		bus:       bus,
		up:        bus.Subscribe(opts.Buffer),
		ctl:       make(chan relayCtl),
		done:      make(chan struct{}),
		m:         m,
		maxQueued: opts.MaxQueued,
		byID:      make(map[uint64]*RelayClient),
	}
	r.lastRelayed = bus.Seq()
	go r.run()
	return r
}

// Close detaches the relay from the bus and shuts it down: the upstream
// subscription closes, the goroutine drains what was already queued, fans
// it out, and closes every client channel. Idempotent.
func (r *Relay) Close() {
	r.up.Close()
	<-r.done
}

func (r *Relay) run() {
	for {
		select {
		case ev, ok := <-r.up.Events():
			if !ok {
				r.shutdown()
				return
			}
			r.fanout(ev)
		case m := <-r.ctl:
			switch {
			case m.join != nil:
				r.handleJoin(m.join)
			case m.leave != nil:
				r.handleLeave(m.leave)
			}
		}
	}
}

// fanout offers one event to every client, oldest join first, under the
// aggregate queue budget.
func (r *Relay) fanout(ev Event) {
	r.lastRelayed = ev.Seq
	queued := 0
	for _, c := range r.clients {
		if ev.Seq <= c.minSeq || (c.allow != nil && !c.allow[ev.Kind]) {
			queued += len(c.ch)
			continue
		}
		if queued+len(c.ch) >= r.maxQueued {
			// Aggregate budget spent: this and every later (newer) client
			// sheds. queued only grows, so the cut is join-order monotone.
			c.shed.Add(1)
			r.m.Shed.Add(1)
			continue
		}
		select {
		case c.ch <- ev:
			r.m.Deliveries.Add(1)
		default:
			c.dropped.Add(1)
			r.m.Dropped.Add(1)
		}
		queued += len(c.ch)
	}
}

func (r *Relay) handleJoin(req *joinReq) {
	buffer := req.buffer
	if buffer < 1 {
		buffer = 1
	}
	r.nextID++
	c := &RelayClient{relay: r, id: r.nextID, ch: make(chan Event, buffer), allow: req.allow}
	var backlog []Event
	complete := true
	if req.resume {
		backlog, complete = r.bus.Replay(req.after)
		// Events beyond what the relay has fanned out stay upstream and
		// arrive through the queue; serving them from the ring too would
		// deliver twice.
		for len(backlog) > 0 && backlog[len(backlog)-1].Seq > r.lastRelayed {
			backlog = backlog[:len(backlog)-1]
		}
		c.minSeq = max(req.after, r.lastRelayed)
	} else {
		// A fresh client owes nothing from the past: nothing published
		// before this join, even if still queued upstream.
		c.minSeq = r.bus.Seq()
	}
	r.clients = append(r.clients, c)
	r.statsMu.Lock()
	r.byID[c.id] = c
	r.statsMu.Unlock()
	r.m.Joins.Add(1)
	r.m.Clients.Add(1)
	req.reply <- joinResp{client: c, backlog: backlog, complete: complete}
}

func (r *Relay) handleLeave(c *RelayClient) {
	for i, have := range r.clients {
		if have == c {
			r.clients = append(r.clients[:i], r.clients[i+1:]...)
			r.statsMu.Lock()
			delete(r.byID, c.id)
			r.statsMu.Unlock()
			close(c.ch)
			r.m.Leaves.Add(1)
			r.m.Clients.Add(-1)
			return
		}
	}
}

// shutdown closes every client channel and releases joiners blocked on the
// control channel.
func (r *Relay) shutdown() {
	for _, c := range r.clients {
		close(c.ch)
	}
	r.clients = nil
	r.statsMu.Lock()
	r.byID = make(map[uint64]*RelayClient)
	r.statsMu.Unlock()
	r.m.Clients.Store(0)
	close(r.done)
}

// Subscribe registers a live-only downstream client: it receives every
// event the relay fans out after this call, filtered to allow (nil = all
// kinds). Subscribing to a shut-down relay returns an already-closed
// client.
func (r *Relay) Subscribe(buffer int, allow map[Kind]bool) *RelayClient {
	c, _, _ := r.join(&joinReq{buffer: buffer, allow: allow})
	return c
}

// SubscribeFrom registers a downstream client resuming after a previously
// seen sequence number, with bus.SubscribeFrom semantics: the backlog
// covers (after, relayed-so-far] from the replay ring, the queue delivers
// everything later exactly once, and complete is false when the ring has
// already evicted position after+1.
func (r *Relay) SubscribeFrom(after uint64, buffer int, allow map[Kind]bool) (*RelayClient, []Event, bool) {
	return r.join(&joinReq{after: after, resume: true, buffer: buffer, allow: allow})
}

func (r *Relay) join(req *joinReq) (*RelayClient, []Event, bool) {
	req.reply = make(chan joinResp, 1)
	select {
	case r.ctl <- relayCtl{join: req}:
		resp := <-req.reply
		return resp.client, resp.backlog, resp.complete
	case <-r.done:
		c := &RelayClient{relay: r, ch: make(chan Event)}
		close(c.ch)
		return c, nil, req.after >= r.bus.Seq()
	}
}

// RelayInfo is a point-in-time view of the relay for /v1/stats.
type RelayInfo struct {
	Clients         int    `json:"clients"`
	UpstreamID      uint64 `json:"upstream_id"`
	UpstreamDepth   int    `json:"upstream_depth"`
	UpstreamCap     int    `json:"upstream_cap"`
	UpstreamDropped int64  `json:"upstream_dropped"`
	MaxQueued       int    `json:"max_queued"`
	Deliveries      int64  `json:"deliveries"`
	Dropped         int64  `json:"dropped"`
	Shed            int64  `json:"shed"`
	Joins           int64  `json:"joins"`
	Leaves          int64  `json:"leaves"`
}

// Info snapshots the relay's counters and its single upstream queue — the
// bounded-depth proof that N clients cost the bus one subscriber.
func (r *Relay) Info() RelayInfo {
	r.statsMu.Lock()
	clients := len(r.byID)
	r.statsMu.Unlock()
	s := r.m.Snapshot()
	return RelayInfo{
		Clients:         clients,
		UpstreamID:      r.up.ID(),
		UpstreamDepth:   r.up.Depth(),
		UpstreamCap:     cap(r.up.ch),
		UpstreamDropped: r.up.Dropped(),
		MaxQueued:       r.maxQueued,
		Deliveries:      s.Deliveries,
		Dropped:         s.Dropped,
		Shed:            s.Shed,
		Joins:           s.Joins,
		Leaves:          s.Leaves,
	}
}

// ClientDepths snapshots every downstream client's queue occupancy,
// ascending by client id — the relay-tier counterpart of
// Bus.SubscriberDepths.
func (r *Relay) ClientDepths() []SubscriberDepth {
	r.statsMu.Lock()
	out := make([]SubscriberDepth, 0, len(r.byID))
	for _, c := range r.byID {
		out = append(out, SubscriberDepth{
			ID:      c.id,
			Depth:   len(c.ch),
			Cap:     cap(c.ch),
			Dropped: c.dropped.Load(),
		})
	}
	r.statsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
