package events

import (
	"sync"
	"testing"
	"time"

	"kepler/internal/metrics"
)

// drainAll reads a client's channel until it closes, returning every event
// in delivery order. Closing the bus is the test's barrier: the relay drains
// the upstream queue, fans everything out, then closes client channels.
func drainAll(c *RelayClient) []Event {
	var got []Event
	for ev := range c.Events() {
		got = append(got, ev)
	}
	return got
}

func TestRelayFanoutOrderingSingleUpstream(t *testing.T) {
	b := New(nil)
	r := NewRelay(b, RelayOptions{})
	defer r.Close()

	const clients, n = 8, 50
	cs := make([]*RelayClient, clients)
	for i := range cs {
		cs[i] = r.Subscribe(n+1, nil)
	}
	// N relay clients cost the bus exactly one subscriber.
	if st := b.Stats(); st.Subscribers != 1 {
		t.Fatalf("bus subscribers = %d, want 1", st.Subscribers)
	}
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		b.Publish(ev(KindBinClosed, base.Add(time.Duration(i)*time.Minute)))
	}
	b.Close()

	for ci, c := range cs {
		got := drainAll(c)
		if len(got) != n {
			t.Fatalf("client %d received %d events, want %d", ci, len(got), n)
		}
		for i, e := range got {
			if e.Seq != uint64(i+1) {
				t.Fatalf("client %d event %d has seq %d, want %d", ci, i, e.Seq, i+1)
			}
		}
		if c.Dropped() != 0 || c.Shed() != 0 {
			t.Errorf("client %d dropped=%d shed=%d, want 0/0", ci, c.Dropped(), c.Shed())
		}
	}
	info := r.Info()
	if info.Deliveries != clients*n {
		t.Errorf("deliveries = %d, want %d", info.Deliveries, clients*n)
	}
	if info.UpstreamDropped != 0 {
		t.Errorf("upstream dropped = %d, want 0", info.UpstreamDropped)
	}
}

func TestRelaySlowDownstreamIsolation(t *testing.T) {
	// One stalled relay client must lose only its own events: fast clients
	// see everything and the single upstream queue never backs up past its
	// capacity, so the publisher is never slowed and never drops.
	const n = 500
	b := New(nil)
	m := &metrics.RelayStats{}
	r := NewRelay(b, RelayOptions{Buffer: n, Metrics: m})
	defer r.Close()
	stalled := r.Subscribe(2, nil) // never read until the end
	fast1 := r.Subscribe(n, nil)
	fast2 := r.Subscribe(n, nil)

	var wg sync.WaitGroup
	results := make([][]Event, 2)
	for i, c := range []*RelayClient{fast1, fast2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = drainAll(c)
		}()
	}
	for i := 0; i < n; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
		// The publisher's only queue is the relay's upstream subscription;
		// no matter how many downstream clients stall, its depth is bounded
		// by its own capacity.
		if info := r.Info(); info.UpstreamDepth > info.UpstreamCap {
			t.Fatalf("upstream depth %d exceeds cap %d", info.UpstreamDepth, info.UpstreamCap)
		}
	}
	b.Close()
	wg.Wait()

	for i, got := range results {
		if len(got) != n {
			t.Fatalf("fast client %d received %d events, want %d", i, len(got), n)
		}
		for j, e := range got {
			if e.Seq != uint64(j+1) {
				t.Fatalf("fast client %d event %d has seq %d", i, j, e.Seq)
			}
		}
	}
	held := drainAll(stalled)
	if len(held) != 2 {
		t.Fatalf("stalled client holds %d events, want 2 (its buffer)", len(held))
	}
	// The stalled client holds the oldest events, loses the rest — and
	// nothing upstream was lost on its account.
	if held[0].Seq != 1 {
		t.Errorf("stalled client first seq = %d, want 1", held[0].Seq)
	}
	if d := stalled.Dropped(); d != n-2 {
		t.Errorf("stalled client dropped = %d, want %d", d, n-2)
	}
	if info := r.Info(); info.UpstreamDropped != 0 {
		t.Errorf("upstream dropped = %d, want 0", info.UpstreamDropped)
	}
	if m.Dropped.Load() != n-2 {
		t.Errorf("relay dropped = %d, want %d", m.Dropped.Load(), n-2)
	}
}

func TestRelayResumeExactlyOnce(t *testing.T) {
	b := New(nil, WithRing(64))
	r := NewRelay(b, RelayOptions{})
	defer r.Close()

	// A live client acts as the fan-out barrier: once it has received seq
	// k, the relay's lastRelayed is at least k.
	live := r.Subscribe(32, nil)
	for i := 0; i < 5; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	for i := 0; i < 5; i++ {
		if e := <-live.Events(); e.Seq != uint64(i+1) {
			t.Fatalf("live client got seq %d, want %d", e.Seq, i+1)
		}
	}

	// Resume after seq 2: backlog covers (2, 5] from the ring, everything
	// later arrives through the queue exactly once.
	resumed, backlog, complete := r.SubscribeFrom(2, 32, nil)
	if !complete {
		t.Fatal("resume within ring reported incomplete")
	}
	if len(backlog) != 3 {
		t.Fatalf("backlog has %d events, want 3: %+v", len(backlog), backlog)
	}
	for i, e := range backlog {
		if e.Seq != uint64(i+3) {
			t.Fatalf("backlog[%d].Seq = %d, want %d", i, e.Seq, i+3)
		}
	}
	for i := 0; i < 3; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	b.Close()
	got := drainAll(resumed)
	if len(got) != 3 {
		t.Fatalf("resumed client queue delivered %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+6) {
			t.Fatalf("resumed queue event %d has seq %d, want %d", i, e.Seq, i+6)
		}
	}
}

func TestRelayResumeEvictedRing(t *testing.T) {
	b := New(nil, WithRing(2))
	r := NewRelay(b, RelayOptions{})
	defer r.Close()

	live := r.Subscribe(32, nil)
	for i := 0; i < 6; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	for i := 0; i < 6; i++ {
		<-live.Events()
	}
	// Position 1 left the ring long ago: the client must learn its resume
	// is incomplete rather than silently skipping events.
	_, backlog, complete := r.SubscribeFrom(1, 8, nil)
	if complete {
		t.Error("resume past ring eviction reported complete")
	}
	for _, e := range backlog {
		if e.Seq <= 1 {
			t.Errorf("backlog contains already-seen seq %d", e.Seq)
		}
	}
	b.Close()
}

func TestRelayFreshJoinSkipsQueuedPast(t *testing.T) {
	// Events published before a fresh join — even ones still queued
	// upstream of the relay — must not reach the new client, matching
	// direct bus-subscribe semantics.
	b := New(nil)
	r := NewRelay(b, RelayOptions{})
	defer r.Close()

	for i := 0; i < 4; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	c := r.Subscribe(16, nil)
	b.Publish(ev(KindBinClosed, time.Time{}))
	b.Close()
	for _, e := range drainAll(c) {
		if e.Seq <= 4 {
			t.Errorf("fresh client received pre-join seq %d", e.Seq)
		}
	}
}

func TestRelayShedNewestJoinFirst(t *testing.T) {
	// Aggregate budget 10, two non-reading clients joined in order. The
	// fan-out visits oldest first, so when the budget runs out it is the
	// newest joiner that sheds — deterministically, with no reader races.
	b := New(nil)
	m := &metrics.RelayStats{}
	r := NewRelay(b, RelayOptions{MaxQueued: 10, Metrics: m})
	defer r.Close()

	oldC := r.Subscribe(10, nil)
	newC := r.Subscribe(10, nil)
	for i := 0; i < 10; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	b.Close()

	oldGot := drainAll(oldC)
	newGot := drainAll(newC)
	if len(oldGot) != 10 {
		t.Errorf("old client received %d events, want all 10", len(oldGot))
	}
	if oldC.Shed() != 0 {
		t.Errorf("old client shed = %d, want 0", oldC.Shed())
	}
	// Event k sees queued=k from the old client; the new one receives only
	// while k+depth stays under budget: seqs 1..5.
	if len(newGot) != 5 {
		t.Errorf("new client received %d events, want 5", len(newGot))
	}
	for i, e := range newGot {
		if e.Seq != uint64(i+1) {
			t.Errorf("new client event %d has seq %d, want %d (shed must cut a suffix, not the middle)", i, e.Seq, i+1)
		}
	}
	if newC.Shed() != 5 || newC.Dropped() != 0 {
		t.Errorf("new client shed=%d dropped=%d, want 5/0", newC.Shed(), newC.Dropped())
	}
	if m.Shed.Load() != 5 || m.Deliveries.Load() != 15 {
		t.Errorf("relay shed=%d deliveries=%d, want 5/15", m.Shed.Load(), m.Deliveries.Load())
	}
}

func TestRelayKindFilter(t *testing.T) {
	b := New(nil)
	r := NewRelay(b, RelayOptions{})
	defer r.Close()

	only := r.Subscribe(16, map[Kind]bool{KindIncident: true})
	all := r.Subscribe(16, nil)
	kinds := []Kind{KindBinClosed, KindIncident, KindOutageResolved, KindIncident, KindBinClosed}
	for _, k := range kinds {
		b.Publish(ev(k, time.Time{}))
	}
	b.Close()

	got := drainAll(only)
	if len(got) != 2 {
		t.Fatalf("filtered client received %d events, want 2", len(got))
	}
	if got[0].Seq != 2 || got[1].Seq != 4 {
		t.Errorf("filtered client seqs = %d,%d, want 2,4", got[0].Seq, got[1].Seq)
	}
	if got := drainAll(all); len(got) != len(kinds) {
		t.Errorf("unfiltered client received %d events, want %d", len(got), len(kinds))
	}
	// Filtered-out events are not drops: the client opted out of them.
	if only.Dropped() != 0 || only.Shed() != 0 {
		t.Errorf("filtered client dropped=%d shed=%d, want 0/0", only.Dropped(), only.Shed())
	}
}

func TestRelayClientCloseIsolated(t *testing.T) {
	b := New(nil)
	m := &metrics.RelayStats{}
	r := NewRelay(b, RelayOptions{Metrics: m})
	defer r.Close()

	leaver := r.Subscribe(16, nil)
	stayer := r.Subscribe(16, nil)
	b.Publish(ev(KindBinClosed, time.Time{}))
	// Barrier on the stayer so the publish has fanned out before we leave.
	<-stayer.Events()
	leaver.Close()
	leaver.Close() // idempotent
	// The leaver keeps what it had already been handed, nothing more.
	if got := drainAll(leaver); len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("leaver events = %+v, want just seq 1", got)
	}
	b.Publish(ev(KindBinClosed, time.Time{}))
	b.Close()
	if got := drainAll(stayer); len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("stayer post-leave events = %+v, want just seq 2", got)
	}
	if j, l := m.Joins.Load(), m.Leaves.Load(); j != 2 || l != 1 {
		t.Errorf("joins=%d leaves=%d, want 2/1", j, l)
	}
}

func TestRelayShutdownOnBusClose(t *testing.T) {
	b := New(nil)
	r := NewRelay(b, RelayOptions{})
	c := r.Subscribe(16, nil)
	for i := 0; i < 3; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	b.Close()
	// Everything queued before the close is still delivered.
	if got := drainAll(c); len(got) != 3 {
		t.Errorf("received %d events across shutdown, want 3", len(got))
	}
	r.Close() // idempotent after bus close
	// Joining a shut-down relay yields an immediately-closed client.
	late := r.Subscribe(4, nil)
	if _, ok := <-late.Events(); ok {
		t.Error("post-shutdown client delivered an event")
	}
	if r.Info().Clients != 0 {
		t.Errorf("clients after shutdown = %d, want 0", r.Info().Clients)
	}
}

func TestRelayConcurrentChurn(t *testing.T) {
	// Race-detector workout: clients joining, reading, and leaving while
	// the bus publishes and observers poll Info/ClientDepths.
	b := New(nil, WithRing(128))
	r := NewRelay(b, RelayOptions{Buffer: 256, MaxQueued: 1 << 20})
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			b.Publish(ev(KindBinClosed, time.Time{}))
		}
		close(stop)
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var c *RelayClient
				if i%2 == 0 {
					c = r.Subscribe(8, nil)
				} else {
					c, _, _ = r.SubscribeFrom(uint64(i), 8, nil)
				}
				for j := 0; j < 4; j++ {
					select {
					case _, ok := <-c.Events():
						if !ok {
							return
						}
					case <-stop:
					}
				}
				c.Close()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Info()
				r.ClientDepths()
			}
		}
	}()
	wg.Wait()
	b.Close()
}
