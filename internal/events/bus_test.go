package events

import (
	"sync"
	"testing"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
)

func ev(kind Kind, at time.Time) Event { return Event{Kind: kind, Time: at} }

func TestBusDeliveryOrderAndSeq(t *testing.T) {
	b := New(nil)
	defer b.Close()
	sub := b.Subscribe(16)
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		b.Publish(ev(KindBinClosed, base.Add(time.Duration(i)*time.Minute)))
	}
	for i := 0; i < 5; i++ {
		got := <-sub.Events()
		if got.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, got.Seq)
		}
		if !got.Time.Equal(base.Add(time.Duration(i) * time.Minute)) {
			t.Fatalf("event %d out of order: %v", i, got.Time)
		}
	}
	if st := b.Stats(); st.Published != 5 || st.Dropped != 0 || st.Subscribers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBusSlowConsumerDrops(t *testing.T) {
	b := New(nil)
	defer b.Close()
	slow := b.Subscribe(2)
	fast := b.Subscribe(64)
	for i := 0; i < 10; i++ {
		b.Publish(ev(KindBinClosed, time.Time{}))
	}
	// The slow subscriber holds 2, dropped 8; the fast one got everything.
	if d := slow.Dropped(); d != 8 {
		t.Errorf("slow dropped = %d, want 8", d)
	}
	if d := fast.Dropped(); d != 0 {
		t.Errorf("fast dropped = %d, want 0", d)
	}
	if st := b.Stats(); st.Dropped != 8 || st.Published != 10 {
		t.Errorf("stats = %+v", st)
	}
	// The slow consumer still sees the oldest queued events, not garbage.
	first := <-slow.Events()
	if first.Seq != 1 {
		t.Errorf("slow first seq = %d, want 1", first.Seq)
	}
	n := 0
	for range fast.Events() {
		n++
		if n == 10 {
			break
		}
	}
}

func TestBusCloseSemantics(t *testing.T) {
	b := New(nil)
	sub := b.Subscribe(4)
	b.Publish(ev(KindBinClosed, time.Time{}))
	b.Close()
	b.Close() // idempotent
	// Queued events remain readable; the channel then reports closure.
	if e, ok := <-sub.Events(); !ok || e.Seq != 1 {
		t.Fatalf("queued event lost at close: %v %v", e, ok)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed after bus close")
	}
	// Publish and Subscribe after close are inert.
	b.Publish(ev(KindBinClosed, time.Time{}))
	late := b.Subscribe(4)
	if _, ok := <-late.Events(); ok {
		t.Fatal("late subscription delivered events after close")
	}
	late.Close() // no-op, no panic
	sub.Close()  // no-op, no panic
}

func TestBusSubscriberClose(t *testing.T) {
	b := New(nil)
	defer b.Close()
	sub := b.Subscribe(4)
	other := b.Subscribe(4)
	sub.Close()
	sub.Close() // idempotent
	b.Publish(ev(KindBinClosed, time.Time{}))
	if _, ok := <-sub.Events(); ok {
		t.Fatal("cancelled subscriber still receiving")
	}
	if e := <-other.Events(); e.Seq != 1 {
		t.Fatalf("surviving subscriber missed the event: %+v", e)
	}
	if st := b.Stats(); st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
}

// TestBusConcurrency hammers publish, subscribe, cancel and close from many
// goroutines; run with -race. It also checks the ServiceStats mirror is
// consistent: published equals the bus's own counter.
func TestBusConcurrency(t *testing.T) {
	var svc metrics.ServiceStats
	b := New(&svc)
	var pubs, subs sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 4; i++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for j := 0; j < 500; j++ {
				b.Publish(ev(KindBinClosed, time.Time{}))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		subs.Add(1)
		go func(slow bool) {
			defer subs.Done()
			sub := b.Subscribe(4)
			defer sub.Close()
			for {
				select {
				case _, ok := <-sub.Events():
					if !ok {
						return
					}
					if slow {
						time.Sleep(time.Millisecond)
					}
				case <-stop:
					return
				}
			}
		}(i == 0)
	}
	pubs.Wait()
	close(stop)
	subs.Wait()
	st := b.Stats()
	if st.Published != 2000 {
		t.Errorf("published = %d, want 2000", st.Published)
	}
	if svc.EventsPublished.Load() != st.Published || svc.EventsDropped.Load() != st.Dropped {
		t.Errorf("service mirror diverged: %d/%d vs %+v",
			svc.EventsPublished.Load(), svc.EventsDropped.Load(), st)
	}
	b.Close()
}

// TestBusCloseRacesSubscriberClose pins the shutdown lock-order fix: a
// subscriber cancelling (SSE client disconnect) exactly while the bus
// closes (daemon shutdown) must never deadlock, and later Publishes must
// stay non-blocking. Run with -race and the package's -timeout.
func TestBusCloseRacesSubscriberClose(t *testing.T) {
	for i := 0; i < 200; i++ {
		b := New(nil)
		subs := make([]*Subscriber, 8)
		for j := range subs {
			subs[j] = b.Subscribe(1)
		}
		var wg sync.WaitGroup
		wg.Add(len(subs) + 1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
		for _, s := range subs {
			go func(s *Subscriber) {
				defer wg.Done()
				s.Close()
				s.Close()
			}(s)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Bus.Close deadlocked against Subscriber.Close")
		}
		b.Publish(ev(KindBinClosed, time.Time{})) // must not block after close
	}
}

// TestEngineHooksBridge attaches the bus bridge to a detector-compatible
// hook set and checks kind/payload mapping.
func TestEngineHooksBridge(t *testing.T) {
	b := New(nil)
	defer b.Close()
	sub := b.Subscribe(16)
	h := EngineHooks(b)

	at := time.Date(2016, 6, 3, 12, 0, 0, 0, time.UTC)
	pop := colo.FacilityPoP(7)
	h.OutageOpened(core.OutageStatus{PoP: pop, LastSignal: at, WaitingPaths: 3})
	h.OutageUpdated(core.OutageStatus{PoP: pop, LastSignal: at.Add(time.Minute)})
	h.IncidentClassified(core.Incident{Time: at, Kind: core.IncidentPoP, PoP: pop})
	h.OutageResolved(core.Outage{PoP: pop, Start: at, End: at.Add(time.Hour)})
	h.BinClosed(at.Add(2 * time.Hour))

	wantKinds := []Kind{KindOutageOpened, KindOutageUpdated, KindIncident, KindOutageResolved, KindBinClosed}
	for i, want := range wantKinds {
		got := <-sub.Events()
		if got.Kind != want {
			t.Fatalf("event %d kind = %q, want %q", i, got.Kind, want)
		}
		switch want {
		case KindOutageOpened, KindOutageUpdated:
			if got.Status == nil || got.Status.PoP != pop {
				t.Errorf("%s payload = %+v", want, got.Status)
			}
		case KindOutageResolved:
			if got.Outage == nil || got.Outage.PoP != pop {
				t.Errorf("resolved payload = %+v", got.Outage)
			}
		case KindIncident:
			if got.Incident == nil || got.Incident.Kind != core.IncidentPoP {
				t.Errorf("incident payload = %+v", got.Incident)
			}
		case KindBinClosed:
			if got.Status != nil || got.Outage != nil || got.Incident != nil {
				t.Errorf("bin event carries payload: %+v", got)
			}
		}
	}
}
