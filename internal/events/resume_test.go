package events

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"kepler/internal/core"
)

func publishN(b *Bus, n int) {
	for i := 0; i < n; i++ {
		b.Publish(Event{Time: time.Unix(int64(i), 0).UTC(), Kind: KindBinClosed})
	}
}

func seqs(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}

func TestSubscribeFromReplaysBacklog(t *testing.T) {
	b := New(nil, WithRing(16))
	defer b.Close()
	publishN(b, 6)

	sub, backlog, complete := b.SubscribeFrom(2, 8)
	defer sub.Close()
	if !complete {
		t.Error("resume within ring reported incomplete")
	}
	if want := []uint64{3, 4, 5, 6}; !reflect.DeepEqual(seqs(backlog), want) {
		t.Fatalf("backlog = %v, want %v", seqs(backlog), want)
	}

	// Live delivery continues after the backlog with no gap or repeat.
	publishN(b, 2)
	if ev := <-sub.Events(); ev.Seq != 7 {
		t.Errorf("first live event = %d, want 7", ev.Seq)
	}
	if ev := <-sub.Events(); ev.Seq != 8 {
		t.Errorf("second live event = %d, want 8", ev.Seq)
	}
}

func TestSubscribeFromCurrentPosition(t *testing.T) {
	b := New(nil, WithRing(16))
	defer b.Close()
	publishN(b, 4)
	sub, backlog, complete := b.SubscribeFrom(4, 1)
	defer sub.Close()
	if len(backlog) != 0 || !complete {
		t.Errorf("up-to-date resume: backlog %v, complete %v", seqs(backlog), complete)
	}
}

func TestSubscribeFromEvictedPosition(t *testing.T) {
	b := New(nil, WithRing(4))
	defer b.Close()
	publishN(b, 10) // ring holds 7..10

	sub, backlog, complete := b.SubscribeFrom(2, 1)
	defer sub.Close()
	if complete {
		t.Error("resume past eviction horizon reported complete")
	}
	if want := []uint64{7, 8, 9, 10}; !reflect.DeepEqual(seqs(backlog), want) {
		t.Errorf("backlog = %v, want %v", seqs(backlog), want)
	}

	// Everything evicted, nothing retained to return.
	b2 := New(nil) // no ring at all
	defer b2.Close()
	publishN(b2, 3)
	sub2, backlog2, complete2 := b2.SubscribeFrom(1, 1)
	defer sub2.Close()
	if complete2 || len(backlog2) != 0 {
		t.Errorf("ringless resume: backlog %v, complete %v", seqs(backlog2), complete2)
	}
}

func TestStartSeqAndSeedRing(t *testing.T) {
	// A recovered daemon: 5 events persisted, the last 3 still in the tail.
	tail := []Event{
		{Seq: 3, Kind: KindBinClosed},
		{Seq: 4, Kind: KindBinClosed},
		{Seq: 5, Kind: KindBinClosed},
	}
	b := New(nil, WithStartSeq(5), WithRing(8))
	defer b.Close()
	b.SeedRing(tail)
	if b.Seq() != 5 {
		t.Fatalf("seeded seq = %d, want 5", b.Seq())
	}

	// New publications continue the persisted numbering.
	publishN(b, 1)
	sub, backlog, complete := b.SubscribeFrom(3, 4)
	defer sub.Close()
	if !complete {
		t.Error("resume across seeded ring boundary reported incomplete")
	}
	if want := []uint64{4, 5, 6}; !reflect.DeepEqual(seqs(backlog), want) {
		t.Errorf("backlog = %v, want %v", seqs(backlog), want)
	}

	// A client from before the snapshot horizon is told it missed events.
	sub2, _, complete2 := b.SubscribeFrom(1, 1)
	defer sub2.Close()
	if complete2 {
		t.Error("resume from before the seeded tail reported complete")
	}
}

func TestSinkSeesEveryEventInOrder(t *testing.T) {
	var got []uint64
	b := New(nil, WithSink(func(ev Event) { got = append(got, ev.Seq) }))
	defer b.Close()
	// Sink runs before fan-out: a subscriber that drops must not affect it.
	sub := b.Subscribe(1)
	defer sub.Close()
	publishN(b, 5)
	if want := []uint64{1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("sink sequence = %v, want %v", got, want)
	}
}

func TestSubscribeFromConcurrentWithPublish(t *testing.T) {
	b := New(nil, WithRing(1<<12))
	defer b.Close()
	const prefix, total = 100, 500
	publishN(b, prefix) // resume positions below this exist before anyone joins
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		publishN(b, total-prefix)
	}()

	// Subscribers joining mid-stream must each observe a gapless suffix:
	// backlog then live, exactly once.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(after uint64) {
			defer wg.Done()
			sub, backlog, _ := b.SubscribeFrom(after, total)
			defer sub.Close()
			last := after
			for _, ev := range backlog {
				if ev.Seq != last+1 {
					t.Errorf("backlog gap: %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
			for last < total {
				ev, ok := <-sub.Events()
				if !ok {
					t.Errorf("bus closed with subscriber at %d/%d", last, total)
					return
				}
				if ev.Seq != last+1 {
					t.Errorf("delivery gap: %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
		}(uint64(i * 10))
	}
	wg.Wait()
}

func TestGateHooksSuppressesPrefix(t *testing.T) {
	var fired []string
	rec := func(name string) func() { return func() { fired = append(fired, name) } }
	h := core.Hooks{
		OutageOpened:       func(core.OutageStatus) { rec("opened")() },
		OutageUpdated:      func(core.OutageStatus) { rec("updated")() },
		OutageResolved:     func(core.Outage) { rec("resolved")() },
		IncidentClassified: func(core.Incident) { rec("incident")() },
		BinClosed:          func(time.Time) { rec("bin")() },
	}
	g := GateHooks(h, 3)

	// The same callback script a deterministic re-ingestion replays.
	script := []func(){
		func() { g.OutageOpened(core.OutageStatus{}) },
		func() { g.IncidentClassified(core.Incident{}) },
		func() { g.BinClosed(time.Time{}) },
		func() { g.OutageUpdated(core.OutageStatus{}) },
		func() { g.OutageResolved(core.Outage{}) },
		func() { g.BinClosed(time.Time{}) },
	}
	for _, call := range script {
		call()
	}
	if want := []string{"updated", "resolved", "bin"}; !reflect.DeepEqual(fired, want) {
		t.Errorf("gated callbacks = %v, want %v", fired, want)
	}
}

func TestGateHooksZeroSkipPassesThrough(t *testing.T) {
	n := 0
	h := core.Hooks{BinClosed: func(time.Time) { n++ }}
	g := GateHooks(h, 0)
	g.BinClosed(time.Time{})
	if n != 1 {
		t.Errorf("zero-skip gate swallowed a callback")
	}
	// And the bridge count matches publications: one event per callback.
	b := New(nil)
	defer b.Close()
	eh := EngineHooks(b)
	eh.BinClosed(time.Now())
	eh.OutageResolved(core.Outage{})
	if got := b.Seq(); got != 2 {
		t.Errorf("bridge published %d events for 2 callbacks", got)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	b := New(nil, WithRing(3))
	defer b.Close()
	for i := 0; i < 7; i++ {
		b.Publish(Event{Kind: Kind(fmt.Sprintf("k%d", i))})
	}
	_, backlog, _ := b.SubscribeFrom(0, 1)
	if want := []uint64{5, 6, 7}; !reflect.DeepEqual(seqs(backlog), want) {
		t.Errorf("ring retained %v, want %v", seqs(backlog), want)
	}
}
