package traffic

import (
	"math"
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

func world(t *testing.T) (*topology.World, *routing.Engine) {
	t.Helper()
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w, routing.New(w)
}

func TestBuildMatrix(t *testing.T) {
	w, _ := world(t)
	m := BuildMatrix(w, 25, 7)
	if len(m.Demands) == 0 {
		t.Fatal("empty matrix")
	}
	var maxV float64
	for _, d := range m.Demands {
		if d.From == d.To {
			t.Fatalf("self demand %+v", d)
		}
		if d.Gbps <= 0 {
			t.Fatalf("non-positive demand %+v", d)
		}
		if d.Gbps > maxV {
			maxV = d.Gbps
		}
	}
	if math.Abs(maxV-25) > 0.01 {
		t.Errorf("max demand = %.2f, want 25", maxV)
	}
	if m.Total() <= maxV {
		t.Error("total should exceed the max single demand")
	}
	// Determinism.
	m2 := BuildMatrix(w, 25, 7)
	if len(m2.Demands) != len(m.Demands) {
		t.Error("matrix not deterministic")
	}
}

func TestVolumeDropsDuringIXPOutage(t *testing.T) {
	w, eng := world(t)
	m := BuildMatrix(w, 25, 7)

	// Pick the IXP carrying the most traffic.
	healthy := NewForwarder(eng, nil)
	var busiest colo.IXPID
	var busiestVol float64
	for _, ix := range w.Map.IXPs() {
		if v := healthy.VolumeAt(m, ix.ID); v > busiestVol {
			busiest, busiestVol = ix.ID, v
		}
	}
	if busiest == 0 || busiestVol == 0 {
		t.Skip("no IXP traffic in world")
	}

	mask := routing.NewMask()
	mask.FailIXP(busiest)
	failed := NewForwarder(eng, mask)
	if v := failed.VolumeAt(m, busiest); v != 0 {
		t.Errorf("failed IXP still carries %.2f Gbps", v)
	}
}

func TestRemoteImpact(t *testing.T) {
	w, eng := world(t)
	m := BuildMatrix(w, 25, 7)
	healthy := NewForwarder(eng, nil)

	// Find the two busiest IXPs; failing one should change (typically
	// reduce, via asymmetric pairs and rerouting) the other's volume for
	// at least some member.
	type ixVol struct {
		id  colo.IXPID
		vol float64
	}
	var vols []ixVol
	for _, ix := range w.Map.IXPs() {
		vols = append(vols, ixVol{ix.ID, healthy.VolumeAt(m, ix.ID)})
	}
	if len(vols) < 2 {
		t.Skip("need two IXPs")
	}
	// Selection sort of top-2 by volume.
	for i := 0; i < 2; i++ {
		for j := i + 1; j < len(vols); j++ {
			if vols[j].vol > vols[i].vol {
				vols[i], vols[j] = vols[j], vols[i]
			}
		}
	}
	ixA, ixB := vols[0].id, vols[1].id
	if vols[1].vol == 0 {
		t.Skip("second IXP idle")
	}

	beforeB := healthy.PerMember(m, ixB)
	mask := routing.NewMask()
	mask.FailIXP(ixA)
	failed := NewForwarder(eng, mask)
	afterB := failed.PerMember(m, ixB)

	changed := false
	for asn, v := range beforeB {
		if math.Abs(afterB[asn]-v) > 1e-9 {
			changed = true
			break
		}
	}
	for asn, v := range afterB {
		if math.Abs(beforeB[asn]-v) > 1e-9 {
			changed = true
			break
		}
	}
	if !changed {
		t.Log("no remote impact for this seed (acceptable but unexpected)")
	}
}

func TestSampled(t *testing.T) {
	if Sampled(0, 1) != 0 {
		t.Error("zero volume should sample to zero")
	}
	v := 2000.0 // Gbps, big: tiny relative error
	got := Sampled(v, 42)
	if math.Abs(got-v)/v > 0.05 {
		t.Errorf("sampling error too large at high volume: %.2f vs %.2f", got, v)
	}
	// Deterministic for the same seed.
	if Sampled(v, 42) != got {
		t.Error("sampling not deterministic")
	}
	// Small volumes carry larger relative error.
	small := 0.001
	s := Sampled(small, 7)
	if s == small {
		t.Error("no noise applied to small volume")
	}
}

func TestTopLosers(t *testing.T) {
	before := map[bgp.ASN]float64{1: 10, 2: 8, 3: 5, 4: 1}
	after := map[bgp.ASN]float64{1: 2, 2: 7, 3: 5, 4: 3}
	top := TopLosers(before, after, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopLosers = %v", top)
	}
	if got := TopLosers(before, after, 10); len(got) != 2 {
		t.Errorf("losers = %v, want only actual losers", got)
	}
	if got := TopLosers(nil, nil, 3); len(got) != 0 {
		t.Errorf("empty maps yield %v", got)
	}
}

func TestAsymmetricDetection(t *testing.T) {
	w, eng := world(t)
	f := NewForwarder(eng, nil)
	// Exhaustively look for one asymmetric pair across the two busiest
	// IXPs; absence is tolerated (depends on seed) but the query must not
	// crash and must be consistent with CrossesIXP.
	ixps := w.Map.IXPs()
	if len(ixps) < 2 {
		t.Skip("need two IXPs")
	}
	found := 0
	for i, a := range w.ASes {
		if i%5 != 0 {
			continue
		}
		for j, b := range w.ASes {
			if j%7 != 0 || a.ASN == b.ASN {
				continue
			}
			for _, ixA := range ixps[:2] {
				for _, ixB := range ixps[:2] {
					if ixA.ID == ixB.ID {
						continue
					}
					if f.Asymmetric(a.ASN, b.ASN, ixA.ID, ixB.ID) {
						found++
					}
				}
			}
		}
	}
	t.Logf("asymmetric pairs found: %d", found)
}
