// Package traffic models inter-domain traffic for the remote-impact
// analysis of Section 6.4: a gravity-model demand matrix between ASes,
// forwarding of each demand along the routing engine's current paths
// (direction-sensitive, so asymmetric routing emerges naturally when the
// forward and reverse paths cross different IXPs), per-member volume
// accounting at an observed IXP, and an IPFIX-style 1-in-10K packet
// sampler with deterministic sampling noise.
package traffic

import (
	"math"
	"math/rand"
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

// Demand is one unidirectional traffic demand.
type Demand struct {
	From, To bgp.ASN
	Gbps     float64
}

// Matrix is a set of demands.
type Matrix struct {
	Demands []Demand
}

// weight returns the gravity-model mass of an AS: content networks push
// the most traffic, eyeball/stub networks pull it, transit carries it.
func weight(a *topology.AS) float64 {
	switch a.Type {
	case topology.Content:
		return 30
	case topology.Tier1:
		return 8
	case topology.Tier2:
		return 5
	case topology.Stub:
		return 2
	default:
		return 1
	}
}

// BuildMatrix derives a gravity-model demand matrix over the world's ASes.
// Only pairs with nonzero gravity above a floor are kept, and volumes are
// normalized so the heaviest demand is maxGbps. Content→stub demands
// dominate, matching the paper's description of today's traffic mix.
func BuildMatrix(w *topology.World, maxGbps float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	var demands []Demand
	var heaviest float64
	for _, src := range w.ASes {
		for _, dst := range w.ASes {
			if src.ASN == dst.ASN {
				continue
			}
			g := weight(src) * weight(dst)
			// Directional skew: content sources push ~4x what they pull.
			if src.Type == topology.Content && dst.Type != topology.Content {
				g *= 4
			}
			// Sparsify small demands to keep the matrix tractable.
			if g < 60 && rng.Float64() > 0.15 {
				continue
			}
			v := g * (0.5 + rng.Float64())
			demands = append(demands, Demand{From: src.ASN, To: dst.ASN, Gbps: v})
			if v > heaviest {
				heaviest = v
			}
		}
	}
	if heaviest > 0 {
		scale := maxGbps / heaviest
		for i := range demands {
			demands[i].Gbps *= scale
		}
	}
	return &Matrix{Demands: demands}
}

// Total returns the aggregate demand volume.
func (m *Matrix) Total() float64 {
	var sum float64
	for _, d := range m.Demands {
		sum += d.Gbps
	}
	return sum
}

// Forwarder resolves the path of each demand under a routing state.
// Tables are computed lazily per destination origin and cached, so
// repeated volume queries under the same mask are cheap.
type Forwarder struct {
	eng    *routing.Engine
	mask   *routing.Mask
	tables map[bgp.ASN]*routing.Table
}

// NewForwarder creates a forwarder for the given failure state (nil mask
// means healthy).
func NewForwarder(eng *routing.Engine, mask *routing.Mask) *Forwarder {
	return &Forwarder{eng: eng, mask: mask, tables: make(map[bgp.ASN]*routing.Table)}
}

func (f *Forwarder) table(origin bgp.ASN) *routing.Table {
	t, ok := f.tables[origin]
	if !ok {
		t = f.eng.ComputeOrigin(origin, f.mask)
		f.tables[origin] = t
	}
	return t
}

// PathOf returns the forward route of a demand, ok=false if unreachable.
// Traffic From→To follows From's best route toward To's origin — the
// direction IPFIX meters at an IXP see.
func (f *Forwarder) PathOf(d Demand) (*routing.Route, bool) {
	return f.eng.Route(f.table(d.To), d.From)
}

// CrossesIXP reports whether the demand's forward path crosses the IXP.
func (f *Forwarder) CrossesIXP(d Demand, ix colo.IXPID) bool {
	r, ok := f.PathOf(d)
	if !ok {
		return false
	}
	for _, l := range r.Links {
		if l != nil && l.IXP == ix {
			return true
		}
	}
	return false
}

// VolumeAt sums the demand volume whose forward path crosses the IXP.
func (f *Forwarder) VolumeAt(m *Matrix, ix colo.IXPID) float64 {
	var sum float64
	for _, d := range m.Demands {
		if f.CrossesIXP(d, ix) {
			sum += d.Gbps
		}
	}
	return sum
}

// PerMember returns the volume each member sources or sinks across the
// IXP's fabric under this routing state.
func (f *Forwarder) PerMember(m *Matrix, ix colo.IXPID) map[bgp.ASN]float64 {
	out := make(map[bgp.ASN]float64)
	for _, d := range m.Demands {
		if f.CrossesIXP(d, ix) {
			out[d.From] += d.Gbps
			out[d.To] += d.Gbps
		}
	}
	return out
}

// ReverseImpacted reports whether the reverse path of d differs between
// this forwarder's failure state and the baseline.
func (f *Forwarder) ReverseImpacted(d Demand, base *Forwarder) bool {
	rev := Demand{From: d.To, To: d.From}
	rb, ok1 := base.PathOf(rev)
	rf, ok2 := f.PathOf(rev)
	if ok1 != ok2 {
		return true
	}
	if !ok1 {
		return false
	}
	return !rb.Equal(rf)
}

// ReverseCouplingFactor is the throughput penalty a TCP flow suffers while
// its reverse path is rerouting/inflated: loss during convergence plus the
// RTT increase shrink the achievable rate even though the forward path is
// intact. This coupling is what makes a local outage visible as a traffic
// drop at a remote exchange (Section 6.4).
const ReverseCouplingFactor = 0.45

// VolumeAtCoupled sums the demand volume crossing the IXP under this
// (failure-state) forwarder, discounting flows whose reverse path was
// disturbed relative to the baseline forwarder.
func (f *Forwarder) VolumeAtCoupled(m *Matrix, ix colo.IXPID, base *Forwarder) float64 {
	var sum float64
	for _, d := range m.Demands {
		if !f.CrossesIXP(d, ix) {
			continue
		}
		v := d.Gbps
		if f.ReverseImpacted(d, base) {
			v *= ReverseCouplingFactor
		}
		sum += v
	}
	return sum
}

// PortHeadroom is the capacity factor of a member's IXP port relative to
// its steady-state load. Best practice keeps ports under 50% utilization,
// but the paper observes that price pressure forces operators past such
// guidelines — "the capacity of neither [IXP] is sufficient for the total
// traffic of the ISP" (Section 6.4) — so during incidents there is no
// usable spare peering capacity and the overflow rides the upstream.
const PortHeadroom = 1.0

// CappedCoupledVolumeAt models what an IPFIX meter at the IXP sees during a
// remote incident: surviving flows discounted by reverse-path coupling, and
// every member's total load capped at PortHeadroom times its steady-state
// volume — overflow from rerouted flows spills to upstream transit instead
// of the exchange (the paper's explanation for why a remote outage shows up
// as a traffic *drop*, not a surge).
func (f *Forwarder) CappedCoupledVolumeAt(m *Matrix, ix colo.IXPID, base *Forwarder) float64 {
	baseMember := base.PerMember(m, ix)
	type flow struct {
		d Demand
		v float64
	}
	var flows []flow
	load := map[bgp.ASN]float64{}
	for _, d := range m.Demands {
		if !f.CrossesIXP(d, ix) {
			continue
		}
		v := d.Gbps
		if f.ReverseImpacted(d, base) {
			v *= ReverseCouplingFactor
		}
		flows = append(flows, flow{d: d, v: v})
		load[d.From] += v
		load[d.To] += v
	}
	// Per-member scale: ports saturate at PortHeadroom × steady state.
	// Members with no steady-state presence get a small allowance — their
	// reroute onto the exchange is opportunistic, not provisioned.
	var maxBase float64
	for _, v := range baseMember {
		if v > maxBase {
			maxBase = v
		}
	}
	floor := 0.02 * maxBase
	scale := func(a bgp.ASN) float64 {
		cap_ := PortHeadroom * baseMember[a]
		if cap_ < floor {
			cap_ = floor
		}
		if load[a] <= cap_ || load[a] == 0 {
			return 1
		}
		return cap_ / load[a]
	}
	var sum float64
	for _, fl := range flows {
		s := scale(fl.d.From)
		if s2 := scale(fl.d.To); s2 < s {
			s = s2
		}
		sum += fl.v * s
	}
	return sum
}

// PerMemberCoupled is PerMember with the reverse-path coupling discount.
func (f *Forwarder) PerMemberCoupled(m *Matrix, ix colo.IXPID, base *Forwarder) map[bgp.ASN]float64 {
	out := make(map[bgp.ASN]float64)
	for _, d := range m.Demands {
		if !f.CrossesIXP(d, ix) {
			continue
		}
		v := d.Gbps
		if f.ReverseImpacted(d, base) {
			v *= ReverseCouplingFactor
		}
		out[d.From] += v
		out[d.To] += v
	}
	return out
}

// Asymmetric reports whether the demand pair (a→b, b→a) crosses ixA in one
// direction and ixB in the other — the asymmetric-path condition the paper
// identifies as the main cause of remote traffic loss (Section 6.4).
func (f *Forwarder) Asymmetric(a, b bgp.ASN, ixA, ixB colo.IXPID) bool {
	fwd := f.CrossesIXP(Demand{From: a, To: b}, ixA) && !f.CrossesIXP(Demand{From: a, To: b}, ixB)
	rev := f.CrossesIXP(Demand{From: b, To: a}, ixB) && !f.CrossesIXP(Demand{From: b, To: a}, ixA)
	return fwd && rev
}

// SampleRate is the paper's IPFIX sampling rate at EU-IXP (1 in 10K).
const SampleRate = 10000

// Sampled applies deterministic 1/10K-style sampling noise to a true
// volume: the estimate is the true value perturbed by the relative
// standard error of packet sampling at this volume.
func Sampled(trueGbps float64, seed int64) float64 {
	if trueGbps <= 0 {
		return 0
	}
	// Approximate packet count for the averaging window; the relative
	// error of count sampling is 1/sqrt(sampled packets).
	packets := trueGbps * 1e9 / 8 / 800 // ~800B average packet
	sampled := packets / SampleRate
	if sampled < 1 {
		sampled = 1
	}
	rel := 1 / math.Sqrt(sampled)
	rng := rand.New(rand.NewSource(seed))
	return trueGbps * (1 + rel*(rng.Float64()*2-1))
}

// TopLosers returns the n members with the largest volume drop between two
// per-member maps, sorted by loss descending.
func TopLosers(before, after map[bgp.ASN]float64, n int) []bgp.ASN {
	type loss struct {
		asn bgp.ASN
		d   float64
	}
	var ls []loss
	for asn, b := range before {
		if d := b - after[asn]; d > 0 {
			ls = append(ls, loss{asn, d})
		}
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].d != ls[j].d {
			return ls[i].d > ls[j].d
		}
		return ls[i].asn < ls[j].asn
	})
	if n > len(ls) {
		n = len(ls)
	}
	out := make([]bgp.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = ls[i].asn
	}
	return out
}
