package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ckptPrefix names checkpoint segments: ckpt-%016x.ckpt, keyed by the
// durable event sequence at the engine barrier the checkpoint was taken at.
const ckptPrefix = "ckpt-"

// keepCheckpoints is how many checkpoint generations SaveCheckpoint
// retains: the newest plus one fallback, so a checkpoint torn by a crash
// mid-save (prevented by tmp+rename, but disks lie) or rejected by the
// engine still leaves a bounded-recovery path.
const keepCheckpoints = 2

// Checkpoint is one engine-state checkpoint as persisted beside the WAL.
// The store treats the engine payload as opaque bytes (core owns its
// versioned encoding); the envelope carries what the daemon needs to
// resume: the event-sequence position of the checkpoint barrier (the
// replay gate skips LastSeq-EventSeq callbacks instead of LastSeq) and the
// source cursor (record offset, plus the synthetic source's window
// coordinates) to seek ingestion to.
type Checkpoint struct {
	// EventSeq is the bus/store sequence of the newest event published at
	// or before the checkpoint barrier. Recovery requires EventSeq <= the
	// recovered history's LastSeq; a checkpoint ahead of the durable event
	// horizon (possible after a machine crash that lost WAL pages) is
	// rejected and recovery falls back.
	EventSeq uint64 `json:"event_seq"`
	// Records is the source record offset ingestion resumes at.
	Records uint64 `json:"records"`
	// Window and WindowPos locate the record offset for window-rendering
	// sources (live.Synthetic); zero for plain archives.
	Window    int `json:"window,omitempty"`
	WindowPos int `json:"window_pos,omitempty"`
	// BinEnd is the bin barrier the checkpoint was captured at.
	BinEnd time.Time `json:"bin_end"`
	// Engine is the core.Checkpoint encoding.
	Engine json.RawMessage `json:"engine"`
}

// SaveCheckpoint durably writes a checkpoint segment (CRC32C-framed,
// fsynced, atomically renamed into place) and prunes all but the newest
// keepCheckpoints generations. Called from the ingestion goroutine at bin
// barriers, after the corresponding events have been appended.
func (s *Store) SaveCheckpoint(c *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: checkpoint after Close")
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.opts.Dir, segName(ckptPrefix, c.EventSeq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n, err := writeFrame(f, payload)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.opts.Dir)

	// Rotate: drop every generation below the newest keepCheckpoints.
	// Removal failures are harmless (retried at the next save).
	seqs := s.checkpointSeqs()
	for i, seq := range seqs {
		if i >= keepCheckpoints {
			os.Remove(filepath.Join(s.opts.Dir, segName(ckptPrefix, seq)))
		}
	}
	if s.m != nil {
		s.m.CheckpointSaves.Add(1)
		s.m.CheckpointBytes.Add(int64(n))
	}
	return nil
}

// checkpointSeqs lists the on-disk checkpoint base sequences, newest first.
func (s *Store) checkpointSeqs() []uint64 {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		if n, ok := parseSeg(e.Name(), ckptPrefix); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs
}

// LoadCheckpoint returns the newest usable checkpoint: segments are tried
// newest first, each validated structurally (frame checksum, envelope
// decode) and then by accept — the caller's semantic gate (engine payload
// version, event horizon, prober availability). A segment failing either
// check is counted as discarded and the next older one is tried; exhausting
// them returns nil, which recovery treats as "re-ingest from record zero".
// The accept callback may be nil.
func (s *Store) LoadCheckpoint(accept func(*Checkpoint) error) *Checkpoint {
	for _, seq := range s.checkpointSeqs() {
		name := segName(ckptPrefix, seq)
		c, err := s.loadCheckpointSeg(name)
		if err == nil && accept != nil {
			err = accept(c)
		}
		if err != nil {
			s.log.Warn("checkpoint segment discarded", "segment", name, "error", err)
			if s.m != nil {
				s.m.CheckpointsDiscarded.Add(1)
			}
			continue
		}
		return c
	}
	return nil
}

// loadCheckpointSeg reads and structurally validates one checkpoint segment.
func (s *Store) loadCheckpointSeg(name string) (*Checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(s.opts.Dir, name))
	if err != nil {
		return nil, err
	}
	payload, n, err := readFrame(b)
	if err != nil || n != len(b) {
		return nil, fmt.Errorf("store: checkpoint %s invalid", name)
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	return &c, nil
}
