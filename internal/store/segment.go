package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// History segments are the incremental half of the snapshot story: at each
// compaction the store seals the outages and incidents accumulated since
// the previous compaction into one immutable, per-entry-framed segment file
// per history type, instead of rewriting the whole history into the
// manifest. A sealed segment is never modified; the set of segments plus
// the in-memory unsealed tail is the complete history, addressed by entry
// ordinal (0-based position in the resolved/incident sequence).
//
//	out-%016x.seg   resolved outages, one frame per entry
//	inc-%016x.seg   incidents, one frame per entry
//	out-%016x.idx   offset index: one frame of 8B big-endian frame offsets
//
// The segment name's hex field is the base ordinal: the position of the
// segment's first entry. The offset index makes a cursor page one seek: it
// is written alongside the segment at seal time and rebuilt by a full frame
// scan on open when missing or corrupt — the index is an accelerator, never
// the source of truth.
const (
	outSegPrefix = "out-"
	incSegPrefix = "inc-"
	idxExt       = ".idx"
)

// segment is one sealed, immutable history segment with its loaded offset
// index. offsets[i] is the file position of entry (base+i)'s frame; size is
// the file length, bounding the last frame.
type segment struct {
	path    string
	base    int
	offsets []int64
	size    int64
}

func (g *segment) count() int { return len(g.offsets) }

// idxPath derives the sidecar index path for a segment file.
func idxPath(segPath string) string {
	return segPath[:len(segPath)-len(".seg")] + idxExt
}

// sealSegment writes payloads as one framed segment file plus its offset
// index, both via tmp+rename so a crash leaves either a complete pair, a
// complete segment with a rebuildable missing index, or nothing.
func (s *Store) sealSegment(prefix string, base int, payloads [][]byte) (*segment, error) {
	path := filepath.Join(s.opts.Dir, segName(prefix, uint64(base)))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	offsets := make([]int64, 0, len(payloads))
	var off int64
	for _, p := range payloads {
		offsets = append(offsets, off)
		n, err := writeFrame(f, p)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		off += int64(n)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	g := &segment{path: path, base: base, offsets: offsets, size: off}
	if err := s.writeIndex(g); err != nil {
		// The segment itself is durable and the index rebuilds on open, so
		// a failed index write degrades, not fails.
		s.log.Warn("segment index write failed", "segment", filepath.Base(path), "err", err)
	}
	if s.m != nil {
		s.m.SegmentsSealed.Add(1)
	}
	return g, nil
}

// sealTail marshals an unsealed in-memory tail and seals it as one segment.
func sealTail[T any](s *Store, prefix string, base int, tail []T) (*segment, error) {
	payloads := make([][]byte, len(tail))
	for i := range tail {
		p, err := json.Marshal(&tail[i])
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		payloads[i] = p
	}
	return s.sealSegment(prefix, base, payloads)
}

// writeIndex persists a segment's offset index sidecar: a single frame
// whose payload is the big-endian 8-byte frame offsets in entry order.
func (s *Store) writeIndex(g *segment) error {
	payload := make([]byte, 8*len(g.offsets))
	for i, off := range g.offsets {
		binary.BigEndian.PutUint64(payload[8*i:], uint64(off))
	}
	path := idxPath(g.path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := writeFrame(f, payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if s.m != nil {
		s.m.IndexWrites.Add(1)
	}
	return nil
}

// loadIndex reads and validates a segment's offset index against the
// segment file's size: offsets must be a single intact frame of 8-byte
// words, strictly increasing from 0 and inside the file. Any violation is
// an error — the caller falls back to a rebuild scan.
func loadIndex(segPath string, size int64) ([]int64, error) {
	b, err := os.ReadFile(idxPath(segPath))
	if err != nil {
		return nil, err
	}
	payload, n, err := readFrame(b)
	if err != nil || n != len(b) {
		return nil, fmt.Errorf("store: index %s invalid", filepath.Base(idxPath(segPath)))
	}
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("store: index %s: payload not offset-aligned", filepath.Base(idxPath(segPath)))
	}
	offsets := make([]int64, len(payload)/8)
	prev := int64(-1)
	for i := range offsets {
		off := int64(binary.BigEndian.Uint64(payload[8*i:]))
		if off <= prev || off >= size {
			return nil, fmt.Errorf("store: index %s: offset %d out of order or out of bounds", filepath.Base(idxPath(segPath)), off)
		}
		if i == 0 && off != 0 {
			return nil, fmt.Errorf("store: index %s: first offset %d != 0", filepath.Base(idxPath(segPath)), off)
		}
		offsets[i] = off
		prev = off
	}
	if size > 0 && len(offsets) == 0 {
		return nil, fmt.Errorf("store: index %s empty for non-empty segment", filepath.Base(idxPath(segPath)))
	}
	return offsets, nil
}

// rebuildIndex scans a segment's frames to reconstruct the offset index —
// the recovery path for a missing, truncated or garbage .idx file. The scan
// verifies every frame checksum, so a rebuilt index can never address a
// page the segment cannot serve. A torn or corrupt frame ends the scan:
// like WAL replay, recovery keeps the verified prefix and drops the rest
// (reconcileSealed squares the bookkeeping), rather than refusing to open.
func (s *Store) rebuildIndex(segPath string) ([]int64, int64, error) {
	b, err := os.ReadFile(segPath)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	var offsets []int64
	off := 0
	for off < len(b) {
		_, n, err := readFrame(b[off:])
		if err != nil {
			s.log.Error("segment frame corrupt; keeping verified prefix",
				"segment", filepath.Base(segPath), "offset", off, "entries", len(offsets), "err", err)
			break
		}
		offsets = append(offsets, int64(off))
		off += n
	}
	if s.m != nil {
		s.m.IndexRebuilds.Add(1)
	}
	return offsets, int64(off), nil
}

// loadSegments discovers and validates the sealed history segments of one
// prefix: ascending by base ordinal, contiguous from zero. Each segment's
// index is loaded, or rebuilt (and re-persisted, best effort) when missing
// or invalid. Non-contiguous trailing segments are unreachable by ordinal
// and are dropped with a warning rather than failing recovery.
func (s *Store) loadSegments(prefix string, entries []os.DirEntry) ([]*segment, error) {
	var bases []uint64
	for _, e := range entries {
		if n, ok := parseSeg(e.Name(), prefix); ok {
			bases = append(bases, n)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	segs := make([]*segment, 0, len(bases))
	next := 0
	for _, base := range bases {
		if int(base) != next {
			s.log.Warn("non-contiguous history segment dropped",
				"segment", segName(prefix, base), "expected_base", next)
			break
		}
		path := filepath.Join(s.opts.Dir, segName(prefix, base))
		fi, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		g := &segment{path: path, base: int(base), size: fi.Size()}
		offsets, err := loadIndex(path, fi.Size())
		if err == nil && validIndexTail(offsets, fi.Size()) {
			g.offsets = offsets
		} else {
			if err == nil {
				err = fmt.Errorf("store: index does not cover segment")
			}
			s.log.Warn("segment index missing or invalid; rebuilding by scan",
				"segment", filepath.Base(path), "err", err)
			offsets, size, rerr := s.rebuildIndex(path)
			if rerr != nil {
				return nil, rerr
			}
			g.offsets, g.size = offsets, size
			if werr := s.writeIndex(g); werr != nil {
				s.log.Warn("segment index rewrite failed", "segment", filepath.Base(path), "err", werr)
			}
		}
		segs = append(segs, g)
		next += g.count()
	}
	return segs, nil
}

// validIndexTail cross-checks that the index's last offset leaves room for
// at least a frame header before end-of-file — a cheap guard against an
// index paired with a truncated segment. The frame itself is CRC-verified
// at read time.
func validIndexTail(offsets []int64, size int64) bool {
	if len(offsets) == 0 {
		return size == 0
	}
	return offsets[len(offsets)-1]+frameHeaderSize <= size
}

// sealedTotal is the entry count across a segment set (the base of the
// unsealed in-memory tail).
func sealedTotal(segs []*segment) int {
	if len(segs) == 0 {
		return 0
	}
	last := segs[len(segs)-1]
	return last.base + last.count()
}

// readSealed returns the framed payloads of entries [start, start+count)
// from a segment set, one ReadAt per touched segment. Bounds must be
// pre-clamped to the sealed total.
func (s *Store) readSealed(segs []*segment, start, count int) ([][]byte, error) {
	out := make([][]byte, 0, count)
	for _, g := range segs {
		if count == 0 {
			break
		}
		if start >= g.base+g.count() {
			continue
		}
		lo := start - g.base
		hi := lo + count
		if hi > g.count() {
			hi = g.count()
		}
		payloads, err := s.readSegmentRange(g, lo, hi)
		if err != nil {
			return nil, err
		}
		out = append(out, payloads...)
		start += hi - lo
		count -= hi - lo
	}
	if count != 0 {
		return nil, fmt.Errorf("store: sealed read past segment end (%d entries short)", count)
	}
	return out, nil
}

// readSegmentRange reads entries [lo, hi) of one segment in a single
// positioned read and splits them back into frame payloads.
func (s *Store) readSegmentRange(g *segment, lo, hi int) ([][]byte, error) {
	startOff := g.offsets[lo]
	endOff := g.size
	if hi < g.count() {
		endOff = g.offsets[hi]
	}
	f, err := os.Open(g.path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	buf := make([]byte, endOff-startOff)
	if _, err := f.ReadAt(buf, startOff); err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", filepath.Base(g.path), err)
	}
	if s.m != nil {
		s.m.SegmentReads.Add(1)
	}
	payloads := make([][]byte, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rel := g.offsets[i] - startOff
		payload, _, err := readFrame(buf[rel:])
		if err != nil {
			return nil, fmt.Errorf("store: segment %s entry %d: %w", filepath.Base(g.path), g.base+i-lo, err)
		}
		payloads = append(payloads, payload)
	}
	return payloads, nil
}

// lru is a small decoded-entry cache keyed by history ordinal: the resident
// set of the disk-backed read path. All methods are safe for concurrent
// use; the zero value is not usable, use newLRU.
type lru[T any] struct {
	mu   sync.Mutex
	cap  int
	m    map[int]*lruNode[T]
	head *lruNode[T] // most recently used
	tail *lruNode[T] // least recently used
}

type lruNode[T any] struct {
	key        int
	val        T
	prev, next *lruNode[T]
}

func newLRU[T any](capacity int) *lru[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[T]{cap: capacity, m: make(map[int]*lruNode[T], capacity)}
}

func (c *lru[T]) get(key int) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.m[key]
	if !ok {
		var zero T
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

func (c *lru[T]) put(key int, val T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.m[key]; ok {
		n.val = val
		c.moveToFront(n)
		return
	}
	n := &lruNode[T]{key: key, val: val}
	c.m[key] = n
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
	if len(c.m) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.m, evict.key)
	}
}

func (c *lru[T]) moveToFront(n *lruNode[T]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	n.prev, n.next = nil, c.head
	c.head.prev = n
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lru[T]) unlink(n *lruNode[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
}

// readEntries serves history entries [start, start+count) of one type:
// unsealed entries from the in-memory tail, sealed entries through the
// decoded-entry LRU with page reads off the segment offsets for misses.
// Disk I/O happens outside the store lock — segments are immutable and the
// captured slice headers stay valid across concurrent compactions.
func readEntries[T any](s *Store, segs []*segment, base int, tail []T, cache *lru[T], start, count int, useCache bool) ([]T, error) {
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("store: negative read range [%d,+%d)", start, count)
	}
	total := base + len(tail)
	if start > total {
		start = total
	}
	if start+count > total {
		count = total - start
	}
	out := make([]T, 0, count)
	if sealedN := base - start; sealedN > 0 {
		if sealedN > count {
			sealedN = count
		}
		got, err := readSealedEntries(s, segs, cache, start, sealedN, useCache)
		if err != nil {
			return nil, err
		}
		out = append(out, got...)
		start += sealedN
		count -= sealedN
	}
	if count > 0 {
		out = append(out, tail[start-base:start-base+count]...)
	}
	return out, nil
}

// readSealedEntries resolves sealed ordinals [start, start+count) through
// the LRU, reading and decoding only the cache-miss spans.
func readSealedEntries[T any](s *Store, segs []*segment, cache *lru[T], start, count int, useCache bool) ([]T, error) {
	out := make([]T, count)
	have := make([]bool, count)
	missFrom, missTo := -1, -1 // ordinal span still needing disk
	if useCache && cache != nil {
		hits, misses := int64(0), int64(0)
		for i := 0; i < count; i++ {
			if v, ok := cache.get(start + i); ok {
				out[i], have[i] = v, true
				hits++
				continue
			}
			misses++
			if missFrom == -1 {
				missFrom = start + i
			}
			missTo = start + i + 1
		}
		if s.m != nil {
			s.m.ReadCacheHits.Add(hits)
			s.m.ReadCacheMisses.Add(misses)
		}
		if missFrom == -1 {
			return out, nil
		}
	} else {
		missFrom, missTo = start, start+count
	}
	payloads, err := s.readSealed(segs, missFrom, missTo-missFrom)
	if err != nil {
		return nil, err
	}
	for i, payload := range payloads {
		ord := missFrom + i
		if have[ord-start] {
			continue // was cached; no need to re-decode
		}
		var v T
		if err := json.Unmarshal(payload, &v); err != nil {
			return nil, fmt.Errorf("store: sealed entry %d: %w", ord, err)
		}
		out[ord-start] = v
		have[ord-start] = true
		if useCache && cache != nil {
			cache.put(ord, v)
		}
	}
	return out, nil
}
