package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kepler/internal/metrics"
)

// segFiles lists history-segment files with the given prefix, sorted.
func segFiles(t *testing.T, dir, prefix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, e.Name())
		}
	}
	return out
}

// fillCompacted appends bins one compaction at a time (CompactBytes=1 makes
// every bin close compact) so history accumulates across several sealed
// segments, and returns the reference history materialized before close.
func fillCompacted(t *testing.T, dir string, m *metrics.StoreStats, bins int) History {
	t.Helper()
	s := open(t, Options{Dir: dir, CompactBytes: 1, Metrics: m})
	appendAll(t, s, mkEvents(0, bins))
	ref := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &metrics.StoreStats{}
	const bins = 7
	ref := fillCompacted(t, dir, m, bins)
	if len(ref.Resolved) != bins || len(ref.Incidents) != bins {
		t.Fatalf("reference history has %d/%d entries, want %d/%d",
			len(ref.Resolved), len(ref.Incidents), bins, bins)
	}
	// Each compaction seals only the delta since the previous one: multiple
	// segments per type, none rewritten.
	if got := segFiles(t, dir, outSegPrefix); len(got) < 2 {
		t.Fatalf("want >=2 outage segments from %d compactions, got %v", bins, got)
	}
	ms := m.Snapshot()
	if ms.SegmentsSealed == 0 || ms.IndexWrites == 0 {
		t.Fatalf("expected sealed segments and index writes, got %+v", ms)
	}

	m2 := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: dir, CompactBytes: 1 << 30, Metrics: m2})
	defer s2.Close()
	if got := s2.History(); !reflect.DeepEqual(got, ref) {
		t.Errorf("history after reopen differs:\n got %+v\nwant %+v", got, ref)
	}
	// Reopen must not have needed a rebuild: the indexes written at
	// compaction are intact.
	if r := m2.Snapshot().IndexRebuilds; r != 0 {
		t.Errorf("index rebuilds on clean reopen = %d, want 0", r)
	}

	// Paged reads across all segment boundaries agree with the full
	// materialization, for every (start, count) window.
	for start := 0; start <= bins; start++ {
		for count := 0; count <= bins-start+2; count++ {
			got, err := s2.ReadOutages(start, count)
			if err != nil {
				t.Fatalf("ReadOutages(%d,%d): %v", start, count, err)
			}
			want := ref.Resolved[start:min(start+count, bins)]
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("ReadOutages(%d,%d) = %d entries, mismatch", start, count, len(got))
			}
			gotInc, err := s2.ReadIncidents(start, count)
			if err != nil {
				t.Fatalf("ReadIncidents(%d,%d): %v", start, count, err)
			}
			wantInc := ref.Incidents[start:min(start+count, bins)]
			if len(gotInc) != len(wantInc) || (len(gotInc) > 0 && !reflect.DeepEqual(gotInc, wantInc)) {
				t.Fatalf("ReadIncidents(%d,%d) mismatch", start, count)
			}
		}
	}

	sum := s2.Summary()
	if sum.ResolvedTotal != bins || sum.IncidentTotal != bins {
		t.Errorf("summary totals = %d/%d, want %d/%d", sum.ResolvedTotal, sum.IncidentTotal, bins, bins)
	}
}

func TestReadCacheCounters(t *testing.T) {
	dir := t.TempDir()
	const bins = 5
	fillCompacted(t, dir, &metrics.StoreStats{}, bins)

	m := &metrics.StoreStats{}
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30, ReadCache: 64, Metrics: m})
	defer s.Close()
	if _, err := s.ReadOutages(0, bins); err != nil {
		t.Fatal(err)
	}
	first := m.Snapshot()
	if first.ReadCacheMisses == 0 || first.SegmentReads == 0 {
		t.Fatalf("cold read should miss the cache and hit segments, got %+v", first)
	}
	if _, err := s.ReadOutages(0, bins); err != nil {
		t.Fatal(err)
	}
	second := m.Snapshot()
	if second.ReadCacheHits < int64(bins) {
		t.Errorf("warm read hits = %d, want >= %d", second.ReadCacheHits, bins)
	}
	if second.ReadCacheMisses != first.ReadCacheMisses {
		t.Errorf("warm read added misses: %d -> %d", first.ReadCacheMisses, second.ReadCacheMisses)
	}
	if second.SegmentReads != first.SegmentReads {
		t.Errorf("warm read touched segments: %d -> %d", first.SegmentReads, second.SegmentReads)
	}
}

func TestReadCacheEviction(t *testing.T) {
	dir := t.TempDir()
	const bins = 6
	ref := fillCompacted(t, dir, &metrics.StoreStats{}, bins)

	// A capacity-2 cache thrashes but must never serve wrong entries.
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30, ReadCache: 2})
	defer s.Close()
	for pass := 0; pass < 3; pass++ {
		for start := 0; start < bins; start++ {
			got, err := s.ReadOutages(start, 2)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Resolved[start:min(start+2, bins)]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d ReadOutages(%d,2) mismatch", pass, start)
			}
		}
	}
}

// corruptIndexes applies fn to every outage-segment index sidecar.
func corruptIndexes(t *testing.T, dir string, fn func(path string)) int {
	t.Helper()
	n := 0
	for _, name := range segFiles(t, dir, outSegPrefix) {
		fn(idxPath(filepath.Join(dir, name)))
		n++
	}
	if n == 0 {
		t.Fatal("no segments to corrupt")
	}
	return n
}

func TestIndexMissingRebuiltOnOpen(t *testing.T) {
	dir := t.TempDir()
	ref := fillCompacted(t, dir, &metrics.StoreStats{}, 5)
	n := corruptIndexes(t, dir, func(p string) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	})

	m := &metrics.StoreStats{}
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30, Metrics: m})
	defer s.Close()
	if got := int(m.Snapshot().IndexRebuilds); got != n {
		t.Errorf("index rebuilds = %d, want %d", got, n)
	}
	if got := s.History(); !reflect.DeepEqual(got.Resolved, ref.Resolved) {
		t.Error("history differs after index rebuild")
	}
	// Rebuilt indexes are rewritten: a second open scans nothing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: dir, CompactBytes: 1 << 30, Metrics: m2})
	defer s2.Close()
	if got := m2.Snapshot().IndexRebuilds; got != 0 {
		t.Errorf("rebuilds on second open = %d, want 0", got)
	}
}

func TestIndexCorruptionNeverWrongPages(t *testing.T) {
	cases := []struct {
		name string
		fn   func(t *testing.T, p string)
	}{
		{"truncated", func(t *testing.T, p string) {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, p string) {
			if err := os.WriteFile(p, []byte("not an index at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, p string) {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-3] ^= 0xff // flip inside an offset: CRC catches it
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, p string) {
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			const bins = 5
			ref := fillCompacted(t, dir, &metrics.StoreStats{}, bins)
			corruptIndexes(t, dir, func(p string) { tc.fn(t, p) })

			m := &metrics.StoreStats{}
			s := open(t, Options{Dir: dir, CompactBytes: 1 << 30, Metrics: m})
			defer s.Close()
			if m.Snapshot().IndexRebuilds == 0 {
				t.Error("corrupt index was accepted without a rebuild")
			}
			for start := 0; start < bins; start++ {
				got, err := s.ReadOutages(start, 2)
				if err != nil {
					t.Fatalf("ReadOutages(%d,2): %v", start, err)
				}
				want := ref.Resolved[start:min(start+2, bins)]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("ReadOutages(%d,2) served wrong page after %s index", start, tc.name)
				}
			}
			if got := s.History(); !reflect.DeepEqual(got.Resolved, ref.Resolved) {
				t.Error("history differs after corrupt-index recovery")
			}
		})
	}
}

func TestLegacyManifestMigration(t *testing.T) {
	// A v1 manifest inlines full history. Build one by hand: entries that
	// today would live in segments, inlined in the snap frame.
	dir := t.TempDir()
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30})
	appendAll(t, s, mkEvents(0, 4))
	ref := s.History()
	sum := s.Summary()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	legacy := t.TempDir()
	writeLegacySnap(t, legacy, snapState{
		Seq:       sum.LastSeq,
		LastBin:   sum.LastBin,
		Resolved:  ref.Resolved,
		Incidents: ref.Incidents,
		Pending:   sum.PendingProbes,
		Traces:    sum.Traces,
	})

	m := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: legacy, CompactBytes: 1, Metrics: m})
	if got := s2.History(); !reflect.DeepEqual(got.Resolved, ref.Resolved) || !reflect.DeepEqual(got.Incidents, ref.Incidents) {
		t.Fatal("legacy manifest history differs after open")
	}
	// The next compaction migrates: inline history moves to segments and
	// the manifest goes incremental.
	appendAll(t, s2, mkEvents(sum.LastSeq, 1))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := segFiles(t, legacy, outSegPrefix); len(got) == 0 {
		t.Fatal("no segments after migrating compaction")
	}

	s3 := open(t, Options{Dir: legacy, CompactBytes: 1 << 30})
	defer s3.Close()
	got := s3.History()
	if len(got.Resolved) != 5 || !reflect.DeepEqual(got.Resolved[:4], ref.Resolved) {
		t.Errorf("migrated history has %d resolved, prefix match=%v", len(got.Resolved), reflect.DeepEqual(got.Resolved[:4], ref.Resolved))
	}
	if sum3 := s3.Summary(); sum3.ResolvedTotal != 5 || sum3.IncidentTotal != 5 {
		t.Errorf("migrated totals = %d/%d, want 5/5", sum3.ResolvedTotal, sum3.IncidentTotal)
	}
}

// writeLegacySnap writes a version-0 (inline-history) snapshot manifest the
// way pre-incremental builds did.
func writeLegacySnap(t *testing.T, dir string, st snapState) {
	t.Helper()
	st.Version = 0
	payload, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, segName(snapPrefix, st.Seq)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSegmentTailDetected(t *testing.T) {
	// A segment whose final frame is torn (crash mid-seal would have left
	// a .tmp, but disks lie): the index rebuilt from a scan only covers
	// intact frames, and reads stay correct for those.
	dir := t.TempDir()
	const bins = 4
	ref := fillCompacted(t, dir, &metrics.StoreStats{}, bins)
	segs := segFiles(t, dir, outSegPrefix)
	last := filepath.Join(dir, segs[len(segs)-1])
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(idxPath(last)); err != nil {
		t.Fatal(err)
	}

	m := &metrics.StoreStats{}
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30, Metrics: m})
	defer s.Close()
	got := s.History()
	// The torn final entry is gone; everything before it is intact.
	if want := ref.Resolved[:bins-1]; !reflect.DeepEqual(got.Resolved, want) {
		t.Errorf("resolved after torn tail = %d entries, want %d intact", len(got.Resolved), len(want))
	}
}

func TestHistoryLargeCountClamped(t *testing.T) {
	dir := t.TempDir()
	const bins = 3
	fillCompacted(t, dir, &metrics.StoreStats{}, bins)
	s := open(t, Options{Dir: dir, CompactBytes: 1 << 30})
	defer s.Close()
	if got, err := s.ReadOutages(0, 1<<30); err != nil || len(got) != bins {
		t.Errorf("huge count: got %d entries, err=%v; want %d", len(got), err, bins)
	}
	if got, err := s.ReadOutages(bins+5, 2); err != nil || len(got) != 0 {
		t.Errorf("past-end start: got %d entries, err=%v; want 0", len(got), err)
	}
	if _, err := s.ReadOutages(-3, 2); err == nil {
		t.Error("negative start: want error, got nil")
	}
}
