package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kepler/internal/events"
	"kepler/internal/metrics"
)

func openCkptStore(t *testing.T, dir string, m *metrics.StoreStats) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mkCkpt(seq, records uint64) *Checkpoint {
	return &Checkpoint{
		EventSeq: seq,
		Records:  records,
		BinEnd:   time.Date(2016, 1, 1, 0, int(records), 0, 0, time.UTC),
		Engine:   json.RawMessage(fmt.Sprintf(`{"version":1,"records":%d}`, records)),
	}
}

func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ckptPrefix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCheckpointRoundTripAndRotation pins the segment lifecycle: newest
// wins, and only keepCheckpoints generations survive a save.
func TestCheckpointRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	m := &metrics.StoreStats{}
	s := openCkptStore(t, dir, m)
	for i, seq := range []uint64{10, 20, 30} {
		if err := s.SaveCheckpoint(mkCkpt(seq, uint64(i+1)*100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ckptFiles(t, dir); len(got) != keepCheckpoints {
		t.Fatalf("checkpoint files after rotation = %v, want %d", got, keepCheckpoints)
	}
	if m.CheckpointSaves.Load() != 3 || m.CheckpointBytes.Load() == 0 {
		t.Fatalf("save counters = %d/%d", m.CheckpointSaves.Load(), m.CheckpointBytes.Load())
	}

	c := s.LoadCheckpoint(nil)
	if c == nil || c.EventSeq != 30 || c.Records != 300 {
		t.Fatalf("loaded checkpoint = %+v, want seq 30", c)
	}
	if !c.BinEnd.Equal(mkCkpt(30, 300).BinEnd) {
		t.Fatalf("BinEnd did not round-trip: %v", c.BinEnd)
	}

	// A fresh Open over the same dir sees the same newest checkpoint.
	s2 := openCkptStore(t, dir, nil)
	if c2 := s2.LoadCheckpoint(nil); c2 == nil || c2.EventSeq != 30 {
		t.Fatalf("reopened store loaded %+v", c2)
	}
}

// corrupt applies fn to the named checkpoint segment's bytes.
func corrupt(t *testing.T, dir string, seq uint64, fn func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, segName(ckptPrefix, seq))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptionFallback is the recovery ladder: a truncated
// frame or a checksum mismatch in the newest checkpoint falls back to the
// older one; when that is gone too, LoadCheckpoint reports nothing and the
// caller re-ingests from record zero. Partial restores never happen — a
// damaged segment is rejected wholesale by the frame checksum.
func TestCheckpointCorruptionFallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated-frame", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-crc", func(b []byte) []byte {
			mut := append([]byte(nil), b...)
			mut[len(mut)-1] ^= 0xff // flip a payload byte: CRC32C mismatch
			return mut
		}},
		{"garbage", func(b []byte) []byte { return []byte("not a checkpoint at all") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m := &metrics.StoreStats{}
			s := openCkptStore(t, dir, m)
			if err := s.SaveCheckpoint(mkCkpt(10, 100)); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveCheckpoint(mkCkpt(20, 200)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, 20, tc.fn)

			c := s.LoadCheckpoint(nil)
			if c == nil || c.EventSeq != 10 {
				t.Fatalf("fallback loaded %+v, want the older seq-10 checkpoint", c)
			}
			if m.CheckpointsDiscarded.Load() != 1 {
				t.Fatalf("discarded counter = %d, want 1", m.CheckpointsDiscarded.Load())
			}

			corrupt(t, dir, 10, tc.fn)
			if c := s.LoadCheckpoint(nil); c != nil {
				t.Fatalf("both segments corrupt but LoadCheckpoint returned %+v", c)
			}
			if m.CheckpointsDiscarded.Load() != 3 {
				t.Fatalf("discarded counter = %d, want 3", m.CheckpointsDiscarded.Load())
			}
		})
	}
}

// TestCheckpointAcceptFallback pins the semantic gate: a structurally valid
// checkpoint the caller rejects (engine version mismatch, event sequence
// ahead of the durable horizon) falls back exactly like a corrupt one.
func TestCheckpointAcceptFallback(t *testing.T) {
	dir := t.TempDir()
	m := &metrics.StoreStats{}
	s := openCkptStore(t, dir, m)
	if err := s.SaveCheckpoint(mkCkpt(10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(mkCkpt(20, 200)); err != nil {
		t.Fatal(err)
	}

	// Reject the newest only — e.g. its EventSeq lies beyond the recovered
	// WAL horizon after a machine crash lost the last WAL pages.
	c := s.LoadCheckpoint(func(c *Checkpoint) error {
		if c.EventSeq > 15 {
			return fmt.Errorf("checkpoint ahead of durable horizon")
		}
		return nil
	})
	if c == nil || c.EventSeq != 10 {
		t.Fatalf("accept fallback loaded %+v, want seq 10", c)
	}
	if m.CheckpointsDiscarded.Load() != 1 {
		t.Fatalf("discarded counter = %d, want 1", m.CheckpointsDiscarded.Load())
	}

	// Reject everything — e.g. a core.CheckpointVersion bump: recovery must
	// degrade to full re-ingest, never a partial restore.
	if c := s.LoadCheckpoint(func(*Checkpoint) error { return fmt.Errorf("version mismatch") }); c != nil {
		t.Fatalf("all rejected but LoadCheckpoint returned %+v", c)
	}
}

// TestCheckpointSurvivesCompaction pins that WAL compaction's segment
// cleanup leaves checkpoint files alone.
func TestCheckpointSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, CompactBytes: 1}) // compact at every bin close
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SaveCheckpoint(mkCkpt(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(events.Event{Seq: 1, Time: time.Date(2016, 1, 1, 0, 1, 0, 0, time.UTC), Kind: events.KindBinClosed}); err != nil {
		t.Fatal(err)
	}
	if s.LoadCheckpoint(nil) == nil {
		t.Fatal("compaction removed the checkpoint segment")
	}
}
