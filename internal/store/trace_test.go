package store

import (
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
)

// mkTracedEvents fabricates bins like mkEvents but follows every resolved
// outage with its provenance trace, mirroring the investigator's emit
// order (resolved, then trace, then bin close).
func mkTracedEvents(startSeq uint64, bins int) []events.Event {
	var evs []events.Event
	seq := startSeq
	next := func(ev events.Event) {
		seq++
		ev.Seq = seq
		evs = append(evs, ev)
	}
	for b := 0; b < bins; b++ {
		bin := t0.Add(time.Duration(b+1) * time.Minute)
		pop := colo.PoP{Kind: colo.PoPFacility, ID: uint32(b + 1)}
		next(events.Event{Time: bin, Kind: events.KindOutageResolved, Outage: &core.Outage{
			PoP: pop, SignalPoP: pop, Start: bin.Add(-10 * time.Minute), End: bin,
			AffectedASes: []bgp.ASN{100, bgp.ASN(200 + b)}, DivertedPaths: 10 + b,
		}})
		next(events.Event{Time: bin, Kind: events.KindTrace, Trace: &core.OutageTrace{
			Version: core.TraceVersion, PoP: pop,
			Start: bin.Add(-10 * time.Minute), End: bin,
			Chapters: []core.TraceChapter{{
				Bin: bin, SignalPoP: pop,
				Signals: []core.TraceSignal{{
					Near: bgp.ASN(100 + b), Diverted: 10 + b, Stable: 40,
				}},
			}},
		}})
		next(events.Event{Time: bin, Kind: events.KindBinClosed})
	}
	return evs
}

// TestTraceRoundTrip persists traced bins through close/reopen and asserts
// the evidence chains come back verbatim, aligned with their outages.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := mkTracedEvents(0, 3)
	s := open(t, Options{Dir: dir})
	appendAll(t, s, evs)
	want := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(want.Traces) != 3 || want.TraceBase != 0 {
		t.Fatalf("pre-close traces = %d (base %d), want 3 (base 0)", len(want.Traces), want.TraceBase)
	}

	s2 := open(t, Options{Dir: dir})
	defer s2.Close()
	got := s2.History()
	if !reflect.DeepEqual(got.Traces, want.Traces) || got.TraceBase != want.TraceBase {
		t.Errorf("recovered traces diverge:\n got:  %+v (base %d)\n want: %+v (base %d)",
			got.Traces, got.TraceBase, want.Traces, want.TraceBase)
	}
	for j, tr := range got.Traces {
		o := got.Resolved[got.TraceBase+j]
		if tr.PoP != o.PoP || len(tr.Chapters) == 0 {
			t.Errorf("trace %d misaligned or empty: %+v vs outage %+v", j, tr, o)
		}
	}
}

// TestTraceSurvivesCompaction forces a compaction at every bin close and
// checks the traces ride along into the snapshot segment.
func TestTraceSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir, CompactBytes: 1})
	appendAll(t, s, mkTracedEvents(0, 4))
	want := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, Options{Dir: dir})
	defer s2.Close()
	got := s2.History()
	if !reflect.DeepEqual(got.Traces, want.Traces) || got.TraceBase != want.TraceBase {
		t.Errorf("traces lost across compaction: got %d (base %d), want %d (base %d)",
			len(got.Traces), got.TraceBase, len(want.Traces), want.TraceBase)
	}
}

// TestTraceCapEviction bounds retention: with TraceCap=2 only the newest
// two traces survive and TraceBase advances so trace j still describes
// resolved outage TraceBase+j.
func TestTraceCapEviction(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir(), TraceCap: 2})
	defer s.Close()
	appendAll(t, s, mkTracedEvents(0, 5))
	h := s.History()
	if len(h.Traces) != 2 || h.TraceBase != 3 {
		t.Fatalf("traces = %d (base %d), want 2 (base 3)", len(h.Traces), h.TraceBase)
	}
	for j, tr := range h.Traces {
		if o := h.Resolved[h.TraceBase+j]; tr.PoP != o.PoP {
			t.Errorf("trace %d maps to %v, want %v", j, tr.PoP, o.PoP)
		}
	}
}

// TestTraceRealignment models tracing enabled mid-history: untraced bins
// first, then traced ones. The trace window must anchor at the first traced
// outage, not at index zero.
func TestTraceRealignment(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	defer s.Close()
	plain := mkEvents(0, 2) // 2 resolved outages, no traces
	appendAll(t, s, plain)
	appendAll(t, s, mkTracedEvents(uint64(len(plain)), 2))
	h := s.History()
	if len(h.Resolved) != 4 {
		t.Fatalf("resolved = %d, want 4", len(h.Resolved))
	}
	if len(h.Traces) != 2 || h.TraceBase != 2 {
		t.Fatalf("traces = %d (base %d), want 2 (base 2)", len(h.Traces), h.TraceBase)
	}
}
