package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

var t0 = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

// mkEvents fabricates a gapless lifecycle sequence: each "bin" carries an
// opened status, an incident, a resolved outage, and the bin-close marker
// (which is what flushes the WAL), with distinguishable payloads.
func mkEvents(startSeq uint64, bins int) []events.Event {
	var evs []events.Event
	seq := startSeq
	next := func(ev events.Event) {
		seq++
		ev.Seq = seq
		evs = append(evs, ev)
	}
	for b := 0; b < bins; b++ {
		bin := t0.Add(time.Duration(b+1) * time.Minute)
		pop := colo.PoP{Kind: colo.PoPFacility, ID: uint32(b + 1)}
		next(events.Event{Time: bin, Kind: events.KindOutageOpened, Status: &core.OutageStatus{
			PoP: pop, Start: bin, LastSignal: bin, WaitingPaths: 10 + b,
		}})
		next(events.Event{Time: bin, Kind: events.KindIncident, Incident: &core.Incident{
			Time: bin, Kind: core.IncidentPoP, PoP: pop,
			AffectedASes: []bgp.ASN{100, bgp.ASN(200 + b)}, Links: b, Paths: 3 * b,
		}})
		next(events.Event{Time: bin, Kind: events.KindOutageResolved, Outage: &core.Outage{
			PoP: pop, SignalPoP: pop, Start: bin.Add(-10 * time.Minute), End: bin,
			AffectedASes: []bgp.ASN{100, bgp.ASN(200 + b)}, DivertedPaths: 10 + b,
		}})
		next(events.Event{Time: bin, Kind: events.KindBinClosed})
	}
	return evs
}

func appendAll(t *testing.T, s *Store, evs []events.Event) {
	t.Helper()
	for _, ev := range evs {
		if err := s.Append(ev); err != nil {
			t.Fatalf("append seq %d: %v", ev.Seq, err)
		}
	}
}

func open(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenEmptyDir(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	defer s.Close()
	h := s.History()
	if h.LastSeq != 0 || len(h.Resolved) != 0 || len(h.Incidents) != 0 || len(h.Tail) != 0 {
		t.Fatalf("fresh store not empty: %+v", h)
	}
	if err := s.Append(events.Event{Seq: 1, Time: t0, Kind: events.KindBinClosed}); err != nil {
		t.Fatalf("first append: %v", err)
	}
}

func TestCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := mkEvents(0, 3)
	s := open(t, Options{Dir: dir})
	appendAll(t, s, evs)
	want := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if want.LastSeq != uint64(len(evs)) || len(want.Resolved) != 3 || len(want.Incidents) != 3 {
		t.Fatalf("unexpected pre-close history: %+v", want)
	}

	m := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: dir, Metrics: m})
	defer s2.Close()
	got := s2.History()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered history diverges:\n got:  %+v\n want: %+v", got, want)
	}
	if n := m.RecoveredEvents.Load(); n != int64(len(evs)) {
		t.Errorf("recovered events = %d, want %d", n, len(evs))
	}
	if m.TornTails.Load() != 0 {
		t.Errorf("clean close reported a torn tail")
	}
}

// TestKillRecovery is the SIGKILL model: the store is abandoned without
// Close. Everything up to the last bin close (the last flush point) must
// survive; events buffered after it are gone, and a fresh store resumes
// appends at the durable horizon.
func TestKillRecovery(t *testing.T) {
	dir := t.TempDir()
	evs := mkEvents(0, 4)
	half := evs[:len(evs)/2] // ends exactly on a bin close (4 events per bin)
	s := open(t, Options{Dir: dir})
	appendAll(t, s, half)
	durable := s.History()
	// Post-flush straggler that never sees a bin close: lost with the
	// process, like any frame still in the user-space buffer at SIGKILL.
	straggler := mkEvents(durable.LastSeq, 1)[0]
	if err := s.Append(straggler); err != nil {
		t.Fatal(err)
	}
	// No Close: the *os.File is leaked exactly as a killed process leaks it.

	s2 := open(t, Options{Dir: dir})
	got := s2.History()
	if !reflect.DeepEqual(got, durable) {
		t.Errorf("post-kill history diverges from last flush:\n got:  %+v\n want: %+v", got, durable)
	}

	// The rest of the stream re-appends cleanly, including the event that
	// was lost in the buffer, and a final clean reopen sees everything.
	rest := mkEvents(got.LastSeq, 2)
	appendAll(t, s2, rest)
	want := s2.History()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, Options{Dir: dir})
	defer s3.Close()
	if got := s3.History(); !reflect.DeepEqual(got, want) {
		t.Errorf("history after kill+resume+reopen diverges")
	}
}

func walPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one WAL in %s, got %v (%v)", dir, matches, err)
	}
	return matches[0]
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	evs := mkEvents(0, 2)
	s := open(t, Options{Dir: dir})
	appendAll(t, s, evs)
	want := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn write: half a frame header plus garbage at the tail.
	wal := walPath(t, dir)
	intact, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, intact...), 0x00, 0x00, 0x01, 0xfe, 0xca)
	if err := os.WriteFile(wal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	m := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: dir, Metrics: m})
	defer s2.Close()
	if got := s2.History(); !reflect.DeepEqual(got, want) {
		t.Errorf("history after torn tail diverges:\n got:  %+v\n want: %+v", got, want)
	}
	if m.TornTails.Load() != 1 {
		t.Errorf("torn tails = %d, want 1", m.TornTails.Load())
	}
	if m.TruncatedBytes.Load() != int64(len(torn)-len(intact)) {
		t.Errorf("truncated bytes = %d, want %d", m.TruncatedBytes.Load(), len(torn)-len(intact))
	}
	// The file itself was repaired, so the next recovery is clean.
	if b, _ := os.ReadFile(wal); len(b) != len(intact) {
		t.Errorf("WAL not truncated back to last intact frame: %d bytes, want %d", len(b), len(intact))
	}
}

func TestCorruptFrameTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	evs := mkEvents(0, 3)
	s := open(t, Options{Dir: dir})
	appendAll(t, s, evs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the state a recovery of only the first two bins yields.
	refDir := t.TempDir()
	ref := open(t, Options{Dir: refDir})
	appendAll(t, ref, evs[:8])
	want := ref.History()
	ref.Close()

	// Flip one payload byte in the 9th frame (first event of bin 3): its
	// checksum fails, so recovery must keep bins 1-2 and discard the rest —
	// a checksum miss means nothing after that point can be trusted.
	wal := walPath(t, dir)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 8; i++ {
		_, n, err := readFrame(b[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	b[off+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	m := &metrics.StoreStats{}
	s2 := open(t, Options{Dir: dir, Metrics: m})
	defer s2.Close()
	got := s2.History()
	if got.LastSeq != want.LastSeq || !reflect.DeepEqual(got.Resolved, want.Resolved) {
		t.Errorf("recovery past corrupt frame: got seq %d, want %d", got.LastSeq, want.LastSeq)
	}
	if m.TornTails.Load() != 1 || m.TruncatedBytes.Load() == 0 {
		t.Errorf("corruption not accounted: torn=%d truncated=%d",
			m.TornTails.Load(), m.TruncatedBytes.Load())
	}
}

func TestSequenceGapRejected(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	defer s.Close()
	if err := s.Append(events.Event{Seq: 1, Time: t0, Kind: events.KindBinClosed}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(events.Event{Seq: 3, Time: t0, Kind: events.KindBinClosed}); err == nil {
		t.Fatal("append with sequence gap accepted")
	}
	if err := s.Append(events.Event{Seq: 2, Time: t0, Kind: events.KindBinClosed}); err != nil {
		t.Fatalf("contiguous append after rejected gap: %v", err)
	}
}

func TestCompactionRotatesAndPreservesHistory(t *testing.T) {
	dir := t.TempDir()
	m := &metrics.StoreStats{}
	// CompactBytes=1: every bin close compacts.
	s := open(t, Options{Dir: dir, CompactBytes: 1, TailEvents: 6, Metrics: m})
	evs := mkEvents(0, 5)
	appendAll(t, s, evs)
	want := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Compactions.Load() != 5 {
		t.Errorf("compactions = %d, want 5", m.Compactions.Load())
	}

	// Exactly one snapshot and one (empty) WAL remain, both at the head seq.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, e := range entries {
		if n, ok := parseSeg(e.Name(), snapPrefix); ok {
			snaps++
			if n != want.LastSeq {
				t.Errorf("stale snapshot segment %s survived compaction", e.Name())
			}
		}
		if n, ok := parseSeg(e.Name(), walPrefix); ok {
			wals++
			if n != want.LastSeq {
				t.Errorf("stale WAL segment %s survived compaction", e.Name())
			}
		}
	}
	if snaps != 1 || wals != 1 {
		t.Errorf("segments after compaction: %d snaps, %d wals, want 1+1", snaps, wals)
	}

	// Recovery from the snapshot alone reproduces the full history,
	// including the bounded tail window (6 of 20 events).
	s2 := open(t, Options{Dir: dir, CompactBytes: 1, TailEvents: 6})
	defer s2.Close()
	got := s2.History()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-compaction recovery diverges:\n got:  %+v\n want: %+v", got, want)
	}
	if len(got.Tail) != 6 || got.Tail[len(got.Tail)-1].Seq != want.LastSeq {
		t.Errorf("tail window wrong: %d events ending at %d", len(got.Tail), got.Tail[len(got.Tail)-1].Seq)
	}
}

// TestCompactionThenAppendsThenKill exercises the full lifecycle: compact,
// keep appending into the rotated WAL, die without Close, recover — the
// snapshot plus the rotated WAL's flushed frames must both contribute.
func TestCompactionThenAppendsThenKill(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir, CompactBytes: 1})
	first := mkEvents(0, 2)
	appendAll(t, s, first) // compacts at each bin close
	more := mkEvents(uint64(len(first)), 3)
	appendAll(t, s, more)
	want := s.History()
	// SIGKILL: no Close.

	s2 := open(t, Options{Dir: dir, CompactBytes: 1 << 30})
	defer s2.Close()
	if got := s2.History(); got.LastSeq != want.LastSeq ||
		!reflect.DeepEqual(got.Resolved, want.Resolved) ||
		!reflect.DeepEqual(got.Incidents, want.Incidents) {
		t.Errorf("kill after compaction+appends: got seq %d / %d outages, want seq %d / %d",
			got.LastSeq, len(got.Resolved), want.LastSeq, len(want.Resolved))
	}
}

func TestAppendAfterCloseRejected(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(events.Event{Seq: 1, Kind: events.KindBinClosed}); err == nil {
		t.Fatal("append after Close accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPendingProbeRecovery pins the mid-campaign restart contract: probe
// campaigns that were requested but neither confirmed nor expired when the
// process stopped come back from recovery (WAL replay and snapshot segment
// alike) as History.PendingProbes, while settled campaigns do not.
func TestPendingProbeRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})

	pend := func(id uint64) *core.PendingConfirmation {
		return &core.PendingConfirmation{
			ID: id, At: t0.Add(time.Duration(id) * time.Minute),
			Deadline:  t0.Add(time.Duration(id)*time.Minute + 10*time.Minute),
			SignalPoP: colo.FacilityPoP(colo.FacilityID(id)),
			Epicenter: colo.FacilityPoP(colo.FacilityID(id)),
			Candidates: []colo.PoP{
				colo.FacilityPoP(colo.FacilityID(id)),
			},
			AffectedASes: []bgp.ASN{100, 200},
			Paths:        12,
		}
	}
	evs := []events.Event{
		{Seq: 1, Time: t0, Kind: events.KindProbeRequested, Pending: pend(1)},
		{Seq: 2, Time: t0, Kind: events.KindProbeRequested, Pending: pend(2)},
		{Seq: 3, Time: t0, Kind: events.KindProbeConfirmed, Probe: &core.ProbeOutcome{
			Pending: *pend(1), Located: true, Epicenter: colo.FacilityPoP(1), Confirmed: true, Checked: true,
		}},
		{Seq: 4, Time: t0, Kind: events.KindProbeRequested, Pending: pend(3)},
		{Seq: 5, Time: t0, Kind: events.KindProbeExpired, Probe: &core.ProbeOutcome{
			Pending: *pend(3), Expired: true,
		}},
		{Seq: 6, Time: t0.Add(time.Minute), Kind: events.KindBinClosed},
	}
	appendAll(t, s, evs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL-only recovery: campaign 2 is the lone survivor.
	s = open(t, Options{Dir: dir})
	hist := s.History()
	if len(hist.PendingProbes) != 1 || hist.PendingProbes[0].ID != 2 {
		t.Fatalf("recovered pending = %+v, want campaign 2 only", hist.PendingProbes)
	}
	if !reflect.DeepEqual(hist.PendingProbes[0], *pend(2)) {
		t.Fatalf("pending payload drifted:\n got  %+v\n want %+v", hist.PendingProbes[0], *pend(2))
	}

	// Force a compaction so the pending state must survive the snapshot
	// segment too, then reopen again.
	s.opts.CompactBytes = 1
	appendAll(t, s, []events.Event{
		{Seq: 7, Time: t0.Add(2 * time.Minute), Kind: events.KindBinClosed},
	})
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("compaction never produced a snapshot segment")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = open(t, Options{Dir: dir})
	defer s.Close()
	hist = s.History()
	if len(hist.PendingProbes) != 1 || hist.PendingProbes[0].ID != 2 {
		t.Fatalf("pending lost across compaction: %+v", hist.PendingProbes)
	}
}
