// Package store is the durable history layer of the live service: an
// append-only write-ahead log of detection lifecycle events (outage
// opened/updated/resolved, incident classified, bin closed) with periodic
// compaction into snapshot segments and a crash-tolerant recovery path.
//
// The daemon's problem is that its resolved-outage list and incident log
// otherwise live only in memory: a deploy, crash or OOM erases the
// detection record of a system whose whole point is reporting multi-hour
// infrastructure outages observed over months. The store closes that gap
// without touching the hot path's concurrency story: it is written
// synchronously from the event bus's sink — the ingestion goroutine, at bin
// boundaries, the only points where outage state changes — so it needs no
// locking against the detection engine, and API reads continue to come from
// the server's immutable snapshot, never from disk.
//
// # On-disk layout
//
// A data directory holds at most one active snapshot segment and one WAL:
//
//	snap-%016x.snap   materialized history as of sequence N (atomic rename)
//	wal-%016x.log     events with sequence > N, one frame each
//
// Every frame is length-prefixed and checksummed:
//
//	[4B big-endian payload length][4B CRC32-Castagnoli][JSON payload]
//
// The WAL payload is one events.Event; the snapshot payload is the full
// materialized state (resolved outages, incidents, last bin, event tail).
// When the WAL grows past Options.CompactBytes the store — at a bin
// boundary — writes a fresh snapshot segment, rotates to an empty WAL and
// deletes the superseded files, so disk use is bounded by the history size
// plus one WAL window rather than by total event volume.
//
// # Recovery and the equivalence guarantee
//
// Open loads the newest valid snapshot and replays the WAL on top of it,
// verifying each frame's checksum and sequence contiguity. A torn or
// corrupt tail — the signature of a crash mid-write — is truncated at the
// last intact frame and counted, after which appends continue normally.
// Recovery hands back the materialized history plus the retained event
// tail, which the daemon uses to seed the server's boot snapshot, the event
// bus's starting sequence (SSE ids stay gapless across restarts) and its
// Last-Event-ID replay ring. Because detection is deterministic for a given
// record stream, a restarted daemon re-ingests its source from the
// beginning while events.GateHooks suppresses re-publication of the
// prefix already persisted here — so a restart mid-archive followed by
// replay of the remainder yields exactly the resolved-outage set of one
// uninterrupted batch Detector run.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"kepler/internal/core"
	"kepler/internal/events"
	"kepler/internal/metrics"
)

const (
	frameHeaderSize = 8        // 4B length + 4B CRC32C
	maxFrameSize    = 64 << 20 // sanity bound against corrupt length words
	walPrefix       = "wal-"
	snapPrefix      = "snap-"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// CompactBytes is the WAL size past which the next bin boundary
	// triggers compaction into a snapshot segment (default 8 MiB).
	CompactBytes int64
	// TailEvents is how many recent events the store retains in memory and
	// in snapshot segments for SSE resume across restarts (default 4096).
	TailEvents int
	// TraceCap bounds the provenance traces retained alongside the resolved
	// outages (Config.Tracing): when exceeded, the oldest outages' traces are
	// dropped first and History.TraceBase advances, keeping the
	// resolved-index-to-trace mapping intact (default 1024).
	TraceCap int
	// ReadCache is the capacity, in decoded entries per history type, of
	// the LRU fronting sealed-segment reads (default 4096). It bounds the
	// resident memory of the disk-backed read path: pages outside the cache
	// cost one positioned read of the segment file.
	ReadCache int
	// Metrics receives append/flush/compaction/recovery counters. Optional.
	Metrics *metrics.StoreStats
	// Logger receives recovery, compaction and corruption reports. Nil
	// discards them; counterpart counters still reach Metrics either way.
	Logger *slog.Logger
}

func (o *Options) defaults() {
	if o.CompactBytes <= 0 {
		o.CompactBytes = 8 << 20
	}
	if o.TailEvents <= 0 {
		o.TailEvents = 4096
	}
	if o.TraceCap <= 0 {
		o.TraceCap = 1024
	}
	if o.ReadCache <= 0 {
		o.ReadCache = 4096
	}
}

// History is the materialized state recovery hands back: everything the
// daemon needs to resume serving as if it had never stopped.
type History struct {
	// LastSeq is the sequence of the newest durable event; the bus resumes
	// publishing at LastSeq+1 and GateHooks suppresses that many replayed
	// callbacks.
	LastSeq uint64
	// LastBin is the close time of the newest persisted bin.
	LastBin time.Time
	// Resolved holds every persisted completed outage, oldest first.
	Resolved []core.Outage
	// Incidents holds every persisted classified signal, oldest first.
	Incidents []core.Incident
	// PendingProbes holds the probe campaigns that were requested but had
	// neither confirmed nor expired when the process stopped, ascending by
	// campaign id — the mid-campaign state a restarted daemon serves
	// immediately and re-parks during catch-up re-ingestion.
	PendingProbes []core.PendingConfirmation
	// Traces holds the retained provenance traces (Config.Tracing): trace j
	// describes resolved outage TraceBase+j. TraceBase counts traces dropped
	// by Options.TraceCap (and resolved outages persisted before tracing
	// produced any trace events).
	Traces    []core.OutageTrace
	TraceBase int
	// Tail is the retained recent-event window (ascending seq), the seed
	// for the bus's Last-Event-ID replay ring.
	Tail []events.Event
}

// Store is a WAL-backed outage history. Append runs on the ingestion
// goroutine (via the bus sink); History and Stats may be called from
// anywhere. Use Open; the zero value is not usable.
type Store struct {
	opts Options
	m    *metrics.StoreStats

	mu      sync.Mutex
	seq     uint64
	lastBin time.Time
	// History lives in two tiers: sealed immutable segments on disk (with
	// loaded offset indexes) and the unsealed in-memory tail accumulated
	// since the last compaction. outBase/incBase are the ordinals of the
	// first unsealed entry; totals are base + len(tail).
	outSegs   []*segment
	incSegs   []*segment
	outBase   int
	incBase   int
	outTail   []core.Outage
	incTail   []core.Incident
	pending   map[uint64]core.PendingConfirmation // open probe campaigns
	tail      *events.Ring                        // retains the last opts.TailEvents events
	traces    []core.OutageTrace                  // trace j -> resolved outage traceBase+j
	traceBase int

	outCache *lru[core.Outage]   // decoded sealed-outage LRU
	incCache *lru[core.Incident] // decoded sealed-incident LRU

	f        *os.File
	bw       *bufio.Writer
	walBase  uint64
	walBytes int64
	closed   bool

	log *slog.Logger
}

// snapState is the snapshot-manifest payload. Version 2 manifests are
// incremental: history entries live in sealed segments, so the manifest
// carries only the totals (plus the bounded pending/trace/tail state) and
// its size no longer grows with history. Version 0 (legacy) manifests
// inline the full Resolved/Incidents arrays; recovery accepts both and the
// next compaction migrates a legacy history into segments.
type snapState struct {
	Version       int                        `json:"version,omitempty"`
	Seq           uint64                     `json:"seq"`
	LastBin       time.Time                  `json:"last_bin"`
	ResolvedTotal int                        `json:"resolved_total,omitempty"`
	IncidentTotal int                        `json:"incident_total,omitempty"`
	Resolved      []core.Outage              `json:"resolved,omitempty"`
	Incidents     []core.Incident            `json:"incidents,omitempty"`
	Pending       []core.PendingConfirmation `json:"pending_probes,omitempty"`
	Traces        []core.OutageTrace         `json:"traces,omitempty"`
	TraceBase     int                        `json:"trace_base,omitempty"`
	Tail          []events.Event             `json:"tail"`
}

// snapVersionIncremental marks a manifest whose history is sealed in
// segments rather than inlined.
const snapVersionIncremental = 2

// Open opens (or initializes) the store in dir, recovering any persisted
// history: the newest valid snapshot segment is loaded, the WAL replayed on
// top with per-frame checksum and sequence verification, and a torn tail
// truncated. The store is ready for appends on return.
func Open(opts Options) (*Store, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Store{
		opts:     opts,
		m:        opts.Metrics,
		log:      log,
		pending:  make(map[uint64]core.PendingConfirmation),
		tail:     events.NewRing(opts.TailEvents),
		outCache: newLRU[core.Outage](opts.ReadCache),
		incCache: newLRU[core.Incident](opts.ReadCache),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.log.Debug("history recovered",
		"seq", s.seq, "resolved", s.outBase+len(s.outTail), "incidents", s.incBase+len(s.incTail),
		"sealed_outages", s.outBase, "sealed_incidents", s.incBase, "segments", len(s.outSegs)+len(s.incSegs),
		"pending_probes", len(s.pending), "traces", len(s.traces), "wal_bytes", s.walBytes)
	return s, nil
}

// segName renders a segment file name for a base sequence.
func segName(prefix string, seq uint64) string {
	return fmt.Sprintf("%s%016x%s", prefix, seq, segExt(prefix))
}

func segExt(prefix string) string {
	switch prefix {
	case snapPrefix:
		return ".snap"
	case ckptPrefix:
		return ".ckpt"
	case outSegPrefix, incSegPrefix:
		return ".seg"
	default:
		return ".log"
	}
}

// parseSeg extracts the base sequence from a segment file name.
func parseSeg(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segExt(prefix)) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), segExt(prefix))
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover loads the sealed history segments and the newest valid snapshot
// manifest, replays the matching WAL, and leaves the store positioned for
// appends. store.Open never materializes sealed history into memory: only
// the manifest's bounded state (pending probes, traces, event tail) and
// the unsealed WAL window are resident afterwards.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Segments first: their entry counts are the authoritative sealed
	// totals the manifest is reconciled against.
	if s.outSegs, err = s.loadSegments(outSegPrefix, entries); err != nil {
		return err
	}
	if s.incSegs, err = s.loadSegments(incSegPrefix, entries); err != nil {
		return err
	}

	var snaps []uint64
	for _, e := range entries {
		if n, ok := parseSeg(e.Name(), snapPrefix); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	// Newest parseable snapshot wins; a corrupt one (torn rename is
	// prevented by tmp+rename, but disks lie) falls back to the next.
	for _, n := range snaps {
		st, err := s.loadSnap(segName(snapPrefix, n))
		if err != nil {
			continue
		}
		s.seq = st.Seq
		s.lastBin = st.LastBin
		s.traces = st.Traces
		s.traceBase = st.TraceBase
		for _, p := range st.Pending {
			s.pending[p.ID] = p
		}
		for _, ev := range st.Tail {
			s.tail.Push(ev)
		}
		switch {
		case st.Version >= snapVersionIncremental:
			// Incremental manifest: history is sealed; only totals travel.
			s.outBase, s.incBase = st.ResolvedTotal, st.IncidentTotal
		case sealedTotal(s.outSegs) > 0 || sealedTotal(s.incSegs) > 0:
			// Legacy inline manifest but segments exist: a crash landed
			// between sealing and the first incremental manifest write, so
			// every inline entry is already sealed — drop the inline copy.
			s.outBase, s.incBase = len(st.Resolved), len(st.Incidents)
		default:
			// Legacy inline manifest: the inline entries become the
			// unsealed tail and migrate into segments at the next
			// compaction.
			s.outTail, s.incTail = st.Resolved, st.Incidents
		}
		break
	}
	s.walBase = s.seq

	if err := s.replayWAL(filepath.Join(s.opts.Dir, segName(walPrefix, s.walBase))); err != nil {
		return err
	}
	s.reconcileSealed()

	// Reopen the WAL for appending (creating it on first boot).
	f, err := os.OpenFile(filepath.Join(s.opts.Dir, segName(walPrefix, s.walBase)),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.walBytes = fi.Size()
	s.bw = bufio.NewWriter(f)
	return nil
}

// reconcileSealed resolves the overlap between sealed segments and the
// replayed WAL. A crash between segment sealing and the manifest rename
// leaves segments newer than the manifest: the first entries replayed from
// the WAL are then already sealed, so they are dropped from the unsealed
// tail (sealing preserves order, making the overlap exactly a prefix). The
// inverse — a manifest claiming more sealed entries than the segments hold
// — means segment files were lost; totals clamp to what is servable.
func (s *Store) reconcileSealed() {
	sealedOut, sealedInc := sealedTotal(s.outSegs), sealedTotal(s.incSegs)
	if over := sealedOut - s.outBase; over > 0 {
		if over > len(s.outTail) {
			s.log.Error("sealed outages exceed recovered history; clamping",
				"sealed", sealedOut, "recovered", s.outBase+len(s.outTail))
			over = len(s.outTail)
		}
		s.outTail = append([]core.Outage(nil), s.outTail[over:]...)
		s.outBase += over
	} else if over < 0 {
		s.log.Error("manifest outage total exceeds sealed segments; history truncated",
			"manifest_total", s.outBase, "sealed", sealedOut)
		s.outBase = sealedOut
	}
	if over := sealedInc - s.incBase; over > 0 {
		if over > len(s.incTail) {
			s.log.Error("sealed incidents exceed recovered history; clamping",
				"sealed", sealedInc, "recovered", s.incBase+len(s.incTail))
			over = len(s.incTail)
		}
		s.incTail = append([]core.Incident(nil), s.incTail[over:]...)
		s.incBase += over
	} else if over < 0 {
		s.log.Error("manifest incident total exceeds sealed segments; history truncated",
			"manifest_total", s.incBase, "sealed", sealedInc)
		s.incBase = sealedInc
	}
}

// loadSnap reads and validates one snapshot segment.
func (s *Store) loadSnap(name string) (*snapState, error) {
	b, err := os.ReadFile(filepath.Join(s.opts.Dir, name))
	if err != nil {
		return nil, err
	}
	payload, n, err := readFrame(b)
	if err != nil || n != len(b) {
		return nil, fmt.Errorf("store: snapshot %s invalid", name)
	}
	var st snapState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", name, err)
	}
	return &st, nil
}

// replayWAL applies every intact frame of the WAL to the materialized
// state, truncating the file at the first torn or corrupt frame.
func (s *Store) replayWAL(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // first boot, or crash between snapshot and rotation
		}
		return fmt.Errorf("store: %w", err)
	}
	off := 0
	replayed := int64(0)
	for off < len(b) {
		payload, n, err := readFrame(b[off:])
		if err != nil {
			break // torn tail: truncate from here
		}
		var ev events.Event
		if json.Unmarshal(payload, &ev) != nil || ev.Seq != s.seq+1 {
			break // undecodable or non-contiguous: treat as corruption
		}
		s.apply(ev)
		off += n
		replayed++
	}
	if s.m != nil {
		s.m.RecoveredEvents.Add(replayed)
	}
	if off < len(b) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		s.log.Warn("torn WAL tail truncated", "wal", filepath.Base(path),
			"truncated_bytes", len(b)-off, "replayed_events", replayed)
		if s.m != nil {
			s.m.TornTails.Add(1)
			s.m.TruncatedBytes.Add(int64(len(b) - off))
		}
	}
	return nil
}

// readFrame parses one [len][crc][payload] frame from the head of b,
// returning the payload and total frame size.
func readFrame(b []byte) (payload []byte, frameLen int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n == 0 || n > maxFrameSize {
		return nil, 0, fmt.Errorf("store: implausible frame length %d", n)
	}
	if len(b) < frameHeaderSize+int(n) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload = b[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("store: frame checksum mismatch")
	}
	return payload, frameHeaderSize + int(n), nil
}

// writeFrame appends one framed payload to w.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeaderSize + len(payload), nil
}

// apply folds one event into the materialized history.
func (s *Store) apply(ev events.Event) {
	s.seq = ev.Seq
	switch ev.Kind {
	case events.KindOutageResolved:
		if ev.Outage != nil {
			s.outTail = append(s.outTail, *ev.Outage)
		}
	case events.KindIncident:
		if ev.Incident != nil {
			s.incTail = append(s.incTail, *ev.Incident)
		}
	case events.KindBinClosed:
		s.lastBin = ev.Time
	case events.KindProbeRequested:
		if ev.Pending != nil {
			s.pending[ev.Pending.ID] = *ev.Pending
		}
	case events.KindProbeConfirmed, events.KindProbeExpired:
		if ev.Probe != nil {
			delete(s.pending, ev.Probe.Pending.ID)
		}
	case events.KindTrace:
		if ev.Trace != nil {
			s.applyTrace(*ev.Trace)
		}
	}
	s.tail.Push(ev)
}

// applyTrace folds one provenance trace into the retained window. A trace
// event always follows its outage's resolved event, so it belongs to the
// newest resolved outage; the realignment below also makes recovery robust
// to histories whose older prefix predates tracing. Called with the lock
// held (or during single-threaded recovery).
func (s *Store) applyTrace(tr core.OutageTrace) {
	idx := s.outBase + len(s.outTail) - 1
	if idx < 0 {
		return // trace without a resolved outage: wiring anomaly, drop
	}
	switch {
	case len(s.traces) == 0:
		s.traceBase = idx
	case s.traceBase+len(s.traces) != idx:
		// Misaligned (tracing toggled mid-history): restart the window so at
		// least the newest traces map correctly.
		s.traces = s.traces[:0]
		s.traceBase = idx
	}
	s.traces = append(s.traces, tr)
	if drop := len(s.traces) - s.opts.TraceCap; drop > 0 {
		s.traces = append(s.traces[:0], s.traces[drop:]...)
		s.traceBase += drop
	}
}

// Append durably records one lifecycle event. Events must arrive in
// sequence order with no gaps (the bus sink guarantees this); a gap is a
// wiring bug and is rejected. Writes are buffered; the buffer is flushed to
// the OS at every bin close — the natural consistency point, since hooks
// only fire at bin boundaries — and fsynced at compaction and Close. A bin
// close that leaves the WAL over the compaction threshold triggers
// compaction before returning.
func (s *Store) Append(ev events.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append after Close")
	}
	if ev.Seq != s.seq+1 {
		return fmt.Errorf("store: sequence gap: append seq %d after %d", ev.Seq, s.seq)
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n, err := writeFrame(s.bw, payload)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes += int64(n)
	if s.m != nil {
		s.m.Appends.Add(1)
		s.m.AppendedBytes.Add(int64(n))
	}
	s.apply(ev)
	if ev.Kind == events.KindBinClosed {
		if err := s.bw.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if s.m != nil {
			s.m.Flushes.Add(1)
		}
		if s.walBytes >= s.opts.CompactBytes {
			return s.compact()
		}
	}
	return nil
}

// compact seals the unsealed history tail into fresh immutable segments
// (with offset indexes), writes an incremental snapshot manifest carrying
// only bounded state, rotates to an empty WAL, and deletes the superseded
// manifest/WAL files. Sealing happens before the manifest rename so a crash
// anywhere in between recovers cleanly: reconcileSealed drops the
// WAL-replayed prefix that is already sealed. Called with the lock held, at
// a bin boundary.
func (s *Store) compact() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	if len(s.outTail) > 0 {
		g, err := sealTail(s, outSegPrefix, s.outBase, s.outTail)
		if err != nil {
			return err
		}
		s.outSegs = append(s.outSegs, g)
		s.outBase += len(s.outTail)
		s.outTail = nil
	}
	if len(s.incTail) > 0 {
		g, err := sealTail(s, incSegPrefix, s.incBase, s.incTail)
		if err != nil {
			return err
		}
		s.incSegs = append(s.incSegs, g)
		s.incBase += len(s.incTail)
		s.incTail = nil
	}

	st := snapState{
		Version:       snapVersionIncremental,
		Seq:           s.seq,
		LastBin:       s.lastBin,
		ResolvedTotal: s.outBase,
		IncidentTotal: s.incBase,
		Pending:       s.pendingSorted(),
		Traces:        s.traces,
		TraceBase:     s.traceBase,
		Tail:          s.tail.Events(),
	}
	payload, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	snapPath := filepath.Join(s.opts.Dir, segName(snapPrefix, s.seq))
	tmp := snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := writeFrame(f, payload); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.opts.Dir)

	// Rotate: new WAL extends the snapshot just written.
	s.f.Close()
	nf, err := os.OpenFile(filepath.Join(s.opts.Dir, segName(walPrefix, s.seq)),
		os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.f = nf
	s.bw = bufio.NewWriter(nf)
	s.walBase = s.seq
	s.walBytes = 0
	syncDir(s.opts.Dir)

	// Superseded segments: every snapshot below the new one and every WAL
	// other than the one just rotated in (including orphans from earlier
	// crashes). Removal failures are harmless (retried next compaction).
	entries, _ := os.ReadDir(s.opts.Dir)
	for _, e := range entries {
		if n, ok := parseSeg(e.Name(), snapPrefix); ok && n < s.seq {
			os.Remove(filepath.Join(s.opts.Dir, e.Name()))
		}
		if n, ok := parseSeg(e.Name(), walPrefix); ok && n != s.seq {
			os.Remove(filepath.Join(s.opts.Dir, e.Name()))
		}
	}
	if s.m != nil {
		s.m.Compactions.Add(1)
	}
	s.log.Debug("WAL compacted into incremental snapshot", "seq", s.seq,
		"resolved", s.outBase, "incidents", s.incBase,
		"segments", len(s.outSegs)+len(s.incSegs), "manifest_bytes", len(payload))
	return nil
}

// syncDir fsyncs a directory so renames and creations are durable. Best
// effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// pendingSorted returns the open probe campaigns ascending by id. Called
// with the lock held.
func (s *Store) pendingSorted() []core.PendingConfirmation {
	if len(s.pending) == 0 {
		return nil
	}
	out := make([]core.PendingConfirmation, 0, len(s.pending))
	for _, p := range s.pending {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns the fully materialized state: the complete persisted
// history after Open, and the live history once appends flow. Slices are
// copies. Sealed entries are decoded from their segments (bypassing the
// read cache), so this walks the whole history on disk — it exists for
// equivalence checks and offline tooling; a serving daemon uses Summary
// plus the paged ReadOutages/ReadIncidents instead.
func (s *Store) History() History {
	s.mu.Lock()
	outSegs, incSegs := s.outSegs, s.incSegs
	outBase, incBase := s.outBase, s.incBase
	outTail, incTail := s.outTail, s.incTail
	h := History{
		LastSeq:       s.seq,
		LastBin:       s.lastBin,
		PendingProbes: s.pendingSorted(),
		Traces:        append([]core.OutageTrace(nil), s.traces...),
		TraceBase:     s.traceBase,
		Tail:          s.tail.Events(),
	}
	s.mu.Unlock()
	var err error
	if h.Resolved, err = readEntries(s, outSegs, outBase, outTail, s.outCache, 0, outBase+len(outTail), false); err != nil {
		s.log.Error("history materialization failed", "err", err)
	}
	if h.Incidents, err = readEntries(s, incSegs, incBase, incTail, s.incCache, 0, incBase+len(incTail), false); err != nil {
		s.log.Error("history materialization failed", "err", err)
	}
	return h
}

// Summary is the bounded recovery state a serving daemon needs: everything
// History carries except the materialized entry slices, which are replaced
// by totals and read on demand via ReadOutages/ReadIncidents.
type Summary struct {
	LastSeq       uint64
	LastBin       time.Time
	ResolvedTotal int
	IncidentTotal int
	PendingProbes []core.PendingConfirmation
	Traces        []core.OutageTrace
	TraceBase     int
	Tail          []events.Event
}

// Summary returns the bounded view of the persisted state: O(pending +
// traces + tail) memory regardless of history size.
func (s *Store) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Summary{
		LastSeq:       s.seq,
		LastBin:       s.lastBin,
		ResolvedTotal: s.outBase + len(s.outTail),
		IncidentTotal: s.incBase + len(s.incTail),
		PendingProbes: s.pendingSorted(),
		Traces:        append([]core.OutageTrace(nil), s.traces...),
		TraceBase:     s.traceBase,
		Tail:          s.tail.Events(),
	}
}

// ReadOutages returns resolved outages with ordinals [start, start+count),
// clamped to the current total: unsealed entries straight from memory,
// sealed entries through the decoded-entry LRU with at most one positioned
// segment read per miss span. Safe from any goroutine.
func (s *Store) ReadOutages(start, count int) ([]core.Outage, error) {
	s.mu.Lock()
	segs, base, tail := s.outSegs, s.outBase, s.outTail
	s.mu.Unlock()
	return readEntries(s, segs, base, tail, s.outCache, start, count, true)
}

// ReadIncidents is ReadOutages for classified incidents.
func (s *Store) ReadIncidents(start, count int) ([]core.Incident, error) {
	s.mu.Lock()
	segs, base, tail := s.incSegs, s.incBase, s.incTail
	s.mu.Unlock()
	return readEntries(s, segs, base, tail, s.incCache, start, count, true)
}

// Flush forces buffered frames to the OS without fsync.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.m != nil {
		s.m.Flushes.Add(1)
	}
	return nil
}

// Close flushes, fsyncs and closes the WAL. Idempotent; the graceful
// shutdown path of the daemon.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.f.Close()
}
