package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/metrics"
	"kepler/internal/topology"
)

// Figure8aResult reproduces Figure 8a: for a set of ground-truth ASes, the
// distribution of the number of physical interconnection locations per AS
// link — ground truth versus what the community dictionary recovers.
type Figure8aResult struct {
	GroundTruthASes []bgp.ASN
	// TruthCounts[n] and MappedCounts[n] are the numbers of AS links with
	// exactly n physical locations.
	TruthCounts  map[int]int
	MappedCounts map[int]int
	LinksTotal   int
	LinksMissed  int // links with locations invisible to the dictionary
}

// Figure8a compares dictionary-mapped interconnection locations against the
// world's ground truth for the four most-documenting transit ASes (the
// paper obtained such ground truth from three ISPs and one CDN).
func Figure8a(env *Env) *Figure8aResult {
	stack := env.Stack
	r := &Figure8aResult{TruthCounts: map[int]int{}, MappedCounts: map[int]int{}}

	// Choose the 4 facility-granularity documenting ASes with the most links.
	type cand struct {
		asn   bgp.ASN
		links int
	}
	var cands []cand
	for _, a := range stack.World.ASes {
		if a.UsesCommunities && a.Documents && a.Granularity == colo.PoPFacility {
			cands = append(cands, cand{a.ASN, len(stack.World.LinksOf(a.ASN))})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].links != cands[j].links {
			return cands[i].links > cands[j].links
		}
		return cands[i].asn < cands[j].asn
	})
	if len(cands) > 4 {
		cands = cands[:4]
	}
	for _, c := range cands {
		r.GroundTruthASes = append(r.GroundTruthASes, c.asn)
	}

	for _, asn := range r.GroundTruthASes {
		a, _ := stack.World.AS(asn)
		// Group this AS's links by neighbor.
		perNeighbor := map[bgp.ASN]map[colo.PoP]bool{}
		for _, l := range stack.World.LinksOf(asn) {
			pop := l.IngressPoP(asn, colo.PoPFacility, stack.World.Map)
			if !pop.IsValid() {
				continue
			}
			n := l.Peer(asn)
			if perNeighbor[n] == nil {
				perNeighbor[n] = map[colo.PoP]bool{}
			}
			perNeighbor[n][pop] = true
		}
		for _, pops := range perNeighbor {
			r.LinksTotal++
			r.TruthCounts[len(pops)]++
			// Mapped: locations whose community value is in the dictionary.
			mapped := 0
			for pop := range pops {
				if _, ok := stack.Dict.Lookup(topology.CommunityFor(asn, pop)); ok {
					mapped++
				}
			}
			r.MappedCounts[mapped]++
			if mapped == 0 {
				r.LinksMissed++
			}
		}
		_ = a
	}
	return r
}

// MissedFraction is the share of AS links the dictionary cannot locate.
func (r *Figure8aResult) MissedFraction() float64 {
	if r.LinksTotal == 0 {
		return 0
	}
	return float64(r.LinksMissed) / float64(r.LinksTotal)
}

// Render prints the two distributions.
func (r *Figure8aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a: physical locations per AS link — ground truth vs communities-mapped\n")
	fmt.Fprintf(&b, "ground-truth ASes: %v, links: %d\n", r.GroundTruthASes, r.LinksTotal)
	maxN := 0
	for n := range r.TruthCounts {
		if n > maxN {
			maxN = n
		}
	}
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "#locations", "truth", "mapped")
	for n := 0; n <= maxN; n++ {
		fmt.Fprintf(&b, "%-12d %8d %8d\n", n, r.TruthCounts[n], r.MappedCounts[n])
	}
	fmt.Fprintf(&b, "links with no mapped location: %.1f%% (paper: <5%% missed)\n", 100*r.MissedFraction())
	return b.String()
}

// Figure8bResult reproduces Figure 8b: the CDF of outage durations for
// facilities and IXPs, with the 99.9/99.99/99.999% yearly-uptime marks.
type Figure8bResult struct {
	FacilityMinutes []float64
	IXPMinutes      []float64
}

// Uptime marks in minutes per year.
const (
	Uptime999   = 525.6 // 99.9%: ~8.76h/year
	Uptime9999  = 52.56 // 99.99%
	Uptime99999 = 5.256 // 99.999%
)

// Figure8b extracts duration distributions from the detected outages.
func Figure8b(env *Env) *Figure8bResult {
	r := &Figure8bResult{}
	for _, o := range env.Outages {
		mins := o.Duration().Minutes()
		switch o.PoP.Kind {
		case colo.PoPIXP:
			r.IXPMinutes = append(r.IXPMinutes, mins)
		default:
			r.FacilityMinutes = append(r.FacilityMinutes, mins)
		}
	}
	return r
}

// Render prints both CDFs and the uptime crossings.
func (r *Figure8bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8b: CDF of outage durations (minutes)\n")
	fc := metrics.NewCDF(r.FacilityMinutes)
	xc := metrics.NewCDF(r.IXPMinutes)
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "quantile", "facility", "ixp")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fmt.Fprintf(&b, "%-12.2f %10.1f %10.1f\n", q, fc.Quantile(q), xc.Quantile(q))
	}
	fmt.Fprintf(&b, "fraction exceeding 99.999%%/99.99%%/99.9%% yearly budget: facility %.2f/%.2f/%.2f  ixp %.2f/%.2f/%.2f\n",
		1-fc.At(Uptime99999), 1-fc.At(Uptime9999), 1-fc.At(Uptime999),
		1-xc.At(Uptime99999), 1-xc.At(Uptime9999), 1-xc.At(Uptime999))
	fmt.Fprintf(&b, "(paper: median 17m, 40%% over 1h, IXP outages longer than facility outages)\n")
	return b.String()
}

// Figure8cResult reproduces Figure 8c: the AMS-IX outage seen through three
// community aggregation granularities.
type Figure8cResult struct {
	Times    []time.Time
	Facility []float64 // the "SARA" fabric facility
	IXP      []float64 // AMS-IX itself
	City     []float64 // Amsterdam
	Outage   time.Time
}

// Figure8c computes the per-granularity path-change fractions around the
// injected fabric outage.
func Figure8c(cs *CaseStudy) *Figure8cResult {
	windowStart := cs.Events[0].Start.Add(-3 * time.Hour)
	windowEnd := cs.Events[0].Start.Add(5 * time.Hour)
	bucket := 15 * time.Minute

	pops := []colo.PoP{
		colo.FacilityPoP(cs.Facility),
		colo.IXPPoP(cs.IXP),
		colo.CityPoP(cs.City),
	}
	series := PathChangeSeries(cs.Res.Records, cs.Stack.Dict, cs.Stack.Map, pops, windowStart, windowEnd, bucket)

	r := &Figure8cResult{Outage: cs.Events[0].Start}
	fac, ixp, city := series[pops[0]], series[pops[1]], series[pops[2]]
	for i := range ixp.Values {
		r.Times = append(r.Times, ixp.BucketTime(i))
		r.Facility = append(r.Facility, fac.Values[i])
		r.IXP = append(r.IXP, ixp.Values[i])
		r.City = append(r.City, city.Values[i])
	}
	return r
}

// PeakIXP returns the maximum IXP-level change fraction.
func (r *Figure8cResult) PeakIXP() float64 {
	best := 0.0
	for _, v := range r.IXP {
		if v > best {
			best = v
		}
	}
	return best
}

// Render prints the three series.
func (r *Figure8cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8c: AMS-IX-style outage through different community granularities\n")
	fmt.Fprintf(&b, "outage injected at %s\n", r.Outage.Format("15:04"))
	fmt.Fprintf(&b, "%-7s %9s %7s %7s\n", "time", "facility", "ixp", "city")
	for i := range r.Times {
		fmt.Fprintf(&b, "%-7s %9.2f %7.2f %7.2f\n", r.Times[i].Format("15:04"), r.Facility[i], r.IXP[i], r.City[i])
	}
	fmt.Fprintf(&b, "(paper: visible at all granularities; the IXP-tagged paths show the deepest drop)\n")
	return b.String()
}
