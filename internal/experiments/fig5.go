package experiments

import (
	"fmt"

	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/metrics"
)

// Figure5Result reproduces Figure 5: the geographic spread of trackable
// infrastructure, as counts of distinct trackable cities, IXPs and
// facilities per continent (the paper plots them on a world map).
type Figure5Result struct {
	Continents []geo.Continent
	Cities     map[geo.Continent]int
	IXPs       map[geo.Continent]int
	Facilities map[geo.Continent]int
}

// Figure5 derives the spread from the dictionary and colocation map.
func Figure5(env *Env) *Figure5Result {
	r := &Figure5Result{
		Continents: geo.Continents,
		Cities:     map[geo.Continent]int{},
		IXPs:       map[geo.Continent]int{},
		Facilities: map[geo.Continent]int{},
	}
	stack := env.Stack
	seenCity := map[geo.CityID]bool{}
	seenIXP := map[colo.IXPID]bool{}
	seenFac := map[colo.FacilityID]bool{}
	for _, e := range stack.Dict.Entries() {
		cityID := stack.Map.CityOf(e.PoP)
		city, ok := stack.Geo.City(cityID)
		if !ok {
			continue
		}
		switch e.PoP.Kind {
		case colo.PoPCity:
			if !seenCity[cityID] {
				seenCity[cityID] = true
				r.Cities[city.Continent]++
			}
		case colo.PoPIXP:
			id := colo.IXPID(e.PoP.ID)
			if !seenIXP[id] {
				seenIXP[id] = true
				r.IXPs[city.Continent]++
			}
		case colo.PoPFacility:
			id := colo.FacilityID(e.PoP.ID)
			if !seenFac[id] {
				seenFac[id] = true
				r.Facilities[city.Continent]++
			}
		}
	}
	return r
}

// Render prints the per-continent counts.
func (r *Figure5Result) Render() string {
	tbl := metrics.NewTable("Figure 5: geographic spread of trackable infrastructure",
		"Continent", "City-level", "IXP-level", "Facility-level")
	for _, c := range r.Continents {
		tbl.AddRow(c.String(), r.Cities[c], r.IXPs[c], r.Facilities[c])
	}
	return tbl.String() + "(paper: 66% of communities tag Europe, 24.5% North America, ~2% Africa+South America)\n"
}

// Table1Result reproduces Table 1: facilities per continent — all, with
// more than five members, and trackable through the dictionary.
type Table1Result struct {
	Continents []geo.Continent
	All        map[geo.Continent]int
	Over5      map[geo.Continent]int
	Trackable  map[geo.Continent]int
}

// Table1 computes facility coverage per continent.
func Table1(env *Env) *Table1Result {
	stack := env.Stack
	r := &Table1Result{
		Continents: geo.Continents,
		All:        map[geo.Continent]int{},
		Over5:      map[geo.Continent]int{},
		Trackable:  map[geo.Continent]int{},
	}
	for _, f := range stack.Map.Facilities() {
		city, ok := stack.Geo.City(f.City)
		if !ok {
			continue
		}
		r.All[city.Continent]++
		if len(f.Members) > 5 {
			r.Over5[city.Continent]++
		}
		if ok, _ := stack.Map.Trackable(f.ID, stack.Dict.Covers); ok {
			r.Trackable[city.Continent]++
		}
	}
	return r
}

// Totals sums each column.
func (r *Table1Result) Totals() (all, over5, trackable int) {
	for _, c := range r.Continents {
		all += r.All[c]
		over5 += r.Over5[c]
		trackable += r.Trackable[c]
	}
	return all, over5, trackable
}

// Render prints Table 1.
func (r *Table1Result) Render() string {
	tbl := metrics.NewTable("Table 1: facilities coverage per continent",
		"Continent", "All", ">5 members", "Trackable")
	for _, c := range r.Continents {
		tbl.AddRow(c.String(), r.All[c], r.Over5[c], r.Trackable[c])
	}
	all, over5, trackable := r.Totals()
	tbl.AddRow("TOTAL", all, over5, trackable)
	return tbl.String() + fmt.Sprintf("(paper: 1742 / 533 / 403 total; Europe and North America dominate)\n")
}
