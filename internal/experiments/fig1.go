package experiments

import (
	"fmt"
	"strings"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/reports"
)

// Figure1Result reproduces Figure 1: detected and publicly reported
// infrastructure outages per semester.
type Figure1Result struct {
	Semesters  []string
	Facilities []int
	IXPs       []int
	Reported   []int
}

// reportsSeed fixes the mailing-list sampling for the whole harness.
const reportsSeed = 99

// semesterIndex maps a time to its half-year bucket since HistStart.
func semesterIndex(start, at time.Time) int {
	months := (at.Year()-start.Year())*12 + int(at.Month()-start.Month())
	return months / 6
}

func semesterLabel(start time.Time, idx int) string {
	y := start.Year() + (idx / 2)
	half := "06"
	if idx%2 == 1 {
		half = "12"
	}
	return fmt.Sprintf("%d/%s", y, half)
}

// Figure1 computes the detected-vs-reported timeline over the historical
// environment.
func Figure1(env *Env) *Figure1Result {
	n := semesterIndex(env.Start, env.End.Add(-time.Second)) + 1
	r := &Figure1Result{
		Semesters:  make([]string, n),
		Facilities: make([]int, n),
		IXPs:       make([]int, n),
		Reported:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		r.Semesters[i] = semesterLabel(env.Start, i)
	}
	for _, o := range env.Outages {
		idx := semesterIndex(env.Start, o.Start)
		if idx < 0 || idx >= n {
			continue
		}
		switch o.PoP.Kind {
		case colo.PoPIXP:
			r.IXPs[idx]++
		default:
			// Facility- and city-level detections count as facility
			// outages: city abstraction means several buildings failed.
			r.Facilities[idx]++
		}
	}
	for _, rep := range reports.Sample(env.Res.Truth, reportsSeed) {
		idx := semesterIndex(env.Start, rep.Time)
		if idx >= 0 && idx < n {
			r.Reported[idx]++
		}
	}
	return r
}

// TotalDetected returns the total number of detected outages.
func (r *Figure1Result) TotalDetected() int {
	sum := 0
	for i := range r.Facilities {
		sum += r.Facilities[i] + r.IXPs[i]
	}
	return sum
}

// TotalReported returns the total number of publicly reported outages.
func (r *Figure1Result) TotalReported() int {
	sum := 0
	for _, v := range r.Reported {
		sum += v
	}
	return sum
}

// Render prints the per-semester rows.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: detected and reported infrastructure outages per semester\n")
	fmt.Fprintf(&b, "%-10s %10s %6s %9s\n", "semester", "facilities", "ixps", "reported")
	for i := range r.Semesters {
		fmt.Fprintf(&b, "%-10s %10d %6d %9d\n", r.Semesters[i], r.Facilities[i], r.IXPs[i], r.Reported[i])
	}
	ratio := float64(r.TotalDetected()) / float64(maxInt(1, r.TotalReported()))
	fmt.Fprintf(&b, "total detected=%d reported=%d ratio=%.1fx (paper: 159 vs ~40, 4x)\n",
		r.TotalDetected(), r.TotalReported(), ratio)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// popKindOfOutage exposes the facility/IXP split used by several figures.
func popKindOfOutage(o core.Outage) colo.PoPKind { return o.PoP.Kind }
