package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/metrics"
)

// Figure9aResult reproduces Figure 9a: two facility outages in one city
// seen at facility, IXP and city aggregation, with the decoy AS-level event
// between them (events A, B, C).
type Figure9aResult struct {
	Times    []time.Time
	Facility []float64 // the second facility (TH East role)
	IXP      []float64 // the colocated IXP (LINX role)
	City     []float64 // the city (London role)
	EventA   time.Time
	EventB   time.Time
	EventC   time.Time
}

// Figure9a computes the three aggregation series over the London case.
func Figure9a(cs *CaseStudy) *Figure9aResult {
	r := &Figure9aResult{}
	for _, e := range cs.Events {
		switch e.ID {
		case 0:
			r.EventA = e.Start
		case 1:
			r.EventB = e.Start
		case 2:
			r.EventC = e.Start
		}
	}
	windowStart := r.EventA.Add(-4 * time.Hour)
	windowEnd := r.EventC.Add(8 * time.Hour)
	bucket := 30 * time.Minute
	pops := []colo.PoP{
		colo.FacilityPoP(cs.FacilityB()),
		colo.IXPPoP(cs.IXP),
		colo.CityPoP(cs.City),
	}
	series := PathChangeSeries(cs.Res.Records, cs.Stack.Dict, cs.Stack.Map, pops, windowStart, windowEnd, bucket)
	fac, ixp, city := series[pops[0]], series[pops[1]], series[pops[2]]
	for i := range fac.Values {
		r.Times = append(r.Times, fac.BucketTime(i))
		r.Facility = append(r.Facility, fac.Values[i])
		r.IXP = append(r.IXP, ixp.Values[i])
		r.City = append(r.City, city.Values[i])
	}
	return r
}

// Render prints the series and event markers.
func (r *Figure9aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9a: two facility outages at different granularities\n")
	fmt.Fprintf(&b, "A=%s (facility 1)  B=%s (AS-level decoy)  C=%s (facility 2)\n",
		r.EventA.Format("01/02 15:04"), r.EventB.Format("01/02 15:04"), r.EventC.Format("01/02 15:04"))
	fmt.Fprintf(&b, "%-12s %9s %7s %7s\n", "time", "facility2", "ixp", "city")
	for i := range r.Times {
		fmt.Fprintf(&b, "%-12s %9.2f %7.2f %7.2f\n", r.Times[i].Format("01/02 15:04"), r.Facility[i], r.IXP[i], r.City[i])
	}
	fmt.Fprintf(&b, "(paper: A moves LINX+TH East but barely the city view; C drops mostly through TH East)\n")
	return b.String()
}

// Figure9bResult reproduces Figure 9b: the fraction of affected paths per
// facility over the case window — the evidence Kepler uses to pin each
// outage on the right building.
type Figure9bResult struct {
	Facilities []colo.FacilityID
	Names      []string
	Times      []time.Time
	// Values[f][t] is facility f's affected fraction in bucket t.
	Values [][]float64
	EventA time.Time
	EventC time.Time
}

// Figure9b computes per-facility series for every facility in the case
// city.
func Figure9b(cs *CaseStudy) *Figure9bResult {
	r := &Figure9bResult{}
	for _, e := range cs.Events {
		switch e.ID {
		case 0:
			r.EventA = e.Start
		case 2:
			r.EventC = e.Start
		}
	}
	windowStart := r.EventA.Add(-4 * time.Hour)
	windowEnd := r.EventC.Add(8 * time.Hour)
	bucket := time.Hour

	facs := cs.Stack.Map.FacilitiesInCity(cs.City)
	sort.Slice(facs, func(i, j int) bool { return facs[i] < facs[j] })
	var pops []colo.PoP
	for _, f := range facs {
		pops = append(pops, colo.FacilityPoP(f))
	}
	series := PathChangeSeries(cs.Res.Records, cs.Stack.Dict, cs.Stack.Map, pops, windowStart, windowEnd, bucket)

	nBuckets := 0
	for _, f := range facs {
		s := series[colo.FacilityPoP(f)]
		if s == nil {
			continue
		}
		nBuckets = len(s.Values)
		break
	}
	for i := 0; i < nBuckets; i++ {
		r.Times = append(r.Times, windowStart.Add(time.Duration(i)*bucket))
	}
	for _, f := range facs {
		s := series[colo.FacilityPoP(f)]
		if s == nil {
			continue
		}
		r.Facilities = append(r.Facilities, f)
		if fac, ok := cs.Stack.Map.Facility(f); ok {
			r.Names = append(r.Names, fac.Name)
		} else {
			r.Names = append(r.Names, fmt.Sprintf("facility %d", f))
		}
		row := make([]float64, len(s.Values))
		copy(row, s.Values)
		r.Values = append(r.Values, row)
	}
	return r
}

// Render prints the per-facility matrix.
func (r *Figure9bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9b: fraction of affected paths per facility\n")
	fmt.Fprintf(&b, "%-10s", "facility")
	for _, t := range r.Times {
		fmt.Fprintf(&b, " %5s", t.Format("15:04"))
	}
	b.WriteString("\n")
	for i, f := range r.Facilities {
		fmt.Fprintf(&b, "%-10d", f)
		for _, v := range r.Values[i] {
			fmt.Fprintf(&b, " %5.2f", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(paper: events A and C each light up one facility's tenant subset; B touches a single AS)\n")
	return b.String()
}

// Figure9cResult reproduces Figure 9c: how far from the outage epicenter
// the affected links reach (remote impact of a local outage).
type Figure9cResult struct {
	// DistancesKm holds, per affected link, the great-circle distance of
	// the far end from the outage city.
	DistancesKm []float64
	LocalFrac   float64 // fraction within the metro (paper: 0.44)
	RemoteKm    float64 // 90th percentile distance
}

// Figure9c geolocates the far ends of the links affected by event A.
func Figure9c(cs *CaseStudy) *Figure9cResult {
	r := &Figure9cResult{}
	cityObj, ok := cs.Stack.Geo.City(cs.City)
	if !ok {
		return r
	}
	target := cs.Events[0].Facility
	world := cs.Stack.World
	for _, l := range world.Links {
		if l.Facility != target && l.AFac != target && l.BFac != target {
			continue
		}
		if l.Facility == target {
			// A cross-connect inside the failed building: the far-end
			// interface is in the building itself.
			r.DistancesKm = append(r.DistancesKm, 0)
			continue
		}
		// An IXP port at the failed facility: the far end is the other
		// member's interface, located at its own port facility when it
		// connects locally and at its home city when it peers remotely —
		// the DRoP-style interface geolocation of Section 6.4.
		var farASN bgp.ASN
		var farFac colo.FacilityID
		if l.AFac == target {
			farASN, farFac = l.B, l.BFac
		} else {
			farASN, farFac = l.A, l.AFac
		}
		var loc geo.CityID
		remote := false
		if a, ok := world.AS(farASN); ok {
			for _, mem := range a.Memberships {
				if mem.IXP == l.IXP && mem.Remote {
					remote = true
				}
			}
			loc = a.HomeCity
		}
		if !remote && farFac != 0 {
			loc = cs.Stack.Map.CityOf(colo.FacilityPoP(farFac))
		}
		c, ok := cs.Stack.Geo.City(loc)
		if !ok {
			continue
		}
		r.DistancesKm = append(r.DistancesKm, geo.DistanceKm(cityObj.Coord, c.Coord))
	}
	cdf := metrics.NewCDF(r.DistancesKm)
	r.LocalFrac = cdf.At(50) // within 50 km of the epicenter
	r.RemoteKm = cdf.Quantile(0.9)
	return r
}

// Render prints the distance distribution.
func (r *Figure9cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9c: distance of affected link far-ends from the outage epicenter\n")
	cdf := metrics.NewCDF(r.DistancesKm)
	fmt.Fprintf(&b, "affected link ends: %d\n", len(r.DistancesKm))
	for _, km := range []float64{0, 50, 500, 1000, 5000, 10000} {
		fmt.Fprintf(&b, "  within %6.0f km: %5.1f%%\n", km, 100*cdf.At(km))
	}
	fmt.Fprintf(&b, "local fraction=%.2f p90 distance=%.0f km (paper: 44%% local, >45%% in another country)\n",
		r.LocalFrac, r.RemoteKm)
	return b.String()
}
