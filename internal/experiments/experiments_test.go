package experiments

import (
	"strings"
	"testing"

	"kepler/internal/colo"
	"kepler/internal/geo"
)

// The experiment tests assert the paper's qualitative shapes, not absolute
// numbers (see EXPERIMENTS.md). They share the cached environments, so the
// expensive scenario renders run once per test binary.

func histEnvT(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("historical environment skipped in -short mode")
	}
	env, err := Historical()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func amsCaseT(t *testing.T) *CaseStudy {
	t.Helper()
	if testing.Short() {
		t.Skip("case study skipped in -short mode")
	}
	cs, err := AMSIXCase()
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func lonCaseT(t *testing.T) *CaseStudy {
	t.Helper()
	if testing.Short() {
		t.Skip("case study skipped in -short mode")
	}
	cs, err := LondonCase()
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestFigure1Shape(t *testing.T) {
	env := histEnvT(t)
	r := Figure1(env)
	if r.TotalDetected() == 0 {
		t.Fatal("nothing detected")
	}
	// Paper shape 1: detected clearly exceeds reported. The paper measures
	// 4x; our smaller world with fewer trackable targets yields ~2x (see
	// EXPERIMENTS.md), and the qualitative claim — public channels miss
	// most infrastructure outages — must hold.
	ratio := float64(r.TotalDetected()) / float64(maxInt(1, r.TotalReported()))
	if ratio < 1.5 {
		t.Errorf("detected/reported ratio %.1f, want >= 1.5 (paper: 4x)", ratio)
	}
	// Paper shape 2: facility outages outnumber IXP outages overall.
	fac, ixp := 0, 0
	for i := range r.Facilities {
		fac += r.Facilities[i]
		ixp += r.IXPs[i]
	}
	if fac <= ixp {
		t.Errorf("facility outages (%d) should outnumber IXP outages (%d)", fac, ixp)
	}
	// Outages occur throughout the window, not in one burst.
	nonZero := 0
	for i := range r.Semesters {
		if r.Facilities[i]+r.IXPs[i] > 0 {
			nonZero++
		}
	}
	if nonZero < len(r.Semesters)/2 {
		t.Errorf("outages concentrated in %d/%d semesters", nonZero, len(r.Semesters))
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	env := histEnvT(t)
	r := Figure3(env)
	if len(r.Years) != 6 {
		t.Fatalf("years = %d", len(r.Years))
	}
	// Monotone growth in both series; values grow faster than operators.
	for i := 1; i < len(r.Years); i++ {
		if r.Unique[i] < r.Unique[i-1] {
			t.Errorf("unique values shrank in %d", r.Years[i])
		}
		if r.UniqueTop[i] < r.UniqueTop[i-1] {
			t.Errorf("unique operators shrank in %d", r.Years[i])
		}
	}
	vGrowth := float64(r.Unique[5]) / float64(maxInt(1, r.Unique[0]))
	aGrowth := float64(r.UniqueTop[5]) / float64(maxInt(1, r.UniqueTop[0]))
	if vGrowth <= aGrowth {
		t.Errorf("value growth (%.2fx) should outpace operator growth (%.2fx)", vGrowth, aGrowth)
	}
	if vGrowth < 1.8 {
		t.Errorf("value growth %.2fx too small (paper: ~3x)", vGrowth)
	}
}

func TestFigure5Shape(t *testing.T) {
	env := histEnvT(t)
	r := Figure5(env)
	total := func(m map[geo.Continent]int) int {
		s := 0
		for _, v := range m {
			s += v
		}
		return s
	}
	if total(r.Facilities) == 0 || total(r.Cities) == 0 {
		t.Fatal("no trackable infrastructure")
	}
	// Europe+NA dominate, as in the paper.
	euNA := r.Facilities[geo.Europe] + r.Facilities[geo.NorthAmerica] +
		r.Cities[geo.Europe] + r.Cities[geo.NorthAmerica]
	all := total(r.Facilities) + total(r.Cities) + total(r.IXPs)
	if float64(euNA)/float64(all) < 0.5 {
		t.Errorf("Europe+NA fraction %.2f too small", float64(euNA)/float64(all))
	}
}

func TestTable1Shape(t *testing.T) {
	env := histEnvT(t)
	r := Table1(env)
	all, over5, trackable := r.Totals()
	if !(all >= over5 && over5 >= trackable) {
		t.Errorf("column ordering violated: %d %d %d", all, over5, trackable)
	}
	if trackable == 0 {
		t.Fatal("no trackable facilities")
	}
	if r.All[geo.Europe] < r.All[geo.Africa] {
		t.Error("Europe should have more facilities than Africa")
	}
	out := r.Render()
	if !strings.Contains(out, "TOTAL") {
		t.Error("render missing totals row")
	}
}

func TestFigure7aShape(t *testing.T) {
	env := histEnvT(t)
	r := Figure7a(env)
	n := len(r.Thresholds)
	// Link- and AS-level counts grow (weakly) as the threshold drops.
	if r.LinkLevel[0] < r.LinkLevel[n-1] {
		t.Errorf("link-level signals should grow at low thresholds: %v", r.LinkLevel)
	}
	// PoP-level: roughly stable in the 2–15% plateau, then declining.
	plateauMin, plateauMax := r.PoPLevel[0], r.PoPLevel[0]
	for i, th := range r.Thresholds {
		if th <= 0.15 {
			if r.PoPLevel[i] < plateauMin {
				plateauMin = r.PoPLevel[i]
			}
			if r.PoPLevel[i] > plateauMax {
				plateauMax = r.PoPLevel[i]
			}
		}
	}
	if plateauMin == 0 {
		t.Fatalf("no PoP-level signals on the plateau: %v", r.PoPLevel)
	}
	if float64(plateauMax-plateauMin) > 0.5*float64(plateauMax) {
		t.Errorf("plateau not stable: %v", r.PoPLevel)
	}
	if r.PoPLevel[n-1] > plateauMax {
		t.Errorf("PoP-level signals should not grow at 50%% threshold: %v", r.PoPLevel)
	}
}

func TestFigure7bShape(t *testing.T) {
	env := histEnvT(t)
	r := Figure7b(env)
	total, over5, trackable := r.Counts()
	if total == 0 || trackable == 0 {
		t.Fatal("empty scatter")
	}
	if over5 > total || trackable > over5 {
		t.Errorf("count ordering violated: %d %d %d", total, over5, trackable)
	}
	for _, p := range r.Facilities {
		if p.Mapped > p.Members {
			t.Fatalf("mapped members exceed members at facility %d", p.Facility)
		}
		if p.Trackable && p.Mapped < colo.MinTrackableMembers {
			t.Fatalf("trackable facility %d with %d mapped members", p.Facility, p.Mapped)
		}
	}
}

func TestFigure7cShape(t *testing.T) {
	env := histEnvT(t)
	r := Figure7c(env)
	if len(r.Months) == 0 {
		t.Fatal("no months")
	}
	for i := range r.Months {
		// Paper: ~50% IPv4, ~30% IPv6; shape: v4 coverage clearly exceeds v6.
		if r.IPv4[i] < r.IPv6[i]+0.02 {
			t.Errorf("month %s: IPv4 coverage %.2f not above IPv6 %.2f", r.Months[i], r.IPv4[i], r.IPv6[i])
		}
		if r.IPv4[i] < 0.25 || r.IPv4[i] > 0.85 {
			t.Errorf("month %s: IPv4 coverage %.2f implausible (paper: ~0.5)", r.Months[i], r.IPv4[i])
		}
	}
}

func TestFigure8aShape(t *testing.T) {
	env := histEnvT(t)
	r := Figure8a(env)
	if len(r.GroundTruthASes) == 0 || r.LinksTotal == 0 {
		t.Fatal("no ground truth")
	}
	if r.MissedFraction() > 0.10 {
		t.Errorf("missed fraction %.2f too high (paper: <5%%)", r.MissedFraction())
	}
	// Most AS links involve a single location (paper: large fraction of
	// single-location pairs).
	single := r.TruthCounts[1]
	multi := 0
	for n, c := range r.TruthCounts {
		if n > 1 {
			multi += c
		}
	}
	if single == 0 {
		t.Error("no single-location links")
	}
	_ = multi
}

func TestFigure8bShape(t *testing.T) {
	env := histEnvT(t)
	r := Figure8b(env)
	if len(r.FacilityMinutes) == 0 || len(r.IXPMinutes) == 0 {
		t.Fatal("missing duration samples")
	}
	for _, m := range append(append([]float64{}, r.FacilityMinutes...), r.IXPMinutes...) {
		if m < 0 || m > 72*60 {
			t.Errorf("implausible duration %f minutes", m)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "facility") {
		t.Error("render incomplete")
	}
}

func TestFigure8cShape(t *testing.T) {
	cs := amsCaseT(t)
	r := Figure8c(cs)
	if len(r.Times) == 0 {
		t.Fatal("empty series")
	}
	// The IXP granularity shows the deepest peak change fraction.
	peakFac, peakIXP, peakCity := 0.0, 0.0, 0.0
	for i := range r.Times {
		if r.Facility[i] > peakFac {
			peakFac = r.Facility[i]
		}
		if r.IXP[i] > peakIXP {
			peakIXP = r.IXP[i]
		}
		if r.City[i] > peakCity {
			peakCity = r.City[i]
		}
	}
	if peakIXP < 0.5 {
		t.Errorf("IXP peak %.2f too shallow for a full fabric outage", peakIXP)
	}
	if peakIXP < peakFac {
		t.Errorf("IXP peak %.2f should exceed facility peak %.2f", peakIXP, peakFac)
	}
	if peakIXP < peakCity {
		t.Errorf("IXP peak %.2f should exceed city peak %.2f", peakIXP, peakCity)
	}
}

func TestFigure9Shapes(t *testing.T) {
	cs := lonCaseT(t)
	a := Figure9a(cs)
	if len(a.Times) == 0 {
		t.Fatal("empty 9a series")
	}
	// Event C (facility 2) must move the facility series.
	peakFac := 0.0
	for _, v := range a.Facility {
		if v > peakFac {
			peakFac = v
		}
	}
	if peakFac < 0.3 {
		t.Errorf("facility-2 peak %.2f too shallow", peakFac)
	}

	b := Figure9b(cs)
	if len(b.Facilities) < 2 {
		t.Fatal("9b needs at least two facilities")
	}

	c := Figure9c(cs)
	if len(c.DistancesKm) == 0 {
		t.Fatal("no affected link ends")
	}
	if c.LocalFrac <= 0.05 || c.LocalFrac >= 0.995 {
		t.Errorf("local fraction %.2f implausible (paper: 0.44)", c.LocalFrac)
	}
	// Some impact must be genuinely remote (>500 km).
	remote := 0
	for _, d := range c.DistancesKm {
		if d > 500 {
			remote++
		}
	}
	if remote == 0 {
		t.Error("no remote impact found (paper: >45% in another country)")
	}
}

func TestFigure10Shapes(t *testing.T) {
	cs := amsCaseT(t)

	a := Figure10a(cs)
	peak := 0.0
	for _, v := range a.Away {
		if v > peak {
			peak = v
		}
	}
	if peak < 0.5 {
		t.Errorf("10a peak %.2f too shallow", peak)
	}
	res := a.NeverReturned()
	if res <= 0 || res > 0.2 {
		t.Errorf("never-returned fraction %.3f outside (0, 0.2] (paper: ~5%%)", res)
	}
	if res >= peak {
		t.Error("paths did not recover at all")
	}

	b := Figure10b(cs)
	if len(b.Times) == 0 {
		t.Fatal("no 10b campaigns")
	}
	peakB, last := 0.0, b.Away[len(b.Away)-1]
	for _, v := range b.Away {
		if v > peakB {
			peakB = v
		}
	}
	if peakB < 0.5 {
		t.Errorf("10b peak %.2f too shallow", peakB)
	}
	if last >= peakB {
		t.Error("data plane did not recover")
	}

	c := Figure10c(cs)
	if len(c.BeforeMs) == 0 || len(c.DuringRerouteMs) == 0 {
		t.Fatalf("10c sets empty: before=%d rerouted=%d", len(c.BeforeMs), len(c.DuringRerouteMs))
	}
	medBefore := median(c.BeforeMs)
	medReroute := median(c.DuringRerouteMs)
	if medReroute <= medBefore {
		t.Errorf("rerouted median RTT %.1f not above baseline %.1f", medReroute, medBefore)
	}
	if len(c.AfterMs) > 0 {
		medAfter := median(c.AfterMs)
		if medAfter > medReroute {
			t.Errorf("post-restore median %.1f above outage median %.1f", medAfter, medReroute)
		}
	}

	d := Figure10d(cs)
	if d.RemoteIXP == 0 {
		t.Skip("no second IXP with traffic")
	}
	if d.BaselineGbps <= 0 {
		t.Fatal("no baseline traffic")
	}
	if d.DropGbps <= 0 {
		t.Errorf("no remote traffic drop (paper: ~10%% at EU-IXP)")
	}
	if d.DropGbps > 0.9*d.BaselineGbps {
		t.Errorf("remote drop %.1f implausibly large vs baseline %.1f", d.DropGbps, d.BaselineGbps)
	}
}

func TestValidationShape(t *testing.T) {
	env := histEnvT(t)
	r := Validation(env)
	if r.TruePositives == 0 {
		t.Fatal("no true positives")
	}
	// Precision must be high; the paper's FPs were co-located fiber cuts.
	precision := float64(r.TruePositives) / float64(maxInt(1, r.Detected))
	if precision < 0.85 {
		t.Errorf("precision %.2f too low", precision)
	}
	// The paper misses no full outages at trackable facilities; our misses
	// concentrate on weakly observed peripheral infrastructure (see
	// EXPERIMENTS.md) and must stay a clear minority.
	if r.FalseNegatives*2 > r.TruePositives {
		t.Errorf("false negatives %d too high vs TPs %d", r.FalseNegatives, r.TruePositives)
	}
}

func TestSummaryShape(t *testing.T) {
	env := histEnvT(t)
	r := Summary(env)
	if r.Total == 0 {
		t.Fatal("no outages")
	}
	if r.MedianDuration <= 0 {
		t.Error("zero median duration")
	}
	// Shape: a substantial fraction exceeds one hour (paper: 40%).
	if r.OverOneHour < 0.1 || r.OverOneHour > 0.9 {
		t.Errorf("over-1h fraction %.2f implausible", r.OverOneHour)
	}
	// Shape: IXP outages last longer than facility outages.
	if r.IXPMedian < r.FacMedian {
		t.Errorf("IXP median %v below facility median %v", r.IXPMedian, r.FacMedian)
	}
	// Shape: Europe leads the regional split.
	if r.EuropeFrac <= r.USFrac {
		t.Errorf("Europe fraction %.2f should exceed US %.2f", r.EuropeFrac, r.USFrac)
	}
}

func TestDictionaryStatsShape(t *testing.T) {
	env := histEnvT(t)
	r := DictionaryStats(env)
	if r.Stats.Communities == 0 || r.Stats.ASNs == 0 {
		t.Fatal("empty dictionary stats")
	}
	// City granularity dominates (Section 3.3: "the majority of the
	// communities annotate routes at city-level granularity").
	if r.Stats.ByGranularity[colo.PoPCity] <= r.Stats.ByGranularity[colo.PoPFacility]/2 {
		t.Errorf("granularity mix off: %v", r.Stats.ByGranularity)
	}
	// Attrition: meanings are stable (paper: 1.5% changed).
	if r.Diff.Common > 0 {
		changed := float64(r.Diff.ChangedMeaning) / float64(r.Diff.Common)
		if changed > 0.25 {
			t.Errorf("changed-meaning fraction %.2f too high", changed)
		}
	}
	// Europe leads the continental spread.
	if r.Stats.ByContinent[geo.Europe] <= r.Stats.ByContinent[geo.Africa] {
		t.Error("continental skew missing")
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	env := histEnvT(t)
	renders := []interface{ Render() string }{
		Figure1(env), Figure3(env), Figure5(env), Table1(env),
		Figure7b(env), Figure7c(env), Figure8a(env), Figure8b(env),
		Validation(env), Summary(env), DictionaryStats(env),
	}
	for i, r := range renders {
		out := r.Render()
		if len(out) < 40 {
			t.Errorf("render %d suspiciously short: %q", i, out)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("render %d has formatting errors: %q", i, out)
		}
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64{}, xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
