package experiments

import (
	"fmt"
	"sync"
	"time"

	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/core"
	"kepler/internal/geo"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
	"kepler/internal/pipeline"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

// CaseStudy is a dedicated scenario around one or more injected outages,
// used by the Figures 8c, 9 and 10 experiments.
type CaseStudy struct {
	Stack  *pipeline.Stack
	Res    *simulate.Result
	Events []simulate.Event

	// The AMS-IX-like exchange and its environment.
	IXP      colo.IXPID
	Facility colo.FacilityID // a fabric facility (the "SARA" role)
	City     geo.CityID

	Start, End time.Time
}

var (
	amsOnce sync.Once
	amsCase *CaseStudy
	amsErr  error

	lonOnce sync.Once
	lonCase *CaseStudy
	lonErr  error
)

// caseWorld builds the world shared by the case studies.
func caseWorld() (*topology.World, *pipeline.Stack, error) {
	cfg := topology.DefaultConfig()
	cfg.Seed = 515
	w, err := topology.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	return w, pipeline.Build(w, 13), nil
}

// biggestIXP returns the IXP with the most dictionary-covered members and
// its largest fabric facility.
func biggestIXP(s *pipeline.Stack) (colo.IXPID, colo.FacilityID) {
	var bestIX colo.IXPID
	var bestFac colo.FacilityID
	bestN := 0
	for _, ix := range s.Map.IXPs() {
		n := 0
		for _, m := range ix.Members {
			if s.Dict.Covers(m) {
				n++
			}
		}
		if n > bestN && len(ix.Facilities) > 0 {
			bestIX, bestN = ix.ID, n
			bestFac = ix.Facilities[0]
			most := 0
			for _, f := range ix.Facilities {
				if fac, ok := s.Map.Facility(f); ok && len(fac.Members) > most {
					most = len(fac.Members)
					bestFac = f
				}
			}
		}
	}
	return bestIX, bestFac
}

// AMSIXCase returns the AMS-IX-style case study: a ~30-minute loop in the
// switching fabric of the world's largest exchange (the 2015-05-13 incident
// of Section 6.2), rendered with sticky paths so that a tail of routes
// never returns (Section 6.3).
func AMSIXCase() (*CaseStudy, error) {
	amsOnce.Do(func() {
		amsCase, amsErr = buildAMSIXCase()
	})
	return amsCase, amsErr
}

func buildAMSIXCase() (*CaseStudy, error) {
	w, stack, err := caseWorld()
	if err != nil {
		return nil, err
	}
	ix, fab := biggestIXP(stack)
	if ix == 0 {
		return nil, fmt.Errorf("experiments: no trackable IXP in case world")
	}
	start := time.Date(2015, 5, 6, 0, 0, 0, 0, time.UTC)
	end := time.Date(2015, 5, 20, 0, 0, 0, 0, time.UTC)
	outage := simulate.Event{
		ID: 0, Kind: simulate.EvIXP, IXP: ix,
		Start:    time.Date(2015, 5, 13, 10, 0, 0, 0, time.UTC),
		Duration: 30 * time.Minute,
	}
	res, err := simulate.Render(w, []simulate.Event{outage}, start, end, simulate.RenderConfig{
		Seed: 21, StickyFraction: 0.05,
	})
	if err != nil {
		return nil, err
	}
	return &CaseStudy{
		Stack: stack, Res: res, Events: []simulate.Event{outage},
		IXP: ix, Facility: fab, City: stack.Map.CityOf(colo.IXPPoP(ix)),
		Start: start, End: end,
	}, nil
}

// LondonCase returns the two-facility case study of Figure 9: two facility
// outages in one city on consecutive days, with an AS-level de-peering
// decoy between them (the paper's events A, B and C).
func LondonCase() (*CaseStudy, error) {
	lonOnce.Do(func() {
		lonCase, lonErr = buildLondonCase()
	})
	return lonCase, lonErr
}

func buildLondonCase() (*CaseStudy, error) {
	w, stack, err := caseWorld()
	if err != nil {
		return nil, err
	}
	// A city with at least two well-populated facilities and an IXP.
	var city geo.CityID
	var facA, facB colo.FacilityID
	var ix colo.IXPID
	bestScore := 0
	for _, candIX := range stack.Map.IXPs() {
		c := stack.Map.CityOf(colo.IXPPoP(candIX.ID))
		facs := stack.Map.FacilitiesInCity(c)
		if len(facs) < 2 {
			continue
		}
		// Two most populated facilities in this city.
		var fa, fb colo.FacilityID
		na, nb := 0, 0
		for _, f := range facs {
			fac, _ := stack.Map.Facility(f)
			switch {
			case len(fac.Members) > na:
				fb, nb = fa, na
				fa, na = f, len(fac.Members)
			case len(fac.Members) > nb:
				fb, nb = f, len(fac.Members)
			}
		}
		if nb >= 6 && na+nb > bestScore {
			bestScore = na + nb
			city, facA, facB, ix = c, fa, fb, candIX.ID
		}
	}
	if city == geo.NoCity {
		return nil, fmt.Errorf("experiments: no two-facility city in case world")
	}

	start := time.Date(2016, 7, 13, 0, 0, 0, 0, time.UTC)
	end := time.Date(2016, 7, 28, 0, 0, 0, 0, time.UTC)
	// A busy AS in the city for the decoy event.
	var decoy *topology.AS
	for _, a := range stack.World.ASes {
		if a.Type != topology.Tier2 {
			continue
		}
		for _, f := range a.Facilities {
			if f == facA || f == facB {
				decoy = a
			}
		}
	}
	events := []simulate.Event{
		{ID: 0, Kind: simulate.EvFacility, Facility: facA, // event A
			Start: time.Date(2016, 7, 20, 1, 30, 0, 0, time.UTC), Duration: 4 * time.Hour},
		{ID: 2, Kind: simulate.EvFacility, Facility: facB, // event C
			Start: time.Date(2016, 7, 21, 9, 0, 0, 0, time.UTC), Duration: 3 * time.Hour},
	}
	if decoy != nil {
		events = append(events, simulate.Event{ // event B
			ID: 1, Kind: simulate.EvAS, AS: decoy.ASN,
			Start: time.Date(2016, 7, 20, 13, 0, 0, 0, time.UTC), Duration: 2 * time.Hour,
		})
	}
	res, err := simulate.Render(w, events, start, end, simulate.RenderConfig{Seed: 23, StickyFraction: 0.04})
	if err != nil {
		return nil, err
	}
	return &CaseStudy{
		Stack: stack, Res: res, Events: events,
		IXP: ix, Facility: facA, City: city,
		Start: start, End: end,
	}, nil
}

// FacilityB returns the second facility of the London case (event C's
// target).
func (c *CaseStudy) FacilityB() colo.FacilityID {
	for _, e := range c.Events {
		if e.ID == 2 {
			return e.Facility
		}
	}
	return 0
}

// DecoyAS returns the AS of the decoy event, or 0.
func (c *CaseStudy) DecoyAS() (asn topology.AS, ok bool) {
	for _, e := range c.Events {
		if e.Kind == simulate.EvAS {
			if a, found := c.Stack.World.AS(e.AS); found {
				return *a, true
			}
		}
	}
	return topology.AS{}, false
}

// PathChangeSeries tracks, per time bucket, the fraction of monitored paths
// tagged with a PoP that changed away from it — the quantity Figures 8c and
// 9a plot at different aggregation granularities.
func PathChangeSeries(records []*mrt.Record, dict *communities.Dictionary, cmap *colo.Map,
	pops []colo.PoP, start, end time.Time, bucket time.Duration) map[colo.PoP]*metrics.Series {

	leaves := make(map[colo.PoP]*metrics.Series, len(pops))
	denoms := make(map[colo.PoP]*metrics.Series, len(pops))
	want := make(map[colo.PoP]bool, len(pops))
	for _, p := range pops {
		leaves[p] = metrics.NewSeries(start, end, bucket)
		denoms[p] = metrics.NewSeries(start, end, bucket)
		want[p] = true
	}
	// Current tag state per path and per-PoP tagged path counts. The
	// denominator of each bucket is the tagged count when the bucket is
	// first touched (≈ bucket start), so a mass exodus within one bucket
	// cannot push the fraction past 1.
	tags := map[core.PathKey]map[colo.PoP]bool{}
	tagged := map[colo.PoP]int{}

	leave := func(at time.Time, pop colo.PoP) {
		if !want[pop] {
			return
		}
		d := denoms[pop]
		i := int(at.Sub(start) / bucket)
		if i >= 0 && i < len(d.Values) && d.Values[i] == 0 {
			d.Values[i] = float64(tagged[pop])
		}
		leaves[pop].Add(at, 1)
	}

	for _, rec := range records {
		if rec.Update == nil {
			continue
		}
		for _, p := range rec.Update.Withdrawn {
			key := core.PathKey{Peer: rec.PeerAS, Prefix: p}
			for pop := range tags[key] {
				leave(rec.Time, pop)
				tagged[pop]--
			}
			delete(tags, key)
		}
		if len(rec.Update.Announced) == 0 {
			continue
		}
		hops := dict.Annotate(rec.Update.Attrs.ASPath, rec.Update.Attrs.Communities, cmap)
		newTags := map[colo.PoP]bool{}
		for _, h := range hops {
			newTags[h.PoP] = true
		}
		for _, p := range rec.Update.Announced {
			key := core.PathKey{Peer: rec.PeerAS, Prefix: p}
			old := tags[key]
			for pop := range old {
				if !newTags[pop] {
					leave(rec.Time, pop)
					tagged[pop]--
				}
			}
			for pop := range newTags {
				if !old[pop] {
					tagged[pop]++
				}
			}
			cp := make(map[colo.PoP]bool, len(newTags))
			for pop := range newTags {
				cp[pop] = true
			}
			tags[key] = cp
		}
	}
	series := make(map[colo.PoP]*metrics.Series, len(pops))
	for _, p := range pops {
		out := metrics.NewSeries(start, end, bucket)
		for i := range out.Values {
			if d := denoms[p].Values[i]; d > 0 {
				frac := leaves[p].Values[i] / d
				if frac > 1 {
					frac = 1
				}
				out.Values[i] = frac
			}
		}
		series[p] = out
	}
	return series
}
