package experiments

import (
	"fmt"
	"strings"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/metrics"
	"kepler/internal/routing"
	"kepler/internal/traceroute"
	"kepler/internal/traffic"
)

// Figure10aResult reproduces Figure 10a: the fraction of BGP paths away
// from the exchange over time — the control-plane convergence curve.
type Figure10aResult struct {
	Times   []time.Time
	Away    []float64 // fraction of baseline IXP paths currently diverted
	Outage  time.Time
	Restore time.Time
}

// Figure10a replays the case records, tracking which baseline IXP-tagged
// paths have left and when they return.
func Figure10a(cs *CaseStudy) *Figure10aResult {
	ev := cs.Events[0]
	r := &Figure10aResult{Outage: ev.Start, Restore: ev.Start.Add(ev.Duration)}
	windowStart := ev.Start.Add(-time.Hour)
	windowEnd := ev.Start.Add(6 * time.Hour)
	bucket := 10 * time.Minute

	pop := colo.IXPPoP(cs.IXP)
	away := map[core.PathKey]bool{}
	tagged := map[core.PathKey]bool{}
	n := metrics.NewSeries(windowStart, windowEnd, bucket)

	record := func(at time.Time) {
		if len(tagged) == 0 {
			return
		}
		n.Set(at, float64(len(away))/float64(len(tagged)))
	}
	for _, rec := range cs.Res.Records {
		if rec.Update == nil {
			continue
		}
		hops := cs.Stack.Dict.Annotate(rec.Update.Attrs.ASPath, rec.Update.Attrs.Communities, cs.Stack.Map)
		has := false
		for _, h := range hops {
			if h.PoP == pop {
				has = true
			}
		}
		for _, p := range rec.Update.Announced {
			key := core.PathKey{Peer: rec.PeerAS, Prefix: p}
			switch {
			case has:
				tagged[key] = true
				delete(away, key)
			case tagged[key]:
				away[key] = true
			}
		}
		for _, p := range rec.Update.Withdrawn {
			key := core.PathKey{Peer: rec.PeerAS, Prefix: p}
			if tagged[key] {
				away[key] = true
			}
		}
		record(rec.Time)
	}
	// Forward-fill the series so quiet buckets carry the last value.
	last := 0.0
	for i, v := range n.Values {
		if v == 0 && i > 0 {
			n.Values[i] = last
		} else {
			last = n.Values[i]
		}
		r.Times = append(r.Times, n.BucketTime(i))
		r.Away = append(r.Away, n.Values[i])
	}
	return r
}

// NeverReturned returns the residual away-fraction at the window end (the
// paper: ~5% of paths never return).
func (r *Figure10aResult) NeverReturned() float64 {
	if len(r.Away) == 0 {
		return 0
	}
	return r.Away[len(r.Away)-1]
}

// Render prints the convergence curve.
func (r *Figure10aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10a: BGP paths away from the exchange (outage %s, restored %s)\n",
		r.Outage.Format("15:04"), r.Restore.Format("15:04"))
	for i := range r.Times {
		fmt.Fprintf(&b, "%-7s %.3f\n", r.Times[i].Format("15:04"), r.Away[i])
	}
	fmt.Fprintf(&b, "residual never-returned fraction: %.3f (paper: ~5%%)\n", r.NeverReturned())
	return b.String()
}

// Figure10bResult reproduces Figure 10b: traceroute-measured path changes
// around the outage.
type Figure10bResult struct {
	Times []time.Time
	Away  []float64 // fraction of baseline traceroute pairs off the IXP
	Used  int       // measurement budget consumed
}

// Figure10b runs periodic targeted traceroute campaigns across the outage
// window against a four-week baseline of archived traces (Section 4.4).
func Figure10b(cs *CaseStudy) *Figure10bResult {
	ev := cs.Events[0]
	eng := cs.Res.Engine
	tracer := traceroute.NewTracer(eng)
	r := &Figure10bResult{}

	// Build the archive baseline: 4 weekly dumps before the outage.
	var pairs [][2]bgp.ASN
	ix, _ := cs.Stack.Map.IXP(cs.IXP)
	members := ix.Members
	for i := 0; i < len(members) && len(pairs) < 60; i += 2 {
		for j := 1; j < len(members) && len(pairs) < 60; j += 3 {
			if members[i] != members[j] {
				pairs = append(pairs, [2]bgp.ASN{members[i], members[j]})
			}
		}
	}
	archive := &traceroute.Archive{}
	healthy := routing.NewMask()
	collect := func(mask *routing.Mask) []*traceroute.Trace {
		var out []*traceroute.Trace
		tables := map[bgp.ASN]*routing.Table{}
		for _, pr := range pairs {
			t, ok := tables[pr[1]]
			if !ok {
				t = eng.ComputeOrigin(pr[1], mask)
				tables[pr[1]] = t
			}
			if tr, ok := tracer.Trace(t, pr[0]); ok {
				out = append(out, tr)
			}
		}
		return out
	}
	for w := 0; w < 4; w++ {
		archive.AddWeek(collect(healthy))
	}
	stable := archive.StablePairs(4)
	var baseline [][2]bgp.ASN
	for _, sp := range stable {
		if sp.Last.CrossesIXP(cs.IXP) {
			baseline = append(baseline, [2]bgp.ASN{sp.Src, sp.Dst})
		}
	}
	if len(baseline) == 0 {
		return r
	}

	platform := &traceroute.Platform{Budget: 100000}
	for at := ev.Start.Add(-20 * time.Minute); at.Before(ev.Start.Add(3 * time.Hour)); at = at.Add(10 * time.Minute) {
		mask := cs.Res.MaskAt(at)
		awayN := 0
		tables := map[bgp.ASN]*routing.Table{}
		for _, pr := range baseline {
			t, ok := tables[pr[1]]
			if !ok {
				t = eng.ComputeOrigin(pr[1], mask)
				tables[pr[1]] = t
			}
			tr, err := platform.Trace(tracer, t, pr[0])
			if err != nil || !tr.CrossesIXP(cs.IXP) {
				awayN++
			}
		}
		r.Times = append(r.Times, at)
		r.Away = append(r.Away, float64(awayN)/float64(len(baseline)))
	}
	r.Used = platform.Used
	return r
}

// Render prints the data-plane series.
func (r *Figure10bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10b: traceroute paths away from the exchange (targeted campaigns)\n")
	for i := range r.Times {
		fmt.Fprintf(&b, "%-7s %.3f\n", r.Times[i].Format("15:04"), r.Away[i])
	}
	fmt.Fprintf(&b, "traceroutes used: %d (paper: 85%% of data-plane paths return within an hour)\n", r.Used)
	return b.String()
}

// Figure10cResult reproduces Figure 10c: RTT distributions before, during
// and after the outage for paths via and not via the exchange.
type Figure10cResult struct {
	BeforeMs        []float64
	DuringStayMs    []float64 // still crossing the IXP during the outage
	DuringRerouteMs []float64 // rerouted away
	AfterMs         []float64
}

// Figure10c measures the RTT impact over the baseline pair set.
func Figure10c(cs *CaseStudy) *Figure10cResult {
	ev := cs.Events[0]
	eng := cs.Res.Engine
	tracer := traceroute.NewTracer(eng)
	r := &Figure10cResult{}

	ix, _ := cs.Stack.Map.IXP(cs.IXP)
	members := ix.Members
	var pairs [][2]bgp.ASN
	for i := 0; i < len(members) && len(pairs) < 80; i++ {
		for j := i + 1; j < len(members) && len(pairs) < 80; j += 2 {
			pairs = append(pairs, [2]bgp.ASN{members[i], members[j]})
		}
	}
	during := cs.Res.MaskAt(ev.Start.Add(ev.Duration / 2))
	after := cs.Res.MaskAt(ev.Start.Add(ev.Duration).Add(20 * time.Minute))
	healthy := routing.NewMask()

	healthyTables := map[bgp.ASN]*routing.Table{}
	duringTables := map[bgp.ASN]*routing.Table{}
	afterTables := map[bgp.ASN]*routing.Table{}
	tbl := func(cache map[bgp.ASN]*routing.Table, mask *routing.Mask, origin bgp.ASN) *routing.Table {
		t, ok := cache[origin]
		if !ok {
			t = eng.ComputeOrigin(origin, mask)
			cache[origin] = t
		}
		return t
	}

	for _, pr := range pairs {
		before, ok := tracer.Trace(tbl(healthyTables, healthy, pr[1]), pr[0])
		if !ok || !before.CrossesIXP(cs.IXP) {
			continue
		}
		r.BeforeMs = append(r.BeforeMs, before.RTT())
		if dt, ok := tracer.Trace(tbl(duringTables, during, pr[1]), pr[0]); ok {
			if dt.CrossesIXP(cs.IXP) {
				r.DuringStayMs = append(r.DuringStayMs, dt.RTT())
			} else {
				r.DuringRerouteMs = append(r.DuringRerouteMs, dt.RTT())
			}
		}
		if at, ok := tracer.Trace(tbl(afterTables, after, pr[1]), pr[0]); ok {
			r.AfterMs = append(r.AfterMs, at.RTT())
		}
	}
	return r
}

// Render prints the RTT quantiles.
func (r *Figure10cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10c: RTT impact (ms)\n")
	rows := []struct {
		name string
		data []float64
	}{
		{"before (via IXP)", r.BeforeMs},
		{"during, rerouted", r.DuringRerouteMs},
		{"during, unchanged", r.DuringStayMs},
		{"after restore", r.AfterMs},
	}
	fmt.Fprintf(&b, "%-20s %6s %8s %8s %8s\n", "set", "n", "p50", "p90", "p99")
	for _, row := range rows {
		c := metrics.NewCDF(row.data)
		fmt.Fprintf(&b, "%-20s %6d %8.1f %8.1f %8.1f\n", row.name, c.N(), c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99))
	}
	fmt.Fprintf(&b, "(paper: median RTT of rerouted paths rises by >100 ms during the outage and recovers after)\n")
	return b.String()
}

// Figure10dResult reproduces Figure 10d: IPv4 traffic at a *remote* IXP
// during the outage — the paper's EU-IXP IPFIX view with its drop at t0 and
// recovery after t2.
type Figure10dResult struct {
	Times        []time.Time
	Gbps         []float64
	T0           time.Time // outage start
	T1           time.Time // outage end (service restored)
	T2           time.Time // traffic back to normal
	RemoteIXP    colo.IXPID
	BaselineGbps float64
	DropGbps     float64
	TopLosers    []bgp.ASN
	Asymmetric   int
}

// Figure10d computes the traffic series at the second-busiest IXP while
// the busiest one fails.
func Figure10d(cs *CaseStudy) *Figure10dResult {
	ev := cs.Events[0]
	eng := cs.Res.Engine
	r := &Figure10dResult{
		T0: ev.Start,
		T1: ev.Start.Add(ev.Duration),
		T2: ev.Start.Add(ev.Duration).Add(15 * time.Minute),
	}

	matrix := traffic.BuildMatrix(cs.Stack.World, 25, 31)
	healthyFwd := traffic.NewForwarder(eng, nil)
	// The remote observation point: busiest IXP other than the failed one.
	var remote colo.IXPID
	var best float64
	for _, ix := range cs.Stack.Map.IXPs() {
		if ix.ID == cs.IXP {
			continue
		}
		if v := healthyFwd.VolumeAt(matrix, ix.ID); v > best {
			best, remote = v, ix.ID
		}
	}
	r.RemoteIXP = remote
	if remote == 0 {
		return r
	}
	r.BaselineGbps = best

	outageFwd := traffic.NewForwarder(eng, cs.Res.MaskAt(ev.Start.Add(ev.Duration/2)))
	duringVol := outageFwd.CappedCoupledVolumeAt(matrix, remote, healthyFwd)
	r.DropGbps = best - duringVol

	beforeMembers := healthyFwd.PerMember(matrix, remote)
	duringMembers := outageFwd.PerMemberCoupled(matrix, remote, healthyFwd)
	r.TopLosers = traffic.TopLosers(beforeMembers, duringMembers, 5)

	// Count asymmetric member pairs across the two exchanges (the paper's
	// main explanation for remote losses).
	ixA, _ := cs.Stack.Map.IXP(cs.IXP)
	for i, a := range ixA.Members {
		if i%3 != 0 {
			continue
		}
		for j, bm := range ixA.Members {
			if j%5 != 0 || a == bm {
				continue
			}
			if healthyFwd.Asymmetric(a, bm, cs.IXP, remote) {
				r.Asymmetric++
			}
		}
	}

	// 5-minute series with catch-up overshoot for 15 minutes after restore
	// (TCP backlog drain) and IPFIX sampling noise.
	for at := ev.Start.Add(-30 * time.Minute); at.Before(r.T2.Add(30 * time.Minute)); at = at.Add(5 * time.Minute) {
		var vol float64
		switch {
		case at.Before(r.T0) || !at.Before(r.T2):
			vol = best
		case at.Before(r.T1):
			vol = duringVol
		default:
			vol = best * 1.06 // catch-up overshoot between t1 and t2
		}
		vol = traffic.Sampled(vol, at.Unix())
		r.Times = append(r.Times, at)
		r.Gbps = append(r.Gbps, vol)
	}
	return r
}

// Render prints the traffic series and remote-impact summary.
func (r *Figure10dResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10d: IPv4 traffic at remote IXP %d during the outage\n", r.RemoteIXP)
	fmt.Fprintf(&b, "t0=%s t1=%s t2=%s baseline=%.1f Gbps drop=%.1f Gbps (%.1f%%)\n",
		r.T0.Format("15:04"), r.T1.Format("15:04"), r.T2.Format("15:04"),
		r.BaselineGbps, r.DropGbps, 100*r.DropGbps/maxFloat(1e-9, r.BaselineGbps))
	for i := range r.Times {
		fmt.Fprintf(&b, "%-7s %8.1f\n", r.Times[i].Format("15:04"), r.Gbps[i])
	}
	fmt.Fprintf(&b, "top losing members: %v; asymmetric pairs sampled: %d\n", r.TopLosers, r.Asymmetric)
	fmt.Fprintf(&b, "(paper: ~10%% IPv4 traffic drop at EU-IXP 360 km away, recovery overshoot after restoration)\n")
	return b.String()
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
