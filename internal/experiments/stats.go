package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/core"
	"kepler/internal/geo"
	"kepler/internal/metrics"
	"kepler/internal/registry"
	"kepler/internal/reports"
)

// DictionaryStatsResult reproduces Section 3.2's dictionary statistics and
// the attrition comparison against an older dictionary generation.
type DictionaryStatsResult struct {
	Stats communities.Stats
	Diff  communities.DiffStats
}

// DictionaryStats computes current dictionary statistics plus attrition
// against a simulated earlier generation (a 2008-style dictionary: fewer
// documenting operators, partially renumbered values — the
// Donnet–Bonaventure comparison).
func DictionaryStats(env *Env) *DictionaryStatsResult {
	stack := env.Stack
	stats := stack.Dict.ComputeStats(stack.Map, stack.Geo)

	// Older generation: drop ~45% of schemes, renumber ~10% of lows.
	var oldSchemes []registry.SchemeTruth
	for i, s := range stack.World.Truth.Schemes {
		if i%9 == 0 {
			continue // operator did not document yet
		}
		if i%2 == 0 {
			continue // operator did not exist / use communities yet
		}
		os := s
		os.Entries = append([]registry.SchemeEntry(nil), s.Entries...)
		for j := range os.Entries {
			if (i+j)%10 == 0 {
				os.Entries[j].Low += 7 // renumbered since
			}
		}
		oldSchemes = append(oldSchemes, os)
	}
	oldTruth := &registry.GroundTruth{
		Facilities: stack.World.Truth.Facilities,
		IXPs:       stack.World.Truth.IXPs,
		Schemes:    oldSchemes,
	}
	oldDocs := registry.RenderDocs(oldTruth, registry.DocOptions{DistractorsPerDoc: 2}, 2008)
	oldDict := communities.NewMiner(stack.Geo, stack.Map).Mine(oldDocs)

	return &DictionaryStatsResult{
		Stats: stats,
		Diff:  communities.Diff(oldDict, stack.Dict),
	}
}

// Render prints the Section 3.2 numbers.
func (r *DictionaryStatsResult) Render() string {
	var b strings.Builder
	s := r.Stats
	fmt.Fprintf(&b, "Section 3.2: community dictionary statistics\n")
	fmt.Fprintf(&b, "communities=%d ases=%d route-servers=%d cities=%d countries=%d ixps=%d facilities=%d\n",
		s.Communities, s.ASNs, s.RouteServers, s.Cities, s.Countries, s.IXPs, s.Facilities)
	fmt.Fprintf(&b, "(paper: 5284 communities, 468 ASes, 48 RS, 288 cities, 72 countries, 172 IXPs, 103 facilities)\n")
	fmt.Fprintf(&b, "granularity: city=%d ixp=%d facility=%d\n",
		s.ByGranularity[colo.PoPCity], s.ByGranularity[colo.PoPIXP], s.ByGranularity[colo.PoPFacility])
	conts := make([]geo.Continent, 0, len(s.ByContinent))
	for c := range s.ByContinent {
		conts = append(conts, c)
	}
	sort.Slice(conts, func(i, j int) bool { return conts[i] < conts[j] })
	for _, c := range conts {
		fmt.Fprintf(&b, "  continent %-13s entries=%d\n", c, s.ByContinent[c])
	}
	d := r.Diff
	fmt.Fprintf(&b, "attrition vs older generation: old=%d new=%d common=%d changed-meaning=%d (%.1f%%) stale=%d fresh=%d\n",
		d.OldTotal, d.NewTotal, d.Common, d.ChangedMeaning,
		100*float64(d.ChangedMeaning)/float64(maxInt(1, d.Common)), d.Stale, d.Fresh)
	fmt.Fprintf(&b, "(paper: only 1.5%% of common values changed meaning in 8 years)\n")
	return b.String()
}

// ValidationResult reproduces Section 5.3: true/false positives and false
// negatives against ground truth and public reports.
type ValidationResult struct {
	Detected       int
	TruePositives  int // detected + corroborated by ground truth
	Publicly       int // detected and also publicly reported
	FalsePositives int // detected with no matching ground-truth incident
	FalseNegatives int // full outages at trackable infrastructure missed
	PartialMissed  int // partial outages missed (paper: 4, mis-classified)
}

// matchWindow tolerates detection/report timing slack.
const matchWindow = 3 * time.Hour

// truthMatches reports whether a detected outage corresponds to event ev.
func truthMatches(env *Env, o core.Outage, ev reports.Event) bool {
	dt := o.Start.Sub(ev.Time)
	if dt < -matchWindow || dt > matchWindow {
		return false
	}
	if o.PoP == ev.PoP {
		return true
	}
	// City-level detections match events in that city (multi-PoP
	// abstraction); facility detections match IXP events whose fabric the
	// facility hosts, and vice versa (Figure 2's interdependence).
	if o.PoP.Kind == colo.PoPCity && uint32(env.Stack.Map.CityOf(ev.PoP)) == o.PoP.ID {
		return true
	}
	if o.PoP.Kind == colo.PoPFacility && ev.PoP.Kind == colo.PoPIXP {
		if ix, ok := env.Stack.Map.IXP(colo.IXPID(ev.PoP.ID)); ok {
			for _, f := range ix.Facilities {
				if uint32(f) == o.PoP.ID {
					return true
				}
			}
		}
	}
	if o.PoP.Kind == colo.PoPIXP && ev.PoP.Kind == colo.PoPFacility {
		if ix, ok := env.Stack.Map.IXP(colo.IXPID(o.PoP.ID)); ok {
			for _, f := range ix.Facilities {
				if uint32(f) == ev.PoP.ID {
					return true
				}
			}
		}
	}
	return false
}

// Validation computes the Section 5.3 accounting.
func Validation(env *Env) *ValidationResult {
	r := &ValidationResult{Detected: len(env.Outages)}
	reported := reports.Sample(env.Res.Truth, reportsSeed)

	matchedTruth := make(map[int]bool)
	for _, o := range env.Outages {
		matched := false
		for _, ev := range env.Res.Truth {
			if truthMatches(env, o, ev) {
				matched = true
				matchedTruth[ev.ID] = true
				break
			}
		}
		if matched {
			r.TruePositives++
			for _, rep := range reported {
				if rep.Matches(o.PoP, o.Start, env.Stack.Map) {
					r.Publicly++
					break
				}
			}
		} else {
			r.FalsePositives++
		}
	}

	covered := env.Stack.Dict.Covers
	for _, ev := range env.Res.Truth {
		if matchedTruth[ev.ID] {
			continue
		}
		trackable := false
		switch ev.PoP.Kind {
		case colo.PoPFacility:
			trackable, _ = env.Stack.Map.Trackable(colo.FacilityID(ev.PoP.ID), covered)
		case colo.PoPIXP:
			if ix, ok := env.Stack.Map.IXP(colo.IXPID(ev.PoP.ID)); ok {
				n := 0
				for _, m := range ix.Members {
					if covered(m) {
						n++
					}
				}
				trackable = n >= colo.MinTrackableMembers
			}
		}
		if !trackable {
			continue
		}
		if ev.Full {
			r.FalseNegatives++
		} else {
			r.PartialMissed++
		}
	}
	return r
}

// Render prints the validation accounting.
func (r *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.3: validation\n")
	fmt.Fprintf(&b, "detected=%d true-positives=%d publicly-corroborated=%d false-positives=%d\n",
		r.Detected, r.TruePositives, r.Publicly, r.FalsePositives)
	fmt.Fprintf(&b, "false-negatives(full,trackable)=%d partial-missed=%d\n", r.FalseNegatives, r.PartialMissed)
	fmt.Fprintf(&b, "(paper: 53/159 externally validated, 6 FP from fiber cuts, 0 full-outage FN, 4 partial missed)\n")
	return b.String()
}

// SummaryResult reproduces the Section 6.1 headline statistics.
type SummaryResult struct {
	Total          int
	FacilityCount  int
	IXPCount       int
	CityCount      int
	MedianDuration time.Duration
	OverOneHour    float64 // fraction of outages exceeding one hour
	EuropeFrac     float64
	USFrac         float64
	IXPMedian      time.Duration
	FacMedian      time.Duration
}

// Summary computes the headline outage statistics.
func Summary(env *Env) *SummaryResult {
	r := &SummaryResult{Total: len(env.Outages)}
	var all, fac, ixp []float64
	regions := map[string]int{}
	for _, o := range env.Outages {
		mins := o.Duration().Minutes()
		all = append(all, mins)
		switch o.PoP.Kind {
		case colo.PoPIXP:
			r.IXPCount++
			ixp = append(ixp, mins)
		case colo.PoPFacility:
			r.FacilityCount++
			fac = append(fac, mins)
		default:
			r.CityCount++
			fac = append(fac, mins)
		}
		if city, ok := env.Stack.Geo.City(env.Stack.Map.CityOf(o.PoP)); ok {
			switch {
			case city.Country == "US":
				regions["us"]++
			case city.Continent == geo.Europe:
				regions["eu"]++
			default:
				regions["other"]++
			}
		}
	}
	cdf := metrics.NewCDF(all)
	r.MedianDuration = time.Duration(cdf.Median() * float64(time.Minute))
	r.OverOneHour = 1 - cdf.At(60)
	if r.Total > 0 {
		r.EuropeFrac = float64(regions["eu"]) / float64(r.Total)
		r.USFrac = float64(regions["us"]) / float64(r.Total)
	}
	r.FacMedian = time.Duration(metrics.NewCDF(fac).Median() * float64(time.Minute))
	r.IXPMedian = time.Duration(metrics.NewCDF(ixp).Median() * float64(time.Minute))
	return r
}

// Render prints the headline statistics.
func (r *SummaryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.1: summary of detected outages\n")
	fmt.Fprintf(&b, "total=%d facility=%d ixp=%d city=%d\n", r.Total, r.FacilityCount, r.IXPCount, r.CityCount)
	fmt.Fprintf(&b, "median duration=%s over-1h=%.0f%% (paper: 17m median, 40%% over 1h)\n",
		metrics.FormatDuration(r.MedianDuration), 100*r.OverOneHour)
	fmt.Fprintf(&b, "median facility=%s ixp=%s (paper: IXP outages last longer)\n",
		metrics.FormatDuration(r.FacMedian), metrics.FormatDuration(r.IXPMedian))
	fmt.Fprintf(&b, "regional split: europe=%.0f%% us=%.0f%% (paper: 53%% / 31%%)\n",
		100*r.EuropeFrac, 100*r.USFrac)
	return b.String()
}
