package experiments

import (
	"fmt"
	"strings"

	"kepler/internal/bgp"
)

// Figure3Result reproduces Figure 3: the growth of BGP community usage —
// unique community values (left axis) versus unique top-16-bit operator
// halves (right axis), per year.
type Figure3Result struct {
	Years     []int
	Unique    []int // unique community values visible
	UniqueTop []int // unique top-16-bit halves (operators)
	PerASAvg  []float64
}

// adoptionFraction models the paper's observed doubling of community-using
// networks between 2010 and 2016 (2,500 → 5,500 networks, values tripling
// to 50K): adoption grows linearly over the window.
func adoptionFraction(year int) float64 {
	frac := 0.42 + 0.58*float64(year-2011)/5.0
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Figure3 replays the world's community schemes under the adoption growth
// model: for each year only a deterministic, growing subset of operators
// tags routes, and operators extend their schemes over time (more entries
// per AS, matching the observed rise from 4 to 16 values per prefix).
func Figure3(env *Env) *Figure3Result {
	r := &Figure3Result{}
	schemes := env.Stack.World.Truth.Schemes
	for year := 2011; year <= 2016; year++ {
		adopt := adoptionFraction(year)
		values := map[uint32]bool{}
		tops := map[bgp.ASN]bool{}
		// Deterministic adoption order: schemes adopt in slice order.
		n := int(adopt * float64(len(schemes)))
		totalEntries := 0
		for i := 0; i < n && i < len(schemes); i++ {
			s := schemes[i]
			tops[s.ASN] = true
			// Schemes grow over time: a fraction of each operator's
			// entries exists per year, reaching 100% in 2016. Operators
			// also define non-location values (traffic engineering,
			// blackholing): modelled as 2 extra values per location entry.
			grow := 0.55 + 0.45*float64(year-2011)/5.0
			k := int(grow * float64(len(s.Entries)))
			if k < 1 && len(s.Entries) > 0 {
				k = 1
			}
			for j := 0; j < k; j++ {
				e := s.Entries[j]
				values[uint32(s.ASN)<<16|uint32(e.Low)] = true
				values[uint32(s.ASN)<<16|uint32(60000+e.Low%5000)] = true
				values[uint32(s.ASN)<<16|uint32(40000+e.Low%5000)] = true
				totalEntries++
			}
		}
		r.Years = append(r.Years, year)
		r.Unique = append(r.Unique, len(values))
		r.UniqueTop = append(r.UniqueTop, len(tops))
		avg := 0.0
		if len(tops) > 0 {
			avg = float64(totalEntries) / float64(len(tops))
		}
		r.PerASAvg = append(r.PerASAvg, avg)
	}
	return r
}

// Render prints the yearly series.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: unique BGP community values vs unique top-16-bit halves per year\n")
	fmt.Fprintf(&b, "%-6s %14s %12s %10s\n", "year", "unique-values", "unique-top16", "avg/AS")
	for i := range r.Years {
		fmt.Fprintf(&b, "%-6d %14d %12d %10.1f\n", r.Years[i], r.Unique[i], r.UniqueTop[i], r.PerASAvg[i])
	}
	growth := float64(r.Unique[len(r.Unique)-1]) / float64(maxInt(1, r.Unique[0]))
	fmt.Fprintf(&b, "value growth 2011→2016: %.1fx (paper: ~3x to 50K; ASes ~2x to 5,500)\n", growth)
	return b.String()
}
