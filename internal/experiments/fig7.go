package experiments

import (
	"fmt"
	"strings"
	"time"

	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/mrt"
)

// Figure7aResult reproduces Figure 7a: the number of outage signals at each
// granularity as the detection threshold Tfail sweeps from 2% to 50%.
type Figure7aResult struct {
	Thresholds []float64
	PoPLevel   []int // facility/IXP-level incidents (the paper's focus)
	ASLevel    []int // AS- and operator-level incidents
	LinkLevel  []int
}

// Figure7aThresholds is the sweep the paper plots.
var Figure7aThresholds = []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}

// Figure7a re-runs detection over the last year of the historical stream
// once per threshold.
func Figure7a(env *Env) *Figure7aResult {
	r := &Figure7aResult{Thresholds: Figure7aThresholds}
	// Last-year slice (the paper evaluates thresholds on 2016).
	cut := env.End.Add(-365 * 24 * time.Hour)
	var slice []*mrt.Record
	for _, rec := range env.Res.Records {
		if !rec.Time.Before(cut) {
			slice = append(slice, rec)
		}
	}
	for _, th := range r.Thresholds {
		cfg := core.DefaultConfig()
		cfg.Tfail = th
		outages, incidents := env.Stack.Run(slice, cfg, nil)
		var as, link int
		for _, inc := range incidents {
			switch inc.Kind {
			case core.IncidentAS, core.IncidentOperator:
				as++
			case core.IncidentLink:
				link++
			}
		}
		// PoP level counts deduplicated outages (the paper's y-axis is
		// facility/IXP *outages*, not raw per-bin signals).
		r.PoPLevel = append(r.PoPLevel, len(outages))
		r.ASLevel = append(r.ASLevel, as)
		r.LinkLevel = append(r.LinkLevel, link)
	}
	return r
}

// Render prints the sweep.
func (r *Figure7aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7a: outage signals per granularity vs detection threshold\n")
	fmt.Fprintf(&b, "%-10s %10s %9s %10s\n", "threshold", "pop-level", "as-level", "link-level")
	for i, th := range r.Thresholds {
		fmt.Fprintf(&b, "%-10.2f %10d %9d %10d\n", th, r.PoPLevel[i], r.ASLevel[i], r.LinkLevel[i])
	}
	fmt.Fprintf(&b, "(paper: PoP-level counts stay stable for 2%%–15%% and fall beyond; AS/link counts grow as the threshold drops)\n")
	return b.String()
}

// Figure7bResult reproduces Figure 7b: per facility, total members vs
// members locatable through the dictionary, and trackability.
type Figure7bResult struct {
	Facilities []Figure7bPoint
}

// Figure7bPoint is one facility's coordinates in the scatter plot.
type Figure7bPoint struct {
	Facility  colo.FacilityID
	Members   int
	Mapped    int
	Trackable bool
}

// Figure7b computes the sensitivity scatter.
func Figure7b(env *Env) *Figure7bResult {
	stack := env.Stack
	r := &Figure7bResult{}
	for _, f := range stack.Map.Facilities() {
		trackable, mapped := stack.Map.Trackable(f.ID, stack.Dict.Covers)
		r.Facilities = append(r.Facilities, Figure7bPoint{
			Facility: f.ID, Members: len(f.Members), Mapped: mapped, Trackable: trackable,
		})
	}
	return r
}

// Counts summarizes the scatter the way Section 5.2 quotes it.
func (r *Figure7bResult) Counts() (total, over5, trackable int) {
	for _, p := range r.Facilities {
		total++
		if p.Members > 5 {
			over5++
		}
		if p.Trackable {
			trackable++
		}
	}
	return total, over5, trackable
}

// Render prints one line per facility plus the headline counts.
func (r *Figure7bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7b: facility members vs dictionary-mapped members\n")
	fmt.Fprintf(&b, "%-10s %8s %7s %10s\n", "facility", "members", "mapped", "trackable")
	for _, p := range r.Facilities {
		fmt.Fprintf(&b, "%-10d %8d %7d %10v\n", p.Facility, p.Members, p.Mapped, p.Trackable)
	}
	total, over5, trackable := r.Counts()
	fmt.Fprintf(&b, "total=%d over-5-members=%d trackable=%d (paper: 1742 / 533 / 403; 98%% of facilities with 20+ members trackable)\n",
		total, over5, trackable)
	return b.String()
}

// Figure7cResult reproduces Figure 7c: the monthly fraction of IPv4 and
// IPv6 BGP paths carrying at least one location community.
type Figure7cResult struct {
	Months []string
	IPv4   []float64
	IPv6   []float64
}

// Figure7c scans the final year's RIB snapshots.
func Figure7c(env *Env) *Figure7cResult {
	r := &Figure7cResult{}
	type counts struct {
		v4, v4Tagged, v6, v6Tagged int
	}
	byMonth := map[string]*counts{}
	var order []string
	cut := env.End.Add(-365 * 24 * time.Hour)
	for _, rec := range env.Res.Records {
		if rec.Kind != mrt.KindRIB || rec.Update == nil || rec.Time.Before(cut) {
			continue
		}
		month := rec.Time.Format("2006-01")
		c := byMonth[month]
		if c == nil {
			c = &counts{}
			byMonth[month] = c
			order = append(order, month)
		}
		tagged := env.Stack.Dict.HasLocationCommunity(rec.Update.Attrs.Communities)
		for _, p := range rec.Update.Announced {
			if p.Addr().Is4() {
				c.v4++
				if tagged {
					c.v4Tagged++
				}
			} else {
				c.v6++
				if tagged {
					c.v6Tagged++
				}
			}
		}
	}
	for _, m := range order {
		c := byMonth[m]
		r.Months = append(r.Months, m)
		r.IPv4 = append(r.IPv4, frac(c.v4Tagged, c.v4))
		r.IPv6 = append(r.IPv6, frac(c.v6Tagged, c.v6))
	}
	return r
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Render prints the monthly coverage fractions.
func (r *Figure7cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7c: fraction of BGP paths with at least one location community\n")
	fmt.Fprintf(&b, "%-9s %6s %6s\n", "month", "ipv4", "ipv6")
	for i := range r.Months {
		fmt.Fprintf(&b, "%-9s %6.2f %6.2f\n", r.Months[i], r.IPv4[i], r.IPv6[i])
	}
	fmt.Fprintf(&b, "(paper: ~50%% of IPv4 and ~30%% of IPv6 paths)\n")
	return b.String()
}
