// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5 and 6) on the synthetic substrate. Each experiment
// returns structured results plus a Render() string that prints the same
// rows/series the paper reports; bench_test.go exposes one benchmark per
// artifact and cmd/kepler-eval prints them all.
//
// Absolute numbers differ from the paper — the substrate is a laptop-scale
// simulator, not five years of RouteViews/RIS — but the shapes under test
// (who wins, plateaus, crossovers, skews) are asserted in this package's
// tests and recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"sync"
	"time"

	"kepler/internal/core"
	"kepler/internal/pipeline"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

// Span of the historical analysis, matching the paper's 2012–2016 window.
var (
	HistStart = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	HistEnd   = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
)

// Env bundles a world, a rendered scenario and the detection results over
// it — the shared input of the historical experiments.
type Env struct {
	Stack     *pipeline.Stack
	Schedule  []simulate.Event
	Res       *simulate.Result
	Outages   []core.Outage
	Incidents []core.Incident
	Start     time.Time
	End       time.Time
}

// histConfig is the world used for the five-year analysis.
func histConfig() topology.Config {
	cfg := topology.DefaultConfig()
	cfg.Seed = 2012
	return cfg
}

// histSchedule injects the paper-scale incident mix: 103 facility and 56
// IXP outages over five years (Section 6.1), on a bed of link- and AS-level
// background noise.
func histSchedule(w *topology.World) simulate.ScheduleConfig {
	return simulate.ScheduleConfig{
		Seed:            41,
		Start:           HistStart.Add(4 * 24 * time.Hour), // past the stability window
		End:             HistEnd.Add(-4 * 24 * time.Hour),
		FacilityOutages: 103,
		IXPOutages:      56,
		LinkOutages:     220,
		ASOutages:       40,
		PartialFraction: 0.15,
		// Target populated infrastructure: the paper's detected set is by
		// construction the trackable one, and outages of single-tenant
		// sheds are invisible to any BGP-based system.
		MinMembers: 8,
	}
}

var (
	histOnce sync.Once
	histEnv  *Env
	histErr  error
)

// Historical returns the shared five-year environment, built on first use.
func Historical() (*Env, error) {
	histOnce.Do(func() {
		histEnv, histErr = buildHistorical()
	})
	return histEnv, histErr
}

func buildHistorical() (*Env, error) {
	w, err := topology.Generate(histConfig())
	if err != nil {
		return nil, err
	}
	stack := pipeline.Build(w, 7)
	schedule := simulate.GenerateSchedule(w, histSchedule(w))
	res, err := simulate.Render(w, schedule, HistStart, HistEnd, simulate.RenderConfig{
		Seed:            43,
		RIBDumpInterval: 60 * 24 * time.Hour,
		SessionResets:   25,
	})
	if err != nil {
		return nil, err
	}
	// Detection runs with the targeted-measurement backend, as the real
	// system does: unresolved localizations consult it, and inferred
	// epicenters are cross-checked (Section 4.4).
	dp := stack.NewSimDataPlane(res, 500000)
	outages, incidents := stack.Run(res.Records, core.DefaultConfig(), dp)
	return &Env{
		Stack:     stack,
		Schedule:  schedule,
		Res:       res,
		Outages:   outages,
		Incidents: incidents,
		Start:     HistStart,
		End:       HistEnd,
	}, nil
}
